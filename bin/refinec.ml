(* refinec — command-line driver for the REFINE toolchain.

   Mirrors the paper's user-level workflow (§4.3/§4.4): the compiler flags
   of Table 2 select what gets instrumented, profiling produces the dynamic
   instruction count and golden output, and injection runs classify
   outcomes.

     refinec run prog.minc                         compile and execute
     refinec emit prog.minc --stage ir|asm         print IR or assembly
     refinec fi prog.minc --fi-tool refine \
        --fi-funcs '*' --fi-instrs all \
        --samples 100 --seed 7                      an FI campaign cell
     refinec passes --list                          dump the pass registry
     refinec bench --list                           list Table 3 programs *)

open Cmdliner
module Pl = Refine_passes.Pipeline

(* when spawned by a shard coordinator this process IS the worker: serve
   frames on stdin/stdout and exit before cmdliner ever parses argv *)
let () = Refine_campaign.Worker.maybe_exec ()

let read_source path =
  match Refine_bench_progs.Registry.all
        |> List.find_opt (fun b -> b.Refine_bench_progs.Registry.name = path)
  with
  | Some b -> b.Refine_bench_progs.Registry.source
  | None ->
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s

(* common args *)
let src_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"PROG" ~doc:"MinC source file, or a Table 3 benchmark name (e.g. HPCCG-1.0).")

let opt_arg =
  Arg.(value & opt string "O2" & info [ "O" ] ~docv:"LEVEL" ~doc:"Optimization level: O0, O1 or O2.")

let parse_opt s = Pl.level_of_string s

let passes_arg =
  Arg.(value & opt (some string) None
       & info [ "passes" ] ~docv:"PIPELINE"
           ~doc:"Explicit compile pipeline as a comma-separated pass list (e.g. \
                 $(b,mem2reg,sccp,dce,isel,regalloc,frame,peephole,layout)); overrides $(b,-O).  \
                 See $(b,refinec passes --list) for the registry.")

let verify_each_arg =
  Arg.(value & flag
       & info [ "verify-each" ]
           ~doc:"Interleave verification after every pipeline pass: the IR verifier after each \
                 IR pass, the MIR verifier after each MIR pass (including the instrumented-code \
                 check once an FI splice is in place).")

let no_cache_arg =
  Arg.(value & flag
       & info [ "no-artifact-cache" ]
           ~doc:"Disable the content-addressed prepared-artifact cache (every preparation \
                 recompiles from source).  Results are bit-identical either way.")

let no_decode_arg =
  Arg.(value & flag
       & info [ "no-decode" ]
           ~doc:"Force the legacy per-opcode interpreter instead of the pre-decoded \
                 threaded-dispatch engine (DESIGN.md §19).  Results are bit-identical either \
                 way; only simulation throughput differs.")

let no_detach_arg =
  Arg.(value & flag
       & info [ "no-detach" ]
           ~doc:"Keep every sample attached to the instrumented binary for its whole run \
                 instead of handing off to the golden snapshot once the injection has \
                 retired (DESIGN.md §20).  Results are bit-identical either way; only \
                 simulation throughput differs.")

(* -O alias unless --passes overrides; parse errors are usage errors *)
let spec_of opt passes =
  match passes with
  | None -> Pl.of_level (parse_opt opt)
  | Some s -> (
    try Pl.parse s
    with Pl.Parse_error msg ->
      Printf.eprintf "bad --passes: %s\n" msg;
      exit 2)

(* ---- run ---- *)

let run_cmd =
  let trace_flag =
    Arg.(value & flag
         & info [ "trace" ] ~doc:"Keep a ring buffer of executed instructions and print it on exit.")
  in
  let action src opt passes verify_each trace no_decode =
    let m = Refine_minic.Frontend.compile (read_source src) in
    let out = Pl.run ~verify_each (Pl.ensure_layout (spec_of opt passes)) m in
    let image = Option.get out.Pl.image in
    let eng = Refine_machine.Exec.create image in
    if not no_decode then
      Refine_machine.Exec.install_decoded eng (Some (Refine_machine.Exec.decode image));
    let tracer =
      if trace then begin
        let t = Refine_machine.Trace.create ~capacity:24 () in
        Refine_machine.Trace.attach t eng;
        Some t
      end
      else None
    in
    let r = Refine_machine.Exec.run eng in
    print_string r.Refine_machine.Exec.output;
    (match tracer with
    | Some t -> prerr_string (Refine_machine.Trace.render t)
    | None -> ());
    match r.Refine_machine.Exec.status with
    | Refine_machine.Exec.Exited c ->
      Printf.eprintf "[exit %d; %Ld instructions]\n" c r.Refine_machine.Exec.steps;
      exit c
    | Refine_machine.Exec.Trapped tr ->
      Printf.eprintf "[trap: %s]\n" (Refine_machine.Exec.string_of_trap tr);
      exit 139
    | _ ->
      Printf.eprintf "[did not finish]\n";
      exit 124
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile a MinC program and execute it on the SX64 simulator.")
    Term.(const action $ src_arg $ opt_arg $ passes_arg $ verify_each_arg $ trace_flag
          $ no_decode_arg)

(* ---- emit ---- *)

let emit_cmd =
  let stage =
    Arg.(value & opt string "asm"
         & info [ "stage" ] ~docv:"STAGE" ~doc:"What to print: ir, asm, or asm-fi (REFINE-instrumented).")
  in
  let action src opt passes verify_each stage =
    let m = Refine_minic.Frontend.compile (read_source src) in
    let spec = { (spec_of opt passes) with Pl.layout = false } in
    let mir_of spec =
      (Pl.run ~verify_each { spec with Pl.isel = true; layout = false } m).Pl.funcs
    in
    match stage with
    | "ir" ->
      ignore (Pl.run_ir ~verify_each spec m);
      print_string (Refine_ir.Printer.string_of_module m)
    | "asm" ->
      List.iter (fun f -> print_string (Refine_mir.Mprinter.string_of_func f)) (mir_of spec)
    | "asm-fi" ->
      let out = Pl.run ~verify_each { (Pl.append_mir spec "refine-fi") with Pl.layout = false } m in
      Printf.printf "; REFINE: %d instrumented sites\n" out.Pl.fi_sites;
      List.iter (fun f -> print_string (Refine_mir.Mprinter.string_of_func f)) out.Pl.funcs
    | s -> Printf.eprintf "unknown stage %s (use ir, asm, asm-fi)\n" s; exit 2
  in
  Cmd.v (Cmd.info "emit" ~doc:"Print the IR or the SX64 assembly of a program.")
    Term.(const action $ src_arg $ opt_arg $ passes_arg $ verify_each_arg $ stage)

(* ---- fi ---- *)

let fi_cmd =
  let tool =
    Arg.(value & opt string "refine"
         & info [ "fi-tool" ] ~docv:"TOOL"
             ~doc:"Fault injector: refine, llfi, pinfi, or opcode (valid-opcode corruption, the paper's par. 4.5 extension).")
  in
  let funcs =
    Arg.(value & opt string "*"
         & info [ "fi-funcs" ] ~docv:"NAMES"
             ~doc:"Comma-separated function names to instrument ('*' = all); paper Table 2.")
  in
  let instrs =
    Arg.(value & opt string "all"
         & info [ "fi-instrs" ] ~docv:"CLASS"
             ~doc:"Instruction classes: stack, arithm, mem or all; paper Table 2.")
  in
  let samples =
    Arg.(value & opt int 100 & info [ "samples" ] ~docv:"N" ~doc:"Number of FI experiments.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let fault_model =
    Arg.(value & opt string "reg"
         & info [ "fault-model" ] ~docv:"MODEL"
             ~doc:"What state each fault strikes: $(b,reg) (single register bit, the paper's \
                   model), $(b,mem) (one bit of a data memory cell), $(b,instr) (the in-flight \
                   instruction image), $(b,multi:K) (K independent register bits per fault) or \
                   $(b,burst:K) (K adjacent register bits).")
  in
  let action src tool funcs instrs samples seed fault_model opt passes verify_each no_cache
      no_decode no_detach =
    if no_cache then Refine_passes.Artifact_cache.enabled := false;
    if no_decode then Refine_core.Tool.use_decode := false;
    if no_detach then Refine_core.Tool.use_detach := false;
    let model =
      try Refine_core.Fault.model_of_string fault_model
      with Invalid_argument msg -> Printf.eprintf "bad --fault-model: %s\n" msg; exit 2
    in
    if String.lowercase_ascii tool = "opcode" then begin
      (* the §4.5 extension: persistent valid-opcode corruption *)
      let m = Refine_minic.Frontend.compile (read_source src) in
      let out = Pl.run ~verify_each (Pl.ensure_layout (spec_of opt passes)) m in
      let image = Option.get out.Pl.image in
      let p = Refine_core.Opcode_fi.profile image in
      let rng = Refine_support.Prng.create seed in
      let c = ref 0 and so = ref 0 and b = ref 0 in
      for _ = 1 to samples do
        match
          (Refine_core.Opcode_fi.run_injection image p (Refine_support.Prng.split rng))
            .Refine_core.Fault.outcome
        with
        | Refine_core.Fault.Crash -> incr c
        | Refine_core.Fault.Soc -> incr so
        | Refine_core.Fault.Benign -> incr b
        | Refine_core.Fault.Tool_error -> ()
      done;
      Printf.printf "tool: OPCODE (valid-opcode corruption)   program: %s\n" src;
      Printf.printf "corruptible dynamic instructions: %Ld\n" p.Refine_core.Fault.dyn_count;
      Printf.printf "crash: %d   SOC: %d   benign: %d\n" !c !so !b;
      exit 0
    end;
    let kind =
      match String.lowercase_ascii tool with
      | "refine" -> Refine_core.Tool.Refine
      | "llfi" -> Refine_core.Tool.Llfi
      | "pinfi" -> Refine_core.Tool.Pinfi
      | t -> Printf.eprintf "unknown tool %s\n" t; exit 2
    in
    let module Sel = Refine_core.Tool.Selection in
    let sel =
      {
        Sel.funcs = String.split_on_char ',' funcs |> List.map String.trim;
        instrs = Sel.instr_class_of_string instrs;
      }
    in
    let cell =
      Refine_campaign.Experiment.run_cell ~sel ~model ~pipeline:(spec_of opt passes)
        ~verify_each ~samples ~seed kind ~program:src ~source:(read_source src) ()
    in
    let module E = Refine_campaign.Experiment in
    Printf.printf "tool: %s   program: %s   fault model: %s\n"
      (Refine_core.Tool.kind_name kind) src
      (Refine_core.Fault.string_of_model model);
    Printf.printf "dynamic FI targets: %Ld   static sites: %d\n"
      cell.E.profile.Refine_core.Fault.dyn_count cell.E.static_instrumented;
    Printf.printf "samples: %d   (margin of error ±%.1f%% at 95%%)\n" samples
      (100.0 *. Refine_stats.Samplesize.margin_of ~samples ~confidence:0.95 ());
    Printf.printf "crash: %d   SOC: %d   benign: %d\n" cell.E.counts.E.crash cell.E.counts.E.soc
      cell.E.counts.E.benign;
    if cell.E.counts.E.tool_error > 0 then
      Printf.printf "tool errors (excluded from contingency rows): %d\n"
        cell.E.counts.E.tool_error;
    Printf.printf "campaign cost: %Ld units\n" cell.E.injection_cost
  in
  Cmd.v
    (Cmd.info "fi"
       ~doc:"Run a fault-injection campaign cell (profiling + N classified injections).")
    Term.(const action $ src_arg $ tool $ funcs $ instrs $ samples $ seed $ fault_model
          $ opt_arg $ passes_arg $ verify_each_arg $ no_cache_arg $ no_decode_arg
          $ no_detach_arg)

(* ---- passes ---- *)

let passes_cmd =
  let list_flag =
    Arg.(value & flag
         & info [ "list" ]
             ~doc:"List the registered passes and the effective pipeline of each $(b,-O) level \
                   (the default action).")
  in
  let action _list =
    print_endline "registered passes (usable in --passes):";
    List.iter
      (fun (p : Refine_passes.Pass.t) ->
        Printf.printf "  %-16s %-4s %s%s\n" p.Refine_passes.Pass.name
          (Refine_passes.Pass.layer_name p.Refine_passes.Pass.layer)
          p.Refine_passes.Pass.descr
          (if p.Refine_passes.Pass.fi then "  [FI]" else ""))
      (Refine_passes.Pass.all ());
    print_endline "  isel             --   lower IR to machine code (structural, always available)";
    print_endline "  layout           --   emit the executable image (structural, must be last)";
    print_endline "";
    print_endline "effective pipeline per -O level:";
    List.iter
      (fun level ->
        Printf.printf "  -%-3s %s\n" (Pl.string_of_level level) (Pl.print (Pl.of_level level)))
      [ Pl.O0; Pl.O1; Pl.O2 ];
    print_endline "";
    print_endline "FI placement per tool (at -O2; paper Figure 1):";
    List.iter
      (fun kind ->
        Printf.printf "  %-7s %s\n"
          (Refine_core.Tool.kind_name kind)
          (Pl.print (Refine_core.Tool.pipeline_for kind (Pl.of_level Pl.O2))))
      [ Refine_core.Tool.Refine; Refine_core.Tool.Llfi; Refine_core.Tool.Pinfi ]
  in
  Cmd.v
    (Cmd.info "passes"
       ~doc:"Dump the pass registry: every registered pass with its layer and description, the \
             effective pipeline of each $(b,-O) level, and where each tool's FI pass plugs in.")
    Term.(const action $ list_flag)

(* ---- bench ---- *)

let bench_cmd =
  let action () =
    print_endline "Table 3 benchmark programs (usable as PROG in run/emit/fi):";
    List.iter
      (fun (b : Refine_bench_progs.Registry.bench) ->
        Printf.printf "  %-10s %s\n" b.Refine_bench_progs.Registry.name
          b.Refine_bench_progs.Registry.input)
      Refine_bench_progs.Registry.all
  in
  Cmd.v (Cmd.info "bench" ~doc:"List the built-in Table 3 benchmark programs.")
    Term.(const action $ const ())

(* ---- campaign ---- *)

let campaign_cmd =
  let programs =
    Arg.(value & opt string "all"
         & info [ "programs" ] ~docv:"NAMES"
             ~doc:"Comma-separated Table 3 benchmark names, or 'all'.")
  in
  let samples =
    Arg.(value & opt int 200 & info [ "samples" ] ~docv:"N" ~doc:"Experiments per cell.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let fault_models =
    Arg.(value & opt string "reg"
         & info [ "fault-model" ] ~docv:"MODELS"
             ~doc:"Comma-separated fault models to run the matrix under: $(b,reg) (single \
                   register bit, the paper's model), $(b,mem) (memory-cell bit), $(b,instr) \
                   (instruction-image corruption), $(b,multi:K) and $(b,burst:K) (K-bit \
                   register faults).  Each model runs the full (program, tool) grid; the \
                   report renders one Table 5/6 section per model and the CSV tags every \
                   row with its model.")
  in
  let csv =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the cells to a CSV file.")
  in
  let journal =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"Checkpoint every resolved sample to FILE (atomic tmp-rename flushes), so an \
                   interrupted campaign can be resumed with $(b,--resume).")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Resume from an existing $(b,--journal) file: samples already recorded are \
                   loaded instead of re-run.  Counts are bit-identical to an uninterrupted run \
                   with the same seed.")
  in
  let retries =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry a failing sample up to N extra times with a fresh deterministic PRNG \
                   split before recording it as a tool error.")
  in
  let sample_timeout =
    Arg.(value & opt (some int64) None
         & info [ "sample-timeout" ] ~docv:"COST"
             ~doc:"Watchdog: kill any sample exceeding COST modeled-cost units (below the \
                   paper's 10x timeout) and record it as a tool error after the retry budget.")
  in
  let domains =
    Arg.(value & opt (some int) None
         & info [ "domains" ] ~docv:"D" ~doc:"Worker domains (default: cores - 1).")
  in
  let workers =
    Arg.(value & opt (some int) None
         & info [ "workers" ] ~docv:"W"
             ~doc:"Shard the campaign over W worker processes (this executable re-exec'd) with \
                   heartbeats, crash recovery and work stealing instead of in-process domains.  \
                   Results are bit-identical to $(b,--domains) for the same seed.")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Enable observability and write the merged metrics registry to FILE in \
                   Prometheus text exposition format when the campaign finishes.")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Enable observability and stream span/phase trace events to FILE as \
                   append-only JSONL (one event object per line).")
  in
  let output_quota =
    Arg.(value & opt (some int) None
         & info [ "output-quota" ] ~docv:"BYTES"
             ~doc:"Sandbox: absolute per-sample output cap in bytes (default: 16x the golden \
                   output, 4 KiB floor).  A tripped quota classifies as a crash.")
  in
  let wall_clock =
    Arg.(value & opt (some float) None
         & info [ "wall-clock" ] ~docv:"SECONDS"
             ~doc:"Sandbox: real-time deadline per sample in seconds.  A tripped deadline \
                   classifies as a crash.")
  in
  let livelock =
    Arg.(value & opt (some int) None
         & info [ "livelock" ] ~docv:"STEPS"
             ~doc:"Sandbox: fingerprint the architectural state every STEPS simulated \
                   instructions and classify an exact repeat (a livelock orbit) as a crash.")
  in
  let no_verify_mir =
    Arg.(value & flag
         & info [ "no-verify-mir" ]
             ~doc:"Skip the post-instrumentation machine-code verifier (cells whose \
                   instrumented code fails verification are normally quarantined).")
  in
  let status_port =
    Arg.(value & opt (some int) None
         & info [ "status-port" ] ~docv:"PORT"
             ~doc:"Serve live campaign status on 127.0.0.1:PORT for the duration of the run \
                   (0 = kernel-assigned, printed at startup): $(b,/status) (progress JSON with \
                   per-worker liveness, rolling samples/s and ETA), $(b,/metrics) (Prometheus \
                   text) and $(b,/healthz).  Implies observability.")
  in
  let action programs samples seed fault_models csv journal resume retries sample_timeout
      domains workers metrics_out trace_out status_port output_quota wall_clock livelock
      no_verify_mir opt passes verify_each no_cache no_decode no_detach =
    if metrics_out <> None || trace_out <> None || status_port <> None then
      Refine_obs.Control.enable ();
    if no_cache then Refine_passes.Artifact_cache.enabled := false;
    if no_decode then Refine_core.Tool.use_decode := false;
    if no_detach then Refine_core.Tool.use_detach := false;
    let models =
      String.split_on_char ',' fault_models |> List.map String.trim
      |> List.filter (fun s -> s <> "")
      |> List.map (fun s ->
             try Refine_core.Fault.model_of_string s
             with Invalid_argument msg ->
               Printf.eprintf "bad --fault-model: %s\n" msg;
               exit 2)
    in
    let models = if models = [] then [ Refine_core.Fault.Reg_bit ] else models in
    (match trace_out with
    | Some path -> Refine_obs.Span.set_file_sink path
    | None -> ());
    let names =
      if programs = "all" then Refine_bench_progs.Registry.names
      else String.split_on_char ',' programs |> List.map String.trim
    in
    let srcs =
      List.map (fun n -> (n, (Refine_bench_progs.Registry.find n).Refine_bench_progs.Registry.source)) names
    in
    let journal = Option.map (fun path -> Refine_campaign.Journal.create ~resume path) journal in
    (match journal with Some j -> Refine_campaign.Journal.note_skipped_metric j | None -> ());
    let quotas =
      {
        Refine_core.Tool.default_quotas with
        Refine_core.Tool.output_bytes = output_quota;
        wall_clock_s = wall_clock;
        livelock_window = livelock;
      }
    in
    let server =
      Option.map
        (fun port ->
          let s = Refine_obs.Serve.create ~port () in
          Printf.printf "[status: http://127.0.0.1:%d/status]\n%!" (Refine_obs.Serve.port s);
          s)
        status_port
    in
    let cells =
      match workers with
      | Some w when w > 0 ->
        (* the coordinator polls the status server from its select loop *)
        let options =
          { Refine_campaign.Coordinator.default_options with workers = w; status = server }
        in
        List.concat_map
          (fun model ->
            Refine_campaign.Coordinator.run_matrix ~options ?journal ~retries
              ?cost_cap:sample_timeout ~quotas ~model ~pipeline:(spec_of opt passes)
              ~verify_mir:(not no_verify_mir) ~verify_each ~cache:(not no_cache) ~samples
              ~seed srcs Refine_campaign.Report.tools)
          models
      | _ ->
        (* in-process path: a tiny pump domain drives the server, and the
           /status provider reads the campaign's own progress counters *)
        let stop = Atomic.make false in
        let pump =
          Option.map
            (fun s ->
              let total =
                List.length srcs * List.length Refine_campaign.Report.tools
                * List.length models
              in
              let sum name =
                List.fold_left
                  (fun acc (n, _, v) ->
                    match v with
                    | Refine_obs.Metrics.Counter c when n = name -> acc + Int64.to_int c
                    | _ -> acc)
                  0
                  (Refine_obs.Metrics.snapshot ())
              in
              Refine_obs.Serve.set_status s (fun () ->
                  let quarantined = sum "refine_quarantined_cells_total" in
                  {
                    Refine_obs.Serve.p_samples_done =
                      sum "refine_campaign_samples_total"
                      + sum "refine_campaign_resumed_samples_total";
                    p_samples_total = total * samples;
                    p_cells_done = sum "refine_campaign_cells_total" + quarantined;
                    p_cells_total = total;
                    p_cells_quarantined = quarantined;
                    p_workers = None;
                    p_finished = Atomic.get stop;
                  });
              Domain.spawn (fun () ->
                  while not (Atomic.get stop) do
                    Refine_obs.Serve.poll s;
                    Unix.sleepf 0.02
                  done))
            server
        in
        Fun.protect
          ~finally:(fun () ->
            Atomic.set stop true;
            Option.iter Domain.join pump)
          (fun () ->
            List.concat_map
              (fun model ->
                Refine_campaign.Experiment.run_matrix ?domains ?journal ~retries
                  ?cost_cap:sample_timeout ~quotas ~model ~pipeline:(spec_of opt passes)
                  ~verify_mir:(not no_verify_mir) ~verify_each ~samples ~seed srcs
                  Refine_campaign.Report.tools)
              models)
    in
    (* figure 4/5 and the overhead table read the paper's reg-bit shape:
       render them over the first model's cells; the per-model Table 5/6
       sections cover every model in the run *)
    let first_cells =
      match Refine_campaign.Report.models cells with
      | [] -> cells
      | m :: _ -> Refine_campaign.Report.cells_of_model m cells
    in
    List.iter
      (fun p -> print_string (Refine_campaign.Report.figure4_program first_cells p))
      names;
    (match models with
    | [ _ ] ->
      print_string
        (Refine_campaign.Report.table5 (Refine_campaign.Report.chi2_rows cells names))
    | _ -> print_string (Refine_campaign.Report.model_sections cells names));
    print_string (Refine_campaign.Report.figure5 first_cells names);
    print_string (Refine_campaign.Report.overhead_table first_cells names);
    print_string (Refine_campaign.Report.quarantine_report cells);
    let journal_skipped =
      match journal with Some j -> Refine_campaign.Journal.skipped j | None -> 0
    in
    List.iter print_endline (Refine_campaign.Report.degradation ~journal_skipped cells);
    (match journal with
    | Some j ->
      Printf.printf "[journal: %d samples checkpointed]\n" (Refine_campaign.Journal.length j)
    | None -> ());
    (match csv with
    | Some path ->
      Refine_campaign.Csv.save path cells;
      Printf.printf "[cells written to %s]\n" path
    | None -> ());
    (match metrics_out with
    | Some path ->
      Refine_obs.Metrics.save path;
      Printf.printf "[metrics written to %s]\n" path
    | None -> ());
    (match trace_out with
    | Some path ->
      Refine_obs.Span.close_sink ();
      Printf.printf "[trace written to %s]\n" path
    | None -> ());
    (* flush any in-flight status requests, then release the port *)
    Option.iter
      (fun s ->
        for _ = 1 to 10 do
          Refine_obs.Serve.poll s;
          Unix.sleepf 0.01
        done;
        Refine_obs.Serve.close s)
      server
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run the evaluation matrix on benchmark programs and print Figure 4/Table 5/Figure 5 \
             plus the Figure 8/9 overhead breakdown. Supports checkpoint/resume \
             ($(b,--journal)/$(b,--resume)), bounded retries, a per-sample watchdog, \
             observability exports ($(b,--metrics-out)/$(b,--trace-out)), a live status \
             endpoint ($(b,--status-port)), and sandbox quotas \
             ($(b,--output-quota)/$(b,--wall-clock)/$(b,--livelock)).")
    Term.(const action $ programs $ samples $ seed $ fault_models $ csv $ journal $ resume
          $ retries $ sample_timeout $ domains $ workers $ metrics_out $ trace_out
          $ status_port $ output_quota $ wall_clock $ livelock $ no_verify_mir $ opt_arg
          $ passes_arg $ verify_each_arg $ no_cache_arg $ no_decode_arg $ no_detach_arg)

(* hidden internal entry point: serve shard frames on stdin/stdout.  The
   coordinator normally reaches the worker loop via the REFINE_SHARD_WORKER
   re-exec (Worker.maybe_exec above); this subcommand exists for manual
   debugging of the protocol. *)
let worker_cmd =
  let action () = Refine_campaign.Worker.main () in
  Cmd.v
    (Cmd.info "worker" ~docs:"INTERNAL"
       ~doc:"Run as a shard campaign worker, speaking length-prefixed frames on stdin/stdout \
             (internal; spawned by $(b,campaign --workers)).")
    Term.(const action $ const ())

let main =
  let doc = "REFINE: realistic fault injection via compiler-based instrumentation (SC'17 reproduction)" in
  Cmd.group (Cmd.info "refinec" ~version:"1.0.0" ~doc)
    [ run_cmd; emit_cmd; fi_cmd; passes_cmd; bench_cmd; campaign_cmd; worker_cmd ]

let () = exit (Cmd.eval main)
