(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (S5) against this repository's implementation, and
   runs Bechamel micro-benchmarks of the underlying per-experiment
   operations.

   Environment knobs:
     REFINE_SAMPLES   experiments per (program, tool) cell
                      (default 1068, the paper's Leveugle sizing for 3%
                      error at 95% confidence; set e.g. 200 for a quick
                      pass — the full default run takes ~20 minutes)
     REFINE_SEED      master PRNG seed (default 20170712)
     REFINE_PROGRAMS  comma-separated program filter (default: all 14)
     REFINE_BECHAMEL  set to 0 to skip the Bechamel micro-benchmarks
     REFINE_JOURNAL   checkpoint/resume journal path: every resolved sample
                      is recorded (atomic tmp-rename flushes) and an
                      interrupted run resumes from it bit-identically
     REFINE_RETRIES   extra attempts per failing sample before it degrades
                      to a ToolError tally entry (default 1)
     REFINE_SAMPLE_TIMEOUT
                      per-sample modeled-cost watchdog cap (default: none,
                      i.e. only the paper's 10x-profiling timeout)
     REFINE_OBS       set to 0 to disable the observability layer (metrics
                      registry + span accounting); when enabled (default)
                      the harness writes a BENCH_obs.json trajectory point
                      with per-tool overhead totals and key counters
     REFINE_QUOTAS    set to 0 to skip the sandbox-quota overhead probe;
                      when enabled (default) a small REFINE cell is run
                      once with quotas off and once with the default
                      sandbox (derived output cap + livelock detector) and
                      the wall-time ratio is written to BENCH_quotas.json
     REFINE_FASTPATH  set to 0 to force the legacy allocate-per-sample
                      engine path for the whole harness and skip the
                      fast-path probe; when enabled (default) the probe
                      measures samples/sec legacy vs fast, simulated
                      instr/sec and engines/sec, checks outcome-table
                      bit-identity, and writes BENCH_fastpath.json
     REFINE_BASELINE_SPS
                      pre-fast-path end-to-end campaign throughput
                      (samples/sec) to compare against in
                      BENCH_fastpath.json; the default is the recorded
                      pre-fast-path executor on the reference campaign
                      (DC+EP x 3 tools x 300 samples, interleaved runs
                      on the same host)
     REFINE_SHARD     set to 0 to skip the sharded-campaign probe: a small
                      DC+EP matrix run with 1, 2 and 4 worker processes
                      (throughput per configuration), plus one run where a
                      worker is SIGKILLed mid-campaign to measure the
                      recovery overhead; results (all bit-identical) are
                      written to BENCH_shard.json
     REFINE_LIVE      set to 0 to skip the live-status overhead probe: the
                      same 2-worker campaign (telemetry forwarding on in
                      both) with the /status server off vs on; the delta is
                      the "live" section of BENCH_obs.json
     REFINE_DETACH    set to 0 to skip the post-injection detach probe
                      (DESIGN.md S20): the same fixed-seed DC+EP campaign
                      with detach off vs on — bit-identical tables, wall
                      times and the measured REFINE/PINFI execute-time
                      ratio become the "detach" section of BENCH_obs.json *)

module T = Refine_core.Tool
module E = Refine_campaign.Experiment
module Rep = Refine_campaign.Report
module Reg = Refine_bench_progs.Registry
module Tbl = Refine_support.Table
module Obs = Refine_obs

let getenv_default name default =
  match Sys.getenv_opt name with Some v when v <> "" -> v | _ -> default

let samples = int_of_string (getenv_default "REFINE_SAMPLES" "1068")
let seed = int_of_string (getenv_default "REFINE_SEED" "20170712")

let programs =
  match Sys.getenv_opt "REFINE_PROGRAMS" with
  | Some s when s <> "" -> String.split_on_char ',' s |> List.map String.trim
  | _ -> Reg.names

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ---- Table 3: benchmark programs and their input ----------------------- *)

let print_table3 () =
  section "Table 3 - benchmark programs and their input";
  Tbl.print
    ~header:[ "Program"; "Input (this repro | paper)" ]
    (List.map (fun n -> let b = Reg.find n in [ b.Reg.name; b.Reg.input ]) programs)

(* ---- statistical setting (paper S5.3) ---------------------------------- *)

let print_setting () =
  section "Statistical setting (Leveugle et al. sample sizing)";
  let paper_n = Refine_stats.Samplesize.paper_sample_count in
  Printf.printf "paper sample count (e<=3%%, 95%%): n = %d (paper: 1,068)\n" paper_n;
  let margin = Refine_stats.Samplesize.margin_of ~samples ~confidence:0.95 () in
  Printf.printf "this run: n = %d per (program, tool) -> margin of error <= %.1f%% at 95%%\n"
    samples (100.0 *. margin);
  Printf.printf "total experiments: %d programs x 3 tools x %d = %d\n"
    (List.length programs) samples
    (List.length programs * 3 * samples)

(* ---- Listings 1 & 2: machine-only instructions and LLFI interference --- *)

let static_counts (m : Refine_ir.Ir.modul) =
  let funcs = Refine_passes.Pipeline.to_mir m in
  let module M = Refine_mir.Minstr in
  let count p = List.fold_left (fun acc mf ->
      List.fold_left (fun acc (b : Refine_mir.Mfunc.mblock) ->
          acc + List.length (List.filter p b.code)) acc mf.Refine_mir.Mfunc.blocks)
      0 funcs
  in
  let total = count (fun _ -> true) in
  let stack = count (fun i -> M.classify i = M.Cstack) in
  let spill_slots =
    List.fold_left (fun acc mf -> acc + (mf.Refine_mir.Mfunc.frame_bytes / 8)) 0 funcs
  in
  (total, stack, spill_slots)

let print_listings () =
  section "Listings 1 & 2 - machine-only instructions and codegen interference (HPCCG)";
  let src = (Reg.find "HPCCG-1.0").Reg.source in
  let clean = Refine_minic.Frontend.compile src in
  Refine_passes.Pipeline.optimize Refine_passes.Pipeline.O2 clean;
  let ir_instrs =
    List.fold_left (fun acc f -> acc + Refine_ir.Printer.count_instrs f) 0
      clean.Refine_ir.Ir.funcs
  in
  let t_clean, s_clean, fs_clean = static_counts clean in
  let llfi = Refine_minic.Frontend.compile src in
  Refine_passes.Pipeline.optimize Refine_passes.Pipeline.O2 llfi;
  ignore (Refine_passes.Pipeline.run_ir { Refine_passes.Pipeline.empty with ir = [ "llfi-fi" ] } llfi);
  let t_llfi, s_llfi, fs_llfi = static_counts llfi in
  Printf.printf
    "IR instructions (LLFI's entire view):            %4d\n" ir_instrs;
  Printf.printf
    "machine instructions, clean binary:              %4d (%d stack-class, invisible at IR level)\n"
    t_clean s_clean;
  Printf.printf
    "machine instructions after LLFI instrumentation: %4d (%d stack-class)\n" t_llfi s_llfi;
  Printf.printf
    "frame slots (allocas + spills): clean %d -> LLFI %d (spilling induced by injectFault calls, cf. Listing 2c)\n"
    fs_clean fs_llfi

(* ---- campaign ----------------------------------------------------------- *)

let run_campaign () =
  let progs = List.map (fun n -> (n, (Reg.find n).Reg.source)) programs in
  let journal, scratch =
    match Sys.getenv_opt "REFINE_JOURNAL" with
    | Some path when path <> "" ->
      let resume = Sys.file_exists path in
      let j = Refine_campaign.Journal.create ~resume path in
      if resume then
        Printf.printf "[journal: resuming from %s, %d samples already resolved]\n" path
          (Refine_campaign.Journal.length j);
      (Some j, None)
    | _ when Obs.Control.enabled () ->
      (* the trajectory point reports refine_journal_records_total; with no
         journal the campaign never appends and the counter is a trivial 0,
         not a measurement.  Journal to a scratch file and discard it. *)
      let path = Filename.temp_file "refine_bench" ".journal" in
      (Some (Refine_campaign.Journal.create path), Some path)
    | _ -> (None, None)
  in
  let retries = int_of_string (getenv_default "REFINE_RETRIES" "1") in
  let cost_cap =
    match Sys.getenv_opt "REFINE_SAMPLE_TIMEOUT" with
    | Some v when v <> "" -> Some (Int64.of_string v)
    | _ -> None
  in
  let t0 = Unix.gettimeofday () in
  let cells = E.run_matrix ?journal ~retries ?cost_cap ~samples ~seed progs Rep.tools in
  let wall = Unix.gettimeofday () -. t0 in
  (match scratch with
  | Some path ->
    Option.iter Refine_campaign.Journal.close journal;
    Sys.remove path
  | None -> ());
  Printf.printf "\n[campaign: %d experiments in %.1fs]\n"
    (List.length programs * 3 * samples)
    wall;
  List.iter print_endline (Rep.degradation cells);
  (cells, wall)

let print_figure4 cells =
  section "Figure 4 - fault-injection outcome distributions";
  List.iter
    (fun p ->
      print_string (Rep.figure4_program cells p);
      print_string (Rep.figure4_pmf cells p);
      print_newline ())
    programs

let print_table4 cells =
  if List.mem "AMG2013" programs then begin
    section "Table 4 - contingency table, LLFI vs PINFI (AMG2013)";
    let a = E.find_cell cells ~program:"AMG2013" ~tool:T.Llfi in
    let b = E.find_cell cells ~program:"AMG2013" ~tool:T.Pinfi in
    print_string (Rep.contingency_table a b)
  end

let print_table5 cells =
  section "Table 5 - chi-squared tests (alpha = 0.05)";
  let rows = Rep.chi2_rows cells programs in
  print_string (Rep.table5 rows);
  let llfi_sig =
    List.length (List.filter (fun r -> r.Rep.llfi_vs_pinfi.Refine_stats.Chi2.significant) rows)
  in
  let refine_sig =
    List.length (List.filter (fun r -> r.Rep.refine_vs_pinfi.Refine_stats.Chi2.significant) rows)
  in
  Printf.printf
    "LLFI significantly different from PINFI: %d/%d programs (paper: 14/14)\n" llfi_sig
    (List.length rows);
  Printf.printf
    "REFINE significantly different from PINFI: %d/%d programs (paper: 0/14)\n" refine_sig
    (List.length rows)

let print_table6 cells =
  section "Table 6 - complete outcome frequencies";
  print_string (Rep.table6 cells programs)

let print_figure5 cells =
  section "Figure 5 - experimentation time";
  print_string (Rep.figure5 cells programs)

(* ---- Figures 8/9: measured wall-clock overhead --------------------------
   Unlike Figure 5's modeled cost units, these are Unix.gettimeofday
   measurements bucketed by Experiment/Tool into the instrument / compile /
   execute / harness phases, with each tool's total normalized to PINFI's
   (the paper's time-overhead presentation). *)

let tool_timing cells tool =
  List.fold_left
    (fun acc program ->
      let t = (E.find_cell cells ~program ~tool).E.timing in
      {
        E.instrument_s = acc.E.instrument_s +. t.E.instrument_s;
        compile_s = acc.E.compile_s +. t.E.compile_s;
        execute_s = acc.E.execute_s +. t.E.execute_s;
        harness_s = acc.E.harness_s +. t.E.harness_s;
      })
    E.zero_timing programs

let print_overhead cells =
  section "Figures 8/9 - wall-clock overhead breakdown";
  print_string (Rep.overhead_table cells programs);
  let pinfi = Rep.timing_total (tool_timing cells T.Pinfi) in
  List.iter
    (fun tool ->
      let total = Rep.timing_total (tool_timing cells tool) in
      Printf.printf "%-7s total %8.3fs  = %.2fx PINFI\n" (T.kind_name tool) total
        (if pinfi > 0.0 then total /. pinfi else nan))
    Rep.tools

(* ---- BENCH_obs.json: one observability trajectory point ------------------ *)

let sum_counter name =
  List.fold_left
    (fun acc (n, _, v) ->
      match v with Obs.Metrics.Counter c when n = name -> Int64.add acc c | _ -> acc)
    0L (Obs.Metrics.snapshot ())

let obs_counter_names =
  [
    "refine_campaign_samples_total";
    "refine_campaign_cells_total";
    "refine_exec_steps_total";
    "refine_fi_site_hits_total";
    "refine_supervisor_tasks_total";
    "refine_supervisor_retries_total";
    "refine_journal_records_total";
  ]

(* captured right after the campaign so the later probe sections don't
   bleed into the trajectory point *)
let capture_obs_counters () = List.map (fun n -> (n, sum_counter n)) obs_counter_names

let write_obs_json ?live ?detach counters cells campaign_wall =
  let buf = Buffer.create 1024 in
  let pinfi = Rep.timing_total (tool_timing cells T.Pinfi) in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"samples_per_cell\": %d,\n" samples);
  Buffer.add_string buf (Printf.sprintf "  \"seed\": %d,\n" seed);
  Buffer.add_string buf (Printf.sprintf "  \"programs\": %d,\n" (List.length programs));
  Buffer.add_string buf (Printf.sprintf "  \"campaign_wall_s\": %.6f,\n" campaign_wall);
  Buffer.add_string buf "  \"tools\": {\n";
  List.iteri
    (fun i tool ->
      let t = tool_timing cells tool in
      let total = Rep.timing_total t in
      Buffer.add_string buf
        (Printf.sprintf
           "    \"%s\": { \"instrument_s\": %.6f, \"compile_s\": %.6f, \"execute_s\": %.6f, \
            \"harness_s\": %.6f, \"total_s\": %.6f, \"ratio_vs_pinfi\": %.4f }%s\n"
           (T.kind_name tool) t.E.instrument_s t.E.compile_s t.E.execute_s t.E.harness_s total
           (if pinfi > 0.0 then total /. pinfi else 0.0)
           (if i < List.length Rep.tools - 1 then "," else "")))
    Rep.tools;
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  \"counters\": {\n";
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\": %Ld%s\n" name v
           (if i < List.length counters - 1 then "," else "")))
    counters;
  let fragments =
    (match detach with Some f -> [ ("detach", f) ] | None -> [])
    @ (match live with Some f -> [ ("live", f) ] | None -> [])
  in
  (match fragments with
  | [] -> Buffer.add_string buf "  }\n}\n"
  | fs ->
    Buffer.add_string buf "  },\n";
    List.iteri
      (fun i (name, fragment) ->
        Buffer.add_string buf
          (Printf.sprintf "  \"%s\": %s%s\n" name fragment
             (if i < List.length fs - 1 then "," else "")))
      fs;
    Buffer.add_string buf "}\n");
  let oc = open_out "BENCH_obs.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "[observability trajectory written to BENCH_obs.json]\n"

(* ---- BENCH_quotas.json: sandbox-quota overhead probe ---------------------
   The adversarial-input sandbox (DESIGN.md §13) adds a quota check every
   1024 simulated steps plus a fingerprint ring when the livelock detector
   is armed.  This probe measures what that costs: the same small REFINE
   cell (same seed, so the same faults) once with quotas off and once with
   the derived output cap + a livelock window, wall-clock compared. *)

let quotas_section () =
  section "Sandbox quota overhead (quota-off vs quota-on wall time)";
  let program = List.hd programs in
  let src = (Reg.find program).Reg.source in
  let probe_samples = min samples 120 in
  let run quotas =
    let t0 = Unix.gettimeofday () in
    let cell =
      E.run_cell ~quotas ~samples:probe_samples ~seed T.Refine ~program ~source:src ()
    in
    (Unix.gettimeofday () -. t0, cell)
  in
  let off_s, off_cell = run T.no_quotas in
  let on_s, on_cell =
    run { T.default_quotas with T.livelock_window = Some 65536 }
  in
  let overhead_pct = if off_s > 0.0 then 100.0 *. ((on_s /. off_s) -. 1.0) else 0.0 in
  Printf.printf "%s, %d samples: quotas off %.3fs, on %.3fs (%+.1f%%)\n" program probe_samples
    off_s on_s overhead_pct;
  if off_cell.E.counts <> on_cell.E.counts then
    Printf.printf "note: quota trips changed %d sample outcome(s) (runaways now crash early)\n"
      (abs (off_cell.E.counts.E.crash - on_cell.E.counts.E.crash));
  let oc = open_out "BENCH_quotas.json" in
  Printf.fprintf oc
    "{\n  \"program\": \"%s\",\n  \"samples\": %d,\n  \"seed\": %d,\n  \
     \"quota_off_wall_s\": %.6f,\n  \"quota_on_wall_s\": %.6f,\n  \
     \"overhead_pct\": %.2f\n}\n"
    program probe_samples seed off_s on_s overhead_pct;
  close_out oc;
  Printf.printf "[quota overhead written to BENCH_quotas.json]\n"

(* ---- BENCH_passes.json: pass-manager prepare cost & artifact cache -------
   DESIGN.md §15: the whole compile spine is one cross-layer pipeline, and
   prepared artifacts are content-addressed.  The probe measures cold vs
   cached prepare wall time on one cell, and counter-verifies the headline
   claim: a 2-tool campaign over the same programs performs at least 2x
   fewer front-end + IR-stage compile invocations with the cache on than
   off (the IR tier shares the tool-independent compile across tools). *)

let passes_section () =
  section "Pass manager & artifact cache (DESIGN.md par. 15)";
  let timed f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (Unix.gettimeofday () -. t0, v)
  in
  let program = List.hd programs in
  let src = (Reg.find program).Reg.source in
  T.reset_artifact_caches ();
  let cold_s, _ = timed (fun () -> T.prepare T.Refine src) in
  let warm_s, _ = timed (fun () -> T.prepare T.Refine src) in
  let speedup = if warm_s > 0.0 then cold_s /. warm_s else 0.0 in
  Printf.printf "prepare(%s, REFINE): cold %.4fs, cached %.6fs (%.0fx)\n" program cold_s warm_s
    speedup;
  let rate (s : Refine_passes.Artifact_cache.stats) =
    let total = s.Refine_passes.Artifact_cache.hits + s.Refine_passes.Artifact_cache.misses in
    if total = 0 then 0.0
    else float_of_int s.Refine_passes.Artifact_cache.hits /. float_of_int total
  in
  (* sampled before the invocation probe resets the caches *)
  let prepared_rate = rate (T.prepared_cache_stats ()) in
  (* the reference 2-program x 2-tool grid, compile invocations counted *)
  let two_progs = match programs with a :: b :: _ -> [ a; b ] | _ -> programs in
  let invocations cache =
    T.reset_artifact_caches ();
    List.iter
      (fun p ->
        let s = (Reg.find p).Reg.source in
        ignore (T.prepare ~cache T.Refine s);
        ignore (T.prepare ~cache T.Llfi s))
      two_progs;
    T.compile_invocations ()
  in
  let uncached = invocations false in
  let cached = invocations true in
  let ratio = if cached > 0 then float_of_int uncached /. float_of_int cached else 0.0 in
  let ir = T.ir_cache_stats () in
  Printf.printf
    "2-tool grid (%s): compile invocations %d uncached -> %d cached (%.1fx %s)\n"
    (String.concat "+" two_progs) uncached cached ratio
    (if ratio >= 2.0 then "- claim holds" else "- BELOW the 2x claim");
  Printf.printf "cache hit rate: ir %.2f, prepared %.2f\n" (rate ir) prepared_rate;
  let oc = open_out "BENCH_passes.json" in
  Printf.fprintf oc
    "{\n  \"program\": \"%s\",\n  \"pipeline\": \"%s\",\n  \"prepare_cold_s\": %.6f,\n  \
     \"prepare_cached_s\": %.6f,\n  \"prepare_speedup\": %.1f,\n  \
     \"two_tool_compile_invocations_uncached\": %d,\n  \
     \"two_tool_compile_invocations_cached\": %d,\n  \"compile_invocation_ratio\": %.2f,\n  \
     \"ir_cache_hit_rate\": %.4f,\n  \"prepared_cache_hit_rate\": %.4f\n}\n"
    program
    (Refine_passes.Pipeline.print (T.pipeline_for T.Refine T.default_pipeline))
    cold_s warm_s speedup uncached cached ratio (rate ir) prepared_rate;
  close_out oc;
  Printf.printf "[pass-manager probe written to BENCH_passes.json]\n"

(* ---- BENCH_fastpath.json: executor fast-path throughput -------------------
   The fast path (DESIGN.md §14) replaces per-sample engine allocation with
   snapshot-blit reset, boxed int64 hot counters with unboxed ints, and
   string-hashed extern dispatch with a pre-resolved handler table.  The
   probe measures: end-to-end samples/sec on the same cell with the legacy
   path vs the fast path (outcome tables must be bit-identical), raw
   simulated instructions/sec on a spin loop, and engine acquisition rates
   (fresh create vs snapshot reset).  [campaign_sps] is the whole harness
   run's end-to-end throughput, compared against the recorded pre-PR
   baseline (REFINE_BASELINE_SPS). *)

let fastpath_section ~campaign_sps () =
  section "Executor fast path (DESIGN.md par. 14) - throughput probe";
  let program = List.hd programs in
  let src = (Reg.find program).Reg.source in
  let probe_samples = min samples 150 in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (Unix.gettimeofday () -. t0, v)
  in
  let cell_summary (c : E.cell) =
    Printf.sprintf "crash=%d soc=%d benign=%d err=%d cost=%Ld" c.E.counts.E.crash
      c.E.counts.E.soc c.E.counts.E.benign c.E.counts.E.tool_error c.E.injection_cost
  in
  let run_probe () =
    timed (fun () -> E.run_cell ~samples:probe_samples ~seed T.Refine ~program ~source:src ())
  in
  T.use_fast_path := false;
  let legacy_s, legacy_cell = run_probe () in
  T.use_fast_path := true;
  let fast_s, fast_cell = run_probe () in
  let identical = cell_summary legacy_cell = cell_summary fast_cell in
  let legacy_sps = float_of_int probe_samples /. legacy_s in
  let fast_sps = float_of_int probe_samples /. fast_s in
  Printf.printf "%s, %d REFINE samples: legacy %.1f samples/s, fast %.1f samples/s (%.2fx)\n"
    program probe_samples legacy_sps fast_sps (fast_sps /. legacy_sps);
  Printf.printf "outcome table: %s\n"
    (if identical then "bit-identical legacy vs fast" else "MISMATCH legacy vs fast");
  (* raw simulator speed: a spin loop of allocation-free instructions *)
  let module M = Refine_mir.Minstr in
  let module R = Refine_mir.Reg in
  let module MF = Refine_mir.Mfunc in
  let module Ex = Refine_machine.Exec in
  let spin_image =
    let mf = MF.create "main" in
    List.iteri
      (fun k i ->
        let b = MF.add_block mf k in
        b.MF.code <- [ i ])
      [
        M.Mmov (R.gpr 1, M.Imm 7L);
        M.Mcmp (R.gpr 1, M.Imm 0L);
        M.Mjcc (M.CEq, 4);
        M.Mjmp 1;
        M.Mhalt;
      ];
    Refine_backend.Layout.build ~globals:[] [ mf ]
  in
  let spin_steps = 20_000_000 in
  let sim_s, () =
    timed (fun () ->
        let eng = Ex.create spin_image in
        ignore (Ex.run ~max_steps:(Int64.of_int spin_steps) eng))
  in
  let sim_ips = float_of_int spin_steps /. sim_s in
  Printf.printf "simulated instructions/sec: %.2fM\n" (sim_ips /. 1e6);
  (* engine acquisition: fresh allocation vs snapshot reset *)
  let m = Refine_minic.Frontend.compile src in
  Refine_passes.Pipeline.optimize Refine_passes.Pipeline.O2 m;
  let image = Refine_passes.Pipeline.compile m in
  let n_eng = 300 in
  let create_s, () = timed (fun () -> for _ = 1 to n_eng do ignore (Ex.create image) done) in
  let snap = Ex.snapshot image in
  let reused = Ex.create_from_snapshot snap in
  let reset_s, () = timed (fun () -> for _ = 1 to n_eng do Ex.reset reused done) in
  let create_eps = float_of_int n_eng /. create_s in
  let reset_eps = float_of_int n_eng /. reset_s in
  Printf.printf "engines/sec: create %.0f, snapshot-reset %.0f (%.1fx)\n" create_eps reset_eps
    (reset_eps /. create_eps);
  let baseline_sps = float_of_string (getenv_default "REFINE_BASELINE_SPS" "59.0") in
  Printf.printf "end-to-end campaign: %.1f samples/s (pre-PR baseline %.1f, %.2fx)\n"
    campaign_sps baseline_sps (campaign_sps /. baseline_sps);
  let oc = open_out "BENCH_fastpath.json" in
  Printf.fprintf oc
    "{\n  \"program\": \"%s\",\n  \"samples\": %d,\n  \"seed\": %d,\n  \
     \"legacy_wall_s\": %.6f,\n  \"fast_wall_s\": %.6f,\n  \
     \"legacy_samples_per_s\": %.2f,\n  \"fast_samples_per_s\": %.2f,\n  \
     \"outcome_table_identical\": %b,\n  \"sim_instr_per_s\": %.0f,\n  \
     \"engines_create_per_s\": %.1f,\n  \"engines_reset_per_s\": %.1f,\n  \
     \"campaign_samples_per_s\": %.2f,\n  \"baseline_samples_per_s\": %.2f,\n  \
     \"campaign_speedup_vs_baseline\": %.2f\n}\n"
    program probe_samples seed legacy_s fast_s legacy_sps fast_sps identical sim_ips create_eps
    reset_eps campaign_sps baseline_sps
    (campaign_sps /. baseline_sps);
  close_out oc;
  Printf.printf "[fast-path throughput written to BENCH_fastpath.json]\n"

(* ---- BENCH_decode.json: pre-decoded executor throughput -------------------
   DESIGN.md §19: the pre-decoded engine replaces the per-opcode match
   interpreter with per-pc dispatch closures plus fused superinstructions.
   The probe measures raw simulated instructions/sec on the same spin loop
   as the fast-path section with the legacy engine vs the decoded engine
   (the ISSUE 9 target is >=5x), and re-runs the fixed-seed (DC+EP x 3
   tools) matrix under all five fault models with the decoded path off and
   on — the outcome tables must be bit-identical. *)

let decode_section () =
  section "Pre-decoded executor (DESIGN.md par. 19) - legacy vs decoded throughput";
  let module M = Refine_mir.Minstr in
  let module R = Refine_mir.Reg in
  let module MF = Refine_mir.Mfunc in
  let module Ex = Refine_machine.Exec in
  let module F = Refine_core.Fault in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (Unix.gettimeofday () -. t0, v)
  in
  let spin_image =
    let mf = MF.create "main" in
    List.iteri
      (fun k i ->
        let b = MF.add_block mf k in
        b.MF.code <- [ i ])
      [
        M.Mmov (R.gpr 1, M.Imm 7L);
        M.Mcmp (R.gpr 1, M.Imm 0L);
        M.Mjcc (M.CEq, 4);
        M.Mjmp 1;
        M.Mhalt;
      ];
    Refine_backend.Layout.build ~globals:[] [ mf ]
  in
  (* a counted work loop with an accumulator: the back edge does not
     close over the latch triple alone, so the decoded engine cannot
     bulk-retire iterations — this measures honest per-iteration fused
     dispatch (single op + fused latch triple) on real loop work *)
  let work_image =
    let mf = MF.create "main" in
    List.iteri
      (fun k i ->
        let b = MF.add_block mf k in
        b.MF.code <- [ i ])
      [
        M.Mmov (R.gpr 1, M.Imm 1_000_000_000L);
        M.Mmov (R.gpr 2, M.Imm 0L);
        M.Mbin (Refine_ir.Ir.Add, R.gpr 2, R.gpr 2, M.Reg (R.gpr 1));
        M.Mbin (Refine_ir.Ir.Sub, R.gpr 1, R.gpr 1, M.Imm 1L);
        M.Mcmp (R.gpr 1, M.Imm 0L);
        M.Mjcc (M.CNe, 2);
        M.Mhalt;
      ];
    Refine_backend.Layout.build ~globals:[] [ mf ]
  in
  let spin_steps = 20_000_000 in
  let probe image ~decoded =
    let eng = Ex.create image in
    if decoded then Ex.install_decoded eng (Some (Ex.decode image));
    let s, () = timed (fun () -> ignore (Ex.run ~max_steps:(Int64.of_int spin_steps) eng)) in
    float_of_int spin_steps /. s
  in
  ignore (probe spin_image ~decoded:false) (* warm-up: page in the code and the image *);
  let legacy_ips = probe spin_image ~decoded:false in
  let decoded_ips = probe spin_image ~decoded:true in
  let speedup = decoded_ips /. legacy_ips in
  Printf.printf "spin loop, simulated instructions/sec: legacy %.2fM, decoded %.2fM (%.2fx)\n"
    (legacy_ips /. 1e6) (decoded_ips /. 1e6) speedup;
  let work_legacy_ips = probe work_image ~decoded:false in
  let work_decoded_ips = probe work_image ~decoded:true in
  let work_speedup = work_decoded_ips /. work_legacy_ips in
  Printf.printf "work loop, simulated instructions/sec: legacy %.2fM, decoded %.2fM (%.2fx)\n"
    (work_legacy_ips /. 1e6) (work_decoded_ips /. 1e6) work_speedup;
  (* fixed-seed outcome tables under every fault model, decoded off vs on *)
  let progs = [ "DC"; "EP" ] in
  let srcs = List.map (fun n -> (n, (Reg.find n).Reg.source)) progs in
  let n = min samples 48 in
  let models = [ "reg"; "mem"; "instr"; "multi:3"; "burst:4" ] in
  let key (c : E.cell) = (c.E.program, T.kind_name c.E.tool, c.E.counts, c.E.injection_cost) in
  let matrix () =
    List.map
      (fun name ->
        T.reset_artifact_caches ();
        List.map key (E.run_matrix ~model:(F.model_of_string name) ~samples:n ~seed srcs Rep.tools))
      models
  in
  T.use_decode := false;
  let legacy_tables = matrix () in
  T.use_decode := true;
  let decoded_tables = matrix () in
  let identical = legacy_tables = decoded_tables in
  Printf.printf "outcome tables (%s x 3 tools x %d, models %s): %s\n"
    (String.concat "+" progs) n (String.concat "/" models)
    (if identical then "bit-identical decoded vs legacy" else "MISMATCH decoded vs legacy");
  let oc = open_out "BENCH_decode.json" in
  Printf.fprintf oc
    "{\n  \"spin_steps\": %d,\n  \"legacy_sim_instr_per_s\": %.0f,\n  \
     \"decoded_sim_instr_per_s\": %.0f,\n  \"speedup\": %.2f,\n  \
     \"work_legacy_sim_instr_per_s\": %.0f,\n  \"work_decoded_sim_instr_per_s\": %.0f,\n  \
     \"work_speedup\": %.2f,\n  \
     \"outcome_models\": %d,\n  \"outcome_tables_identical\": %b\n}\n"
    spin_steps legacy_ips decoded_ips speedup work_legacy_ips work_decoded_ips work_speedup
    (List.length models) identical;
  close_out oc;
  Printf.printf "[decode throughput written to BENCH_decode.json]\n";
  if not identical then begin
    Printf.printf "[decode probe: DETERMINISM VIOLATION]\n";
    exit 1
  end

(* ---- post-injection detach probe (DESIGN.md Â§20) -------------------------
   The same fixed-seed DC+EP x 3-tool campaign runs with detach off and
   on; the outcome tables (counts and summed modeled cost) must be
   bit-identical, and the execute-time REFINE/PINFI ratio with detach on
   is the paper's â1.2x claim measured wall-clock rather than modeled.
   Returns the JSON fragment embedded in BENCH_obs.json. *)

let detach_section () =
  section "Post-injection detach (detach-off vs detach-on wall time)";
  let timed f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (Unix.gettimeofday () -. t0, v)
  in
  let progs = [ "DC"; "EP" ] in
  let srcs = List.map (fun nm -> (nm, (Reg.find nm).Reg.source)) progs in
  let n = min samples 300 in
  let key (c : E.cell) = (c.E.program, T.kind_name c.E.tool, c.E.counts, c.E.injection_cost) in
  let leg () =
    T.reset_artifact_caches ();
    timed (fun () -> E.run_matrix ~samples:n ~seed srcs Rep.tools)
  in
  T.use_detach := false;
  let off_s, off_cells = leg () in
  T.use_detach := true;
  let on_s, on_cells = leg () in
  let exec_total tool cells =
    List.fold_left
      (fun acc program -> acc +. (E.find_cell cells ~program ~tool).E.timing.E.execute_s)
      0.0 progs
  in
  let ratio cells =
    let pinfi = exec_total T.Pinfi cells in
    if pinfi > 0.0 then exec_total T.Refine cells /. pinfi else 0.0
  in
  let off_ratio = ratio off_cells and on_ratio = ratio on_cells in
  let identical = List.map key off_cells = List.map key on_cells in
  Printf.printf "campaign (%s x 3 tools x %d): detach off %.2fs, on %.2fs (%.2fx)\n"
    (String.concat "+" progs) n off_s on_s
    (if on_s > 0.0 then off_s /. on_s else 0.0);
  Printf.printf "REFINE execute time vs PINFI: %.2fx attached, %.2fx detached (paper: ~1.2x)\n"
    off_ratio on_ratio;
  Printf.printf "outcome tables: %s\n"
    (if identical then "bit-identical detach on vs off" else "MISMATCH detach on vs off");
  if not identical then begin
    Printf.printf "[detach probe: DETERMINISM VIOLATION]\n";
    exit 1
  end;
  Printf.sprintf
    "{ \"samples\": %d, \"off_wall_s\": %.6f, \"on_wall_s\": %.6f, \
     \"refine_vs_pinfi_attached\": %.4f, \"refine_vs_pinfi_detached\": %.4f, \
     \"identical\": %b }"
    n off_s on_s off_ratio on_ratio identical

(* ---- Bechamel micro-benchmarks ------------------------------------------ *)

let bechamel_section () =
  let open Bechamel in
  let open Toolkit in
  section "Bechamel micro-benchmarks (the unit operation each table/figure repeats)";
  let src = (Reg.find "DC").Reg.source in
  let p_llfi = T.prepare T.Llfi src in
  let p_refine = T.prepare T.Refine src in
  let p_pinfi = T.prepare T.Pinfi src in
  let rng = Refine_support.Prng.create 99 in
  let inject p () = ignore (T.run_injection p (Refine_support.Prng.split rng)) in
  let chi2_input = [| [| 395; 168; 505 |]; [| 269; 70; 729 |] |] in
  let tests =
    [
      Test.make ~name:"figure4 injection-llfi(DC)" (Staged.stage (inject p_llfi));
      Test.make ~name:"figure4 injection-refine(DC)" (Staged.stage (inject p_refine));
      Test.make ~name:"figure4 injection-pinfi(DC)" (Staged.stage (inject p_pinfi));
      Test.make ~name:"table4+5 chi-squared-test"
        (Staged.stage (fun () -> ignore (Refine_stats.Chi2.test chi2_input)));
      Test.make ~name:"table6 classify-output"
        (Staged.stage (fun () ->
             ignore
               (Refine_core.Fault.classify p_pinfi.T.profile
                  {
                    Refine_machine.Exec.status = Refine_machine.Exec.Exited 0;
                    output = p_pinfi.T.profile.Refine_core.Fault.golden_output;
                    steps = 0L;
                    cost = 0L;
                    truncated = false;
                    detached = false;
                    drain_steps = 0;
                  })));
      Test.make ~name:"figure5 compile-pipeline(DC)"
        (Staged.stage (fun () ->
             let m = Refine_minic.Frontend.compile src in
             Refine_passes.Pipeline.optimize Refine_passes.Pipeline.O2 m;
             ignore (Refine_passes.Pipeline.compile m)));
      Test.make ~name:"listing1+2 refine-backend-pass(DC)"
        (Staged.stage (fun () ->
             let m = Refine_minic.Frontend.compile src in
             Refine_passes.Pipeline.optimize Refine_passes.Pipeline.O2 m;
             ignore
               (Refine_passes.Pipeline.run
                  (Refine_passes.Pipeline.parse "isel,regalloc,frame,peephole,refine-fi") m)));
    ]
  in
  let test = Test.make_grouped ~name:"refine" ~fmt:"%s %s" tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  let raw_results = Benchmark.all cfg instances test in
  let results = List.map (fun instance -> Analyze.all ols instance raw_results) instances in
  let results = Analyze.merge ols instances results in
  let rows = ref [] in
  Hashtbl.iter
    (fun _ v ->
      Hashtbl.iter
        (fun name ols_result ->
          let cell =
            match Analyze.OLS.estimates ols_result with
            | Some (est :: _) -> Printf.sprintf "%.0f" est
            | _ -> "n/a"
          in
          rows := (name, cell) :: !rows)
        v)
    results;
  let rows = List.sort compare !rows in
  Tbl.print
    ~align:[ Tbl.Left; Tbl.Right ]
    ~header:[ "operation"; "ns/run" ]
    (List.map (fun (n, e) -> [ n; e ]) rows)

(* ---- extensions: §4.5 opcode corruption, cited multi-bit variants,
   and the PreFI state-saving ablation ------------------------------------ *)

let extensions_section () =
  section "Extensions - opcode corruption (paper par. 4.5), double-bit faults, PreFI ablation";
  let src = (Reg.find "EP").Reg.source in
  let n = min samples 200 in
  (* opcode corruption *)
  let m = Refine_minic.Frontend.compile src in
  Refine_passes.Pipeline.optimize Refine_passes.Pipeline.O2 m;
  let image = Refine_passes.Pipeline.compile m in
  let p = Refine_core.Opcode_fi.profile image in
  let rng = Refine_support.Prng.create seed in
  let tally = Array.make 3 0 in
  for _ = 1 to n do
    let e = Refine_core.Opcode_fi.run_injection image p (Refine_support.Prng.split rng) in
    (match e.Refine_core.Fault.outcome with
    | Refine_core.Fault.Crash -> tally.(0) <- tally.(0) + 1
    | Refine_core.Fault.Soc -> tally.(1) <- tally.(1) + 1
    | Refine_core.Fault.Benign -> tally.(2) <- tally.(2) + 1
    | Refine_core.Fault.Tool_error -> ())
  done;
  Printf.printf
    "opcode corruption on EP (%Ld corruptible dynamic instrs, n=%d):\n  crash %d  SOC %d  benign %d\n"
    p.Refine_core.Fault.dyn_count n tally.(0) tally.(1) tally.(2);
  (* double-bit vs single-bit PINFI *)
  let run_flips flips =
    let prepared = T.prepare T.Pinfi src in
    let rng = Refine_support.Prng.create (seed + flips) in
    let t = Array.make 3 0 in
    for _ = 1 to n do
      let r = Refine_support.Prng.split rng in
      let target =
        Int64.to_int
          (Int64.add 1L (Refine_support.Prng.int64 r prepared.T.profile.Refine_core.Fault.dyn_count))
      in
      let ctrl =
        Refine_core.Pinfi.create ~flips
          (Refine_core.Runtime.Inject { target; rng = r; model = Refine_core.Fault.Reg_bit })
      in
      let eng = Refine_machine.Exec.create prepared.T.image in
      Refine_core.Pinfi.attach ctrl eng;
      let res =
        Refine_machine.Exec.run
          ~max_cost:(Int64.mul 10L prepared.T.profile.Refine_core.Fault.profile_cost) eng
      in
      match Refine_core.Fault.classify prepared.T.profile res with
      | Refine_core.Fault.Crash -> t.(0) <- t.(0) + 1
      | Refine_core.Fault.Soc -> t.(1) <- t.(1) + 1
      | Refine_core.Fault.Benign -> t.(2) <- t.(2) + 1
      | Refine_core.Fault.Tool_error -> ()
    done;
    t
  in
  let one = run_flips 1 and two = run_flips 2 in
  Printf.printf
    "multi-bit model on EP (n=%d): 1-bit crash/SOC/benign %d/%d/%d ; 2-bit %d/%d/%d\n" n
    one.(0) one.(1) one.(2) two.(0) two.(1) two.(2);
  (* PreFI flags-saving ablation: without it, even profiling diverges *)
  let m2 = Refine_minic.Frontend.compile src in
  Refine_passes.Pipeline.optimize Refine_passes.Pipeline.O2 m2;
  let ctx = { Refine_passes.Pass.default_ctx with Refine_passes.Pass.save_flags = false } in
  let image2 =
    Option.get
      (Refine_passes.Pipeline.run ~ctx
         (Refine_passes.Pipeline.parse "isel,regalloc,frame,peephole,refine-fi,layout") m2)
        .Refine_passes.Pipeline.image
  in
  let ctrl = Refine_core.Runtime.create Refine_core.Runtime.Profile in
  let eng = Refine_machine.Exec.create ~ext_extra:(Refine_core.Runtime.refine_handlers ctrl) image2 in
  let r = Refine_machine.Exec.run ~max_cost:500_000_000L eng in
  let golden = (T.prepare T.Pinfi src).T.profile.Refine_core.Fault.golden_output in
  let diverged =
    match r.Refine_machine.Exec.status with
    | Refine_machine.Exec.Exited 0 -> r.Refine_machine.Exec.output <> golden
    | _ -> true
  in
  Printf.printf
    "PreFI ablation (no FLAGS save/restore): fault-free run %s - Figure 2's state saving is load-bearing\n"
    (if diverged then "DIVERGES from golden output" else "unexpectedly matches")

(* ---- BENCH_shard.json: sharded-campaign throughput + recovery probe ------
   A small fixed matrix (DC+EP x 3 tools) sharded over 1, 2 and 4 worker
   processes, plus one 2-worker run with a SIGKILL mid-campaign.  Every
   configuration must produce identical counts (the determinism guarantee);
   the probe reports throughput per worker count and the wall-clock cost of
   one kill-and-reassign cycle. *)

let shard_section () =
  let module C = Refine_campaign.Coordinator in
  section "Sharded campaign (worker processes, crash recovery)";
  let progs = [ "DC"; "EP" ] in
  let srcs = List.map (fun n -> (n, (Reg.find n).Reg.source)) progs in
  let n = min samples 48 in
  let experiments = List.length progs * 3 * n in
  let key (c : E.cell) = (c.E.program, T.kind_name c.E.tool, c.E.counts, c.E.injection_cost) in
  let run ?(chaos = C.no_chaos) workers =
    let options = { C.default_options with C.workers; chaos } in
    let t0 = Unix.gettimeofday () in
    let cells = C.run_matrix ~options ~samples:n ~seed srcs Rep.tools in
    (Unix.gettimeofday () -. t0, List.map key cells)
  in
  let counter name =
    match Obs.Metrics.find name [] with Some (Obs.Metrics.Counter v) -> v | _ -> 0L
  in
  let runs = List.map (fun w -> (w, run w)) [ 1; 2; 4 ] in
  let _, (_, reference) = List.hd runs in
  List.iter
    (fun (w, (wall, keys)) ->
      Printf.printf "  workers=%d  %6.2fs  %7.0f samples/s  %s\n" w wall
        (float_of_int experiments /. wall)
        (if keys = reference then "bit-identical" else "MISMATCH"))
    runs;
  let reassigned0 = counter "refine_shard_reassigned_cells_total" in
  let kill_wall, kill_keys =
    run ~chaos:{ C.no_chaos with C.kill_worker = Some (0, experiments / 4) } 2
  in
  let reassigned = Int64.sub (counter "refine_shard_reassigned_cells_total") reassigned0 in
  let base_wall = List.assoc 2 (List.map (fun (w, (wall, _)) -> (w, wall)) runs) in
  Printf.printf "  kill drill (workers=2, 1 SIGKILL): %6.2fs (+%.2fs vs clean), %Ld reassigned, %s\n"
    kill_wall (kill_wall -. base_wall) reassigned
    (if kill_keys = reference then "bit-identical" else "MISMATCH");
  let oc = open_out "BENCH_shard.json" in
  Printf.fprintf oc "{\n  \"experiments\": %d,\n  \"configs\": [\n%s\n  ],\n" experiments
    (String.concat ",\n"
       (List.map
          (fun (w, (wall, keys)) ->
            Printf.sprintf
              "    { \"workers\": %d, \"wall_s\": %.6f, \"samples_per_s\": %.1f, \"identical\": %b }"
              w wall
              (float_of_int experiments /. wall)
              (keys = reference))
          runs));
  Printf.fprintf oc
    "  \"kill_drill\": { \"workers\": 2, \"wall_s\": %.6f, \"overhead_s\": %.6f, \"reassigned_samples\": %Ld, \"identical\": %b }\n}\n"
    kill_wall (kill_wall -. base_wall) reassigned (kill_keys = reference);
  close_out oc;
  Printf.printf "[shard probe written to BENCH_shard.json]\n";
  if List.exists (fun (_, (_, keys)) -> keys <> reference) runs || kill_keys <> reference then begin
    Printf.printf "[shard probe: DETERMINISM VIOLATION]\n";
    exit 1
  end

(* ---- BENCH_faultmodels.json: cross-layer fault-model probe ----------------
   DESIGN.md §18: the same (DC+EP x 3 tools) matrix under every fault model
   — register bit (the paper's), memory cell, instruction image, 3-bit
   independent and 4-bit burst.  Reports per-model campaign wall time
   (overhead vs reg) and the outcome-distribution shift vs the reg-bit
   reference (total variation distance over crash/SOC/benign), and checks
   the new refine_injections_total{tool,model} series lint clean. *)

let faultmodels_section () =
  section "Cross-layer fault models (reg / mem / instr / multi:3 / burst:4)";
  let module F = Refine_core.Fault in
  let progs = [ "DC"; "EP" ] in
  let srcs = List.map (fun n -> (n, (Reg.find n).Reg.source)) progs in
  let n = min samples 48 in
  let models = [ "reg"; "mem"; "instr"; "multi:3"; "burst:4" ] in
  let dist (cells : E.cell list) =
    let tot = List.fold_left (fun acc (c : E.cell) -> acc + E.total c.E.counts) 0 cells in
    let sum f = List.fold_left (fun acc (c : E.cell) -> acc + f c.E.counts) 0 cells in
    let p x = float_of_int x /. float_of_int (max 1 tot) in
    (p (sum (fun c -> c.E.crash)), p (sum (fun c -> c.E.soc)), p (sum (fun c -> c.E.benign)))
  in
  let tv (c1, s1, b1) (c2, s2, b2) =
    0.5 *. (abs_float (c1 -. c2) +. abs_float (s1 -. s2) +. abs_float (b1 -. b2))
  in
  let runs =
    List.map
      (fun name ->
        let model = F.model_of_string name in
        let t0 = Unix.gettimeofday () in
        let cells = E.run_matrix ~model ~samples:n ~seed srcs Rep.tools in
        (name, Unix.gettimeofday () -. t0, dist cells))
      models
  in
  let _, reg_wall, reg_dist = List.hd runs in
  List.iter
    (fun (name, wall, d) ->
      let c, s, b = d in
      Printf.printf "  %-8s %6.2fs (%.2fx vs reg)  crash/SOC/benign %4.1f/%4.1f/%4.1f%%  shift vs reg %.3f\n"
        name wall
        (if reg_wall > 0.0 then wall /. reg_wall else 0.0)
        (100.0 *. c) (100.0 *. s) (100.0 *. b) (tv d reg_dist))
    runs;
  (* the per-model injection counters must lint clean *)
  (match Promlint.lint (Obs.Metrics.dump ()) with
  | [] -> Printf.printf "  promlint: injection counters clean\n"
  | errs ->
    Printf.printf "[fault-model probe: PROMLINT VIOLATION: %s]\n" (String.concat "; " errs);
    exit 1);
  let oc = open_out "BENCH_faultmodels.json" in
  Printf.fprintf oc "{\n  \"experiments_per_model\": %d,\n  \"models\": [\n%s\n  ]\n}\n"
    (List.length progs * 3 * n)
    (String.concat ",\n"
       (List.map
          (fun (name, wall, d) ->
            let c, s, b = d in
            Printf.sprintf
              "    { \"model\": \"%s\", \"wall_s\": %.6f, \"overhead_vs_reg\": %.3f, \
               \"crash\": %.4f, \"soc\": %.4f, \"benign\": %.4f, \"shift_vs_reg\": %.4f }"
              name wall
              (if reg_wall > 0.0 then wall /. reg_wall else 0.0)
              c s b (tv d reg_dist))
          runs));
  close_out oc;
  Printf.printf "[fault-model probe written to BENCH_faultmodels.json]\n"

(* ---- live status endpoint overhead probe ---------------------------------
   DESIGN.md §17: with observability on, workers forward telemetry from
   their heartbeat slot whether or not anyone is watching; the /status
   server adds an accept loop to the coordinator's select rotation.  This
   probe runs the same 2-worker campaign with the server off and on — the
   delta is the cost of serving live status, and it must stay at noise
   level.  Returns the JSON fragment embedded in BENCH_obs.json. *)

let live_section () =
  let module C = Refine_campaign.Coordinator in
  section "Live status endpoint (2-worker campaign, server off vs on)";
  let progs = [ "DC"; "EP" ] in
  let srcs = List.map (fun n -> (n, (Reg.find n).Reg.source)) progs in
  let n = min samples 48 in
  let experiments = List.length progs * 3 * n in
  let key (c : E.cell) = (c.E.program, T.kind_name c.E.tool, c.E.counts, c.E.injection_cost) in
  let run status =
    let options = { C.default_options with C.workers = 2; status } in
    let t0 = Unix.gettimeofday () in
    let cells = C.run_matrix ~options ~samples:n ~seed srcs Rep.tools in
    (Unix.gettimeofday () -. t0, List.map key cells)
  in
  (* unmeasured warmup: the first worker fleet pays cold-start costs
     (page cache, allocator growth) that would masquerade as overhead *)
  ignore (run None);
  let off_s, off_keys = run None in
  let srv = Obs.Serve.create () in
  let port = Obs.Serve.port srv in
  let on_s, on_keys = run (Some srv) in
  Obs.Serve.close srv;
  let overhead_pct = if off_s > 0.0 then 100.0 *. ((on_s /. off_s) -. 1.0) else 0.0 in
  let identical = off_keys = on_keys in
  Printf.printf "  server off %.2fs, on %.2fs (port %d): %+.1f%% overhead, %s\n" off_s on_s port
    overhead_pct
    (if identical then "bit-identical" else "MISMATCH");
  if not identical then begin
    Printf.printf "[live probe: DETERMINISM VIOLATION]\n";
    exit 1
  end;
  Printf.sprintf
    "{ \"workers\": 2, \"experiments\": %d, \"server_off_wall_s\": %.6f, \"server_on_wall_s\": \
     %.6f, \"overhead_pct\": %.2f, \"identical\": %b }"
    experiments off_s on_s overhead_pct identical

(* ---- main ---------------------------------------------------------------- *)

(* when a shard coordinator (the campaign above, or another process) spawns
   this binary as a worker, serve frames and exit before benchmarking *)
let () = Refine_campaign.Worker.maybe_exec ()

let () =
  (* the simulator allocates small boxed values at a high rate; a larger
     minor heap keeps the GC out of the hot loop *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 };
  Printf.printf
    "REFINE reproduction - evaluation harness (paper: SC'17, 10.1145/3126908.3126972)\n";
  Printf.printf "programs: %s\n" (String.concat ", " programs);
  let obs = getenv_default "REFINE_OBS" "1" <> "0" in
  if obs then Obs.Control.enable ();
  let fastpath = getenv_default "REFINE_FASTPATH" "1" <> "0" in
  T.use_fast_path := fastpath;
  print_table3 ();
  print_setting ();
  print_listings ();
  let cells, campaign_wall = run_campaign () in
  print_figure4 cells;
  print_table4 cells;
  print_table5 cells;
  print_table6 cells;
  print_figure5 cells;
  print_overhead cells;
  let obs_counters = if obs then Some (capture_obs_counters ()) else None in
  if getenv_default "REFINE_QUOTAS" "1" <> "0" then quotas_section ();
  if getenv_default "REFINE_PASSES" "1" <> "0" then passes_section ();
  if fastpath then begin
    let experiments = List.length programs * 3 * samples in
    let campaign_sps =
      if campaign_wall > 0.0 then float_of_int experiments /. campaign_wall else 0.0
    in
    fastpath_section ~campaign_sps ()
  end;
  if getenv_default "REFINE_DECODE" "1" <> "0" then decode_section ();
  if getenv_default "REFINE_SHARD" "1" <> "0" then shard_section ();
  if getenv_default "REFINE_FAULTMODELS" "1" <> "0" then faultmodels_section ();
  let detach =
    if getenv_default "REFINE_DETACH" "1" <> "0" then Some (detach_section ()) else None
  in
  let live =
    if obs && getenv_default "REFINE_LIVE" "1" <> "0" then Some (live_section ()) else None
  in
  (match obs_counters with
  | Some counters -> write_obs_json ?live ?detach counters cells campaign_wall
  | None -> ());
  if getenv_default "REFINE_EXTENSIONS" "1" <> "0" then extensions_section ();
  if getenv_default "REFINE_BECHAMEL" "1" <> "0" then bechamel_section ();
  print_newline ()
