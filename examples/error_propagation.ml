(* Error-propagation analysis integrated with fault injection — the
   integration the paper's introduction motivates: "performing injections
   in the compiler permits close integration with error-propagation
   analysis as both classes of analysis operate in the same software
   layer".

   The static forward-slice analysis of [Refine_core.Propagation] predicts,
   per IR value, whether a fault in it is crash-prone (reaches a memory
   address), SDC-prone (reaches output/memory/control) or likely benign
   (reaches nothing observable).  The demo compares the static prediction
   histogram with the measured outcome distribution of an IR-level (LLFI)
   campaign on the same program.

     dune exec examples/error_propagation.exe *)

module T = Refine_core.Tool
module F = Refine_core.Fault
module Prop = Refine_core.Propagation
module P = Refine_support.Prng
module I = Refine_ir.Ir

let source =
  {|
global int n = 40;
global float table[40];
global float out[40];

int main() {
  int i;
  float norm = 0.0;
  for (i = 0; i < n; i = i + 1) { table[i] = sin(tofloat(i) * 0.31) + 1.5; }
  for (i = 0; i < n; i = i + 1) {
    int j = (i * 17) % n;          // index arithmetic: crash-prone slice
    float v = table[j] * 2.0;      // data flow into output: SDC-prone
    out[i] = v;
    norm = norm + v * v;           // accumulator: SDC-prone
  }
  print_float(sqrt(norm));
  for (i = 0; i < n; i = i + 4) { print_float(out[i]); }
  return 0;
}
|}

let () =
  print_endline "== error-propagation analysis vs measured fault injection ==\n";
  (* static analysis on the optimized IR *)
  let m = T.build_ir source in
  let main = I.find_func m "main" in
  let crash, sdc, benign = Prop.summarize main in
  let total = crash + sdc + benign in
  Printf.printf "static forward-slice predictions over %d IR values (main):\n" total;
  let pct x = 100.0 *. float_of_int x /. float_of_int (max 1 total) in
  Printf.printf "  crash-prone  (reach an address):          %2d  (%.0f%%)\n" crash (pct crash);
  Printf.printf "  SDC-prone    (reach output/memory/branch): %2d  (%.0f%%)\n" sdc (pct sdc);
  Printf.printf "  benign-prone (reach nothing observable):   %2d  (%.0f%%)\n\n" benign (pct benign);
  (* a few concrete slices *)
  print_endline "sample slices:";
  List.iter
    (fun (b : I.block) ->
      List.iter
        (fun i ->
          match I.instr_def i with
          | Some d when d mod 11 = 0 ->
            let inf = Prop.analyze main d in
            Printf.printf "  %-34s -> %-12s (fanout %d%s%s%s)\n"
              (Refine_ir.Printer.string_of_instr i)
              (Prop.string_of_prediction (Prop.predict inf))
              inf.Prop.fanout
              (if inf.Prop.reaches_address then ", addr" else "")
              (if inf.Prop.reaches_output then ", output" else "")
              (if inf.Prop.reaches_control then ", control" else "")
          | _ -> ())
        b.I.body)
    main.I.blocks;
  (* measured IR-level outcomes on the same program *)
  let prepared = T.prepare T.Llfi source in
  let rng = P.create 11 in
  let c = ref 0 and s = ref 0 and b = ref 0 in
  let samples = 250 in
  for _ = 1 to samples do
    match (T.run_injection prepared (P.split rng)).F.outcome with
    | F.Crash -> incr c
    | F.Soc -> incr s
    | F.Benign -> incr b
    | F.Tool_error -> ()
  done;
  Printf.printf "\nmeasured LLFI outcomes over %d dynamic injections:\n" samples;
  let pctm x = 100.0 *. float_of_int x /. float_of_int samples in
  Printf.printf "  crash %.0f%%   SOC %.0f%%   benign %.0f%%\n" (pctm !c) (pctm !s) (pctm !b);
  print_endline
    "\n(The static histogram weighs each IR value once while the dynamic\n\
     campaign weighs values by execution count, and bit position decides\n\
     masking — the prediction gives the structure, injection the rates.)"
