(* Codegen tour: reproduces the paper's Listings 1 and 2 on this
   repository's compiler.

   - Listing 1: the same function at the IR level and at the machine level;
     the machine version contains prologue/epilogue, spills and flag writes
     that the IR never shows — the instructions IR-level FI cannot target.
   - Listing 2: the assembly of a kernel compiled clean vs compiled after
     LLFI-style IR instrumentation — the injectFault calls force register
     spills and block compare/branch fusion.
   - Bonus: the same kernel after the REFINE backend pass, showing the
     PreFI/SetupFI/FI/PostFI block structure spliced into final code.

     dune exec examples/codegen_tour.exe *)

module I = Refine_ir.Ir
module MF = Refine_mir.Mfunc

let source =
  {|
global float local_residual;
float compute_residual(float[] v1, float[] v2, int n) {
  float residual = 0.0;
  int i;
  for (i = 0; i < n; i = i + 1) {
    float diff = fabs(v1[i] - v2[i]);
    if (diff > residual) { residual = diff; }
  }
  return residual;
}
int main() {
  int i;
  float[] a = alloc_float(16);
  float[] b = alloc_float(16);
  for (i = 0; i < 16; i = i + 1) { a[i] = tofloat(i); b[i] = tofloat(i * i) * 0.1; }
  local_residual = compute_residual(a, b, 16);
  print_float(local_residual);
  return 0;
}
|}

let find_mfunc funcs name = List.find (fun (mf : MF.t) -> mf.MF.mname = name) funcs

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let () =
  (* ---- Listing 1: IR vs machine code ---- *)
  let m = Refine_minic.Frontend.compile source in
  Refine_passes.Pipeline.optimize Refine_passes.Pipeline.O2 m;
  banner "Listing 1a — compute_residual, optimized IR (what LLFI sees)";
  print_string (Refine_ir.Printer.string_of_func (I.find_func m "compute_residual"));
  let funcs = Refine_passes.Pipeline.to_mir m in
  banner "Listing 1b — compute_residual, SX64 machine code (note prologue/epilogue)";
  print_string (Refine_mir.Mprinter.string_of_func (find_mfunc funcs "compute_residual"));
  (* ---- Listing 2: codegen interference by LLFI instrumentation ---- *)
  let m2 = Refine_minic.Frontend.compile source in
  Refine_passes.Pipeline.optimize Refine_passes.Pipeline.O2 m2;
  ignore (Refine_passes.Pipeline.run_ir { Refine_passes.Pipeline.empty with ir = [ "llfi-fi" ] } m2);
  banner "Listing 2a — the same IR after LLFI instrumentation (excerpt)";
  let f2 = I.find_func m2 "compute_residual" in
  let listing = Refine_ir.Printer.string_of_func f2 in
  (* print the first 25 lines *)
  String.split_on_char '\n' listing
  |> List.filteri (fun i _ -> i < 25)
  |> List.iter print_endline;
  let funcs2 = Refine_passes.Pipeline.to_mir m2 in
  let clean = find_mfunc funcs "compute_residual" in
  let instr = find_mfunc funcs2 "compute_residual" in
  banner "Listing 2b/2c — codegen interference, by the numbers";
  Printf.printf "machine instructions: clean %d -> LLFI-instrumented %d\n"
    (MF.instr_count clean) (MF.instr_count instr);
  Printf.printf "frame bytes (locals + spills): clean %d -> LLFI-instrumented %d\n"
    clean.MF.frame_bytes instr.MF.frame_bytes;
  Printf.printf "callee-saved registers used: clean %d -> LLFI-instrumented %d\n"
    (List.length clean.MF.used_callee_saved)
    (List.length instr.MF.used_callee_saved);
  (* ---- the REFINE backend pass output ---- *)
  let m3 = Refine_minic.Frontend.compile source in
  Refine_passes.Pipeline.optimize Refine_passes.Pipeline.O2 m3;
  let out3 =
    Refine_passes.Pipeline.run
      (Refine_passes.Pipeline.parse "isel,regalloc,frame,peephole,refine-fi") m3
  in
  let target = find_mfunc out3.Refine_passes.Pipeline.funcs "compute_residual" in
  banner
    (Printf.sprintf
       "REFINE backend pass — %d sites instrumented module-wide; first PreFI/SetupFI/FI/PostFI \
        group"
       out3.Refine_passes.Pipeline.fi_sites);
  let listing = Refine_mir.Mprinter.string_of_func target in
  String.split_on_char '\n' listing
  |> List.filteri (fun i _ -> i < 34)
  |> List.iter print_endline;
  print_endline "...";
  Printf.printf
    "\n(The application instructions above are byte-identical to the clean binary's:\n\
     REFINE adds code only *between* them, after all optimizations — §4.2.2.)\n"
