(* Selective fault injection: the compiler-flag interface of the paper's
   Table 2 — -fi-funcs restricts instrumentation to given functions,
   -fi-instrs to instruction classes (stack / arithm / mem / all).

   The example shows how the selection changes the dynamic FI population
   and the outcome distribution, and demonstrates the structural gap at the
   IR level: LLFI has *zero* stack-class targets.

     dune exec examples/selective_fi.exe *)

module T = Refine_core.Tool
module F = Refine_core.Fault
module Sel = Refine_passes.Selection
module P = Refine_support.Prng
module Tbl = Refine_support.Table

let source =
  {|
global int n = 48;
global float xs[48];
global float ws[48];

float reduce(int m) {
  float s = 0.0;
  int i;
  for (i = 0; i < m; i = i + 1) { s = s + xs[i] * ws[i]; }
  return s;
}

void setup(int m) {
  int i;
  for (i = 0; i < m; i = i + 1) {
    xs[i] = tofloat(i % 11) * 0.3;
    ws[i] = 1.0 / tofloat(i + 1);
  }
}

int main() {
  int r;
  setup(n);
  float total = 0.0;
  for (r = 0; r < 6; r = r + 1) { total = total + reduce(n); }
  print_float(total);
  return 0;
}
|}

let run_config name sel =
  let prepared = T.prepare ~sel T.Refine source in
  let rng = P.create 7 in
  let tally = ref (0, 0, 0) in
  let samples = 120 in
  for _ = 1 to samples do
    let e = T.run_injection prepared (P.split rng) in
    let c, s, b = !tally in
    tally :=
      (match e.F.outcome with
      | F.Crash -> (c + 1, s, b)
      | F.Soc -> (c, s + 1, b)
      | F.Benign -> (c, s, b + 1)
      | F.Tool_error -> (c, s, b))
  done;
  let c, s, b = !tally in
  [
    name;
    Int64.to_string prepared.T.profile.F.dyn_count;
    string_of_int prepared.T.static_instrumented;
    Printf.sprintf "%d/%d/%d" c s b;
  ]

let () =
  print_endline "== selective fault injection (Table 2 flags) ==";
  print_endline "tool: REFINE; 120 injections per configuration\n";
  let rows =
    [
      run_config "-fi-funcs=* -fi-instrs=all" Sel.default;
      run_config "-fi-funcs=reduce" Sel.{ funcs = [ "reduce" ]; instrs = All };
      run_config "-fi-funcs=setup" Sel.{ funcs = [ "setup" ]; instrs = All };
      run_config "-fi-instrs=arithm" Sel.{ funcs = [ "*" ]; instrs = Arith };
      run_config "-fi-instrs=mem" Sel.{ funcs = [ "*" ]; instrs = Mem };
      run_config "-fi-instrs=stack" Sel.{ funcs = [ "*" ]; instrs = Stack };
    ]
  in
  Tbl.print
    ~align:[ Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Right ]
    ~header:[ "configuration"; "dyn targets"; "static sites"; "crash/SOC/benign" ]
    rows;
  (* the IR-level structural gap *)
  print_newline ();
  let llfi_stack =
    T.prepare ~sel:Sel.{ funcs = [ "*" ]; instrs = Stack } T.Llfi source
  in
  Printf.printf
    "LLFI with -fi-instrs=stack: %Ld dynamic targets — the IR has no stack\n\
     management instructions at all (paper §3.3.1 / Table 1).\n"
    llfi_stack.T.profile.F.dyn_count
