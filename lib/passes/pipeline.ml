(* The unified cross-layer pipeline manager (DESIGN.md §15).

   A pipeline spec is a textual, round-trippable description of the whole
   compile spine — IR passes, the "isel" layer transition, MIR passes, and
   the final "layout" emission step:

       mem2reg,constfold,...,isel,regalloc,frame,peephole,refine-fi,layout

   The -O0/-O1/-O2 aliases expand to canonical specs ([of_level]); FI
   instrumentation (refine-fi / llfi-fi) plugs in as ordinary passes at
   the position that defines each tool's accuracy (paper Figure 1).

   The runner interleaves verification behind [verify_each] (the IR
   verifier after every IR pass, the MIR verifier after every MIR pass,
   [Mverify.check_instrumented] once a REFINE splice is in place), always
   re-checks instrumented code at the end of the MIR stage under
   [verify_fi], and records per-pass wall time and run counts through the
   observability layer ([refine_pass_seconds{pass,layer}] histograms plus
   a span per pass, nested under whatever campaign span is open). *)

module I = Refine_ir.Ir
module F = Refine_mir.Mfunc
module Obs = Refine_obs

type spec = {
  ir : string list;  (* IR passes, in order *)
  isel : bool;  (* lower to MIR *)
  mir : string list;  (* MIR passes, in order (requires isel) *)
  layout : bool;  (* emit the image (requires isel) *)
}

let empty = { ir = []; isel = false; mir = []; layout = false }

exception Parse_error of string

let perr fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let known_names () = String.concat ", " (List.map (fun (p : Pass.t) -> p.Pass.name) (Pass.all ()))

let parse s =
  let toks =
    String.split_on_char ',' s |> List.map String.trim |> List.filter (fun t -> t <> "")
  in
  let check_layer want name =
    match Pass.find name with
    | None -> perr "unknown pass %S (known: %s)" name (known_names ())
    | Some p ->
      if p.Pass.layer <> want then
        perr "%s is a %s pass on the wrong side of isel" name (Pass.layer_name p.Pass.layer)
  in
  let rec ir_side acc = function
    | [] -> { empty with ir = List.rev acc }
    | "isel" :: rest -> mir_side (List.rev acc) [] rest
    | "layout" :: _ -> perr "layout requires isel before it"
    | name :: rest ->
      check_layer Pass.IR name;
      ir_side (name :: acc) rest
  and mir_side ir acc = function
    | [] -> { ir; isel = true; mir = List.rev acc; layout = false }
    | [ "layout" ] -> { ir; isel = true; mir = List.rev acc; layout = true }
    | "layout" :: _ -> perr "layout must be the last pipeline step"
    | "isel" :: _ -> perr "duplicate isel"
    | name :: rest ->
      check_layer Pass.MIR name;
      mir_side ir (name :: acc) rest
  in
  ir_side [] toks

let print spec =
  String.concat ","
    (spec.ir
    @ (if spec.isel then ("isel" :: spec.mir) @ (if spec.layout then [ "layout" ] else [])
       else []))

let equal (a : spec) (b : spec) = a = b

let ensure_layout spec = { spec with isel = true; layout = true }

(* insert before layout; no-op when the pass is already present *)
let append_mir spec name =
  if List.mem name spec.mir then spec else { spec with isel = true; mir = spec.mir @ [ name ] }

let append_ir spec name = if List.mem name spec.ir then spec else { spec with ir = spec.ir @ [ name ] }

(* ---- -O aliases -------------------------------------------------------- *)

type level = O0 | O1 | O2

let level_of_string = function
  | "O0" | "0" -> O0
  | "O1" | "1" -> O1
  | "O2" | "2" -> O2
  | s -> invalid_arg ("Pipeline.level_of_string: " ^ s)

let string_of_level = function O0 -> "O0" | O1 -> "O1" | O2 -> "O2"

(* one clean-up round: constant folding, CFG simplification, CSE, local
   memory optimization, DCE, and a final fold+simplify *)
let clean_names = [ "constfold"; "simplifycfg"; "cse"; "memopt"; "dce"; "constfold"; "simplifycfg" ]

let backend_names = [ "regalloc"; "frame"; "peephole" ]

let ir_of_level = function
  | O0 -> []
  | O1 -> "mem2reg" :: clean_names
  | O2 ->
    ("mem2reg" :: clean_names)
    @ [ "sccp"; "simplifycfg"; "licm" ]
    @ clean_names
    @ [ "cse"; "dce"; "simplifycfg"; "inline" ]

let of_level level = { ir = ir_of_level level; isel = true; mir = backend_names; layout = true }

(* ---- per-pass observability ------------------------------------------- *)

let pass_buckets = [| 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 |]

let pass_hist : (string, Obs.Metrics.histogram) Hashtbl.t = Hashtbl.create 32

let hist_for name layer =
  let key = name ^ "\000" ^ Pass.layer_name layer in
  match Hashtbl.find_opt pass_hist key with
  | Some h -> h
  | None ->
    let h =
      Obs.Metrics.histogram ~help:"per-pass wall time (sum = seconds, count = runs)"
        ~labels:[ ("pass", name); ("layer", Pass.layer_name layer) ]
        ~buckets:pass_buckets "refine_pass_seconds"
    in
    Hashtbl.add pass_hist key h;
    h

(* Time one pipeline step: bucket the wall time into the phase collector
   ("instrument" for FI passes, "compile" otherwise), and — when
   observability is on — observe the per-pass histogram and emit a span. *)
let timed ?phases ~name ~layer ~fi f =
  let t0 = Obs.Control.now () in
  let finish () =
    let dt = Obs.Control.now () -. t0 in
    (match phases with
    | Some p -> Obs.Phase.add p (if fi then "instrument" else "compile") dt
    | None -> ());
    if Obs.Control.enabled () then begin
      Obs.Metrics.observe (hist_for name layer) dt;
      Obs.Span.emit
        ~attrs:[ ("pass", name); ("layer", Pass.layer_name layer) ]
        ~name:"pass" ~dur_s:dt ()
    end
  in
  match f () with
  | v -> finish (); v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    finish ();
    Printexc.raise_with_backtrace e bt

(* ---- runner ------------------------------------------------------------ *)

type outcome = {
  funcs : F.t list;  (* machine functions after the MIR stage; [] without isel *)
  image : Refine_backend.Layout.image option;  (* Some iff the spec ends in layout *)
  fi_sites : int;  (* static sites reported by FI passes, summed *)
}

let lookup name =
  match Pass.find name with
  | Some p -> p
  | None -> perr "unknown pass %S (known: %s)" name (known_names ())

let run_ir ?(ctx = Pass.default_ctx) ?(verify_each = false) ?phases spec (m : I.modul) =
  List.fold_left
    (fun acc name ->
      let p = lookup name in
      let run =
        match p.Pass.impl with
        | Pass.Ir_impl f -> f
        | Pass.Mir_impl _ -> perr "%s is a MIR pass in the IR stage" name
      in
      let sites = timed ?phases ~name ~layer:Pass.IR ~fi:p.Pass.fi (fun () -> run ctx m) in
      if verify_each then Refine_ir.Verify.check_module m;
      acc + sites)
    0 spec.ir

let run ?(ctx = Pass.default_ctx) ?(verify_each = false) ?(verify_fi = false) ?phases spec
    (m : I.modul) : outcome =
  let ir_sites = run_ir ~ctx ~verify_each ?phases spec m in
  if not spec.isel then begin
    if spec.mir <> [] || spec.layout then perr "MIR passes or layout without isel";
    { funcs = []; image = None; fi_sites = ir_sites }
  end
  else begin
    let funcs =
      timed ?phases ~name:"isel" ~layer:Pass.MIR ~fi:false (fun () ->
          let global_addr, _heap = Refine_ir.Memlayout.place_globals m.I.globals in
          List.map (Refine_backend.Isel.select_func ~global_addr m) m.I.funcs)
    in
    let allow_virtual = ref true in
    (* frames captured right before the REFINE splice: check_instrumented
       asserts the instrumentation leaves them untouched *)
    let fi_frames : (F.t * int) list option ref = ref None in
    let verify_now () =
      match !fi_frames with
      | Some frames ->
        List.iter
          (fun (mf, fb) ->
            ignore (Refine_mir.Mverify.check_instrumented ~expect_frame_bytes:fb mf))
          frames
      | None -> Refine_mir.Mverify.check_funcs ~allow_virtual:!allow_virtual funcs
    in
    if verify_each then verify_now ();
    let fi_ran = ref (ir_sites > 0 || List.exists (fun n -> (lookup n).Pass.fi) spec.ir) in
    let mir_sites =
      List.fold_left
        (fun acc name ->
          let p = lookup name in
          let run =
            match p.Pass.impl with
            | Pass.Mir_impl f -> f
            | Pass.Ir_impl _ -> perr "%s is an IR pass in the MIR stage" name
          in
          if p.Pass.fi then begin
            fi_ran := true;
            if p.Pass.layer = Pass.MIR then
              fi_frames := Some (List.map (fun mf -> (mf, mf.F.frame_bytes)) funcs)
          end;
          let sites = timed ?phases ~name ~layer:Pass.MIR ~fi:p.Pass.fi (fun () -> run ctx m funcs) in
          if p.Pass.removes_vregs then allow_virtual := false;
          if verify_each then verify_now ();
          acc + sites)
        0 spec.mir
    in
    (* the instrumented-code check the campaign's accuracy claim rests on:
       always re-run at the end of the MIR stage when an FI pass ran, even
       without [verify_each] (chaos between the FI pass and here must not
       escape into an emitted image) *)
    if verify_fi && !fi_ran then verify_now ();
    let image =
      if spec.layout then
        Some
          (timed ?phases ~name:"layout" ~layer:Pass.MIR ~fi:false (fun () ->
               Refine_backend.Layout.build ~globals:m.I.globals funcs))
      else None
    in
    { funcs; image; fi_sites = ir_sites + mir_sites }
  end

(* ---- compatibility driver shims ---------------------------------------

   The pre-§15 entry points (Refine_ir.Pipeline.optimize, Compile.to_mir /
   emit / compile), now routed through the pass manager so every caller
   shares one ordering, one verifier and one set of timings. *)

let optimize ?(verify = false) level (m : I.modul) =
  ignore (run_ir { empty with ir = ir_of_level level } m);
  if verify then Refine_ir.Verify.check_module m

let to_mir ?ctx ?verify_each ?phases (m : I.modul) : F.t list =
  (run ?ctx ?verify_each ?phases
     { ir = []; isel = true; mir = backend_names; layout = false }
     m)
    .funcs

let emit (m : I.modul) (funcs : F.t list) : Refine_backend.Layout.image =
  Refine_backend.Layout.build ~globals:m.I.globals funcs

let compile ?ctx ?verify_each ?phases (m : I.modul) : Refine_backend.Layout.image =
  match
    (run ?ctx ?verify_each ?phases { ir = []; isel = true; mir = backend_names; layout = true } m)
      .image
  with
  | Some image -> image
  | None -> assert false
