(** Content-addressed prepared-artifact cache (DESIGN.md §15).

    Keys are digests of the inputs that determine an artifact (source
    text, pipeline string, tool configuration); values carry a content
    fingerprint taken at insertion, re-checked before every serve so a
    mutated artifact (chaos hooks, post-layout code mutation) is dropped —
    counted as an invalidation — instead of served. *)

val enabled : bool ref
(** Global kill switch (refinec's [--no-artifact-cache]).  Checked by the
    cache's users, not by the cache itself. *)

type 'v t

val create : name:string -> fingerprint:('v -> string) -> unit -> 'v t
(** [name] labels the metrics
    ([refine_artifact_cache_{hits,misses,invalidations}_total{cache=name}]). *)

val key : string list -> string
(** Digest of the concatenated key components (NUL-separated, so
    [["ab";"c"]] and [["a";"bc"]] stay distinct). *)

val find : 'v t -> string -> 'v option
(** Serve a cached value after re-verifying its content fingerprint; a
    mismatch removes the entry and counts as invalidation + miss. *)

val add : 'v t -> string -> 'v -> unit

type stats = { hits : int; misses : int; invalidations : int; entries : int }

val stats : 'v t -> stats
(** Plain-atomic counters — readable with observability off. *)

val clear : 'v t -> unit
(** Drop entries and zero the counters (test isolation). *)
