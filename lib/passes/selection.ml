(* Fault-injection target selection, i.e. the compiler flags of the paper's
   Table 2: -fi enables injection, -fi-funcs restricts the instrumented
   functions, -fi-instrs restricts the instruction classes. *)

module M = Refine_mir.Minstr
module I = Refine_ir.Ir

type instr_class = All | Stack | Arith | Mem

let instr_class_of_string = function
  | "all" -> All
  | "stack" -> Stack
  | "arithm" | "arith" -> Arith
  | "mem" -> Mem
  | s -> invalid_arg ("Selection.instr_class_of_string: " ^ s)

let string_of_instr_class = function
  | All -> "all" | Stack -> "stack" | Arith -> "arithm" | Mem -> "mem"

type t = {
  funcs : string list; (* function names; ["*"] selects every function *)
  instrs : instr_class;
}

let default = { funcs = [ "*" ]; instrs = All }

let func_selected t name = List.mem "*" t.funcs || List.mem name t.funcs

(* Machine-level candidates (REFINE, PINFI): the instruction must write at
   least one register; [Stack]/[Arith]/[Mem] restrict by class. *)
let minstr_selected t (i : M.t) =
  M.writes_register i
  &&
  match t.instrs with
  | All -> true
  | Stack -> M.classify i = M.Cstack
  | Arith -> M.classify i = M.Carith
  | Mem -> M.classify i = M.Cmem

(* IR-level candidates (LLFI): value-producing instructions.  Note the
   structural gaps versus the machine level, which are the paper's point:
   no stack-management class exists at all, and address arithmetic is
   limited to gep. *)
let ir_instr_selected t (i : I.instr) =
  match I.instr_def i with
  | None -> false
  | Some _ -> (
    match (t.instrs, i) with
    | _, I.Alloca _ -> false (* stack slots are not IR FI targets *)
    | All, _ -> true
    | Arith, (I.Ibinop _ | I.Fbinop _ | I.Icmp _ | I.Fcmp _ | I.Funop _ | I.Cast _ | I.Select _)
      -> true
    | Mem, (I.Load _ | I.Gep _ | I.Gaddr _) -> true
    | Stack, _ -> false (* the IR has no stack-management instructions *)
    | _ -> false)

(* Canonical text form, used as an artifact-cache key component: two
   selections with the same meaning must print identically. *)
let to_string t =
  Printf.sprintf "funcs=%s;instrs=%s" (String.concat "," t.funcs) (string_of_instr_class t.instrs)
