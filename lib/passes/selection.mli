(** Fault-injection target selection — the compiler-flag interface of the
    paper's Table 2 ([-fi-funcs], [-fi-instrs]). *)

type instr_class =
  | All  (** every instruction that writes at least one register *)
  | Stack  (** push/pop and FLAGS stack traffic — machine level only *)
  | Arith  (** ALU, FPU, compares, conversions *)
  | Mem  (** loads, stores, moves, address computation *)

val instr_class_of_string : string -> instr_class
(** Parses the [-fi-instrs] argument values: ["stack"], ["arithm"],
    ["mem"], ["all"].  Raises [Invalid_argument] otherwise. *)

val string_of_instr_class : instr_class -> string

type t = {
  funcs : string list;  (** function names; [["*"]] selects every function *)
  instrs : instr_class;
}

val default : t
(** [-fi-funcs=* -fi-instrs=all] — the paper's evaluation setting. *)

val func_selected : t -> string -> bool

val minstr_selected : t -> Refine_mir.Minstr.t -> bool
(** Machine-level candidate test used by REFINE and PINFI: the instruction
    must write a register and match the class filter. *)

val ir_instr_selected : t -> Refine_ir.Ir.instr -> bool
(** IR-level candidate test used by the LLFI pass.  Note the structural
    gaps that are the paper's point: [Stack] selects nothing (the IR has no
    stack-management instructions) and allocas are never targets. *)

val to_string : t -> string
(** Canonical text form ["funcs=a,b;instrs=all"] — stable across runs, used
    as an artifact-cache key component. *)
