(** LLFI-style IR instrumentation (paper §3.3.2, Listing 2a): after IR
    optimization, every selected value-producing instruction gets an
    [injectFault]-style runtime call appended, and all other uses of the
    value are rewritten to the call's result.

    This pass exists to reproduce the two problems the paper identifies
    with IR-level FI: the restricted injection population and the
    code-generation interference of the inserted calls (register spilling,
    broken compare/branch fusion). *)

val run : ?sel:Selection.t -> Refine_ir.Ir.modul -> int
(** Instruments the module in place; returns the number of static
    instrumentation sites.  The output passes [Refine_ir.Verify]. *)
