(* LLFI-style IR instrumentation (paper §3.3.2, Listing 2a).

   After the IR optimization pipeline has run, every selected
   value-producing IR instruction gets a call

       fi = call @llfi_inject_<ty>(id, value)

   inserted after it, and all other uses of the value are rewritten to the
   call's result.  This is faithful to how LLFI/KULFI/VULFI/FlipIt
   instrument: and it is exactly what triggers the paper's two problems —

   (1) the injection population is IR values only: no prologue/epilogue,
       no spills/reloads, no flag writes, no ABI marshaling;
   (2) the inserted calls interfere with code generation: each one clobbers
       the caller-saved registers, so the register allocator must place
       crossing live ranges in callee-saved registers or spill them, and
       compare/branch fusion and addressing-mode folding break because the
       value now flows through a call. *)

module I = Refine_ir.Ir

(* Returns the number of instrumented instructions (static). *)
let run ?(sel = Selection.default) (m : I.modul) : int =
  let next_id = ref 0 in
  let total = ref 0 in
  List.iter
    (fun (fn : I.func) ->
      if Selection.func_selected sel fn.fname then begin
        let repl : (I.value, I.value) Hashtbl.t = Hashtbl.create 32 in
        (* insert calls and record the value renaming *)
        List.iter
          (fun (b : I.block) ->
            let new_body =
              List.concat_map
                (fun i ->
                  if Selection.ir_instr_selected sel i then begin
                    match I.instr_def i with
                    | Some d ->
                      let ty = I.value_ty fn d in
                      let fd = fn.vnext in
                      fn.vnext <- fd + 1;
                      Hashtbl.add fn.vtypes fd ty;
                      Hashtbl.replace repl d fd;
                      incr total;
                      let id = !next_id in
                      incr next_id;
                      (* LLVM type widths matter: comparison results are i1,
                         so a fault in them always inverts the decision *)
                      let callee =
                        match (ty, i) with
                        | _, (I.Icmp _ | I.Fcmp _) -> "llfi_inject_i1"
                        | I.I64, _ -> "llfi_inject_i64"
                        | I.F64, _ -> "llfi_inject_f64"
                      in
                      [
                        i;
                        I.Call (Some fd, ty, callee, [ I.ICst (Int64.of_int id); I.Var d ]);
                      ]
                    | None -> [ i ]
                  end
                  else [ i ])
                b.body
            in
            b.body <- new_body)
          fn.blocks;
        (* rewrite uses (the inject calls keep the raw value) *)
        let is_inject = function
          | I.Call (_, _, ("llfi_inject_i64" | "llfi_inject_f64" | "llfi_inject_i1"), _) -> true
          | _ -> false
        in
        let subst o =
          match o with
          | I.Var v -> ( match Hashtbl.find_opt repl v with Some fd -> I.Var fd | None -> o)
          | _ -> o
        in
        List.iter
          (fun (b : I.block) ->
            b.body <-
              List.map (fun i -> if is_inject i then i else I.map_instr_uses subst i) b.body;
            b.term <- I.map_term_uses subst b.term;
            List.iter
              (fun (p : I.phi) ->
                p.incoming <- List.map (fun (l, o) -> (l, subst o)) p.incoming)
              b.phis)
          fn.blocks
      end)
    m.funcs;
  !total
