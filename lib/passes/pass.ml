(* The cross-layer pass registry (DESIGN.md §15).

   One table for every transformation the compile spine can run, at either
   layer: IR module passes (frontend output -> optimized IR, including the
   LLFI instrumentation pass) and MIR passes (post-instruction-selection
   machine functions, including the REFINE instrumentation pass).  The
   pipeline manager looks passes up here by name; `refinec passes --list`
   dumps the table — the living version of the paper's Figure 1 position
   diagram.

   "isel" and "layout" are not registry entries: they are the structural
   layer transitions of a pipeline spec (IR -> MIR and MIR -> image) and
   are handled by the runner itself. *)

module I = Refine_ir.Ir
module F = Refine_mir.Mfunc
module M = Refine_mir.Minstr
module R = Refine_mir.Reg

type layer = IR | MIR

let layer_name = function IR -> "IR" | MIR -> "MIR"

(* Instrumentation parameters threaded to the FI passes by the runner; the
   optimization passes ignore them.  [save_flags] is the PreFI-ablation
   switch of the REFINE pass. *)
type ctx = { sel : Selection.t; save_flags : bool }

let default_ctx = { sel = Selection.default; save_flags = true }

type impl =
  | Ir_impl of (ctx -> I.modul -> int)
      (** mutates the module in place; returns static FI sites (0 for
          optimization passes) *)
  | Mir_impl of (ctx -> I.modul -> F.t list -> int)
      (** mutates the machine functions in place; same return contract *)

type t = {
  name : string;
  layer : layer;
  descr : string;
  fi : bool;  (* instrumentation pass: wall time bills to "instrument" *)
  removes_vregs : bool;  (* flips the interleaved verifier to post-RA mode *)
  impl : impl;
}

let reserved = [ "isel"; "layout" ]

let table : (string, t) Hashtbl.t = Hashtbl.create 32

let order : string list ref = ref []

let register ?(fi = false) ?(removes_vregs = false) ~layer ~descr name impl =
  if List.mem name reserved then
    invalid_arg ("Pass.register: " ^ name ^ " is a reserved pipeline step");
  if Hashtbl.mem table name then invalid_arg ("Pass.register: duplicate pass " ^ name);
  (match (layer, impl) with
  | IR, Ir_impl _ | MIR, Mir_impl _ -> ()
  | _ -> invalid_arg ("Pass.register: layer/impl mismatch for " ^ name));
  Hashtbl.add table name { name; layer; descr; fi; removes_vregs; impl };
  order := name :: !order

let find name = Hashtbl.find_opt table name

let all () = List.rev_map (Hashtbl.find table) !order

(* ---- built-in IR optimization passes ---------------------------------- *)

let ir_opt run = Ir_impl (fun _ctx m -> List.iter run m.I.funcs; 0)

(* the clean-up round shared by the -O1/-O2 aliases and post-inline reopt *)
let clean_func fn =
  Refine_ir.Constfold.run fn;
  Refine_ir.Simplifycfg.run fn;
  Refine_ir.Cse.run fn;
  Refine_ir.Memopt.run fn;
  Refine_ir.Dce.run fn;
  Refine_ir.Constfold.run fn;
  Refine_ir.Simplifycfg.run fn

let () =
  register ~layer:IR ~descr:"promote stack slots to SSA values" "mem2reg"
    (ir_opt Refine_ir.Mem2reg.run);
  register ~layer:IR ~descr:"constant folding and algebraic simplification" "constfold"
    (ir_opt Refine_ir.Constfold.run);
  register ~layer:IR ~descr:"CFG simplification (merge/thread/drop blocks)" "simplifycfg"
    (ir_opt Refine_ir.Simplifycfg.run);
  register ~layer:IR ~descr:"common subexpression elimination" "cse" (ir_opt Refine_ir.Cse.run);
  register ~layer:IR ~descr:"local load/store forwarding" "memopt" (ir_opt Refine_ir.Memopt.run);
  register ~layer:IR ~descr:"dead code elimination" "dce" (ir_opt Refine_ir.Dce.run);
  register ~layer:IR ~descr:"sparse conditional constant propagation" "sccp"
    (ir_opt Refine_ir.Sccp.run);
  register ~layer:IR ~descr:"loop-invariant code motion" "licm" (ir_opt Refine_ir.Licm.run);
  register ~layer:IR
    ~descr:"inline small functions and re-optimize enlarged callers (clean+licm+clean)" "inline"
    (Ir_impl
       (fun _ctx m ->
         let inlined = Refine_ir.Inline.run m in
         if inlined > 0 then
           List.iter
             (fun fn ->
               clean_func fn;
               Refine_ir.Licm.run fn;
               clean_func fn)
             m.I.funcs;
         0))

(* ---- built-in MIR (backend) passes ------------------------------------ *)

let mir_opt run = Mir_impl (fun _ctx _m funcs -> List.iter run funcs; 0)

let () =
  register ~layer:MIR ~removes_vregs:true
    ~descr:"linear-scan register allocation (spills to frame slots)" "regalloc"
    (mir_opt Refine_backend.Regalloc.run);
  register ~layer:MIR ~descr:"frame lowering: prologue/epilogue, slot addressing" "frame"
    (mir_opt Refine_backend.Frame.run);
  register ~layer:MIR ~descr:"peephole cleanup of the selected code" "peephole"
    (mir_opt Refine_backend.Peephole.run)

(* ---- FI instrumentation passes (pluggable, paper Figure 1) ------------ *)

let () =
  register ~layer:MIR ~fi:true
    ~descr:"REFINE: splice PreFI/SetupFI/FI_k/PostFI into final machine code (paper §4.2)"
    "refine-fi"
    (Mir_impl
       (fun ctx _m funcs ->
         List.fold_left
           (fun acc mf -> acc + Refine_pass.run ~sel:ctx.sel ~save_flags:ctx.save_flags mf)
           0 funcs));
  register ~layer:IR ~fi:true
    ~descr:"LLFI: append injectFault calls to selected IR values (paper §3.3.2)" "llfi-fi"
    (Ir_impl (fun ctx m -> Llfi_pass.run ~sel:ctx.sel m))

(* ---- chaos pass (test-only) -------------------------------------------

   Deliberately corrupts one spliced SetupFI block, clobbering a
   non-clique register: the interleaved MIR verifier must catch it and the
   campaign must quarantine the cell instead of trusting the binary.  Kept
   in the registry so the pipeline-level hardening tests exercise the same
   path an adversarial pass would. *)

let break_one_splice funcs =
  let broke = ref false in
  List.iter
    (fun (mf : F.t) ->
      if not !broke then
        mf.F.blocks <-
          List.map
            (fun (b : F.mblock) ->
              if
                (not !broke)
                && List.exists
                     (function M.Mcallext "fi_setup_fi" -> true | _ -> false)
                     b.F.code
              then begin
                broke := true;
                { b with F.code = M.Mmov (R.gpr 5, M.Imm 0xBADL) :: b.F.code }
              end
              else b)
            mf.F.blocks)
    funcs

let () =
  register ~layer:MIR
    ~descr:"test-only chaos: corrupt one FI splice (must be caught by the MIR verifier)"
    "chaos-break-mir"
    (Mir_impl (fun _ctx _m funcs -> break_one_splice funcs; 0))
