(* The REFINE compiler pass (paper §4.2): basic-block instrumentation of
   the final machine code, after instruction selection, register allocation,
   frame lowering and peephole optimization — right before emission.

   For every candidate instruction (writes at least one register, matches
   the -fi-funcs / -fi-instrs selection, and is not a return — there is no
   insertion point after a return), the pass splices the control-flow
   pattern of Figure 2 after it:

     PreFI    save the registers the instrumentation clobbers (r0) and
              FLAGS, call selInstr(), branch to PostFI unless it fired
     SetupFI  save r1/r2, pass <nOps, sizes> to setupFI(), decode the
              returned <operand, bit>, dispatch to the operand's FI block
     FI_k     flip the chosen bit of output register k with an XOR-class
              instruction; registers that live in the saved area (r0, r1,
              r2, FLAGS) are flipped in their stack slots so the restore
              does not undo the flip; rsp is flipped through a +32
              adjustment so the flip applies to the application-visible
              stack pointer
     PostFI   restore FLAGS and r0, continue with the rest of the block

   Because no code is touched before this point, the application's
   instruction stream is exactly the stream of the clean binary — the
   elimination of code-generation interference that §4.2.2 claims. *)

module M = Refine_mir.Minstr
module R = Refine_mir.Reg
module F = Refine_mir.Mfunc
module I = Refine_ir.Ir

(* Candidates: selected instructions that write registers; returns have no
   post-instruction insertion point (§4.2.3's block splicing needs one). *)
let candidate sel (i : M.t) =
  (match i with M.Mret | M.Mhalt -> false | _ -> true) && Selection.minstr_selected sel i

(* stack offsets of the saved registers while an FI block runs:
   pushes are r0 [, FLAGS] (PreFI) then r1, r2 (SetupFI) *)
let saved_slot ~save_flags r =
  let f = if save_flags then 8 else 0 in
  if r = R.gpr 0 then Some (16 + f)
  else if save_flags && r = R.flags then Some 16
  else if r = R.gpr 1 then Some 8
  else if r = R.gpr 2 then Some 0
  else None

let flip_code ~save_flags target =
  match saved_slot ~save_flags target with
  | Some off -> [ M.Mxorbitmem (R.rsp, off, R.ret_gpr) ]
  | None ->
    if target = R.rsp then
      (* apply the flip to the application-visible rsp (above the saves) *)
      let depth = Int64.of_int (if save_flags then 32 else 24) in
      [
        M.Mbin (I.Add, R.rsp, R.rsp, M.Imm depth);
        M.Mxorbit (R.rsp, R.ret_gpr);
        M.Mbin (I.Sub, R.rsp, R.rsp, M.Imm depth);
      ]
    else [ M.Mxorbit (target, R.ret_gpr) ]

let pack_sizes outs =
  List.fold_left
    (fun (acc, shift) r ->
      (Int64.logor acc (Int64.shift_left (Int64.of_int (R.width_bits r)) shift), shift + 8))
    (0L, 0) outs
  |> fst

(* Returns the number of instrumented instructions (static).

   [save_flags=false] is an ablation switch used by tests and the
   benchmark harness: it omits the PreFI/PostFI FLAGS save/restore,
   demonstrating that without it the instrumentation's own compare
   corrupts application control flow — i.e. why Figure 2's PreFI must
   "save any register state that may be clobbered". *)
let run ?(sel = Selection.default) ?(save_flags = true) (mf : F.t) : int =
  if not (Selection.func_selected sel mf.F.mname) then 0
  else begin
    let instrumented = ref 0 in
    let new_blocks = ref [] in
    let cur_label = ref 0 in
    let cur_code = ref [] in
    let open_block lbl = cur_label := lbl; cur_code := [] in
    let close_block () =
      new_blocks := { F.mlbl = !cur_label; code = List.rev !cur_code } :: !new_blocks
    in
    let emit i = cur_code := i :: !cur_code in
    List.iter
      (fun (b : F.mblock) ->
        open_block b.mlbl;
        List.iter
          (fun i ->
            emit i;
            if candidate sel i then begin
              incr instrumented;
              let outs = M.outputs i in
              let nops = List.length outs in
              let setup = F.fresh_label mf in
              let fidone = F.fresh_label mf in
              let post = F.fresh_label mf in
              let fi_lbls = List.map (fun _ -> F.fresh_label mf) outs in
              (* PreFI *)
              emit (M.Mpush (R.gpr 0));
              if save_flags then emit M.Mpushf;
              emit (M.Mcallext "fi_sel_instr");
              emit (M.Mcmp (R.ret_gpr, M.Imm 0L));
              emit (M.Mjcc (M.CEq, post));
              emit (M.Mjmp setup);
              close_block ();
              (* SetupFI *)
              open_block setup;
              emit (M.Mpush (R.gpr 1));
              emit (M.Mpush (R.gpr 2));
              emit (M.Mmov (R.gpr 1, M.Imm (Int64.of_int nops)));
              emit (M.Mmov (R.gpr 2, M.Imm (pack_sizes outs)));
              emit (M.Mcallext "fi_setup_fi");
              emit (M.Mmov (R.gpr 1, M.Reg (R.ret_gpr)));
              emit (M.Mbin (I.Lshr, R.gpr 1, R.gpr 1, M.Imm 6L));
              emit (M.Mbin (I.And, R.ret_gpr, R.ret_gpr, M.Imm 63L));
              List.iteri
                (fun k lbl ->
                  emit (M.Mcmp (R.gpr 1, M.Imm (Int64.of_int k)));
                  emit (M.Mjcc (M.CEq, lbl)))
                fi_lbls;
              emit (M.Mjmp fidone);
              close_block ();
              (* FI_k blocks *)
              List.iter2
                (fun target lbl ->
                  open_block lbl;
                  List.iter emit (flip_code ~save_flags target);
                  emit (M.Mjmp fidone);
                  close_block ())
                outs fi_lbls;
              (* common restore of the SetupFI saves *)
              open_block fidone;
              emit (M.Mpop (R.gpr 2));
              emit (M.Mpop (R.gpr 1));
              emit (M.Mjmp post);
              close_block ();
              (* PostFI: restore and continue with the rest of the block *)
              open_block post;
              if save_flags then emit M.Mpopf;
              emit (M.Mpop (R.gpr 0))
            end)
          b.code;
        close_block ())
      mf.F.blocks;
    mf.F.blocks <- List.rev !new_blocks;
    !instrumented
  end
