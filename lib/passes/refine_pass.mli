(** The REFINE compiler pass (paper §4.2): basic-block instrumentation of
    the final machine code, after register allocation, frame lowering and
    peephole optimization — right before emission.

    For every candidate instruction the pass splices the Figure 2 pattern
    after it: PreFI (save clobbered state, call [selInstr]), SetupFI (call
    [setupFI] with the operand count and bit widths, decode the returned
    <operand, bit>), one FI block per output operand (the XOR flip), and
    PostFI (restore, continue).  Application instructions are never
    modified — the elimination of code-generation interference claimed in
    §4.2.2. *)

val candidate : Selection.t -> Refine_mir.Minstr.t -> bool
(** Is this instruction instrumented?  Requires at least one output
    register, a selection match, and an insertion point (returns have
    none). *)

val run : ?sel:Selection.t -> ?save_flags:bool -> Refine_mir.Mfunc.t -> int
(** Instruments the function in place; returns the number of static
    instrumentation sites.  Functions not matching [sel] are untouched and
    report 0.

    [save_flags] (default [true]) is an ablation switch: with [false] the
    PreFI/PostFI blocks do not preserve FLAGS, so the instrumentation's own
    compare corrupts application branches — a negative control showing why
    the paper's PreFI saves "any flag register". *)
