(* Content-addressed prepared-artifact cache (DESIGN.md §15).

   Keys are digests of the inputs that determine an artifact (source text,
   pipeline string, tool configuration); values carry a content
   fingerprint taken at insertion.  [find] re-fingerprints the stored
   value before serving it: an artifact whose content was mutated after
   caching (a chaos hook, the post-layout code-mutation path of DESIGN.md
   §14) is dropped and counted as an invalidation, never served.

   Hit/miss/invalidation counters are plain atomics — readable by tests
   and the bench harness with observability off — mirrored into the
   metrics registry ([refine_artifact_cache_{hits,misses,invalidations}_
   total{cache}]) when it is enabled.  [enabled] is the global kill switch
   behind refinec's --no-artifact-cache. *)

module Obs = Refine_obs

let enabled = ref true

type 'v t = {
  name : string;
  tbl : (string, 'v * string) Hashtbl.t;  (* key -> (value, fingerprint) *)
  mutex : Mutex.t;
  fingerprint : 'v -> string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  invalidations : int Atomic.t;
  m_hits : Obs.Metrics.counter;
  m_misses : Obs.Metrics.counter;
  m_invalidations : Obs.Metrics.counter;
}

let create ~name ~fingerprint () =
  let m what =
    Obs.Metrics.counter ~help:("artifact cache " ^ what) ~labels:[ ("cache", name) ]
      ("refine_artifact_cache_" ^ what ^ "_total")
  in
  {
    name;
    tbl = Hashtbl.create 16;
    mutex = Mutex.create ();
    fingerprint;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    invalidations = Atomic.make 0;
    m_hits = m "hits";
    m_misses = m "misses";
    m_invalidations = m "invalidations";
  }

let key parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

let count plain metric =
  Atomic.incr plain;
  if Obs.Control.enabled () then Obs.Metrics.inc metric

let locked c f =
  Mutex.lock c.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) f

let find c k =
  locked c (fun () ->
      match Hashtbl.find_opt c.tbl k with
      | None ->
        count c.misses c.m_misses;
        None
      | Some (v, fp) ->
        if String.equal (c.fingerprint v) fp then begin
          count c.hits c.m_hits;
          Some v
        end
        else begin
          (* content mutated since insertion: never serve it *)
          Hashtbl.remove c.tbl k;
          count c.invalidations c.m_invalidations;
          count c.misses c.m_misses;
          None
        end)

let add c k v = locked c (fun () -> Hashtbl.replace c.tbl k (v, c.fingerprint v))

type stats = { hits : int; misses : int; invalidations : int; entries : int }

let stats c =
  locked c (fun () ->
      {
        hits = Atomic.get c.hits;
        misses = Atomic.get c.misses;
        invalidations = Atomic.get c.invalidations;
        entries = Hashtbl.length c.tbl;
      })

let clear c =
  locked c (fun () ->
      Hashtbl.reset c.tbl;
      Atomic.set c.hits 0;
      Atomic.set c.misses 0;
      Atomic.set c.invalidations 0)
