(** The unified cross-layer pipeline manager (DESIGN.md §15).

    A pipeline spec is a textual, round-trippable description of the whole
    compile spine — IR passes, the ["isel"] layer transition, MIR passes
    and the final ["layout"] emission step — with [-O0/-O1/-O2] aliases
    and FI instrumentation (refine-fi / llfi-fi) plugging in as ordinary
    passes at the position that defines each tool's accuracy (paper
    Figure 1). *)

type spec = {
  ir : string list;  (** IR passes, in order *)
  isel : bool;  (** lower to MIR *)
  mir : string list;  (** MIR passes, in order (requires [isel]) *)
  layout : bool;  (** emit the image (requires [isel]) *)
}

val empty : spec

exception Parse_error of string

val parse : string -> spec
(** Parse a comma-separated pipeline description.  Raises {!Parse_error}
    on unknown pass names, a MIR pass before ["isel"] (or an IR pass
    after), a duplicate ["isel"], or ["layout"] anywhere but last.
    [parse] and {!print} round-trip: [parse (print s) = s]. *)

val print : spec -> string

val equal : spec -> spec -> bool

val ensure_layout : spec -> spec
(** Force [isel] and [layout] on (commands that need an executable image). *)

val append_mir : spec -> string -> spec
(** Append a MIR pass before layout; no-op when already present. *)

val append_ir : spec -> string -> spec

(** {1 -O aliases} *)

type level = O0 | O1 | O2

val level_of_string : string -> level
val string_of_level : level -> string

val ir_of_level : level -> string list
(** The IR-stage pass names of an alias ([O0] = none, [O1] = mem2reg +
    clean-up, [O2] additionally SCCP, LICM, inlining and a second round —
    the analogue of the paper's -O3 application builds). *)

val of_level : level -> spec
(** Full compile pipeline: [ir_of_level] + isel + regalloc, frame,
    peephole + layout. *)

(** {1 Running} *)

type outcome = {
  funcs : Refine_mir.Mfunc.t list;
      (** machine functions after the MIR stage; [[]] without isel *)
  image : Refine_backend.Layout.image option;  (** [Some] iff the spec ends in layout *)
  fi_sites : int;  (** static sites reported by FI passes, summed *)
}

val run_ir :
  ?ctx:Pass.ctx -> ?verify_each:bool -> ?phases:Refine_obs.Phase.t -> spec -> Refine_ir.Ir.modul -> int
(** Run only the IR stage of [spec], in place; returns the FI sites
    reported by IR instrumentation passes.  [verify_each] re-checks module
    well-formedness after every pass.  [phases] buckets per-pass wall time
    into "compile" / "instrument" (FI passes); independently, when
    observability is on, every pass records a
    [refine_pass_seconds{pass,layer}] histogram sample and emits a span. *)

val run :
  ?ctx:Pass.ctx ->
  ?verify_each:bool ->
  ?verify_fi:bool ->
  ?phases:Refine_obs.Phase.t ->
  spec ->
  Refine_ir.Ir.modul ->
  outcome
(** Run the full pipeline.  [verify_each] interleaves the IR verifier
    after each IR pass and the MIR verifier after each MIR pass (switching
    to {!Refine_mir.Mverify.check_instrumented} once a REFINE splice is in
    place, with the pre-splice frame sizes as the expectation).
    [verify_fi] (the campaign's [verify_mir]) re-checks instrumented code
    once at the end of the MIR stage even without [verify_each], so
    nothing that corrupts machine code after the FI pass can escape into
    an emitted image.  Verifier violations raise
    {!Refine_ir.Verify.Invalid} / {!Refine_mir.Mverify.Invalid}. *)

(** {1 Driver shims}

    The pre-§15 entry points (Refine_ir.Pipeline.optimize and the old
    backend Compile driver), now routed through the pass manager. *)

val optimize : ?verify:bool -> level -> Refine_ir.Ir.modul -> unit
(** IR stage of [of_level] in place; [verify] re-checks module
    well-formedness afterwards (on in tests, off in campaigns). *)

val to_mir :
  ?ctx:Pass.ctx ->
  ?verify_each:bool ->
  ?phases:Refine_obs.Phase.t ->
  Refine_ir.Ir.modul ->
  Refine_mir.Mfunc.t list
(** isel + regalloc + frame + peephole on an already-optimized module,
    stopping before layout so FI passes can instrument the final machine
    code (paper Figure 1). *)

val emit : Refine_ir.Ir.modul -> Refine_mir.Mfunc.t list -> Refine_backend.Layout.image

val compile :
  ?ctx:Pass.ctx ->
  ?verify_each:bool ->
  ?phases:Refine_obs.Phase.t ->
  Refine_ir.Ir.modul ->
  Refine_backend.Layout.image
(** The plain no-FI backend pipeline ending in layout. *)
