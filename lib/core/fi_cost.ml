(* Calibration constants of the speed model (DESIGN.md §6).

   The paper's Figure 5 compares *campaign times*, which are dominated by
   the structure of each tool's overhead:

   - LLFI pays a generic C++ instrumentation callback on every instrumented
     IR instruction for the whole run, plus the de-optimized code the
     injected calls force out of the backend;
   - REFINE pays a handful of inline instructions plus a call into a tiny,
     purpose-built leaf routine ([selInstr]) per instrumented machine
     instruction, also for the whole run;
   - PINFI pays a dynamic-binary-translation tax on every instruction only
     while attached, and detaches as soon as the single fault is injected
     (the optimization described in §5.2 of the paper).

   The unit is "one simulated machine instruction".  The constants below
   are calibration — the reproduced claim is the overhead *structure*, and
   the resulting ratios land in the paper's reported range (REFINE ~1.2x
   PINFI, LLFI ~3-9x).

   Since DESIGN.md §20 the *wall-clock* model matches this modeled
   structure: a REFINE or LLFI sample runs attached only until its single
   injection retires, then hands off to the golden snapshot (or a
   branch-patched twin) and simulates the rest at golden speed, with
   [refine_lib_call] / [llfi_lib_call] charged as per-slot cost weights so
   the modeled trajectory stays bit-identical to the attached run at every
   original-instruction boundary.  PINFI's detach was always modeled here
   ([pin_attach_per_instr] stops accruing at the injection); §20 extends
   the same lifecycle to the compiler-based tools' simulation itself. *)

(* tiny leaf call of the REFINE control library (selInstr / setupFI) *)
let refine_lib_call = 6

(* generic instrumentation callback of LLFI's injectFault *)
let llfi_lib_call = 40

(* extra cost per instruction while a Pin-style DBI tool is attached *)
let pin_attach_per_instr = 12

(* timeout factor for outcome classification (paper §4.3.2: 10x the
   execution time of the profiling step) *)
let timeout_factor = 10L
