(** Shared fault-mutation primitives for the cross-layer fault models
    (DESIGN.md §18).

    The injector runtimes ({!Runtime}, {!Pinfi}) and the opcode-corruption
    tool ({!Opcode_fi}) share the {e what} of a fault — which machine state
    is struck and how — while keeping their own {e when} (trigger
    mechanism).  This module owns the what, below all three so none of them
    cycle. *)

val alternatives : Refine_mir.Minstr.t -> Refine_mir.Minstr.t list
(** Valid same-shape opcode replacements (ALU opcode swaps, condition-code
    swaps, load/lea confusion).  Empty for instructions with no compatible
    alternative.  Re-exported by {!Opcode_fi.alternatives}. *)

val draw_mask :
  Refine_support.Prng.t -> width:int -> Fault.model -> int * int64
(** [(lowest flipped bit, XOR mask)] of one register-value fault below
    [width].  [Reg_bit] draws exactly one [Prng.int rng width] — the same
    single draw the pre-model runtimes made, preserving fixed-seed
    bit-identity of reg campaigns; [Multi_bit] draws k distinct (or burst)
    positions via {!Refine_support.Bitops.draw_bits}. *)

val data_extent : Refine_backend.Layout.image -> (int * int) list
(** [(base address, byte length)] of every initialized global of the
    image — the Mem_cell target population.  Falls back to the 8-byte
    top-of-stack sentinel cell for programs with no initialized data, so
    the population is never empty. *)

val mem_fault :
  Refine_support.Prng.t -> Refine_machine.Exec.t -> dyn_index:int64 -> Fault.record
(** Flip one uniform bit of one byte drawn uniformly over
    {!data_extent} — the Mem_cell model's mutation, applied to the
    engine's (snapshot-restored) memory. *)

val mutate :
  Refine_support.Prng.t -> Refine_mir.Minstr.t -> Refine_mir.Minstr.t option
(** The mutated decoding of an instruction under a code-image bit upset:
    a different valid same-shape opcode, a wild-but-decodable operand
    field (register index, immediate bit, offset, branch target), or
    [None] — the corrupted encoding no longer decodes and fetching it
    traps {!Refine_machine.Exec.Illegal_instr}. *)

val image_fault :
  Refine_support.Prng.t ->
  Refine_machine.Exec.t ->
  pc:int ->
  dyn_index:int64 ->
  Fault.record
(** Corrupt the code slot at [pc] through the engine's Instr_image
    overlay ({!Refine_machine.Exec.set_overlay}); the shared image is
    never written.  [bit] in the returned record is [-1] when the mutated
    encoding is illegal. *)

val instrumented_pc : Refine_machine.Exec.t -> int
(** The pc of the application instruction a control-library call was
    instrumented after: walks back from the call site over the REFINE
    PreFI saves (Mpush/Mpushf).  For LLFI's IR-level calls this is the
    nearest preceding machine instruction of the call sequence — the
    closest machine-level anchor an IR-level tool has. *)
