(** Per-tool compile / profile / inject drivers — the experiment workflow
    of the paper's Figure 3 for each of the three compared fault
    injectors. *)

module Selection = Refine_passes.Selection

type kind =
  | Refine  (** backend machine-code instrumentation (this paper) *)
  | Llfi  (** IR-level call instrumentation (LLFI/KULFI/VULFI/FlipIt style) *)
  | Pinfi  (** binary-level dynamic instrumentation with detach *)

val kind_name : kind -> string

type quotas = {
  output_bytes : int option;
      (** absolute output cap in bytes; overrides [derive_output] *)
  heap_bytes : int option;  (** cap on heap growth above the image's heap base *)
  wall_clock_s : float option;  (** real-time deadline per run, in seconds *)
  livelock_window : int option;
      (** architectural-state fingerprint cadence in simulated steps *)
  derive_output : bool;
      (** derive the output cap from the golden run (16x, 4 KiB floor) *)
}
(** Per-run sandbox resource envelope (DESIGN.md §13), forwarded to
    {!Refine_machine.Exec.run}.  A tripped quota ends the run [Trapped] and
    classifies as {!Fault.Crash} — an experimental outcome, never a harness
    exception, so the supervisor burns no retries on adversarial samples.
    Trips are counted in the [refine_quota_trips_total{kind}] metric when
    observability is enabled. *)

val no_quotas : quotas
(** Everything unlimited (the pre-sandbox behavior). *)

val default_quotas : quotas
(** Paper-faithful default: only the golden-run-derived output cap; cost
    (the 10x timeout) already bounds runtime, and heap is bounded by the
    image's memory size. *)

val derived_output_quota : Fault.profile -> int
(** [max 4096 (16 * length golden_output)] — the cap [derive_output]
    computes for a prepared program. *)

val use_fast_path : bool ref
(** When [true] (the default), every simulator run acquires a
    snapshot-backed engine from a per-domain cache and {!reset}s it
    (DESIGN.md §14) instead of allocating fresh machine state per sample.
    Set to [false] to force the legacy allocate-per-sample path; campaign
    results are bit-identical either way (asserted by the fast-path test
    suite). *)

val use_decode : bool ref
(** When [true] (the default), engines handed out for simulator runs carry
    the pre-decoded program for their snapshot (DESIGN.md §19): per-pc
    dispatch closures with fused superinstructions, decoded once per
    snapshot and served from a content-addressed cache tier.  Set to
    [false] ([refinec --no-decode]) to force the legacy per-opcode match
    interpreter; outcome tables are bit-identical either way (asserted by
    the differential decode suite). *)

(** {1 Post-injection detach (DESIGN.md §20)} *)

val use_detach : bool ref
(** When [true] (the default), REFINE and LLFI samples hand off to their
    prepared detach target once the single injection has retired: the
    architectural state transfers onto an engine built from the
    uninstrumented (or branch-patched) twin, decoded with
    attached-equivalent cost weights, and the rest of the run retires at
    golden speed with zero per-instruction FI tax — the same detach the
    paper's PINFI performs (§5.2).  Set to [false] ([refinec --no-detach])
    to run every sample attached to completion; fixed-seed outcome tables
    are bit-identical either way (asserted by the differential detach
    suite). *)

val force_detach_fallback : bool ref
(** Test hook: build the branch-patched fallback target (shared
    coordinates, no correspondence map) even when the map parses —
    exercises the overlay-fallback handoff path. *)

type detach_target = {
  dt_image : Refine_backend.Layout.image;
      (** the golden twin (map mode) or the branch-patched instrumented
          image (patch mode) *)
  dt_snap : Refine_machine.Exec.snapshot;
  dt_snap_id : int;  (** keys the per-domain detach engine cell *)
  dt_dprog : Refine_machine.Exec.dprogram;
      (** decoded with the attached-equivalent per-pc cost weights *)
  dt_map : Refine_machine.Exec.handoff_map option;
      (** [Some] = golden coordinates (drain + translate); [None] =
          shared coordinates (plain state blit) *)
}
(** A prepared handoff target.  REFINE map mode shares the golden image
    through the "detach-golden" artifact tier (one build per (source,
    FI-free pipeline), shared across tools, selections and cells). *)

val acquire_detach : detach_target -> Refine_machine.Exec.t
(** A reset engine for the target from the per-domain detach engine cell
    (or a fresh one), with the target's weighted decode installed. *)

type prepared = {
  kind : kind;
  sel : Selection.t;
  image : Refine_backend.Layout.image;  (** the (instrumented) binary *)
  snap : Refine_machine.Exec.snapshot;
      (** initialized memory image, computed once per prepared binary *)
  snap_id : int;  (** unique id keying the per-domain engine cache *)
  profile : Fault.profile;  (** golden output + dynamic target count *)
  static_instrumented : int;  (** instrumentation sites; 0 for PINFI *)
  detach : detach_target option;
      (** post-injection handoff target; [None] for PINFI (its cost model
          already detaches) and for chaos builds *)
}
(** A tool's binary after compilation and one profiling run.  The same
    binary serves profiling and injection, as in the paper. *)

val detach_plan_for :
  quotas:quotas -> prepared -> Fault.model -> Refine_machine.Exec.detach_plan option
(** Per-sample eligibility (the decline matrix of DESIGN.md §20): [None]
    when detach or decode is switched off, the tool has no target, the
    model strikes state the target cannot carry (REFINE + Instr_image),
    or the livelock detector is armed for a tool whose target is not
    step-exact (REFINE).  The returned plan can still decline at run time
    (drain cap, shadow-stack mismatch, budget edge) — every declined path
    runs attached with identical semantics. *)

exception Prepare_error of string
(** Raised when the profiling run fails (the program itself is broken). *)

exception Quarantine of string * string
(** [(category, detail)]: the cell must not be sampled.  Categories:
    ["mir-verifier"] — the instrumented machine code failed
    {!Refine_mir.Mverify.check_instrumented} (REFINE) or
    {!Refine_mir.Mverify.check_funcs} (LLFI); ["nondeterministic-golden"]
    — two independent profiling runs disagreed on output, exit code or
    dynamic population, so no golden baseline exists to classify against.
    Both are deterministic properties of the (program, tool) cell: the
    campaign records the cell as quarantined instead of retrying. *)

type chaos = { break_mir : bool; flaky_golden : bool }
(** Test-only failure injection for the hardening paths themselves:
    [break_mir] corrupts one spliced SetupFI block after instrumentation,
    [flaky_golden] perturbs the second profiling run's output — each must
    surface as the corresponding {!Quarantine}. *)

val no_chaos : chaos

(** {1 Pipelines & the artifact cache (DESIGN.md §15)} *)

val default_pipeline : Refine_passes.Pipeline.spec
(** [Pipeline.of_level O2] — the campaign default, matching the paper's
    optimized application builds. *)

val pipeline_for : ?chaos:chaos -> kind -> Refine_passes.Pipeline.spec -> Refine_passes.Pipeline.spec
(** The effective pipeline for a tool: forces isel+layout, then splices
    the tool's FI pass at the position that defines its accuracy (paper
    Figure 1) — [refine-fi] as the last MIR pass (REFINE), [llfi-fi] as
    the last IR pass (LLFI), nothing for PINFI (it attaches at run time).
    [chaos.break_mir] additionally appends the test-only
    [chaos-break-mir] corruption pass after the splice. *)

val build_ir :
  ?pipeline:Refine_passes.Pipeline.spec ->
  ?cache:bool ->
  ?verify_each:bool ->
  ?phases:Refine_obs.Phase.t ->
  string ->
  Refine_ir.Ir.modul
(** Front end + the IR stage of [pipeline] (shared by all tools).  Served
    through the content-addressed IR cache tier keyed on (source,
    IR-prefix pipeline) unless [cache:false], the global kill switch
    {!Refine_passes.Artifact_cache.enabled} is off, or the IR stage
    contains an FI pass (tool-specific results are never shared).  Cache
    hits deserialize a fresh copy, so callers may mutate the module
    freely. *)

val compile_invocations : unit -> int
(** Front-end + IR-stage compile executions so far (i.e. IR-cache misses);
    the bench harness asserts the cached 2-tool campaign does at least 2x
    fewer than the uncached one. *)

val ir_cache_stats : unit -> Refine_passes.Artifact_cache.stats

val prepared_cache_stats : unit -> Refine_passes.Artifact_cache.stats

val decoded_cache_stats : unit -> Refine_passes.Artifact_cache.stats
(** The decoded-program tier (DESIGN.md §19): one entry per snapshot,
    keyed by snapshot id, fingerprinted over the instruction array. *)

val detach_cache_stats : unit -> Refine_passes.Artifact_cache.stats
(** The detach-golden tier (DESIGN.md §20): one golden image + snapshot
    per (source, FI-free pipeline), fingerprinted over the emitted code —
    a mutated golden image invalidates instead of serving a map whose
    coordinates no longer hold. *)

val reset_artifact_caches : unit -> unit
(** Drop all four cache tiers and zero {!compile_invocations} (test/bench
    isolation). *)

val prepare :
  ?phases:Refine_obs.Phase.t ->
  ?sel:Selection.t ->
  ?pipeline:Refine_passes.Pipeline.spec ->
  ?max_steps:int64 ->
  ?verify_mir:bool ->
  ?verify_each:bool ->
  ?chaos:chaos ->
  ?cache:bool ->
  kind ->
  string ->
  prepared
(** [prepare kind source] compiles MinC [source] through
    [pipeline_for kind pipeline] (default {!default_pipeline}) and runs
    the profiling phase.  [phases] buckets the wall-clock time into the
    overhead-breakdown columns ("compile" / "instrument" / "execute", the
    profiling runs counting as execute) for {!Refine_campaign.Report}'s
    Figure 8/9-shape table.  When observability is enabled
    ({!Refine_obs.Control.enable}), every simulator run additionally
    streams executor-profile counters (per-opcode-class steps, extern
    calls, FI-site hits, modeled cost) into the metrics registry, and
    every pipeline pass records a [refine_pass_seconds{pass,layer}]
    histogram sample plus a span.

    Caching (DESIGN.md §15): unless [cache:false] (or the global kill
    switch is off, or chaos is active) the whole [prepared] value is
    served from the content-addressed prepared tier keyed on (source,
    pipeline string, tool configuration); the underlying IR-stage compile
    is shared across tools through the IR tier.  Entries carry a
    fingerprint of the emitted code, re-checked on every serve, so a
    binary mutated after caching is invalidated, never served.

    Hardening (DESIGN.md §13): profiling executes TWICE with independent
    machine and control-library state and raises {!Quarantine} if the runs
    disagree; [verify_mir] (default [true]) structurally re-verifies the
    instrumented machine code at the end of the MIR stage and raises
    {!Quarantine} on any violation; [verify_each] (default [false])
    additionally interleaves the IR/MIR verifiers after every pipeline
    pass. *)

exception Sample_budget_exceeded of int64
(** A sample exceeded the harness watchdog's modeled-cost budget (the
    [cost_cap] of {!run_injection}); the payload is the cost burned.  This
    is a harness disposition, not one of the paper's outcomes: the
    supervisor retries it with a fresh PRNG split and, on exhaustion, the
    sample surfaces as {!Fault.Tool_error}. *)

val run_injection :
  ?cost_cap:int64 ->
  ?quotas:quotas ->
  ?model:Fault.model ->
  ?poll:(unit -> unit) ->
  prepared ->
  Refine_support.Prng.t ->
  Fault.experiment
(** One fault-injection experiment: selects a uniform dynamic target
    instruction / output operand / bit from the tool's population, runs to
    completion (or the 10x-profiling timeout) and classifies the outcome
    against the golden output.  [model] (default {!Fault.Reg_bit}) selects
    what state the fault strikes at the chosen dynamic instance
    ({!Fault.model}); the trigger draw and timing are model-independent,
    so one prepared binary serves every model.  [cost_cap] kills the sample with
    {!Sample_budget_exceeded} if it burns that much modeled cost before the
    paper's own 10x timeout fires (caps at or above the 10x timeout are
    inert: hitting the 10x timeout stays a Crash, the paper's semantics).
    [quotas] (default {!no_quotas}) is the sandbox envelope; tripped quotas
    classify as Crash.  [poll] is invoked every 1024 simulated
    instructions, letting a cancellation token abort in-flight samples. *)

val run_clean : prepared -> Refine_machine.Exec.result
(** Fault-free run of the prepared binary (injection disabled). *)
