(** Per-tool compile / profile / inject drivers — the experiment workflow
    of the paper's Figure 3 for each of the three compared fault
    injectors. *)

type kind =
  | Refine  (** backend machine-code instrumentation (this paper) *)
  | Llfi  (** IR-level call instrumentation (LLFI/KULFI/VULFI/FlipIt style) *)
  | Pinfi  (** binary-level dynamic instrumentation with detach *)

val kind_name : kind -> string

type prepared = {
  kind : kind;
  sel : Selection.t;
  image : Refine_backend.Layout.image;  (** the (instrumented) binary *)
  profile : Fault.profile;  (** golden output + dynamic target count *)
  static_instrumented : int;  (** instrumentation sites; 0 for PINFI *)
}
(** A tool's binary after compilation and one profiling run.  The same
    binary serves profiling and injection, as in the paper. *)

exception Prepare_error of string
(** Raised when the profiling run fails (the program itself is broken). *)

val build_ir : ?opt:Refine_ir.Pipeline.level -> string -> Refine_ir.Ir.modul
(** Front end + IR optimization only (shared by all tools). *)

val prepare :
  ?phases:Refine_obs.Phase.t ->
  ?sel:Selection.t ->
  ?opt:Refine_ir.Pipeline.level ->
  ?max_steps:int64 ->
  kind ->
  string ->
  prepared
(** [prepare kind source] compiles MinC [source] with [kind]'s
    instrumentation strategy and runs the profiling phase.  [phases]
    buckets the wall-clock time into the overhead-breakdown columns
    ("compile" / "instrument" / "execute", the profiling run counting as
    execute) for {!Refine_campaign.Report}'s Figure 8/9-shape table.  When
    observability is enabled ({!Refine_obs.Control.enable}), every
    simulator run additionally streams executor-profile counters
    (per-opcode-class steps, extern calls, FI-site hits, modeled cost)
    into the metrics registry. *)

exception Sample_budget_exceeded of int64
(** A sample exceeded the harness watchdog's modeled-cost budget (the
    [cost_cap] of {!run_injection}); the payload is the cost burned.  This
    is a harness disposition, not one of the paper's outcomes: the
    supervisor retries it with a fresh PRNG split and, on exhaustion, the
    sample surfaces as {!Fault.Tool_error}. *)

val run_injection :
  ?cost_cap:int64 -> ?poll:(unit -> unit) -> prepared -> Refine_support.Prng.t -> Fault.experiment
(** One fault-injection experiment: selects a uniform dynamic target
    instruction / output operand / bit from the tool's population, runs to
    completion (or the 10x-profiling timeout) and classifies the outcome
    against the golden output.  [cost_cap] kills the sample with
    {!Sample_budget_exceeded} if it burns that much modeled cost before the
    paper's own 10x timeout fires (caps at or above the 10x timeout are
    inert: hitting the 10x timeout stays a Crash, the paper's semantics).
    [poll] is invoked every 2048 simulated instructions, letting a
    cancellation token abort in-flight samples. *)

val run_clean : prepared -> Refine_machine.Exec.result
(** Fault-free run of the prepared binary (injection disabled). *)
