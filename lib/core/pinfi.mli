(** PINFI-style binary-level fault injection (paper §5.2): a per-
    instruction hook on the simulator plays the role of Intel Pin over the
    clean, uninstrumented binary.  After injecting the single fault the
    tool {e detaches} — hook and DBI cost disappear for the rest of the
    run, the performance optimization the paper added to PINFI. *)

module Selection = Refine_passes.Selection

type ctrl = {
  mutable count : int;  (** dynamic instructions with register writes *)
  mode : Runtime.mode;
  mutable fired : bool;
  mutable record : Fault.record option;
  sel : Selection.t;
  flips : int;  (** bits flipped per fault (1 = single-bit model) *)
}

val create : ?sel:Selection.t -> ?flips:int -> Runtime.mode -> ctrl
(** [flips] extends the single-bit model to the multi-bit variants the
    paper cites (double bit flips, Adamu-Fika & Jhumka); default 1. *)

val attach : ctrl -> Refine_machine.Exec.t -> unit
(** Installs the counting/injection hook and the attached-DBI per-
    instruction cost ({!Fi_cost.pin_attach_per_instr}). *)
