(* Per-tool compile/profile/inject drivers — the experiment workflow of the
   paper's Figure 3 for each of the three compared injectors.

   [prepare] builds the tool's binary from MinC source and runs the
   profiling phase once (dynamic instruction count + golden output);
   [run_injection] performs one fault-injection experiment and classifies
   its outcome.  The profiling binary and the injection binary are the same
   artifact; only the control library's mode differs. *)

module E = Refine_machine.Exec
module P = Refine_support.Prng
module Fimap = Refine_backend.Fimap
module Pl = Refine_passes.Pipeline
module Selection = Refine_passes.Selection
module Artifact_cache = Refine_passes.Artifact_cache
module Obs = Refine_obs
module M = Refine_mir.Minstr

type kind = Refine | Llfi | Pinfi

let kind_name = function Refine -> "REFINE" | Llfi -> "LLFI" | Pinfi -> "PINFI"

(* ---- observability (DESIGN.md §12) ------------------------------------

   Executor profiling and FI-site accounting, flushed into the metrics
   registry after each run.  All handles are pre-created per (tool, class)
   so the per-run flush never pays the registry's creation lookup; with
   observability disabled the whole block is one boolean branch per run. *)

let kind_index = function Refine -> 0 | Llfi -> 1 | Pinfi -> 2
let kind_names = [| "REFINE"; "LLFI"; "PINFI" |]

let m_exec_steps =
  Array.init 3 (fun t ->
      Array.init M.num_iclasses (fun k ->
          Obs.Metrics.counter ~help:"simulated instructions by opcode class"
            ~labels:[ ("tool", kind_names.(t)); ("class", M.iclass_name M.iclasses.(k)) ]
            "refine_exec_steps_total"))

let m_ext_calls =
  Array.init 3 (fun t ->
      Obs.Metrics.counter ~help:"runtime-library/libc calls made by simulated code"
        ~labels:[ ("tool", kind_names.(t)) ]
        "refine_exec_ext_calls_total")

let m_ext_cost =
  Array.init 3 (fun t ->
      Obs.Metrics.counter ~help:"modeled cost charged by extern calls"
        ~labels:[ ("tool", kind_names.(t)) ]
        "refine_exec_ext_cost_units_total")

let m_fi_hits =
  Array.init 3 (fun t ->
      Obs.Metrics.counter
        ~help:"dynamic visits to FI-instrumented sites (control-library calls or DBI hook hits)"
        ~labels:[ ("tool", kind_names.(t)) ]
        "refine_fi_site_hits_total")

let m_run_cost =
  Array.init 3 (fun t ->
      Obs.Metrics.counter ~help:"modeled cost of completed simulator runs"
        ~labels:[ ("tool", kind_names.(t)) ]
        "refine_run_cost_units_total")

(* Attach an executor profile iff observability is on; [flush_obs] mirrors
   it (and the control library's dynamic site count) into the registry. *)
let maybe_profile (eng : E.t) = if Obs.Control.enabled () then ignore (E.enable_profiling eng)

let flush_obs kind (eng : E.t) ~fi_hits ~run_cost =
  if Obs.Control.enabled () then begin
    let t = kind_index kind in
    (match eng.E.prof with
    | Some p ->
      Array.iteri
        (fun k n -> if n <> 0 then Obs.Metrics.add64 m_exec_steps.(t).(k) (Int64.of_int n))
        p.E.class_steps;
      Obs.Metrics.add64 m_ext_calls.(t) (Int64.of_int p.E.ext_calls);
      Obs.Metrics.add64 m_ext_cost.(t) (Int64.of_int p.E.ext_cost)
    | None -> ());
    Obs.Metrics.add64 m_fi_hits.(t) (Int64.of_int fi_hits);
    Obs.Metrics.add64 m_run_cost.(t) run_cost;
    Obs.Span.add_cost run_cost
  end

(* ---- sandbox quotas (DESIGN.md §13) -----------------------------------

   Per-run resource envelopes forwarded to [Exec.run].  A tripped quota is
   an experimental outcome — the run ends [Trapped (Output_quota _)] etc.
   and classifies as Crash — never a harness exception, so the supervisor
   burns no retries on adversarial samples. *)

type quotas = {
  output_bytes : int option; (* absolute cap; overrides derivation *)
  heap_bytes : int option; (* heap growth above the image's heap base *)
  wall_clock_s : float option; (* real-time deadline per run *)
  livelock_window : int option; (* fingerprint cadence in steps *)
  derive_output : bool; (* derive the output cap from the golden run *)
}

let no_quotas =
  {
    output_bytes = None;
    heap_bytes = None;
    wall_clock_s = None;
    livelock_window = None;
    derive_output = false;
  }

let default_quotas = { no_quotas with derive_output = true }

(* 16x the golden output with a 4 KiB floor: generous enough that any
   legitimate corruption (SOC) fits, tight enough that a fault turning the
   program into an output firehose trips long before the 10x cost
   timeout's worth of bytes accumulate. *)
let derived_output_quota (profile : Fault.profile) =
  max 4096 (16 * String.length profile.Fault.golden_output)

let effective_output_quota q (profile : Fault.profile) =
  match q.output_bytes with
  | Some _ as c -> c
  | None -> if q.derive_output then Some (derived_output_quota profile) else None

let quota_kind_names = [| "output"; "heap"; "wall-clock"; "livelock" |]

let m_quota_trips =
  Array.map
    (fun k ->
      Obs.Metrics.counter ~help:"sandbox quota trips by kind" ~labels:[ ("kind", k) ]
        "refine_quota_trips_total")
    quota_kind_names

(* Injection tally by (tool, fault model).  Created lazily on first use per
   label pair — [Metrics.counter] is mutex-protected and idempotent, so the
   per-sample cost of a repeat call is one registry lookup, and model
   labels only exist for models actually campaigned. *)
let note_injection kind (model : Fault.model) =
  if Obs.Control.enabled () then
    Obs.Metrics.inc
      (Obs.Metrics.counter ~help:"fault injections performed by fault model"
         ~labels:[ ("tool", kind_name kind); ("model", Fault.string_of_model model) ]
         "refine_injections_total")

let note_quota_trip (r : E.result) =
  if Obs.Control.enabled () then
    match r.E.status with
    | E.Trapped (E.Output_quota _) -> Obs.Metrics.inc m_quota_trips.(0)
    | E.Trapped (E.Heap_quota _) -> Obs.Metrics.inc m_quota_trips.(1)
    | E.Trapped (E.Wall_clock _) -> Obs.Metrics.inc m_quota_trips.(2)
    | E.Trapped E.Livelock -> Obs.Metrics.inc m_quota_trips.(3)
    | _ -> ()

(* ---- engine fast path (DESIGN.md §14) ---------------------------------

   The initialized memory image (globals + sentinel stack) is computed once
   per prepared binary and every simulator run acquires a snapshot-backed
   engine from a per-domain cache: one [Bytes.blit] reset per sample
   instead of a [Mem.mem_size] allocation.  The cache is keyed by a unique
   per-prepared id, so a domain that moves to another cell (or a fresh
   supervisor worker domain) transparently clones a new arena.  Settable
   off to run the legacy allocate-per-sample path; results are
   bit-identical either way (asserted by the fast-path test suite). *)

let use_fast_path = ref true

let next_snap_id = Atomic.make 0

let engine_cache : (int * E.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(* ---- pre-decoded engine (DESIGN.md §19) -------------------------------

   Each snapshot's image is decoded once — per-pc dispatch closures plus
   fused superinstructions — and stored in a content-addressed artifact
   tier keyed by the snapshot id, so engines handed out by [acquire] never
   re-decode: a cached engine keeps its decoded program across [reset]
   (the decode is a property of the image, not of a sample), and a fresh
   engine installs the per-snapshot decode from the cache.  Settable off
   ([--no-decode]) to force the legacy interpreter; outcome tables are
   bit-identical either way (asserted by the differential decode suite). *)

let use_decode = ref true

let m_decode_hits =
  Obs.Metrics.counter ~help:"decoded-program cache hits" "refine_decode_cache_hits_total"

let m_decode_misses =
  Obs.Metrics.counter ~help:"decoded-program cache misses (images decoded)"
    "refine_decode_cache_misses_total"

let m_superinstr =
  Array.map
    (fun idiom ->
      Obs.Metrics.counter ~help:"superinstructions fused at decode time by idiom"
        ~labels:[ ("idiom", idiom) ] "refine_decoded_superinstr_total")
    E.idioms

(* Fingerprint over the instruction array (pure data, no closures): a
   post-layout mutation of the shared code invalidates the decoded entry
   on serve instead of dispatching stale closures. *)
let decoded_cache : E.dprogram Artifact_cache.t =
  Artifact_cache.create ~name:"decoded"
    ~fingerprint:(fun dp ->
      Digest.string (Marshal.to_string (E.decoded_image dp).Refine_backend.Layout.code []))
    ()

let decoded_for ~snap_id ~image =
  if not !Artifact_cache.enabled then begin
    if Obs.Control.enabled () then Obs.Metrics.inc m_decode_misses;
    E.decode image
  end
  else begin
    let key = Artifact_cache.key [ "decoded"; string_of_int snap_id ] in
    match Artifact_cache.find decoded_cache key with
    | Some dp when E.decoded_image dp == image ->
      if Obs.Control.enabled () then Obs.Metrics.inc m_decode_hits;
      dp
    | _ ->
      let dp = E.decode image in
      Artifact_cache.add decoded_cache key dp;
      if Obs.Control.enabled () then begin
        Obs.Metrics.inc m_decode_misses;
        Array.iteri
          (fun i n -> if n > 0 then Obs.Metrics.add64 m_superinstr.(i) (Int64.of_int n))
          (E.superinstr_counts dp)
      end;
      dp
  end

(* ---- post-injection detach (DESIGN.md §20) ----------------------------

   REFINE and LLFI keep paying their compiled-in per-instruction FI tax
   after the single injection has retired, while PINFI detaches — the
   structural reason BENCH_obs.json showed REFINE at ~4.4x PINFI against
   the paper's ~1.2x claim.  The fix mirrors PINFI's detach at the
   campaign layer: [prepare] builds a *detach target* next to each
   REFINE/LLFI binary — an uninstrumented (or branch-patched) twin decoded
   with attached-equivalent cost weights — and [run_injection] arms
   [Exec.run] with a handoff plan, so once the injection fires the sample
   transfers onto the target and the rest of the run retires at decoded
   golden speed with bit-identical modeled cost at every original-
   instruction boundary.

   Target flavors:
   - REFINE map mode: the golden image from the FI-free pipeline (built
     once per (program, pipeline) in the "detach-golden" artifact tier,
     shared across selections and cells) plus the [Fimap] correspondence
     map; the handoff drains to an original-instruction boundary and
     translates pc and live return addresses.
   - REFINE patch mode (fallback, or [force_detach_fallback]): the
     instrumented image with every splice head branch-patched to fall
     through — shared coordinates, plain state blit.
   - LLFI patch mode: the instrumented image with each [llfi_inject_*]
     call replaced by the move its post-injection semantics reduce to —
     step- and state-exact at every instant, so it stays eligible even
     under the livelock detector and Instr_image overlays.

   Eligibility is decided per sample by [detach_plan_for]; every
   ineligible or declined case simply runs attached — detach is an
   optimization, never a semantics change. *)

let use_detach = ref true

(* test hook: skip the correspondence map and use the branch-patched
   fallback target even when the map parses *)
let force_detach_fallback = ref false

type detach_target = {
  dt_image : Refine_backend.Layout.image;
  dt_snap : E.snapshot;
  dt_snap_id : int;
  dt_dprog : E.dprogram; (* decoded with attached-equivalent cost weights *)
  dt_map : E.handoff_map option; (* Some = golden coordinates; None = shared *)
}

let m_detach_drain =
  Obs.Metrics.histogram ~help:"instructions single-stepped to reach the handoff boundary"
    ~buckets:[| 0.; 2.; 4.; 8.; 16.; 32.; 64.; 256.; 1024.; 4096. |]
    "refine_detach_drain_steps"

let note_detach kind ~mode =
  Obs.Metrics.inc
    (Obs.Metrics.counter ~help:"post-injection handoffs to the detach target by mode"
       ~labels:[ ("tool", kind_name kind); ("mode", mode) ]
       "refine_detach_total")

let note_detach_declined kind =
  Obs.Metrics.inc
    (Obs.Metrics.counter
       ~help:"armed detach plans whose handoff was declined (ran attached to completion)"
       ~labels:[ ("tool", kind_name kind) ]
       "refine_detach_declined_total")

(* flushed per sample after the run: a handoff that happened counts by
   mode and records its drain latency; an armed plan that fired but never
   handed off (validation declined it) counts as declined *)
let note_detach_result kind ~armed ~mode ~fired (r : E.result) =
  if Obs.Control.enabled () && armed then begin
    if r.E.detached then begin
      note_detach kind ~mode;
      Obs.Metrics.observe m_detach_drain (float_of_int r.E.drain_steps)
    end
    else if fired then note_detach_declined kind
  end

let acquire ?(ext_extra = []) ~image ~snap ~snap_id () =
  let eng =
    if not !use_fast_path then E.create ~ext_extra image
    else begin
      let cell = Domain.DLS.get engine_cache in
      match !cell with
      | Some (id, eng) when id = snap_id ->
        E.reset ~ext_extra eng;
        eng
      | _ ->
        let eng = E.create_from_snapshot ~ext_extra snap in
        cell := Some (snap_id, eng);
        eng
    end
  in
  (* a cached engine keeps its dprog across reset, so the cache lookup
     only runs for fresh engines (or after a kill-switch flip) *)
  if !use_decode then begin
    if not (E.decoded eng) then E.install_decoded eng (Some (decoded_for ~snap_id ~image))
  end
  else if E.decoded eng then E.install_decoded eng None;
  eng

(* Detach targets get their own per-domain engine cell so arming a plan
   never evicts the instrumented engine the sample is about to run on.
   The weighted decode is per target (cost weights depend on the
   selection), so the installed program is re-checked on every serve even
   when the engine itself is a cache hit. *)
let detach_engine_cache : (int * E.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let acquire_detach (dt : detach_target) =
  let eng =
    if not !use_fast_path then E.create dt.dt_image
    else begin
      let cell = Domain.DLS.get detach_engine_cache in
      match !cell with
      | Some (id, eng) when id = dt.dt_snap_id ->
        E.reset eng;
        eng
      | _ ->
        let eng = E.create_from_snapshot dt.dt_snap in
        cell := Some (dt.dt_snap_id, eng);
        eng
    end
  in
  (match eng.E.dprog with
  | Some dp when dp == dt.dt_dprog -> ()
  | _ -> E.install_decoded eng (Some dt.dt_dprog));
  eng

type prepared = {
  kind : kind;
  sel : Selection.t;
  image : Refine_backend.Layout.image;
  snap : E.snapshot; (* initialized memory, computed once per binary *)
  snap_id : int; (* unique id keying the per-domain engine cache *)
  profile : Fault.profile;
  static_instrumented : int; (* instrumented sites (REFINE/LLFI); 0 for PINFI *)
  detach : detach_target option;
      (* post-injection handoff target (DESIGN.md §20); None for PINFI
         (it detaches natively) and for chaos builds *)
}

exception Prepare_error of string

exception Quarantine of string * string
(* (category, detail): the cell must not be sampled — "mir-verifier" when
   the instrumented machine code fails [Mverify.check_instrumented],
   "nondeterministic-golden" when two independent profiling runs disagree.
   Deterministic by construction, hence never retried. *)

(* Test-only failure injection for the hardening paths themselves:
   [break_mir] corrupts one spliced SetupFI block after instrumentation
   (so the verifier must catch it), [flaky_golden] perturbs the second
   profiling run's output (so the golden integrity check must catch it). *)
type chaos = { break_mir : bool; flaky_golden : bool }

let no_chaos = { break_mir = false; flaky_golden = false }

(* ---- pipelines & the artifact cache (DESIGN.md §15) -------------------

   The whole compile spine — IR opts, isel, regalloc/frame/peephole, FI
   instrumentation, layout — is one [Refine_passes.Pipeline] spec; each
   tool's FI pass plugs in at the position that defines its accuracy
   (paper Figure 1): REFINE as the last MIR pass before layout, LLFI as
   the last IR pass before isel, PINFI nowhere (it attaches at run time).

   Two content-addressed cache tiers sit on top:

   - the IR tier keys on (source, IR-prefix pipeline) and stores the
     optimized module *marshaled*, so every hit deserializes a fresh copy
     — the tool-independent part of the compile is shared across REFINE /
     LLFI / PINFI cells of the same program;
   - the prepared tier keys on (source, full pipeline string, tool
     configuration) and shares whole [prepared] values — image, snapshot
     and golden profile — across repeated cells of one configuration.
     Entries carry a fingerprint of the image's code array, re-checked on
     every serve, so post-layout code mutation (chaos hooks, the extern
     slot -1 fallback path of DESIGN.md §14) invalidates instead of
     serving a corrupted binary.  Chaos runs bypass both tiers entirely. *)

let default_pipeline = Pl.of_level Pl.O2

let is_fi_pass name =
  match Refine_passes.Pass.find name with Some p -> p.Refine_passes.Pass.fi | None -> false

(* the tool-independent IR prefix: everything before the first FI pass *)
let split_fi_prefix names =
  let rec go acc = function
    | n :: rest when not (is_fi_pass n) -> go (n :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  go [] names

let pipeline_for ?(chaos = { break_mir = false; flaky_golden = false }) kind spec =
  let spec = Pl.ensure_layout spec in
  match kind with
  | Refine ->
    let spec = Pl.append_mir spec "refine-fi" in
    if chaos.break_mir then Pl.append_mir spec "chaos-break-mir" else spec
  | Llfi -> Pl.append_ir spec "llfi-fi"
  | Pinfi -> spec

let ir_cache : string Artifact_cache.t =
  Artifact_cache.create ~name:"ir" ~fingerprint:Digest.string ()

let compile_invocation_count = Atomic.make 0

let compile_invocations () = Atomic.get compile_invocation_count

let m_compile_invocations =
  Obs.Metrics.counter ~help:"front-end + IR-stage compile executions (artifact-cache misses)"
    "refine_compile_invocations_total"

let build_ir ?(pipeline = default_pipeline) ?(cache = true) ?(verify_each = false) ?phases src =
  let spec = { pipeline with Pl.isel = false; mir = []; layout = false } in
  let time name f = match phases with None -> f () | Some p -> Obs.Phase.time p name f in
  let rebuild () =
    Atomic.incr compile_invocation_count;
    if Obs.Control.enabled () then Obs.Metrics.inc m_compile_invocations;
    let m = time "compile" (fun () -> Refine_minic.Frontend.compile src) in
    ignore (Pl.run_ir ~verify_each ?phases spec m);
    m
  in
  (* FI passes in the IR stage make the result tool-specific: never share *)
  if (not (cache && !Artifact_cache.enabled)) || List.exists is_fi_pass spec.Pl.ir then rebuild ()
  else begin
    let key = Artifact_cache.key [ "ir"; src; Pl.print spec ] in
    match Artifact_cache.find ir_cache key with
    | Some bytes ->
      (* every hit deserializes a fresh copy: callers may mutate freely *)
      time "compile" (fun () -> (Marshal.from_string bytes 0 : Refine_ir.Ir.modul))
    | None ->
      let m = rebuild () in
      Artifact_cache.add ir_cache key (Marshal.to_string m []);
      m
  end

(* ---- detach targets (DESIGN.md §20) -----------------------------------

   The golden twin for REFINE's map-mode detach: the same source pushed
   through the same pipeline with every FI pass filtered out.  Built once
   per (source, FI-free pipeline) in its own content-addressed tier — the
   fourth next to ir/prepared/decoded — and shared across tools,
   selections and repeated cells; the fingerprint covers the emitted code
   array, so a mutated golden image invalidates instead of serving a map
   whose coordinates no longer mean anything. *)

type detach_golden = {
  g_image : Refine_backend.Layout.image;
  g_snap : E.snapshot;
  g_snap_id : int; (* stable id: keys the per-domain detach engine cell *)
}

let detach_cache : detach_golden Artifact_cache.t =
  Artifact_cache.create ~name:"detach-golden"
    ~fingerprint:(fun g ->
      Digest.string (Marshal.to_string g.g_image.Refine_backend.Layout.code []))
    ()

let detach_cache_stats () = Artifact_cache.stats detach_cache

let strip_fi_passes (spec : Pl.spec) =
  {
    spec with
    Pl.ir = List.filter (fun n -> not (is_fi_pass n)) spec.Pl.ir;
    Pl.mir = List.filter (fun n -> not (is_fi_pass n)) spec.Pl.mir;
  }

(* [ir]: the caller's already-optimized IR module.  When stripping the FI
   passes leaves the IR stage unchanged (REFINE instruments at the MIR
   level), that module IS the golden IR — reusing it skips a redundant
   compile invocation, and the golden build reduces to isel + FI-free MIR
   passes + layout. *)
let golden_for ~full ~ctx ~cache ?phases ?ir src : detach_golden =
  let gspec = strip_fi_passes full in
  let build () =
    let gm =
      match ir with
      | Some m when gspec.Pl.ir = full.Pl.ir -> m
      | _ -> build_ir ~pipeline:gspec ~cache ?phases src
    in
    let out = Pl.run ~ctx ?phases { gspec with Pl.ir = [] } gm in
    match out.Pl.image with
    | Some image ->
      { g_image = image; g_snap = E.snapshot image; g_snap_id = Atomic.fetch_and_add next_snap_id 1 }
    | None -> raise (Prepare_error "golden (FI-free) pipeline did not produce an image")
  in
  if not (cache && !Artifact_cache.enabled) then build ()
  else begin
    let key = Artifact_cache.key [ "detach-golden"; src; Pl.print gspec ] in
    match Artifact_cache.find detach_cache key with
    | Some g -> g
    | None ->
      let g = build () in
      Artifact_cache.add detach_cache key g;
      g
  end

(* the post-injection semantics of each LLFI runtime call: identity on the
   instrumented value (r2 -> r0 for i64/i1, f1 -> f0 for f64), carrying
   the call's modeled cost so the detached cost trajectory stays
   attached-identical *)
let llfi_patch_table =
  let module R = Refine_mir.Reg in
  [
    ("llfi_inject_i64", M.Mmov (R.ret_gpr, M.Reg (R.gpr 2)), Fi_cost.llfi_lib_call);
    ("llfi_inject_f64", M.Mmov (R.ret_fpr, M.Reg (R.fpr 1)), Fi_cost.llfi_lib_call);
    ("llfi_inject_i1", M.Mmov (R.ret_gpr, M.Reg (R.gpr 2)), Fi_cost.llfi_lib_call);
  ]

let target_of_image ?map image cost_w =
  {
    dt_image = image;
    dt_snap = E.snapshot image;
    dt_snap_id = Atomic.fetch_and_add next_snap_id 1;
    dt_dprog = E.decode ~cost_of:cost_w image;
    dt_map = map;
  }

let refine_fallback_target image =
  match Fimap.patch_refine ~lib_call_cost:Fi_cost.refine_lib_call image with
  | None -> None (* splices do not parse: run attached forever *)
  | Some (patched, m) ->
    (* the masked identity map routes the handoff through the map-mode
       drain: a poll that fires mid-splice steps attached to the next
       boundary instead of carrying a partially-executed splice onto the
       patched copy (where the head branch would skip its remainder) *)
    let map = { E.h_rank = m.Fimap.rank_of_pc; h_next = m.Fimap.next_rank } in
    Some (target_of_image ~map patched m.Fimap.cost_w)

let build_detach ~full ~ctx ~cache ?phases ?ir (kind : kind) image src : detach_target option =
  match kind with
  | Pinfi -> None (* PINFI's cost model already detaches (Fi_cost) *)
  | Llfi ->
    let patched, cost_w = Fimap.patch_calls ~table:llfi_patch_table image in
    Some (target_of_image patched cost_w)
  | Refine ->
    if !force_detach_fallback || not (Fimap.map_eligible image) then
      (* call-site candidates (or an unparseable image) cannot use map
         mode — go straight to the fallback without building a golden *)
      refine_fallback_target image
    else begin
      let golden = golden_for ~full ~ctx ~cache ?phases ?ir src in
      match Fimap.build ~lib_call_cost:Fi_cost.refine_lib_call image golden.g_image with
      | Some m ->
        Some
          {
            dt_image = golden.g_image;
            dt_snap = golden.g_snap;
            dt_snap_id = golden.g_snap_id;
            dt_dprog = E.decode ~cost_of:m.Fimap.cost_w golden.g_image;
            dt_map = Some { E.h_rank = m.Fimap.rank_of_pc; h_next = m.Fimap.next_rank };
          }
      | None -> refine_fallback_target image
    end

(* Per-sample eligibility (the decline matrix of DESIGN.md §20).  The
   handoff itself can still decline at run time (drain cap, shadow-stack
   mismatch, budget edge); everything here is knowable before the run. *)
let detach_plan_for ~(quotas : quotas) (p : prepared) (model : Fault.model) :
    E.detach_plan option =
  if not (!use_detach && !use_decode) then None
  else
    match p.detach with
    | None -> None
    | Some dt ->
      let model_ok =
        match (p.kind, model) with
        (* a REFINE Instr_image overlay lands in instrumented coordinates
           (possibly on a spliced pc): meaningless on the golden image and
           able to re-enter a splice on the patched one *)
        | Refine, Fault.Instr_image -> false
        | _ -> true
      in
      let livelock_ok =
        match quotas.livelock_window with
        (* LLFI patch targets retire 1:1 steps with identical register
           state, so fingerprint instants and verdicts are unchanged;
           REFINE targets retire fewer steps post-handoff and would shift
           the fingerprint cadence *)
        | Some _ -> p.kind = Llfi
        | None -> true
      in
      if model_ok && livelock_ok then
        Some { E.plan_target = (fun () -> acquire_detach dt); plan_map = dt.dt_map }
      else None

let finish_profile kind sel image snap snap_id static_instrumented ~detach (count : int)
    (r : E.result) =
  (match r.status with
  | E.Exited 0 -> ()
  | E.Exited c -> raise (Prepare_error (Printf.sprintf "profiling run exited with code %d" c))
  | E.Trapped tr -> raise (Prepare_error ("profiling run trapped: " ^ E.string_of_trap tr))
  | E.Timed_out | E.Running -> raise (Prepare_error "profiling run did not finish"));
  {
    kind;
    sel;
    image;
    snap;
    snap_id;
    static_instrumented;
    detach;
    profile =
      {
        Fault.golden_output = r.output;
        golden_exit = 0;
        dyn_count = Int64.of_int count;
        profile_cost = r.cost;
      };
  }

(* fingerprint of the emitted code arrays — the binary's own and its
   detach target's: a prepared entry whose image (or whose handoff
   target's image) was mutated after caching must never be served again *)
let image_fingerprint (p : prepared) =
  let detach_code =
    match p.detach with
    | None -> [||]
    | Some dt -> dt.dt_image.Refine_backend.Layout.code
  in
  Digest.string (Marshal.to_string (p.image.Refine_backend.Layout.code, detach_code) [])

let prepared_cache : prepared Artifact_cache.t =
  Artifact_cache.create ~name:"prepared" ~fingerprint:image_fingerprint ()

let reset_artifact_caches () =
  Artifact_cache.clear ir_cache;
  Artifact_cache.clear prepared_cache;
  Artifact_cache.clear decoded_cache;
  Artifact_cache.clear detach_cache;
  Atomic.set compile_invocation_count 0

let ir_cache_stats () = Artifact_cache.stats ir_cache

let prepared_cache_stats () = Artifact_cache.stats prepared_cache

let decoded_cache_stats () = Artifact_cache.stats decoded_cache

(* [phases] buckets wall-clock time into the overhead-breakdown columns
   (instrument / compile / execute); the profiling runs count as execute.
   Omitted (the common library-use case), only the modeled costs remain.

   Profiling runs TWICE with independent machine and control-library
   state: a program whose golden output, exit code or dynamic population
   varies between fault-free runs cannot classify faults (every
   comparison against "the" golden run would be noise), so the cell is
   [Quarantine]d instead of sampled.  [verify_mir] re-checks the
   instrumented machine code at the end of the MIR stage
   ([Mverify.check_instrumented] for the REFINE splices,
   [Mverify.check_funcs] for LLFI's recompiled functions); [verify_each]
   additionally interleaves the IR/MIR verifiers after every single pass.
   Either kind of violation quarantines the cell. *)
let prepare_uncached ?phases ~sel ~full ~max_steps ~verify_mir ~verify_each ~cache
    ~(chaos : chaos) (kind : kind) (src : string) : prepared =
  let time name f = match phases with None -> f () | Some p -> Obs.Phase.time p name f in
  let quarantine_invalid f =
    try f () with
    | Refine_mir.Mverify.Invalid msg -> raise (Quarantine ("mir-verifier", msg))
    | Refine_ir.Verify.Invalid msg -> raise (Quarantine ("ir-verifier", msg))
  in
  (* first run becomes the golden profile; the second must agree with it *)
  let finish_and_check static_n image snap snap_id ~detach profile_once =
    let count1, r1 = profile_once () in
    let p = finish_profile kind sel image snap snap_id static_n ~detach count1 r1 in
    let count2, r2 = profile_once () in
    let out2 = if chaos.flaky_golden then r2.E.output ^ "#chaos" else r2.E.output in
    let exit2 = match r2.E.status with E.Exited c -> c | _ -> min_int in
    if
      out2 <> p.profile.Fault.golden_output
      || exit2 <> p.profile.Fault.golden_exit
      || Int64.of_int count2 <> p.profile.Fault.dyn_count
    then
      raise
        (Quarantine
           ( "nondeterministic-golden",
             Printf.sprintf
               "independent profiling runs disagree: output %dB/%dB exit %d/%d dyn %Ld/%Ld"
               (String.length p.profile.Fault.golden_output)
               (String.length out2) p.profile.Fault.golden_exit exit2
               p.profile.Fault.dyn_count (Int64.of_int count2) ));
    p
  in
  let ctx = { Refine_passes.Pass.sel; save_flags = true } in
  (* tool-independent IR prefix (shared via the IR cache tier), then the
     rest of the pipeline: IR FI passes, isel, MIR passes, layout *)
  let prefix, ir_rest = split_fi_prefix full.Pl.ir in
  let m = build_ir ~pipeline:{ full with Pl.ir = prefix } ~cache ~verify_each ?phases src in
  let out =
    quarantine_invalid (fun () ->
        Pl.run ~ctx ~verify_each ~verify_fi:verify_mir ?phases { full with Pl.ir = ir_rest } m)
  in
  let image =
    match out.Pl.image with
    | Some image -> image
    | None -> raise (Prepare_error "pipeline spec does not end in layout")
  in
  let static_n = out.Pl.fi_sites in
  let snap = E.snapshot image and snap_id = Atomic.fetch_and_add next_snap_id 1 in
  (* chaos builds mutate instrumented code: their images must never seed a
     detach target (nor touch the shared detach-golden tier) *)
  let detach =
    if chaos.break_mir || chaos.flaky_golden then None
    else build_detach ~full ~ctx ~cache ?phases ~ir:m kind image src
  in
  let profile_once () =
    match kind with
    | Refine ->
      let ctrl = Runtime.create Runtime.Profile in
      let eng = acquire ~ext_extra:(Runtime.refine_handlers ctrl) ~image ~snap ~snap_id () in
      maybe_profile eng;
      let r = time "execute" (fun () -> E.run ~max_steps eng) in
      Runtime.absorb ctrl eng;
      flush_obs kind eng ~fi_hits:ctrl.Runtime.count ~run_cost:r.E.cost;
      (ctrl.Runtime.count, r)
    | Llfi ->
      let ctrl = Runtime.create Runtime.Profile in
      let eng = acquire ~ext_extra:(Runtime.llfi_handlers ctrl) ~image ~snap ~snap_id () in
      maybe_profile eng;
      let r = time "execute" (fun () -> E.run ~max_steps eng) in
      Runtime.absorb ctrl eng;
      flush_obs kind eng ~fi_hits:ctrl.Runtime.count ~run_cost:r.E.cost;
      (ctrl.Runtime.count, r)
    | Pinfi ->
      let ctrl = Pinfi.create ~sel Runtime.Profile in
      let eng = acquire ~image ~snap ~snap_id () in
      (* attaching the DBI hook is PINFI's (tiny) instrumentation phase *)
      time "instrument" (fun () -> Pinfi.attach ctrl eng);
      maybe_profile eng;
      let r = time "execute" (fun () -> E.run ~max_steps eng) in
      flush_obs kind eng ~fi_hits:ctrl.Pinfi.count ~run_cost:r.E.cost;
      (ctrl.Pinfi.count, r)
  in
  finish_and_check static_n image snap snap_id ~detach profile_once

let prepare ?phases ?(sel = Selection.default) ?(pipeline = default_pipeline)
    ?(max_steps = 2_000_000_000L) ?(verify_mir = true) ?(verify_each = false)
    ?(chaos = no_chaos) ?(cache = true) (kind : kind) (src : string) : prepared =
  let full = pipeline_for ~chaos kind pipeline in
  (* chaos mutates code after instrumentation: those runs must neither be
     served from cache nor poison it *)
  let use_cache =
    cache && !Artifact_cache.enabled && not (chaos.break_mir || chaos.flaky_golden)
  in
  let pkey =
    Artifact_cache.key
      [
        "prepared";
        src;
        Pl.print full;
        kind_name kind;
        Selection.to_string sel;
        string_of_bool verify_mir;
        Int64.to_string max_steps;
      ]
  in
  match if use_cache then Artifact_cache.find prepared_cache pkey else None with
  | Some p -> p
  | None ->
    let p =
      prepare_uncached ?phases ~sel ~full ~max_steps ~verify_mir ~verify_each ~cache ~chaos kind
        src
    in
    if use_cache then Artifact_cache.add prepared_cache pkey p;
    p

exception Sample_budget_exceeded of int64

(* One fault-injection experiment: pick a uniform dynamic target, run,
   classify against the golden output, with the 10x-profiling timeout.

   [cost_cap] is the harness watchdog: a modeled-cost budget below the
   paper's 10x timeout at which the sample is killed and reported as a
   harness failure ([Sample_budget_exceeded]) rather than classified as a
   Crash — exceeding the paper's own timeout is an experimental outcome,
   exceeding the operator's budget is not.  [poll] is forwarded to the
   simulator (called every 1024 instructions) so a cancellation token can
   abort in-flight samples.

   [quotas] (default [no_quotas]) is the adversarial-input sandbox
   (DESIGN.md §13): tripped quotas end the run [Trapped] and classify as
   Crash — an outcome, never an exception, so the supervisor burns no
   retries on them. *)
let run_injection ?cost_cap ?(quotas = no_quotas) ?(model = Fault.Reg_bit) ?poll
    (p : prepared) (rng : P.t) : Fault.experiment =
  if p.profile.Fault.dyn_count = 0L then
    { Fault.outcome = Fault.Benign; run_cost = 0L; fault = None }
  else begin
    let target = Int64.to_int (Int64.add 1L (P.int64 rng p.profile.Fault.dyn_count)) in
    let timeout = Int64.mul Fi_cost.timeout_factor p.profile.Fault.profile_cost in
    let max_cost, capped =
      match cost_cap with
      | Some c when Int64.compare c timeout < 0 -> (c, true)
      | _ -> (timeout, false)
    in
    let sandboxed_run ?detach eng =
      E.run ~max_cost
        ?output_quota:(effective_output_quota quotas p.profile)
        ?heap_quota:quotas.heap_bytes ?wall_clock:quotas.wall_clock_s ~clock:Obs.Control.now
        ?livelock:quotas.livelock_window ?poll ?detach eng
    in
    note_injection p.kind model;
    (* post-injection handoff plan (DESIGN.md §20), when tool/model/quota
       eligibility allows; [None] simply runs attached *)
    let plan = detach_plan_for ~quotas p model in
    let detach_mode =
      match p.detach with
      | Some { dt_map = Some _; _ } -> "map"
      | Some { dt_map = None; _ } -> "patch"
      | None -> "none"
    in
    let mode = Runtime.Inject { target; rng; model } in
    let r, record =
      match p.kind with
      | Refine ->
        let ctrl = Runtime.create mode in
        let eng =
          acquire ~ext_extra:(Runtime.refine_handlers ctrl) ~image:p.image ~snap:p.snap
            ~snap_id:p.snap_id ()
        in
        maybe_profile eng;
        let r = sandboxed_run ?detach:plan eng in
        Runtime.absorb ctrl eng;
        flush_obs p.kind eng ~fi_hits:ctrl.Runtime.count ~run_cost:r.E.cost;
        note_detach_result p.kind ~armed:(Option.is_some plan) ~mode:detach_mode
          ~fired:ctrl.Runtime.fired r;
        (r, ctrl.Runtime.record)
      | Llfi ->
        let ctrl = Runtime.create mode in
        let eng =
          acquire ~ext_extra:(Runtime.llfi_handlers ctrl) ~image:p.image ~snap:p.snap
            ~snap_id:p.snap_id ()
        in
        maybe_profile eng;
        let r = sandboxed_run ?detach:plan eng in
        Runtime.absorb ctrl eng;
        flush_obs p.kind eng ~fi_hits:ctrl.Runtime.count ~run_cost:r.E.cost;
        note_detach_result p.kind ~armed:(Option.is_some plan) ~mode:detach_mode
          ~fired:ctrl.Runtime.fired r;
        (r, ctrl.Runtime.record)
      | Pinfi ->
        let ctrl = Pinfi.create ~sel:p.sel mode in
        let eng = acquire ~image:p.image ~snap:p.snap ~snap_id:p.snap_id () in
        Pinfi.attach ctrl eng;
        maybe_profile eng;
        let r = sandboxed_run eng in
        flush_obs p.kind eng ~fi_hits:ctrl.Pinfi.count ~run_cost:r.E.cost;
        (r, ctrl.Pinfi.record)
    in
    note_quota_trip r;
    if capped && r.E.status = E.Timed_out then raise (Sample_budget_exceeded r.E.cost);
    { Fault.outcome = Fault.classify p.profile r; run_cost = r.E.cost; fault = record }
  end

(* Fault-free run of the prepared binary (used by tests and examples). *)
let run_clean (p : prepared) : E.result =
  match p.kind with
  | Refine ->
    let ctrl = Runtime.create Runtime.Profile in
    let eng =
      acquire ~ext_extra:(Runtime.refine_handlers ctrl) ~image:p.image ~snap:p.snap
        ~snap_id:p.snap_id ()
    in
    E.run eng
  | Llfi ->
    let ctrl = Runtime.create Runtime.Profile in
    let eng =
      acquire ~ext_extra:(Runtime.llfi_handlers ctrl) ~image:p.image ~snap:p.snap
        ~snap_id:p.snap_id ()
    in
    E.run eng
  | Pinfi ->
    let eng = acquire ~image:p.image ~snap:p.snap ~snap_id:p.snap_id () in
    E.run eng
