(* Per-tool compile/profile/inject drivers — the experiment workflow of the
   paper's Figure 3 for each of the three compared injectors.

   [prepare] builds the tool's binary from MinC source and runs the
   profiling phase once (dynamic instruction count + golden output);
   [run_injection] performs one fault-injection experiment and classifies
   its outcome.  The profiling binary and the injection binary are the same
   artifact; only the control library's mode differs. *)

module E = Refine_machine.Exec
module P = Refine_support.Prng
module Pipeline = Refine_ir.Pipeline
module Obs = Refine_obs
module M = Refine_mir.Minstr

type kind = Refine | Llfi | Pinfi

let kind_name = function Refine -> "REFINE" | Llfi -> "LLFI" | Pinfi -> "PINFI"

(* ---- observability (DESIGN.md §12) ------------------------------------

   Executor profiling and FI-site accounting, flushed into the metrics
   registry after each run.  All handles are pre-created per (tool, class)
   so the per-run flush never pays the registry's creation lookup; with
   observability disabled the whole block is one boolean branch per run. *)

let kind_index = function Refine -> 0 | Llfi -> 1 | Pinfi -> 2
let kind_names = [| "REFINE"; "LLFI"; "PINFI" |]

let m_exec_steps =
  Array.init 3 (fun t ->
      Array.init M.num_iclasses (fun k ->
          Obs.Metrics.counter ~help:"simulated instructions by opcode class"
            ~labels:[ ("tool", kind_names.(t)); ("class", M.iclass_name M.iclasses.(k)) ]
            "refine_exec_steps_total"))

let m_ext_calls =
  Array.init 3 (fun t ->
      Obs.Metrics.counter ~help:"runtime-library/libc calls made by simulated code"
        ~labels:[ ("tool", kind_names.(t)) ]
        "refine_exec_ext_calls_total")

let m_ext_cost =
  Array.init 3 (fun t ->
      Obs.Metrics.counter ~help:"modeled cost charged by extern calls"
        ~labels:[ ("tool", kind_names.(t)) ]
        "refine_exec_ext_cost_units_total")

let m_fi_hits =
  Array.init 3 (fun t ->
      Obs.Metrics.counter
        ~help:"dynamic visits to FI-instrumented sites (control-library calls or DBI hook hits)"
        ~labels:[ ("tool", kind_names.(t)) ]
        "refine_fi_site_hits_total")

let m_run_cost =
  Array.init 3 (fun t ->
      Obs.Metrics.counter ~help:"modeled cost of completed simulator runs"
        ~labels:[ ("tool", kind_names.(t)) ]
        "refine_run_cost_units_total")

(* Attach an executor profile iff observability is on; [flush_obs] mirrors
   it (and the control library's dynamic site count) into the registry. *)
let maybe_profile (eng : E.t) = if Obs.Control.enabled () then ignore (E.enable_profiling eng)

let flush_obs kind (eng : E.t) ~fi_hits ~run_cost =
  if Obs.Control.enabled () then begin
    let t = kind_index kind in
    (match eng.E.prof with
    | Some p ->
      Array.iteri
        (fun k n -> if n <> 0L then Obs.Metrics.add64 m_exec_steps.(t).(k) n)
        p.E.class_steps;
      Obs.Metrics.add64 m_ext_calls.(t) p.E.ext_calls;
      Obs.Metrics.add64 m_ext_cost.(t) p.E.ext_cost
    | None -> ());
    Obs.Metrics.add64 m_fi_hits.(t) fi_hits;
    Obs.Metrics.add64 m_run_cost.(t) run_cost;
    Obs.Span.add_cost run_cost
  end

type prepared = {
  kind : kind;
  sel : Selection.t;
  image : Refine_backend.Layout.image;
  profile : Fault.profile;
  static_instrumented : int; (* instrumented sites (REFINE/LLFI); 0 for PINFI *)
}

exception Prepare_error of string

let build_ir ?(opt = Pipeline.O2) src =
  let m = Refine_minic.Frontend.compile src in
  Pipeline.optimize opt m;
  m

let finish_profile kind sel image static_instrumented (count : int64) (r : E.result) =
  (match r.status with
  | E.Exited 0 -> ()
  | E.Exited c -> raise (Prepare_error (Printf.sprintf "profiling run exited with code %d" c))
  | E.Trapped tr -> raise (Prepare_error ("profiling run trapped: " ^ E.string_of_trap tr))
  | E.Timed_out | E.Running -> raise (Prepare_error "profiling run did not finish"));
  {
    kind;
    sel;
    image;
    static_instrumented;
    profile =
      {
        Fault.golden_output = r.output;
        golden_exit = 0;
        dyn_count = count;
        profile_cost = r.cost;
      };
  }

(* [phases] buckets wall-clock time into the overhead-breakdown columns
   (instrument / compile / execute); the profiling run counts as execute.
   Omitted (the common library-use case), only the modeled costs remain. *)
let prepare ?phases ?(sel = Selection.default) ?(opt = Pipeline.O2) ?(max_steps = 2_000_000_000L)
    (kind : kind) (src : string) : prepared =
  let time name f = match phases with None -> f () | Some p -> Obs.Phase.time p name f in
  match kind with
  | Refine ->
    let m = time "compile" (fun () -> build_ir ~opt src) in
    let funcs, _ = time "compile" (fun () -> Refine_backend.Compile.to_mir m) in
    let static_n =
      time "instrument" (fun () ->
          List.fold_left (fun acc mf -> acc + Refine_pass.run ~sel mf) 0 funcs)
    in
    let image = time "compile" (fun () -> Refine_backend.Compile.emit m funcs) in
    let ctrl = Runtime.create Runtime.Profile in
    let eng = E.create ~ext_extra:(Runtime.refine_handlers ctrl) image in
    maybe_profile eng;
    let r = time "execute" (fun () -> E.run ~max_steps eng) in
    flush_obs kind eng ~fi_hits:ctrl.Runtime.count ~run_cost:r.E.cost;
    finish_profile kind sel image static_n ctrl.Runtime.count r
  | Llfi ->
    let m = time "compile" (fun () -> build_ir ~opt src) in
    let static_n = time "instrument" (fun () -> Llfi_pass.run ~sel m) in
    let image = time "compile" (fun () -> Refine_backend.Compile.compile m) in
    let ctrl = Runtime.create Runtime.Profile in
    let eng = E.create ~ext_extra:(Runtime.llfi_handlers ctrl) image in
    maybe_profile eng;
    let r = time "execute" (fun () -> E.run ~max_steps eng) in
    flush_obs kind eng ~fi_hits:ctrl.Runtime.count ~run_cost:r.E.cost;
    finish_profile kind sel image static_n ctrl.Runtime.count r
  | Pinfi ->
    let m = time "compile" (fun () -> build_ir ~opt src) in
    let image = time "compile" (fun () -> Refine_backend.Compile.compile m) in
    let ctrl = Pinfi.create ~sel Runtime.Profile in
    let eng = E.create image in
    (* attaching the DBI hook is PINFI's (tiny) instrumentation phase *)
    time "instrument" (fun () -> Pinfi.attach ctrl eng);
    maybe_profile eng;
    let r = time "execute" (fun () -> E.run ~max_steps eng) in
    flush_obs kind eng ~fi_hits:ctrl.Pinfi.count ~run_cost:r.E.cost;
    finish_profile kind sel image 0 ctrl.Pinfi.count r

exception Sample_budget_exceeded of int64

(* One fault-injection experiment: pick a uniform dynamic target, run,
   classify against the golden output, with the 10x-profiling timeout.

   [cost_cap] is the harness watchdog: a modeled-cost budget below the
   paper's 10x timeout at which the sample is killed and reported as a
   harness failure ([Sample_budget_exceeded]) rather than classified as a
   Crash — exceeding the paper's own timeout is an experimental outcome,
   exceeding the operator's budget is not.  [poll] is forwarded to the
   simulator (called every 2048 instructions) so a cancellation token can
   abort in-flight samples. *)
let run_injection ?cost_cap ?poll (p : prepared) (rng : P.t) : Fault.experiment =
  if p.profile.Fault.dyn_count = 0L then
    { Fault.outcome = Fault.Benign; run_cost = 0L; fault = None }
  else begin
    let target = Int64.add 1L (P.int64 rng p.profile.Fault.dyn_count) in
    let timeout = Int64.mul Fi_cost.timeout_factor p.profile.Fault.profile_cost in
    let max_cost, capped =
      match cost_cap with
      | Some c when Int64.compare c timeout < 0 -> (c, true)
      | _ -> (timeout, false)
    in
    let mode = Runtime.Inject { target; rng } in
    let r, record =
      match p.kind with
      | Refine ->
        let ctrl = Runtime.create mode in
        let eng = E.create ~ext_extra:(Runtime.refine_handlers ctrl) p.image in
        maybe_profile eng;
        let r = E.run ~max_cost ?poll eng in
        flush_obs p.kind eng ~fi_hits:ctrl.Runtime.count ~run_cost:r.E.cost;
        (r, ctrl.Runtime.record)
      | Llfi ->
        let ctrl = Runtime.create mode in
        let eng = E.create ~ext_extra:(Runtime.llfi_handlers ctrl) p.image in
        maybe_profile eng;
        let r = E.run ~max_cost ?poll eng in
        flush_obs p.kind eng ~fi_hits:ctrl.Runtime.count ~run_cost:r.E.cost;
        (r, ctrl.Runtime.record)
      | Pinfi ->
        let ctrl = Pinfi.create ~sel:p.sel mode in
        let eng = E.create p.image in
        Pinfi.attach ctrl eng;
        maybe_profile eng;
        let r = E.run ~max_cost ?poll eng in
        flush_obs p.kind eng ~fi_hits:ctrl.Pinfi.count ~run_cost:r.E.cost;
        (r, ctrl.Pinfi.record)
    in
    if capped && r.E.status = E.Timed_out then raise (Sample_budget_exceeded r.E.cost);
    { Fault.outcome = Fault.classify p.profile r; run_cost = r.E.cost; fault = record }
  end

(* Fault-free run of the prepared binary (used by tests and examples). *)
let run_clean (p : prepared) : E.result =
  match p.kind with
  | Refine ->
    let ctrl = Runtime.create Runtime.Profile in
    let eng = E.create ~ext_extra:(Runtime.refine_handlers ctrl) p.image in
    E.run eng
  | Llfi ->
    let ctrl = Runtime.create Runtime.Profile in
    let eng = E.create ~ext_extra:(Runtime.llfi_handlers ctrl) p.image in
    E.run eng
  | Pinfi ->
    let eng = E.create p.image in
    E.run eng
