(* Per-tool compile/profile/inject drivers — the experiment workflow of the
   paper's Figure 3 for each of the three compared injectors.

   [prepare] builds the tool's binary from MinC source and runs the
   profiling phase once (dynamic instruction count + golden output);
   [run_injection] performs one fault-injection experiment and classifies
   its outcome.  The profiling binary and the injection binary are the same
   artifact; only the control library's mode differs. *)

module E = Refine_machine.Exec
module P = Refine_support.Prng
module Pipeline = Refine_ir.Pipeline

type kind = Refine | Llfi | Pinfi

let kind_name = function Refine -> "REFINE" | Llfi -> "LLFI" | Pinfi -> "PINFI"

type prepared = {
  kind : kind;
  sel : Selection.t;
  image : Refine_backend.Layout.image;
  profile : Fault.profile;
  static_instrumented : int; (* instrumented sites (REFINE/LLFI); 0 for PINFI *)
}

exception Prepare_error of string

let build_ir ?(opt = Pipeline.O2) src =
  let m = Refine_minic.Frontend.compile src in
  Pipeline.optimize opt m;
  m

let finish_profile kind sel image static_instrumented (count : int64) (r : E.result) =
  (match r.status with
  | E.Exited 0 -> ()
  | E.Exited c -> raise (Prepare_error (Printf.sprintf "profiling run exited with code %d" c))
  | E.Trapped tr -> raise (Prepare_error ("profiling run trapped: " ^ E.string_of_trap tr))
  | E.Timed_out | E.Running -> raise (Prepare_error "profiling run did not finish"));
  {
    kind;
    sel;
    image;
    static_instrumented;
    profile =
      {
        Fault.golden_output = r.output;
        golden_exit = 0;
        dyn_count = count;
        profile_cost = r.cost;
      };
  }

let prepare ?(sel = Selection.default) ?(opt = Pipeline.O2) ?(max_steps = 2_000_000_000L)
    (kind : kind) (src : string) : prepared =
  match kind with
  | Refine ->
    let m = build_ir ~opt src in
    let funcs, _ = Refine_backend.Compile.to_mir m in
    let static_n = List.fold_left (fun acc mf -> acc + Refine_pass.run ~sel mf) 0 funcs in
    let image = Refine_backend.Compile.emit m funcs in
    let ctrl = Runtime.create Runtime.Profile in
    let eng = E.create ~ext_extra:(Runtime.refine_handlers ctrl) image in
    let r = E.run ~max_steps eng in
    finish_profile kind sel image static_n ctrl.Runtime.count r
  | Llfi ->
    let m = build_ir ~opt src in
    let static_n = Llfi_pass.run ~sel m in
    let image = Refine_backend.Compile.compile m in
    let ctrl = Runtime.create Runtime.Profile in
    let eng = E.create ~ext_extra:(Runtime.llfi_handlers ctrl) image in
    let r = E.run ~max_steps eng in
    finish_profile kind sel image static_n ctrl.Runtime.count r
  | Pinfi ->
    let m = build_ir ~opt src in
    let image = Refine_backend.Compile.compile m in
    let ctrl = Pinfi.create ~sel Runtime.Profile in
    let eng = E.create image in
    Pinfi.attach ctrl eng;
    let r = E.run ~max_steps eng in
    finish_profile kind sel image 0 ctrl.Pinfi.count r

exception Sample_budget_exceeded of int64

(* One fault-injection experiment: pick a uniform dynamic target, run,
   classify against the golden output, with the 10x-profiling timeout.

   [cost_cap] is the harness watchdog: a modeled-cost budget below the
   paper's 10x timeout at which the sample is killed and reported as a
   harness failure ([Sample_budget_exceeded]) rather than classified as a
   Crash — exceeding the paper's own timeout is an experimental outcome,
   exceeding the operator's budget is not.  [poll] is forwarded to the
   simulator (called every 2048 instructions) so a cancellation token can
   abort in-flight samples. *)
let run_injection ?cost_cap ?poll (p : prepared) (rng : P.t) : Fault.experiment =
  if p.profile.Fault.dyn_count = 0L then
    { Fault.outcome = Fault.Benign; run_cost = 0L; fault = None }
  else begin
    let target = Int64.add 1L (P.int64 rng p.profile.Fault.dyn_count) in
    let timeout = Int64.mul Fi_cost.timeout_factor p.profile.Fault.profile_cost in
    let max_cost, capped =
      match cost_cap with
      | Some c when Int64.compare c timeout < 0 -> (c, true)
      | _ -> (timeout, false)
    in
    let mode = Runtime.Inject { target; rng } in
    let r, record =
      match p.kind with
      | Refine ->
        let ctrl = Runtime.create mode in
        let eng = E.create ~ext_extra:(Runtime.refine_handlers ctrl) p.image in
        let r = E.run ~max_cost ?poll eng in
        (r, ctrl.Runtime.record)
      | Llfi ->
        let ctrl = Runtime.create mode in
        let eng = E.create ~ext_extra:(Runtime.llfi_handlers ctrl) p.image in
        let r = E.run ~max_cost ?poll eng in
        (r, ctrl.Runtime.record)
      | Pinfi ->
        let ctrl = Pinfi.create ~sel:p.sel mode in
        let eng = E.create p.image in
        Pinfi.attach ctrl eng;
        let r = E.run ~max_cost ?poll eng in
        (r, ctrl.Pinfi.record)
    in
    if capped && r.E.status = E.Timed_out then raise (Sample_budget_exceeded r.E.cost);
    { Fault.outcome = Fault.classify p.profile r; run_cost = r.E.cost; fault = record }
  end

(* Fault-free run of the prepared binary (used by tests and examples). *)
let run_clean (p : prepared) : E.result =
  match p.kind with
  | Refine ->
    let ctrl = Runtime.create Runtime.Profile in
    let eng = E.create ~ext_extra:(Runtime.refine_handlers ctrl) p.image in
    E.run eng
  | Llfi ->
    let ctrl = Runtime.create Runtime.Profile in
    let eng = E.create ~ext_extra:(Runtime.llfi_handlers ctrl) p.image in
    E.run eng
  | Pinfi ->
    let eng = E.create p.image in
    E.run eng
