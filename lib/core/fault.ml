(* Fault records and outcome classification (paper §4.3.2, Figure 3b).

   A fault log entry records which dynamic instruction, output operand and
   bit were hit — "for reference and repeatability".  Outcomes:

   - Crash: the run trapped (segfault, illegal pc, ...), returned a nonzero
     exit code, or exceeded 10x the profiled execution time (timeout);
   - SOC (silent output corruption): final output differs from the golden
     output of the fault-free profiling run;
   - Benign: the fault had no observable effect. *)

type record = {
  dyn_index : int64; (* 1-based dynamic index of the faulted instruction *)
  op_index : int; (* which output operand *)
  reg_name : string;
  bit : int;
}

(* Tool_error is not part of the paper's outcome taxonomy: it marks a
   harness-side failure (worker exception, retry exhaustion, watchdog
   kill), so the sample degrades the achieved n instead of polluting the
   crash/SOC/benign contingency rows. *)
type outcome = Crash | Soc | Benign | Tool_error

let string_of_outcome = function
  | Crash -> "crash"
  | Soc -> "SOC"
  | Benign -> "benign"
  | Tool_error -> "tool-error"

let outcome_of_string = function
  | "crash" -> Crash
  | "SOC" -> Soc
  | "benign" -> Benign
  | "tool-error" -> Tool_error
  | s -> invalid_arg ("Fault.outcome_of_string: " ^ s)

let string_of_record r =
  Printf.sprintf "dyn=%Ld op=%d reg=%s bit=%d" r.dyn_index r.op_index r.reg_name r.bit

type profile = {
  golden_output : string;
  golden_exit : int;
  dyn_count : int64; (* size of the tool's injection population *)
  profile_cost : int64; (* modeled time of the profiling run *)
}

type experiment = {
  outcome : outcome;
  run_cost : int64;
  fault : record option; (* None when the target was never reached *)
}

(* Quota traps (Output_quota/Heap_quota/Wall_clock/Livelock) fall under
   Trapped and classify as Crash deterministically, like the paper's own
   10x timeout.  A truncated output can never certify a golden match:
   even if the run somehow exits cleanly after the cut, the sample is a
   Crash (the sandbox, not the program, ended its output). *)
let classify (p : profile) (r : Refine_machine.Exec.result) : outcome =
  if r.truncated then Crash
  else
    match r.status with
    | Refine_machine.Exec.Trapped _ | Refine_machine.Exec.Timed_out -> Crash
    | Refine_machine.Exec.Exited code ->
      if code <> p.golden_exit then Crash
      else if r.output <> p.golden_output then Soc
      else Benign
    | Refine_machine.Exec.Running -> Crash
