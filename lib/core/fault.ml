(* Fault records and outcome classification (paper §4.3.2, Figure 3b).

   A fault log entry records which dynamic instruction, output operand and
   bit were hit — "for reference and repeatability".  Outcomes:

   - Crash: the run trapped (segfault, illegal pc, ...), returned a nonzero
     exit code, or exceeded 10x the profiled execution time (timeout);
   - SOC (silent output corruption): final output differs from the golden
     output of the fault-free profiling run;
   - Benign: the fault had no observable effect. *)

type record = {
  dyn_index : int64; (* 1-based dynamic index of the faulted instruction *)
  op_index : int; (* which output operand *)
  reg_name : string;
  bit : int;
}

(* Fault models (DESIGN.md §18): what state the transient fault strikes at
   the chosen dynamic trigger instance.  [Reg_bit] is the paper's model
   (one bit of one output operand); the others bring the gpuFI-4/InjectV
   fault-target dimension into the campaign matrix: data-memory cells,
   the loaded code image, and multi-bit register upsets (k independent
   bits, or a contiguous burst). *)
type model =
  | Reg_bit
  | Mem_cell
  | Instr_image
  | Multi_bit of { bits : int; burst : bool }

let string_of_model = function
  | Reg_bit -> "reg"
  | Mem_cell -> "mem"
  | Instr_image -> "instr"
  | Multi_bit { bits; burst } ->
    Printf.sprintf "%s:%d" (if burst then "burst" else "multi") bits

let model_of_string s =
  let bad () = invalid_arg ("Fault.model_of_string: " ^ s) in
  match String.split_on_char ':' s with
  | [ "reg" ] -> Reg_bit
  | [ "mem" ] -> Mem_cell
  | [ "instr" ] -> Instr_image
  | [ ("multi" | "burst") as kind; k ] -> (
    match int_of_string_opt k with
    | Some bits when bits >= 1 && bits <= 64 -> Multi_bit { bits; burst = kind = "burst" }
    | _ -> bad ())
  | _ -> bad ()

(* the [bits] column of the campaign CSV: flipped bits per fault *)
let model_bits = function Multi_bit { bits; _ } -> bits | Reg_bit | Mem_cell | Instr_image -> 1

(* Tool_error is not part of the paper's outcome taxonomy: it marks a
   harness-side failure (worker exception, retry exhaustion, watchdog
   kill), so the sample degrades the achieved n instead of polluting the
   crash/SOC/benign contingency rows. *)
type outcome = Crash | Soc | Benign | Tool_error

let string_of_outcome = function
  | Crash -> "crash"
  | Soc -> "SOC"
  | Benign -> "benign"
  | Tool_error -> "tool-error"

let outcome_of_string = function
  | "crash" -> Crash
  | "SOC" -> Soc
  | "benign" -> Benign
  | "tool-error" -> Tool_error
  | s -> invalid_arg ("Fault.outcome_of_string: " ^ s)

let string_of_record r =
  Printf.sprintf "dyn=%Ld op=%d reg=%s bit=%d" r.dyn_index r.op_index r.reg_name r.bit

type profile = {
  golden_output : string;
  golden_exit : int;
  dyn_count : int64; (* size of the tool's injection population *)
  profile_cost : int64; (* modeled time of the profiling run *)
}

type experiment = {
  outcome : outcome;
  run_cost : int64;
  fault : record option; (* None when the target was never reached *)
}

(* Quota traps (Output_quota/Heap_quota/Wall_clock/Livelock) fall under
   Trapped and classify as Crash deterministically, like the paper's own
   10x timeout.  A truncated output can never certify a golden match:
   even if the run somehow exits cleanly after the cut, the sample is a
   Crash (the sandbox, not the program, ended its output). *)
let classify (p : profile) (r : Refine_machine.Exec.result) : outcome =
  if r.truncated then Crash
  else
    match r.status with
    | Refine_machine.Exec.Trapped _ | Refine_machine.Exec.Timed_out -> Crash
    | Refine_machine.Exec.Exited code ->
      if code <> p.golden_exit then Crash
      else if r.output <> p.golden_output then Soc
      else Benign
    | Refine_machine.Exec.Running -> Crash
