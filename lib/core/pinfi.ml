(* PINFI-style binary-level fault injection (paper §5.2).

   The simulator plays the role of Intel Pin: a per-instruction analysis
   hook observes the clean, uninstrumented binary.  During profiling the
   hook counts dynamic instructions that write registers; during injection
   it fires at the chosen instance, flips a uniformly chosen bit of a
   uniformly chosen output register, and then *detaches* — the hook and the
   DBI per-instruction tax disappear for the rest of the run, which is the
   performance optimization the paper added to the public PINFI. *)

module E = Refine_machine.Exec
module M = Refine_mir.Minstr
module R = Refine_mir.Reg
module P = Refine_support.Prng
module Selection = Refine_passes.Selection

type ctrl = {
  mutable count : int; (* native int: incremented once per hooked instruction *)
  mode : Runtime.mode;
  mutable fired : bool;
  mutable record : Fault.record option;
  sel : Selection.t;
  flips : int; (* bits flipped per fault: 1 = the paper's model; 2 = the
                  double-bit variants of Adamu-Fika & Jhumka [3] *)
}

let create ?(sel = Selection.default) ?(flips = 1) mode =
  if flips < 1 || flips > 64 then invalid_arg "Pinfi.create: flips out of [1,64]";
  { count = 0; mode; fired = false; record = None; sel; flips }

let attach (ctrl : ctrl) (eng : E.t) =
  let all_funcs = List.mem "*" ctrl.sel.Selection.funcs in
  let hook (eng : E.t) (pc : int) (i : M.t) =
    if
      Selection.minstr_selected ctrl.sel i
      && (all_funcs
         || Selection.func_selected ctrl.sel eng.E.image.Refine_backend.Layout.func_of_pc.(pc))
    then begin
      ctrl.count <- ctrl.count + 1;
      match ctrl.mode with
      | Runtime.Profile -> ()
      | Runtime.Inject { target; rng; model } ->
        if (not ctrl.fired) && ctrl.count = target then begin
          ctrl.fired <- true;
          let dyn_index = Int64.of_int ctrl.count in
          (match model with
          | Fault.Mem_cell ->
            ctrl.record <- Some (Corrupt.mem_fault rng eng ~dyn_index)
          | Fault.Instr_image ->
            (* the DBI hook knows the exact pc it observed — no walk-back *)
            ctrl.record <- Some (Corrupt.image_fault rng eng ~pc ~dyn_index)
          | Fault.Reg_bit | Fault.Multi_bit _ ->
            let outs = M.outputs i in
            let op = P.int rng (List.length outs) in
            let reg = List.nth outs op in
            let width = R.width_bits reg in
            (* bit positions: the model's k/burst, or the legacy [flips]
               count for Reg_bit (one uniform draw when flips = 1 — the
               same sequence as the pre-model hook) *)
            let chosen =
              match model with
              | Fault.Multi_bit { bits; burst } ->
                Refine_support.Bitops.draw_bits (P.int rng) ~width ~bits ~burst
              | _ -> Refine_support.Bitops.draw_bits (P.int rng) ~width ~bits:ctrl.flips ~burst:false
            in
            eng.E.regs.(reg) <-
              Int64.logxor eng.E.regs.(reg) (Refine_support.Bitops.mask_of_bits chosen);
            ctrl.record <-
              Some
                { Fault.dyn_index; op_index = op; reg_name = R.name reg;
                  bit = List.hd chosen });
          (* detach: drop the hook and the DBI per-instruction tax *)
          eng.E.post_hook <- None;
          eng.E.hook_cost <- 0
        end
    end
  in
  eng.E.post_hook <- Some hook;
  eng.E.hook_cost <- Fi_cost.pin_attach_per_instr
