(* PINFI-style binary-level fault injection (paper §5.2).

   The simulator plays the role of Intel Pin: a per-instruction analysis
   hook observes the clean, uninstrumented binary.  During profiling the
   hook counts dynamic instructions that write registers; during injection
   it fires at the chosen instance, flips a uniformly chosen bit of a
   uniformly chosen output register, and then *detaches* — the hook and the
   DBI per-instruction tax disappear for the rest of the run, which is the
   performance optimization the paper added to the public PINFI. *)

module E = Refine_machine.Exec
module M = Refine_mir.Minstr
module R = Refine_mir.Reg
module P = Refine_support.Prng
module Selection = Refine_passes.Selection

type ctrl = {
  mutable count : int; (* native int: incremented once per hooked instruction *)
  mode : Runtime.mode;
  mutable fired : bool;
  mutable record : Fault.record option;
  sel : Selection.t;
  flips : int; (* bits flipped per fault: 1 = the paper's model; 2 = the
                  double-bit variants of Adamu-Fika & Jhumka [3] *)
}

let create ?(sel = Selection.default) ?(flips = 1) mode =
  if flips < 1 || flips > 64 then invalid_arg "Pinfi.create: flips out of [1,64]";
  { count = 0; mode; fired = false; record = None; sel; flips }

let attach (ctrl : ctrl) (eng : E.t) =
  let all_funcs = List.mem "*" ctrl.sel.Selection.funcs in
  let hook (eng : E.t) (pc : int) (i : M.t) =
    if
      Selection.minstr_selected ctrl.sel i
      && (all_funcs
         || Selection.func_selected ctrl.sel eng.E.image.Refine_backend.Layout.func_of_pc.(pc))
    then begin
      ctrl.count <- ctrl.count + 1;
      match ctrl.mode with
      | Runtime.Profile -> ()
      | Runtime.Inject { target; rng } ->
        if (not ctrl.fired) && ctrl.count = target then begin
          ctrl.fired <- true;
          let outs = M.outputs i in
          let op = P.int rng (List.length outs) in
          let reg = List.nth outs op in
          let width = R.width_bits reg in
          (* choose [flips] distinct bits of the register *)
          let chosen = Hashtbl.create 4 in
          while Hashtbl.length chosen < min ctrl.flips width do
            Hashtbl.replace chosen (P.int rng width) ()
          done;
          let first_bit = ref 0 in
          Hashtbl.iter
            (fun bit () ->
              first_bit := bit;
              eng.E.regs.(reg) <- Refine_support.Bitops.flip_bit eng.E.regs.(reg) bit)
            chosen;
          ctrl.record <-
            Some
              { Fault.dyn_index = Int64.of_int ctrl.count; op_index = op; reg_name = R.name reg;
                bit = !first_bit };
          (* detach: drop the hook and the DBI per-instruction tax *)
          eng.E.post_hook <- None;
          eng.E.hook_cost <- 0
        end
    end
  in
  eng.E.post_hook <- Some hook;
  eng.E.hook_cost <- Fi_cost.pin_attach_per_instr
