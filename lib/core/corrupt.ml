(* Shared fault-mutation primitives for the cross-layer fault models
   (DESIGN.md §18).

   The three injector runtimes (REFINE control library, LLFI callbacks,
   PINFI hook) share the *what* of a fault — which machine state is struck
   and how — while keeping their own *when* (trigger mechanism).  This
   module owns the what:

   - [draw_mask]: the XOR mask of a register-value fault (single bit, k
     distinct bits, or a contiguous burst);
   - [mem_fault]: flip one bit of a data-memory cell drawn uniformly over
     the image's initialized bytes (Mem_cell);
   - [image_fault]: corrupt one code slot via the engine's overlay — a
     different valid instruction, a wild operand encoding, or an illegal
     encoding that traps on fetch (Instr_image);
   - [alternatives]: the valid same-shape opcode replacements (also the
     basis of the §4.5 opcode-corruption tool, which re-exports it).

   It lives below [Runtime]/[Pinfi]/[Opcode_fi] so all three can call it
   without dependency cycles. *)

module E = Refine_machine.Exec
module M = Refine_mir.Minstr
module R = Refine_mir.Reg
module L = Refine_backend.Layout
module Mem = Refine_ir.Memlayout
module P = Refine_support.Prng
module B = Refine_support.Bitops
module I = Refine_ir.Ir

(* --- valid same-shape opcode replacements ------------------------------
   (moved from Opcode_fi, which re-exports it).  Instructions with no
   compatible alternative (moves, control transfers, ...) are not
   valid-opcode corruption targets. *)
let alternatives (i : M.t) : M.t list =
  let ibinops = [ I.Add; I.Sub; I.Mul; I.And; I.Or; I.Xor; I.Shl; I.Lshr; I.Ashr ] in
  let fbinops = [ I.Fadd; I.Fsub; I.Fmul; I.Fdiv ] in
  let int_ccs = [ M.CEq; M.CNe; M.CLt; M.CLe; M.CGt; M.CGe ] in
  let float_ccs = [ M.CFeq; M.CFne; M.CFlt; M.CFle; M.CFgt; M.CFge ] in
  match i with
  | M.Mbin (op, d, a, b) ->
    List.filter_map
      (fun op' -> if op' <> op then Some (M.Mbin (op', d, a, b)) else None)
      ibinops
  | M.Mfbin (op, d, a, b) ->
    List.filter_map
      (fun op' -> if op' <> op then Some (M.Mfbin (op', d, a, b)) else None)
      fbinops
  | M.Mfun (op, d, a) ->
    List.filter_map
      (fun op' -> if op' <> op then Some (M.Mfun (op', d, a)) else None)
      [ I.Fneg; I.Fsqrt; I.Fabs ]
  | M.Mjcc (cc, l) ->
    let pool = if List.mem cc int_ccs then int_ccs else float_ccs in
    List.filter_map (fun cc' -> if cc' <> cc then Some (M.Mjcc (cc', l)) else None) pool
  | M.Msetcc (cc, d) ->
    let pool = if List.mem cc int_ccs then int_ccs else float_ccs in
    List.filter_map (fun cc' -> if cc' <> cc then Some (M.Msetcc (cc', d)) else None) pool
  | M.Mload (d, b, off) -> [ M.Mlea (d, b, None, off) ] (* mov r,[m] -> lea r,[m] *)
  | M.Mlea (d, b, None, off) -> [ M.Mload (d, b, off) ]
  | _ -> []

(* --- register-value XOR masks ------------------------------------------ *)

(* (lowest flipped bit, XOR mask) of one register-value fault below
   [width].  Reg_bit draws exactly one [P.int rng width] — the same single
   draw the pre-model runtimes made, so fixed-seed reg campaigns stay
   bit-identical.  Multi_bit draws via [Bitops.draw_bits].  Mem_cell /
   Instr_image faults never reach here (their mutation is not a register
   mask). *)
let draw_mask rng ~width (model : Fault.model) : int * int64 =
  match model with
  | Fault.Multi_bit { bits; burst } ->
    let chosen = B.draw_bits (P.int rng) ~width ~bits ~burst in
    (List.hd chosen, B.mask_of_bits chosen)
  | Fault.Reg_bit | Fault.Mem_cell | Fault.Instr_image ->
    let bit = P.int rng width in
    (bit, Int64.shift_left 1L bit)

(* --- data-memory cells (Mem_cell) -------------------------------------- *)

(* Candidate cells: the initialized global byte ranges of the image.  A
   program with no initialized data still has architecturally meaningful
   memory — the sentinel return-address cell at the top of the stack — so
   the model degrades to an 8-byte target instead of an empty population. *)
let data_extent (image : L.image) : (int * int) list =
  let gs =
    List.filter_map
      (fun (g : I.global) ->
        match g.I.gbytes with
        | Some s when String.length s > 0 ->
          Some (image.L.global_addr g.I.gname, String.length s)
        | _ -> None)
      image.L.globals
  in
  if gs = [] then [ (Mem.mem_size - 8, 8) ] else gs

let mem_fault rng (eng : E.t) ~dyn_index : Fault.record =
  let ranges = data_extent eng.E.image in
  let total = List.fold_left (fun n (_, len) -> n + len) 0 ranges in
  let idx = P.int rng total in
  let rec locate idx = function
    | (base, len) :: rest -> if idx < len then base + idx else locate (idx - len) rest
    | [] -> assert false
  in
  let addr = locate idx ranges in
  let bit = P.int rng 8 in
  E.flip_mem_bit eng ~addr ~bit;
  { Fault.dyn_index; op_index = 0; reg_name = Printf.sprintf "mem[0x%x]" addr; bit }

(* --- instruction-image mutation (Instr_image) -------------------------- *)

(* One bit of a register-field encoding: the mutated index may name a
   different register or fall outside the register file (an illegal
   encoding). *)
let mutate_reg rng r : R.t option =
  let r' = r lxor (1 lsl P.int rng 6) in
  if r' >= 0 && r' < R.num_regs then Some r' else None

let mutate_opd rng = function
  | M.Imm v -> Some (M.Imm (B.flip_bit v (P.int rng 64)))
  | M.Reg r -> Option.map (fun r' -> M.Reg r') (mutate_reg rng r)

(* offsets and branch targets: flip one bit of the low 16 — wild but
   type-correct values; an out-of-range branch target traps [Bad_pc] when
   (if) the mutated instruction executes, exactly like a real code-byte
   upset *)
let mutate_int rng v = v lxor (1 lsl P.int rng 16)

(* The mutated decoding of instruction [i] under a code-image bit upset:
   [None] = the corrupted encoding no longer decodes (fetch traps
   [Illegal_instr]).  One draw selects the struck field class — opcode
   (1 in 4, matching roughly one byte of a several-byte encoding) or a
   uniformly chosen operand field. *)
let mutate rng (i : M.t) : M.t option =
  if P.int rng 4 = 0 then begin
    (* opcode field: another valid same-shape encoding, or an illegal one *)
    let alts = alternatives i in
    let n = List.length alts in
    let j = P.int rng (n + 1) in
    if j = n then None else Some (List.nth alts j)
  end
  else begin
    let reg r k = Option.map k (mutate_reg rng r) in
    let opd o k = Option.map k (mutate_opd rng o) in
    match i with
    | M.Mmov (d, s) ->
      if P.int rng 2 = 0 then reg d (fun d -> M.Mmov (d, s)) else opd s (fun s -> M.Mmov (d, s))
    | M.Mload (d, b, off) -> (
      match P.int rng 3 with
      | 0 -> reg d (fun d -> M.Mload (d, b, off))
      | 1 -> reg b (fun b -> M.Mload (d, b, off))
      | _ -> Some (M.Mload (d, b, mutate_int rng off)))
    | M.Mstore (s, b, off) -> (
      match P.int rng 3 with
      | 0 -> reg s (fun s -> M.Mstore (s, b, off))
      | 1 -> reg b (fun b -> M.Mstore (s, b, off))
      | _ -> Some (M.Mstore (s, b, mutate_int rng off)))
    | M.Mloadidx (d, b, ix, off) -> (
      match P.int rng 4 with
      | 0 -> reg d (fun d -> M.Mloadidx (d, b, ix, off))
      | 1 -> reg b (fun b -> M.Mloadidx (d, b, ix, off))
      | 2 -> reg ix (fun ix -> M.Mloadidx (d, b, ix, off))
      | _ -> Some (M.Mloadidx (d, b, ix, mutate_int rng off)))
    | M.Mstoreidx (s, b, ix, off) -> (
      match P.int rng 4 with
      | 0 -> reg s (fun s -> M.Mstoreidx (s, b, ix, off))
      | 1 -> reg b (fun b -> M.Mstoreidx (s, b, ix, off))
      | 2 -> reg ix (fun ix -> M.Mstoreidx (s, b, ix, off))
      | _ -> Some (M.Mstoreidx (s, b, ix, mutate_int rng off)))
    | M.Mlea (d, b, ix, off) -> (
      match P.int rng 3 with
      | 0 -> reg d (fun d -> M.Mlea (d, b, ix, off))
      | 1 -> reg b (fun b -> M.Mlea (d, b, ix, off))
      | _ -> Some (M.Mlea (d, b, ix, mutate_int rng off)))
    | M.Mbin (op, d, a, b) -> (
      match P.int rng 3 with
      | 0 -> reg d (fun d -> M.Mbin (op, d, a, b))
      | 1 -> reg a (fun a -> M.Mbin (op, d, a, b))
      | _ -> opd b (fun b -> M.Mbin (op, d, a, b)))
    | M.Mfbin (op, d, a, b) -> (
      match P.int rng 3 with
      | 0 -> reg d (fun d -> M.Mfbin (op, d, a, b))
      | 1 -> reg a (fun a -> M.Mfbin (op, d, a, b))
      | _ -> reg b (fun b -> M.Mfbin (op, d, a, b)))
    | M.Mfun (op, d, a) ->
      if P.int rng 2 = 0 then reg d (fun d -> M.Mfun (op, d, a))
      else reg a (fun a -> M.Mfun (op, d, a))
    | M.Mcvt (op, d, a) ->
      if P.int rng 2 = 0 then reg d (fun d -> M.Mcvt (op, d, a))
      else reg a (fun a -> M.Mcvt (op, d, a))
    | M.Mcmp (a, b) ->
      if P.int rng 2 = 0 then reg a (fun a -> M.Mcmp (a, b)) else opd b (fun b -> M.Mcmp (a, b))
    | M.Mfcmp (a, b) ->
      if P.int rng 2 = 0 then reg a (fun a -> M.Mfcmp (a, b))
      else reg b (fun b -> M.Mfcmp (a, b))
    | M.Msetcc (cc, d) -> reg d (fun d -> M.Msetcc (cc, d))
    | M.Mjcc (cc, target) -> Some (M.Mjcc (cc, mutate_int rng target))
    | M.Mjmp target -> Some (M.Mjmp (mutate_int rng target))
    | M.Mpush r -> reg r (fun r -> M.Mpush r)
    | M.Mpop r -> reg r (fun r -> M.Mpop r)
    | M.Mcalli target -> Some (M.Mcalli (mutate_int rng target))
    | M.Mxorbit (d, s) ->
      if P.int rng 2 = 0 then reg d (fun d -> M.Mxorbit (d, s))
      else reg s (fun s -> M.Mxorbit (d, s))
    | M.Mxorbitmem (b, off, s) -> (
      match P.int rng 3 with
      | 0 -> reg b (fun b -> M.Mxorbitmem (b, off, s))
      | 1 -> reg s (fun s -> M.Mxorbitmem (b, off, s))
      | _ -> Some (M.Mxorbitmem (b, mutate_int rng off, s)))
    (* operand-less or name-carrying encodings: a bit upset lands in the
       opcode/name bytes and stops decoding *)
    | M.Mpushf | M.Mpopf | M.Mcall _ | M.Mcallext _ | M.Mret | M.Mhalt -> None
  end

let image_fault rng (eng : E.t) ~pc ~dyn_index : Fault.record =
  let i = eng.E.image.L.code.(pc) in
  let i' = mutate rng i in
  E.set_overlay eng ~pc i';
  {
    Fault.dyn_index;
    op_index = 0;
    reg_name = Printf.sprintf "code[%d]" pc;
    bit = (match i' with None -> -1 | Some _ -> 0);
  }

(* The pc of the application instruction a control-library call was
   instrumented after: the call site is [eng.pc - 1] (the executor already
   advanced past the Mcallext), and the REFINE splice precedes it with the
   PreFI saves — walk back over Mpush/Mpushf to the original instruction.
   For LLFI's IR-level calls this lands on the nearest preceding machine
   instruction of the call sequence, the closest machine-level anchor an
   IR-level tool has. *)
let instrumented_pc (eng : E.t) : int =
  let code = eng.E.image.L.code in
  let p = ref (eng.E.pc - 2) in
  while !p > 0 && (match code.(!p) with M.Mpush _ | M.Mpushf -> true | _ -> false) do
    decr p
  done;
  max 0 !p
