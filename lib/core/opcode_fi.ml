(* Opcode-corruption fault injection — the extension sketched in the
   paper's §4.5 Discussion.

   REFINE's compile-time instrumentation can only produce *valid* opcodes
   (the assembler rejects invalid encodings), and the paper proposes
   addressing opcode faults "by extending the runtime injection library to
   corrupt the memory addresses of OP codes".  This module implements that
   extension on the simulator: at a uniformly chosen dynamic instance, the
   static instruction's opcode is replaced by a *different valid opcode of
   the same operand shape* — modelling a corrupted code byte that persists
   for the rest of the run (code memory is not rewritten).

   The mutation happens on a private copy of the code image, so prepared
   binaries stay shareable across experiments. *)

module M = Refine_mir.Minstr
module E = Refine_machine.Exec
module L = Refine_backend.Layout
module P = Refine_support.Prng

(* Valid same-shape opcode replacements — shared with the Instr_image
   fault model's opcode-field mutation, so the two corruption mechanisms
   cannot drift.  Instructions with no compatible alternative (moves,
   control transfers, ...) are not corruption targets, exactly as
   REFINE's valid-opcode restriction demands. *)
let alternatives = Corrupt.alternatives

let is_target i = alternatives i <> []

type ctrl = {
  mutable count : int;
  mode : Runtime.mode;
  mutable fired : bool;
  mutable corrupted_pc : int option;
}

let create mode = { count = 0; mode; fired = false; corrupted_pc = None }

(* a fresh engine over a private copy of the code, with the corruption hook *)
let attach (ctrl : ctrl) (image : L.image) : E.t =
  let image = { image with L.code = Array.copy image.L.code } in
  let eng = E.create image in
  let hook (eng : E.t) (pc : int) (i : M.t) =
    if is_target i then begin
      ctrl.count <- ctrl.count + 1;
      match ctrl.mode with
      | Runtime.Profile -> ()
      | Runtime.Inject { target; rng; model = _ } ->
        if (not ctrl.fired) && ctrl.count = target then begin
          ctrl.fired <- true;
          let alts = alternatives i in
          let replacement = List.nth alts (P.int rng (List.length alts)) in
          eng.E.image.L.code.(pc) <- replacement;
          ctrl.corrupted_pc <- Some pc;
          eng.E.post_hook <- None;
          eng.E.hook_cost <- 0
        end
    end
  in
  eng.E.post_hook <- Some hook;
  eng.E.hook_cost <- Fi_cost.pin_attach_per_instr;
  eng

(* profiling + one experiment, mirroring Tool.run_injection *)
let profile (image : L.image) : Fault.profile =
  let ctrl = create Runtime.Profile in
  let eng = attach ctrl image in
  let r = E.run ~max_steps:2_000_000_000L eng in
  (match r.E.status with
  | E.Exited 0 -> ()
  | _ -> failwith "Opcode_fi.profile: fault-free run failed");
  {
    Fault.golden_output = r.E.output;
    golden_exit = 0;
    dyn_count = Int64.of_int ctrl.count;
    profile_cost = r.E.cost;
  }

let run_injection (image : L.image) (p : Fault.profile) (rng : P.t) : Fault.experiment =
  if p.Fault.dyn_count = 0L then { Fault.outcome = Fault.Benign; run_cost = 0L; fault = None }
  else begin
    let target = Int64.to_int (Int64.add 1L (P.int64 rng p.Fault.dyn_count)) in
    let ctrl = create (Runtime.Inject { target; rng; model = Fault.Reg_bit }) in
    let eng = attach ctrl image in
    let max_cost = Int64.mul Fi_cost.timeout_factor p.Fault.profile_cost in
    let r = E.run ~max_cost eng in
    let fault =
      match ctrl.corrupted_pc with
      | Some pc ->
        Some { Fault.dyn_index = Int64.of_int ctrl.count; op_index = 0; reg_name = Printf.sprintf "pc=%d" pc; bit = -1 }
      | None -> None
    in
    { Fault.outcome = Fault.classify p r; run_cost = r.E.cost; fault }
  end
