(* Fault-injection control runtime — the user-provided library of the
   paper's Figure 2/3.  The instrumented binary calls into it at run time:

   REFINE:  [fi_sel_instr] after every instrumented machine instruction
            (dynamic counting; returns 1 exactly at the target instance)
            and [fi_setup_fi] on the injection path (receives the operand
            count and their bit widths, returns <operand, bit>).
   LLFI:    [llfi_inject_i64]/[llfi_inject_f64] after every instrumented IR
            instruction (value in, possibly-flipped value out).

   In [Profile] mode the library only counts and never triggers — the same
   binary serves both phases, as in the paper ("the FI binary produced by
   compile-time instrumentation is used unmodified during profiling"). *)

module E = Refine_machine.Exec
module R = Refine_mir.Reg
module P = Refine_support.Prng

(* [count]/[target] are native ints: the trigger test below runs once per
   instrumented dynamic instruction, so it must be a word compare, not a
   boxed [Int64] allocation plus structural equality. *)
type mode =
  | Profile
  | Inject of { target : int; rng : P.t }

type ctrl = {
  mutable count : int;
  mode : mode;
  mutable fired : bool;
  mutable record : Fault.record option;
}

let create mode = { count = 0; mode; fired = false; record = None }

let should_fire ctrl =
  match ctrl.mode with
  | Profile -> false
  | Inject { target; _ } -> (not ctrl.fired) && ctrl.count = target

(* --- REFINE control library ------------------------------------------- *)

(* selInstr(): count the dynamic instrumented instruction; result 1 in r0
   iff this is the instance to inject into. *)
let refine_sel_instr ctrl (eng : E.t) =
  ctrl.count <- ctrl.count + 1;
  eng.E.regs.(R.ret_gpr) <- (if should_fire ctrl then 1L else 0L)

(* setupFI(nOps in r1, sizes packed per byte in r2): choose the operand and
   bit uniformly; result (op << 6) | bit in r0. *)
let refine_setup_fi ctrl (eng : E.t) =
  match ctrl.mode with
  | Profile -> eng.E.regs.(R.ret_gpr) <- 0L
  | Inject { rng; _ } ->
    ctrl.fired <- true;
    let nops = Int64.to_int eng.E.regs.(R.gpr 1) in
    let sizes = eng.E.regs.(R.gpr 2) in
    let op = P.int rng (max 1 nops) in
    let size =
      Int64.to_int (Int64.logand (Int64.shift_right_logical sizes (8 * op)) 0xFFL)
    in
    let bit = P.int rng (max 1 size) in
    ctrl.record <-
      Some { Fault.dyn_index = Int64.of_int ctrl.count; op_index = op; reg_name = "<refine>"; bit };
    eng.E.regs.(R.ret_gpr) <- Int64.of_int ((op lsl 6) lor bit)

let refine_handlers ctrl : (string * int * (E.t -> unit)) list =
  [
    ("fi_sel_instr", Fi_cost.refine_lib_call, refine_sel_instr ctrl);
    ("fi_setup_fi", Fi_cost.refine_lib_call, refine_setup_fi ctrl);
  ]

(* --- LLFI control library ---------------------------------------------- *)

(* injectFault(id in r1, value in r2/f1): count, flip a uniform bit of the
   64-bit value at the target instance, return it in r0/f0. *)
let llfi_inject_int ctrl (eng : E.t) =
  ctrl.count <- ctrl.count + 1;
  let v = eng.E.regs.(R.gpr 2) in
  let v' =
    if should_fire ctrl then begin
      match ctrl.mode with
      | Inject { rng; _ } ->
        ctrl.fired <- true;
        let bit = P.int rng 64 in
        ctrl.record <-
          Some { Fault.dyn_index = Int64.of_int ctrl.count; op_index = 0; reg_name = "<ir-value>"; bit };
        Refine_support.Bitops.flip_bit v bit
      | Profile -> v
    end
    else v
  in
  eng.E.regs.(R.ret_gpr) <- v'

let llfi_inject_float ctrl (eng : E.t) =
  ctrl.count <- ctrl.count + 1;
  let v = eng.E.regs.(R.fpr 1) in
  let v' =
    if should_fire ctrl then begin
      match ctrl.mode with
      | Inject { rng; _ } ->
        ctrl.fired <- true;
        let bit = P.int rng 64 in
        ctrl.record <-
          Some { Fault.dyn_index = Int64.of_int ctrl.count; op_index = 0; reg_name = "<ir-value>"; bit };
        Refine_support.Bitops.flip_bit v bit
      | Profile -> v
    end
    else v
  in
  eng.E.regs.(R.ret_fpr) <- v'

(* i1 values (comparison results) have a single architecturally meaningful
   bit: any fault in them inverts the decision *)
let llfi_inject_bool ctrl (eng : E.t) =
  ctrl.count <- ctrl.count + 1;
  let v = eng.E.regs.(R.gpr 2) in
  let v' =
    if should_fire ctrl then begin
      match ctrl.mode with
      | Inject _ ->
        ctrl.fired <- true;
        ctrl.record <-
          Some { Fault.dyn_index = Int64.of_int ctrl.count; op_index = 0; reg_name = "<ir-bool>"; bit = 0 };
        Refine_support.Bitops.flip_bit v 0
      | Profile -> v
    end
    else v
  in
  eng.E.regs.(R.ret_gpr) <- v'

let llfi_handlers ctrl : (string * int * (E.t -> unit)) list =
  [
    ("llfi_inject_i64", Fi_cost.llfi_lib_call, llfi_inject_int ctrl);
    ("llfi_inject_f64", Fi_cost.llfi_lib_call, llfi_inject_float ctrl);
    ("llfi_inject_i1", Fi_cost.llfi_lib_call, llfi_inject_bool ctrl);
  ]
