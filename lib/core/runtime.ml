(* Fault-injection control runtime — the user-provided library of the
   paper's Figure 2/3.  The instrumented binary calls into it at run time:

   REFINE:  [fi_sel_instr] after every instrumented machine instruction
            (dynamic counting; returns 1 exactly at the target instance)
            and [fi_setup_fi] on the injection path (receives the operand
            count and their bit widths, returns <operand, bit>).
   LLFI:    [llfi_inject_i64]/[llfi_inject_f64] after every instrumented IR
            instruction (value in, possibly-flipped value out).

   In [Profile] mode the library only counts and never triggers — the same
   binary serves both phases, as in the paper ("the FI binary produced by
   compile-time instrumentation is used unmodified during profiling"). *)

module E = Refine_machine.Exec
module R = Refine_mir.Reg
module P = Refine_support.Prng

(* [count]/[target] are native ints: the trigger test below runs once per
   instrumented dynamic instruction, so it must be a word compare, not a
   boxed [Int64] allocation plus structural equality. *)
type mode =
  | Profile
  | Inject of { target : int; rng : P.t; model : Fault.model }

type ctrl = {
  mutable count : int;
  mode : mode;
  mutable fired : bool;
  mutable record : Fault.record option;
}

let create mode = { count = 0; mode; fired = false; record = None }

let should_fire ctrl =
  match ctrl.mode with
  | Profile -> false
  | Inject { target; _ } -> (not ctrl.fired) && ctrl.count = target

(* --- REFINE control library ------------------------------------------- *)

(* selInstr(): count the dynamic instrumented instruction; result 1 in r0
   iff this is the instance to inject into.

   Register faults (Reg_bit/Multi_bit) answer 1 and let the spliced
   SetupFI/FI_k blocks do the flip.  Mem_cell and Instr_image faults have
   no register target for the splice to flip: the library performs the
   mutation right here at the trigger instance and answers 0, so the
   splice's register path stays cold — the trigger timing is identical,
   only the struck state differs (DESIGN.md §18). *)
(* Fast-path bookkeeping (DESIGN.md §20): the decoded engine's fi-splice
   superinstruction may retire provably non-firing selector calls without
   entering this library, banking their dynamic counts in
   [eng.fi_sel_pending].  Fold those back before using [ctrl.count]. *)
let[@inline] fold_pending ctrl (eng : E.t) =
  if eng.E.fi_sel_pending <> 0 then begin
    ctrl.count <- ctrl.count + eng.E.fi_sel_pending;
    eng.E.fi_sel_pending <- 0
  end

(* Called by Tool after a run completes, before it reads [ctrl.count]:
   selector calls retired in-engine after the last real library call are
   still pending and must count toward the dynamic-instruction total. *)
let absorb ctrl (eng : E.t) = fold_pending ctrl eng

(* After a real selector call, publish how many upcoming calls are
   provably non-firing so the engine may retire them without us.  Profile
   mode never fires; Inject can skip exactly up to (but not including)
   the target instance — and once fired or past the target, never again
   (count is monotonic). *)
let[@inline] publish_skip ctrl (eng : E.t) =
  eng.E.fi_sel_skip <-
    (match ctrl.mode with
    | Profile -> max_int
    | Inject { target; _ } ->
      let d = target - ctrl.count - 1 in
      if d >= 0 && not ctrl.fired then d else max_int)

let refine_sel_instr ctrl (eng : E.t) =
  fold_pending ctrl eng;
  ctrl.count <- ctrl.count + 1;
  publish_skip ctrl eng;
  if should_fire ctrl then begin
    match ctrl.mode with
    | Profile -> eng.E.regs.(R.ret_gpr) <- 0L
    | Inject { rng; model; _ } -> (
      match model with
      | Fault.Reg_bit | Fault.Multi_bit _ -> eng.E.regs.(R.ret_gpr) <- 1L
      | Fault.Mem_cell ->
        ctrl.fired <- true;
        eng.E.detach_req <- true;
        ctrl.record <- Some (Corrupt.mem_fault rng eng ~dyn_index:(Int64.of_int ctrl.count));
        eng.E.regs.(R.ret_gpr) <- 0L
      | Fault.Instr_image ->
        ctrl.fired <- true;
        eng.E.detach_req <- true;
        let pc = Corrupt.instrumented_pc eng in
        ctrl.record <-
          Some (Corrupt.image_fault rng eng ~pc ~dyn_index:(Int64.of_int ctrl.count));
        eng.E.regs.(R.ret_gpr) <- 0L)
  end
  else eng.E.regs.(R.ret_gpr) <- 0L

(* setupFI(nOps in r1, sizes packed per byte in r2): choose the operand and
   bit uniformly; result (op << 6) | bit in r0. *)
let refine_setup_fi ctrl (eng : E.t) =
  fold_pending ctrl eng;
  (match ctrl.mode with
  | Profile -> eng.E.regs.(R.ret_gpr) <- 0L
  | Inject { rng; model; _ } ->
    ctrl.fired <- true;
    eng.E.detach_req <- true;
    let nops = Int64.to_int eng.E.regs.(R.gpr 1) in
    let sizes = eng.E.regs.(R.gpr 2) in
    let op = P.int rng (max 1 nops) in
    let size =
      Int64.to_int (Int64.logand (Int64.shift_right_logical sizes (8 * op)) 0xFFL)
    in
    let bit, mask = Corrupt.draw_mask rng ~width:(max 1 size) model in
    (* Multi_bit: arm the engine's pending FI mask so the splice's single
       Mxorbit/Mxorbitmem applies all k bits at once (Exec consumes and
       clears it); Reg_bit keeps the splice's own single-bit path *)
    (match model with Fault.Multi_bit _ -> eng.E.fi_mask <- mask | _ -> ());
    ctrl.record <-
      Some { Fault.dyn_index = Int64.of_int ctrl.count; op_index = op; reg_name = "<refine>"; bit };
    eng.E.regs.(R.ret_gpr) <- Int64.of_int ((op lsl 6) lor bit));
  (* fired (or Profile): every later selector call is non-firing *)
  publish_skip ctrl eng

let refine_handlers ctrl : (string * int * (E.t -> unit)) list =
  [
    ("fi_sel_instr", Fi_cost.refine_lib_call, refine_sel_instr ctrl);
    ("fi_setup_fi", Fi_cost.refine_lib_call, refine_setup_fi ctrl);
  ]

(* --- LLFI control library ---------------------------------------------- *)

(* One LLFI fault at the trigger instance: register-value faults flip the
   instrumented IR value (the classic injectFault semantics); Mem_cell and
   Instr_image faults strike memory/code instead and return the value
   unchanged — the IR-level hook is only the trigger clock for them. *)
let llfi_fire ctrl rng model (eng : E.t) (v : int64) : int64 =
  ctrl.fired <- true;
  eng.E.detach_req <- true;
  let dyn_index = Int64.of_int ctrl.count in
  match model with
  | Fault.Reg_bit | Fault.Multi_bit _ ->
    let bit, mask = Corrupt.draw_mask rng ~width:64 model in
    ctrl.record <- Some { Fault.dyn_index; op_index = 0; reg_name = "<ir-value>"; bit };
    Int64.logxor v mask
  | Fault.Mem_cell ->
    ctrl.record <- Some (Corrupt.mem_fault rng eng ~dyn_index);
    v
  | Fault.Instr_image ->
    let pc = Corrupt.instrumented_pc eng in
    ctrl.record <- Some (Corrupt.image_fault rng eng ~pc ~dyn_index);
    v

(* injectFault(id in r1, value in r2/f1): count, fault at the target
   instance, return the (possibly flipped) value in r0/f0. *)
let llfi_inject_int ctrl (eng : E.t) =
  ctrl.count <- ctrl.count + 1;
  let v = eng.E.regs.(R.gpr 2) in
  let v' =
    if should_fire ctrl then begin
      match ctrl.mode with
      | Inject { rng; model; _ } -> llfi_fire ctrl rng model eng v
      | Profile -> v
    end
    else v
  in
  eng.E.regs.(R.ret_gpr) <- v'

let llfi_inject_float ctrl (eng : E.t) =
  ctrl.count <- ctrl.count + 1;
  let v = eng.E.regs.(R.fpr 1) in
  let v' =
    if should_fire ctrl then begin
      match ctrl.mode with
      | Inject { rng; model; _ } -> llfi_fire ctrl rng model eng v
      | Profile -> v
    end
    else v
  in
  eng.E.regs.(R.ret_fpr) <- v'

(* i1 values (comparison results) have a single architecturally meaningful
   bit: any fault in them inverts the decision *)
let llfi_inject_bool ctrl (eng : E.t) =
  ctrl.count <- ctrl.count + 1;
  let v = eng.E.regs.(R.gpr 2) in
  let v' =
    if should_fire ctrl then begin
      match ctrl.mode with
      | Inject { rng; model; _ } -> (
        ctrl.fired <- true;
        eng.E.detach_req <- true;
        let dyn_index = Int64.of_int ctrl.count in
        match model with
        | Fault.Reg_bit | Fault.Multi_bit _ ->
          (* i1 values have one meaningful bit: any register fault —
             single or multi — inverts the decision, drawing nothing *)
          ctrl.record <- Some { Fault.dyn_index; op_index = 0; reg_name = "<ir-bool>"; bit = 0 };
          Refine_support.Bitops.flip_bit v 0
        | Fault.Mem_cell ->
          ctrl.record <- Some (Corrupt.mem_fault rng eng ~dyn_index);
          v
        | Fault.Instr_image ->
          let pc = Corrupt.instrumented_pc eng in
          ctrl.record <- Some (Corrupt.image_fault rng eng ~pc ~dyn_index);
          v)
      | Profile -> v
    end
    else v
  in
  eng.E.regs.(R.ret_gpr) <- v'

let llfi_handlers ctrl : (string * int * (E.t -> unit)) list =
  [
    ("llfi_inject_i64", Fi_cost.llfi_lib_call, llfi_inject_int ctrl);
    ("llfi_inject_f64", Fi_cost.llfi_lib_call, llfi_inject_float ctrl);
    ("llfi_inject_i1", Fi_cost.llfi_lib_call, llfi_inject_bool ctrl);
  ]
