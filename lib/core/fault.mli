(** Fault records, outcome classification and profiling data — the paper's
    §4.3 workflow vocabulary. *)

type record = {
  dyn_index : int64;  (** 1-based dynamic index of the faulted instruction *)
  op_index : int;  (** which output operand was flipped *)
  reg_name : string;  (** register name, or a placeholder for IR values *)
  bit : int;  (** flipped bit, 0 = least significant *)
}
(** One line of the fault log of Figure 3b: which dynamic instruction,
    operand and bit were hit — "for reference and repeatability". *)

(** What state the transient fault strikes at the chosen dynamic trigger
    instance (DESIGN.md §18).  [Reg_bit] is the paper's single-bit
    register-operand model and the default everywhere; the others extend
    the campaign matrix with the gpuFI-4/InjectV fault-target dimension. *)
type model =
  | Reg_bit  (** one bit of one output operand — the paper's §4.3 model *)
  | Mem_cell
      (** one bit of a data-memory cell chosen uniformly from the
          snapshot's initialized image (falling back to the top-of-stack
          sentinel cell for programs with no initialized data) *)
  | Instr_image
      (** one bit of the loaded code image at the target pc: the mutated
          slot may decode to a different (possibly wild) instruction or to
          an illegal encoding, which traps
          {!Refine_machine.Exec.Illegal_instr} and classifies as
          {!Crash} *)
  | Multi_bit of { bits : int; burst : bool }
      (** [bits] distinct uniform bits of the chosen operand, or a
          contiguous burst of [bits] bits at a uniform position *)

val string_of_model : model -> string
(** Stable short form used by the CLI, CSV, journal, wire protocol and
    metric labels: ["reg"], ["mem"], ["instr"], ["multi:<k>"],
    ["burst:<k>"]. *)

val model_of_string : string -> model
(** Inverse of {!string_of_model}; [Invalid_argument] on unknown forms or
    a bit count outside [1, 64]. *)

val model_bits : model -> int
(** Bits flipped per fault: [bits] for {!Multi_bit}, otherwise 1. *)

type outcome =
  | Crash  (** trap, nonzero exit code, or 10x-profiling timeout *)
  | Soc  (** silent output corruption: output differs from the golden run *)
  | Benign  (** no observable effect *)
  | Tool_error
      (** harness-side failure (worker exception after retry exhaustion,
          watchdog kill): the sample is tallied and reported but excluded
          from the paper's crash/SOC/benign contingency rows — graceful
          degradation of the achieved sample size, never of the campaign.
          {!classify} never returns this. *)

val string_of_outcome : outcome -> string

(** [outcome_of_string] is the inverse of {!string_of_outcome};
    [Invalid_argument] on unknown names.  Used by the campaign journal and
    CSV loaders. *)
val outcome_of_string : string -> outcome
val string_of_record : record -> string

type profile = {
  golden_output : string;  (** output of the fault-free profiling run *)
  golden_exit : int;
  dyn_count : int64;  (** size of the tool's dynamic injection population *)
  profile_cost : int64;  (** modeled time of the profiling run *)
}
(** Result of the profiling phase (Figure 3a). *)

type experiment = {
  outcome : outcome;
  run_cost : int64;  (** modeled time of this injection run *)
  fault : record option;  (** [None] if the target instance never executed *)
}

val classify : profile -> Refine_machine.Exec.result -> outcome
(** Outcome classification of §4.3.2 against the golden profile.  Sandbox
    quota traps ({!Refine_machine.Exec.trap}) and truncated output both
    classify as {!Crash}, deterministically — a cut output prefix is never
    matched against the golden run. *)
