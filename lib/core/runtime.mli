(** Fault-injection control runtime — the "user-provided library" of the
    paper's Figures 2 and 3 that the instrumented binary calls at run
    time.

    In [Profile] mode the library only counts dynamic targets and never
    triggers; in [Inject] mode it fires exactly once at the chosen dynamic
    instance.  The same binary serves both phases. *)

type mode =
  | Profile
  | Inject of { target : int; rng : Refine_support.Prng.t; model : Fault.model }
      (** [target] is the 1-based dynamic instance to fire at.  A native
          [int] so the per-call trigger test in the control library is a
          word compare — dynamic populations are bounded far below 2^62.
          [model] selects what state the fault strikes at that instance
          ({!Fault.model}); register models flip through the tool's own
          mechanism, Mem_cell/Instr_image mutate memory/code via
          {!Corrupt} with the hook as the trigger clock. *)

type ctrl = {
  mutable count : int;  (** dynamic instrumented-instruction counter *)
  mode : mode;
  mutable fired : bool;
  mutable record : Fault.record option;
}

val create : mode -> ctrl

val absorb : ctrl -> Refine_machine.Exec.t -> unit
(** Fold selector calls the decoded engine's fi-splice fast path retired
    without entering the library ([Exec.fi_sel_pending]) back into
    [ctrl.count].  Must run after the engine run completes and before
    [ctrl.count] is read (DESIGN.md §20); a no-op for engines that never
    took the fast path. *)

val refine_handlers : ctrl -> (string * int * (Refine_machine.Exec.t -> unit)) list
(** The REFINE control library: [fi_sel_instr] (the paper's selInstr) and
    [fi_setup_fi] (setupFI), as engine extern handlers with their modeled
    call cost. *)

val llfi_handlers : ctrl -> (string * int * (Refine_machine.Exec.t -> unit)) list
(** The LLFI-style injectFault callbacks: [llfi_inject_i64],
    [llfi_inject_f64] and [llfi_inject_i1] (comparison results flip within
    their 1-bit width, as LLVM i1 values do). *)
