(** Opcode-corruption fault injection — the extension sketched in the
    paper's §4.5: faults in instruction OP codes, restricted to *valid*
    opcodes (the assembler rejects invalid encodings).

    At a uniformly chosen dynamic instance, the static instruction is
    replaced by a different valid opcode of the same operand shape,
    modelling a corrupted code byte that persists for the rest of the run.
    Each experiment runs on a private copy of the code image. *)

val alternatives : Refine_mir.Minstr.t -> Refine_mir.Minstr.t list
(** Valid same-shape replacements (ALU opcode swaps, condition-code swaps,
    load/lea confusion).  Empty for instructions with no compatible
    alternative. *)

val is_target : Refine_mir.Minstr.t -> bool

type ctrl = {
  mutable count : int;
  mode : Runtime.mode;
  mutable fired : bool;
  mutable corrupted_pc : int option;
}

val create : Runtime.mode -> ctrl

val attach : ctrl -> Refine_backend.Layout.image -> Refine_machine.Exec.t
(** Fresh engine over a private code copy with the corruption hook
    installed. *)

val profile : Refine_backend.Layout.image -> Fault.profile
(** Fault-free counting run (the corruption population differs from the
    bit-flip population: only instructions with valid alternatives). *)

val run_injection :
  Refine_backend.Layout.image -> Fault.profile -> Refine_support.Prng.t -> Fault.experiment
