(* Machine-code well-formedness checks, run after register allocation and
   frame lowering (and after FI instrumentation in tests).  Catches backend
   bugs the IR verifier cannot see: leftover virtual registers, unresolved
   labels, scratch-register conflicts and unterminated final blocks. *)

open Minstr

exception Invalid of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

(* [allow_virtual] checks pre-RA code (after instruction selection). *)
let check_func ?(allow_virtual = false) (mf : Mfunc.t) =
  let labels = Hashtbl.create 16 in
  List.iter
    (fun (b : Mfunc.mblock) ->
      if Hashtbl.mem labels b.Mfunc.mlbl then
        fail "%s: duplicate machine label L%d" mf.Mfunc.mname b.Mfunc.mlbl;
      Hashtbl.add labels b.Mfunc.mlbl ())
    mf.Mfunc.blocks;
  let check_reg what r =
    if Reg.is_physical r then ()
    else if Reg.is_virtual r then begin
      if not allow_virtual then fail "%s: virtual register %s survived allocation in %s"
          mf.Mfunc.mname (Reg.name r) what;
      match Hashtbl.find_opt mf.Mfunc.vreg_class r with
      | Some _ -> ()
      | None -> fail "%s: vreg %s has no class" mf.Mfunc.mname (Reg.name r)
    end
    else fail "%s: invalid register id %d in %s" mf.Mfunc.mname r what
  in
  let check_label what l =
    if not (Hashtbl.mem labels l) then
      fail "%s: %s targets missing label L%d" mf.Mfunc.mname what l
  in
  List.iter
    (fun (b : Mfunc.mblock) ->
      List.iter
        (fun i ->
          let what = Mprinter.to_string i in
          List.iter (check_reg what) (inputs i);
          List.iter (check_reg what) (outputs i);
          match i with
          | Mjmp l | Mjcc (_, l) -> check_label what l
          | Mcalli _ -> fail "%s: resolved call before layout" mf.Mfunc.mname
          | _ -> ())
        b.Mfunc.code)
    mf.Mfunc.blocks;
  (* the last block must not fall off the end of the function *)
  (match List.rev mf.Mfunc.blocks with
  | last :: _ -> (
    match List.rev last.Mfunc.code with
    | i :: _ ->
      if not (is_terminator i) then
        fail "%s: final block L%d falls off the function (%s)" mf.Mfunc.mname last.Mfunc.mlbl
          (Mprinter.to_string i)
    | [] -> fail "%s: final block L%d is empty" mf.Mfunc.mname last.Mfunc.mlbl)
  | [] -> fail "%s: no blocks" mf.Mfunc.mname);
  (* frame sanity *)
  if mf.Mfunc.frame_bytes < 0 then fail "%s: negative frame size" mf.Mfunc.mname;
  List.iter
    (fun r ->
      if not (Reg.is_callee_saved r) then
        fail "%s: %s recorded as used callee-saved" mf.Mfunc.mname (Reg.name r))
    mf.Mfunc.used_callee_saved

let check_funcs ?allow_virtual funcs = List.iter (check_func ?allow_virtual) funcs

(* --- post-instrumentation verification (DESIGN.md §13) ------------------

   The REFINE pass splices PreFI/SetupFI/FI_k/PostFI blocks into final
   machine code; the paper's accuracy claim rests on that splice changing
   nothing but the single flipped bit.  [check_instrumented] re-verifies
   an instrumented function structurally:

   - every [fi_sel_instr] call sits in a well-formed PreFI tail (register
     saves before it, compare + conditional skip + jump to SetupFI after
     it, ending the block);
   - SetupFI/FI_k/FIdone blocks write only the FI clique (r0, r1, r2,
     FLAGS, rsp) — except the single intended flip, whose shape is one of
     the three emitted patterns (register xor, saved-slot xor in the
     stack, rsp adjust + xor + readjust);
   - every FI_k block falls through to the same FIdone block, which
     restores r1/r2 and jumps to PostFI, whose prefix restores FLAGS (when
     saved) and r0;
   - all labels resolve (inherited from [check_func]) and the frame size
     is untouched by instrumentation ([expect_frame_bytes]).

   A violation raises [Invalid]; campaign callers convert it into a
   quarantined cell instead of trusting a binary whose machine program the
   splice may have corrupted. *)

let fi_clique = [ Reg.gpr 0; Reg.gpr 1; Reg.gpr 2; Reg.flags; Reg.rsp ]

let in_clique r = List.mem r fi_clique

let check_instrumented ?expect_frame_bytes (mf : Mfunc.t) =
  check_func mf;
  (match expect_frame_bytes with
  | Some n ->
    if mf.Mfunc.frame_bytes <> n then
      fail "%s: instrumentation changed the frame size (%d -> %d bytes)" mf.Mfunc.mname n
        mf.Mfunc.frame_bytes
  | None -> ());
  let block lbl =
    match List.find_opt (fun b -> b.Mfunc.mlbl = lbl) mf.Mfunc.blocks with
    | Some b -> b
    | None -> fail "%s: FI splice targets missing block L%d" mf.Mfunc.mname lbl
  in
  (* only clique registers may be written, except one optional flip *)
  let check_confined ~what ~allow_flip lbl code =
    let flips = ref 0 in
    List.iter
      (fun i ->
        match i with
        | Mxorbit (_, s) when allow_flip ->
          incr flips;
          if s <> Reg.ret_gpr then
            fail "%s: %s L%d flips with bit index in %s, not r0" mf.Mfunc.mname what lbl
              (Reg.name s)
        | Mxorbitmem (b, _, s) when allow_flip ->
          incr flips;
          if b <> Reg.rsp || s <> Reg.ret_gpr then
            fail "%s: %s L%d memory flip outside the saved area" mf.Mfunc.mname what lbl
        | _ ->
          List.iter
            (fun r ->
              if not (in_clique r) then
                fail "%s: %s L%d clobbers %s outside the FI clique (%s)" mf.Mfunc.mname what
                  lbl (Reg.name r) (Mprinter.to_string i))
            (outputs i))
      code;
    if allow_flip && !flips > 1 then
      fail "%s: %s L%d performs %d flips (at most one fault per block)" mf.Mfunc.mname what
        lbl !flips
  in
  (* FIdone: exactly restore r2, r1 and jump to PostFI; returns the PostFI
     label *)
  let check_fidone lbl =
    match (block lbl).Mfunc.code with
    | [ Mpop p2; Mpop p1; Mjmp post ] when p2 = Reg.gpr 2 && p1 = Reg.gpr 1 -> post
    | _ -> fail "%s: FIdone L%d is not [pop r2; pop r1; jmp PostFI]" mf.Mfunc.mname lbl
  in
  let check_post ~save_flags lbl =
    match (block lbl).Mfunc.code with
    | Mpopf :: Mpop p0 :: _ when save_flags && p0 = Reg.gpr 0 -> ()
    | Mpop p0 :: _ when (not save_flags) && p0 = Reg.gpr 0 -> ()
    | _ ->
      fail "%s: PostFI L%d does not restore %sr0 before continuing" mf.Mfunc.mname lbl
        (if save_flags then "FLAGS and " else "")
  in
  let check_fi_block lbl =
    let b = block lbl in
    (match List.rev b.Mfunc.code with
    | Mjmp fidone :: _ -> ignore (check_fidone fidone)
    | _ -> fail "%s: FI block L%d does not fall through to FIdone" mf.Mfunc.mname lbl);
    let body = List.filter (fun i -> not (is_terminator i)) b.Mfunc.code in
    (match body with
    | [ Mxorbit (_, _) ] | [ Mxorbitmem (_, _, _) ] -> ()
    | [ Mbin (Refine_ir.Ir.Add, a, b', Imm d); Mxorbit (x, _); Mbin (Refine_ir.Ir.Sub, c, e, Imm d') ]
      when a = Reg.rsp && b' = Reg.rsp && x = Reg.rsp && c = Reg.rsp && e = Reg.rsp && d = d' ->
      ()
    | _ -> fail "%s: FI block L%d is not a single-bit flip" mf.Mfunc.mname lbl);
    check_confined ~what:"FI block" ~allow_flip:true lbl b.Mfunc.code;
    match List.rev b.Mfunc.code with Mjmp fidone :: _ -> fidone | _ -> assert false
  in
  (* SetupFI: saves r1/r2, calls fi_setup_fi, decodes, dispatches only to
     FI blocks; returns (fi_labels, fidone label) *)
  let check_setup lbl =
    let b = block lbl in
    (match b.Mfunc.code with
    | Mpush p1 :: Mpush p2 :: _ when p1 = Reg.gpr 1 && p2 = Reg.gpr 2 -> ()
    | _ -> fail "%s: SetupFI L%d does not save r1/r2 first" mf.Mfunc.mname lbl);
    if not (List.exists (function Mcallext "fi_setup_fi" -> true | _ -> false) b.Mfunc.code)
    then fail "%s: SetupFI L%d never calls fi_setup_fi" mf.Mfunc.mname lbl;
    check_confined ~what:"SetupFI" ~allow_flip:false lbl b.Mfunc.code;
    let fi_lbls =
      List.filter_map (function Mjcc (CEq, l) -> Some l | _ -> None) b.Mfunc.code
    in
    let fidone =
      match List.rev b.Mfunc.code with
      | Mjmp l :: _ -> l
      | _ -> fail "%s: SetupFI L%d does not end in a dispatch default" mf.Mfunc.mname lbl
    in
    if fi_lbls = [] then
      fail "%s: SetupFI L%d dispatches to no FI block" mf.Mfunc.mname lbl;
    (fi_lbls, fidone)
  in
  let sites = ref 0 in
  List.iter
    (fun (b : Mfunc.mblock) ->
      if List.exists (function Mcallext "fi_sel_instr" -> true | _ -> false) b.Mfunc.code
      then begin
        incr sites;
        (* the PreFI tail must end the block: saves, the call, the
           fired-test and the two-way branch *)
        let tail = List.rev b.Mfunc.code in
        let setup, post, rest =
          match tail with
          | Mjmp setup :: Mjcc (CEq, post) :: Mcmp (r, Imm 0L) :: rest when r = Reg.ret_gpr ->
            (setup, post, rest)
          | _ ->
            fail "%s: PreFI in L%d does not end with [cmp r0,0; jcc eq PostFI; jmp SetupFI]"
              mf.Mfunc.mname b.Mfunc.mlbl
        in
        let save_flags =
          match rest with
          | Mcallext "fi_sel_instr" :: Mpushf :: Mpush p0 :: _ when p0 = Reg.gpr 0 -> true
          | Mcallext "fi_sel_instr" :: Mpush p0 :: _ when p0 = Reg.gpr 0 -> false
          | _ ->
            fail "%s: PreFI in L%d does not save r0%s before fi_sel_instr" mf.Mfunc.mname
              b.Mfunc.mlbl " (and FLAGS)"
        in
        let fi_lbls, fidone = check_setup setup in
        List.iter
          (fun l ->
            let fd = check_fi_block l in
            if fd <> fidone then
              fail "%s: FI block L%d falls through to L%d, not the splice's FIdone L%d"
                mf.Mfunc.mname l fd fidone)
          fi_lbls;
        let post' = check_fidone fidone in
        if post' <> post then
          fail "%s: FIdone L%d resumes at L%d but PreFI skips to L%d" mf.Mfunc.mname fidone
            post' post;
        check_post ~save_flags post
      end)
    mf.Mfunc.blocks;
  !sites
