(** SX64 machine instructions — the analogue of LLVM's MachineInstr layer
    that the REFINE pass instruments after register allocation and frame
    lowering.  Every instruction below, including prologue pushes, spill
    loads and flag-writing compares, is a fault-injection candidate;
    none of them exist at the IR level. *)

type label = int
type mopd = Reg of Reg.t | Imm of int64

(** Condition codes read from FLAGS; integer codes use ZF/LT, float codes
    additionally require the UNORD bit clear (except [CFne], true on
    NaN). *)
type cc = CEq | CNe | CLt | CLe | CGt | CGe | CFeq | CFne | CFlt | CFle | CFgt | CFge

type t =
  | Mmov of Reg.t * mopd  (** dst <- src (raw bits; class-agnostic) *)
  | Mload of Reg.t * Reg.t * int  (** dst <- [base + off] *)
  | Mstore of Reg.t * Reg.t * int  (** [base + off] <- src *)
  | Mloadidx of Reg.t * Reg.t * Reg.t * int  (** dst <- [base + 8*idx + off] *)
  | Mstoreidx of Reg.t * Reg.t * Reg.t * int
  | Mlea of Reg.t * Reg.t * Reg.t option * int  (** address materialization *)
  | Mbin of Refine_ir.Ir.ibinop * Reg.t * Reg.t * mopd  (** writes dst and FLAGS *)
  | Mfbin of Refine_ir.Ir.fbinop * Reg.t * Reg.t * Reg.t
  | Mfun of Refine_ir.Ir.funop * Reg.t * Reg.t
  | Mcvt of Refine_ir.Ir.cast * Reg.t * Reg.t
  | Mcmp of Reg.t * mopd  (** FLAGS <- integer compare *)
  | Mfcmp of Reg.t * Reg.t  (** FLAGS <- float compare; UNORD on NaN *)
  | Msetcc of cc * Reg.t
  | Mjcc of cc * label
  | Mjmp of label
  | Mpush of Reg.t
  | Mpop of Reg.t
  | Mpushf  (** push FLAGS *)
  | Mpopf
  | Mcall of string  (** direct call; resolved to [Mcalli] by layout *)
  | Mcalli of int
  | Mcallext of string  (** runtime library call (libc/libm/FI library) *)
  | Mret
  | Mxorbit of Reg.t * Reg.t  (** dst ^= 1 << (src & 63) — the FI flip *)
  | Mxorbitmem of Reg.t * int * Reg.t  (** [base+off] ^= 1 << (src & 63) *)
  | Mhalt  (** terminate; exit code in r0 *)

val inputs : t -> Reg.t list
(** Registers read (register operands only). *)

val outputs : t -> Reg.t list
(** Registers written — the fault-injection target operands of the paper's
    model (an ALU op writes its destination {e and} FLAGS). *)

val writes_register : t -> bool
(** Allocation-free [outputs i <> []], for the per-instruction DBI hook. *)

(** Instruction classes for the [-fi-instrs] flag (paper Table 2). *)
type iclass = Cstack | Carith | Cmem | Ccontrol | Cother

val classify : t -> iclass

val num_iclasses : int
val iclass_index : iclass -> int
(** Dense 0-based index, for the executor's per-class step profile. *)

val iclass_name : iclass -> string
(** Lower-case label used in metric labels ("stack", "arith", ...). *)

val iclasses : iclass array
(** Every class, positioned at its own {!iclass_index}. *)

val is_terminator : t -> bool
val map_regs : (Reg.t -> Reg.t) -> t -> t
