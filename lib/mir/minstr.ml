(* SX64 machine instructions.

   This is the analogue of LLVM's MachineInstr layer: target-shaped
   instructions over (virtual or physical) registers, organized in basic
   blocks.  The REFINE pass instruments this representation after register
   allocation and frame lowering, so every instruction below — including
   prologue pushes, spill loads and flag-writing compares — is a fault
   injection candidate, unlike at the IR level.

   Jump/call targets are block labels until [Backend.Layout] resolves them
   to absolute code indices (the [Mcalli] form). *)

type label = int
type mopd = Reg of Reg.t | Imm of int64

(* condition codes read from FLAGS: integer codes use ZF/LT; float codes
   additionally require the UNORD bit clear (except CFne, true on NaN) *)
type cc = CEq | CNe | CLt | CLe | CGt | CGe | CFeq | CFne | CFlt | CFle | CFgt | CFge

type t =
  | Mmov of Reg.t * mopd (* dst <- src (bits; class-agnostic) *)
  | Mload of Reg.t * Reg.t * int (* dst <- [base + off] *)
  | Mstore of Reg.t * Reg.t * int (* [base + off] <- src *)
  | Mloadidx of Reg.t * Reg.t * Reg.t * int (* dst <- [base + 8*idx + off] *)
  | Mstoreidx of Reg.t * Reg.t * Reg.t * int (* [base + 8*idx + off] <- src *)
  | Mlea of Reg.t * Reg.t * Reg.t option * int (* dst <- base + 8*idx + off *)
  | Mbin of Refine_ir.Ir.ibinop * Reg.t * Reg.t * mopd (* dst = a OP b; writes FLAGS *)
  | Mfbin of Refine_ir.Ir.fbinop * Reg.t * Reg.t * Reg.t
  | Mfun of Refine_ir.Ir.funop * Reg.t * Reg.t
  | Mcvt of Refine_ir.Ir.cast * Reg.t * Reg.t
  | Mcmp of Reg.t * mopd (* FLAGS <- compare ints *)
  | Mfcmp of Reg.t * Reg.t (* FLAGS <- compare floats (sets UNORD on NaN) *)
  | Msetcc of cc * Reg.t (* dst <- 0/1 *)
  | Mjcc of cc * label
  | Mjmp of label
  | Mpush of Reg.t
  | Mpop of Reg.t
  | Mpushf (* push FLAGS *)
  | Mpopf
  | Mcall of string (* direct call, resolved to Mcalli by layout *)
  | Mcalli of int (* call to absolute code index *)
  | Mcallext of string (* runtime library call (libc/libm/FI library) *)
  | Mret
  | Mxorbit of Reg.t * Reg.t (* dst ^= 1 << (src & 63) — the FI flip *)
  | Mxorbitmem of Reg.t * int * Reg.t (* [base+off] ^= 1 << (src & 63) *)
  | Mhalt (* terminate program; exit code in r0 *)

(* --- register effects ------------------------------------------------ *)

let opd_reg = function Reg r -> [ r ] | Imm _ -> []

(* Registers read by the instruction (register operands only). *)
let inputs = function
  | Mmov (_, s) -> opd_reg s
  | Mload (_, b, _) -> [ b ]
  | Mstore (s, b, _) -> [ s; b ]
  | Mloadidx (_, b, i, _) -> [ b; i ]
  | Mstoreidx (s, b, i, _) -> [ s; b; i ]
  | Mlea (_, b, i, _) -> ( match i with Some i -> [ b; i ] | None -> [ b ])
  | Mbin (_, _, a, b) -> a :: opd_reg b
  | Mfbin (_, _, a, b) -> [ a; b ]
  | Mfun (_, _, a) | Mcvt (_, _, a) -> [ a ]
  | Mcmp (a, b) -> a :: opd_reg b
  | Mfcmp (a, b) -> [ a; b ]
  | Msetcc _ -> [ Reg.flags ]
  | Mjcc _ -> [ Reg.flags ]
  | Mjmp _ -> []
  | Mpush r -> [ r; Reg.rsp ]
  | Mpop _ -> [ Reg.rsp ]
  | Mpushf -> [ Reg.flags; Reg.rsp ]
  | Mpopf -> [ Reg.rsp ]
  | Mcall _ | Mcalli _ -> [ Reg.rsp ]
  | Mcallext _ -> []
  | Mret -> [ Reg.rsp ]
  | Mxorbit (d, s) -> [ d; s ]
  | Mxorbitmem (b, _, s) -> [ b; s ]
  | Mhalt -> [ Reg.ret_gpr ]

(* Registers written by the instruction — the fault-injection targets of
   the paper's model (§3.1): "an instruction may have multiple output
   registers", e.g. an ALU op writes its destination and FLAGS. *)
let outputs = function
  | Mmov (d, _) | Mload (d, _, _) | Mloadidx (d, _, _, _) | Mlea (d, _, _, _) -> [ d ]
  | Mbin (_, d, _, _) -> [ d; Reg.flags ]
  | Mfbin (_, d, _, _) | Mfun (_, d, _) | Mcvt (_, d, _) -> [ d ]
  | Mcmp _ | Mfcmp _ -> [ Reg.flags ]
  | Msetcc (_, d) -> [ d ]
  | Mstore _ | Mstoreidx _ | Mjcc _ | Mjmp _ -> []
  | Mpush _ | Mpushf -> [ Reg.rsp ]
  | Mpop (d) -> [ d; Reg.rsp ]
  | Mpopf -> [ Reg.flags; Reg.rsp ]
  | Mcall _ | Mcalli _ -> [ Reg.rsp ]
  | Mcallext _ -> [] (* the engine writes the ABI result register directly *)
  | Mret -> [ Reg.rsp ]
  | Mxorbit (d, _) -> [ d ]
  | Mxorbitmem _ -> []
  | Mhalt -> []

(* Allocation-free test used in the per-instruction DBI hook: does the
   instruction write at least one register?  Must agree with [outputs]. *)
let writes_register = function
  | Mmov _ | Mload _ | Mloadidx _ | Mlea _ | Mbin _ | Mfbin _ | Mfun _ | Mcvt _ | Mcmp _
  | Mfcmp _ | Msetcc _ | Mpush _ | Mpushf | Mpop _ | Mpopf | Mcall _ | Mcalli _ | Mret
  | Mxorbit _ -> true
  | Mstore _ | Mstoreidx _ | Mjcc _ | Mjmp _ | Mcallext _ | Mxorbitmem _ | Mhalt -> false

(* Instruction classes for the -fi-instrs compiler flag (Table 2). *)
type iclass = Cstack | Carith | Cmem | Ccontrol | Cother

let classify = function
  | Mpush _ | Mpop _ | Mpushf | Mpopf -> Cstack
  | Mbin _ | Mfbin _ | Mfun _ | Mcvt _ | Mcmp _ | Mfcmp _ | Msetcc _ | Mxorbit _ | Mxorbitmem _
    -> Carith
  | Mload _ | Mstore _ | Mloadidx _ | Mstoreidx _ | Mlea _ | Mmov _ -> Cmem
  | Mjcc _ | Mjmp _ | Mcall _ | Mcalli _ | Mcallext _ | Mret | Mhalt -> Ccontrol

let num_iclasses = 5

let iclass_index = function Cstack -> 0 | Carith -> 1 | Cmem -> 2 | Ccontrol -> 3 | Cother -> 4

(* every class, at its own [iclass_index] *)
let iclasses = [| Cstack; Carith; Cmem; Ccontrol; Cother |]

let iclass_name = function
  | Cstack -> "stack"
  | Carith -> "arith"
  | Cmem -> "mem"
  | Ccontrol -> "control"
  | Cother -> "other"

let is_terminator = function
  | Mjmp _ | Mret | Mhalt -> true
  | _ -> false

(* Rewrite the register operands of an instruction. *)
let map_regs f i =
  let fo = function Reg r -> Reg (f r) | Imm v -> Imm v in
  match i with
  | Mmov (d, s) -> Mmov (f d, fo s)
  | Mload (d, b, o) -> Mload (f d, f b, o)
  | Mstore (s, b, o) -> Mstore (f s, f b, o)
  | Mloadidx (d, b, i, o) -> Mloadidx (f d, f b, f i, o)
  | Mstoreidx (s, b, i, o) -> Mstoreidx (f s, f b, f i, o)
  | Mlea (d, b, i, o) -> Mlea (f d, f b, Option.map f i, o)
  | Mbin (op, d, a, b) -> Mbin (op, f d, f a, fo b)
  | Mfbin (op, d, a, b) -> Mfbin (op, f d, f a, f b)
  | Mfun (op, d, a) -> Mfun (op, f d, f a)
  | Mcvt (op, d, a) -> Mcvt (op, f d, f a)
  | Mcmp (a, b) -> Mcmp (f a, fo b)
  | Mfcmp (a, b) -> Mfcmp (f a, f b)
  | Msetcc (c, d) -> Msetcc (c, f d)
  | Mxorbit (d, s) -> Mxorbit (f d, f s)
  | Mxorbitmem (b, o, s) -> Mxorbitmem (f b, o, f s)
  | (Mjcc _ | Mjmp _ | Mpush _ | Mpop _ | Mpushf | Mpopf | Mcall _ | Mcalli _ | Mcallext _
    | Mret | Mhalt) as other -> (
    match other with
    | Mpush r -> Mpush (f r)
    | Mpop r -> Mpop (f r)
    | o -> o)
