(** Supervised task execution for long-running fault-injection campaigns.

    {!Parallel} is the fail-fast primitive; this module is the resilient
    campaign runner: each task is isolated so one exception marks that task
    failed (with captured backtrace) instead of aborting the pool, retryable
    errors are re-attempted with exponential backoff, and a cooperative
    cancellation token lets a watchdog or a campaign interrupt stop the
    pool — including work in flight, for tasks that poll {!check}. *)

(** Cooperative cancellation token, shared between the pool, its watchdog
    and (optionally) the task bodies themselves. *)
module Cancel : sig
  type t

  val create : unit -> t

  val cancel : ?reason:string -> t -> unit
  (** Idempotent; the first cancellation's [reason] is kept. *)

  val cancelled : t -> bool
  val reason : t -> string option
end

exception Cancelled of string
(** Raised by {!check} (and by {!Parallel} runs) when the token fires. *)

exception Non_retryable of exn
(** Wrap a task exception to mark it deterministic: {!default_policy}
    refuses to retry it (a retry would only reproduce the failure — e.g. a
    quarantined cell or a structurally invalid instrumented binary).  The
    recorded {!failure.exn} is the unwrapped payload. *)

val check : Cancel.t -> unit
(** Poll point for task bodies: raises {!Cancelled} if the token is set.
    Suitable as an [Exec.run ~poll] callback to abort in-flight samples. *)

type failure = {
  index : int;  (** task index as passed to [f] *)
  attempts : int;  (** attempts made, including the first *)
  exn : exn;  (** the last attempt's exception *)
  backtrace : string;
}

val string_of_failure : failure -> string

type 'a outcome =
  | Done of 'a * int  (** result and the number of attempts used *)
  | Failed of failure  (** retry budget exhausted (or not retryable) *)
  | Skipped  (** cancelled before completion *)

type policy = {
  max_retries : int;  (** extra attempts after the first *)
  retryable : exn -> bool;
  backoff_base : int;
      (** [Domain.cpu_relax] spins before the first retry; doubled on each
          subsequent retry (exponential backoff) *)
}

val default_policy : policy
(** No retries; everything except {!Cancelled} and {!Non_retryable} counts
    as retryable. *)

val backoff : ?base:float -> ?cap:float -> seed:int -> int -> float
(** [backoff ~seed attempt] is the wall-clock delay (seconds) before
    restart [attempt] (0-based) of a supervised process: exponential from
    [base] (default 0.05), capped at [cap] (default 2.0), with
    deterministic jitter derived from [(seed, attempt)] by FNV-1a — the
    same inputs always give the same delay, and sibling workers with
    different seeds never restart in lockstep.  Every delay lies in
    [\[base/2 * 2^attempt, cap\]].  [Invalid_argument] if [base <= 0] or
    [cap < base].  Used by the shard coordinator's worker restarts
    (DESIGN.md §16). *)

val run :
  ?token:Cancel.t ->
  ?policy:policy ->
  ?watchdog:(unit -> bool) ->
  domains:int ->
  int ->
  (attempt:int -> int -> 'a) ->
  'a outcome array
(** [run ~domains n f] evaluates [f ~attempt i] for [i] in [0..n-1] over
    [domains] workers with dynamic load balancing, supervising each task
    per [policy].  [attempt] starts at 0 and increments on each retry, so
    the task can derive a fresh deterministic PRNG split per attempt.
    [watchdog] is polled between tasks; when it returns [true] the token is
    cancelled and remaining tasks are [Skipped].  Never raises for task
    failures: the result array holds every task's individual outcome. *)

val failures : 'a outcome array -> failure list
(** All [Failed] entries, in index order. *)
