(** Multicore work distribution for fault-injection campaigns.

    The paper runs 44,856 single-threaded experiments on a cluster, fully
    subscribing each node (artifact §A.4).  Here the unit of work is one
    simulated execution; campaigns distribute experiments over OCaml 5
    domains with dynamic (atomic-counter) load balancing, since experiment
    durations vary wildly — a crash terminates a run early.

    This module is the {e fail-fast} primitive: the first worker exception
    cancels the pool and is re-raised in the caller.  Campaigns that must
    survive individual task failures use {!Supervisor.run}, which isolates,
    retries and aggregates failures instead. *)

val default_domains : unit -> int
(** Number of worker domains to use by default: the recommended domain count
    of the runtime, at least 1. *)

exception Worker_failure of exn
(** Wraps the first exception raised by any task — including index 0 — and
    is re-raised in the caller with the original backtrace preserved
    ([Printexc.raise_with_backtrace]). *)

val run_indexed :
  ?token:Supervisor.Cancel.t -> domains:int -> int -> (int -> unit) -> unit
(** [run_indexed ~domains n f] runs [f i] for [i] in [0..n-1] over worker
    domains.  On the first task exception the shared cancellation token is
    cancelled, so sibling workers stop claiming new indices (and task
    bodies that poll the token abort in-flight work); the exception is then
    re-raised as {!Worker_failure}.  If a caller-supplied [token] is
    cancelled externally, raises {!Supervisor.Cancelled}. *)

val map_array : ?token:Supervisor.Cancel.t -> ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array f arr] applies [f] to every element, distributing elements
    over [domains] workers (default {!default_domains}).  Result order is
    preserved.  [f] must be safe to run concurrently (campaign experiments
    carry their own split PRNG, see {!Prng.split}).  Exceptions raised by [f]
    surface as {!Worker_failure} in the caller. *)

val init : ?token:Supervisor.Cancel.t -> ?domains:int -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init].  Unlike a plain [Array.init], index 0 runs under
    the same supervision as every other index. *)
