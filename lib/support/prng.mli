(** Deterministic pseudo-random number generation.

    The fault-injection experiments of the paper rely on uniform random
    selection of a dynamic instruction, an output operand and a bit
    (paper §3.1).  Reproducibility of a campaign requires a seedable,
    splittable generator that does not depend on global state, so this module
    implements xoshiro256** seeded through SplitMix64 rather than using
    [Stdlib.Random]. *)

type t
(** Mutable generator state. *)

val hash_string : string -> int
(** FNV-1a 64-bit hash of a string, folded to a non-negative OCaml [int].
    Unlike [Hashtbl.hash] this is specified and stable across OCaml
    versions, so campaign seeds derived from (program, tool) names are
    reproducible anywhere. *)

val create : int -> t
(** [create seed] builds a generator deterministically from [seed] by
    expanding it with SplitMix64. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream.  Used to give
    each experiment of a campaign its own generator so that parallel
    execution order does not change results. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive.
    Uses rejection sampling, so the distribution is exactly uniform. *)

val int64 : t -> int64 -> int64
(** Same as {!int} for 64-bit bounds. *)

val float : t -> float
(** Uniform in [\[0, 1)] with 53 bits of precision. *)

val bool : t -> bool
