(* Binary wire codec for the sharded campaign protocol (DESIGN.md §16).

   Fixed-width big-endian primitives plus length-prefixed strings and
   counted lists, written into a [Buffer] and read back through a cursor.
   Decoding is strict in both directions: reading past the end of the
   buffer raises [Truncated] (a partial frame must never decode to a
   valid shorter one), and the frame layer rejects payloads with trailing
   bytes.  The codec is pure bytes-in/bytes-out — process plumbing (pipes,
   framing over fds) lives with the protocol in [Refine_campaign.Shard].

   Floats travel as their IEEE-754 bit patterns ([Int64.bits_of_float]),
   so every finite value round-trips exactly — the fixed-seed equality
   guarantees of the campaign do not survive a lossy text encoding. *)

exception Truncated
(* the buffer ends before the value does *)

(* ---- encoding --------------------------------------------------------- *)

let put_u8 b v =
  if v < 0 || v > 0xff then invalid_arg "Wire.put_u8";
  Buffer.add_char b (Char.chr v)

let put_u32 b v =
  if v < 0 || v > 0xffff_ffff then invalid_arg "Wire.put_u32";
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let put_i64 b v =
  for k = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (k * 8)) land 0xff))
  done

(* OCaml ints are 63-bit; i64 on the wire keeps the sign *)
let put_int b v = put_i64 b (Int64.of_int v)

let put_bool b v = put_u8 b (if v then 1 else 0)

let put_f64 b v = put_i64 b (Int64.bits_of_float v)

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_option b put = function
  | None -> put_u8 b 0
  | Some v ->
    put_u8 b 1;
    put b v

let put_list b put l =
  put_u32 b (List.length l);
  List.iter (put b) l

(* ---- decoding --------------------------------------------------------- *)

type cursor = { data : string; mutable pos : int }

let cursor data = { data; pos = 0 }

let need c n = if c.pos + n > String.length c.data then raise Truncated

let get_u8 c =
  need c 1;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  need c 4;
  let byte k = Char.code c.data.[c.pos + k] in
  let v = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
  c.pos <- c.pos + 4;
  v

let get_i64 c =
  need c 8;
  let v = ref 0L in
  for k = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c.data.[c.pos + k]))
  done;
  c.pos <- c.pos + 8;
  !v

let get_int c = Int64.to_int (get_i64 c)

let get_bool c =
  match get_u8 c with
  | 0 -> false
  | 1 -> true
  | _ -> invalid_arg "Wire.get_bool: not a bool"

let get_f64 c = Int64.float_of_bits (get_i64 c)

let get_string c =
  let n = get_u32 c in
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let get_option c get = match get_u8 c with 0 -> None | _ -> Some (get c)

let get_list c get =
  let n = get_u32 c in
  List.init n (fun _ -> get c)

let at_end c = c.pos = String.length c.data

let expect_end c = if not (at_end c) then invalid_arg "Wire: trailing bytes after value"

(* ---- framing ---------------------------------------------------------- *)

let frame payload =
  let b = Buffer.create (String.length payload + 4) in
  put_u32 b (String.length payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* Incremental deframer for a byte stream: feed chunks as they arrive,
   pop complete payloads.  Bytes of an incomplete trailing frame stay
   buffered — or, if the stream ends there, are reported by [residue] so
   the reader can count the torn frame instead of mis-decoding it. *)
type stream = { acc : Buffer.t; mutable off : int }

let stream () = { acc = Buffer.create 4096; off = 0 }

let feed t bytes len = Buffer.add_subbytes t.acc bytes 0 len

let next t =
  let have = Buffer.length t.acc - t.off in
  if have < 4 then None
  else begin
    let hdr = Buffer.sub t.acc t.off 4 in
    let len =
      (Char.code hdr.[0] lsl 24) lor (Char.code hdr.[1] lsl 16) lor (Char.code hdr.[2] lsl 8)
      lor Char.code hdr.[3]
    in
    if have < 4 + len then None
    else begin
      let payload = Buffer.sub t.acc (t.off + 4) len in
      t.off <- t.off + 4 + len;
      (* compact once the consumed prefix dominates the buffer *)
      if t.off > 65536 && t.off * 2 > Buffer.length t.acc then begin
        let rest = Buffer.sub t.acc t.off (Buffer.length t.acc - t.off) in
        Buffer.clear t.acc;
        Buffer.add_string t.acc rest;
        t.off <- 0
      end;
      Some payload
    end
  end

let residue t = Buffer.length t.acc - t.off
