(* xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.  All state is
   local to [t]; no global mutable state. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* FNV-1a 64-bit: a stable string hash for seed derivation.  [Hashtbl.hash]
   is free to change between OCaml releases; campaign seeds derived here
   reproduce across compiler versions.  The result is folded to OCaml's
   non-negative 63-bit int range. *)
let hash_string s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    s;
  (* fold to OCaml's native int range (63-bit, max 2^62 - 1) *)
  Int64.to_int (Int64.logand !h 0x3FFFFFFFFFFFFFFFL)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (next_int64 t) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

(* Rejection sampling over the top of the 63-bit non-negative range keeps the
   result exactly uniform for any bound: draws above the largest multiple of
   [bound] that fits in 2^63 are discarded. *)
let int64 t bound =
  if Int64.compare bound 0L <= 0 then invalid_arg "Prng.int64: bound <= 0";
  let mask = Int64.max_int in
  (* 2^63 mod bound, computed without overflowing: (mask mod bound + 1) mod bound *)
  let excess = Int64.rem (Int64.add (Int64.rem mask bound) 1L) bound in
  let max_ok = Int64.sub mask excess in
  let rec loop () =
    let r = Int64.logand (next_int64 t) mask in
    if Int64.compare r max_ok > 0 then loop () else Int64.rem r bound
  in
  loop ()

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  Int64.to_int (int64 t (Int64.of_int bound))

let float t =
  let bits53 = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits53 *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L
