let check_index i =
  if i < 0 || i > 63 then invalid_arg (Printf.sprintf "Bitops: bit index %d out of [0,63]" i)

let flip_bit v i =
  check_index i;
  Int64.logxor v (Int64.shift_left 1L i)

let test_bit v i =
  check_index i;
  Int64.logand (Int64.shift_right_logical v i) 1L = 1L

let set_bit v i =
  check_index i;
  Int64.logor v (Int64.shift_left 1L i)

let clear_bit v i =
  check_index i;
  Int64.logand v (Int64.lognot (Int64.shift_left 1L i))

(* Multi-bit fault-mask drawing (DESIGN.md §18).  [draw n] must return a
   uniform int in [0, n) — callers pass [Prng.int rng], so the result is a
   pure function of the PRNG state and the draw sequence is identical on
   every replay (the determinism property fixed-seed campaigns rely on).
   Distinct bits use rejection (re-draw on a duplicate), which consumes
   exactly the same number of draws for the same PRNG state; bursts draw
   one uniform start position.  The result is sorted ascending. *)
let draw_bits (draw : int -> int) ~width ~bits ~burst : int list =
  if width < 1 || width > 64 then
    invalid_arg (Printf.sprintf "Bitops.draw_bits: width %d out of [1,64]" width);
  if bits < 1 || bits > 64 then
    invalid_arg (Printf.sprintf "Bitops.draw_bits: bits %d out of [1,64]" bits);
  let k = min bits width in
  if burst then begin
    let start = draw (width - k + 1) in
    List.init k (fun i -> start + i)
  end
  else begin
    let rec collect acc n =
      if n = 0 then acc
      else
        let b = draw width in
        if List.mem b acc then collect acc n else collect (b :: acc) (n - 1)
    in
    List.sort compare (collect [] k)
  end

let mask_of_bits bits =
  List.fold_left (fun m b -> set_bit m b) 0L bits

let popcount v =
  let rec loop v acc = if v = 0L then acc else loop (Int64.logand v (Int64.sub v 1L)) (acc + 1) in
  loop v 0

let float_bits = Int64.bits_of_float
let bits_float = Int64.float_of_bits
