let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

exception Worker_failure of exn

(* Dynamic load balancing: workers repeatedly claim the next unprocessed
   index from a shared atomic counter.  Each claimed index is processed and
   written into the (pre-allocated) result slot, so order is preserved
   without any sorting.

   This is the fail-fast primitive: the first worker exception cancels the
   shared token so siblings stop claiming (and, if the task body polls the
   token, abort in-flight work too), then re-raises as [Worker_failure]
   with the original backtrace.  Campaigns that must survive individual
   task failures use [Supervisor.run] instead. *)
let run_indexed ?token ~domains n (f : int -> unit) =
  if n = 0 then ()
  else begin
    let external_token = token <> None in
    let token = match token with Some t -> t | None -> Supervisor.Cancel.create () in
    let domains = max 1 (min domains n) in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        if not (Supervisor.Cancel.cancelled token) then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (try f i
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               if Atomic.compare_and_set failure None (Some (e, bt)) then
                 Supervisor.Cancel.cancel ~reason:(Printexc.to_string e) token);
            loop ()
          end
        end
      in
      loop ()
    in
    if domains = 1 then worker ()
    else begin
      let handles = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join handles
    end;
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace (Worker_failure e) bt
    | None -> if external_token then Supervisor.check token
  end

(* All n elements go through the worker pool, so f 0 gets the same error
   surface (Worker_failure, preserved backtrace) as every other index.

   The result array is seeded from the first computed element and filled in
   place — no ['a option array] round-trip and no second mapped copy.  The
   CAS makes the install race-free: whichever worker finishes first
   allocates the array, everyone else writes into it.  Every index that
   completed wrote its own slot, and [run_indexed] raises unless all of
   them did, so unfilled seed copies can never leak out. *)
let init ?token ?domains n f =
  let domains = match domains with Some d -> d | None -> default_domains () in
  if n = 0 then [||]
  else begin
    let slot = Atomic.make [||] in
    run_indexed ?token ~domains n (fun i ->
        let r = f i in
        let out =
          let a = Atomic.get slot in
          if Array.length a = n then a
          else begin
            let fresh = Array.make n r in
            if Atomic.compare_and_set slot a fresh then fresh else Atomic.get slot
          end
        in
        out.(i) <- r);
    Atomic.get slot
  end

let map_array ?token ?domains f arr =
  init ?token ?domains (Array.length arr) (fun i -> f arr.(i))
