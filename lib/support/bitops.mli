(** Bit-level manipulation of 64-bit values.

    The machine simulator stores every architectural register (integer,
    floating point and FLAGS) as raw [int64] bits, so that the single-bit-flip
    fault model of the paper is a uniform XOR regardless of register class. *)

val flip_bit : int64 -> int -> int64
(** [flip_bit v i] inverts bit [i] (0 = least significant).  Raises
    [Invalid_argument] unless [0 <= i < 64]. *)

val test_bit : int64 -> int -> bool

val set_bit : int64 -> int -> int64

val clear_bit : int64 -> int -> int64

val popcount : int64 -> int
(** Number of set bits. *)

val draw_bits : (int -> int) -> width:int -> bits:int -> burst:bool -> int list
(** [draw_bits draw ~width ~bits ~burst] chooses the bit positions of one
    multi-bit fault below [width]: [bits] distinct uniform positions
    (rejection-sampled, so the draw sequence is a pure function of the
    PRNG state), or with [burst] a contiguous run of [bits] positions at a
    uniform start.  [draw n] must return a uniform int in [0, n) —
    callers pass [Prng.int rng].  [bits] is clamped to [width]; the result
    is sorted ascending.  [Invalid_argument] if [width] or [bits] is
    outside [1, 64]. *)

val mask_of_bits : int list -> int64
(** OR of [1 lsl b] over the list — the XOR mask of a multi-bit fault. *)

val float_bits : float -> int64
(** IEEE-754 bit image (same as [Int64.bits_of_float]). *)

val bits_float : int64 -> float
