(** Binary wire codec for the sharded campaign protocol (DESIGN.md §16).

    Big-endian fixed-width primitives, length-prefixed strings and counted
    lists over a [Buffer] encoder and a string cursor decoder.  Strict:
    reading past the end raises {!Truncated}, so no prefix of a valid
    encoding decodes to a valid value (pinned by the test suite's
    truncated-buffer property), and {!expect_end} rejects trailing bytes.
    Floats are encoded as IEEE-754 bit patterns and round-trip exactly. *)

exception Truncated
(** The buffer ends before the value being decoded does. *)

(** {1 Encoding} *)

val put_u8 : Buffer.t -> int -> unit
val put_u32 : Buffer.t -> int -> unit
val put_i64 : Buffer.t -> int64 -> unit

val put_int : Buffer.t -> int -> unit
(** As i64 — covers the full OCaml int range. *)

val put_bool : Buffer.t -> bool -> unit

val put_f64 : Buffer.t -> float -> unit
(** Bit-exact via [Int64.bits_of_float]. *)

val put_string : Buffer.t -> string -> unit
(** u32 length prefix + raw bytes. *)

val put_option : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a option -> unit
val put_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit

(** {1 Decoding} *)

type cursor

val cursor : string -> cursor
val get_u8 : cursor -> int
val get_u32 : cursor -> int
val get_i64 : cursor -> int64
val get_int : cursor -> int
val get_bool : cursor -> bool
val get_f64 : cursor -> float
val get_string : cursor -> string
val get_option : cursor -> (cursor -> 'a) -> 'a option
val get_list : cursor -> (cursor -> 'a) -> 'a list
val at_end : cursor -> bool

val expect_end : cursor -> unit
(** [Invalid_argument] unless the cursor consumed the whole buffer — a
    frame with trailing garbage is a protocol error, not padding. *)

(** {1 Framing} *)

val frame : string -> string
(** [frame payload] prepends a u32 big-endian byte length. *)

(** Incremental deframer for a byte stream (one per pipe): {!feed} raw
    chunks as they arrive, {!next} pops complete frame payloads in order.
    An incomplete trailing frame stays buffered; at end-of-stream,
    {!residue} exposes its byte count so a torn frame (worker killed
    mid-write) is counted, never mis-decoded. *)
type stream

val stream : unit -> stream
val feed : stream -> bytes -> int -> unit
val next : stream -> string option
val residue : stream -> int
