(* Supervised task execution for long-running campaigns.

   The paper's evaluation is a 44,856-experiment matrix; at that scale one
   runaway or crashing sample must not destroy hours of completed work.
   This module isolates each task: an exception marks that task failed
   (with its backtrace captured), retryable errors are re-attempted with
   exponential backoff, and a cooperative cancellation token lets a
   watchdog or an interrupted campaign stop claiming new work — and, for
   tasks that poll, abort work already in flight.  All failures are
   aggregated instead of first-wins. *)

module Cancel = struct
  type t = { flag : bool Atomic.t; why : string Atomic.t }

  let create () = { flag = Atomic.make false; why = Atomic.make "" }

  let cancel ?(reason = "cancelled") t =
    (* first cancellation wins the reason slot *)
    if not (Atomic.get t.flag) then begin
      ignore (Atomic.compare_and_set t.why "" reason);
      Atomic.set t.flag true
    end

  let cancelled t = Atomic.get t.flag

  let reason t = if cancelled t then Some (Atomic.get t.why) else None
end

exception Cancelled of string

let check token =
  if Cancel.cancelled token then
    raise (Cancelled (Option.value ~default:"cancelled" (Cancel.reason token)))

type failure = {
  index : int;
  attempts : int;  (* attempts made, including the first *)
  exn : exn;  (* the last attempt's exception *)
  backtrace : string;
}

let string_of_failure f =
  Printf.sprintf "task %d failed after %d attempt%s: %s" f.index f.attempts
    (if f.attempts = 1 then "" else "s")
    (Printexc.to_string f.exn)

type 'a outcome =
  | Done of 'a * int  (* result, attempts used *)
  | Failed of failure
  | Skipped  (* cancelled before completion *)

type policy = {
  max_retries : int;  (* extra attempts after the first *)
  retryable : exn -> bool;
  backoff_base : int;  (* cpu_relax spins before retry 1; doubles each retry *)
}

let default_policy =
  {
    max_retries = 0;
    retryable = (function Cancelled _ -> false | _ -> true);
    backoff_base = 64;
  }

(* Exponential backoff between retries.  Campaign time is modeled, not
   wall-clock, so backoff is a bounded busy-wait: it yields the core to
   sibling domains without adding a dependency on Unix or Thread. *)
let backoff policy attempt =
  let spins = policy.backoff_base * (1 lsl min attempt 16) in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done

let run ?token ?(policy = default_policy) ?watchdog ~domains n
    (f : attempt:int -> int -> 'a) : 'a outcome array =
  if n = 0 then [||]
  else begin
    let token = match token with Some t -> t | None -> Cancel.create () in
    let domains = max 1 (min domains n) in
    let results = Array.make n Skipped in
    let next = Atomic.make 0 in
    let poll_watchdog () =
      match watchdog with
      | Some expired when (not (Cancel.cancelled token)) && expired () ->
        Cancel.cancel ~reason:"watchdog deadline exceeded" token
      | _ -> ()
    in
    let run_task i =
      let rec attempt a =
        match f ~attempt:a i with
        | v -> results.(i) <- Done (v, a + 1)
        | exception Cancelled _ -> results.(i) <- Skipped
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          if a < policy.max_retries && policy.retryable e
             && not (Cancel.cancelled token)
          then begin
            backoff policy a;
            attempt (a + 1)
          end
          else
            results.(i) <-
              Failed
                {
                  index = i;
                  attempts = a + 1;
                  exn = e;
                  backtrace = Printexc.raw_backtrace_to_string bt;
                }
      in
      attempt 0
    in
    let worker () =
      let rec loop () =
        poll_watchdog ();
        if not (Cancel.cancelled token) then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            run_task i;
            loop ()
          end
        end
      in
      loop ()
    in
    if domains = 1 then worker ()
    else begin
      let handles = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join handles
    end;
    results
  end

let failures outcomes =
  Array.to_list outcomes
  |> List.filter_map (function Failed f -> Some f | Done _ | Skipped -> None)
