(* Supervised task execution for long-running campaigns.

   The paper's evaluation is a 44,856-experiment matrix; at that scale one
   runaway or crashing sample must not destroy hours of completed work.
   This module isolates each task: an exception marks that task failed
   (with its backtrace captured), retryable errors are re-attempted with
   exponential backoff, and a cooperative cancellation token lets a
   watchdog or an interrupted campaign stop claiming new work — and, for
   tasks that poll, abort work already in flight.  All failures are
   aggregated instead of first-wins. *)

module Obs = Refine_obs

module Cancel = struct
  type t = { flag : bool Atomic.t; why : string Atomic.t; since : float Atomic.t }

  let create () = { flag = Atomic.make false; why = Atomic.make ""; since = Atomic.make 0.0 }

  let cancel ?(reason = "cancelled") t =
    (* first cancellation wins the reason slot *)
    if not (Atomic.get t.flag) then begin
      ignore (Atomic.compare_and_set t.why "" reason);
      Atomic.set t.since (Obs.Control.now ());
      Atomic.set t.flag true
    end

  let cancelled t = Atomic.get t.flag

  let reason t = if cancelled t then Some (Atomic.get t.why) else None

  (* Seconds between the token firing and a worker noticing; meaningful
     only once [cancelled t] holds. *)
  let latency t = Obs.Control.now () -. Atomic.get t.since
end

exception Cancelled of string

(* Wrapper for failures known to be deterministic: a retry would only
   reproduce them (a quarantined cell, a structurally invalid binary).
   [default_policy] refuses to retry it; the recorded [failure.exn] is the
   unwrapped payload. *)
exception Non_retryable of exn

let check token =
  if Cancel.cancelled token then
    raise (Cancelled (Option.value ~default:"cancelled" (Cancel.reason token)))

type failure = {
  index : int;
  attempts : int;  (* attempts made, including the first *)
  exn : exn;  (* the last attempt's exception *)
  backtrace : string;
}

let string_of_failure f =
  Printf.sprintf "task %d failed after %d attempt%s: %s" f.index f.attempts
    (if f.attempts = 1 then "" else "s")
    (Printexc.to_string f.exn)

type 'a outcome =
  | Done of 'a * int  (* result, attempts used *)
  | Failed of failure
  | Skipped  (* cancelled before completion *)

type policy = {
  max_retries : int;  (* extra attempts after the first *)
  retryable : exn -> bool;
  backoff_base : int;  (* cpu_relax spins before retry 1; doubles each retry *)
}

let default_policy =
  {
    max_retries = 0;
    retryable = (function Cancelled _ | Non_retryable _ -> false | _ -> true);
    backoff_base = 64;
  }

(* PR-1 added retries, watchdog kills and cancellation, but they were
   invisible at runtime; these registry metrics (inert until
   [Obs.Control.enable]) make the supervisor's behavior under load a
   first-class measured quantity (DESIGN.md §12). *)
let m_tasks outcome =
  Obs.Metrics.counter ~help:"supervised tasks by final disposition" ~labels:[ ("outcome", outcome) ]
    "refine_supervisor_tasks_total"

(* pre-created handles: the per-task increment must not pay the registry's
   creation/dedup lookup *)
let m_tasks_done = m_tasks "done"
let m_tasks_failed = m_tasks "failed"
let m_tasks_cancelled = m_tasks "cancelled"

let m_retries =
  Obs.Metrics.counter ~help:"task retry attempts after a retryable failure"
    "refine_supervisor_retries_total"

let m_watchdog =
  Obs.Metrics.counter ~help:"watchdog deadline expirations that cancelled the pool"
    "refine_supervisor_watchdog_fires_total"

let m_cancel_latency =
  Obs.Metrics.histogram ~help:"seconds between a cancellation firing and a worker observing it"
    ~buckets:[| 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 |]
    "refine_supervisor_cancel_latency_seconds"

let note_cancel_seen token =
  if Obs.Control.enabled () then Obs.Metrics.observe m_cancel_latency (Cancel.latency token)

(* Exponential backoff between retries.  Campaign time is modeled, not
   wall-clock, so backoff is a bounded busy-wait: it yields the core to
   sibling domains without adding a dependency on Unix or Thread. *)
let spin_backoff policy attempt =
  let spins = policy.backoff_base * (1 lsl min attempt 16) in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done

(* Deterministic seeded exponential backoff with cap, in seconds — the
   restart schedule of the shard coordinator (DESIGN.md §16) and of any
   other supervisor that waits in wall-clock time rather than spins.
   Deterministic jitter (FNV-1a of seed and attempt) decorrelates the
   restart times of sibling workers without sacrificing reproducibility:
   the same (seed, attempt) always yields the same delay, and every delay
   lies in [base/2 * 2^attempt, cap]. *)
let backoff ?(base = 0.05) ?(cap = 2.0) ~seed attempt =
  if base <= 0.0 || cap < base then invalid_arg "Supervisor.backoff";
  let expo = base *. (2.0 ** float_of_int (min attempt 32)) in
  let h = Prng.hash_string (Printf.sprintf "backoff\000%d\000%d" seed attempt) in
  let jitter = float_of_int (h land 0xffff) /. 65536.0 in
  Float.min cap (expo *. (0.5 +. (0.5 *. jitter)))

let run ?token ?(policy = default_policy) ?watchdog ~domains n
    (f : attempt:int -> int -> 'a) : 'a outcome array =
  if n = 0 then [||]
  else begin
    let token = match token with Some t -> t | None -> Cancel.create () in
    let domains = max 1 (min domains n) in
    let results = Array.make n Skipped in
    let next = Atomic.make 0 in
    let poll_watchdog () =
      match watchdog with
      | Some expired when (not (Cancel.cancelled token)) && expired () ->
        Obs.Metrics.inc m_watchdog;
        Cancel.cancel ~reason:"watchdog deadline exceeded" token
      | _ -> ()
    in
    let run_task i =
      let rec attempt a =
        match f ~attempt:a i with
        | v ->
          Obs.Metrics.inc m_tasks_done;
          results.(i) <- Done (v, a + 1)
        | exception Cancelled _ ->
          (* in-flight abort: the poll noticed the token *)
          Obs.Metrics.inc m_tasks_cancelled;
          note_cancel_seen token;
          results.(i) <- Skipped
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          if a < policy.max_retries && policy.retryable e
             && not (Cancel.cancelled token)
          then begin
            Obs.Metrics.inc m_retries;
            spin_backoff policy a;
            attempt (a + 1)
          end
          else begin
            Obs.Metrics.inc m_tasks_failed;
            let e = match e with Non_retryable e -> e | e -> e in
            results.(i) <-
              Failed
                {
                  index = i;
                  attempts = a + 1;
                  exn = e;
                  backtrace = Printexc.raw_backtrace_to_string bt;
                }
          end
      in
      attempt 0
    in
    let worker () =
      let rec loop () =
        poll_watchdog ();
        if not (Cancel.cancelled token) then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            run_task i;
            loop ()
          end
        end
        else
          (* between-task cancellation: how long after the token fired did
             this worker stop claiming work *)
          note_cancel_seen token
      in
      loop ()
    in
    if domains = 1 then worker ()
    else begin
      let handles = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join handles
    end;
    results
  end

let failures outcomes =
  Array.to_list outcomes
  |> List.filter_map (function Failed f -> Some f | Done _ | Skipped -> None)
