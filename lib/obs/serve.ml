(* Live campaign status endpoint (DESIGN.md §17).

   A dependency-free HTTP/1.0 listener over [Unix] sockets, designed to be
   *polled* rather than threaded: the owner (the coordinator's select
   loop, or a tiny pump domain on the in-process path) calls [poll] at its
   own cadence, and every socket is non-blocking, so a slow or stuck
   client can never stall the campaign.  One GET per connection,
   [Connection: close] — the crudest HTTP that curl and Prometheus both
   speak, which is all a status page needs.

   Routes: /metrics (Prometheus text exposition, byte-identical to what
   [Metrics.save] writes), /status (campaign progress JSON), /healthz. *)

type response = { status : int; content_type : string; body : string }

type conn = {
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;
  mutable c_out : string; (* serialized response, "" until request parsed *)
  mutable c_off : int;
  c_opened : float;
}

type t = {
  listen_fd : Unix.file_descr;
  port : int;
  mutable conns : conn list;
  mutable handler : string -> response option;
  mutable closed : bool;
}

(* ---- progress model ---------------------------------------------------- *)

type worker_info = {
  w_slot : int;
  w_pid : int;
  w_alive : bool;
  w_state : string; (* idle | busy | waiting | dead *)
  w_last_seen_s : float; (* age of the last frame/heartbeat, seconds *)
  w_restarts : int;
}

type progress = {
  p_samples_done : int;
  p_samples_total : int;
  p_cells_done : int;
  p_cells_total : int;
  p_cells_quarantined : int;
  p_workers : worker_info list option; (* None on the in-process path *)
  p_finished : bool;
}

(* ---- plumbing ---------------------------------------------------------- *)

let max_request = 8192
let conn_timeout_s = 10.0

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | _ -> "Error"

let serialize r =
  Printf.sprintf
    "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    r.status (reason r.status) r.content_type (String.length r.body) r.body

let text status body = { status; content_type = "text/plain; charset=utf-8"; body }

let default_handler path =
  match path with
  | "/healthz" -> Some (text 200 "ok\n")
  | "/metrics" -> Some { status = 200; content_type = "text/plain; version=0.0.4"; body = Metrics.dump () }
  | _ -> None

let create ?(port = 0) () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 16;
  Unix.set_nonblock fd;
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> port
  in
  { listen_fd = fd; port; conns = []; handler = default_handler; closed = false }

let port t = t.port
let set_handler t h = t.handler <- h

let close_conn c = try Unix.close c.c_fd with Unix.Unix_error _ -> ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    List.iter close_conn t.conns;
    t.conns <- [];
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())
  end

let fds t = if t.closed then [] else t.listen_fd :: List.map (fun c -> c.c_fd) t.conns

(* Parse "GET /path HTTP/1.x" out of a complete request head; the query
   string is dropped — routes take no parameters. *)
let route_response t head =
  match String.split_on_char ' ' head with
  | meth :: path :: _ when meth = "GET" ->
    let path = match String.index_opt path '?' with Some i -> String.sub path 0 i | None -> path in
    (match t.handler path with
    | Some r -> r
    | None -> (
      match default_handler path with Some r -> r | None -> text 404 "not found\n"))
  | _ :: _ :: _ -> text 405 "only GET\n"
  | _ -> text 400 "bad request\n"

let head_complete s =
  let has sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  has "\r\n\r\n" || has "\n\n"

let step_conn t now c =
  let alive = ref true in
  let kill () =
    close_conn c;
    alive := false
  in
  (if !alive && c.c_out = "" then
     (* reading the request *)
     let bytes = Bytes.create 1024 in
     match Unix.read c.c_fd bytes 0 1024 with
     | 0 -> kill () (* client went away before sending a full request *)
     | n ->
       Buffer.add_subbytes c.c_buf bytes 0 n;
       if Buffer.length c.c_buf > max_request then kill ()
       else begin
         let s = Buffer.contents c.c_buf in
         if head_complete s then begin
           let head = match String.index_opt s '\n' with Some i -> String.sub s 0 i | None -> s in
           let head = String.trim head in
           c.c_out <- serialize (route_response t head)
         end
       end
     | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
     | exception Unix.Unix_error (_, _, _) -> kill ());
  (if !alive && c.c_out <> "" then
     (* writing the response *)
     let remaining = String.length c.c_out - c.c_off in
     match Unix.write_substring c.c_fd c.c_out c.c_off remaining with
     | n ->
       c.c_off <- c.c_off + n;
       if c.c_off >= String.length c.c_out then kill () (* done; HTTP/1.0 close *)
     | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
     | exception Unix.Unix_error (_, _, _) -> kill ());
  if !alive && now -. c.c_opened > conn_timeout_s then kill ();
  !alive

let poll t =
  if not t.closed then begin
    (* accept everything pending *)
    let rec accept_loop () =
      match Unix.accept ~cloexec:true t.listen_fd with
      | fd, _ ->
        Unix.set_nonblock fd;
        t.conns <-
          { c_fd = fd; c_buf = Buffer.create 256; c_out = ""; c_off = 0; c_opened = Control.now () }
          :: t.conns;
        accept_loop ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error (_, _, _) -> ()
    in
    accept_loop ();
    let now = Control.now () in
    t.conns <- List.filter (step_conn t now) t.conns
  end

(* ---- /status ----------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let worker_json w =
  Printf.sprintf
    "{\"slot\":%d,\"pid\":%d,\"alive\":%b,\"state\":\"%s\",\"last_seen_s\":%.3f,\"restarts\":%d}"
    w.w_slot w.w_pid w.w_alive (json_escape w.w_state) w.w_last_seen_s w.w_restarts

(* Rolling throughput: (t, samples_done) observations over the last few
   seconds, sampled on each /status hit.  Kept per [set_status] install so
   consecutive campaigns in one process don't bleed rates. *)
let rate_window = 10.0

let status_json window get =
  let p = get () in
  let now = Control.now () in
  Queue.push (now, p.p_samples_done) window;
  while
    Queue.length window > 2
    &&
    let t0, _ = Queue.peek window in
    now -. t0 > rate_window
  do
    ignore (Queue.pop window)
  done;
  let rate =
    let t0, d0 = Queue.peek window in
    let dt = now -. t0 in
    if dt <= 0.0 then 0.0 else float_of_int (p.p_samples_done - d0) /. dt
  in
  let remaining = p.p_samples_total - p.p_samples_done in
  let eta =
    if p.p_finished || remaining <= 0 then 0.0
    else if rate <= 0.0 then -1.0 (* unknown yet *)
    else float_of_int remaining /. rate
  in
  let workers =
    match p.p_workers with
    | None -> ""
    | Some ws ->
      Printf.sprintf ",\"workers\":[%s]" (String.concat "," (List.map worker_json ws))
  in
  Printf.sprintf
    "{\"finished\":%b,\"samples_done\":%d,\"samples_total\":%d,\"cells_done\":%d,\"cells_total\":%d,\"cells_quarantined\":%d,\"samples_per_s\":%.3f,\"eta_s\":%.3f%s}\n"
    p.p_finished p.p_samples_done p.p_samples_total p.p_cells_done p.p_cells_total
    p.p_cells_quarantined rate eta workers

let set_status t get =
  let window = Queue.create () in
  set_handler t (fun path ->
      match path with
      | "/status" -> Some { status = 200; content_type = "application/json"; body = status_json window get }
      | _ -> default_handler path)
