(** Span-based phase tracing with JSONL emission (DESIGN.md §12).

    [with_ "phase" f] measures the wall-clock extent of [f] and emits one
    JSON event per closed span to the configured sink (an append-only
    [*.trace.jsonl] log next to the campaign journal).  Spans nest through
    a per-domain stack; a span closed by an exception is still emitted
    (["ok":false]) before the exception continues unwinding, and modeled
    cost charged through {!add_cost} is attributed to the innermost open
    span.  All of it is inert while {!Control.enabled} is false. *)

type event = {
  name : string;
  attrs : (string * string) list;
  t_start : float;  (** unix epoch seconds *)
  dur_s : float;
  depth : int;  (** nesting depth on the emitting domain; 0 = top level *)
  domain : int;
  cost : int64;  (** modeled cost attributed via {!add_cost}; 0 if none *)
  ok : bool;  (** [false] when the span unwound on an exception *)
  trace : string;  (** campaign trace id; [""] outside any trace context *)
  span_id : int;  (** unique within the trace (pid-composed across processes) *)
  parent : int;  (** enclosing span id; 0 = root *)
}

val to_json : event -> string
(** One-line JSON object (the JSONL schema of DESIGN.md §12). *)

val with_ : ?attrs:(string * string) list -> ?cost:int64 -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span.  Exceptions propagate with their
    original backtrace after the span event is emitted. *)

val add_cost : int64 -> unit
(** Attribute modeled-cost units to the innermost open span on this
    domain; no-op outside any span or when disabled. *)

val emit :
  ?attrs:(string * string) list ->
  ?cost:int64 ->
  ?ok:bool ->
  ?span_id:int ->
  name:string ->
  dur_s:float ->
  unit ->
  unit
(** Emit a leaf event whose duration was measured externally (used by
    {!Phase.time}); recorded at the current nesting depth.  [span_id] lets
    a caller pre-allocate the id with {!fresh_id} — the coordinator hands
    each chunk's dispatch-span id to the worker in Assign before the span
    itself is emitted at chunk completion. *)

val depth : unit -> int
(** Current span-stack depth on this domain (for tests). *)

(** {1 Distributed trace context (DESIGN.md §17)} *)

val fresh_id : unit -> int
(** Allocate a span id unique across the fleet (pid folded into the high
    bits). *)

val set_context : ?trace:string -> ?parent:int -> unit -> unit
(** Set the process-wide trace context.  The coordinator opens one trace
    per campaign; a worker adopts the (trace, dispatch-span-id) pair from
    each Assign frame so its spans re-parent under the coordinator's
    per-chunk span. *)

val clear_context : unit -> unit

val forward : event -> unit
(** Write an event produced by another process into the local sink without
    feeding the metrics registry (the producer already counted it, and its
    registry arrives separately via Metrics_delta). *)

(** {1 Sinks} *)

val set_file_sink : string -> unit
(** Route events to [path] as JSON lines (truncates; closes any previous
    sink). *)

val set_memory_sink : unit -> unit
(** Route events to an in-memory buffer, read back with {!drain}. *)

val drain : unit -> event list
(** Memory-sink events in emission order; clears the buffer. *)

val close_sink : unit -> unit
(** Flush and close the active sink (always safe to call).  Also installed
    as an [at_exit] hook so abnormal exits don't drop the buffered trace
    tail. *)

val sink_active : unit -> bool
(** True when a file or memory sink is installed. *)
