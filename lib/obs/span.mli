(** Span-based phase tracing with JSONL emission (DESIGN.md §12).

    [with_ "phase" f] measures the wall-clock extent of [f] and emits one
    JSON event per closed span to the configured sink (an append-only
    [*.trace.jsonl] log next to the campaign journal).  Spans nest through
    a per-domain stack; a span closed by an exception is still emitted
    (["ok":false]) before the exception continues unwinding, and modeled
    cost charged through {!add_cost} is attributed to the innermost open
    span.  All of it is inert while {!Control.enabled} is false. *)

type event = {
  name : string;
  attrs : (string * string) list;
  t_start : float;  (** unix epoch seconds *)
  dur_s : float;
  depth : int;  (** nesting depth on the emitting domain; 0 = top level *)
  domain : int;
  cost : int64;  (** modeled cost attributed via {!add_cost}; 0 if none *)
  ok : bool;  (** [false] when the span unwound on an exception *)
}

val to_json : event -> string
(** One-line JSON object (the JSONL schema of DESIGN.md §12). *)

val with_ : ?attrs:(string * string) list -> ?cost:int64 -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span.  Exceptions propagate with their
    original backtrace after the span event is emitted. *)

val add_cost : int64 -> unit
(** Attribute modeled-cost units to the innermost open span on this
    domain; no-op outside any span or when disabled. *)

val emit :
  ?attrs:(string * string) list -> ?cost:int64 -> ?ok:bool -> name:string -> dur_s:float -> unit -> unit
(** Emit a leaf event whose duration was measured externally (used by
    {!Phase.time}); recorded at the current nesting depth. *)

val depth : unit -> int
(** Current span-stack depth on this domain (for tests). *)

(** {1 Sinks} *)

val set_file_sink : string -> unit
(** Route events to [path] as JSON lines (truncates; closes any previous
    sink). *)

val set_memory_sink : unit -> unit
(** Route events to an in-memory buffer, read back with {!drain}. *)

val drain : unit -> event list
(** Memory-sink events in emission order; clears the buffer. *)

val close_sink : unit -> unit
(** Flush and close the active sink (always safe to call). *)
