(** Loader for the JSONL span trace written by {!Span} file sinks
    (DESIGN.md §17).

    Mirrors the campaign journal's torn-line policy: a process killed
    mid-append leaves at most one partial final line, which is dropped
    without a parse attempt and flagged in [torn]; any other undecodable
    line is counted in [skipped] instead of failing the load. *)

type result = {
  events : Span.event list;  (** decoded events, in file order *)
  skipped : int;  (** undecodable lines dropped *)
  torn : bool;  (** a torn (newline-less) final line was dropped *)
}

val load : string -> result

val parse_event : string -> Span.event option
(** Decode one JSONL line (exposed for tests). *)
