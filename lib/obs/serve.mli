(** Live campaign status endpoint (DESIGN.md §17).

    A dependency-free HTTP/1.0 listener ([Unix] sockets, hand-rolled
    request parsing) designed to be *polled* from an existing event loop
    rather than given a thread: the coordinator calls {!poll} from its
    select loop; the in-process campaign path drives it from a tiny pump
    domain.  All sockets are non-blocking — a slow client can never stall
    the campaign.

    Routes: [/metrics] (Prometheus text, byte-identical to
    {!Metrics.dump}), [/status] (progress JSON, installed via
    {!set_status}), [/healthz]. *)

type t

type response = { status : int; content_type : string; body : string }

val create : ?port:int -> unit -> t
(** Bind and listen on 127.0.0.1:[port] (default 0 = kernel-assigned; read
    it back with {!port}).  Raises [Unix.Unix_error] if the bind fails. *)

val port : t -> int

val poll : t -> unit
(** Accept pending connections and advance every in-flight request by one
    non-blocking step.  Call from the owner's event loop; never blocks. *)

val fds : t -> Unix.file_descr list
(** Descriptors to watch for readability so a select loop wakes promptly
    on new requests ({!poll} still must run on a timeout — it also
    finishes partially-written responses). *)

val close : t -> unit

val set_handler : t -> (string -> response option) -> unit
(** Override routing: receives the path (query string stripped); [None]
    falls back to the built-in [/metrics] + [/healthz] routes, then 404. *)

(** {1 Campaign progress ([/status])} *)

type worker_info = {
  w_slot : int;
  w_pid : int;
  w_alive : bool;
  w_state : string;  (** idle | busy | waiting | dead *)
  w_last_seen_s : float;  (** age of the last frame from this worker *)
  w_restarts : int;
}

type progress = {
  p_samples_done : int;
  p_samples_total : int;
  p_cells_done : int;
  p_cells_total : int;
  p_cells_quarantined : int;
  p_workers : worker_info list option;  (** [None] on the in-process path *)
  p_finished : bool;
}

val set_status : t -> (unit -> progress) -> unit
(** Install the [/status] route: each hit calls the provider and renders
    progress JSON with a rolling samples/s rate and an ETA (eta_s is -1
    while the rate is still unknown). *)
