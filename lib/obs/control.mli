(** Global observability switch and wall clock (DESIGN.md §12).

    Every recording entry point in {!Metrics} and {!Span} is gated on
    {!enabled} — a plain boolean read — so a campaign with observability
    off pays one predictable branch per call site.  Set once at startup
    (CLI flag, bench env knob, test setup), before worker domains spawn. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val now : unit -> float
(** [Unix.gettimeofday], the wall-clock source shared by spans, phase
    timers and the supervisor's cancellation-latency probe. *)
