(* Lock-free-per-domain metrics registry (DESIGN.md §12).

   Recording never takes a lock on the hot path: each metric hands every
   domain its own accumulation cell through [Domain.DLS], so an increment
   is a domain-local mutable write.  The registry mutex is touched only on
   the cold paths — metric creation, a domain's first use of a metric, and
   report-time merges — which is what lets the executor and the FI control
   libraries record per-sample counts without serializing the campaign's
   worker domains.

   Merging is a sum over per-domain cells, so reported totals are
   independent of how samples were scheduled across domains (the
   cross-domain determinism property pinned by test_obs).  Values read
   while domains are still recording are monotonic snapshots. *)

type labels = (string * string) list

type kind = Kcounter | Kgauge | Khistogram

(* per-domain cells *)
type ccell = { mutable n : int }

type hcell = {
  hc_counts : int array; (* one slot per bound, plus the +Inf overflow slot *)
  mutable hc_sum : float;
  mutable hc_nobs : int;
}

type counter = {
  c_name : string;
  c_labels : labels;
  c_cells : ccell list ref;
  c_key : ccell Domain.DLS.key;
}

type gauge = { g_name : string; g_labels : labels; g_v : float Atomic.t }

type histogram = {
  h_name : string;
  h_labels : labels;
  h_bounds : float array; (* strictly increasing upper bounds *)
  h_cells : hcell list ref;
  h_key : hcell Domain.DLS.key;
}

type metric = Mcounter of counter | Mgauge of gauge | Mhistogram of histogram

(* ---- registry -------------------------------------------------------- *)

let mutex = Mutex.create ()
let metrics : (string * labels, metric) Hashtbl.t = Hashtbl.create 64
let kinds : (string, kind * string) Hashtbl.t = Hashtbl.create 64 (* name -> kind, help *)

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let check_kind name kind help =
  match Hashtbl.find_opt kinds name with
  | Some (k, _) when k <> kind -> invalid_arg ("Metrics: " ^ name ^ " re-registered with a different kind")
  | Some _ -> ()
  | None -> Hashtbl.replace kinds name (kind, help)

(* Creation is idempotent: the same (name, labels) returns the same handle,
   so call sites may create handles lazily without double counting. *)
let counter ?(help = "") ?(labels = []) name : counter =
  locked (fun () ->
      check_kind name Kcounter help;
      match Hashtbl.find_opt metrics (name, labels) with
      | Some (Mcounter c) -> c
      | Some _ -> invalid_arg ("Metrics: " ^ name ^ " is not a counter")
      | None ->
        let cells = ref [] in
        let key =
          Domain.DLS.new_key (fun () ->
              let cell = { n = 0 } in
              locked (fun () -> cells := cell :: !cells);
              cell)
        in
        let c = { c_name = name; c_labels = labels; c_cells = cells; c_key = key } in
        Hashtbl.replace metrics (name, labels) (Mcounter c);
        c)

let gauge ?(help = "") ?(labels = []) name : gauge =
  locked (fun () ->
      check_kind name Kgauge help;
      match Hashtbl.find_opt metrics (name, labels) with
      | Some (Mgauge g) -> g
      | Some _ -> invalid_arg ("Metrics: " ^ name ^ " is not a gauge")
      | None ->
        let g = { g_name = name; g_labels = labels; g_v = Atomic.make 0.0 } in
        Hashtbl.replace metrics (name, labels) (Mgauge g);
        g)

let histogram ?(help = "") ?(labels = []) ~buckets name : histogram =
  if Array.length buckets = 0 then invalid_arg "Metrics.histogram: no buckets";
  Array.iteri
    (fun i b -> if i > 0 && b <= buckets.(i - 1) then invalid_arg "Metrics.histogram: buckets not increasing")
    buckets;
  locked (fun () ->
      check_kind name Khistogram help;
      match Hashtbl.find_opt metrics (name, labels) with
      | Some (Mhistogram h) -> h
      | Some _ -> invalid_arg ("Metrics: " ^ name ^ " is not a histogram")
      | None ->
        let cells = ref [] in
        let key =
          Domain.DLS.new_key (fun () ->
              let cell =
                { hc_counts = Array.make (Array.length buckets + 1) 0; hc_sum = 0.0; hc_nobs = 0 }
              in
              locked (fun () -> cells := cell :: !cells);
              cell)
        in
        let h =
          { h_name = name; h_labels = labels; h_bounds = Array.copy buckets; h_cells = cells;
            h_key = key }
        in
        Hashtbl.replace metrics (name, labels) (Mhistogram h);
        h)

(* ---- recording (hot path, gated on the global switch) ---------------- *)

let add c k =
  if Control.enabled () && k <> 0 then begin
    let cell = Domain.DLS.get c.c_key in
    cell.n <- cell.n + k
  end

let inc c = add c 1

let add64 c k = add c (Int64.to_int k)

let set g v = if Control.enabled () then Atomic.set g.g_v v

(* Prometheus [le] semantics: an observation lands in the first bucket
   whose upper bound is >= the value; above every bound it lands in the
   implicit +Inf slot. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let i = ref 0 in
  while !i < n && v > bounds.(!i) do
    incr i
  done;
  !i

let observe h v =
  if Control.enabled () then begin
    let cell = Domain.DLS.get h.h_key in
    let i = bucket_index h.h_bounds v in
    cell.hc_counts.(i) <- cell.hc_counts.(i) + 1;
    cell.hc_sum <- cell.hc_sum +. v;
    cell.hc_nobs <- cell.hc_nobs + 1
  end

(* ---- merged reads ----------------------------------------------------- *)

type hist_value = {
  bounds : float array;
  counts : int64 array; (* per-bucket (not cumulative); last slot is +Inf *)
  sum : float;
  count : int64;
}

type value = Counter of int64 | Gauge of float | Histogram of hist_value

let counter_value c =
  locked (fun () -> List.fold_left (fun acc cell -> acc + cell.n) 0 !(c.c_cells))
  |> Int64.of_int

let gauge_value g = Atomic.get g.g_v

let histogram_value h =
  locked (fun () ->
      let counts = Array.make (Array.length h.h_bounds + 1) 0L in
      let sum = ref 0.0 and nobs = ref 0 in
      List.iter
        (fun cell ->
          Array.iteri (fun i k -> counts.(i) <- Int64.add counts.(i) (Int64.of_int k)) cell.hc_counts;
          sum := !sum +. cell.hc_sum;
          nobs := !nobs + cell.hc_nobs)
        !(h.h_cells);
      { bounds = Array.copy h.h_bounds; counts; sum = !sum; count = Int64.of_int !nobs })

let value_of = function
  | Mcounter c -> Counter (counter_value c)
  | Mgauge g -> Gauge (gauge_value g)
  | Mhistogram h -> Histogram (histogram_value h)

let name_of = function Mcounter c -> c.c_name | Mgauge g -> g.g_name | Mhistogram h -> h.h_name
let labels_of = function Mcounter c -> c.c_labels | Mgauge g -> g.g_labels | Mhistogram h -> h.h_labels

let sorted_metrics () =
  let all = locked (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) metrics []) in
  List.sort (fun a b ->
      match compare (name_of a) (name_of b) with 0 -> compare (labels_of a) (labels_of b) | c -> c)
    all

let snapshot () = List.map (fun m -> (name_of m, labels_of m, value_of m)) (sorted_metrics ())

let find name labels =
  List.find_map
    (fun (n, l, v) -> if n = name && l = labels then Some v else None)
    (snapshot ())

(* ---- fleet delta export / merge (DESIGN.md §17) ------------------------ *)

type export_item = {
  x_name : string;
  x_labels : labels;
  x_help : string;
  x_value : value;
}

let export () =
  List.map
    (fun m ->
      let name = name_of m in
      let help = match Hashtbl.find_opt kinds name with Some (_, h) -> h | None -> "" in
      { x_name = name; x_labels = labels_of m; x_help = help; x_value = value_of m })
    (sorted_metrics ())

type merge_state = (string * labels, value) Hashtbl.t

let merge_source () : merge_state = Hashtbl.create 64

(* Merge applicators bypass the [Control.enabled] gate: a coordinator must
   land a remote worker's cumulative snapshot even if its own recording
   switch happens to be off at that instant. *)
let apply_counter c k =
  if k <> 0 then begin
    let cell = Domain.DLS.get c.c_key in
    cell.n <- cell.n + k
  end

let apply_hist h dcounts dsum dnobs =
  let cell = Domain.DLS.get h.h_key in
  Array.iteri (fun i d -> cell.hc_counts.(i) <- cell.hc_counts.(i) + d) dcounts;
  cell.hc_sum <- cell.hc_sum +. dsum;
  cell.hc_nobs <- cell.hc_nobs + dnobs

(* Each source ships *cumulative* values; [merge_snapshot] applies only the
   elementwise non-negative difference against the last value applied from
   that same source, then remembers the elementwise max.  Replayed or
   reordered snapshots of a monotone series therefore contribute nothing
   new — the merge is commutative and idempotent over any interleaving of
   sources (pinned by qcheck in test_obs).  Items that clash with a local
   registration (kind, or histogram bounds) are dropped rather than
   corrupting the registry. *)
let merge_snapshot (st : merge_state) items =
  List.iter
    (fun it ->
      let key = (it.x_name, it.x_labels) in
      let last = Hashtbl.find_opt st key in
      try
        match it.x_value with
        | Counter v ->
          let prev = match last with Some (Counter p) -> p | _ -> 0L in
          let c = counter ~help:it.x_help ~labels:it.x_labels it.x_name in
          let d = Int64.sub v prev in
          if Int64.compare d 0L > 0 then apply_counter c (Int64.to_int d);
          Hashtbl.replace st key (Counter (if Int64.compare v prev > 0 then v else prev))
        | Gauge v ->
          (* gauges are not monotone: last write from the source wins *)
          let g = gauge ~help:it.x_help ~labels:it.x_labels it.x_name in
          Atomic.set g.g_v v;
          Hashtbl.replace st key (Gauge v)
        | Histogram hv ->
          let h = histogram ~help:it.x_help ~labels:it.x_labels ~buckets:hv.bounds it.x_name in
          if h.h_bounds = hv.bounds && Array.length hv.counts = Array.length h.h_bounds + 1 then begin
            let prev =
              match last with
              | Some (Histogram p) when p.bounds = hv.bounds -> p
              | _ ->
                { bounds = hv.bounds; counts = Array.make (Array.length hv.counts) 0L; sum = 0.0;
                  count = 0L }
            in
            let dcounts =
              Array.mapi
                (fun i v ->
                  let d = Int64.to_int (Int64.sub v prev.counts.(i)) in
                  if d > 0 then d else 0)
                hv.counts
            in
            let dsum = Float.max 0.0 (hv.sum -. prev.sum) in
            let dnobs = max 0 (Int64.to_int (Int64.sub hv.count prev.count)) in
            apply_hist h dcounts dsum dnobs;
            let mcounts =
              Array.mapi
                (fun i v -> if Int64.compare v prev.counts.(i) > 0 then v else prev.counts.(i))
                hv.counts
            in
            Hashtbl.replace st key
              (Histogram
                 { bounds = hv.bounds; counts = mcounts; sum = Float.max hv.sum prev.sum;
                   count = (if Int64.compare hv.count prev.count > 0 then hv.count else prev.count) })
          end
      with Invalid_argument _ -> ())
    items

(* ---- Prometheus text exposition --------------------------------------- *)

let escape_label s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) labels)
    ^ "}"

(* HELP text runs to end-of-line, so only backslash and newline need
   escaping (exposition-format escaping rules, stricter than labels). *)
let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let dump () =
  let buf = Buffer.create 4096 in
  let last_name = ref "" in
  List.iter
    (fun m ->
      let name = name_of m in
      if name <> !last_name then begin
        last_name := name;
        let kind, help =
          match Hashtbl.find_opt kinds name with Some kh -> kh | None -> (Kcounter, "")
        in
        if help <> "" then
          Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" name
             (match kind with Kcounter -> "counter" | Kgauge -> "gauge" | Khistogram -> "histogram"))
      end;
      let labels = labels_of m in
      match value_of m with
      | Counter v -> Buffer.add_string buf (Printf.sprintf "%s%s %Ld\n" name (render_labels labels) v)
      | Gauge v ->
        Buffer.add_string buf (Printf.sprintf "%s%s %s\n" name (render_labels labels) (render_float v))
      | Histogram h ->
        let cum = ref 0L in
        Array.iteri
          (fun i bound ->
            cum := Int64.add !cum h.counts.(i);
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %Ld\n" name
                 (render_labels (labels @ [ ("le", render_float bound) ]))
                 !cum))
          h.bounds;
        let total = Int64.add !cum h.counts.(Array.length h.bounds) in
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket%s %Ld\n" name (render_labels (labels @ [ ("le", "+Inf") ])) total);
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" name (render_labels labels) (render_float h.sum));
        Buffer.add_string buf (Printf.sprintf "%s_count%s %Ld\n" name (render_labels labels) total))
    (sorted_metrics ());
  Buffer.contents buf

let save path =
  let oc = open_out path in
  output_string oc (dump ());
  close_out oc

(* Zero every cell (all domains') without dropping registrations — test
   isolation between alcotest cases that share the process-global registry. *)
let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Mcounter c -> List.iter (fun cell -> cell.n <- 0) !(c.c_cells)
          | Mgauge g -> Atomic.set g.g_v 0.0
          | Mhistogram h ->
            List.iter
              (fun cell ->
                Array.fill cell.hc_counts 0 (Array.length cell.hc_counts) 0;
                cell.hc_sum <- 0.0;
                cell.hc_nobs <- 0)
              !(h.h_cells))
        metrics)
