(** Per-cell wall-clock phase accounting (instrument / compile / execute /
    harness) feeding the overhead-breakdown table of {!Refine_campaign.Report}.

    A collector is always live — the overhead table renders even with
    observability disabled — and costs a couple of [gettimeofday] calls per
    phase.  [add] is thread-safe: worker domains accumulate their samples'
    execute time concurrently.  With observability enabled, [time] also
    emits a {!Span} event per timed phase. *)

type t

val create : unit -> t

val time : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk, accumulating its wall-clock duration under the phase
    name (summing across calls).  Exceptions propagate with their original
    backtrace; the elapsed time is still recorded. *)

val add : t -> string -> float -> unit
(** Accumulate externally measured seconds under a phase name. *)

val get : t -> string -> float
(** Accumulated seconds for a phase; 0 if never recorded. *)

val to_list : t -> (string * float) list
(** All phases in first-recorded order. *)

val total : t -> float
