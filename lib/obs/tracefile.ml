(* Loader for the JSONL span trace (DESIGN.md §17).

   Mirrors the journal's torn-line policy: a worker or coordinator killed
   mid-append can leave one partial final line, so a file that does not
   end in a newline has its last line dropped without a parse attempt
   (a truncated number could otherwise decode to a *wrong* event), and any
   other undecodable line is counted in [skipped] rather than failing the
   load.  The parser below covers exactly the flat JSON that
   [Span.to_json] emits — it is a loader for our own trace format, not a
   general JSON library. *)

type result = {
  events : Span.event list; (* file order *)
  skipped : int; (* undecodable lines dropped *)
  torn : bool; (* a torn final line was dropped *)
}

(* ---- minimal JSON value parser ----------------------------------------- *)

type jv = Jnum of float | Jstr of string | Jbool of bool | Jobj of (string * jv) list

exception Bad

let parse_line line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then line.[!pos] else raise Bad in
  let next () =
    let c = peek () in
    incr pos;
    c
  in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c = if next () <> c then raise Bad in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        (match next () with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 > n then raise Bad;
          let hex = String.sub line !pos 4 in
          pos := !pos + 4;
          let code = try int_of_string ("0x" ^ hex) with _ -> raise Bad in
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_string buf (Printf.sprintf "\\u%04x" code)
        | _ -> raise Bad);
        go ())
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && match line.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    do
      incr pos
    done;
    if !pos = start then raise Bad;
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some f -> f
    | None -> raise Bad
  in
  let parse_lit lit v =
    if !pos + String.length lit <= n && String.sub line !pos (String.length lit) = lit then begin
      pos := !pos + String.length lit;
      v
    end
    else raise Bad
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> Jstr (parse_string ())
    | '{' -> parse_obj ()
    | 't' -> parse_lit "true" (Jbool true)
    | 'f' -> parse_lit "false" (Jbool false)
    | _ -> Jnum (parse_number ())
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then begin
      incr pos;
      Jobj []
    end
    else begin
      let fields = ref [] in
      let rec go () =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match next () with '}' -> () | ',' -> go () | _ -> raise Bad
      in
      go ();
      Jobj (List.rev !fields)
    end
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise Bad;
  v

(* ---- event decoding ---------------------------------------------------- *)

let event_of_json = function
  | Jobj fields ->
    let get k = List.assoc_opt k fields in
    let num k = match get k with Some (Jnum f) -> f | _ -> raise Bad in
    let int k = int_of_float (num k) in
    let str k = match get k with Some (Jstr s) -> s | _ -> raise Bad in
    let opt_str k = match get k with Some (Jstr s) -> s | None -> "" | _ -> raise Bad in
    let opt_int k = match get k with Some (Jnum f) -> int_of_float f | None -> 0 | _ -> raise Bad in
    let bool k = match get k with Some (Jbool b) -> b | _ -> raise Bad in
    let attrs =
      match get "attrs" with
      | None -> []
      | Some (Jobj kvs) ->
        List.map (fun (k, v) -> match v with Jstr s -> (k, s) | _ -> raise Bad) kvs
      | Some _ -> raise Bad
    in
    {
      Span.name = str "name";
      attrs;
      t_start = num "ts";
      dur_s = num "dur_s";
      depth = int "depth";
      domain = int "domain";
      cost = (match get "cost" with Some (Jnum f) -> Int64.of_float f | _ -> raise Bad);
      ok = bool "ok";
      trace = opt_str "trace";
      span_id = opt_int "span";
      parent = opt_int "parent";
    }
  | _ -> raise Bad

let parse_event line = try Some (event_of_json (parse_line line)) with Bad -> None

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  (* torn-final-line policy, mirroring Journal.load_entries *)
  let s, torn =
    if n = 0 || s.[n - 1] = '\n' then (s, false)
    else
      match String.rindex_opt s '\n' with
      | Some i -> (String.sub s 0 (i + 1), true)
      | None -> ("", true)
  in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "") in
  let events = ref [] and skipped = ref 0 in
  List.iter
    (fun l ->
      match parse_event l with Some e -> events := e :: !events | None -> incr skipped)
    lines;
  { events = List.rev !events; skipped = !skipped; torn }
