(* Global observability switch and clock.

   Every recording entry point in this library (counter increments,
   histogram observations, span emission) is gated on [enabled], a plain
   boolean read, so a campaign with observability off pays one predictable
   branch per call site and nothing else — the < 2% overhead budget of
   DESIGN.md §12.  The flag is set once at startup (CLI flag, bench env
   knob, test setup) before any domains are spawned; it is not meant to be
   toggled mid-campaign. *)

let flag = ref false

let enable () = flag := true
let disable () = flag := false
let enabled () = !flag

(* Wall-clock source shared by spans, phase timers and the supervisor's
   cancellation-latency probe. *)
let now = Unix.gettimeofday
