(* Span-based phase tracing (DESIGN.md §12).

   [with_ "regalloc" f] measures the wall-clock extent of [f], attributes
   modeled cost charged via [add_cost] to the innermost open span, and
   emits one JSONL event per closed span to the configured sink — an
   append-only event log next to the campaign's resume journal.  Spans
   nest through a per-domain stack (no cross-domain locking until the
   emit), and a span closed by an exception is still emitted, with
   ["ok":false], before the exception continues unwinding.

   Every closed span also feeds the metrics registry: a per-name duration
   histogram ([refine_span_duration_seconds{span=...}]) and a modeled-cost
   counter, so the Prometheus dump carries the phase breakdown even when
   no trace file was requested. *)

type event = {
  name : string;
  attrs : (string * string) list;
  t_start : float; (* unix epoch seconds *)
  dur_s : float;
  depth : int; (* 0 = top-level *)
  domain : int;
  cost : int64; (* modeled-cost attribution, 0 if none charged *)
  ok : bool; (* false when the span was closed by an exception *)
}

(* ---- JSON rendering --------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json (e : event) =
  let attrs =
    match e.attrs with
    | [] -> ""
    | kvs ->
      Printf.sprintf ",\"attrs\":{%s}"
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)) kvs))
  in
  Printf.sprintf
    "{\"ts\":%.6f,\"dur_s\":%.6f,\"name\":\"%s\",\"depth\":%d,\"domain\":%d,\"cost\":%Ld,\"ok\":%b%s}"
    e.t_start e.dur_s (json_escape e.name) e.depth e.domain e.cost e.ok attrs

(* ---- sink ------------------------------------------------------------- *)

type sink = Null | File of out_channel | Memory of event list ref

let sink = ref Null
let sink_mutex = Mutex.create ()

let close_sink () =
  Mutex.lock sink_mutex;
  (match !sink with File oc -> close_out oc | Null | Memory _ -> ());
  sink := Null;
  Mutex.unlock sink_mutex

let set_file_sink path =
  close_sink ();
  let oc = open_out path in
  Mutex.lock sink_mutex;
  sink := File oc;
  Mutex.unlock sink_mutex

let set_memory_sink () =
  close_sink ();
  Mutex.lock sink_mutex;
  sink := Memory (ref []);
  Mutex.unlock sink_mutex

(* Memory-sink events in chronological (emit) order. *)
let drain () =
  Mutex.lock sink_mutex;
  let evs = match !sink with Memory r -> let e = !r in r := []; List.rev e | _ -> [] in
  Mutex.unlock sink_mutex;
  evs

let duration_buckets = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0; 100.0 |]

let emit_event (e : event) =
  Metrics.observe
    (Metrics.histogram ~help:"wall-clock span durations" ~labels:[ ("span", e.name) ]
       ~buckets:duration_buckets "refine_span_duration_seconds")
    e.dur_s;
  if e.cost <> 0L then
    Metrics.add64
      (Metrics.counter ~help:"modeled cost attributed to spans" ~labels:[ ("span", e.name) ]
         "refine_span_cost_units_total")
      e.cost;
  Mutex.lock sink_mutex;
  (match !sink with
  | Null -> ()
  | File oc ->
    output_string oc (to_json e);
    output_char oc '\n'
  | Memory r -> r := e :: !r);
  Mutex.unlock sink_mutex

(* ---- per-domain span stack -------------------------------------------- *)

type frame = { f_name : string; mutable f_cost : int64 }

let stack_key : frame list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let depth () = List.length !(Domain.DLS.get stack_key)

let add_cost c =
  if Control.enabled () && c <> 0L then
    match !(Domain.DLS.get stack_key) with
    | [] -> ()
    | f :: _ -> f.f_cost <- Int64.add f.f_cost c

(* Emit a leaf event at the current nesting depth without opening a span —
   used by Phase.time, whose duration was measured externally. *)
let emit ?(attrs = []) ?(cost = 0L) ?(ok = true) ~name ~dur_s () =
  if Control.enabled () then
    emit_event
      {
        name;
        attrs;
        t_start = Control.now () -. dur_s;
        dur_s;
        depth = depth ();
        domain = (Domain.self () :> int);
        cost;
        ok;
      }

let with_ ?(attrs = []) ?(cost = 0L) name f =
  if not (Control.enabled ()) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let d = List.length !stack in
    let frame = { f_name = name; f_cost = cost } in
    let t0 = Control.now () in
    stack := frame :: !stack;
    let finish ok =
      (match !stack with
      | f :: rest when f == frame -> stack := rest
      | _ ->
        (* a nested span leaked (impossible through this API, possible if a
           callee tampered with the stack): drop down to our frame *)
        let rec unwind = function
          | f :: rest when f == frame -> rest
          | _ :: rest -> unwind rest
          | [] -> []
        in
        stack := unwind !stack);
      emit_event
        {
          name = frame.f_name;
          attrs;
          t_start = t0;
          dur_s = Control.now () -. t0;
          depth = d;
          domain = (Domain.self () :> int);
          cost = frame.f_cost;
          ok;
        }
    in
    match f () with
    | v ->
      finish true;
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      finish false;
      Printexc.raise_with_backtrace e bt
  end
