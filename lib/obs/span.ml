(* Span-based phase tracing (DESIGN.md §12).

   [with_ "regalloc" f] measures the wall-clock extent of [f], attributes
   modeled cost charged via [add_cost] to the innermost open span, and
   emits one JSONL event per closed span to the configured sink — an
   append-only event log next to the campaign's resume journal.  Spans
   nest through a per-domain stack (no cross-domain locking until the
   emit), and a span closed by an exception is still emitted, with
   ["ok":false], before the exception continues unwinding.

   Every closed span also feeds the metrics registry: a per-name duration
   histogram ([refine_span_duration_seconds{span=...}]) and a modeled-cost
   counter, so the Prometheus dump carries the phase breakdown even when
   no trace file was requested. *)

type event = {
  name : string;
  attrs : (string * string) list;
  t_start : float; (* unix epoch seconds *)
  dur_s : float;
  depth : int; (* 0 = top-level *)
  domain : int;
  cost : int64; (* modeled-cost attribution, 0 if none charged *)
  ok : bool; (* false when the span was closed by an exception *)
  trace : string; (* campaign trace id; "" outside any trace context *)
  span_id : int; (* unique within the trace (pid-composed across processes) *)
  parent : int; (* enclosing span id; 0 = root *)
}

(* Span ids must stay unique when worker events are merged into the
   coordinator's trace, so the pid is folded into the high bits. *)
let id_counter = Atomic.make 0

let fresh_id () =
  let n = Atomic.fetch_and_add id_counter 1 + 1 in
  ((Unix.getpid () land 0x3f_ffff) lsl 28) lor (n land 0xfff_ffff)

(* Process-wide trace context: the coordinator opens one per campaign; a
   worker adopts the (trace, dispatch-span) pair carried by each Assign
   frame, which re-parents everything it emits under the coordinator's
   per-chunk span. *)
let ctx_trace = ref ""
let ctx_parent = ref 0

let set_context ?(trace = "") ?(parent = 0) () =
  ctx_trace := trace;
  ctx_parent := parent

let clear_context () =
  ctx_trace := "";
  ctx_parent := 0

(* ---- JSON rendering --------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json (e : event) =
  let attrs =
    match e.attrs with
    | [] -> ""
    | kvs ->
      Printf.sprintf ",\"attrs\":{%s}"
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)) kvs))
  in
  let trace = if e.trace = "" then "" else Printf.sprintf ",\"trace\":\"%s\"" (json_escape e.trace) in
  Printf.sprintf
    "{\"ts\":%.6f,\"dur_s\":%.6f,\"name\":\"%s\",\"depth\":%d,\"domain\":%d,\"span\":%d,\"parent\":%d,\"cost\":%Ld,\"ok\":%b%s%s}"
    e.t_start e.dur_s (json_escape e.name) e.depth e.domain e.span_id e.parent e.cost e.ok trace attrs

(* ---- sink ------------------------------------------------------------- *)

type sink = Null | File of out_channel | Memory of event list ref

let sink = ref Null
let sink_mutex = Mutex.create ()

let close_sink () =
  Mutex.lock sink_mutex;
  (match !sink with File oc -> close_out oc | Null | Memory _ -> ());
  sink := Null;
  Mutex.unlock sink_mutex

let set_file_sink path =
  close_sink ();
  let oc = open_out path in
  Mutex.lock sink_mutex;
  sink := File oc;
  Mutex.unlock sink_mutex

let set_memory_sink () =
  close_sink ();
  Mutex.lock sink_mutex;
  sink := Memory (ref []);
  Mutex.unlock sink_mutex

(* Memory-sink events in chronological (emit) order. *)
let drain () =
  Mutex.lock sink_mutex;
  let evs = match !sink with Memory r -> let e = !r in r := []; List.rev e | _ -> [] in
  Mutex.unlock sink_mutex;
  evs

let sink_active () = match !sink with Null -> false | File _ | Memory _ -> true

(* Buffered trace tail must survive abnormal exits (satellite: flush from
   at_exit); a double close is safe, so normal paths still close eagerly. *)
let () = at_exit close_sink

let duration_buckets = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0; 100.0 |]

let write_sink (e : event) =
  Mutex.lock sink_mutex;
  (match !sink with
  | Null -> ()
  | File oc ->
    output_string oc (to_json e);
    output_char oc '\n'
  | Memory r -> r := e :: !r);
  Mutex.unlock sink_mutex

(* Forward an event produced by another process (a worker's Trace_batch)
   into the local sink.  Sink only: the worker already counted the span in
   its own registry, and that registry arrives via Metrics_delta — feeding
   the metrics here would double count. *)
let forward (e : event) = if Control.enabled () then write_sink e

let emit_event (e : event) =
  Metrics.observe
    (Metrics.histogram ~help:"wall-clock span durations" ~labels:[ ("span", e.name) ]
       ~buckets:duration_buckets "refine_span_duration_seconds")
    e.dur_s;
  if e.cost <> 0L then
    Metrics.add64
      (Metrics.counter ~help:"modeled cost attributed to spans" ~labels:[ ("span", e.name) ]
         "refine_span_cost_units_total")
      e.cost;
  write_sink e

(* ---- per-domain span stack -------------------------------------------- *)

type frame = { f_name : string; f_id : int; mutable f_cost : int64 }

let stack_key : frame list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let depth () = List.length !(Domain.DLS.get stack_key)

let add_cost c =
  if Control.enabled () && c <> 0L then
    match !(Domain.DLS.get stack_key) with
    | [] -> ()
    | f :: _ -> f.f_cost <- Int64.add f.f_cost c

(* Parent for a new span or leaf: the innermost open frame on this domain,
   falling back to the process trace context (the coordinator's dispatch
   span inside a worker, 0 elsewhere). *)
let current_parent () =
  match !(Domain.DLS.get stack_key) with [] -> !ctx_parent | f :: _ -> f.f_id

(* Emit a leaf event at the current nesting depth without opening a span —
   used by Phase.time, whose duration was measured externally.  [span_id]
   lets a caller pre-allocate the id (the coordinator hands it to workers
   in Assign before the chunk span is emitted). *)
let emit ?(attrs = []) ?(cost = 0L) ?(ok = true) ?span_id ~name ~dur_s () =
  if Control.enabled () then
    emit_event
      {
        name;
        attrs;
        t_start = Control.now () -. dur_s;
        dur_s;
        depth = depth ();
        domain = (Domain.self () :> int);
        cost;
        ok;
        trace = !ctx_trace;
        span_id = (match span_id with Some id -> id | None -> fresh_id ());
        parent = current_parent ();
      }

let with_ ?(attrs = []) ?(cost = 0L) name f =
  if not (Control.enabled ()) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let d = List.length !stack in
    let parent = match !stack with [] -> !ctx_parent | f :: _ -> f.f_id in
    let frame = { f_name = name; f_id = fresh_id (); f_cost = cost } in
    let t0 = Control.now () in
    stack := frame :: !stack;
    let finish ok =
      (match !stack with
      | f :: rest when f == frame -> stack := rest
      | _ ->
        (* a nested span leaked (impossible through this API, possible if a
           callee tampered with the stack): drop down to our frame *)
        let rec unwind = function
          | f :: rest when f == frame -> rest
          | _ :: rest -> unwind rest
          | [] -> []
        in
        stack := unwind !stack);
      emit_event
        {
          name = frame.f_name;
          attrs;
          t_start = t0;
          dur_s = Control.now () -. t0;
          depth = d;
          domain = (Domain.self () :> int);
          cost = frame.f_cost;
          ok;
          trace = !ctx_trace;
          span_id = frame.f_id;
          parent;
        }
    in
    match f () with
    | v ->
      finish true;
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      finish false;
      Printexc.raise_with_backtrace e bt
  end
