(* Per-cell wall-clock phase accounting for the overhead-breakdown report
   (the paper's Figure 8/9 shape: instrument / compile / execute / harness
   columns per tool).

   Unlike the metrics registry and the span sink, a [Phase.t] collector is
   *always* live: the overhead table must render even when observability
   is off, and its cost is a couple of [gettimeofday] calls per phase.
   [add] is mutex-protected because injection runs accumulate their
   "execute" time from several worker domains at once; everything else in
   a cell (frontend, instrumentation, codegen) runs on the calling domain.

   When observability *is* enabled, [time] additionally emits a span event
   so the trace log carries the same phase boundaries the table reports. *)

type t = {
  mutex : Mutex.t;
  mutable phases : (string * float) list; (* insertion order of first add *)
}

let create () = { mutex = Mutex.create (); phases = [] }

let add t name seconds =
  Mutex.lock t.mutex;
  (if List.mem_assoc name t.phases then
     t.phases <- List.map (fun (n, s) -> if n = name then (n, s +. seconds) else (n, s)) t.phases
   else t.phases <- t.phases @ [ (name, seconds) ]);
  Mutex.unlock t.mutex

let time t name f =
  let t0 = Control.now () in
  match f () with
  | v ->
    let dt = Control.now () -. t0 in
    add t name dt;
    Span.emit ~name ~dur_s:dt ();
    v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    let dt = Control.now () -. t0 in
    add t name dt;
    Span.emit ~ok:false ~name ~dur_s:dt ();
    Printexc.raise_with_backtrace e bt

let get t name =
  Mutex.lock t.mutex;
  let v = Option.value ~default:0.0 (List.assoc_opt name t.phases) in
  Mutex.unlock t.mutex;
  v

let to_list t =
  Mutex.lock t.mutex;
  let l = t.phases in
  Mutex.unlock t.mutex;
  l

let total t = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 (to_list t)
