(** Lock-free-per-domain metrics registry (DESIGN.md §12).

    Counters, gauges and fixed-bucket histograms whose hot-path recording
    is a domain-local mutable write — no lock, no atomic RMW — merged
    across OCaml 5 domains only at report time.  All recording is gated on
    {!Control.enabled}; with observability off every entry point is a
    single boolean branch.

    Merged totals are schedule-independent: however samples were
    distributed over domains, the report-time sum is the same (pinned by
    [test_obs]'s cross-domain determinism property). *)

type labels = (string * string) list

type counter
type gauge
type histogram

val counter : ?help:string -> ?labels:labels -> string -> counter
(** Idempotent: the same (name, labels) pair always returns the same
    underlying metric.  Raises [Invalid_argument] if [name] is already
    registered with a different metric kind. *)

val gauge : ?help:string -> ?labels:labels -> string -> gauge

val histogram : ?help:string -> ?labels:labels -> buckets:float array -> string -> histogram
(** [buckets] are strictly increasing upper bounds; an implicit +Inf
    bucket is always appended.  Raises [Invalid_argument] on an empty or
    non-increasing bucket array. *)

val inc : counter -> unit
val add : counter -> int -> unit
val add64 : counter -> int64 -> unit
val set : gauge -> float -> unit

val observe : histogram -> float -> unit
(** Prometheus [le] semantics: the observation lands in the first bucket
    whose upper bound is >= the value, or in +Inf above every bound. *)

val bucket_index : float array -> float -> int
(** Exposed for the bucket-edge tests: index of the bucket [observe]
    would record into ([Array.length bounds] = the +Inf slot). *)

(** {1 Report-time merged reads} *)

type hist_value = {
  bounds : float array;
  counts : int64 array;  (** per-bucket, not cumulative; last slot is +Inf *)
  sum : float;
  count : int64;
}

type value = Counter of int64 | Gauge of float | Histogram of hist_value

val snapshot : unit -> (string * labels * value) list
(** Every registered metric, merged across domains, sorted by (name,
    labels) — deterministic output for a deterministic set of updates. *)

val find : string -> labels -> value option

(** {1 Fleet delta export / merge (DESIGN.md §17)}

    Sharded campaigns ship each worker's registry to the coordinator as
    periodic *cumulative* snapshots.  {!merge_snapshot} applies only the
    elementwise non-negative difference against the last snapshot applied
    from the same source, so the merge is commutative and idempotent over
    any interleaving of (possibly replayed) snapshots — the merged
    registry converges on the union of the fleet. *)

type export_item = {
  x_name : string;
  x_labels : labels;
  x_help : string;  (** carried so the receiver can register unseen metrics *)
  x_value : value;
}

val export : unit -> export_item list
(** Full cumulative snapshot of the registry with registration metadata,
    sorted like {!snapshot}. *)

type merge_state
(** Last-applied values for one remote source.  Allocate one per source
    (e.g. per worker incarnation) with {!merge_source}. *)

val merge_source : unit -> merge_state

val merge_snapshot : merge_state -> export_item list -> unit
(** Merge one cumulative snapshot from the source tracked by [state] into
    the local registry, registering metrics not seen locally.  Items that
    clash with a local registration (kind or histogram bounds) are
    dropped.  Bypasses the {!Control.enabled} gate. *)

val dump : unit -> string
(** Prometheus text exposition format ([# TYPE] / [# HELP] headers,
    cumulative [_bucket{le=...}] / [_sum] / [_count] histogram series). *)

val save : string -> unit
(** [save path] writes {!dump} to [path]. *)

val reset : unit -> unit
(** Zero every cell without dropping registrations (test isolation). *)
