(* Correspondence map between a REFINE-instrumented image and its golden
   (uninstrumented) twin — the metadata that lets the executor detach a
   sample to the golden snapshot once the single injection has retired
   (DESIGN.md §20).

   The REFINE pass (paper §4.2) splices a fixed control-flow pattern after
   every candidate instruction and touches nothing else, so the original
   instruction stream is recoverable from the instrumented image alone:
   every splice is anchored by its [Mcallext "fi_sel_instr"] — a name the
   application can never call (layout resolves application calls to
   [Mcalli], and MinC sources cannot name the FI runtime library) — and
   the PreFI/PostFI shape around the anchor is rigid.  [build] parses the
   splices, derives the instrumented-pc -> golden-pc rank map, and then
   cross-validates the extraction instruction-by-instruction against the
   actual golden image (branch targets translated through the map), so a
   wrong parse can never produce a map: it produces [None] and the caller
   falls back to branch-patching.

   The [cost_w] table carries the attached cost model onto the golden
   image: each candidate's golden pc is weighted with the full modeled
   cost of its non-firing splice (interior instructions plus the
   [fi_sel_instr] library call), so a detached run charges bit-identical
   modeled cost at every original-instruction boundary — the invariant
   that keeps fixed-seed outcome tables identical with detach on or off. *)

module M = Refine_mir.Minstr
module R = Refine_mir.Reg

type splice = {
  sp_cand : int;  (* pc of the candidate instruction (original) *)
  sp_start : int;  (* first spliced pc: the PreFI [Mpush r0] *)
  sp_end : int;  (* last spliced pc: the PostFI [Mpop r0] *)
  sp_cost : int;  (* modeled cost of the non-firing path through the splice *)
}

type t = {
  rank_of_pc : int array;
  next_rank : int array;
  cost_w : int array;
  splices : splice list;
}

(* Parse every splice of [code], anchored at [Mcallext "fi_sel_instr"].
   Raises [Not_found] on any shape violation — the caller turns that into
   the overlay fallback. *)
let parse_splices ~lib_call_cost (code : M.t array) : splice list =
  let n = Array.length code in
  let r0 = R.gpr 0 in
  let out = ref [] in
  let last_end = ref (-1) in
  for a = 0 to n - 1 do
    match code.(a) with
    | M.Mcallext "fi_sel_instr" ->
      let save_flags = a >= 1 && code.(a - 1) = M.Mpushf in
      let sp_start = if save_flags then a - 2 else a - 1 in
      if sp_start < 1 then raise Not_found;
      if code.(sp_start) <> M.Mpush r0 then raise Not_found;
      (* candidate must be an original instruction, outside any prior splice *)
      if sp_start - 1 <= !last_end then raise Not_found;
      if a + 3 >= n then raise Not_found;
      if code.(a + 1) <> M.Mcmp (R.ret_gpr, M.Imm 0L) then raise Not_found;
      let post =
        match code.(a + 2) with M.Mjcc (M.CEq, p) -> p | _ -> raise Not_found
      in
      (match code.(a + 3) with
      | M.Mjmp setup when setup = a + 4 -> ()
      | _ -> raise Not_found);
      if post <= a + 3 then raise Not_found;
      let sp_end =
        if save_flags then begin
          if post + 1 >= n then raise Not_found;
          if code.(post) <> M.Mpopf || code.(post + 1) <> M.Mpop r0 then raise Not_found;
          post + 1
        end
        else begin
          if post >= n then raise Not_found;
          if code.(post) <> M.Mpop r0 then raise Not_found;
          post
        end
      in
      (* the splice is always followed by more code in the same function
         (a candidate is never a terminator, so at least the block's own
         terminator comes after the PostFI restores) *)
      if sp_end + 1 >= n then raise Not_found;
      (* non-firing path: push r0 [, pushf], callext, cmp, jcc, popf?, pop
         r0 — 7 (or 5) interior instructions plus the library call *)
      let interior = if save_flags then 7 else 5 in
      out :=
        { sp_cand = sp_start - 1; sp_start; sp_end; sp_cost = interior + lib_call_cost }
        :: !out;
      last_end := sp_end
    | _ -> ()
  done;
  List.rev !out

(* Translate one instrumented-image instruction into golden coordinates:
   branch/call targets go through [rank]; everything else is unchanged.
   A target inside a splice has no golden rank — impossible for genuine
   original code (splice labels are fresh and only intra-splice), so it
   fails the validation. *)
let translate (rank : int array) (i : M.t) : M.t option =
  let tr l = if l >= 0 && l < Array.length rank && rank.(l) >= 0 then Some rank.(l) else None in
  match i with
  | M.Mjmp l -> ( match tr l with Some l' -> Some (M.Mjmp l') | None -> None)
  | M.Mjcc (cc, l) -> ( match tr l with Some l' -> Some (M.Mjcc (cc, l')) | None -> None)
  | M.Mcalli l -> ( match tr l with Some l' -> Some (M.Mcalli l') | None -> None)
  | i -> Some i

(* A call-site candidate poisons map mode: attached, the splice after an
   [Mcalli] executes when the callee RETURNS, so its cost lands on the
   return edge — but the golden image can only carry the weight on the
   call instruction itself, which would charge it at call time.  Any run
   ending (trap, timeout, [exit] from a callee) while such a frame is
   open, and any frame already open at handoff, would then diverge in
   modeled cost.  The branch-patched fallback keeps the splice head at its
   original pc, so the returned-to [Mjmp] pays the cost exactly where the
   attached run pays it — [map_eligible] steers those images there. *)
let cand_is_call (code : M.t array) (s : splice) =
  match code.(s.sp_cand) with M.Mcalli _ | M.Mcall _ -> true | _ -> false

let map_eligible (instr : Layout.image) : bool =
  let code = instr.Layout.code in
  match parse_splices ~lib_call_cost:0 code with
  | exception Not_found -> false
  | spl -> not (List.exists (cand_is_call code) spl)

let build ~lib_call_cost (instr : Layout.image) (golden : Layout.image) : t option =
  let icode = instr.Layout.code and gcode = golden.Layout.code in
  let n = Array.length icode and gn = Array.length gcode in
  match parse_splices ~lib_call_cost icode with
  | exception Not_found -> None
  | spl when List.exists (cand_is_call icode) spl -> None
  | spl ->
    let in_splice = Array.make n false in
    List.iter
      (fun s ->
        for pc = s.sp_start to s.sp_end do
          in_splice.(pc) <- true
        done)
      spl;
    let rank_of_pc = Array.make n (-1) in
    let g = ref 0 in
    for pc = 0 to n - 1 do
      if not in_splice.(pc) then begin
        rank_of_pc.(pc) <- !g;
        incr g
      end
    done;
    if !g <> gn then None
    else if
      (* memory layout must be shared for the state blit to be sound *)
      instr.Layout.heap_base <> golden.Layout.heap_base
      || rank_of_pc.(instr.Layout.entry) <> golden.Layout.entry
    then None
    else begin
      (* golden validation: the extracted original stream, with branch
         targets translated, must equal the golden image exactly *)
      let ok = ref true in
      for pc = 0 to n - 1 do
        if !ok && rank_of_pc.(pc) >= 0 then
          match translate rank_of_pc icode.(pc) with
          | Some i' -> if i' <> gcode.(rank_of_pc.(pc)) then ok := false
          | None -> ok := false
      done;
      if not !ok then None
      else begin
        let next_rank = Array.make (n + 1) (-1) in
        for pc = n - 1 downto 0 do
          next_rank.(pc) <- (if rank_of_pc.(pc) >= 0 then rank_of_pc.(pc) else next_rank.(pc + 1))
        done;
        let cost_w = Array.make gn 1 in
        List.iter (fun s -> cost_w.(rank_of_pc.(s.sp_cand)) <- 1 + s.sp_cost) spl;
        Some { rank_of_pc; next_rank; cost_w; splices = spl }
      end
    end

(* Overlay fallback: a copy of the instrumented image whose splice heads
   are branch-patched to fall through ([Mjmp] over the splice), with the
   skipped splice's modeled cost carried as the jump's weight.  Same code
   coordinates as the instrumented image, so a handoff needs no pc or
   return-address translation and is safe even from inside a splice (the
   interior instructions are kept at their original pcs with weight 1). *)
let patch_refine ~lib_call_cost (instr : Layout.image) : (Layout.image * t) option =
  let icode = instr.Layout.code in
  let n = Array.length icode in
  match parse_splices ~lib_call_cost icode with
  | exception Not_found -> None
  | spl ->
    let code = Array.copy icode in
    let cost_w = Array.make n 1 in
    (* shared coordinates: every pc outside a splice carries over as
       itself.  A pc *inside* a splice (the handoff poll can fire while a
       partially-executed splice's saves are still on the stack) has no
       safe counterpart on the patched copy — the head branch would skip
       the unexecuted remainder — so its rank is [-1] and the handoff
       drains attached to the next boundary, exactly like map mode. *)
    let rank_of_pc = Array.init n (fun i -> i) in
    let next_rank = Array.init (n + 1) (fun i -> if i < n then i else -1) in
    List.iter
      (fun s ->
        code.(s.sp_start) <- M.Mjmp (s.sp_end + 1);
        (* the candidate still retires separately at weight 1, so the jump
           carries exactly the skipped splice's cost — not 1 + sp_cost *)
        cost_w.(s.sp_start) <- s.sp_cost;
        for pc = s.sp_start + 1 to s.sp_end do
          rank_of_pc.(pc) <- -1
        done)
      spl;
    Some ({ instr with Layout.code }, { rank_of_pc; next_rank; cost_w; splices = spl })

(* LLFI variant of the fallback: replace each instrumented call by a
   substitute instruction (the post-injection no-op semantics of the
   library call), weighted with the call's modeled cost.  [table] maps the
   extern name to (replacement, extra modeled cost). *)
let patch_calls ~(table : (string * M.t * int) list) (instr : Layout.image) :
    Layout.image * int array =
  let icode = instr.Layout.code in
  let n = Array.length icode in
  let code = Array.copy icode in
  let cost_w = Array.make n 1 in
  for pc = 0 to n - 1 do
    match icode.(pc) with
    | M.Mcallext name -> (
      match List.find_opt (fun (nm, _, _) -> nm = name) table with
      | Some (_, repl, extra) ->
        code.(pc) <- repl;
        cost_w.(pc) <- 1 + extra
      | None -> ())
    | _ -> ()
  done;
  ({ instr with Layout.code }, cost_w)
