(** Final code emission: concatenates every function's blocks in layout
    order and resolves labels/calls to absolute code indices — the paper's
    "Assembly / Object Emitter" stage. *)

type image = {
  code : Refine_mir.Minstr.t array;  (** jump targets are absolute indices *)
  entry : int;  (** address of main's first instruction *)
  func_of_pc : string array;  (** owning function, per instruction *)
  func_starts : (string * int) list;
  globals : Refine_ir.Ir.global list;
  global_addr : string -> int;
  heap_base : int;
  ext_names : string array;  (** unique extern names called by the image *)
  ext_slot_of_pc : int array;
      (** per pc: index into [ext_names] when the instruction is [Mcallext],
          else -1.  The simulator uses this to resolve extern dispatch once
          per engine instead of hashing the name on every call; -1 (e.g.
          for code arrays mutated after layout) falls back to the by-name
          path. *)
  class_of_pc : int array;
      (** per pc: the instruction's [Minstr.iclass_index], precomputed for
          the executor's profiling branch.  Exact even under opcode
          corruption, which only substitutes same-class opcodes. *)
}

exception Layout_error of string

val build : globals:Refine_ir.Ir.global list -> Refine_mir.Mfunc.t list -> image
(** Raises {!Layout_error} on unresolved labels, unknown callees or a
    missing [main]. *)
