(* Final code emission: concatenates every function's blocks in layout
   order, resolves labels to absolute code indices and produces the
   executable image the machine simulator runs.  The paper's "Assembly /
   Object Emitter" stage. *)

module M = Refine_mir.Minstr
module F = Refine_mir.Mfunc

type image = {
  code : M.t array;
  entry : int; (* address of main's first instruction *)
  func_of_pc : string array; (* owning function, per instruction *)
  func_starts : (string * int) list;
  globals : Refine_ir.Ir.global list;
  global_addr : string -> int;
  heap_base : int;
  ext_names : string array; (* unique extern names called by the image *)
  ext_slot_of_pc : int array;
      (* per pc: index into [ext_names] when code.(pc) is Mcallext, else -1
         — lets the simulator resolve extern dispatch once per engine
         instead of hashing the name on every call *)
  class_of_pc : int array;
      (* per pc: [Minstr.iclass_index (Minstr.classify code.(pc))],
         precomputed so the executor's profiling branch is one table read
         instead of two variant matches per instruction.  Stays exact under
         opcode corruption: [Opcode_fi.alternatives] only substitutes
         same-shape opcodes, which never change the instruction class *)
}

exception Layout_error of string

let build ~(globals : Refine_ir.Ir.global list) (funcs : F.t list) : image =
  let global_addr, heap_base = Refine_ir.Memlayout.place_globals globals in
  (* first pass: function start addresses *)
  let starts = Hashtbl.create 16 in
  let total = ref 0 in
  let func_starts =
    List.map
      (fun (mf : F.t) ->
        let s = !total in
        Hashtbl.replace starts mf.F.mname s;
        total := !total + F.instr_count mf;
        (mf.F.mname, s))
      funcs
  in
  let code = Array.make (max 1 !total) M.Mhalt in
  let func_of_pc = Array.make (max 1 !total) "" in
  let ext_slot_of_pc = Array.make (max 1 !total) (-1) in
  let ext_slots = Hashtbl.create 8 in
  let ext_names_rev = ref [] in
  let ext_slot name =
    match Hashtbl.find_opt ext_slots name with
    | Some k -> k
    | None ->
      let k = Hashtbl.length ext_slots in
      Hashtbl.replace ext_slots name k;
      ext_names_rev := name :: !ext_names_rev;
      k
  in
  List.iter
    (fun (mf : F.t) ->
      (* label -> absolute address within this function *)
      let label_addr = Hashtbl.create 16 in
      let base = Hashtbl.find starts mf.F.mname in
      let pos = ref base in
      List.iter
        (fun (b : F.mblock) ->
          Hashtbl.replace label_addr b.mlbl !pos;
          pos := !pos + List.length b.code)
        mf.F.blocks;
      let resolve l =
        match Hashtbl.find_opt label_addr l with
        | Some a -> a
        | None -> raise (Layout_error (Printf.sprintf "%s: unresolved label L%d" mf.F.mname l))
      in
      let pos = ref base in
      List.iter
        (fun (b : F.mblock) ->
          List.iter
            (fun i ->
              let resolved =
                match i with
                | M.Mjmp l -> M.Mjmp (resolve l)
                | M.Mjcc (c, l) -> M.Mjcc (c, resolve l)
                | M.Mcall name -> (
                  match Hashtbl.find_opt starts name with
                  | Some a -> M.Mcalli a
                  | None -> raise (Layout_error ("call to unknown function " ^ name)))
                | other -> other
              in
              (match resolved with
              | M.Mcallext name -> ext_slot_of_pc.(!pos) <- ext_slot name
              | _ -> ());
              code.(!pos) <- resolved;
              func_of_pc.(!pos) <- mf.F.mname;
              incr pos)
            b.code)
        mf.F.blocks)
    funcs;
  let entry =
    match Hashtbl.find_opt starts "main" with
    | Some a -> a
    | None -> raise (Layout_error "no main function")
  in
  {
    code;
    entry;
    func_of_pc;
    func_starts;
    globals;
    global_addr;
    heap_base;
    ext_names = Array.of_list (List.rev !ext_names_rev);
    ext_slot_of_pc;
    class_of_pc = Array.map (fun i -> M.iclass_index (M.classify i)) code;
  }
