(** Correspondence map between a REFINE-instrumented image and its golden
    (uninstrumented) twin, plus the branch-patched fallback images — the
    backend metadata behind post-injection detach (DESIGN.md §20).

    [build] parses the FI splices out of the instrumented image (each is
    anchored by its [Mcallext "fi_sel_instr"], a name application code can
    never call) and cross-validates the extracted original stream against
    the actual golden image with branch targets translated, so a wrong
    parse yields [None] — never a wrong map. *)

type splice = {
  sp_cand : int;  (** pc of the candidate (original) instruction *)
  sp_start : int;  (** first spliced pc: the PreFI [Mpush r0] *)
  sp_end : int;  (** last spliced pc: the PostFI [Mpop r0] *)
  sp_cost : int;  (** modeled cost of the non-firing path through the splice *)
}

type t = {
  rank_of_pc : int array;
      (** instrumented pc -> golden pc; [-1] for spliced (inserted) pcs *)
  next_rank : int array;
      (** length [n+1]: golden pc of the first original instruction at or
          after each instrumented pc ([-1] past the end) — return-address
          translation for frames whose call site was a candidate *)
  cost_w : int array;
      (** per golden pc: attached-equivalent modeled cost weight (1 for
          plain instructions; 1 + the non-firing splice cost at candidate
          pcs), fed to [Exec.decode]'s [cost_of] *)
  splices : splice list;
}

val map_eligible : Layout.image -> bool
(** Cheap pre-check (no golden build needed): the splices parse and no
    candidate is a call instruction.  A call-site candidate's splice is
    paid on the return edge attached, which the golden image cannot
    model exactly — such images must use {!patch_refine} instead. *)

val build : lib_call_cost:int -> Layout.image -> Layout.image -> t option
(** [build ~lib_call_cost instrumented golden] parses and validates the
    correspondence.  [lib_call_cost] is the modeled cost of one
    [fi_sel_instr] call (the caller passes [Fi_cost.refine_lib_call]).
    [None] when the splice shape does not parse, any candidate is a call
    instruction (see {!map_eligible}) or the extracted stream does not
    match [golden] — callers fall back to {!patch_refine}. *)

val patch_refine : lib_call_cost:int -> Layout.image -> (Layout.image * t) option
(** Overlay fallback: a copy of the instrumented image with every splice
    head branch-patched to fall through, plus the correspondence metadata
    that keeps the handoff attached-identical.  Same code coordinates as
    the instrumented image, so [rank_of_pc] and [next_rank] are the
    identity — except *inside* a splice, where the rank is [-1]: a poll
    can fire mid-splice, and carrying such a pc onto the patched copy
    would skip the splice's unexecuted remainder, so the handoff drains
    attached to the next boundary first.  [cost_w] weights each patched
    splice-head branch with the skipped splice's modeled cost.  [None]
    when the splices do not parse. *)

val patch_calls :
  table:(string * Refine_mir.Minstr.t * int) list ->
  Layout.image ->
  Layout.image * int array
(** LLFI variant: replace each [Mcallext name] whose [name] appears in
    [table] by its replacement instruction, carrying the call's modeled
    extra cost as the slot's weight. *)
