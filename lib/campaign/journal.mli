(** Checkpoint/resume journal for fault-injection campaigns.

    Append-only, line-oriented log of every resolved
    (program, tool, sample-index) experiment.  Every flush rewrites the
    file through an atomic tmp-rename, so a crash at any instant leaves
    either the previous complete journal or the new one — never a torn
    file.  Combined with per-sample deterministic PRNG splits
    ({!Experiment.run_cell}), resuming from a journal is bit-identical to
    an uninterrupted run with the same seed. *)

type entry = {
  program : string;
  tool : string;  (** {!Refine_core.Tool.kind_name} *)
  sample : int;  (** 0-based sample index within the cell *)
  outcome : Refine_core.Fault.outcome;
  cost : int64;  (** modeled cost of the run (budget burned, for tool errors) *)
  attempts : int;  (** attempts used to resolve the sample *)
}

type t

val create : ?resume:bool -> string -> t
(** [create path] opens a journal at [path].  With [~resume:true] existing
    entries are loaded (unparseable lines are skipped, costing only their
    re-run); otherwise the journal starts empty.  The file is immediately
    (re)written in canonical form. *)

val record : t -> entry -> unit
(** Append one entry and flush atomically.  Safe to call from any domain. *)

val entries : t -> entry list
(** All entries, oldest first. *)

val length : t -> int

val completed : t -> program:string -> tool:string -> (int, entry) Hashtbl.t
(** The resolved samples of one (program, tool) cell, keyed by sample
    index (latest entry wins on duplicates). *)
