(** Checkpoint/resume journal for fault-injection campaigns.

    Append-only, line-oriented log of every resolved
    (program, tool, sample-index) experiment.  Every flush rewrites the
    file through an atomic tmp-rename, so a crash at any instant leaves
    either the previous complete journal or the new one — never a torn
    file.  Combined with per-sample deterministic PRNG splits
    ({!Experiment.run_cell}), resuming from a journal is bit-identical to
    an uninterrupted run with the same seed. *)

type entry = {
  program : string;
  tool : string;  (** {!Refine_core.Tool.kind_name} *)
  sample : int;  (** 0-based sample index within the cell *)
  outcome : Refine_core.Fault.outcome;
  cost : int64;  (** modeled cost of the run (budget burned, for tool errors) *)
  attempts : int;  (** attempts used to resolve the sample *)
}

type t

val create : ?resume:bool -> string -> t
(** [create path] opens a journal at [path].  With [~resume:true] existing
    entries are loaded (unparseable lines — e.g. an unknown outcome name
    written by a newer version — are skipped with a warning and counted in
    {!skipped}, costing only their re-run); otherwise the journal starts
    empty.  The file is immediately (re)written in canonical form. *)

val record : t -> entry -> unit
(** Append one entry and flush atomically.  Safe to call from any domain. *)

val record_quarantine : t -> program:string -> tool:string -> reason:string -> unit
(** Journal a quarantined cell (DESIGN.md §13).  Idempotent per
    (program, tool).  Written as a tagged line an older loader's tolerant
    parse skips silently; [reason] is sanitized to one field. *)

val quarantine_reason : t -> program:string -> tool:string -> string option
(** The journaled quarantine reason of a cell, if any — a resuming
    campaign short-circuits such cells without re-preparing them. *)

val quarantines : t -> (string * string * string) list
(** All journaled [(program, tool, reason)] quarantines, oldest first. *)

val skipped : t -> int
(** Undecodable lines dropped while loading with [~resume:true]. *)

val note_skipped_metric : t -> unit
(** Mirror {!skipped} into [refine_journal_skipped_lines_total] (call once
    per campaign, after observability is enabled). *)

val entries : t -> entry list
(** All entries, oldest first. *)

val length : t -> int

val completed : t -> program:string -> tool:string -> (int, entry) Hashtbl.t
(** The resolved samples of one (program, tool) cell, keyed by sample
    index (latest entry wins on duplicates). *)
