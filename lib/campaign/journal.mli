(** Checkpoint/resume journal for fault-injection campaigns.

    Append-only, line-oriented log of every resolved
    (program, tool, sample-index) experiment.  {!create} writes the
    canonical file through an atomic tmp-rename; each {!record} then
    appends one flushed line.  A kill mid-append leaves at most one torn
    final line, which the loader drops (detected by the missing trailing
    newline, never parsed) and counts in {!skipped} — resume continues
    from the previous record.  Combined with per-sample deterministic PRNG
    splits ({!Experiment.run_cell}), resuming from a journal is
    bit-identical to an uninterrupted run with the same seed. *)

type entry = {
  program : string;
  tool : string;  (** {!Refine_core.Tool.kind_name} *)
  model : string;
      (** {!Refine_core.Fault.string_of_model}; entries loaded from pre-v2
          journals default to ["reg"] (the paper's single-bit register
          model) *)
  sample : int;  (** 0-based sample index within the cell *)
  outcome : Refine_core.Fault.outcome;
  cost : int64;  (** modeled cost of the run (budget burned, for tool errors) *)
  attempts : int;  (** attempts used to resolve the sample *)
}

type t

val create : ?resume:bool -> string -> t
(** [create path] opens a journal at [path].  With [~resume:true] existing
    entries are loaded (unparseable lines — e.g. an unknown outcome name
    written by a newer version — are skipped with a warning and counted in
    {!skipped}, costing only their re-run); otherwise the journal starts
    empty.  The file is immediately (re)written in canonical form. *)

val record : t -> entry -> unit
(** Append one entry and flush the line.  Safe to call from any domain. *)

val close : t -> unit
(** Close the append channel, if open.  Records after [close] reopen it. *)

val record_quarantine : t -> program:string -> tool:string -> reason:string -> unit
(** Journal a quarantined cell (DESIGN.md §13).  Idempotent per
    (program, tool).  Written as a tagged line an older loader's tolerant
    parse skips silently; [reason] is sanitized to one field. *)

val quarantine_reason : t -> program:string -> tool:string -> string option
(** The journaled quarantine reason of a cell, if any — a resuming
    campaign short-circuits such cells without re-preparing them. *)

val quarantines : t -> (string * string * string) list
(** All journaled [(program, tool, reason)] quarantines, oldest first. *)

val skipped : t -> int
(** Undecodable lines dropped while loading with [~resume:true]. *)

val note_skipped_metric : t -> unit
(** Mirror {!skipped} into [refine_journal_skipped_lines_total] (call once
    per campaign, after observability is enabled). *)

val entries : t -> entry list
(** All entries, oldest first. *)

val length : t -> int

val completed :
  ?model:string -> t -> program:string -> tool:string -> (int, entry) Hashtbl.t
(** The resolved samples of one (program, tool, fault model) cell, keyed
    by sample index (latest entry wins on duplicates).  [model] defaults
    to ["reg"], which also matches every pre-v2 entry. *)

type sink = {
  resolved : program:string -> tool:string -> model:string -> (int, entry) Hashtbl.t;
      (** samples already resolved elsewhere, to load instead of re-run *)
  push : entry -> unit;  (** checkpoint one newly resolved sample *)
  push_quarantine : program:string -> tool:string -> reason:string -> unit;
  find_quarantine : program:string -> tool:string -> string option;
      (** a known quarantine lets the campaign skip re-preparing the cell *)
}
(** The journal as an interface: {!Experiment.run_cell} records through a
    sink, so checkpoints can go to a local file ({!sink}) or be streamed
    as wire frames to a shard coordinator ({!Worker}, DESIGN.md §16)
    without the campaign engine knowing the difference. *)

val sink : t -> sink
(** The file-backed sink over [t] — {!completed} / {!record} /
    {!record_quarantine} / {!quarantine_reason}. *)

val null_sink : sink
(** Discards everything and resolves nothing (no checkpointing). *)
