(** CSV persistence for campaign results. *)

val header : string
(** Current schema: includes the [fault_model] and [bits] columns
    (DESIGN.md §18). *)

val legacy_header : string
(** The pre-model 17-column schema; {!of_string} still accepts it, loading
    rows as {!Refine_core.Fault.Reg_bit} cells. *)

val to_string : Experiment.cell list -> string
val save : string -> Experiment.cell list -> unit

exception Parse_error of string

val of_string : string -> Experiment.cell list
(** Inverse of {!to_string}.  Golden outputs are not persisted: reloaded
    cells are suitable for statistics and reporting, not for re-running
    injections.  Files written before the fault-model columns existed
    ({!legacy_header}) load with [model = Reg_bit]. *)

val load : string -> Experiment.cell list
