(** Rendering of campaign results in the shape of the paper's tables and
    figure series (text form), used by bench/main.exe, the examples and the
    refinec CLI. *)

val pct : int -> int -> float

val tools : Refine_core.Tool.kind list
(** The comparison set, in the paper's plotting order: LLFI, REFINE,
    PINFI. *)

val figure4_program : Experiment.cell list -> string -> string
(** One program's panel of Figure 4: sampled outcome probabilities per tool
    with 95% Wald confidence intervals. *)

val figure4_pmf : Experiment.cell list -> string -> string
(** The PMF stacked-bar panel of Figure 4 ([#] crash, [*] SOC, [.] benign):
    visually similar bars = similar tools, the paper's §5.4.1 reading. *)

val contingency_table : Experiment.cell -> Experiment.cell -> string
(** A Table 4-style 2x3 contingency table with margins. *)

type chi2_row = {
  program : string;
  llfi_vs_pinfi : Refine_stats.Chi2.test_result;
  refine_vs_pinfi : Refine_stats.Chi2.test_result;
  quarantined_tools : (string * string) list;
      (** (tool, reason) for this program's quarantined cells — their
          contingency rows are all-zero (excluded), so their verdicts are
          the trivial p=1 *)
}

val chi2_rows : Experiment.cell list -> string list -> chi2_row list
val table5 : chi2_row list -> string
(** The paper's Table 5: per-program chi-squared verdicts against PINFI.
    Programs with quarantined cells are marked [q] with a footnote giving
    the reason. *)

val quarantines : Experiment.cell list -> (string * string * string) list
(** All quarantined [(program, tool, reason)] cells. *)

val quarantine_report : Experiment.cell list -> string
(** Rendered block listing every quarantined cell and its reason; [""]
    when none. *)

val table6 : Experiment.cell list -> string list -> string
(** Complete outcome counts, measured side-by-side with the paper's
    published 1068-sample counts. *)

val figure5 : Experiment.cell list -> string list -> string
(** Campaign execution time normalized to PINFI, measured | paper. *)

val models : Experiment.cell list -> Refine_core.Fault.model list
(** The distinct fault models present, first-seen order. *)

val cells_of_model :
  Refine_core.Fault.model -> Experiment.cell list -> Experiment.cell list

val model_sections : Experiment.cell list -> string list -> string
(** One banner + {!table5} + {!table6} block per fault model present in
    the cells (DESIGN.md §18).  A single-model campaign renders exactly
    one section; the Reg_bit section reproduces the paper's tables. *)

val timing_total : Experiment.timing -> float
(** Sum of every overhead column of a cell's timing. *)

val overhead_table : Experiment.cell list -> string list -> string
(** The paper's Figures 8/9 shape: per (program, tool) wall-clock seconds
    split into instrument / compile / execute / harness columns, plus each
    tool's total normalized to PINFI's, with a Total block summed over all
    programs.  Reports measured seconds ({!Experiment.timing}), unlike
    {!figure5}'s modeled cost units. *)

val degradation :
  ?confidence:float -> ?journal_skipped:int -> Experiment.cell list -> string list
(** One warning line per cell whose achieved sample size dropped below the
    requested one (harness [tool_error]s or an interrupted run), with the
    achieved vs requested margin of error and the underlying failures; one
    QUARANTINED line per quarantined cell; and, when [journal_skipped] is
    nonzero, one line for the resume-journal rows that failed to decode.
    Empty when the campaign was healthy. *)
