(** Campaign orchestration: statistically-sized batches of fault-injection
    experiments per (program, tool) cell, as in the paper's §5.3 — now with
    supervised workers, bounded retry, watchdog kills and checkpoint/resume
    through {!Journal}. *)

type counts = { crash : int; soc : int; benign : int; tool_error : int }

val total : counts -> int
(** The statistical n: [crash + soc + benign].  Harness failures
    ([tool_error]) degrade the achieved sample size; they never enter the
    contingency rows. *)

val attempted : counts -> int
(** [total c + c.tool_error]: every resolved sample. *)

val zero : counts
val add_outcome : counts -> Refine_core.Fault.outcome -> counts

type timing = {
  instrument_s : float;  (** FI pass / DBI attach wall time *)
  compile_s : float;  (** frontend + IR opt + codegen wall time *)
  execute_s : float;
      (** profiling run + every sample's wall time, summed {e across worker
          domains} — CPU-time-like, may exceed elapsed wall time *)
  harness_s : float;
      (** residual elapsed cell time not attributed to a measured phase
          (scheduling, journaling, classification); clamped at 0 when
          domain parallelism makes attribution exceed elapsed time *)
}
(** Wall-clock overhead attribution per cell — the columns of
    {!Report.overhead_table} (the paper's Fig. 8/9 time-overhead shape). *)

val zero_timing : timing

type cell = {
  program : string;
  tool : Refine_core.Tool.kind;
  model : Refine_core.Fault.model;
      (** what state the faults struck ({!Refine_core.Fault.model});
          {!Refine_core.Fault.Reg_bit} for pre-model campaigns and loaded
          legacy CSVs *)
  samples : int;  (** requested sample count *)
  counts : counts;
  injection_cost : int64;  (** summed modeled time of all injection runs —
                               the campaign-time measure of Figure 5 *)
  profile : Refine_core.Fault.profile;
  static_instrumented : int;
  failures : Refine_support.Supervisor.failure list;
      (** samples that exhausted their retry budget (tallied as
          [tool_error]); index -1 marks a cell whose preparation failed *)
  timing : timing;
      (** wall-clock overhead attribution; {!zero_timing} for degraded or
          CSV-loaded cells *)
  quarantined : string option;
      (** ["category: detail"] when the cell was quarantined (DESIGN.md
          §13): preparation raised {!Refine_core.Tool.Quarantine} (failed
          MIR verification, or a nondeterministic golden run), zero samples
          ran, and the cell is excluded from the contingency rows *)
}

val cell_seed :
  ?model:Refine_core.Fault.model ->
  seed:int ->
  program:string ->
  Refine_core.Tool.kind ->
  int
(** Stable per-cell seed: [seed] xor the FNV-1a hash of the cell identity.
    Unlike the previous [Hashtbl.hash] derivation this is reproducible
    across OCaml versions.  The fault model joins the identity only when
    it is not the default {!Refine_core.Fault.Reg_bit}, so pre-model
    campaign seeds are unchanged; distinct models draw from disjoint
    deterministic streams. *)

val run_cell :
  ?domains:int ->
  ?sel:Refine_core.Tool.Selection.t ->
  ?journal:Journal.t ->
  ?sink:Journal.sink ->
  ?retries:int ->
  ?cost_cap:int64 ->
  ?quotas:Refine_core.Tool.quotas ->
  ?model:Refine_core.Fault.model ->
  ?pipeline:Refine_passes.Pipeline.spec ->
  ?verify_mir:bool ->
  ?verify_each:bool ->
  ?cache:bool ->
  ?chaos:Refine_core.Tool.chaos ->
  ?token:Refine_support.Supervisor.Cancel.t ->
  ?watchdog:(unit -> bool) ->
  ?heartbeat:(unit -> unit) ->
  samples:int ->
  seed:int ->
  Refine_core.Tool.kind ->
  program:string ->
  source:string ->
  unit ->
  cell
(** Compile + profile once, then run [samples] supervised injections.  Each
    sample owns a deterministic split of the master PRNG — results are
    bit-identical in [seed] regardless of domain count, retries, or
    journal-based resumption.  Samples already resolved in [journal] are
    loaded instead of re-run; newly resolved samples are checkpointed.
    A sample that keeps failing after [retries] extra attempts (each with a
    fresh deterministic split) resolves as {!Refine_core.Fault.Tool_error}.
    [cost_cap] is the per-sample modeled-cost watchdog
    ({!Refine_core.Tool.run_injection}); [token]/[watchdog] cancel the
    remaining work cooperatively — cancelled samples stay unresolved so a
    resume completes them.

    Sharding (DESIGN.md §16): [sink] overrides [journal] as the checkpoint
    destination — a shard worker streams resolved samples over a pipe
    through it — and [heartbeat] is invoked from the in-flight poll slot
    (every 1024 simulated instructions) so a worker can emit liveness
    frames; a hung sample therefore stops heartbeating instead of
    heartbeating through the hang.

    Pipelines (DESIGN.md §15): [pipeline] selects the compile pipeline
    (default {!Refine_core.Tool.default_pipeline}), [verify_each]
    interleaves the IR/MIR verifiers after every pass, and [cache] (default
    [true]) serves repeated preparations from the content-addressed
    artifact cache — campaign results are bit-identical in [seed] whether
    or not preparation was cached or verified per pass.

    Hardening (DESIGN.md §13): every injection runs inside the [quotas]
    sandbox (default {!Refine_core.Tool.default_quotas}, the golden-derived
    output cap) — tripped quotas classify as Crash.  A
    {!Refine_core.Tool.Quarantine} during preparation (see [verify_mir] /
    the double golden run) resolves the whole cell as quarantined: zero
    samples, [quarantined = Some reason], journaled so a resume
    short-circuits without re-preparing. *)

val run_matrix :
  ?domains:int ->
  ?sel:Refine_core.Tool.Selection.t ->
  ?journal:Journal.t ->
  ?sink:Journal.sink ->
  ?retries:int ->
  ?cost_cap:int64 ->
  ?quotas:Refine_core.Tool.quotas ->
  ?model:Refine_core.Fault.model ->
  ?pipeline:Refine_passes.Pipeline.spec ->
  ?verify_mir:bool ->
  ?verify_each:bool ->
  ?cache:bool ->
  ?chaos:Refine_core.Tool.chaos ->
  ?token:Refine_support.Supervisor.Cancel.t ->
  ?watchdog:(unit -> bool) ->
  samples:int ->
  seed:int ->
  (string * string) list ->
  Refine_core.Tool.kind list ->
  cell list
(** The full evaluation grid: every (program, source) under every tool.  A
    cell whose preparation fails degrades to an all-[tool_error] cell (or a
    quarantined cell for {!Refine_core.Tool.Quarantine}); the remaining
    cells still run. *)

val find_cell :
  ?model:Refine_core.Fault.model ->
  cell list ->
  program:string ->
  tool:Refine_core.Tool.kind ->
  cell
(** First cell matching (program, tool) and, when given, [model]. *)

val row : cell -> int array
(** [crash; soc; benign] contingency row for {!Refine_stats.Chi2.test};
    [tool_error] samples are excluded by construction. *)
