(* Shard worker process (DESIGN.md §16).

   A worker is the same executable as its coordinator, re-exec'd with
   [REFINE_SHARD_WORKER=1] in the environment: stdin carries coordinator
   frames (Init, Assign, Shutdown), stdout carries worker frames (Hello,
   Outcome, Quarantine, Heartbeat, Chunk_done / Chunk_failed).  Every
   embedding executable calls {!maybe_exec} before doing anything else, so
   the coordinator can spawn workers without a dedicated binary.

   The worker resolves an assigned chunk with the ordinary
   [Experiment.run_cell], wired up for streaming:

   - a [Journal.sink] whose [push] writes an [Outcome] frame — the
     checkpoint journal, promoted to the pipe;
   - [resolved] pre-marks every sample index *outside* the chunk's [todo]
     list as already done (with a placeholder entry the coordinator never
     sees), so run_cell executes exactly the todo set while still building
     the full [samples]-sized PRNG split array — the alignment that keeps
     sharded campaigns bit-identical to single-process ones;
   - [heartbeat] (invoked from the in-flight poll slot, every 1024
     simulated instructions) emits time-gated [Heartbeat] frames; a hung
     sample therefore goes silent instead of heartbeating through the
     hang, which is exactly what the coordinator's deadline wants to see.

   Chunks run with [~domains:1]: process-level sharding replaces domain
   parallelism, and a single-threaded worker needs no write lock on its
   pipe. *)

module S = Shard
module E = Experiment
module J = Journal
module F = Refine_core.Fault
module T = Refine_core.Tool
module M = Refine_obs.Metrics
module Sp = Refine_obs.Span

let env_var = "REFINE_SHARD_WORKER"

let fds_var = "REFINE_SHARD_FDS"

(* Unix.file_descr is the raw fd number on Unix; the coordinator passes
   its pipe ends by number ([fds_var]) so the protocol never touches
   stdout — a library printing at init (alcotest, qcheck seed lines)
   must not be able to corrupt the frame stream *)
let fd_of_int : int -> Unix.file_descr = Obj.magic
let int_of_fd : Unix.file_descr -> int = Obj.magic

let quotas_of_config (c : S.config) =
  {
    T.default_quotas with
    T.output_bytes = c.S.output_quota;
    wall_clock_s = c.S.wall_clock;
    livelock_window = c.S.livelock;
  }

(* placeholder for samples outside this chunk: run_cell treats them as
   resolved (skipping execution) but the worker discards its own counts —
   the coordinator aggregates from Outcome frames, so the values here are
   never observed *)
let placeholder ~program ~tool ~model sample =
  { J.program; tool; model; sample; outcome = F.Benign; cost = 0L; attempts = 0 }

(* Campaign-level counters the worker must never forward: the coordinator
   counts these itself from Outcome/Quarantine frames (which stays exact
   across worker crashes), and the worker-side values double-count anyway
   (placeholder pre-resolution inflates resumed-samples, per-chunk
   run_cell calls inflate cells). *)
let campaign_level =
  [
    "refine_campaign_samples_total";
    "refine_campaign_cells_total";
    "refine_campaign_resumed_samples_total";
    "refine_quarantined_cells_total";
  ]

let summary_of_cell ~chunk (cell : E.cell) : S.chunk_summary =
  {
    S.chunk;
    program = cell.E.program;
    tool = T.kind_name cell.E.tool;
    quarantined = cell.E.quarantined <> None;
    golden_exit = cell.E.profile.F.golden_exit;
    dyn_count = cell.E.profile.F.dyn_count;
    profile_cost = cell.E.profile.F.profile_cost;
    golden_output_len = String.length cell.E.profile.F.golden_output;
    static_instrumented = cell.E.static_instrumented;
    instrument_s = cell.E.timing.E.instrument_s;
    compile_s = cell.E.timing.E.compile_s;
    execute_s = cell.E.timing.E.execute_s;
    harness_s = cell.E.timing.E.harness_s;
    failures =
      List.map
        (fun (f : Refine_support.Supervisor.failure) ->
          (f.Refine_support.Supervisor.index, f.attempts, Printexc.to_string f.exn))
        cell.E.failures;
  }

let run_assign ~(config : S.config) ~send ~ship ~completed ~chunk ~program ~source ~tool
    ~model ~samples ~todo =
  let tool_kind = S.tool_of_name tool in
  let fault_model = F.model_of_string model in
  let in_todo = Hashtbl.create 64 in
  List.iter (fun i -> Hashtbl.replace in_todo i ()) todo;
  let resolved ~program ~tool ~model =
    let tbl = Hashtbl.create 64 in
    for i = 0 to samples - 1 do
      if not (Hashtbl.mem in_todo i) then
        Hashtbl.replace tbl i (placeholder ~program ~tool ~model i)
    done;
    tbl
  in
  let sink =
    {
      J.resolved;
      push =
        (fun e ->
          incr completed;
          send (S.Outcome { chunk; entry = e }));
      push_quarantine =
        (fun ~program ~tool ~reason -> send (S.Quarantine { program; tool; reason }));
      find_quarantine = (fun ~program:_ ~tool:_ -> None);
    }
  in
  let last_hb = ref (Unix.gettimeofday ()) in
  let heartbeat () =
    let now = Unix.gettimeofday () in
    if now -. !last_hb >= config.S.heartbeat_s then begin
      last_hb := now;
      send (S.Heartbeat { completed = !completed });
      (* the heartbeat poll slot doubles as the telemetry-forwarding slot:
         live dashboards see in-flight progress at heartbeat cadence *)
      ship ()
    end
  in
  let pipeline = Option.map Refine_passes.Pipeline.parse config.S.pipeline in
  match
    E.run_cell ~domains:1 ~sink ~heartbeat ~retries:config.S.retries
      ?cost_cap:config.S.cost_cap ~quotas:(quotas_of_config config) ~model:fault_model
      ?pipeline ~verify_mir:config.S.verify_mir ~verify_each:config.S.verify_each
      ~cache:config.S.cache ~samples ~seed:config.S.seed tool_kind ~program ~source ()
  with
  | cell ->
    (* final telemetry for this chunk must precede Chunk_done on the pipe:
       the coordinator may stop reading once every chunk is summarized, so
       ordering here is what makes fleet-merged counters exact *)
    ship ();
    send (S.Chunk_done (summary_of_cell ~chunk cell))
  | exception e ->
    (* non-quarantine preparation failure: the coordinator degrades the
       cell; the worker itself stays up for the next chunk *)
    ship ();
    send (S.Chunk_failed { chunk; message = Printexc.to_string e })

let main ?(input = Unix.stdin) ?(output = Unix.stdout) () =
  (* the coordinator closing its end must surface as EOF on read, not a
     SIGPIPE death mid-frame *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let send frame = S.write_fd output frame in
  send (S.Hello { pid = Unix.getpid (); version = S.version });
  let reader = S.reader () in
  let config = ref S.default_config in
  let completed = ref 0 in
  let running = ref true in
  (* Telemetry forwarding: ship the registry as *cumulative* export items
     (changed-since-last-ship only, to bound frame size) plus any spans
     buffered in the memory sink.  The coordinator's merge_snapshot turns
     cumulative values into deltas, which makes a re-shipped or reordered
     snapshot harmless. *)
  let last_shipped : (string * M.labels, M.value) Hashtbl.t = Hashtbl.create 64 in
  let ship () =
    let c = !config in
    if c.S.obs then begin
      let items =
        List.filter
          (fun (it : M.export_item) ->
            (not (List.mem it.M.x_name campaign_level))
            &&
            match Hashtbl.find_opt last_shipped (it.M.x_name, it.M.x_labels) with
            | Some v -> v <> it.M.x_value
            | None -> true)
          (M.export ())
      in
      List.iter
        (fun (it : M.export_item) ->
          Hashtbl.replace last_shipped (it.M.x_name, it.M.x_labels) it.M.x_value)
        items;
      if items <> [] then send (S.Metrics_delta items);
      if c.S.trace then
        match Sp.drain () with [] -> () | evs -> send (S.Trace_batch evs)
    end
  in
  let handle = function
    | S.Init c ->
      config := c;
      if c.S.obs then Refine_obs.Control.enable ();
      if c.S.trace then Sp.set_memory_sink ()
    | S.Assign { chunk; program; source; tool; model; samples; todo; trace; parent_span } ->
      (* adopt the coordinator's trace context: everything this chunk
         emits re-parents under the coordinator's dispatch span *)
      Sp.set_context ~trace ~parent:parent_span ();
      run_assign ~config:!config ~send ~ship ~completed ~chunk ~program ~source ~tool ~model
        ~samples ~todo;
      Sp.clear_context ()
    | S.Shutdown ->
      ship ();
      running := false
    | f -> raise (S.Protocol_error ("worker: unexpected frame " ^ S.frame_name f))
  in
  while !running do
    match S.drain reader input with
    | `Eof _ -> running := false (* coordinator gone: exit quietly *)
    | `Frames fs -> List.iter (fun f -> if !running then handle f) fs
  done

let maybe_exec () =
  match Sys.getenv_opt env_var with
  | None | Some "" | Some "0" -> ()
  | Some _ ->
    let input, output =
      match Sys.getenv_opt fds_var with
      | Some s -> (
        match String.split_on_char ',' s with
        | [ r; w ] -> (fd_of_int (int_of_string r), fd_of_int (int_of_string w))
        | _ -> (Unix.stdin, Unix.stdout))
      | None -> (Unix.stdin, Unix.stdout)
    in
    (match main ~input ~output () with
    | () -> exit 0
    | exception Unix.Unix_error (Unix.EPIPE, _, _) -> exit 0
    | exception e ->
      Printf.eprintf "[shard-worker %d] fatal: %s\n%!" (Unix.getpid ()) (Printexc.to_string e);
      exit 1)
