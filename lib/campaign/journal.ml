(* Checkpoint/resume journal for fault-injection campaigns.

   An append-only, line-oriented record of every resolved
   (program, tool, sample-index) experiment — outcome, modeled cost and
   attempts used — so an interrupted campaign can resume without re-running
   completed samples.  Because every sample owns its own deterministic PRNG
   split (Experiment), summing journaled outcomes with freshly-run ones is
   bit-identical to an uninterrupted run with the same seed, whatever the
   crash/resume interleaving.

   Durability: each flush writes the full log to [path ^ ".tmp"] and
   renames it over [path].  The rename is atomic at the filesystem level,
   so a reader (or a resuming campaign) never observes a torn file — the
   journal is either the previous complete state or the new one. *)

module F = Refine_core.Fault

type entry = {
  program : string;
  tool : string; (* Tool.kind_name *)
  sample : int; (* 0-based index within the cell *)
  outcome : F.outcome;
  cost : int64;
  attempts : int;
}

type t = {
  path : string;
  mutable entries : entry list; (* newest first *)
  lock : Mutex.t;
}

let magic = "# refine-journal v1"

let render e =
  Printf.sprintf "%s\t%s\t%d\t%s\t%Ld\t%d" e.program e.tool e.sample
    (F.string_of_outcome e.outcome)
    e.cost e.attempts

(* Tolerant parse: a line that does not decode (e.g. written by a newer
   version) is skipped rather than aborting the resume — losing one
   checkpoint costs one re-run, losing the journal costs the campaign. *)
let parse line =
  match String.split_on_char '\t' line with
  | [ program; tool; sample; outcome; cost; attempts ] -> (
    try
      Some
        {
          program;
          tool;
          sample = int_of_string sample;
          outcome = F.outcome_of_string outcome;
          cost = Int64.of_string cost;
          attempts = int_of_string attempts;
        }
    with _ -> None)
  | _ -> None

let flush t =
  let tmp = t.path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (magic ^ "\n");
  List.iter (fun e -> output_string oc (render e ^ "\n")) (List.rev t.entries);
  close_out oc;
  Sys.rename tmp t.path

let load_entries path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "" && not (String.length l > 0 && l.[0] = '#'))
  |> List.filter_map parse

let create ?(resume = false) path =
  let entries = if resume && Sys.file_exists path then load_entries path else [] in
  let t = { path; entries = List.rev entries; lock = Mutex.create () } in
  flush t;
  t

let m_records =
  Refine_obs.Metrics.counter ~help:"samples checkpointed to the resume journal"
    "refine_journal_records_total"

let m_flush_seconds =
  Refine_obs.Metrics.histogram ~help:"journal flush (write + atomic rename) wall time"
    ~buckets:[| 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0 |]
    "refine_journal_flush_seconds"

let record t e =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      t.entries <- e :: t.entries;
      let t0 = Refine_obs.Control.now () in
      flush t;
      Refine_obs.Metrics.inc m_records;
      Refine_obs.Metrics.observe m_flush_seconds (Refine_obs.Control.now () -. t0))

let entries t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> List.rev t.entries)

let length t = List.length (entries t)

let completed t ~program ~tool =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e -> if e.program = program && e.tool = tool then Hashtbl.replace tbl e.sample e)
    (entries t);
  tbl
