(* Checkpoint/resume journal for fault-injection campaigns.

   An append-only, line-oriented record of every resolved
   (program, tool, sample-index) experiment — outcome, modeled cost and
   attempts used — so an interrupted campaign can resume without re-running
   completed samples.  Because every sample owns its own deterministic PRNG
   split (Experiment), summing journaled outcomes with freshly-run ones is
   bit-identical to an uninterrupted run with the same seed, whatever the
   crash/resume interleaving.

   Quarantined cells (DESIGN.md §13) are journaled too, as "Q"-tagged
   lines with a different field count: an older loader's tolerant parse
   skips them silently, so journals stay forward- and backward-compatible.

   Durability: [create] writes the full canonical log to [path ^ ".tmp"]
   and renames it over [path] (atomic at the filesystem level), then every
   [record] appends one line and flushes — O(1) per sample instead of a
   full rewrite.  A kill mid-append can therefore leave one torn final
   line; the loader detects the missing trailing newline, skips the
   partial line without attempting to parse it, counts it in [skipped]
   (surfaced as [refine_journal_skipped_lines_total]), and resumes from
   the previous record — one re-run, never a raised exception. *)

module F = Refine_core.Fault

type entry = {
  program : string;
  tool : string; (* Tool.kind_name *)
  model : string; (* Fault.string_of_model; "reg" for pre-v2 journals *)
  sample : int; (* 0-based index within the cell *)
  outcome : F.outcome;
  cost : int64;
  attempts : int;
}

type t = {
  path : string;
  mutable entries : entry list; (* newest first *)
  mutable quarantines : (string * string * string) list; (* (program, tool, reason) *)
  mutable skipped : int; (* undecodable lines dropped at load *)
  mutable chan : out_channel option; (* append channel, opened on first record *)
  lock : Mutex.t;
}

(* v2 appends the fault-model field (DESIGN.md §18).  The version tag is a
   comment line, so a v1 loader's tolerant parse ignores it; this loader
   accepts both the v1 shape (6 fields, implicitly the paper's "reg"
   model) and the v2 shape (7 fields). *)
let magic = "# refine-journal v2"

(* reasons travel on one journal/CSV line; field and line separators are
   squashed to spaces *)
let sanitize s =
  String.map (function '\t' | '\n' | '\r' | ',' -> ' ' | c -> c) s

let render e =
  Printf.sprintf "%s\t%s\t%d\t%s\t%Ld\t%d\t%s" e.program e.tool e.sample
    (F.string_of_outcome e.outcome)
    e.cost e.attempts e.model

let render_quarantine (program, tool, reason) =
  Printf.sprintf "Q\t%s\t%s\t%s" program tool (sanitize reason)

(* Tolerant parse: a line that does not decode (e.g. an outcome name or
   record shape written by a newer version) is skipped rather than
   aborting the resume — losing one checkpoint costs one re-run, losing
   the journal costs the campaign.  [Fault.outcome_of_string] raises on
   unknown names; the try-with turns that into a skip, and the caller
   counts skips so the degradation report can surface them. *)
let parse line =
  let decode program tool sample outcome cost attempts model =
    try
      (* validate the model name so a corrupt trailing field skips the
         line instead of resurfacing later as a loader error *)
      ignore (F.model_of_string model);
      Some
        {
          program;
          tool;
          model;
          sample = int_of_string sample;
          outcome = F.outcome_of_string outcome;
          cost = Int64.of_string cost;
          attempts = int_of_string attempts;
        }
    with _ -> None
  in
  match String.split_on_char '\t' line with
  (* v1 shape: no model field — the paper's single-bit register model *)
  | [ program; tool; sample; outcome; cost; attempts ] ->
    decode program tool sample outcome cost attempts "reg"
  | [ program; tool; sample; outcome; cost; attempts; model ] ->
    decode program tool sample outcome cost attempts model
  | _ -> None

let parse_quarantine line =
  match String.split_on_char '\t' line with
  | [ "Q"; program; tool; reason ] -> Some (program, tool, reason)
  | _ -> None

(* full canonical rewrite — used at [create]; incremental records append *)
let flush t =
  (match t.chan with
  | Some oc ->
    close_out oc;
    t.chan <- None
  | None -> ());
  let tmp = t.path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (magic ^ "\n");
  List.iter (fun q -> output_string oc (render_quarantine q ^ "\n")) (List.rev t.quarantines);
  List.iter (fun e -> output_string oc (render e ^ "\n")) (List.rev t.entries);
  close_out oc;
  Sys.rename tmp t.path

let append_line t line =
  let oc =
    match t.chan with
    | Some oc -> oc
    | None ->
      let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 t.path in
      t.chan <- Some oc;
      oc
  in
  output_string oc (line ^ "\n");
  Stdlib.flush oc

let load_entries path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  (* A file that does not end in a newline was torn by a kill mid-append:
     the final partial line is dropped without a parse attempt (a truncated
     numeric field could otherwise decode to a *wrong* record) and counted
     as skipped — resume continues from the previous complete record. *)
  let s, torn =
    if n = 0 || s.[n - 1] = '\n' then (s, 0)
    else
      match String.rindex_opt s '\n' with
      | Some i ->
        Printf.eprintf "journal %s: dropping torn final line (killed mid-append)\n%!" path;
        (String.sub s 0 (i + 1), 1)
      | None ->
        Printf.eprintf "journal %s: dropping torn final line (killed mid-append)\n%!" path;
        ("", 1)
  in
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.trim l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  let entries = ref [] and quarantines = ref [] and skipped = ref torn in
  List.iter
    (fun l ->
      match parse_quarantine l with
      | Some q -> quarantines := q :: !quarantines
      | None -> (
        match parse l with
        | Some e -> entries := e :: !entries
        | None ->
          incr skipped;
          Printf.eprintf "journal %s: skipping undecodable line: %s\n%!" path l))
    lines;
  (List.rev !entries, List.rev !quarantines, !skipped)

let create ?(resume = false) path =
  let entries, quarantines, skipped =
    if resume && Sys.file_exists path then load_entries path else ([], [], 0)
  in
  let t =
    {
      path;
      entries = List.rev entries;
      quarantines = List.rev quarantines;
      skipped;
      chan = None;
      lock = Mutex.create ();
    }
  in
  flush t;
  t

let m_records =
  Refine_obs.Metrics.counter ~help:"samples checkpointed to the resume journal"
    "refine_journal_records_total"

let m_flush_seconds =
  Refine_obs.Metrics.histogram ~help:"journal record (append + flush) wall time"
    ~buckets:[| 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0 |]
    "refine_journal_flush_seconds"

let m_skipped =
  Refine_obs.Metrics.counter ~help:"undecodable journal lines dropped at resume"
    "refine_journal_skipped_lines_total"

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let record t e =
  locked t (fun () ->
      t.entries <- e :: t.entries;
      let t0 = Refine_obs.Control.now () in
      append_line t (render e);
      Refine_obs.Metrics.inc m_records;
      Refine_obs.Metrics.observe m_flush_seconds (Refine_obs.Control.now () -. t0))

let record_quarantine t ~program ~tool ~reason =
  locked t (fun () ->
      (* idempotent per cell: a resumed campaign re-quarantines the same
         cell with the same reason *)
      if
        not
          (List.exists (fun (p, tl, _) -> p = program && tl = tool) t.quarantines)
      then begin
        t.quarantines <- (program, tool, reason) :: t.quarantines;
        append_line t (render_quarantine (program, tool, reason))
      end)

let close t =
  locked t (fun () ->
      match t.chan with
      | Some oc ->
        close_out oc;
        t.chan <- None
      | None -> ())

let quarantine_reason t ~program ~tool =
  locked t (fun () ->
      List.find_map
        (fun (p, tl, r) -> if p = program && tl = tool then Some r else None)
        t.quarantines)

let quarantines t = locked t (fun () -> List.rev t.quarantines)

let skipped t = locked t (fun () -> t.skipped)

let note_skipped_metric t =
  let n = skipped t in
  if n > 0 then Refine_obs.Metrics.add m_skipped n

let entries t = locked t (fun () -> List.rev t.entries)

let length t = List.length (entries t)

let completed ?(model = "reg") t ~program ~tool =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if e.program = program && e.tool = tool && e.model = model then
        Hashtbl.replace tbl e.sample e)
    (entries t);
  tbl

(* ---- sinks: the journal as an interface -------------------------------
   The campaign engine records resolved samples through this record, not
   through [t] directly, so the same engine can checkpoint to a local file
   (this module) or stream length-prefixed journal lines over a pipe to a
   shard coordinator (Shard/Worker, DESIGN.md §16) without knowing the
   difference. *)

type sink = {
  resolved : program:string -> tool:string -> model:string -> (int, entry) Hashtbl.t;
  push : entry -> unit;
  push_quarantine : program:string -> tool:string -> reason:string -> unit;
  find_quarantine : program:string -> tool:string -> string option;
}

let sink t =
  {
    resolved = (fun ~program ~tool ~model -> completed ~model t ~program ~tool);
    push = (fun e -> record t e);
    push_quarantine = (fun ~program ~tool ~reason -> record_quarantine t ~program ~tool ~reason);
    find_quarantine = (fun ~program ~tool -> quarantine_reason t ~program ~tool);
  }

let null_sink =
  {
    resolved = (fun ~program:_ ~tool:_ ~model:_ -> Hashtbl.create 1);
    push = ignore;
    push_quarantine = (fun ~program:_ ~tool:_ ~reason:_ -> ());
    find_quarantine = (fun ~program:_ ~tool:_ -> None);
  }
