(** Shard worker process (DESIGN.md §16): the executable re-exec'd by
    {!Coordinator} with [REFINE_SHARD_WORKER=1], speaking {!Shard} frames
    over stdin/stdout.  Chunks run through the ordinary
    {!Experiment.run_cell} with a streaming {!Journal.sink} (each resolved
    sample becomes an [Outcome] frame) and a time-gated heartbeat invoked
    from the in-flight poll slot — a hung sample stops heartbeating.

    When [Init] enables the observability plane (DESIGN.md §17), the
    heartbeat slot also forwards telemetry: cumulative [Metrics_delta]
    snapshots and buffered [Trace_batch] spans, with a final flush before
    each chunk summary and on [Shutdown]. *)

val env_var : string
(** ["REFINE_SHARD_WORKER"] — set (non-empty, non-["0"]) in a spawned
    worker's environment. *)

val fds_var : string
(** ["REFINE_SHARD_FDS"] — ["<read>,<write>"], the inherited pipe fd
    numbers the worker must speak frames on.  Keeping the protocol off
    stdout means a library printing at init cannot corrupt it. *)

val int_of_fd : Unix.file_descr -> int
(** The raw fd number (Unix only) — how the coordinator renders
    {!fds_var}. *)

val main : ?input:Unix.file_descr -> ?output:Unix.file_descr -> unit -> unit
(** Run the worker loop: send [Hello], then serve [Init] / [Assign] /
    [Shutdown] frames from [input] (default stdin), streaming results to
    [output] (default stdout).  Returns on [Shutdown] or EOF. *)

val maybe_exec : unit -> unit
(** Call first in every executable that may act as a coordinator: if
    {!env_var} is set in the environment, runs {!main} on stdin/stdout and
    exits the process (0 on clean shutdown).  A no-op otherwise. *)
