(* Wire protocol of the sharded campaign service (DESIGN.md §16).

   The PR-1 journal promoted to a process boundary: a coordinator process
   shards the (program, tool, sample) matrix into chunks and assigns them
   to worker processes over pipes; workers stream each resolved sample
   back as a length-prefixed journal-entry frame, plus liveness
   heartbeats, quarantine notices and a per-chunk completion summary.
   Frames are encoded with the strict [Refine_support.Wire] codec: no
   prefix of a valid frame decodes (a worker SIGKILLed mid-write leaves a
   torn trailing frame that is counted, never mis-decoded), and trailing
   bytes inside a frame are rejected.

   The protocol is deliberately tool-agnostic and self-contained — an
   Assign carries the program source text, so a worker needs no shared
   filesystem or benchmark registry, which keeps the shape multi-host
   ready even though this repo exercises it single-host. *)

module W = Refine_support.Wire
module F = Refine_core.Fault
module T = Refine_core.Tool
module M = Refine_obs.Metrics
module Sp = Refine_obs.Span

(* v2: observability plane — Init carries obs/trace switches, Assign
   carries the trace context, and workers stream Metrics_delta /
   Trace_batch frames (DESIGN.md §17).
   v3: fault models — Assign carries the cell's fault model and Outcome
   entries echo it back (DESIGN.md §18). *)
let version = 3

exception Protocol_mismatch of { expected_version : int; tag : int }
(* An unknown frame tag is a version skew, not a torn frame: a v2 peer
   can neither have sent tag 12+ nor omit the Assign model field without
   the strict codec rejecting the payload, so we surface which side is
   too old instead of a generic protocol error. *)

type config = {
  seed : int;
  retries : int;
  cost_cap : int64 option;
  output_quota : int option;
  wall_clock : float option;
  livelock : int option;
  verify_mir : bool;
  verify_each : bool;
  cache : bool;
  pipeline : string option; (* Pipeline.print form; None = tool default *)
  heartbeat_s : float; (* min seconds between worker heartbeat frames *)
  obs : bool; (* worker enables its metrics registry + delta forwarding *)
  trace : bool; (* worker buffers spans and ships Trace_batch frames *)
}

let default_config =
  {
    seed = 1;
    retries = 0;
    cost_cap = None;
    output_quota = None;
    wall_clock = None;
    livelock = None;
    verify_mir = true;
    verify_each = false;
    cache = true;
    pipeline = None;
    heartbeat_s = 0.02;
    obs = false;
    trace = false;
  }

type chunk_summary = {
  chunk : int;
  program : string;
  tool : string;
  quarantined : bool; (* preparation quarantined the cell; profile fields are zero *)
  golden_exit : int;
  dyn_count : int64;
  profile_cost : int64;
  golden_output_len : int; (* the output itself stays in the worker *)
  static_instrumented : int;
  instrument_s : float;
  compile_s : float;
  execute_s : float;
  harness_s : float;
  failures : (int * int * string) list; (* (sample, attempts, message) *)
}

type frame =
  | Hello of { pid : int; version : int }
  | Init of config
  | Assign of {
      chunk : int;
      program : string;
      source : string;
      tool : string; (* Tool.kind_name *)
      model : string; (* Fault.string_of_model — what state the faults strike *)
      samples : int; (* full cell sample count — keys the PRNG splits *)
      todo : int list; (* sample indices this chunk must resolve *)
      trace : string; (* campaign trace id; "" when tracing is off *)
      parent_span : int; (* coordinator's dispatch-span id for this chunk *)
    }
  | Outcome of { chunk : int; entry : Journal.entry }
  | Quarantine of { program : string; tool : string; reason : string }
  | Chunk_done of chunk_summary
  | Chunk_failed of { chunk : int; message : string } (* non-quarantine prepare failure *)
  | Heartbeat of { completed : int } (* samples resolved by this worker so far *)
  | Shutdown
  | Metrics_delta of M.export_item list (* cumulative registry snapshot items *)
  | Trace_batch of Sp.event list (* buffered spans, already re-parented *)

let tool_of_name name =
  match String.uppercase_ascii name with
  | "REFINE" -> T.Refine
  | "LLFI" -> T.Llfi
  | "PINFI" -> T.Pinfi
  | s -> invalid_arg ("Shard.tool_of_name: " ^ s)

(* ---- encode ----------------------------------------------------------- *)

let tag = function
  | Hello _ -> 1
  | Init _ -> 2
  | Assign _ -> 3
  | Outcome _ -> 4
  | Quarantine _ -> 5
  | Chunk_done _ -> 6
  | Chunk_failed _ -> 7
  | Heartbeat _ -> 8
  | Shutdown -> 9
  | Metrics_delta _ -> 10
  | Trace_batch _ -> 11

let put_labels b labels =
  W.put_list b
    (fun b (k, v) ->
      W.put_string b k;
      W.put_string b v)
    labels

let get_labels c =
  W.get_list c (fun c ->
      let k = W.get_string c in
      let v = W.get_string c in
      (k, v))

let put_value b = function
  | M.Counter v ->
    W.put_u8 b 0;
    W.put_i64 b v
  | M.Gauge v ->
    W.put_u8 b 1;
    W.put_f64 b v
  | M.Histogram h ->
    W.put_u8 b 2;
    W.put_list b W.put_f64 (Array.to_list h.M.bounds);
    W.put_list b W.put_i64 (Array.to_list h.M.counts);
    W.put_f64 b h.M.sum;
    W.put_i64 b h.M.count

let get_value c =
  match W.get_u8 c with
  | 0 -> M.Counter (W.get_i64 c)
  | 1 -> M.Gauge (W.get_f64 c)
  | 2 ->
    let bounds = Array.of_list (W.get_list c W.get_f64) in
    let counts = Array.of_list (W.get_list c W.get_i64) in
    let sum = W.get_f64 c in
    let count = W.get_i64 c in
    M.Histogram { M.bounds; counts; sum; count }
  | t -> invalid_arg (Printf.sprintf "Shard: unknown metric value tag %d" t)

let put_item b (it : M.export_item) =
  W.put_string b it.M.x_name;
  put_labels b it.M.x_labels;
  W.put_string b it.M.x_help;
  put_value b it.M.x_value

let get_item c =
  let x_name = W.get_string c in
  let x_labels = get_labels c in
  let x_help = W.get_string c in
  let x_value = get_value c in
  { M.x_name; x_labels; x_help; x_value }

let put_event b (e : Sp.event) =
  W.put_string b e.Sp.name;
  put_labels b e.Sp.attrs;
  W.put_f64 b e.Sp.t_start;
  W.put_f64 b e.Sp.dur_s;
  W.put_int b e.Sp.depth;
  W.put_int b e.Sp.domain;
  W.put_i64 b e.Sp.cost;
  W.put_bool b e.Sp.ok;
  W.put_string b e.Sp.trace;
  W.put_int b e.Sp.span_id;
  W.put_int b e.Sp.parent

let get_event c =
  let name = W.get_string c in
  let attrs = get_labels c in
  let t_start = W.get_f64 c in
  let dur_s = W.get_f64 c in
  let depth = W.get_int c in
  let domain = W.get_int c in
  let cost = W.get_i64 c in
  let ok = W.get_bool c in
  let trace = W.get_string c in
  let span_id = W.get_int c in
  let parent = W.get_int c in
  { Sp.name; attrs; t_start; dur_s; depth; domain; cost; ok; trace; span_id; parent }

let put_entry b (e : Journal.entry) =
  W.put_string b e.Journal.program;
  W.put_string b e.Journal.tool;
  W.put_string b e.Journal.model;
  W.put_int b e.Journal.sample;
  W.put_string b (F.string_of_outcome e.Journal.outcome);
  W.put_i64 b e.Journal.cost;
  W.put_int b e.Journal.attempts

let encode f =
  let b = Buffer.create 128 in
  W.put_u8 b (tag f);
  (match f with
  | Hello { pid; version } ->
    W.put_int b pid;
    W.put_int b version
  | Init c ->
    W.put_int b c.seed;
    W.put_int b c.retries;
    W.put_option b W.put_i64 c.cost_cap;
    W.put_option b W.put_int c.output_quota;
    W.put_option b W.put_f64 c.wall_clock;
    W.put_option b W.put_int c.livelock;
    W.put_bool b c.verify_mir;
    W.put_bool b c.verify_each;
    W.put_bool b c.cache;
    W.put_option b W.put_string c.pipeline;
    W.put_f64 b c.heartbeat_s;
    W.put_bool b c.obs;
    W.put_bool b c.trace
  | Assign { chunk; program; source; tool; model; samples; todo; trace; parent_span } ->
    W.put_int b chunk;
    W.put_string b program;
    W.put_string b source;
    W.put_string b tool;
    W.put_string b model;
    W.put_int b samples;
    W.put_list b W.put_int todo;
    W.put_string b trace;
    W.put_int b parent_span
  | Outcome { chunk; entry } ->
    W.put_int b chunk;
    put_entry b entry
  | Quarantine { program; tool; reason } ->
    W.put_string b program;
    W.put_string b tool;
    W.put_string b reason
  | Chunk_done s ->
    W.put_int b s.chunk;
    W.put_string b s.program;
    W.put_string b s.tool;
    W.put_bool b s.quarantined;
    W.put_int b s.golden_exit;
    W.put_i64 b s.dyn_count;
    W.put_i64 b s.profile_cost;
    W.put_int b s.golden_output_len;
    W.put_int b s.static_instrumented;
    W.put_f64 b s.instrument_s;
    W.put_f64 b s.compile_s;
    W.put_f64 b s.execute_s;
    W.put_f64 b s.harness_s;
    W.put_list b
      (fun b (sample, attempts, msg) ->
        W.put_int b sample;
        W.put_int b attempts;
        W.put_string b msg)
      s.failures
  | Chunk_failed { chunk; message } ->
    W.put_int b chunk;
    W.put_string b message
  | Heartbeat { completed } -> W.put_int b completed
  | Shutdown -> ()
  | Metrics_delta items -> W.put_list b put_item items
  | Trace_batch events -> W.put_list b put_event events);
  Buffer.contents b

(* ---- decode ----------------------------------------------------------- *)

let get_entry c : Journal.entry =
  let program = W.get_string c in
  let tool = W.get_string c in
  let model = W.get_string c in
  let sample = W.get_int c in
  let outcome = F.outcome_of_string (W.get_string c) in
  let cost = W.get_i64 c in
  let attempts = W.get_int c in
  { Journal.program; tool; model; sample; outcome; cost; attempts }

let decode payload =
  let c = W.cursor payload in
  let f =
    match W.get_u8 c with
    | 1 ->
      let pid = W.get_int c in
      let version = W.get_int c in
      Hello { pid; version }
    | 2 ->
      let seed = W.get_int c in
      let retries = W.get_int c in
      let cost_cap = W.get_option c W.get_i64 in
      let output_quota = W.get_option c W.get_int in
      let wall_clock = W.get_option c W.get_f64 in
      let livelock = W.get_option c W.get_int in
      let verify_mir = W.get_bool c in
      let verify_each = W.get_bool c in
      let cache = W.get_bool c in
      let pipeline = W.get_option c W.get_string in
      let heartbeat_s = W.get_f64 c in
      let obs = W.get_bool c in
      let trace = W.get_bool c in
      Init
        {
          seed;
          retries;
          cost_cap;
          output_quota;
          wall_clock;
          livelock;
          verify_mir;
          verify_each;
          cache;
          pipeline;
          heartbeat_s;
          obs;
          trace;
        }
    | 3 ->
      let chunk = W.get_int c in
      let program = W.get_string c in
      let source = W.get_string c in
      let tool = W.get_string c in
      let model = W.get_string c in
      let samples = W.get_int c in
      let todo = W.get_list c W.get_int in
      let trace = W.get_string c in
      let parent_span = W.get_int c in
      Assign { chunk; program; source; tool; model; samples; todo; trace; parent_span }
    | 4 ->
      let chunk = W.get_int c in
      let entry = get_entry c in
      Outcome { chunk; entry }
    | 5 ->
      let program = W.get_string c in
      let tool = W.get_string c in
      let reason = W.get_string c in
      Quarantine { program; tool; reason }
    | 6 ->
      let chunk = W.get_int c in
      let program = W.get_string c in
      let tool = W.get_string c in
      let quarantined = W.get_bool c in
      let golden_exit = W.get_int c in
      let dyn_count = W.get_i64 c in
      let profile_cost = W.get_i64 c in
      let golden_output_len = W.get_int c in
      let static_instrumented = W.get_int c in
      let instrument_s = W.get_f64 c in
      let compile_s = W.get_f64 c in
      let execute_s = W.get_f64 c in
      let harness_s = W.get_f64 c in
      let failures =
        W.get_list c (fun c ->
            let sample = W.get_int c in
            let attempts = W.get_int c in
            let msg = W.get_string c in
            (sample, attempts, msg))
      in
      Chunk_done
        {
          chunk;
          program;
          tool;
          quarantined;
          golden_exit;
          dyn_count;
          profile_cost;
          golden_output_len;
          static_instrumented;
          instrument_s;
          compile_s;
          execute_s;
          harness_s;
          failures;
        }
    | 7 ->
      let chunk = W.get_int c in
      let message = W.get_string c in
      Chunk_failed { chunk; message }
    | 8 ->
      let completed = W.get_int c in
      Heartbeat { completed }
    | 9 -> Shutdown
    | 10 -> Metrics_delta (W.get_list c get_item)
    | 11 -> Trace_batch (W.get_list c get_event)
    | t -> raise (Protocol_mismatch { expected_version = version; tag = t })
  in
  W.expect_end c;
  f

let frame_name = function
  | Hello _ -> "hello"
  | Init _ -> "init"
  | Assign _ -> "assign"
  | Outcome _ -> "outcome"
  | Quarantine _ -> "quarantine"
  | Chunk_done _ -> "chunk-done"
  | Chunk_failed _ -> "chunk-failed"
  | Heartbeat _ -> "heartbeat"
  | Shutdown -> "shutdown"
  | Metrics_delta _ -> "metrics-delta"
  | Trace_batch _ -> "trace-batch"

(* ---- framed IO over file descriptors ---------------------------------- *)

(* one write syscall loop; pipes < PIPE_BUF are atomic, larger frames are
   only ever written from a single thread per direction *)
let write_fd fd frame =
  let s = W.frame (encode frame) in
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

exception Protocol_error of string

type reader = { stream : W.stream; buf : Bytes.t }

let reader () = { stream = W.stream (); buf = Bytes.create 65536 }

(* One [Unix.read] (the caller selected the fd readable), then every
   complete frame buffered so far.  [`Eof] reports the stream end plus any
   torn trailing bytes — a worker killed mid-write. *)
let drain r fd =
  match Unix.read fd r.buf 0 (Bytes.length r.buf) with
  | 0 ->
    let torn = W.residue r.stream in
    `Eof torn
  | n ->
    W.feed r.stream r.buf n;
    let rec pop acc =
      match W.next r.stream with
      | None -> List.rev acc
      | Some payload -> (
        match decode payload with
        | f -> pop (f :: acc)
        | exception (W.Truncated | Invalid_argument _) ->
          raise (Protocol_error "undecodable frame payload"))
    in
    `Frames (pop [])
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Frames []
