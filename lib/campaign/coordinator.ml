(* Shard coordinator (DESIGN.md §16).

   Forks N worker processes (the current executable re-exec'd with
   [REFINE_SHARD_WORKER=1]), shards the (program, tool, sample) matrix
   into chunks, and streams results back over pipes: each resolved sample
   arrives as an [Outcome] frame — a journal line on the wire — and is
   aggregated online, so the coordinator never holds more than the running
   contingency counts plus per-cell metadata.

   Fault tolerance is built from four mechanisms, each pinned by the shard
   smoke tests:

   - heartbeats: workers emit time-gated [Heartbeat] frames from the
     in-flight poll slot; a worker that goes silent past [deadline_s]
     while busy is SIGKILLed.  Death is then observed exactly once, as
     EOF on the worker's pipe — crash, kill and hang all converge on the
     same path.
   - kill-and-reassign: a dead worker's in-flight chunk is requeued with
     its todo list minus the samples already acknowledged, so no sample is
     lost or run twice.  Because every sample owns a deterministic PRNG
     split keyed by (seed, cell, index), the merged results are
     bit-identical to an uninterrupted single-process run.
   - restart with backoff: a dead worker slot is respawned after a
     deterministic, seeded exponential backoff (Supervisor.backoff), at
     most [max_restarts] times, after which the slot stays dead and the
     survivors absorb its share (graceful degradation).
   - work stealing: chunks are dispatched dynamically from one queue, so
     a fast worker drains the share of a slow one; the steal counter
     tracks cells served by more than one worker.

   A worker killed mid-write leaves a torn trailing frame; the strict Wire
   deframer never mis-decodes it — it is counted and dropped, and the
   partial chunk's unacknowledged samples are re-run elsewhere. *)

module E = Experiment
module J = Journal
module S = Shard
module T = Refine_core.Tool
module F = Refine_core.Fault
module Sup = Refine_support.Supervisor
module Obs = Refine_obs

type chaos = {
  kill_worker : (int * int) option;
      (* (slot, after): SIGKILL worker [slot] once [after] unique samples
         have been aggregated — the crash-recovery drill *)
  stop_worker : (int * int) option;
      (* (slot, after): SIGSTOP instead — a hang; only the heartbeat
         deadline can reap it *)
  abort_after : int option;
      (* simulate a coordinator crash: stop after N unique samples, kill
         the workers and raise [Aborted] — the journal then drives a
         resumed run *)
}

let no_chaos = { kill_worker = None; stop_worker = None; abort_after = None }

type options = {
  workers : int;
  chunk_samples : int option; (* samples per chunk; None = pending/(workers*2) *)
  max_restarts : int; (* respawns per worker slot before it stays dead *)
  max_chunk_reassigns : int; (* reassignments per chunk before its samples are dropped *)
  heartbeat_s : float; (* min seconds between worker heartbeats *)
  deadline_s : float;
      (* silence threshold before a busy worker is SIGKILLed; must exceed
         the worst-case prepare (compile + profile) time, which emits no
         heartbeats *)
  backoff_base : float;
  backoff_cap : float;
  exe : string option; (* worker executable; None = Sys.executable_name *)
  chaos : chaos;
  status : Obs.Serve.t option;
      (* live status endpoint, polled from the select loop; the
         coordinator installs its /status provider and marks it finished
         on return — the caller owns create/close *)
}

let default_options =
  {
    workers = 2;
    chunk_samples = None;
    max_restarts = 3;
    max_chunk_reassigns = 4;
    heartbeat_s = 0.02;
    deadline_s = 30.0;
    backoff_base = 0.02;
    backoff_cap = 0.5;
    exe = None;
    chaos = no_chaos;
    status = None;
  }

exception Aborted of int

(* ---- metrics ---------------------------------------------------------- *)

let m_workers = Obs.Metrics.gauge ~help:"live shard worker processes" "refine_shard_workers"

let m_restarts =
  Obs.Metrics.counter ~help:"shard worker respawns after a death" "refine_shard_worker_restarts_total"

let m_steals =
  Obs.Metrics.counter ~help:"chunks picked up by a worker other than the cell's first server"
    "refine_shard_steals_total"

let m_reassigned =
  Obs.Metrics.counter ~help:"samples requeued after their worker died mid-chunk"
    "refine_shard_reassigned_cells_total"

let m_torn =
  Obs.Metrics.counter ~help:"torn trailing frames dropped at worker EOF"
    "refine_shard_torn_frames_total"

let m_dup =
  Obs.Metrics.counter ~help:"duplicate sample outcomes discarded by the coordinator"
    "refine_shard_duplicate_outcomes_total"

let m_lost =
  Obs.Metrics.counter ~help:"samples abandoned after exhausting workers or reassignments"
    "refine_shard_lost_samples_total"

let m_hb =
  Obs.Metrics.histogram ~help:"gap between frames from a busy worker"
    ~buckets:[| 0.001; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0 |]
    "refine_shard_heartbeat_seconds"

let m_frames name =
  Obs.Metrics.counter ~help:"shard frames received by the coordinator"
    ~labels:[ ("type", name) ]
    "refine_shard_frames_total"

(* the campaign-level metrics mirror Experiment's exactly (same names,
   same help), so a sharded campaign feeds the same dashboards — the
   registry is idempotent per (name, labels) *)
let m_samples outcome =
  Obs.Metrics.counter ~help:"resolved campaign samples by outcome"
    ~labels:[ ("outcome", outcome) ]
    "refine_campaign_samples_total"

let m_crash = m_samples "crash"
let m_soc = m_samples "SOC"
let m_benign = m_samples "benign"
let m_tool_error = m_samples "tool-error"

let m_outcome = function
  | F.Crash -> m_crash
  | F.Soc -> m_soc
  | F.Benign -> m_benign
  | F.Tool_error -> m_tool_error

let m_cells =
  Obs.Metrics.counter ~help:"completed (program, tool) campaign cells" "refine_campaign_cells_total"

let m_resumed =
  Obs.Metrics.counter ~help:"samples loaded from a resume journal instead of re-run"
    "refine_campaign_resumed_samples_total"

let m_quarantined reason =
  Obs.Metrics.counter ~help:"campaign cells quarantined instead of sampled"
    ~labels:[ ("reason", reason) ]
    "refine_quarantined_cells_total"

let quarantine_category reason =
  match String.index_opt reason ':' with Some i -> String.sub reason 0 i | None -> reason

(* ---- per-cell aggregation state --------------------------------------- *)

type cell_state = {
  program : string;
  source : string;
  tool : T.kind;
  tool_name : string;
  samples : int;
  resolved : (int, J.entry) Hashtbl.t; (* unique resolved samples, by index *)
  mutable quarantined : string option;
  mutable degraded : string option; (* Chunk_failed message *)
  mutable summary : S.chunk_summary option; (* profile metadata, from the first chunk *)
  mutable timing : E.timing; (* summed over chunks *)
  mutable failures : (int * int * string) list;
  mutable served_by : int list; (* worker slots that ran chunks of this cell *)
}

let cell_alive c = c.quarantined = None && c.degraded = None

type chunk = {
  id : int;
  cell : cell_state;
  mutable todo : int list; (* shrinks as outcomes are acknowledged *)
  mutable reassigns : int;
  mutable assigned_at : float; (* when last handed to a worker; for trace spans *)
  mutable span_id : int; (* dispatch-span id of the current assignment; 0 = none *)
}

(* the compile/run spans live in the worker processes, so the coordinator
   emits its own dispatch-level span per chunk and hands its id to the
   worker in Assign — worker spans re-parent under it, and the merged
   JSONL trace reads as one causal timeline: campaign → chunk dispatch →
   prepare/sample/execute in the worker *)
let emit_chunk_span ~now ~ok ~slot ch =
  if ch.assigned_at > 0.0 then
    Obs.Span.emit
      ?span_id:(if ch.span_id = 0 then None else Some ch.span_id)
      ~attrs:
        [
          ("program", ch.cell.program);
          ("tool", ch.cell.tool_name);
          ("chunk", string_of_int ch.id);
          ("worker", string_of_int slot);
        ]
      ~ok ~name:"chunk" ~dur_s:(now -. ch.assigned_at) ()

type wstate = Idle | Busy of chunk | Waiting of float (* respawn at *) | Dead

type worker = {
  slot : int;
  mutable pid : int;
  mutable to_w : Unix.file_descr;
  mutable from_w : Unix.file_descr;
  mutable reader : S.reader;
  mutable state : wstate;
  mutable last_seen : float;
  mutable restarts : int;
  mutable kill_sent : bool;
  mutable alive : bool; (* pid running, fds open *)
  mutable merge : Obs.Metrics.merge_state;
      (* last-applied telemetry per worker *incarnation*: reset on respawn,
         because a fresh process restarts its cumulative counters from
         zero.  The dead incarnation's last-shipped totals stay merged;
         whatever it hadn't shipped died with it — the metrics mirror of
         the journal's torn-line policy. *)
}

let add_timing (a : E.timing) (s : S.chunk_summary) =
  {
    E.instrument_s = a.E.instrument_s +. s.S.instrument_s;
    compile_s = a.E.compile_s +. s.S.compile_s;
    execute_s = a.E.execute_s +. s.S.execute_s;
    harness_s = a.E.harness_s +. s.S.harness_s;
  }

(* ---- worker processes ------------------------------------------------- *)

let worker_env ~in_fd ~out_fd =
  let keep kv =
    let own p = String.length kv >= String.length p && String.sub kv 0 (String.length p) = p in
    not (own (Worker.env_var ^ "=") || own (Worker.fds_var ^ "="))
  in
  Array.of_list
    ((Worker.env_var ^ "=1")
    :: Printf.sprintf "%s=%d,%d" Worker.fds_var (Worker.int_of_fd in_fd)
         (Worker.int_of_fd out_fd)
    :: List.filter keep (Array.to_list (Unix.environment ())))

(* The frame pipes are passed as inherited fds by number (fds_var), NOT as
   stdin/stdout: a worker inherits the coordinator's std streams, so a
   library that prints at init (test runners love to) cannot corrupt the
   protocol.  Parent ends are close-on-exec so one worker never holds
   another worker's pipe open. *)
let spawn ~exe ~config w =
  let c2w_r, c2w_w = Unix.pipe () in
  let w2c_r, w2c_w = Unix.pipe () in
  Unix.set_close_on_exec c2w_w;
  Unix.set_close_on_exec w2c_r;
  let env = worker_env ~in_fd:c2w_r ~out_fd:w2c_w in
  let pid = Unix.create_process_env exe [| exe |] env Unix.stdin Unix.stdout Unix.stderr in
  Unix.close c2w_r;
  Unix.close w2c_w;
  w.pid <- pid;
  w.to_w <- c2w_w;
  w.from_w <- w2c_r;
  w.reader <- S.reader ();
  w.state <- Idle;
  w.last_seen <- Unix.gettimeofday ();
  w.kill_sent <- false;
  w.alive <- true;
  w.merge <- Obs.Metrics.merge_source ();
  S.write_fd c2w_w (S.Init config)

let sigkill w = try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ()

let reap w =
  (try Unix.close w.to_w with Unix.Unix_error _ -> ());
  (try Unix.close w.from_w with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ()

(* ---- the campaign ----------------------------------------------------- *)

let run_matrix ?(options = default_options) ?journal ?(retries = 0) ?cost_cap
    ?(quotas = T.default_quotas) ?(model = F.Reg_bit) ?pipeline ?(verify_mir = true)
    ?(verify_each = false) ?(cache = true) ~samples ~seed
    (programs : (string * string) list) (tools : T.kind list) : E.cell list =
  if options.workers < 1 then invalid_arg "Coordinator.run_matrix: workers < 1";
  let model_name = F.string_of_model model in
  (* a worker dying mid-assign must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let exe = match options.exe with Some e -> e | None -> Sys.executable_name in
  let config =
    {
      S.seed;
      retries;
      cost_cap;
      output_quota = quotas.T.output_bytes;
      wall_clock = quotas.T.wall_clock_s;
      livelock = quotas.T.livelock_window;
      verify_mir;
      verify_each;
      cache;
      pipeline = Option.map Refine_passes.Pipeline.print pipeline;
      heartbeat_s = options.heartbeat_s;
      obs = Obs.Control.enabled ();
      trace = Obs.Span.sink_active ();
    }
  in
  (* one trace per campaign; the id stamps the coordinator's chunk spans
     and travels to workers in every Assign *)
  let trace_id =
    if config.S.trace then Printf.sprintf "c%d-%x" (Unix.getpid ()) (seed land 0xffffff) else ""
  in
  if trace_id <> "" then Obs.Span.set_context ~trace:trace_id ();
  (* cells, prefilled from the resume journal (same semantics as
     Experiment.run_cell: resolved samples load instead of re-running, a
     journaled quarantine short-circuits the cell) *)
  let cells =
    List.concat_map
      (fun (program, source) ->
        List.map
          (fun tool ->
            let tool_name = T.kind_name tool in
            let resolved = Hashtbl.create 64 in
            let quarantined = ref None in
            (match journal with
            | None -> ()
            | Some j -> (
              match J.quarantine_reason j ~program ~tool:tool_name with
              | Some reason ->
                quarantined := Some reason;
                Obs.Metrics.inc (m_quarantined (quarantine_category reason))
              | None ->
                Hashtbl.iter
                  (fun i e ->
                    if i >= 0 && i < samples then begin
                      Obs.Metrics.inc m_resumed;
                      Hashtbl.replace resolved i e
                    end)
                  (J.completed ~model:model_name j ~program ~tool:tool_name)));
            {
              program;
              source;
              tool;
              tool_name;
              samples;
              resolved;
              quarantined = !quarantined;
              degraded = None;
              summary = None;
              timing = E.zero_timing;
              failures = [];
              served_by = [];
            })
          tools)
      programs
  in
  let chunks_by_id : (int, chunk) Hashtbl.t = Hashtbl.create 64 in
  let cells_by_key : (string, cell_state) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace cells_by_key (c.program ^ "\000" ^ c.tool_name) c) cells;
  let queue : chunk Queue.t = Queue.create () in
  let next_id = ref 0 in
  List.iter
    (fun cell ->
      if cell_alive cell then begin
        let pending = ref [] in
        for i = samples - 1 downto 0 do
          if not (Hashtbl.mem cell.resolved i) then pending := i :: !pending
        done;
        let size =
          match options.chunk_samples with
          | Some n -> max 1 n
          | None -> max 1 (List.length !pending / (options.workers * 2))
        in
        let push todo =
          let ch = { id = !next_id; cell; todo; reassigns = 0; assigned_at = 0.0; span_id = 0 } in
          incr next_id;
          Hashtbl.replace chunks_by_id ch.id ch;
          Queue.add ch queue
        in
        let rec split = function
          | [] -> ()
          | todo ->
            let rec take n = function
              | x :: tl when n > 0 ->
                let head, rest = take (n - 1) tl in
                (x :: head, rest)
              | rest -> ([], rest)
            in
            let head, rest = take size todo in
            push head;
            split rest
        in
        (* a cell fully resolved from the journal still needs one empty
           assignment: Experiment.run_cell always prepares (compile +
           profile), so the resumed cell must carry the same dyn_count /
           profile_cost / static-site numbers — the Chunk_done summary is
           the only way they reach the coordinator *)
        if !pending = [] then push [] else split !pending
      end)
    cells;
  (* worker slots *)
  let workers =
    Array.init options.workers (fun slot ->
        {
          slot;
          pid = -1;
          to_w = Unix.stdin;
          from_w = Unix.stdin;
          reader = S.reader ();
          state = Dead;
          last_seen = 0.0;
          restarts = 0;
          kill_sent = false;
          alive = false;
          merge = Obs.Metrics.merge_source ();
        })
  in
  let alive_count () =
    Array.fold_left (fun n w -> if w.alive then n + 1 else n) 0 workers
  in
  let unique = ref 0 in
  let aborted = ref false in
  let kill_fired = ref false in
  let stop_fired = ref false in
  let check_chaos () =
    (match options.chaos.kill_worker with
    | Some (slot, after) when (not !kill_fired) && !unique >= after ->
      kill_fired := true;
      if slot >= 0 && slot < Array.length workers && workers.(slot).alive then
        sigkill workers.(slot)
    | _ -> ());
    (match options.chaos.stop_worker with
    | Some (slot, after) when (not !stop_fired) && !unique >= after ->
      stop_fired := true;
      if slot >= 0 && slot < Array.length workers && workers.(slot).alive then (
        try Unix.kill workers.(slot).pid Sys.sigstop with Unix.Unix_error _ -> ())
    | _ -> ());
    match options.chaos.abort_after with
    | Some after when !unique >= after -> aborted := true
    | _ -> ()
  in
  (* an empty-todo chunk is still worth running while its cell lacks a
     profile summary (summary-only assignment, see the chunking above) *)
  let chunk_live ch = cell_alive ch.cell && (ch.todo <> [] || ch.cell.summary = None) in
  let requeue ch =
    if chunk_live ch then begin
      ch.reassigns <- ch.reassigns + 1;
      if ch.reassigns > options.max_chunk_reassigns then begin
        Obs.Metrics.add m_lost (List.length ch.todo);
        Printf.eprintf "[shard] chunk %d abandoned after %d reassignments (%d samples lost)\n%!"
          ch.id ch.reassigns (List.length ch.todo)
      end
      else begin
        Obs.Metrics.add m_reassigned (List.length ch.todo);
        Queue.add ch queue
      end
    end
  in
  let handle_death w =
    if w.alive then begin
      reap w;
      w.alive <- false;
      (match w.state with
      | Busy ch ->
        emit_chunk_span ~now:(Unix.gettimeofday ()) ~ok:false ~slot:w.slot ch;
        requeue ch
      | _ -> ());
      if w.restarts < options.max_restarts then begin
        w.restarts <- w.restarts + 1;
        Obs.Metrics.inc m_restarts;
        let delay =
          Sup.backoff ~base:options.backoff_base ~cap:options.backoff_cap
            ~seed:(seed lxor w.slot) w.restarts
        in
        w.state <- Waiting (Unix.gettimeofday () +. delay)
      end
      else w.state <- Dead;
      Obs.Metrics.set m_workers (float_of_int (alive_count ()))
    end
  in
  let rec next_chunk () =
    match Queue.take_opt queue with
    | None -> None
    | Some ch -> if chunk_live ch then Some ch else next_chunk ()
  in
  let try_assign w =
    match next_chunk () with
    | None -> ()
    | Some ch ->
      let cell = ch.cell in
      if ch.reassigns = 0 && cell.served_by <> [] && not (List.mem w.slot cell.served_by) then
        Obs.Metrics.inc m_steals;
      if not (List.mem w.slot cell.served_by) then cell.served_by <- w.slot :: cell.served_by;
      w.state <- Busy ch;
      ch.assigned_at <- Unix.gettimeofday ();
      (* each dispatch is its own span: a reassigned chunk gets a fresh id,
         so the death-span and the retry-span stay distinct in the trace *)
      ch.span_id <- (if trace_id = "" then 0 else Obs.Span.fresh_id ());
      (try
         S.write_fd w.to_w
           (S.Assign
              {
                chunk = ch.id;
                program = cell.program;
                source = cell.source;
                tool = cell.tool_name;
                model = model_name;
                samples = cell.samples;
                todo = ch.todo;
                trace = trace_id;
                parent_span = ch.span_id;
              })
       with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) ->
         (* the worker died before the assign: requeue (via Busy state)
            and reap *)
         handle_death w)
  in
  let handle_frame ~now w frame =
    Obs.Metrics.inc (m_frames (S.frame_name frame));
    (match frame with
    | S.Heartbeat _ -> Obs.Metrics.observe m_hb (now -. w.last_seen)
    | _ -> ());
    w.last_seen <- now;
    match frame with
    | S.Hello { version; _ } ->
      if version <> S.version then begin
        Printf.eprintf "[shard] worker %d speaks protocol v%d, coordinator v%d — killing\n%!"
          w.slot version S.version;
        sigkill w;
        handle_death w
      end
    | S.Heartbeat _ -> ()
    | S.Outcome { chunk = id; entry } -> (
      match Hashtbl.find_opt chunks_by_id id with
      | None -> ()
      | Some ch ->
        let cell = ch.cell in
        ch.todo <- List.filter (fun i -> i <> entry.J.sample) ch.todo;
        if Hashtbl.mem cell.resolved entry.J.sample then Obs.Metrics.inc m_dup
        else begin
          (* normalize the identity to the coordinator's view of the cell *)
          let entry =
            { entry with J.program = cell.program; tool = cell.tool_name; model = model_name }
          in
          Hashtbl.replace cell.resolved entry.J.sample entry;
          incr unique;
          Obs.Metrics.inc (m_outcome entry.J.outcome);
          (match journal with Some j -> J.record j entry | None -> ());
          check_chaos ()
        end)
    | S.Quarantine { program; tool; reason } -> (
      match Hashtbl.find_opt cells_by_key (program ^ "\000" ^ tool) with
      | None -> ()
      | Some cell ->
        if cell.quarantined = None then begin
          cell.quarantined <- Some reason;
          Obs.Metrics.inc (m_quarantined (quarantine_category reason));
          match journal with
          | Some j -> J.record_quarantine j ~program ~tool ~reason
          | None -> ()
        end)
    | S.Chunk_done s -> (
      (match w.state with
      | Busy ch when ch.id = s.S.chunk -> w.state <- Idle
      | _ -> ());
      match Hashtbl.find_opt chunks_by_id s.S.chunk with
      | None -> ()
      | Some ch ->
        let cell = ch.cell in
        emit_chunk_span ~now ~ok:true ~slot:w.slot ch;
        if not s.S.quarantined then begin
          if cell.summary = None then cell.summary <- Some s;
          cell.timing <- add_timing cell.timing s;
          cell.failures <- cell.failures @ s.S.failures
        end;
        (* defensive: a summary with unresolved todo (cancelled samples)
           goes back to the queue *)
        if ch.todo <> [] && cell_alive cell then requeue ch)
    | S.Chunk_failed { chunk = id; message } -> (
      (match w.state with
      | Busy ch when ch.id = id -> w.state <- Idle
      | _ -> ());
      match Hashtbl.find_opt chunks_by_id id with
      | None -> ()
      | Some ch -> if ch.cell.degraded = None then ch.cell.degraded <- Some message)
    | S.Metrics_delta items ->
      (* cumulative snapshot → per-incarnation delta → local registry;
         after the last chunk's ship this registry is the fleet union *)
      Obs.Metrics.merge_snapshot w.merge items
    | S.Trace_batch events ->
      (* already re-parented by the worker's trace context; sink-only so
         span metrics (which arrive via deltas) are not double counted *)
      List.iter Obs.Span.forward events
    | S.Init _ | S.Assign _ | S.Shutdown ->
      Printf.eprintf "[shard] worker %d sent coordinator frame %s — killing\n%!" w.slot
        (S.frame_name frame);
      sigkill w;
      handle_death w
  in
  let process w =
    match S.drain w.reader w.from_w with
    | `Eof torn ->
      if torn > 0 then Obs.Metrics.inc m_torn;
      handle_death w
    | `Frames fs ->
      let now = Unix.gettimeofday () in
      List.iter (fun f -> if w.alive then handle_frame ~now w f) fs
    | exception S.Protocol_error msg ->
      Printf.eprintf "[shard] worker %d: %s — killing\n%!" w.slot msg;
      sigkill w;
      handle_death w
    | exception S.Protocol_mismatch { expected_version; tag } ->
      (* version skew, not corruption: the worker is a different build *)
      Printf.eprintf
        "[shard] worker %d sent frame tag %d unknown to protocol v%d — version skew, killing\n%!"
        w.slot tag expected_version;
      sigkill w;
      handle_death w
    | exception Unix.Unix_error _ -> handle_death w
  in
  (* live status endpoint: install the /status provider over this
     campaign's aggregation state; polled from the select loop below *)
  let finished = ref false in
  (match options.status with
  | None -> ()
  | Some srv ->
    Obs.Serve.set_status srv (fun () ->
        let now = Unix.gettimeofday () in
        let sdone, cdone, quar =
          List.fold_left
            (fun (sd, cd, q) c ->
              match (c.quarantined, c.degraded) with
              | Some _, _ -> (sd + c.samples, cd + 1, q + 1)
              | _, Some _ -> (sd + c.samples, cd + 1, q)
              | None, None ->
                let r = Hashtbl.length c.resolved in
                (sd + r, (if r >= c.samples then cd + 1 else cd), q))
            (0, 0, 0) cells
        in
        {
          Obs.Serve.p_samples_done = sdone;
          p_samples_total = List.length cells * samples;
          p_cells_done = cdone;
          p_cells_total = List.length cells;
          p_cells_quarantined = quar;
          p_workers =
            Some
              (Array.to_list workers
              |> List.map (fun w ->
                     {
                       Obs.Serve.w_slot = w.slot;
                       w_pid = w.pid;
                       w_alive = w.alive;
                       w_state =
                         (match w.state with
                         | Idle -> "idle"
                         | Busy _ -> "busy"
                         | Waiting _ -> "waiting"
                         | Dead -> "dead");
                       w_last_seen_s =
                         (if w.last_seen > 0.0 then now -. w.last_seen else -1.0);
                       w_restarts = w.restarts;
                     }));
          p_finished = !finished;
        }));
  let poll_status () = Option.iter Obs.Serve.poll options.status in
  (* launch *)
  Array.iter
    (fun w -> try spawn ~exe ~config w with Unix.Unix_error _ -> w.state <- Dead)
    workers;
  Obs.Metrics.set m_workers (float_of_int (alive_count ()));
  let work_left () =
    (not (Queue.is_empty queue))
    || Array.exists (fun w -> match w.state with Busy _ -> true | _ -> false) workers
  in
  let any_slot () =
    Array.exists (fun w -> match w.state with Dead -> false | _ -> true) workers
  in
  while (not !aborted) && work_left () && any_slot () do
    let now = Unix.gettimeofday () in
    Array.iter
      (fun w ->
        match w.state with
        | Waiting t when now >= t -> (
          try spawn ~exe ~config w with Unix.Unix_error _ -> w.state <- Dead)
        | _ -> ())
      workers;
    Obs.Metrics.set m_workers (float_of_int (alive_count ()));
    Array.iter (fun w -> if w.alive && w.state = Idle then try_assign w) workers;
    let readable_of =
      Array.to_list workers |> List.filter (fun w -> w.alive) |> List.map (fun w -> (w.from_w, w))
    in
    let srv_fds = match options.status with Some s -> Obs.Serve.fds s | None -> [] in
    (if readable_of = [] && srv_fds = [] then Unix.sleepf 0.005
     else
       match Unix.select (List.map fst readable_of @ srv_fds) [] [] 0.05 with
       | readable, _, _ ->
         List.iter
           (fun fd ->
             match List.assoc_opt fd readable_of with Some w -> process w | None -> ())
           readable
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    poll_status ();
    let now = Unix.gettimeofday () in
    Array.iter
      (fun w ->
        match w.state with
        | Busy _ when w.alive && (not w.kill_sent) && now -. w.last_seen > options.deadline_s ->
          Printf.eprintf "[shard] worker %d silent for %.2fs — SIGKILL\n%!" w.slot
            (now -. w.last_seen);
          w.kill_sent <- true;
          sigkill w
        | _ -> ())
      workers
  done;
  (* shutdown: aborted runs kill outright, clean runs ask politely *)
  Array.iter
    (fun w ->
      if w.alive then begin
        if !aborted then sigkill w
        else (try S.write_fd w.to_w S.Shutdown with Unix.Unix_error _ -> ());
        reap w;
        w.alive <- false
      end)
    workers;
  Obs.Metrics.set m_workers 0.0;
  finished := true;
  poll_status ();
  if trace_id <> "" then Obs.Span.clear_context ();
  if !aborted then raise (Aborted !unique);
  (* anything still queued ran out of workers *)
  let stranded =
    Queue.fold
      (fun n ch -> if cell_alive ch.cell then n + List.length ch.todo else n)
      0 queue
  in
  if stranded > 0 then begin
    Obs.Metrics.add m_lost stranded;
    Printf.eprintf "[shard] %d samples stranded: every worker slot is dead\n%!" stranded
  end;
  (* fold the aggregation state into ordinary campaign cells *)
  List.map
    (fun c ->
      match (c.quarantined, c.degraded) with
      | Some reason, _ ->
        {
          E.program = c.program;
          tool = c.tool;
          model;
          samples = c.samples;
          counts = E.zero;
          injection_cost = 0L;
          profile = { F.golden_output = ""; golden_exit = 0; dyn_count = 0L; profile_cost = 0L };
          static_instrumented = 0;
          failures = [];
          timing = E.zero_timing;
          quarantined = Some reason;
        }
      | None, Some message ->
        {
          E.program = c.program;
          tool = c.tool;
          model;
          samples = c.samples;
          counts = { E.zero with E.tool_error = c.samples };
          injection_cost = 0L;
          profile = { F.golden_output = ""; golden_exit = 0; dyn_count = 0L; profile_cost = 0L };
          static_instrumented = 0;
          failures = [ { Sup.index = -1; attempts = 1; exn = Failure message; backtrace = "" } ];
          timing = E.zero_timing;
          quarantined = None;
        }
      | None, None ->
        let counts, injection_cost =
          Hashtbl.fold
            (fun _ (e : J.entry) (acc, cost) ->
              (E.add_outcome acc e.J.outcome, Int64.add cost e.J.cost))
            c.resolved (E.zero, 0L)
        in
        (* like CSV-loaded cells, the golden output itself stays with the
           worker — only its length crossed the wire *)
        let profile =
          match c.summary with
          | Some s ->
            {
              F.golden_output = "";
              golden_exit = s.S.golden_exit;
              dyn_count = s.S.dyn_count;
              profile_cost = s.S.profile_cost;
            }
          | None -> { F.golden_output = ""; golden_exit = 0; dyn_count = 0L; profile_cost = 0L }
        in
        Obs.Metrics.inc m_cells;
        {
          E.program = c.program;
          tool = c.tool;
          model;
          samples = c.samples;
          counts;
          injection_cost;
          profile;
          static_instrumented =
            (match c.summary with Some s -> s.S.static_instrumented | None -> 0);
          failures =
            List.map
              (fun (index, attempts, msg) ->
                { Sup.index; attempts; exn = Failure msg; backtrace = "" })
              c.failures;
          timing = c.timing;
          quarantined = None;
        })
    cells
