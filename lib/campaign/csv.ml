(* CSV export/import of campaign results, so long campaigns can be archived
   and re-analyzed without re-running (the paper's 44,856-experiment matrix
   took cluster time; ours persists to a file).

   The current schema appends the fault-model columns ([fault_model],
   [bits], DESIGN.md §18); [of_string] also accepts the pre-model 17-column
   header, loading such rows as Reg_bit cells, so archived campaigns stay
   readable forever. *)

module E = Experiment
module T = Refine_core.Tool
module F = Refine_core.Fault

let header =
  "program,tool,fault_model,bits,samples,crash,soc,benign,tool_error,dyn_count,profile_cost,injection_cost,static_sites,instrument_s,compile_s,execute_s,harness_s,quarantined,quarantine_reason"

(* the pre-model schema (v1): no fault_model/bits columns *)
let legacy_header =
  "program,tool,samples,crash,soc,benign,tool_error,dyn_count,profile_cost,injection_cost,static_sites,instrument_s,compile_s,execute_s,harness_s,quarantined,quarantine_reason"

(* reasons must stay a single CSV field; Journal.record_quarantine already
   sanitized journaled ones, but cells can also arrive directly *)
let sanitize_reason s =
  String.map (function ',' | '\n' | '\r' | '\t' -> ' ' | c -> c) s

let row_of_cell (c : E.cell) =
  Printf.sprintf "%s,%s,%s,%d,%d,%d,%d,%d,%d,%Ld,%Ld,%Ld,%d,%.6f,%.6f,%.6f,%.6f,%d,%s"
    c.E.program (T.kind_name c.E.tool)
    (F.string_of_model c.E.model)
    (F.model_bits c.E.model) c.E.samples c.E.counts.E.crash c.E.counts.E.soc
    c.E.counts.E.benign c.E.counts.E.tool_error c.E.profile.Refine_core.Fault.dyn_count
    c.E.profile.Refine_core.Fault.profile_cost c.E.injection_cost c.E.static_instrumented
    c.E.timing.E.instrument_s c.E.timing.E.compile_s c.E.timing.E.execute_s
    c.E.timing.E.harness_s
    (match c.E.quarantined with Some _ -> 1 | None -> 0)
    (match c.E.quarantined with Some r -> sanitize_reason r | None -> "")

let to_string (cells : E.cell list) =
  String.concat "\n" (header :: List.map row_of_cell cells) ^ "\n"

let save path cells =
  let oc = open_out path in
  output_string oc (to_string cells);
  close_out oc

exception Parse_error of string

let tool_of_name = function
  | "REFINE" -> T.Refine
  | "LLFI" -> T.Llfi
  | "PINFI" -> T.Pinfi
  | s -> raise (Parse_error ("unknown tool " ^ s))

let model_of_name s =
  try F.model_of_string s
  with Invalid_argument _ -> raise (Parse_error ("unknown fault model " ^ s))

(* Parses rows back into cells.  The golden output is not persisted (it can
   be arbitrarily large); reloaded profiles carry an empty golden output and
   are suitable for statistics, not for re-running injections. *)
let of_string (s : string) : E.cell list =
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "") in
  match lines with
  | [] -> []
  | hdr :: rows ->
    let legacy =
      if String.trim hdr = header then false
      else if String.trim hdr = legacy_header then true
      else raise (Parse_error "unexpected CSV header")
    in
    let cell ~program ~tool ~model ~samples ~crash ~soc ~benign ~tool_error ~dyn ~pcost
        ~icost ~sites ~instr_s ~comp_s ~exec_s ~harn_s ~quarantined ~reason =
      {
        E.program;
        tool = tool_of_name tool;
        model;
        samples = int_of_string samples;
        counts =
          {
            E.crash = int_of_string crash;
            soc = int_of_string soc;
            benign = int_of_string benign;
            tool_error = int_of_string tool_error;
          };
        injection_cost = Int64.of_string icost;
        profile =
          {
            Refine_core.Fault.golden_output = "";
            golden_exit = 0;
            dyn_count = Int64.of_string dyn;
            profile_cost = Int64.of_string pcost;
          };
        static_instrumented = int_of_string sites;
        failures = [];
        timing =
          {
            E.instrument_s = float_of_string instr_s;
            compile_s = float_of_string comp_s;
            execute_s = float_of_string exec_s;
            harness_s = float_of_string harn_s;
          };
        quarantined = (if int_of_string quarantined <> 0 then Some reason else None);
      }
    in
    List.map
      (fun line ->
        match (legacy, String.split_on_char ',' line) with
        | ( false,
            [
              program; tool; model; _bits; samples; crash; soc; benign; tool_error; dyn; pcost;
              icost; sites; instr_s; comp_s; exec_s; harn_s; quarantined; reason;
            ] ) ->
          (* [bits] is derivable from the model string; it exists for
             spreadsheet convenience and is not re-validated here *)
          cell ~program ~tool ~model:(model_of_name model) ~samples ~crash ~soc ~benign
            ~tool_error ~dyn ~pcost ~icost ~sites ~instr_s ~comp_s ~exec_s ~harn_s ~quarantined
            ~reason
        | ( true,
            [
              program; tool; samples; crash; soc; benign; tool_error; dyn; pcost; icost; sites;
              instr_s; comp_s; exec_s; harn_s; quarantined; reason;
            ] ) ->
          cell ~program ~tool ~model:F.Reg_bit ~samples ~crash ~soc ~benign ~tool_error ~dyn
            ~pcost ~icost ~sites ~instr_s ~comp_s ~exec_s ~harn_s ~quarantined ~reason
        | _ -> raise (Parse_error ("bad CSV row: " ^ line)))
      rows

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
