(** Shard coordinator (DESIGN.md §16): forks {!Worker} processes, shards
    the campaign matrix into chunks, streams resolved samples back as
    {!Shard} frames and aggregates them online.

    Fault model: a worker crash, SIGKILL, or hang (detected by heartbeat
    silence past [deadline_s] and converted to a SIGKILL) all converge on
    pipe EOF; the dead worker's in-flight chunk is requeued with its todo
    list minus the acknowledged samples, and the slot is respawned after a
    deterministic seeded backoff ({!Refine_support.Supervisor.backoff}),
    at most [max_restarts] times.  Because every sample owns a
    deterministic PRNG split, the merged results are bit-identical to an
    uninterrupted single-process run with the same seed — the property the
    shard smoke tests pin by SIGKILLing a worker mid-campaign. *)

type chaos = {
  kill_worker : (int * int) option;
      (** [(slot, after)]: SIGKILL worker [slot] once [after] unique
          samples have been aggregated *)
  stop_worker : (int * int) option;
      (** SIGSTOP instead — a hang only the heartbeat deadline can reap *)
  abort_after : int option;
      (** simulate a coordinator crash: kill the workers after N unique
          samples and raise {!Aborted}; the journal then drives a resume *)
}

val no_chaos : chaos

type options = {
  workers : int;
  chunk_samples : int option;
      (** samples per dispatched chunk; [None] = pending / (workers * 2) *)
  max_restarts : int;  (** respawns per worker slot before it stays dead *)
  max_chunk_reassigns : int;
      (** reassignments per chunk before its samples are dropped (counted
          in [refine_shard_lost_samples_total]) *)
  heartbeat_s : float;  (** min seconds between worker heartbeats *)
  deadline_s : float;
      (** silence threshold before a busy worker is SIGKILLed; must exceed
          the worst-case prepare time, which emits no heartbeats *)
  backoff_base : float;
  backoff_cap : float;
  exe : string option;
      (** worker executable; [None] = [Sys.executable_name] (the
          embedding binary must call {!Worker.maybe_exec} first) *)
  chaos : chaos;
  status : Refine_obs.Serve.t option;
      (** live status endpoint: the coordinator installs its [/status]
          provider (progress, per-worker liveness/restarts, rolling
          samples/s, ETA) and polls the server from its select loop; the
          caller owns create/close and may keep serving after return —
          the provider stays valid and reports [finished] *)
}

val default_options : options
(** 2 workers, 3 restarts, 20ms heartbeats, 30s deadline, no chaos. *)

exception Aborted of int
(** Raised by the [abort_after] chaos hook with the number of samples
    aggregated before the simulated coordinator crash. *)

val run_matrix :
  ?options:options ->
  ?journal:Journal.t ->
  ?retries:int ->
  ?cost_cap:int64 ->
  ?quotas:Refine_core.Tool.quotas ->
  ?model:Refine_core.Fault.model ->
  ?pipeline:Refine_passes.Pipeline.spec ->
  ?verify_mir:bool ->
  ?verify_each:bool ->
  ?cache:bool ->
  samples:int ->
  seed:int ->
  (string * string) list ->
  Refine_core.Tool.kind list ->
  Experiment.cell list
(** The sharded twin of {!Experiment.run_matrix}: same matrix, same
    journal resume semantics (resolved samples load instead of re-running;
    journaled quarantines short-circuit), same bit-identical counts and
    injection costs for a given [seed] — pinned by the workers-vs-domains
    equality test.  [model] (default {!Refine_core.Fault.Reg_bit}) travels
    to workers in every [Assign] frame and stamps resolved entries, so
    per-model campaigns shard exactly like register-bit ones.  Differences: cells carry an empty [golden_output]
    (like CSV-loaded cells, only its length crosses the wire) and
    [timing] sums per-chunk attributions, so repeated chunk preparations
    legitimately inflate it relative to a single-process run.  Only the
    [output_bytes] / [wall_clock_s] / [livelock_window] quota fields
    travel to workers (the CLI surface); the rest stay at defaults.

    Observability plane (DESIGN.md §17): when {!Refine_obs.Control} is
    enabled, workers forward cumulative registry snapshots that are
    merged per-incarnation into the coordinator's registry — with
    cell-granular chunking ([chunk_samples = Some samples]) the merged
    counters equal the [--domains] single-process run.  When a span sink
    is active, one trace id spans the campaign and worker spans re-parent
    under per-chunk dispatch spans. *)
