(** Wire protocol of the sharded campaign service (DESIGN.md §16).

    The checkpoint journal promoted to a process boundary: the
    {!Coordinator} shards the cell matrix into chunks, {!Worker} processes
    resolve them and stream each sample back as a length-prefixed
    journal-entry frame plus heartbeats, quarantines and chunk summaries.
    Encoding uses the strict {!Refine_support.Wire} codec: every frame
    round-trips exactly, no strict prefix of a valid frame decodes, and
    trailing bytes are rejected (all three pinned by [test_shard]'s qcheck
    properties). *)

val version : int
(** v2: observability plane — [Init] carries obs/trace switches, [Assign]
    carries the trace context, workers stream [Metrics_delta] /
    [Trace_batch] frames (DESIGN.md §17).
    v3: fault models — [Assign] carries the cell's fault model and
    [Outcome] entries echo it back (DESIGN.md §18). *)

exception Protocol_mismatch of { expected_version : int; tag : int }
(** {!decode} met a frame tag this protocol version does not know — a
    version skew between coordinator and worker, reported with the local
    {!version} and the offending tag so the error names both sides. *)

type config = {
  seed : int;
  retries : int;
  cost_cap : int64 option;
  output_quota : int option;
  wall_clock : float option;
  livelock : int option;
  verify_mir : bool;
  verify_each : bool;
  cache : bool;
  pipeline : string option;  (** [Pipeline.print] form; [None] = tool default *)
  heartbeat_s : float;  (** min seconds between worker heartbeat frames *)
  obs : bool;  (** worker enables its registry and forwards deltas *)
  trace : bool;  (** worker buffers spans and ships [Trace_batch] frames *)
}
(** Campaign-wide settings, sent once per worker as the [Init] frame —
    the worker-process mirror of {!Experiment.run_cell}'s options. *)

val default_config : config

type chunk_summary = {
  chunk : int;
  program : string;
  tool : string;
  quarantined : bool;
  golden_exit : int;
  dyn_count : int64;
  profile_cost : int64;
  golden_output_len : int;
  static_instrumented : int;
  instrument_s : float;
  compile_s : float;
  execute_s : float;
  harness_s : float;
  failures : (int * int * string) list;
      (** (sample, attempts, message) of retry-exhausted samples *)
}
(** Per-chunk completion report: the cell metadata the coordinator cannot
    derive from outcome frames alone (profile, instrumentation site count,
    wall-clock phase attribution, failure detail). *)

type frame =
  | Hello of { pid : int; version : int }  (** worker → coordinator, once *)
  | Init of config  (** coordinator → worker, once *)
  | Assign of {
      chunk : int;
      program : string;
      source : string;  (** program source travels inline — no shared filesystem *)
      tool : string;  (** {!Refine_core.Tool.kind_name} *)
      model : string;  (** {!Refine_core.Fault.string_of_model} *)
      samples : int;  (** full cell sample count — keys the PRNG splits *)
      todo : int list;  (** sample indices this chunk must resolve *)
      trace : string;  (** campaign trace id; [""] when tracing is off *)
      parent_span : int;  (** coordinator's dispatch-span id for this chunk *)
    }
  | Outcome of { chunk : int; entry : Journal.entry }
      (** one resolved sample — a journal line on the wire *)
  | Quarantine of { program : string; tool : string; reason : string }
  | Chunk_done of chunk_summary
  | Chunk_failed of { chunk : int; message : string }
      (** non-quarantine preparation failure: the cell degrades *)
  | Heartbeat of { completed : int }
  | Shutdown  (** coordinator → worker: exit after the current frame *)
  | Metrics_delta of Refine_obs.Metrics.export_item list
      (** worker → coordinator: cumulative registry snapshot (the
          coordinator's {!Refine_obs.Metrics.merge_snapshot} turns it into
          a delta) *)
  | Trace_batch of Refine_obs.Span.event list
      (** worker → coordinator: buffered spans, already re-parented under
          the Assign trace context *)

val tool_of_name : string -> Refine_core.Tool.kind
(** Inverse of {!Refine_core.Tool.kind_name}; [Invalid_argument] on
    unknown names. *)

val encode : frame -> string
(** Unframed payload (tag byte + fields). *)

val decode : string -> frame
(** Inverse of {!encode}.  Raises {!Refine_support.Wire.Truncated} on a
    short buffer, {!Protocol_mismatch} on an unknown frame tag, and
    [Invalid_argument] on a malformed field or trailing bytes. *)

val frame_name : frame -> string
(** Stable lowercase label, used by the [refine_shard_frames_total{type}]
    metric. *)

(** {1 Framed IO over file descriptors} *)

exception Protocol_error of string
(** A peer sent bytes that deframe but do not decode. *)

val write_fd : Unix.file_descr -> frame -> unit
(** Write one length-prefixed frame, looping until fully written.  Raises
    [Unix.Unix_error (EPIPE, _, _)] if the peer is gone (the coordinator
    treats that as a worker death). *)

type reader
(** Per-pipe incremental deframer. *)

val reader : unit -> reader

val drain :
  reader -> Unix.file_descr -> [ `Frames of frame list | `Eof of int ]
(** One [Unix.read] (call after [select] reports the fd readable), then
    every complete frame received so far, in order.  [`Eof torn] reports
    end-of-stream with the byte count of a torn trailing frame (peer
    killed mid-write) — those bytes are dropped, never mis-decoded. *)
