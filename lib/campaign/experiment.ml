(* Campaign orchestration: N statistically-sized fault-injection
   experiments per (program, tool) cell, as in the paper's §5.3 — one
   uniformly chosen single bit flip per run, outcomes tallied into a
   crash/SOC/benign contingency row.

   Each experiment owns a split of the master PRNG, so results are
   deterministic for a given seed regardless of how work is distributed
   over domains, which samples are replayed from a checkpoint journal, or
   how often a flaky sample was retried. *)

module T = Refine_core.Tool
module F = Refine_core.Fault
module P = Refine_support.Prng
module S = Refine_support.Supervisor
module Obs = Refine_obs

type counts = { crash : int; soc : int; benign : int; tool_error : int }

(* the statistical n: harness failures degrade the sample size, they do
   not enter the contingency rows *)
let total c = c.crash + c.soc + c.benign

let attempted c = total c + c.tool_error

let add_outcome c = function
  | F.Crash -> { c with crash = c.crash + 1 }
  | F.Soc -> { c with soc = c.soc + 1 }
  | F.Benign -> { c with benign = c.benign + 1 }
  | F.Tool_error -> { c with tool_error = c.tool_error + 1 }

let zero = { crash = 0; soc = 0; benign = 0; tool_error = 0 }

(* Wall-clock overhead attribution per cell, the Figure 8/9-shape columns
   of Report.overhead_table.  [execute_s] sums the profiling run and every
   sample's wall time *across worker domains*, so with D domains it can
   legitimately exceed the cell's elapsed wall time (it is CPU-time-like);
   [harness_s] is the residual elapsed time not attributed to a measured
   phase (supervisor scheduling, journaling, classification), clamped at
   zero when domain parallelism makes the attribution exceed elapsed. *)
type timing = {
  instrument_s : float;
  compile_s : float;
  execute_s : float;
  harness_s : float;
}

let zero_timing = { instrument_s = 0.0; compile_s = 0.0; execute_s = 0.0; harness_s = 0.0 }

let m_samples outcome =
  Obs.Metrics.counter ~help:"resolved campaign samples by outcome"
    ~labels:[ ("outcome", outcome) ]
    "refine_campaign_samples_total"

let m_crash = m_samples "crash"
let m_soc = m_samples "SOC"
let m_benign = m_samples "benign"
let m_tool_error = m_samples "tool-error"

let m_outcome = function
  | F.Crash -> m_crash
  | F.Soc -> m_soc
  | F.Benign -> m_benign
  | F.Tool_error -> m_tool_error

let m_cells =
  Obs.Metrics.counter ~help:"completed (program, tool) campaign cells" "refine_campaign_cells_total"

let m_resumed =
  Obs.Metrics.counter ~help:"samples loaded from a resume journal instead of re-run"
    "refine_campaign_resumed_samples_total"

(* quarantine reasons are bounded categories (Tool.Quarantine) *)
let m_quarantined reason =
  Obs.Metrics.counter ~help:"campaign cells quarantined instead of sampled"
    ~labels:[ ("reason", reason) ]
    "refine_quarantined_cells_total"

let m_quarantined_verifier = m_quarantined "mir-verifier"
let m_quarantined_ir_verifier = m_quarantined "ir-verifier"
let m_quarantined_golden = m_quarantined "nondeterministic-golden"

let m_quarantine_reason = function
  | "nondeterministic-golden" -> m_quarantined_golden
  | "ir-verifier" -> m_quarantined_ir_verifier
  | _ -> m_quarantined_verifier

type cell = {
  program : string;
  tool : T.kind;
  model : F.model; (* what state the faults struck (DESIGN.md §18) *)
  samples : int;
  counts : counts;
  injection_cost : int64; (* summed modeled time of all injection runs *)
  profile : F.profile;
  static_instrumented : int;
  failures : S.failure list; (* samples that exhausted the retry budget *)
  timing : timing; (* wall-clock overhead attribution (zero for loaded cells) *)
  quarantined : string option;
      (* "category: detail" when the cell was quarantined (DESIGN.md §13):
         zero samples ran, the cell is reported but excluded from the
         contingency rows *)
}

(* Stable seed derivation: FNV-1a over the cell identity instead of
   [Hashtbl.hash], whose output may change between OCaml releases.  The
   NUL separator keeps ("ab","c") and ("a","bc") distinct.  The fault
   model joins the identity ONLY when it is not the default Reg_bit, so
   every pre-model campaign seed (and its journaled samples) stays
   bit-identical. *)
let cell_seed ?(model = F.Reg_bit) ~seed ~program tool =
  let id = program ^ "\000" ^ T.kind_name tool in
  let id = if model = F.Reg_bit then id else id ^ "\000" ^ F.string_of_model model in
  seed lxor P.hash_string id

(* Attempt [a] of a sample re-draws from a fresh deterministic split of the
   sample's own base generator, so retries (after e.g. a watchdog kill)
   stay reproducible without replaying the failed draw. *)
let rng_for_attempt base a =
  let r = P.copy base in
  if a = 0 then r
  else begin
    for _ = 1 to a do
      ignore (P.next_int64 r)
    done;
    P.split r
  end

(* A quarantined (program, tool) cell: no samples ran and none will — the
   cell is structurally unfit for injection (failed MIR verification, or a
   nondeterministic golden run).  Reported, excluded from chi-squared. *)
let quarantined_cell ~program ~tool ~model ~samples reason =
  {
    program;
    tool;
    model;
    samples;
    counts = zero;
    injection_cost = 0L;
    profile = { F.golden_output = ""; golden_exit = 0; dyn_count = 0L; profile_cost = 0L };
    static_instrumented = 0;
    failures = [];
    timing = zero_timing;
    quarantined = Some reason;
  }

(* One (program, tool) cell: prepare (compile + profile) once, then run
   [samples] supervised injections, skipping samples already resolved in
   [journal] and recording each newly resolved one.  A [Tool.Quarantine]
   during preparation resolves the whole cell as quarantined — journaled
   so a resume never re-prepares it. *)
let run_cell ?domains ?(sel = T.Selection.default) ?journal ?sink ?(retries = 0) ?cost_cap
    ?(quotas = T.default_quotas) ?(model = F.Reg_bit) ?pipeline ?verify_mir ?verify_each
    ?cache ?chaos ?token ?watchdog ?heartbeat ~samples ~seed (tool : T.kind) ~program ~source
    () : cell =
  let domains =
    match domains with Some d -> d | None -> Refine_support.Parallel.default_domains ()
  in
  let model_name = F.string_of_model model in
  (* all checkpoint traffic goes through one sink: a local journal file, a
     shard worker's frame stream, or nothing *)
  let sink =
    match (sink, journal) with
    | Some s, _ -> Some s
    | None, Some j -> Some (Journal.sink j)
    | None, None -> None
  in
  let tool_name = T.kind_name tool in
  let quarantine reason =
    Obs.Metrics.inc
      (m_quarantine_reason
         (match String.index_opt reason ':' with
         | Some i -> String.sub reason 0 i
         | None -> reason));
    (match sink with
    | Some s -> s.Journal.push_quarantine ~program ~tool:tool_name ~reason
    | None -> ());
    quarantined_cell ~program ~tool ~model ~samples reason
  in
  match
    Option.bind sink (fun s -> s.Journal.find_quarantine ~program ~tool:tool_name)
  with
  | Some reason ->
    (* journaled quarantine: deterministic, so don't re-prepare on resume *)
    Obs.Metrics.inc
      (m_quarantine_reason
         (match String.index_opt reason ':' with
         | Some i -> String.sub reason 0 i
         | None -> reason));
    quarantined_cell ~program ~tool ~model ~samples reason
  | None -> (
  let span_attrs = [ ("program", program); ("tool", tool_name) ] in
  let phases = Obs.Phase.create () in
  let cell_t0 = Obs.Control.now () in
  match
    Obs.Span.with_ ~attrs:span_attrs "prepare" (fun () ->
        T.prepare ~phases ~sel ?pipeline ?verify_mir ?verify_each ?chaos ?cache tool source)
  with
  | exception T.Quarantine (category, detail) -> quarantine (category ^ ": " ^ detail)
  | prepared ->
  let master = P.create (cell_seed ~model ~seed ~program tool) in
  let bases = Array.init samples (fun _ -> P.split master) in
  let results : F.experiment option array = Array.make samples None in
  (match sink with
  | Some s ->
    let resolved = s.Journal.resolved ~program ~tool:tool_name ~model:model_name in
    Hashtbl.iter
      (fun i (e : Journal.entry) ->
        if i >= 0 && i < samples then begin
          Obs.Metrics.inc m_resumed;
          results.(i) <-
            Some { F.outcome = e.Journal.outcome; run_cost = e.Journal.cost; fault = None }
        end)
      resolved
  | None -> ());
  let todo = ref [] in
  for i = samples - 1 downto 0 do
    if results.(i) = None then todo := i :: !todo
  done;
  let todo = Array.of_list !todo in
  let token = match token with Some t -> t | None -> S.Cancel.create () in
  let poll () =
    (* a shard worker emits liveness heartbeats from the in-flight poll
       slot, so a hung sample goes silent instead of heartbeating *)
    (match heartbeat with Some h -> h () | None -> ());
    S.check token
  in
  let policy =
    {
      S.default_policy with
      S.max_retries = retries;
      (* a Quarantine is a deterministic property of the cell; retrying the
         sample would only reproduce it *)
      retryable = (function T.Quarantine _ -> false | e -> S.default_policy.S.retryable e);
    }
  in
  (* one injection, with its wall time billed to the execute column even
     when it ends in a watchdog kill or cancellation *)
  let timed_injection rng =
    let t0 = Obs.Control.now () in
    match T.run_injection ?cost_cap ~quotas ~model ~poll prepared rng with
    | e ->
      let dt = Obs.Control.now () -. t0 in
      Obs.Phase.add phases "execute" dt;
      Obs.Span.emit ~attrs:span_attrs ~cost:e.F.run_cost ~name:"sample" ~dur_s:dt ();
      e
    | exception ex ->
      let bt = Printexc.get_raw_backtrace () in
      Obs.Phase.add phases "execute" (Obs.Control.now () -. t0);
      Printexc.raise_with_backtrace ex bt
  in
  let outcomes =
    Obs.Span.with_ ~attrs:span_attrs "inject" (fun () ->
        S.run ~token ~policy ?watchdog ~domains (Array.length todo) (fun ~attempt k ->
            timed_injection (rng_for_attempt bases.(todo.(k)) attempt)))
  in
  let failures = ref [] in
  let checkpoint i (e : F.experiment) attempts =
    Obs.Metrics.inc (m_outcome e.F.outcome);
    results.(i) <- Some e;
    match sink with
    | Some s ->
      s.Journal.push
        {
          Journal.program;
          tool = tool_name;
          model = model_name;
          sample = i;
          outcome = e.F.outcome;
          cost = e.F.run_cost;
          attempts;
        }
    | None -> ()
  in
  Array.iteri
    (fun k out ->
      let i = todo.(k) in
      match out with
      | S.Done (e, attempts) -> checkpoint i e attempts
      | S.Failed f ->
        (* graceful degradation: the sample becomes a ToolError tally
           entry; the budget burned by a watchdog kill still counts
           toward campaign time *)
        let cost = match f.S.exn with T.Sample_budget_exceeded c -> c | _ -> 0L in
        checkpoint i { F.outcome = F.Tool_error; run_cost = cost; fault = None } f.S.attempts;
        failures := { f with S.index = i } :: !failures
      | S.Skipped -> ())
    outcomes;
  let counts, injection_cost =
    Array.fold_left
      (fun (c, cost) -> function
        | Some (e : F.experiment) -> (add_outcome c e.F.outcome, Int64.add cost e.F.run_cost)
        | None -> (c, cost))
      (zero, 0L) results
  in
  let timing =
    let wall = Obs.Control.now () -. cell_t0 in
    let instrument_s = Obs.Phase.get phases "instrument" in
    let compile_s = Obs.Phase.get phases "compile" in
    let execute_s = Obs.Phase.get phases "execute" in
    {
      instrument_s;
      compile_s;
      execute_s;
      harness_s = Float.max 0.0 (wall -. instrument_s -. compile_s -. execute_s);
    }
  in
  Obs.Metrics.inc m_cells;
  {
    program;
    tool;
    model;
    samples;
    counts;
    injection_cost;
    profile = prepared.T.profile;
    static_instrumented = prepared.T.static_instrumented;
    failures = List.rev !failures;
    timing;
    quarantined = None;
  })

(* A cell whose preparation (compile/profile) failed outright: every
   sample is a ToolError, the campaign continues. *)
let degraded_cell ?(model = F.Reg_bit) ~program ~tool ~samples exn =
  {
    program;
    tool;
    model;
    samples;
    counts = { zero with tool_error = samples };
    injection_cost = 0L;
    profile = { F.golden_output = ""; golden_exit = 0; dyn_count = 0L; profile_cost = 0L };
    static_instrumented = 0;
    failures = [ { S.index = -1; attempts = 1; exn; backtrace = "" } ];
    timing = zero_timing;
    quarantined = None;
  }

(* The full evaluation matrix: every program x every tool.  A cell that
   fails to prepare degrades to all-ToolError instead of aborting the
   remaining cells (a [Tool.Quarantine] already resolved inside
   [run_cell] as a quarantined cell). *)
let run_matrix ?domains ?sel ?journal ?sink ?retries ?cost_cap ?quotas ?model ?pipeline
    ?verify_mir ?verify_each ?cache ?chaos ?token ?watchdog ~samples ~seed
    (programs : (string * string) list) (tools : T.kind list) : cell list =
  List.concat_map
    (fun (program, source) ->
      List.map
        (fun tool ->
          try
            run_cell ?domains ?sel ?journal ?sink ?retries ?cost_cap ?quotas ?model ?pipeline
              ?verify_mir ?verify_each ?cache ?chaos ?token ?watchdog ~samples ~seed tool
              ~program ~source ()
          with e -> degraded_cell ?model ~program ~tool ~samples e)
        tools)
    programs

let find_cell ?model cells ~program ~tool =
  List.find
    (fun c ->
      c.program = program && c.tool = tool
      && match model with None -> true | Some m -> c.model = m)
    cells

(* contingency row for the chi-squared tests; ToolError is excluded *)
let row c = [| c.counts.crash; c.counts.soc; c.counts.benign |]
