(* Rendering of campaign results in the shape of the paper's tables and
   figure series (text form).  Used by bench/main.exe and the examples. *)

module T = Refine_core.Tool
module Tbl = Refine_support.Table
module E = Experiment

let pct part total = 100.0 *. float_of_int part /. float_of_int (max 1 total)

let tools = [ T.Llfi; T.Refine; T.Pinfi ]

(* ---- Figure 4: outcome percentages with confidence intervals ---------- *)

let figure4_program (cells : E.cell list) program =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "Figure 4 — %s: sampled outcome probabilities (%%)\n" program);
  let rows =
    List.map
      (fun tool ->
        let c = E.find_cell cells ~program ~tool in
        let n = E.total c.E.counts in
        let ci count =
          (* a fully degraded cell (every sample a tool error) has no
             statistical n; render a placeholder instead of aborting *)
          if n = 0 then "--"
          else
            let iv = Refine_stats.Ci.wald ~count ~total:n () in
            Printf.sprintf "%5.1f ±%.1f" (100.0 *. iv.Refine_stats.Ci.p)
              (100.0 *. (iv.Refine_stats.Ci.high -. iv.Refine_stats.Ci.p))
        in
        [ T.kind_name tool; ci c.E.counts.E.crash; ci c.E.counts.E.soc; ci c.E.counts.E.benign ])
      tools
  in
  Buffer.add_string buf
    (Tbl.render ~align:[ Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Right ]
       ~header:[ "tool"; "crash"; "SOC"; "benign" ] rows);
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ---- Figure 4 PMF stacked bars ----------------------------------------
   The fourth panel of each Figure 4 subplot: the probability mass function
   of the outcomes per tool as a stacked bar — "a concise way of
   visualizing diversions and similarities" (paper §5.4.1). *)

let figure4_pmf (cells : E.cell list) program =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "PMF (stacked: # crash, * SOC, . benign) — %s\n" program);
  let width = 50 in
  List.iter
    (fun tool ->
      let c = E.find_cell cells ~program ~tool in
      let n = max 1 (E.total c.E.counts) in
      let seg count = count * width / n in
      let ncr = seg c.E.counts.E.crash in
      let nso = seg c.E.counts.E.soc in
      let nbe = max 0 (width - ncr - nso) in
      Buffer.add_string buf
        (Printf.sprintf "%-7s [%s%s%s]\n" (T.kind_name tool) (String.make ncr '#')
           (String.make nso '*') (String.make nbe '.')))
    tools;
  Buffer.contents buf

(* ---- Table 4-style contingency table ---------------------------------- *)

let contingency_table (a : E.cell) (b : E.cell) =
  let buf = Buffer.create 256 in
  let line (c : E.cell) =
    [
      T.kind_name c.E.tool;
      string_of_int c.E.counts.E.crash;
      string_of_int c.E.counts.E.soc;
      string_of_int c.E.counts.E.benign;
      string_of_int (E.total c.E.counts);
    ]
  in
  let tot f = f a.E.counts + f b.E.counts in
  Buffer.add_string buf
    (Tbl.render
       ~align:[ Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right ]
       ~header:[ "Tool"; "Crash"; "SOC"; "Benign"; "Total" ]
       [
         line a;
         line b;
         [
           "Total";
           string_of_int (tot (fun c -> c.E.crash));
           string_of_int (tot (fun c -> c.E.soc));
           string_of_int (tot (fun c -> c.E.benign));
           "";
         ];
       ]);
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ---- Table 5: chi-squared verdicts ------------------------------------ *)

type chi2_row = {
  program : string;
  llfi_vs_pinfi : Refine_stats.Chi2.test_result;
  refine_vs_pinfi : Refine_stats.Chi2.test_result;
  quarantined_tools : (string * string) list;
      (* (tool, reason) of this program's quarantined cells: their rows are
         all-zero by construction, so the verdict is trivial — the
         annotation tells the reader why *)
}

let chi2_rows (cells : E.cell list) programs : chi2_row list =
  List.map
    (fun program ->
      let cell tool = E.find_cell cells ~program ~tool in
      let test a b =
        let ra = E.row (cell a) and rb = E.row (cell b) in
        let tot = Array.fold_left ( + ) 0 in
        (* both cells fully degraded or quarantined: no observations, no
           evidence of a difference — report the trivial verdict rather
           than aborting *)
        if tot ra = 0 && tot rb = 0 then
          { Refine_stats.Chi2.statistic = 0.0; df = 1; p_value = 1.0; significant = false }
        else Refine_stats.Chi2.test [| ra; rb |]
      in
      let quarantined_tools =
        List.filter_map
          (fun tool ->
            match (cell tool).E.quarantined with
            | Some r -> Some (T.kind_name tool, r)
            | None -> None)
          tools
      in
      {
        program;
        llfi_vs_pinfi = test T.Llfi T.Pinfi;
        refine_vs_pinfi = test T.Refine T.Pinfi;
        quarantined_tools;
      })
    programs

let table5 (rows : chi2_row list) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Table 5 — chi-squared tests against PINFI (alpha = 0.05)\n";
  let fmt (t : Refine_stats.Chi2.test_result) =
    ( (if t.Refine_stats.Chi2.p_value < 0.005 then "~0.00"
       else Printf.sprintf "%.2f" t.Refine_stats.Chi2.p_value),
      if t.Refine_stats.Chi2.significant then "yes" else "no" )
  in
  let trows =
    List.map
      (fun r ->
        let lp, ls = fmt r.llfi_vs_pinfi in
        let rp, rs = fmt r.refine_vs_pinfi in
        let mark s = if r.quarantined_tools = [] then s else s ^ " [q]" in
        [ mark r.program; lp; ls; rp; rs ])
      rows
  in
  Buffer.add_string buf
    (Tbl.render
       ~align:[ Tbl.Left; Tbl.Right; Tbl.Left; Tbl.Right; Tbl.Left ]
       ~header:
         [ "program"; "LLFI p-value"; "signif.diff?"; "REFINE p-value"; "signif.diff?" ]
       trows);
  (* footnotes: quarantined cells contribute all-zero rows, so their
     verdicts above are trivial — say why *)
  List.iter
    (fun r ->
      List.iter
        (fun (tool, reason) ->
          Buffer.add_string buf
            (Printf.sprintf "  [q] %s/%s quarantined (excluded): %s\n" r.program tool reason))
        r.quarantined_tools)
    rows;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ---- Quarantine report (DESIGN.md §13) -------------------------------- *)

let quarantines (cells : E.cell list) =
  List.filter_map
    (fun (c : E.cell) ->
      Option.map (fun r -> (c.E.program, T.kind_name c.E.tool, r)) c.E.quarantined)
    cells

let quarantine_report (cells : E.cell list) =
  match quarantines cells with
  | [] -> ""
  | qs ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf "Quarantined cells (no samples ran; excluded from all statistics)\n";
    List.iter
      (fun (p, t, r) -> Buffer.add_string buf (Printf.sprintf "  %s/%s: %s\n" p t r))
      qs;
    Buffer.add_char buf '\n';
    Buffer.contents buf

(* ---- Table 6: complete outcome counts, paper side-by-side ------------- *)

let table6 (cells : E.cell list) programs =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "Table 6 — outcome frequencies (measured | paper @1068)\n";
  let rows =
    List.concat_map
      (fun program ->
        let paper_l, paper_r, paper_p = Paper_data.find_table6 program in
        List.map2
          (fun tool (paper : Paper_data.row) ->
            let c = E.find_cell cells ~program ~tool in
            [
              program;
              T.kind_name tool;
              Printf.sprintf "%d | %d" c.E.counts.E.crash paper.Paper_data.crash;
              Printf.sprintf "%d | %d" c.E.counts.E.soc paper.Paper_data.soc;
              Printf.sprintf "%d | %d" c.E.counts.E.benign paper.Paper_data.benign;
            ])
          tools
          [ paper_l; paper_r; paper_p ])
      programs
  in
  Buffer.add_string buf
    (Tbl.render
       ~align:[ Tbl.Left; Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Right ]
       ~header:[ "program"; "tool"; "crash"; "SOC"; "benign" ]
       rows);
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ---- Per-fault-model sections (DESIGN.md §18) -------------------------- *)

(* The distinct fault models present in a cell list, first-seen order —
   a multi-model campaign concatenates its per-model cell lists, so this
   recovers the order the models ran in. *)
let models (cells : E.cell list) =
  List.fold_left
    (fun acc (c : E.cell) -> if List.mem c.E.model acc then acc else c.E.model :: acc)
    [] cells
  |> List.rev

let cells_of_model model (cells : E.cell list) =
  List.filter (fun (c : E.cell) -> c.E.model = model) cells

(* Table 5 + Table 6 per fault model.  For Reg_bit the section reproduces
   the paper's tables verbatim; the other models reuse the same rendering
   (the paper's @1068 column stays as the Reg_bit reference point the
   shifted distributions are read against). *)
let model_sections (cells : E.cell list) programs =
  let buf = Buffer.create 4096 in
  List.iter
    (fun model ->
      let mcells = cells_of_model model cells in
      Buffer.add_string buf
        (Printf.sprintf "==== fault model: %s ====\n\n"
           (Refine_core.Fault.string_of_model model));
      Buffer.add_string buf (table5 (chi2_rows mcells programs));
      Buffer.add_string buf (table6 mcells programs))
    (models cells);
  Buffer.contents buf

(* ---- Campaign robustness: degradation warnings ------------------------ *)

(* Samplesize-aware warnings when harness failures (ToolError), a
   quarantine, or an interrupted run drop the achieved n below the
   requested one: the margin of error of every affected cell is recomputed
   so the operator sees what statistical power the degradation actually
   cost.  [journal_skipped] adds a line for resume-journal rows that
   failed to decode (each cost one re-run). *)
let degradation ?(confidence = 0.95) ?(journal_skipped = 0) (cells : E.cell list) =
  let skipped_line =
    if journal_skipped = 0 then []
    else
      [
        Printf.sprintf
          "WARNING resume journal: %d undecodable line%s skipped (each cost one re-run)"
          journal_skipped
          (if journal_skipped = 1 then "" else "s");
      ]
  in
  skipped_line
  @ List.filter_map
    (fun (c : E.cell) ->
      match c.E.quarantined with
      | Some reason ->
        Some
          (Printf.sprintf "QUARANTINED %s/%s: 0 of %d samples ran — %s" c.E.program
             (T.kind_name c.E.tool) c.E.samples reason)
      | None ->
      let n_eff = E.total c.E.counts in
      if c.E.counts.E.tool_error = 0 && n_eff >= c.E.samples then None
      else
        let requested =
          Refine_stats.Samplesize.margin_of ~samples:c.E.samples ~confidence ()
        in
        let achieved =
          if n_eff = 0 then 1.0
          else Refine_stats.Samplesize.margin_of ~samples:n_eff ~confidence ()
        in
        let causes =
          match c.E.failures with
          | [] -> ""
          | fs ->
            "\n    " ^ String.concat "\n    " (List.map Refine_support.Supervisor.string_of_failure fs)
        in
        Some
          (Printf.sprintf
             "WARNING %s/%s: %d of %d samples resolved (%d tool errors) — margin of error \
              ±%.1f%% vs ±%.1f%% requested at %.0f%% confidence%s"
             c.E.program (T.kind_name c.E.tool) n_eff c.E.samples c.E.counts.E.tool_error
             (100.0 *. achieved) (100.0 *. requested) (100.0 *. confidence) causes))
    cells

(* ---- Figures 8/9: wall-clock overhead breakdown ------------------------
   The paper's instrumentation/compilation/execution time-overhead figures:
   per (program, tool), where the harness actually spent its wall time, and
   the per-tool total normalized to PINFI.  Unlike Figure 5 (modeled cost
   units) this table reports measured seconds from Experiment.timing. *)

let timing_total (t : E.timing) =
  t.E.instrument_s +. t.E.compile_s +. t.E.execute_s +. t.E.harness_s

let overhead_table (cells : E.cell list) programs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Figures 8/9 — wall-clock overhead breakdown (seconds; ratio vs PINFI total)\n";
  let s v = Printf.sprintf "%.3f" v in
  let ratio tool_total pinfi_total =
    if pinfi_total <= 0.0 then "--" else Printf.sprintf "%.2fx" (tool_total /. pinfi_total)
  in
  (* The paper's Figure 8/9 headline: REFINE's wall-clock overhead over
     native execution tracks PINFI's within ≈1.2x.  The delta column
     grades each tool's measured ratio against its paper target (25%
     slack, so REFINE holds up to 1.50x) so a campaign summary states
     directly whether the speed claim holds. *)
  let paper_target = function T.Refine -> Some 1.2 | T.Pinfi -> Some 1.0 | T.Llfi -> None in
  let target_delta tool tool_total pinfi_total =
    match paper_target tool with
    | None -> "--"
    | Some tgt ->
      if pinfi_total <= 0.0 then "--"
      else begin
        let r = tool_total /. pinfi_total in
        Printf.sprintf "%+.2f vs %.1fx (%s)" (r -. tgt) tgt
          (if r <= tgt *. 1.25 then "holds" else "misses")
      end
  in
  let per_program =
    List.concat_map
      (fun program ->
        let cell tool = E.find_cell cells ~program ~tool in
        let pinfi_total = timing_total (cell T.Pinfi).E.timing in
        List.map
          (fun tool ->
            let t = (cell tool).E.timing in
            [
              program;
              T.kind_name tool;
              s t.E.instrument_s;
              s t.E.compile_s;
              s t.E.execute_s;
              s t.E.harness_s;
              s (timing_total t);
              ratio (timing_total t) pinfi_total;
              target_delta tool (timing_total t) pinfi_total;
            ])
          tools)
      programs
  in
  (* Total block: each tool's timing summed over every program *)
  let sum_tool tool =
    List.fold_left
      (fun acc program ->
        let t = (E.find_cell cells ~program ~tool).E.timing in
        {
          E.instrument_s = acc.E.instrument_s +. t.E.instrument_s;
          compile_s = acc.E.compile_s +. t.E.compile_s;
          execute_s = acc.E.execute_s +. t.E.execute_s;
          harness_s = acc.E.harness_s +. t.E.harness_s;
        })
      E.zero_timing programs
  in
  let pinfi_grand = timing_total (sum_tool T.Pinfi) in
  let totals =
    List.map
      (fun tool ->
        let t = sum_tool tool in
        [
          "Total";
          T.kind_name tool;
          s t.E.instrument_s;
          s t.E.compile_s;
          s t.E.execute_s;
          s t.E.harness_s;
          s (timing_total t);
          ratio (timing_total t) pinfi_grand;
          target_delta tool (timing_total t) pinfi_grand;
        ])
      tools
  in
  Buffer.add_string buf
    (Tbl.render
       ~align:
         [
           Tbl.Left; Tbl.Left; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right; Tbl.Right;
           Tbl.Right;
         ]
       ~header:
         [
           "program"; "tool"; "instrument"; "compile"; "execute"; "harness"; "total"; "vs PINFI";
           "paper delta";
         ]
       (per_program @ totals));
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ---- Figure 5: campaign time normalized to PINFI ---------------------- *)

let figure5 (cells : E.cell list) programs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Figure 5 — campaign execution time normalized to PINFI (measured | paper)\n";
  let norm program tool =
    let c = E.find_cell cells ~program ~tool in
    let p = E.find_cell cells ~program ~tool:T.Pinfi in
    Int64.to_float c.E.injection_cost /. Int64.to_float (max 1L p.E.injection_cost |> fun x -> x)
  in
  let total tool =
    let sum t =
      List.fold_left
        (fun acc program ->
          Int64.add acc (E.find_cell cells ~program ~tool:t).E.injection_cost)
        0L programs
    in
    Int64.to_float (sum tool) /. Int64.to_float (sum T.Pinfi)
  in
  let rows =
    List.map
      (fun program ->
        let pl, pr = List.assoc program Paper_data.figure5 in
        [
          program;
          Printf.sprintf "%.1f | %.1f" (norm program T.Llfi) pl;
          Printf.sprintf "%.1f | %.1f" (norm program T.Refine) pr;
        ])
      programs
    @ [
        (let pl, pr = Paper_data.figure5_total in
         [
           "Total";
           Printf.sprintf "%.1f | %.1f" (total T.Llfi) pl;
           Printf.sprintf "%.1f | %.1f" (total T.Refine) pr;
         ]);
      ]
  in
  Buffer.add_string buf
    (Tbl.render ~align:[ Tbl.Left; Tbl.Right; Tbl.Right ]
       ~header:[ "program"; "LLFI"; "REFINE" ] rows);
  Buffer.add_char buf '\n';
  Buffer.contents buf
