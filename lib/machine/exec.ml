(* Architectural simulator for SX64 images.

   This is the substitute for the paper's physical Xeon nodes: it executes
   the machine code produced by the backend against an architectural state
   (register file, FLAGS, byte-addressable memory, downward stack) and
   reports the observable outcome — output, exit code, or a trap.  Faults
   injected into this state propagate, mask, or crash the run exactly as
   the paper's fault model intends.

   Integer/float operation semantics are shared with the IR reference
   interpreter ([Refine_ir.Interp]) so the two cannot drift; the semantic
   property tests compare them on random programs.

   Cost model (DESIGN.md §6): 1 unit per instruction, [ext_call_cost] units
   per runtime-library call, plus [hook_cost] per instruction while a
   dynamic-instrumentation hook (PINFI) is attached.

   Fast path (DESIGN.md §14): the per-instruction execute path is
   allocation-free when profiling is off — step/cost counters are plain
   [int] fields (63 bits is ample for any modeled budget), FLAGS writes
   index a preallocated table of the 8 possible flag words, condition
   codes are evaluated with int bit tests, and extern calls dispatch
   through a per-engine handler array resolved once from the image's
   [ext_slot_of_pc] table instead of hashing the extern name per call.
   Engines can be created from a memory [snapshot] and [reset] between
   runs with a single [Bytes.blit], so a fault-injection campaign reuses
   one arena per worker domain instead of allocating [Mem.mem_size] per
   sample. *)

module M = Refine_mir.Minstr
module R = Refine_mir.Reg
module L = Refine_backend.Layout
module Mem = Refine_ir.Memlayout

let ext_call_cost = 25

type trap =
  | Mem_fault of int
  | Div_by_zero
  | Bad_pc of int
  | Stack_overflow
  | Out_of_memory
  | Extern_fault of string
  | Output_quota of int
  | Heap_quota of int
  | Wall_clock of float
  | Livelock
  | Illegal_instr of int

let string_of_trap = function
  | Mem_fault a -> Printf.sprintf "memory fault at 0x%x" a
  | Div_by_zero -> "integer division by zero"
  | Bad_pc a -> Printf.sprintf "illegal instruction address %d" a
  | Stack_overflow -> "stack overflow"
  | Out_of_memory -> "out of heap memory"
  | Extern_fault m -> "extern fault: " ^ m
  | Output_quota q -> Printf.sprintf "output quota exceeded (%d bytes)" q
  | Heap_quota q -> Printf.sprintf "heap quota exceeded (%d bytes)" q
  | Wall_clock s -> Printf.sprintf "wall-clock deadline exceeded (%.3fs)" s
  | Livelock -> "livelock: architectural state repeated"
  | Illegal_instr a -> Printf.sprintf "illegal instruction encoding at pc %d" a

type status = Running | Exited of int | Trapped of trap | Timed_out

exception Halt_trap of trap

(* Executor profile: per-opcode-class step counts plus extern-call tallies,
   accumulated into plain unboxed int cells so the per-instruction cost is
   one [None] match when profiling is off and two int array ops when on;
   the owner (Tool) flushes it into the metrics registry after the run. *)
type profile = {
  class_steps : int array; (* Minstr.num_iclasses slots, Minstr.iclass_index order *)
  mutable ext_calls : int;
  mutable ext_cost : int;
}

type t = {
  image : L.image;
  regs : int64 array; (* R.num_regs entries; raw bits for GPR/FPR/FLAGS *)
  mem : Bytes.t;
  mutable pc : int;
  mutable steps : int; (* unboxed hot counters: int, not int64 (§14) *)
  mutable cost : int;
  mutable status : status;
  mutable heap : int;
  env : Refine_ir.Externs.env;
  ext_extra : (string, int * (t -> unit)) Hashtbl.t;
      (* FI runtime library: name -> (modeled cost, handler) *)
  mutable post_hook : (t -> int -> M.t -> unit) option; (* PINFI-style DBI *)
  mutable hook_cost : int;
  mutable prof : profile option; (* executor profiling; None = zero-cost path *)
  mutable heap_quota : int; (* max heap bytes above heap_base; max_int = off *)
  mutable handlers : (t -> unit) array;
      (* pre-resolved extern dispatch, indexed by image.ext_slot_of_pc *)
  mutable builtins : (t -> unit) option array;
      (* memoized libc/libm handlers per ext slot, reused across resets *)
  mutable fi_mask : int64;
      (* pending multi-bit FI mask: when nonzero, the next Mxorbit /
         Mxorbitmem applies this XOR mask instead of its single-bit flip,
         then clears it (set by the REFINE control library, DESIGN.md §18) *)
  mutable overlay_pc : int;
      (* Instr_image corruption overlay: the engine-local view of one
         mutated code slot.  -1 = none.  The shared [image.code] array is
         never written, so snapshots, the prepared-tier cache fingerprint
         and sibling engines stay pristine; [reset] clears the overlay. *)
  mutable overlay_instr : M.t option;
      (* the mutated instruction at [overlay_pc]; None = the corrupted
         encoding no longer decodes (executing it traps [Illegal_instr]) *)
  mutable dprog : dprogram option;
      (* pre-decoded program installed on this engine (DESIGN.md §19);
         None = the legacy match-per-opcode interpreter *)
  mutable d_active : (t -> unit) array;
      (* the dispatch table the decoded loop reads: [dprog.d_fused]
         normally, [dprog.d_single] while an Instr_image overlay is armed
         (a superinstruction head must never replay a stale slot) *)
  mutable d_overlay : (t -> unit) option;
      (* decoded form of [overlay_instr], rebuilt by [set_overlay] and
         cleared by [reset] in the same pass as [overlay_pc]/[fi_mask] *)
  mutable d_check : unit -> unit;
      (* the current run's 1024-step poll-slot check, called by decoded
         closures after every retired constituent *)
  mutable d_max_steps : int; (* current run's budgets, re-tested between *)
  mutable d_max_cost : int; (*  fused constituents exactly like the legacy
                                while-condition *)
  mutable detach_req : bool;
      (* set by the FI control library when the single injection has
         retired; [run] hands off to the detach plan's golden engine at
         the next poll slot (DESIGN.md §20) *)
  mutable handler_cost : int array;
      (* declared modeled cost per extern slot, parallel to [handlers]
         (rebuilt together) — lets the fi-splice fast path charge a
         skipped selector call exactly *)
  mutable fi_sel_skip : int;
      (* FI-selector fast-path window (DESIGN.md §20): how many upcoming
         [fi_sel_instr] calls are provably non-firing.  Published by the
         REFINE control library after every real selector call; consumed
         one per splice by the fused fi-splice closure, which then
         retires the whole splice without entering the library.  0 (the
         default) = every call goes to the handler. *)
  mutable fi_sel_pending : int;
      (* selector calls the fast path retired since the library last
         ran; the library folds them into its own dynamic counter on the
         next real call, and [Runtime.absorb] folds the remainder after
         the run — so counts and fault records never see a stale total *)
  mutable cs_slots : int array;
      (* shadow call stack: per live [Mcalli] frame, the stack slot that
         holds the pushed return address... *)
  mutable cs_vals : int64 array; (* ...and the value pushed into it *)
  mutable cs_len : int;
  snap : Bytes.t option; (* pristine memory to blit on [reset] *)
}

(* A decoded program: per-pc closure tables plus static decode facts.
   Closures capture no engine, so one dprogram is shared read-only by
   every engine of the same image, across domains. *)
and dprogram = {
  d_image : L.image; (* the image this decode was built from *)
  d_fused : (t -> unit) array; (* dispatch table with superinstruction heads *)
  d_single : (t -> unit) array; (* fusion-free per-pc decodes *)
  d_super : int array; (* fused sites per idiom, indexed like [idioms] *)
}

let no_check () = ()

type result = {
  status : status;
  output : string;
  steps : int64;
  cost : int64;
  truncated : bool; (* output was cut at the quota; never a golden match *)
  detached : bool; (* the run handed off to its detach plan's golden engine *)
  drain_steps : int; (* attached steps executed to reach a mapped handoff pc *)
}

(* --- post-injection detach (DESIGN.md §20) ----------------------------- *)

type handoff_map = {
  h_rank : int array; (* instrumented pc -> golden pc; -1 inside splices *)
  h_next : int array;
      (* instrumented pc -> first golden rank at-or-after (return-address
         translation); length n+1, -1 past the last original instruction *)
}

type detach_plan = {
  plan_target : unit -> t;
      (* acquire the golden/patched engine (reset, decode installed);
         called at most once, only if the handoff goes ahead *)
  plan_map : handoff_map option;
      (* [Some] = golden-map mode (state transfer + pc/return-address
         translation); [None] = same-coordinates branch-patched fallback *)
}

exception Detach_signal
(* raised by the poll-slot check when [detach_req] is set and a plan is
   armed; [run] catches it, attempts the handoff, and continues on the
   winning engine *)

(* sentinel return address that terminates the program when popped *)
let sentinel = -1L

(* --- flags ----------------------------------------------------------- *)

(* The 8 possible FLAGS words (ZF|LT|UNORD), preallocated so a flag write
   is an array index instead of a chain of boxed Int64 ops. *)
let flag_words = Array.init 8 Int64.of_int

let set_flags t ~zf ~lt ~unord =
  let i =
    (if zf then 1 else 0) lor (if lt then 2 else 0) lor if unord then 4 else 0
  in
  t.regs.(R.flags) <- flag_words.(i)

let eval_cc t (cc : M.cc) =
  let fl = Int64.to_int t.regs.(R.flags) in
  let zf = fl land 1 <> 0 and lt = fl land 2 <> 0 and unord = fl land 4 <> 0 in
  match cc with
  | M.CEq -> zf
  | M.CNe -> not zf
  | M.CLt -> lt
  | M.CLe -> lt || zf
  | M.CGt -> not (lt || zf)
  | M.CGe -> not lt
  | M.CFeq -> zf && not unord
  | M.CFne -> (not zf) || unord
  | M.CFlt -> lt && not unord
  | M.CFle -> (lt || zf) && not unord
  | M.CFgt -> (not (lt || zf)) && not unord
  | M.CFge -> (not lt) && not unord

(* --- memory ----------------------------------------------------------- *)

(* [addr > mem_size - 8] rather than [addr + 8 > mem_size]: the latter
   wraps for addresses within 8 of max_int (reachable when a fault writes
   a huge value into a base register) and would let the access through to
   the Bytes bounds check, surfacing as a harness exception instead of the
   machine trap it models. *)
let check_addr addr =
  if addr < Mem.null_guard || addr > Mem.mem_size - 8 then raise (Halt_trap (Mem_fault addr))

let load64 t addr =
  check_addr addr;
  Bytes.get_int64_le t.mem addr

let store64 t addr v =
  check_addr addr;
  Bytes.set_int64_le t.mem addr v

let push t v =
  let sp = Int64.to_int t.regs.(R.rsp) - 8 in
  if sp < Mem.mem_size - Mem.stack_limit then raise (Halt_trap Stack_overflow);
  t.regs.(R.rsp) <- Int64.of_int sp;
  store64 t sp v

let pop t =
  let sp = Int64.to_int t.regs.(R.rsp) in
  let v = load64 t sp in
  t.regs.(R.rsp) <- Int64.of_int (sp + 8);
  v

(* --- extern calls ------------------------------------------------------ *)

let f64 = Int64.float_of_bits
let b64 = Int64.bits_of_float

let count_ext t cost =
  match t.prof with
  | None -> ()
  | Some p ->
    p.ext_calls <- p.ext_calls + 1;
    p.ext_cost <- p.ext_cost + cost

(* Build the memoized handler for a libc/libm extern: the signature is
   parsed and the argument registers assigned ONCE, so a call only copies
   registers into a reused buffer and dispatches.  [None] for names the
   runtime library does not know (resolved to a trap-on-invoke handler, so
   an unknown extern on a dead path still costs nothing). *)
let builtin_handler name : (t -> unit) option =
  match Refine_ir.Externs.signature name with
  | None -> None
  | Some (tys, ret) ->
    let exception Exhausted in
    (try
       let gp = ref R.arg_gprs and fp = ref R.arg_fprs in
       let arg_regs =
         List.map
           (fun ty ->
             let cell = match ty with Refine_ir.Ir.I64 -> gp | Refine_ir.Ir.F64 -> fp in
             match !cell with
             | r :: rest ->
               cell := rest;
               r
             | [] -> raise Exhausted)
           tys
       in
       let arg_regs = Array.of_list arg_regs in
       let args = Array.make (Array.length arg_regs) 0L in
       Some
         (fun t ->
           t.cost <- t.cost + ext_call_cost;
           count_ext t ext_call_cost;
           for i = 0 to Array.length arg_regs - 1 do
             args.(i) <- t.regs.(arg_regs.(i))
           done;
           let r =
             try Refine_ir.Externs.call t.env name args
             with Refine_ir.Externs.Extern_trap m -> raise (Halt_trap (Extern_fault m))
           in
           match t.env.exited with
           | Some code -> t.status <- Exited code
           | None -> (
             match ret with
             | Some Refine_ir.Ir.I64 -> t.regs.(R.ret_gpr) <- r
             | Some Refine_ir.Ir.F64 -> t.regs.(R.ret_fpr) <- r
             | None -> ()))
     with Exhausted ->
       Some
         (fun t ->
           t.cost <- t.cost + ext_call_cost;
           count_ext t ext_call_cost;
           raise (Halt_trap (Extern_fault (name ^ ": too many arguments")))))

let unknown_extern name : t -> unit =
 fun t ->
  t.cost <- t.cost + ext_call_cost;
  count_ext t ext_call_cost;
  raise (Halt_trap (Extern_fault ("unknown extern " ^ name)))

(* Resolve every extern slot of the image to a concrete handler: the FI
   runtime library ([ext_extra]) takes priority, then the memoized builtin,
   then a trap-on-invoke handler.  Called at engine construction and on
   every [reset] (the FI control state is per-sample); builtins are reused
   across resets, so a rebind never re-parses a signature. *)
let bind_handlers t =
  let names = t.image.L.ext_names in
  (* record each slot's declared modeled cost alongside the closure: the
     fi-splice fast path retires provably non-firing selector calls
     without invoking the handler and must still charge its cost *)
  t.handler_cost <-
    Array.init (Array.length names) (fun k ->
        match Hashtbl.find_opt t.ext_extra names.(k) with
        | Some (cost, _) -> cost
        | None -> ext_call_cost);
  Array.init (Array.length names) (fun k ->
      let name = names.(k) in
      match Hashtbl.find_opt t.ext_extra name with
      | Some (cost, fn) ->
        fun (t : t) ->
          t.cost <- t.cost + cost;
          count_ext t cost;
          fn t
      | None -> (
        match t.builtins.(k) with Some h -> h | None -> unknown_extern name))

(* Slow path for code arrays mutated after layout (ext_slot_of_pc = -1,
   e.g. Opcode_fi's corrupted copies): the pre-fast-path by-name lookup. *)
let do_callext (t : t) name =
  match Hashtbl.find_opt t.ext_extra name with
  | Some (cost, fn) ->
    t.cost <- t.cost + cost;
    count_ext t cost;
    fn t
  | None -> (
    match builtin_handler name with
    | Some h -> h t
    | None -> unknown_extern name t)

(* --- engine construction ------------------------------------------------ *)

(* Initialized memory image: globals blitted at their layout addresses and
   the sentinel return address at the top of the stack, as if the loader
   had called main. *)
let init_mem (image : L.image) : Bytes.t =
  let mem = Bytes.make Mem.mem_size '\000' in
  List.iter
    (fun (g : Refine_ir.Ir.global) ->
      match g.gbytes with
      | Some s -> Bytes.blit_string s 0 mem (image.L.global_addr g.gname) (String.length s)
      | None -> ())
    image.L.globals;
  Bytes.set_int64_le mem (Mem.mem_size - 8) sentinel;
  mem

type snapshot = { s_image : L.image; s_mem : Bytes.t }

let snapshot (image : L.image) : snapshot = { s_image = image; s_mem = init_mem image }

let make ~(ext_extra : (string * int * (t -> unit)) list) (image : L.image) mem snap : t =
  let self = ref None in
  let env =
    {
      Refine_ir.Externs.out = Buffer.create 1024;
      read_byte =
        (fun a ->
          if a < Mem.null_guard || a >= Mem.mem_size then
            raise (Refine_ir.Externs.Extern_trap (Printf.sprintf "print_str read at 0x%x" a))
          else Bytes.get mem a);
      alloc =
        (fun n ->
          match !self with
          | None -> assert false
          | Some t ->
            let addr = t.heap in
            t.heap <- t.heap + Mem.align8 n;
            if t.heap > Mem.mem_size - Mem.stack_limit then
              raise (Refine_ir.Externs.Extern_trap "out of heap memory")
            else if t.heap - t.image.L.heap_base > t.heap_quota then
              (* sandbox quota, tighter than physical memory: Halt_trap skips
                 the Extern_fault wrapper so the trap keeps its own kind *)
              raise (Halt_trap (Heap_quota t.heap_quota))
            else addr);
      exited = None;
    }
  in
  let t =
    {
      image;
      regs = Array.make R.num_regs 0L;
      mem;
      pc = image.L.entry;
      steps = 0;
      cost = 0;
      status = Running;
      heap = image.L.heap_base;
      env;
      ext_extra = Hashtbl.create 8;
      post_hook = None;
      hook_cost = 0;
      prof = None;
      heap_quota = max_int;
      handlers = [||];
      builtins = [||];
      fi_mask = 0L;
      overlay_pc = -1;
      overlay_instr = None;
      dprog = None;
      d_active = [||];
      d_overlay = None;
      d_check = no_check;
      d_max_steps = max_int;
      d_max_cost = max_int;
      detach_req = false;
      handler_cost = [||];
      fi_sel_skip = 0;
      fi_sel_pending = 0;
      cs_slots = Array.make 64 0;
      cs_vals = Array.make 64 0L;
      cs_len = 0;
      snap;
    }
  in
  self := Some t;
  List.iter (fun (name, cost, fn) -> Hashtbl.replace t.ext_extra name (cost, fn)) ext_extra;
  t.builtins <- Array.map builtin_handler image.L.ext_names;
  t.handlers <- bind_handlers t;
  t.regs.(R.rsp) <- Int64.of_int (Mem.mem_size - 8);
  t

let create ?(ext_extra = []) (image : L.image) : t = make ~ext_extra image (init_mem image) None

let create_from_snapshot ?(ext_extra = []) (s : snapshot) : t =
  make ~ext_extra s.s_image (Bytes.copy s.s_mem) (Some s.s_mem)

(* Restore the pristine post-loader state with one [Bytes.blit] — the
   whole point of the snapshot API: a campaign worker reuses one arena per
   cell instead of allocating (and GC-ing) [Mem.mem_size] per sample.
   Every mutable piece of the machine is re-initialized, so a reset engine
   is bit-identical to a fresh [create_from_snapshot] (the differential
   property tests assert exactly this). *)
let reset ?(ext_extra = []) (t : t) : unit =
  let snap =
    match t.snap with
    | Some s -> s
    | None -> invalid_arg "Exec.reset: engine was not created from a snapshot"
  in
  Bytes.blit snap 0 t.mem 0 (Bytes.length snap);
  Array.fill t.regs 0 (Array.length t.regs) 0L;
  t.regs.(R.rsp) <- Int64.of_int (Mem.mem_size - 8);
  t.pc <- t.image.L.entry;
  t.steps <- 0;
  t.cost <- 0;
  t.status <- Running;
  t.heap <- t.image.L.heap_base;
  Buffer.clear t.env.out;
  t.env.exited <- None;
  t.post_hook <- None;
  t.hook_cost <- 0;
  t.prof <- None;
  t.heap_quota <- max_int;
  t.fi_mask <- 0L;
  t.overlay_pc <- -1;
  t.overlay_instr <- None;
  (* decoded-overlay state is cleared in the same pass as the overlay and
     FI mask: a reused engine must never dispatch a stale corrupted decode
     or keep running on the overlay-degraded single-instruction table *)
  t.d_overlay <- None;
  (match t.dprog with Some dp -> t.d_active <- dp.d_fused | None -> t.d_active <- [||]);
  t.d_check <- no_check;
  t.d_max_steps <- max_int;
  t.d_max_cost <- max_int;
  t.detach_req <- false;
  t.fi_sel_skip <- 0;
  t.fi_sel_pending <- 0;
  t.cs_len <- 0;
  Hashtbl.reset t.ext_extra;
  List.iter (fun (name, cost, fn) -> Hashtbl.replace t.ext_extra name (cost, fn)) ext_extra;
  t.handlers <- bind_handlers t

(* --- single step -------------------------------------------------------- *)

(* Shadow call stack: record, per [Mcalli], the stack slot the return
   address was pushed into and the value pushed.  Handoff to a golden-map
   detach target validates every live entry against memory and rewrites
   the slot to the translated golden pc; a mismatch (a fault struck a
   stored return address or rsp) declines the handoff instead of
   transferring a wrong frame.  Two int-array writes per call on the hot
   path; the arrays only grow (by doubling) past 64 live frames. *)
let[@inline] cs_push (t : t) slot v =
  let n = t.cs_len in
  (if n >= Array.length t.cs_slots then begin
     let cap = Array.length t.cs_slots in
     let ns = Array.make (2 * cap) 0 and nv = Array.make (2 * cap) 0L in
     Array.blit t.cs_slots 0 ns 0 cap;
     Array.blit t.cs_vals 0 nv 0 cap;
     t.cs_slots <- ns;
     t.cs_vals <- nv
   end);
  Array.unsafe_set t.cs_slots n slot;
  Array.unsafe_set t.cs_vals n v;
  t.cs_len <- n + 1

let[@inline] cs_pop (t : t) = if t.cs_len > 0 then t.cs_len <- t.cs_len - 1

let opd (t : t) = function M.Reg r -> t.regs.(r) | M.Imm v -> v

(* Execute [i] as the instruction at [pc0] (bounds already established by
   [step]'s guard).  Factored out of [step] so the Instr_image overlay can
   substitute a mutated instruction for the fetched one without an
   allocation on the hot path. *)
let exec_instr (t : t) pc0 (i : M.t) =
  let code = t.image.L.code in
  begin
    t.steps <- t.steps + 1;
    t.cost <- t.cost + 1 + t.hook_cost;
    (match t.prof with
    | None -> ()
    | Some p ->
      let k = Array.unsafe_get t.image.L.class_of_pc pc0 in
      p.class_steps.(k) <- p.class_steps.(k) + 1);
    t.pc <- pc0 + 1;
    (try
       (match i with
       | M.Mmov (d, s) -> t.regs.(d) <- opd t s
       | M.Mload (d, b, off) -> t.regs.(d) <- load64 t (Int64.to_int t.regs.(b) + off)
       | M.Mstore (s, b, off) -> store64 t (Int64.to_int t.regs.(b) + off) t.regs.(s)
       | M.Mloadidx (d, b, ix, off) ->
         t.regs.(d) <-
           load64 t (Int64.to_int t.regs.(b) + (8 * Int64.to_int t.regs.(ix)) + off)
       | M.Mstoreidx (s, b, ix, off) ->
         store64 t (Int64.to_int t.regs.(b) + (8 * Int64.to_int t.regs.(ix)) + off) t.regs.(s)
       | M.Mlea (d, b, ix, off) ->
         let base = t.regs.(b) in
         let idx = match ix with Some r -> Int64.mul 8L t.regs.(r) | None -> 0L in
         t.regs.(d) <- Int64.add (Int64.add base idx) (Int64.of_int off)
       | M.Mbin (op, d, a, b) ->
         let va = t.regs.(a) and vb = opd t b in
         let r =
           try Refine_ir.Interp.eval_ibinop op va vb
           with Refine_ir.Interp.Trap _ -> raise (Halt_trap Div_by_zero)
         in
         t.regs.(d) <- r;
         set_flags t ~zf:(r = 0L) ~lt:(Int64.compare r 0L < 0) ~unord:false
       | M.Mfbin (op, d, a, b) ->
         t.regs.(d) <- b64 (Refine_ir.Interp.eval_fbinop op (f64 t.regs.(a)) (f64 t.regs.(b)))
       | M.Mfun (op, d, a) -> t.regs.(d) <- b64 (Refine_ir.Interp.eval_funop op (f64 t.regs.(a)))
       | M.Mcvt (Sitofp, d, a) -> t.regs.(d) <- b64 (Int64.to_float t.regs.(a))
       | M.Mcvt (Fptosi, d, a) -> t.regs.(d) <- Refine_ir.Interp.fptosi (f64 t.regs.(a))
       | M.Mcmp (a, b) ->
         let va = t.regs.(a) and vb = opd t b in
         let c = Int64.compare va vb in
         set_flags t ~zf:(c = 0) ~lt:(c < 0) ~unord:false
       | M.Mfcmp (a, b) ->
         let va = f64 t.regs.(a) and vb = f64 t.regs.(b) in
         if Float.is_nan va || Float.is_nan vb then set_flags t ~zf:false ~lt:false ~unord:true
         else set_flags t ~zf:(va = vb) ~lt:(va < vb) ~unord:false
       | M.Msetcc (cc, d) -> t.regs.(d) <- (if eval_cc t cc then 1L else 0L)
       | M.Mjcc (cc, target) -> if eval_cc t cc then t.pc <- target
       | M.Mjmp target -> t.pc <- target
       | M.Mpush r -> push t t.regs.(r)
       | M.Mpop r -> t.regs.(r) <- pop t
       | M.Mpushf -> push t t.regs.(R.flags)
       | M.Mpopf -> t.regs.(R.flags) <- pop t
       | M.Mcalli target ->
         let ra = Int64.of_int t.pc in
         push t ra;
         cs_push t (Int64.to_int t.regs.(R.rsp)) ra;
         t.pc <- target
       | M.Mcall name -> raise (Halt_trap (Extern_fault ("unresolved call " ^ name)))
       | M.Mcallext name ->
         (* pre-resolved dispatch: no string hashing on the hot path *)
         let slot = t.image.L.ext_slot_of_pc.(pc0) in
         if slot >= 0 then t.handlers.(slot) t else do_callext t name
       | M.Mret ->
         let ra = pop t in
         cs_pop t;
         if ra = sentinel then t.status <- Exited (Int64.to_int t.regs.(R.ret_gpr))
         else begin
           let target = Int64.to_int ra in
           if target < 0 || target >= Array.length code then raise (Halt_trap (Bad_pc target))
           else t.pc <- target
         end
       | M.Mxorbit (d, s) ->
         (* a pending multi-bit mask overrides the single-bit flip: the
            splice stays one instruction, the fault gets k bits (§18) *)
         if t.fi_mask <> 0L then begin
           t.regs.(d) <- Int64.logxor t.regs.(d) t.fi_mask;
           t.fi_mask <- 0L
         end
         else
           t.regs.(d) <-
             Int64.logxor t.regs.(d)
               (Int64.shift_left 1L (Int64.to_int (Int64.logand t.regs.(s) 63L)))
       | M.Mxorbitmem (b, off, s) ->
         let addr = Int64.to_int t.regs.(b) + off in
         let v = load64 t addr in
         let mask =
           if t.fi_mask <> 0L then begin
             let m = t.fi_mask in
             t.fi_mask <- 0L;
             m
           end
           else Int64.shift_left 1L (Int64.to_int (Int64.logand t.regs.(s) 63L))
         in
         store64 t addr (Int64.logxor v mask)
       | M.Mhalt -> t.status <- Exited (Int64.to_int t.regs.(R.ret_gpr)));
       match t.post_hook with Some h -> h t pc0 i | None -> ()
     with Halt_trap tr -> t.status <- Trapped tr)
  end

let step (t : t) =
  let code = t.image.L.code in
  if t.pc < 0 || t.pc >= Array.length code then t.status <- Trapped (Bad_pc t.pc)
  else begin
    let pc0 = t.pc in
    (* overlay check is one int compare on the hot path; only a hit pays
       for the option match *)
    if pc0 = t.overlay_pc then (
      match t.overlay_instr with
      | Some i -> exec_instr t pc0 i
      | None ->
        (* the corrupted slot no longer decodes: the fetch itself traps *)
        t.steps <- t.steps + 1;
        t.cost <- t.cost + 1;
        t.status <- Trapped (Illegal_instr pc0))
    else exec_instr t pc0 (Array.unsafe_get code pc0)
  end

(* --- pre-decoded engine (DESIGN.md §19) ---------------------------------

   The decoded executor turns each loaded instruction into a closure with
   operands, flag-word writes, branch targets and extern slots resolved at
   decode time — generalizing §14's extern-slot pre-resolution to every
   opcode — plus superinstructions fusing the hot MinC idioms
   (compare-branch, load-op-store, loop-back-edge).  Exactness invariants
   (asserted by the differential qcheck suite):

   - every constituent of a superinstruction retires its own step / cost /
     profile counts and ends with the legacy loop's 1024-step poll-slot
     test, so FI triggers (the word-compare on the target step), heart-
     beats, livelock fingerprints and quota trips fire at bit-identical
     points;
   - between constituents the fused closure re-tests exactly the legacy
     while-condition (status, max_steps, max_cost) plus the fall-through
     pc, so budget exhaustion, traps and taken branches leave the machine
     in the state the legacy interpreter would;
   - fused idioms contain no extern calls, so nothing a constituent
     executes can install an overlay or a DBI hook mid-fusion;
   - the dispatch loop falls back to the legacy [step] while a [post_hook]
     is attached (PINFI / tracing observe per-instruction semantics, and
     decoded dispatch resumes the moment the hook detaches itself) and
     routes the overlaid pc through the overlay decode.

   Decoded closures capture no engine: a [dprogram] is immutable and
   shared read-only across engines and domains. *)

type dop = t -> unit

(* unaligned 64-bit little-endian access without the per-access Bytes
   bounds check — [check_addr] has already validated the range *)
external unsafe_get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external unsafe_set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"
external bswap64 : int64 -> int64 = "%bswap_int64"

let[@inline always] dload64 t addr =
  check_addr addr;
  let v = unsafe_get64 t.mem addr in
  if Sys.big_endian then bswap64 v else v

let[@inline always] dstore64 t addr v =
  check_addr addr;
  unsafe_set64 t.mem addr (if Sys.big_endian then bswap64 v else v)

(* retire-check: the legacy run loop's poll-slot test, executed after
   every retired constituent *)
let[@inline always] rc (t : t) = if t.steps land 1023 = 0 then t.d_check ()

(* per-constituent accounting, identical to [exec_instr]'s prologue with
   the opcode class [k] and the slot's cost weight [cw] baked in at decode
   time.  [cw] is 1 for plain code; detach-target images carry the
   attached-equivalent modeled cost of skipped instrumentation on the
   surviving slots (DESIGN.md §20), so a detached run's cost trajectory
   matches the attached run's at every original-instruction boundary. *)
let[@inline always] account (t : t) k cw =
  t.steps <- t.steps + 1;
  t.cost <- t.cost + cw + t.hook_cost;
  match t.prof with
  | None -> ()
  | Some p -> p.class_steps.(k) <- p.class_steps.(k) + 1

(* the legacy while-condition, re-tested between fused constituents *)
let[@inline always] d_live (t : t) =
  (match t.status with Running -> true | _ -> false)
  && t.steps < t.d_max_steps && t.cost < t.d_max_cost

(* comparisons spelled with the int64-specialized operators: the compiler
   compiles them to unboxed native compares instead of C calls *)
let[@inline always] set_flags_r (t : t) (r : int64) =
  let i = (if r = 0L then 1 else 0) lor if r < 0L then 2 else 0 in
  Array.unsafe_set t.regs R.flags (Array.unsafe_get flag_words i)

let[@inline always] flags_of (va : int64) (vb : int64) =
  (if va = vb then 1 else 0) lor if va < vb then 2 else 0

(* integer condition codes as a FLAGS bit test: [Some (mask, want)] means
   the condition holds iff [(flags land mask <> 0) = want]; [None] for
   float codes (they additionally read the UNORD bit) *)
let int_cc : M.cc -> (int * bool) option = function
  | M.CEq -> Some (1, true)
  | M.CNe -> Some (1, false)
  | M.CLt -> Some (2, true)
  | M.CLe -> Some (3, true)
  | M.CGt -> Some (3, false)
  | M.CGe -> Some (2, false)
  | _ -> None

(* [eval_cc] specialized to a closure over the integer FLAGS word *)
let cc_fn (cc : M.cc) : int -> bool =
  match cc with
  | M.CEq -> fun fl -> fl land 1 <> 0
  | M.CNe -> fun fl -> fl land 1 = 0
  | M.CLt -> fun fl -> fl land 2 <> 0
  | M.CLe -> fun fl -> fl land 3 <> 0
  | M.CGt -> fun fl -> fl land 3 = 0
  | M.CGe -> fun fl -> fl land 2 = 0
  | M.CFeq -> fun fl -> fl land 1 <> 0 && fl land 4 = 0
  | M.CFne -> fun fl -> fl land 1 = 0 || fl land 4 <> 0
  | M.CFlt -> fun fl -> fl land 2 <> 0 && fl land 4 = 0
  | M.CFle -> fun fl -> fl land 3 <> 0 && fl land 4 = 0
  | M.CFgt -> fun fl -> fl land 3 = 0 && fl land 4 = 0
  | M.CFge -> fun fl -> fl land 2 = 0 && fl land 4 = 0

(* Decode one instruction as the slot at [pc0] into a closure.  [image]
   supplies the class and extern-slot tables — always those of the
   original pc, matching [exec_instr], including for Instr_image overlay
   instructions.  Register indices are validated here so the closures use
   unchecked array access; an operand outside the register file
   (impossible for layout output, and [Corrupt.mutate] clamps registers)
   falls back to the legacy [exec_instr]. *)
let decode_one ?cost_of (image : L.image) (pc0 : int) (i : M.t) : dop =
  let k = image.L.class_of_pc.(pc0) in
  let cw = match cost_of with None -> 1 | Some c -> c.(pc0) in
  let pc1 = pc0 + 1 in
  let code_len = Array.length image.L.code in
  let okr r = r >= 0 && r < R.num_regs in
  let oko = function M.Reg r -> okr r | M.Imm _ -> true in
  let via_legacy : dop =
   fun t ->
    exec_instr t pc0 i;
    (* [exec_instr] charged weight 1; top up to the slot's weight — but
       only when the instruction retired: attached, a trapping candidate
       never reaches the instrumentation modeled by the extra weight, so
       a trap must not pay for it either *)
    (if cw > 1 then
       match t.status with Running -> t.cost <- t.cost + (cw - 1) | _ -> ());
    rc t
  in
  (* weighted slots always take the legacy route: the fast-path closures
     charge [cw] before executing, which would over-charge a slot that
     traps mid-instruction.  Weighted slots are rare (one per candidate
     on a detach target, none on plain images), so this costs nothing on
     the hot path. *)
  if cw > 1 then via_legacy
  else
  match i with
  | M.Mmov (d, M.Reg s) when okr d && okr s ->
    fun t ->
      account t k cw;
      t.pc <- pc1;
      Array.unsafe_set t.regs d (Array.unsafe_get t.regs s);
      rc t
  | M.Mmov (d, M.Imm v) when okr d ->
    fun t ->
      account t k cw;
      t.pc <- pc1;
      Array.unsafe_set t.regs d v;
      rc t
  | M.Mload (d, b, off) when okr d && okr b ->
    fun t ->
      account t k cw;
      t.pc <- pc1;
      Array.unsafe_set t.regs d (dload64 t (Int64.to_int (Array.unsafe_get t.regs b) + off));
      rc t
  | M.Mstore (s, b, off) when okr s && okr b ->
    fun t ->
      account t k cw;
      t.pc <- pc1;
      dstore64 t (Int64.to_int (Array.unsafe_get t.regs b) + off) (Array.unsafe_get t.regs s);
      rc t
  | M.Mloadidx (d, b, ix, off) when okr d && okr b && okr ix ->
    fun t ->
      account t k cw;
      t.pc <- pc1;
      Array.unsafe_set t.regs d
        (dload64 t
           (Int64.to_int (Array.unsafe_get t.regs b)
           + (8 * Int64.to_int (Array.unsafe_get t.regs ix))
           + off));
      rc t
  | M.Mstoreidx (s, b, ix, off) when okr s && okr b && okr ix ->
    fun t ->
      account t k cw;
      t.pc <- pc1;
      dstore64 t
        (Int64.to_int (Array.unsafe_get t.regs b)
        + (8 * Int64.to_int (Array.unsafe_get t.regs ix))
        + off)
        (Array.unsafe_get t.regs s);
      rc t
  | M.Mlea (d, b, Some ix, off) when okr d && okr b && okr ix ->
    let offl = Int64.of_int off in
    fun t ->
      account t k cw;
      t.pc <- pc1;
      Array.unsafe_set t.regs d
        (Int64.add
           (Int64.add (Array.unsafe_get t.regs b) (Int64.mul 8L (Array.unsafe_get t.regs ix)))
           offl);
      rc t
  | M.Mlea (d, b, None, off) when okr d && okr b ->
    let offl = Int64.of_int off in
    fun t ->
      account t k cw;
      t.pc <- pc1;
      Array.unsafe_set t.regs d (Int64.add (Array.unsafe_get t.regs b) offl);
      rc t
  | M.Mbin (op, d, a, b) when okr d && okr a && oko b ->
    let fin (t : t) (r : int64) =
      Array.unsafe_set t.regs d r;
      set_flags_r t r;
      rc t
    in
    (match b with
    | M.Imm vb -> (
      match (op : Refine_ir.Ir.ibinop) with
      | Add ->
        fun t ->
          account t k cw;
          t.pc <- pc1;
          fin t (Int64.add (Array.unsafe_get t.regs a) vb)
      | Sub ->
        fun t ->
          account t k cw;
          t.pc <- pc1;
          fin t (Int64.sub (Array.unsafe_get t.regs a) vb)
      | Mul ->
        fun t ->
          account t k cw;
          t.pc <- pc1;
          fin t (Int64.mul (Array.unsafe_get t.regs a) vb)
      | And ->
        fun t ->
          account t k cw;
          t.pc <- pc1;
          fin t (Int64.logand (Array.unsafe_get t.regs a) vb)
      | Or ->
        fun t ->
          account t k cw;
          t.pc <- pc1;
          fin t (Int64.logor (Array.unsafe_get t.regs a) vb)
      | Xor ->
        fun t ->
          account t k cw;
          t.pc <- pc1;
          fin t (Int64.logxor (Array.unsafe_get t.regs a) vb)
      | Shl ->
        let sh = Int64.to_int (Int64.logand vb 63L) in
        fun t ->
          account t k cw;
          t.pc <- pc1;
          fin t (Int64.shift_left (Array.unsafe_get t.regs a) sh)
      | Lshr ->
        let sh = Int64.to_int (Int64.logand vb 63L) in
        fun t ->
          account t k cw;
          t.pc <- pc1;
          fin t (Int64.shift_right_logical (Array.unsafe_get t.regs a) sh)
      | Ashr ->
        let sh = Int64.to_int (Int64.logand vb 63L) in
        fun t ->
          account t k cw;
          t.pc <- pc1;
          fin t (Int64.shift_right (Array.unsafe_get t.regs a) sh)
      | Div ->
        fun t ->
          account t k cw;
          t.pc <- pc1;
          let va = Array.unsafe_get t.regs a in
          if vb = 0L then raise (Halt_trap Div_by_zero)
          else if va = Int64.min_int && vb = -1L then fin t Int64.min_int
          else fin t (Int64.div va vb)
      | Rem ->
        fun t ->
          account t k cw;
          t.pc <- pc1;
          let va = Array.unsafe_get t.regs a in
          if vb = 0L then raise (Halt_trap Div_by_zero)
          else if va = Int64.min_int && vb = -1L then fin t 0L
          else fin t (Int64.rem va vb))
    | M.Reg rb -> (
      match (op : Refine_ir.Ir.ibinop) with
      | Add ->
        fun t ->
          account t k cw;
          t.pc <- pc1;
          fin t (Int64.add (Array.unsafe_get t.regs a) (Array.unsafe_get t.regs rb))
      | Sub ->
        fun t ->
          account t k cw;
          t.pc <- pc1;
          fin t (Int64.sub (Array.unsafe_get t.regs a) (Array.unsafe_get t.regs rb))
      | Mul ->
        fun t ->
          account t k cw;
          t.pc <- pc1;
          fin t (Int64.mul (Array.unsafe_get t.regs a) (Array.unsafe_get t.regs rb))
      | And ->
        fun t ->
          account t k cw;
          t.pc <- pc1;
          fin t (Int64.logand (Array.unsafe_get t.regs a) (Array.unsafe_get t.regs rb))
      | Or ->
        fun t ->
          account t k cw;
          t.pc <- pc1;
          fin t (Int64.logor (Array.unsafe_get t.regs a) (Array.unsafe_get t.regs rb))
      | Xor ->
        fun t ->
          account t k cw;
          t.pc <- pc1;
          fin t (Int64.logxor (Array.unsafe_get t.regs a) (Array.unsafe_get t.regs rb))
      | Shl ->
        fun t ->
          account t k cw;
          t.pc <- pc1;
          fin t
            (Int64.shift_left (Array.unsafe_get t.regs a)
               (Int64.to_int (Int64.logand (Array.unsafe_get t.regs rb) 63L)))
      | Lshr ->
        fun t ->
          account t k cw;
          t.pc <- pc1;
          fin t
            (Int64.shift_right_logical (Array.unsafe_get t.regs a)
               (Int64.to_int (Int64.logand (Array.unsafe_get t.regs rb) 63L)))
      | Ashr ->
        fun t ->
          account t k cw;
          t.pc <- pc1;
          fin t
            (Int64.shift_right (Array.unsafe_get t.regs a)
               (Int64.to_int (Int64.logand (Array.unsafe_get t.regs rb) 63L)))
      | Div ->
        fun t ->
          account t k cw;
          t.pc <- pc1;
          let va = Array.unsafe_get t.regs a and vb = Array.unsafe_get t.regs rb in
          if vb = 0L then raise (Halt_trap Div_by_zero)
          else if va = Int64.min_int && vb = -1L then fin t Int64.min_int
          else fin t (Int64.div va vb)
      | Rem ->
        fun t ->
          account t k cw;
          t.pc <- pc1;
          let va = Array.unsafe_get t.regs a and vb = Array.unsafe_get t.regs rb in
          if vb = 0L then raise (Halt_trap Div_by_zero)
          else if va = Int64.min_int && vb = -1L then fin t 0L
          else fin t (Int64.rem va vb)))
  | M.Mfbin (op, d, a, b) when okr d && okr a && okr b ->
    let fin (t : t) r =
      Array.unsafe_set t.regs d (b64 r);
      rc t
    in
    (match (op : Refine_ir.Ir.fbinop) with
    | Fadd ->
      fun t ->
        account t k cw;
        t.pc <- pc1;
        fin t (f64 (Array.unsafe_get t.regs a) +. f64 (Array.unsafe_get t.regs b))
    | Fsub ->
      fun t ->
        account t k cw;
        t.pc <- pc1;
        fin t (f64 (Array.unsafe_get t.regs a) -. f64 (Array.unsafe_get t.regs b))
    | Fmul ->
      fun t ->
        account t k cw;
        t.pc <- pc1;
        fin t (f64 (Array.unsafe_get t.regs a) *. f64 (Array.unsafe_get t.regs b))
    | Fdiv ->
      fun t ->
        account t k cw;
        t.pc <- pc1;
        fin t (f64 (Array.unsafe_get t.regs a) /. f64 (Array.unsafe_get t.regs b)))
  | M.Mfun (op, d, a) when okr d && okr a -> (
    match (op : Refine_ir.Ir.funop) with
    | Fneg ->
      fun t ->
        account t k cw;
        t.pc <- pc1;
        Array.unsafe_set t.regs d (b64 (-.f64 (Array.unsafe_get t.regs a)));
        rc t
    | Fsqrt ->
      fun t ->
        account t k cw;
        t.pc <- pc1;
        Array.unsafe_set t.regs d (b64 (sqrt (f64 (Array.unsafe_get t.regs a))));
        rc t
    | Fabs ->
      fun t ->
        account t k cw;
        t.pc <- pc1;
        Array.unsafe_set t.regs d (b64 (Float.abs (f64 (Array.unsafe_get t.regs a))));
        rc t)
  | M.Mcvt (Sitofp, d, a) when okr d && okr a ->
    fun t ->
      account t k cw;
      t.pc <- pc1;
      Array.unsafe_set t.regs d (b64 (Int64.to_float (Array.unsafe_get t.regs a)));
      rc t
  | M.Mcvt (Fptosi, d, a) when okr d && okr a ->
    fun t ->
      account t k cw;
      t.pc <- pc1;
      Array.unsafe_set t.regs d (Refine_ir.Interp.fptosi (f64 (Array.unsafe_get t.regs a)));
      rc t
  | M.Mcmp (a, M.Imm vb) when okr a ->
    fun t ->
      account t k cw;
      t.pc <- pc1;
      let fl = flags_of (Array.unsafe_get t.regs a) vb in
      Array.unsafe_set t.regs R.flags (Array.unsafe_get flag_words fl);
      rc t
  | M.Mcmp (a, M.Reg rb) when okr a && okr rb ->
    fun t ->
      account t k cw;
      t.pc <- pc1;
      let fl = flags_of (Array.unsafe_get t.regs a) (Array.unsafe_get t.regs rb) in
      Array.unsafe_set t.regs R.flags (Array.unsafe_get flag_words fl);
      rc t
  | M.Mfcmp (a, b) when okr a && okr b ->
    fun t ->
      account t k cw;
      t.pc <- pc1;
      let va = f64 (Array.unsafe_get t.regs a) and vb = f64 (Array.unsafe_get t.regs b) in
      let fl =
        if Float.is_nan va || Float.is_nan vb then 4
        else (if va = vb then 1 else 0) lor if va < vb then 2 else 0
      in
      Array.unsafe_set t.regs R.flags (Array.unsafe_get flag_words fl);
      rc t
  | M.Msetcc (cc, d) when okr d ->
    let test = cc_fn cc in
    fun t ->
      account t k cw;
      t.pc <- pc1;
      Array.unsafe_set t.regs d
        (if test (Int64.to_int (Array.unsafe_get t.regs R.flags)) then 1L else 0L);
      rc t
  | M.Mjcc (cc, target) -> (
    match int_cc cc with
    | Some (mask, want) ->
      fun t ->
        account t k cw;
        t.pc <- pc1;
        let fl = Int64.to_int (Array.unsafe_get t.regs R.flags) in
        if (fl land mask <> 0) = want then t.pc <- target;
        rc t
    | None ->
      let test = cc_fn cc in
      fun t ->
        account t k cw;
        t.pc <- pc1;
        if test (Int64.to_int (Array.unsafe_get t.regs R.flags)) then t.pc <- target;
        rc t)
  | M.Mjmp target ->
    fun t ->
      account t k cw;
      t.pc <- target;
      rc t
  | M.Mpush r when okr r ->
    fun t ->
      account t k cw;
      t.pc <- pc1;
      push t (Array.unsafe_get t.regs r);
      rc t
  | M.Mpop r when okr r ->
    fun t ->
      account t k cw;
      t.pc <- pc1;
      Array.unsafe_set t.regs r (pop t);
      rc t
  | M.Mpushf ->
    fun t ->
      account t k cw;
      t.pc <- pc1;
      push t t.regs.(R.flags);
      rc t
  | M.Mpopf ->
    fun t ->
      account t k cw;
      t.pc <- pc1;
      t.regs.(R.flags) <- pop t;
      rc t
  | M.Mcalli target ->
    (* the return address is a decode-time constant: no box per call *)
    let ra = Int64.of_int pc1 in
    fun t ->
      account t k cw;
      t.pc <- pc1;
      push t ra;
      cs_push t (Int64.to_int (Array.unsafe_get t.regs R.rsp)) ra;
      t.pc <- target;
      rc t
  | M.Mcall name ->
    let tr = Halt_trap (Extern_fault ("unresolved call " ^ name)) in
    fun t ->
      account t k cw;
      t.pc <- pc1;
      raise tr
  | M.Mcallext name ->
    (* extern slot resolved at decode time (the §14 fast path, one step
       earlier); slot -1 = post-layout mutated code, by-name fallback *)
    let slot = image.L.ext_slot_of_pc.(pc0) in
    if slot >= 0 then
      fun t ->
        account t k cw;
        t.pc <- pc1;
        t.handlers.(slot) t;
        rc t
    else
      fun t ->
        account t k cw;
        t.pc <- pc1;
        do_callext t name;
        rc t
  | M.Mret ->
    fun t ->
      account t k cw;
      t.pc <- pc1;
      let ra = pop t in
      cs_pop t;
      if ra = sentinel then t.status <- Exited (Int64.to_int t.regs.(R.ret_gpr))
      else begin
        let target = Int64.to_int ra in
        if target < 0 || target >= code_len then raise (Halt_trap (Bad_pc target))
        else t.pc <- target
      end;
      rc t
  | M.Mxorbit (d, s) when okr d && okr s ->
    fun t ->
      account t k cw;
      t.pc <- pc1;
      (if t.fi_mask <> 0L then begin
         Array.unsafe_set t.regs d (Int64.logxor (Array.unsafe_get t.regs d) t.fi_mask);
         t.fi_mask <- 0L
       end
       else
         Array.unsafe_set t.regs d
           (Int64.logxor (Array.unsafe_get t.regs d)
              (Int64.shift_left 1L
                 (Int64.to_int (Int64.logand (Array.unsafe_get t.regs s) 63L)))));
      rc t
  | M.Mxorbitmem (b, off, s) when okr b && okr s ->
    fun t ->
      account t k cw;
      t.pc <- pc1;
      let addr = Int64.to_int (Array.unsafe_get t.regs b) + off in
      let v = dload64 t addr in
      let mask =
        if t.fi_mask <> 0L then begin
          let m = t.fi_mask in
          t.fi_mask <- 0L;
          m
        end
        else Int64.shift_left 1L (Int64.to_int (Int64.logand (Array.unsafe_get t.regs s) 63L))
      in
      dstore64 t addr (Int64.logxor v mask);
      rc t
  | M.Mhalt ->
    fun t ->
      account t k cw;
      t.pc <- pc1;
      t.status <- Exited (Int64.to_int t.regs.(R.ret_gpr));
      rc t
  | _ -> via_legacy

(* --- superinstruction fusion ------------------------------------------- *)

(* Compose two decoded constituents: [f2] runs only if [f1] fell through
   to [next1] with the legacy while-condition intact.  Exact by
   construction, because every single-instruction decode self-retires and
   self-checks. *)
let compose2 next1 (f1 : dop) (f2 : dop) : dop =
 fun t ->
  f1 t;
  if t.pc = next1 && d_live t then f2 t

(* --- batched retirement --------------------------------------------------

   A superinstruction's constituents are only *observable* individually at
   a 1024-step poll slot, a trap, a budget edge, or a status change: those
   are the only points where anything outside the fused closure reads the
   counters or the architectural state.  The compare-branch idioms contain
   no trapping or status-changing constituent, so when the guard proves no
   poll slot and no budget edge falls inside the group, the per-constituent
   counter writes collapse into one batched update and the intermediate
   FLAGS/pc writes into their final values — bit-identical by construction,
   since no observation point was skipped.  The guard declining (boundary
   or budget edge inside the group) falls back to the constituent-exact
   slow path, which retires one at a time with the legacy poll-slot test
   after each. *)

(* Hand-fused integer compare-branch: one closure, flags kept in a local,
   the cc as a decode-time FLAGS bit test. *)
let fuse_pair2 ?(cw0 = 1) ?(cw1 = 1) (image : L.image) pc0 a (b : M.mopd) ~mask ~want ~tgt :
    dop =
  let k0 = image.L.class_of_pc.(pc0) and k1 = image.L.class_of_pc.(pc0 + 1) in
  let pc1 = pc0 + 1 and pc2 = pc0 + 2 in
  let finish (t : t) fl =
    let s = t.steps in
    let c2 = cw0 + cw1 + (2 * t.hook_cost) in
    if s land 1023 <= 1021 && t.d_max_steps - s >= 2 && t.d_max_cost - t.cost >= c2 then begin
      (* batched: no poll slot or budget edge inside the pair *)
      t.steps <- s + 2;
      t.cost <- t.cost + c2;
      (match t.prof with
      | None -> ()
      | Some p ->
        p.class_steps.(k0) <- p.class_steps.(k0) + 1;
        p.class_steps.(k1) <- p.class_steps.(k1) + 1);
      Array.unsafe_set t.regs R.flags (Array.unsafe_get flag_words fl);
      t.pc <- (if (fl land mask <> 0) = want then tgt else pc2)
    end
    else begin
      (* constituent-exact slow path across the boundary/edge *)
      account t k0 cw0;
      t.pc <- pc1;
      Array.unsafe_set t.regs R.flags (Array.unsafe_get flag_words fl);
      rc t;
      if d_live t then begin
        account t k1 cw1;
        t.pc <- pc2;
        if (fl land mask <> 0) = want then t.pc <- tgt;
        rc t
      end
    end
  in
  match b with
  | M.Imm vb -> fun t -> finish t (flags_of (Array.unsafe_get t.regs a) vb)
  | M.Reg rb -> fun t -> finish t (flags_of (Array.unsafe_get t.regs a) (Array.unsafe_get t.regs rb))

(* Hand-fused loop back edge: compare + conditional exit + backward jump,
   the bottom-of-loop shape of every counted MinC loop.  The jump
   constituent retires only on the fall-through path, exactly as the
   legacy interpreter would reach it.

   [spin] marks a tight self-loop ([jt = pc0] and the compared registers
   not FLAGS): the triple writes nothing but FLAGS and pc, so once the
   branch falls through every further iteration is identical until the
   next poll slot or budget edge — those iterations retire in bulk and the
   boundary iteration goes through the constituent-exact path, firing the
   poll check at exactly the legacy step count with exactly the legacy
   architectural state. *)
let fuse_loop3 ?(cw0 = 1) ?(cw1 = 1) ?(cw2 = 1) (image : L.image) pc0 a (b : M.mopd) ~mask
    ~want ~tgt ~jt ~spin : dop =
  let k0 = image.L.class_of_pc.(pc0)
  and k1 = image.L.class_of_pc.(pc0 + 1)
  and k2 = image.L.class_of_pc.(pc0 + 2) in
  let pc1 = pc0 + 1 and pc2 = pc0 + 2 in
  let finish (t : t) fl =
    let s = t.steps in
    let hc = t.hook_cost in
    let c3 = cw0 + cw1 + cw2 + (3 * hc) in
    if s land 1023 <= 1020 && t.d_max_steps - s >= 3 && t.d_max_cost - t.cost >= c3 then begin
      (* batched: no poll slot or budget edge inside the triple *)
      Array.unsafe_set t.regs R.flags (Array.unsafe_get flag_words fl);
      let prof2 () =
        match t.prof with
        | None -> ()
        | Some p ->
          p.class_steps.(k0) <- p.class_steps.(k0) + 1;
          p.class_steps.(k1) <- p.class_steps.(k1) + 1
      in
      if (fl land mask <> 0) = want then begin
        (* exit taken: only cmp+jcc retire *)
        t.steps <- s + 2;
        t.cost <- t.cost + cw0 + cw1 + (2 * hc);
        prof2 ();
        t.pc <- tgt
      end
      else begin
        t.steps <- s + 3;
        t.cost <- t.cost + c3;
        prof2 ();
        (match t.prof with
        | None -> ()
        | Some p -> p.class_steps.(k2) <- p.class_steps.(k2) + 1);
        t.pc <- jt;
        if spin then begin
          (* idempotent spin: retire whole further iterations in bulk up
             to the next poll slot / budget edge *)
          let n =
            min
              ((1023 - (t.steps land 1023)) / 3)
              (min ((t.d_max_steps - t.steps) / 3) ((t.d_max_cost - t.cost) / c3))
          in
          if n > 0 then begin
            t.steps <- t.steps + (3 * n);
            t.cost <- t.cost + (n * c3);
            match t.prof with
            | None -> ()
            | Some p ->
              p.class_steps.(k0) <- p.class_steps.(k0) + n;
              p.class_steps.(k1) <- p.class_steps.(k1) + n;
              p.class_steps.(k2) <- p.class_steps.(k2) + n
          end
        end
      end
    end
    else begin
      (* constituent-exact slow path across the boundary/edge *)
      account t k0 cw0;
      t.pc <- pc1;
      Array.unsafe_set t.regs R.flags (Array.unsafe_get flag_words fl);
      rc t;
      if d_live t then begin
        account t k1 cw1;
        t.pc <- pc2;
        if (fl land mask <> 0) = want then begin
          t.pc <- tgt;
          rc t
        end
        else begin
          rc t;
          if d_live t then begin
            account t k2 cw2;
            t.pc <- jt;
            rc t
          end
        end
      end
    end
  in
  match b with
  | M.Imm vb -> fun t -> finish t (flags_of (Array.unsafe_get t.regs a) vb)
  | M.Reg rb -> fun t -> finish t (flags_of (Array.unsafe_get t.regs a) (Array.unsafe_get t.regs rb))

(* Hand-fused counted-loop latch: a non-trapping integer op updating the
   latch register, the compare on it, and the conditional back edge, in
   one group.  The branch is the last constituent, so all three always
   retire together and the batched path needs only the boundary/budget
   guard; the op's intermediate FLAGS write is unobservable inside the
   batch (the compare overwrites it), so only the compare's flags are
   stored.  Decode guarantees none of the operands is FLAGS itself.

   [burn = Some (delta, m)] marks the canonical counted self-latch:
   [tgt = pc0], the op steps the latch register by [delta] (+-1), and the
   compare is [latch <> m] (CNe).  Every further iteration then has the
   closed form latch_j = latch + j*delta with the branch taken while
   latch_j <> m, so whole iterations retire in bulk up to the iteration
   before the exit value, the next poll slot, or a budget edge — with the
   latch register and FLAGS materialized to their exact architectural
   values at the stopping point. *)
let fuse_latch3 ?cost_of ?(cw0 = 1) ?(cw1 = 1) ?(cw2 = 1) (image : L.image) pc0
    (op : Refine_ir.Ir.ibinop) d a (b : M.mopd) a2 (b2 : M.mopd) ~mask ~want ~tgt ~burn : dop =
  let k0 = image.L.class_of_pc.(pc0)
  and k1 = image.L.class_of_pc.(pc0 + 1)
  and k2 = image.L.class_of_pc.(pc0 + 2) in
  let pc3 = pc0 + 3 in
  let s0 = decode_one ?cost_of image pc0 image.L.code.(pc0)
  and s1 = decode_one ?cost_of image (pc0 + 1) image.L.code.(pc0 + 1)
  and s2 = decode_one ?cost_of image (pc0 + 2) image.L.code.(pc0 + 2) in
  fun t ->
    let s = t.steps in
    let c3 = cw0 + cw1 + cw2 + (3 * t.hook_cost) in
    if s land 1023 <= 1020 && t.d_max_steps - s >= 3 && t.d_max_cost - t.cost >= c3 then begin
      let va = Array.unsafe_get t.regs a in
      let vb = match b with M.Imm v -> v | M.Reg r -> Array.unsafe_get t.regs r in
      let r =
        match op with
        | Add -> Int64.add va vb
        | Sub -> Int64.sub va vb
        | Mul -> Int64.mul va vb
        | And -> Int64.logand va vb
        | Or -> Int64.logor va vb
        | Xor -> Int64.logxor va vb
        | Shl -> Int64.shift_left va (Int64.to_int (Int64.logand vb 63L))
        | Lshr -> Int64.shift_right_logical va (Int64.to_int (Int64.logand vb 63L))
        | Ashr -> Int64.shift_right va (Int64.to_int (Int64.logand vb 63L))
        | Div | Rem -> assert false (* excluded at decode: they can trap *)
      in
      Array.unsafe_set t.regs d r;
      let va2 = Array.unsafe_get t.regs a2 in
      let vb2 = match b2 with M.Imm v -> v | M.Reg rr -> Array.unsafe_get t.regs rr in
      let fl = flags_of va2 vb2 in
      Array.unsafe_set t.regs R.flags (Array.unsafe_get flag_words fl);
      t.steps <- s + 3;
      t.cost <- t.cost + c3;
      (match t.prof with
      | None -> ()
      | Some p ->
        p.class_steps.(k0) <- p.class_steps.(k0) + 1;
        p.class_steps.(k1) <- p.class_steps.(k1) + 1;
        p.class_steps.(k2) <- p.class_steps.(k2) + 1);
      if (fl land mask <> 0) = want then begin
        t.pc <- tgt;
        match burn with
        | None -> ()
        | Some (delta, m) ->
          (* counted self-latch: bulk-retire up to the iteration before
             the exit value / next poll slot / budget edge *)
          let cap =
            min
              ((1023 - (t.steps land 1023)) / 3)
              (min ((t.d_max_steps - t.steps) / 3) ((t.d_max_cost - t.cost) / c3))
          in
          if cap > 0 then begin
            (* the branch was taken, so r <> m and the (wrapping) exit
               distance is >= 1 *)
            let j_exit = if delta < 0L then Int64.sub r m else Int64.sub m r in
            let k64 = Int64.sub j_exit 1L in
            let k =
              if Int64.unsigned_compare k64 (Int64.of_int cap) >= 0 then cap
              else Int64.to_int k64
            in
            if k > 0 then begin
              let r' = Int64.add r (Int64.mul delta (Int64.of_int k)) in
              Array.unsafe_set t.regs d r';
              Array.unsafe_set t.regs R.flags (Array.unsafe_get flag_words (flags_of r' m));
              t.steps <- t.steps + (3 * k);
              t.cost <- t.cost + (k * c3);
              match t.prof with
              | None -> ()
              | Some p ->
                p.class_steps.(k0) <- p.class_steps.(k0) + k;
                p.class_steps.(k1) <- p.class_steps.(k1) + k;
                p.class_steps.(k2) <- p.class_steps.(k2) + k
            end
          end
      end
      else t.pc <- pc3
    end
    else begin
      (* constituent-exact slow path across the boundary/edge *)
      s0 t;
      if t.pc = pc0 + 1 && d_live t then begin
        s1 t;
        if t.pc = pc0 + 2 && d_live t then s2 t
      end
    end

(* Hand-fused REFINE FI splice (DESIGN.md §20): the instrumentation the
   pass wraps around every candidate —

     Mpush r0; [Mpushf]; Mcallext "fi_sel_instr";
     Mcmp (ret_gpr, 0); Mjcc (CEq, post); ...; post: [Mpopf]; Mpop r0

   — dispatched as one closure.  The overwhelmingly common non-firing
   path (the selector returns 0) batches the whole splice: the saves
   cannot trap (stack headroom is part of the guard), the selector call
   itself retires constituent-exact so the FI control library observes
   the precise attached machine state, and the restore loads the saved
   words back from memory — not from remembered values, because a firing
   Mem_cell fault inside the selector may strike the saved bytes and the
   legacy pops would read the flipped value.  Any other outcome (selector
   returns nonzero, an Instr_image overlay was installed, a budget edge,
   a status change) leaves the machine at the exact post-call boundary
   [a+1] and returns to the dispatch loop, which continues constituent-
   exact — the fire path's cmp/jcc at [a+1] is the ordinary fused
   compare-branch.  Guard failure runs the head's single decode; the
   interior pcs keep their single decodes, so nothing is lost. *)
let fuse_splice (image : L.image) pc0 ~pf ~r0 ~post : dop =
  let a = pc0 + if pf then 2 else 1 in
  let slot = image.L.ext_slot_of_pc.(a) in
  let npush = if pf then 2 else 1 in
  let len = npush + 3 + npush in
  let sp_end = post + npush - 1 in
  let cls = image.L.class_of_pc in
  let k_push = cls.(pc0)
  and k_pushf = cls.(pc0 + 1) (* = k_push's neighbour; read only when pf *)
  and k_call = cls.(a)
  and k_cmp = cls.(a + 1)
  and k_jcc = cls.(a + 2)
  and k_popf = cls.(post)
  and k_pop = cls.(sp_end) in
  let s_head = decode_one image pc0 image.L.code.(pc0) in
  let floor = Mem.mem_size - Mem.stack_limit in
  let ret_clobbered = r0 <> R.ret_gpr in
  fun t ->
    let s = t.steps in
    let hc = t.hook_cost in
    let sp = Int64.to_int (Array.unsafe_get t.regs R.rsp) in
    if
      t.fi_sel_skip > 0
      && s land 1023 <= 1023 - len
      && t.d_max_steps - s >= len
      && t.d_max_cost - t.cost >= (len * (1 + hc)) + Array.unsafe_get t.handler_cost slot
      && sp - (8 * npush) >= floor
      && sp - (8 * npush) >= Mem.null_guard
      && sp <= Mem.mem_size
    then begin
      (* fast path: the runtime has proven this selector call cannot fire
         (fi_sel_skip > 0), so the whole splice retires in-engine with no
         handler invocation.  Architecturally observable effects of the
         skipped sequence: the two PreFI stack stores, ret_gpr <- 0 (when
         the saved register is not ret_gpr itself — otherwise the pop
         restores it and the net effect is nil), flags = cmp 0,0 for the
         flag-less variant (the pf variant restores the saved FLAGS, net
         unchanged), rsp net unchanged, and the retired step/cost/profile
         counters.  The deferred dynamic count is banked in
         fi_sel_pending and folded back by the runtime (Runtime.absorb or
         the next real selector call). *)
      let hcost = Array.unsafe_get t.handler_cost slot in
      dstore64 t (sp - 8) (Array.unsafe_get t.regs r0);
      if pf then dstore64 t (sp - 16) (Array.unsafe_get t.regs R.flags);
      if ret_clobbered then Array.unsafe_set t.regs R.ret_gpr 0L;
      if not pf then Array.unsafe_set t.regs R.flags (Array.unsafe_get flag_words 1);
      t.steps <- s + len;
      t.cost <- t.cost + (len * (1 + hc)) + hcost;
      (match t.prof with
      | None -> ()
      | Some p ->
        p.class_steps.(k_push) <- p.class_steps.(k_push) + 1;
        if pf then p.class_steps.(k_pushf) <- p.class_steps.(k_pushf) + 1;
        p.class_steps.(k_call) <- p.class_steps.(k_call) + 1;
        p.class_steps.(k_cmp) <- p.class_steps.(k_cmp) + 1;
        p.class_steps.(k_jcc) <- p.class_steps.(k_jcc) + 1;
        if pf then p.class_steps.(k_popf) <- p.class_steps.(k_popf) + 1;
        p.class_steps.(k_pop) <- p.class_steps.(k_pop) + 1;
        p.ext_calls <- p.ext_calls + 1;
        p.ext_cost <- p.ext_cost + hcost);
      t.fi_sel_skip <- t.fi_sel_skip - 1;
      t.fi_sel_pending <- t.fi_sel_pending + 1;
      t.pc <- sp_end + 1
    end
    else if
      s land 1023 <= 1023 - len
      && t.d_max_steps - s >= len
      && t.d_max_cost - t.cost >= (len * (1 + hc)) + 64
      && sp - (8 * npush) >= floor
      && sp - (8 * npush) >= Mem.null_guard
      && sp <= Mem.mem_size
    then begin
      (* batched PreFI saves: no trap, poll slot or budget edge inside *)
      dstore64 t (sp - 8) (Array.unsafe_get t.regs r0);
      if pf then dstore64 t (sp - 16) (Array.unsafe_get t.regs R.flags);
      Array.unsafe_set t.regs R.rsp (Int64.of_int (sp - (8 * npush)));
      t.steps <- s + npush;
      t.cost <- t.cost + (npush * (1 + hc));
      (match t.prof with
      | None -> ()
      | Some p ->
        p.class_steps.(k_push) <- p.class_steps.(k_push) + 1;
        if pf then p.class_steps.(k_pushf) <- p.class_steps.(k_pushf) + 1);
      (* the selector call, constituent-exact *)
      account t k_call 1;
      t.pc <- a + 1;
      t.handlers.(slot) t;
      if
        d_live t && t.pc = a + 1 && t.overlay_pc < 0
        && Array.unsafe_get t.regs R.ret_gpr = 0L
        && t.d_max_cost - t.cost >= (npush + 2) * (1 + hc)
      then begin
        (* batched non-firing tail: cmp 0,0 (equal); jcc taken; restores *)
        (if pf then Array.unsafe_set t.regs R.flags (dload64 t (sp - 16))
         else Array.unsafe_set t.regs R.flags (Array.unsafe_get flag_words 1));
        Array.unsafe_set t.regs r0 (dload64 t (sp - 8));
        Array.unsafe_set t.regs R.rsp (Int64.of_int sp);
        t.steps <- t.steps + npush + 2;
        t.cost <- t.cost + ((npush + 2) * (1 + hc));
        (match t.prof with
        | None -> ()
        | Some p ->
          p.class_steps.(k_cmp) <- p.class_steps.(k_cmp) + 1;
          p.class_steps.(k_jcc) <- p.class_steps.(k_jcc) + 1;
          if pf then p.class_steps.(k_popf) <- p.class_steps.(k_popf) + 1;
          p.class_steps.(k_pop) <- p.class_steps.(k_pop) + 1);
        t.pc <- sp_end + 1
      end
      (* else: exact state at the post-call boundary; the loop takes over *)
    end
    else s_head t

let idioms = [| "cmp-branch"; "load-op-store"; "loop-back"; "fi-splice" |]

(* Decode a whole image: per-pc single decodes, then a fused table where
   idiom heads are replaced by superinstructions.  Interior pcs of a fused
   region keep their single decodes, so jumps landing mid-idiom dispatch
   correctly. *)
let decode ?cost_of (image : L.image) : dprogram =
  let code = image.L.code in
  let n = Array.length code in
  (match cost_of with
  | Some c when Array.length c <> n ->
    invalid_arg "Exec.decode: cost_of length does not match the image"
  | _ -> ());
  let cw pc = match cost_of with None -> 1 | Some c -> c.(pc) in
  let single = Array.init n (fun pc -> decode_one ?cost_of image pc code.(pc)) in
  let fused = Array.copy single in
  let super = Array.make (Array.length idioms) 0 in
  let okr r = r >= 0 && r < R.num_regs in
  let oko = function M.Reg r -> okr r | M.Imm _ -> true in
  let plain = match cost_of with None -> true | Some _ -> false in
  for pc = 0 to n - 1 do
    (* REFINE FI splice head: the exact shape Fimap.parse_splices accepts
       (the [Mjmp (a+4)] discriminates it from user code, which can never
       call "fi_sel_instr" anyway).  Only on plain (unweighted) images:
       detach targets carry the splice cost as slot weights instead. *)
    let splice =
      plain
      &&
      match code.(pc) with
      | M.Mpush r0 when okr r0 -> (
        let pf = pc + 1 < n && code.(pc + 1) = M.Mpushf in
        let a = pc + if pf then 2 else 1 in
        a + 3 < n
        && code.(a) = M.Mcallext "fi_sel_instr"
        && image.L.ext_slot_of_pc.(a) >= 0
        && code.(a + 1) = M.Mcmp (R.ret_gpr, M.Imm 0L)
        && (match code.(a + 3) with M.Mjmp s -> s = a + 4 | _ -> false)
        &&
        match code.(a + 2) with
        | M.Mjcc (M.CEq, post)
          when post > a + 3
               && post + (if pf then 2 else 1) < n
               &&
               if pf then code.(post) = M.Mpopf && code.(post + 1) = M.Mpop r0
               else code.(post) = M.Mpop r0 ->
          fused.(pc) <- fuse_splice image pc ~pf ~r0 ~post;
          super.(3) <- super.(3) + 1;
          true
        | _ -> false)
      | _ -> false
    in
    let fused3 =
      (not splice) && pc + 2 < n
      &&
      match (code.(pc), code.(pc + 1), code.(pc + 2)) with
      | M.Mcmp (a, b), M.Mjcc (cc, tgt), M.Mjmp jt when jt <= pc + 2 && okr a && oko b -> (
        match int_cc cc with
        | Some (mask, want) ->
          (* [spin]: self-loop whose compare doesn't read FLAGS, so the
             burned iterations are provably identical *)
          let spin =
            jt = pc && a <> R.flags
            && match b with M.Reg rb -> rb <> R.flags | M.Imm _ -> true
          in
          fused.(pc) <-
            fuse_loop3 ~cw0:(cw pc) ~cw1:(cw (pc + 1)) ~cw2:(cw (pc + 2)) image pc a b ~mask
              ~want ~tgt ~jt ~spin;
          super.(2) <- super.(2) + 1;
          true
        | None -> false)
      | M.Mload _, M.Mbin _, M.Mstore _ ->
        fused.(pc) <-
          compose2 (pc + 1) single.(pc) (compose2 (pc + 2) single.(pc + 1) single.(pc + 2));
        super.(1) <- super.(1) + 1;
        true
      | M.Mbin (op, d, a, b), M.Mcmp (a2, b2), M.Mjcc (cc, tgt)
        when (match op with Div | Rem -> false | _ -> true)
             && okr d && okr a && oko b && okr a2 && oko b2 && d <> R.flags && a <> R.flags
             && a2 <> R.flags
             && (match b with M.Reg r -> r <> R.flags | M.Imm _ -> true)
             && (match b2 with M.Reg r -> r <> R.flags | M.Imm _ -> true) -> (
        match int_cc cc with
        | Some (mask, want) ->
          (* closed-form bulk retirement for the canonical counted
             self-latch: step the latch by +-1, compare it to a constant,
             loop while not equal *)
          let burn =
            if tgt = pc && a = d && a2 = d && (match cc with M.CNe -> true | _ -> false) then
              match (op, b, b2) with
              | Sub, M.Imm st, M.Imm m when st = 1L || st = -1L -> Some (Int64.neg st, m)
              | Add, M.Imm st, M.Imm m when st = 1L || st = -1L -> Some (st, m)
              | _ -> None
            else None
          in
          fused.(pc) <-
            fuse_latch3 ?cost_of ~cw0:(cw pc) ~cw1:(cw (pc + 1)) ~cw2:(cw (pc + 2)) image pc op
              d a b a2 b2 ~mask ~want ~tgt ~burn;
          (* a backward target is a loop latch; forward is a fused
             compare-branch with a leading op *)
          (if tgt <= pc + 2 then super.(2) <- super.(2) + 1
           else super.(0) <- super.(0) + 1);
          true
        | None -> false)
      | _ -> false
    in
    if (not fused3) && pc + 1 < n then
      match (code.(pc), code.(pc + 1)) with
      | M.Mcmp (a, b), M.Mjcc (cc, tgt) when okr a && oko b && int_cc cc <> None ->
        let mask, want = match int_cc cc with Some mw -> mw | None -> assert false in
        fused.(pc) <- fuse_pair2 ~cw0:(cw pc) ~cw1:(cw (pc + 1)) image pc a b ~mask ~want ~tgt;
        super.(0) <- super.(0) + 1
      | (M.Mcmp _ | M.Mfcmp _), M.Mjcc _ ->
        fused.(pc) <- compose2 (pc + 1) single.(pc) single.(pc + 1);
        super.(0) <- super.(0) + 1
      | _ -> ()
  done;
  { d_image = image; d_fused = fused; d_single = single; d_super = super }

let decoded_image dp = dp.d_image

let superinstr_counts dp = Array.copy dp.d_super

(* Install (or uninstall, with [None]) a decoded program on an engine.
   The dprogram must have been built from the engine's own image — decoded
   closures bake that image's class/extern tables and code bounds. *)
let install_decoded (t : t) = function
  | Some dp ->
    if dp.d_image != t.image then
      invalid_arg "Exec.install_decoded: decoded program was built from a different image";
    t.dprog <- Some dp;
    t.d_active <- (if t.overlay_pc >= 0 then dp.d_single else dp.d_fused)
  | None ->
    t.dprog <- None;
    t.d_active <- [||];
    t.d_overlay <- None

let decoded t = match t.dprog with Some _ -> true | None -> false

(* --- engine interface (DESIGN.md §19) ----------------------------------

   Every execution substrate drives the same machine state [t] through
   [run]'s budget/quota envelope: the loop executes instructions while the
   status is Running and the step/cost budgets hold, calling [check] at
   every 1024-step poll slot.  [run] selects the engine per call from
   [t.dprog], so the legacy interpreter stays alive for differential
   testing and as the substrate for hooked (PINFI/trace) execution. *)

module type ENGINE = sig
  val name : string
  val loop : t -> max_steps:int -> max_cost:int -> check:(unit -> unit) -> unit
end

module Legacy_engine : ENGINE = struct
  let name = "legacy"

  let loop (t : t) ~max_steps ~max_cost ~check =
    while
      (match t.status with Running -> true | _ -> false)
      && t.steps < max_steps && t.cost < max_cost
    do
      step t;
      (* poll-slot cadence: plain int mask, no boxed arithmetic per step *)
      if t.steps land 1023 = 0 then check ()
    done
end

module Decoded_engine : ENGINE = struct
  let name = "decoded"

  (* Threaded dispatch over the decoded closure table.  Per iteration: one
     bounds check, one overlay compare, one hook check, one indirect call.
     [d_active] is re-read every iteration because [set_overlay] can
     switch the engine to the single-instruction table mid-run (the FI
     control library installs Instr_image overlays at the trigger).  One
     try frame wraps the whole loop instead of one per instruction; the
     handler replicates the legacy post-trap poll-slot check (which can
     overwrite a trap with [Output_quota] at a boundary). *)
  let loop (t : t) ~max_steps ~max_cost ~check =
    t.d_max_steps <- max_steps;
    t.d_max_cost <- max_cost;
    t.d_check <- check;
    let len = Array.length t.image.L.code in
    (try
       while
         (match t.status with Running -> true | _ -> false)
         && t.steps < max_steps && t.cost < max_cost
       do
         let pc = t.pc in
         if pc < 0 || pc >= len then begin
           t.status <- Trapped (Bad_pc pc);
           if t.steps land 1023 = 0 then check ()
         end
         else if pc = t.overlay_pc then begin
           match (t.overlay_instr, t.d_overlay, t.post_hook) with
           | Some _, Some f, None -> f t (* decoded overlay self-checks *)
           | ov, _, _ ->
             (match ov with
             | Some i -> exec_instr t pc i
             | None ->
               (* the corrupted slot no longer decodes: the fetch traps *)
               t.steps <- t.steps + 1;
               t.cost <- t.cost + 1;
               t.status <- Trapped (Illegal_instr pc));
             if t.steps land 1023 = 0 then check ()
         end
         else begin
           match t.post_hook with
           | None -> (Array.unsafe_get t.d_active pc) t
           | Some _ ->
             (* per-instruction DBI semantics: route through the legacy
                step while a hook is attached *)
             step t;
             if t.steps land 1023 = 0 then check ()
         end
       done
     with Halt_trap tr ->
       t.status <- Trapped tr;
       if t.steps land 1023 = 0 then check ());
    t.d_check <- no_check;
    t.d_max_steps <- max_int;
    t.d_max_cost <- max_int
end

let engine_name t = if decoded t then Decoded_engine.name else Legacy_engine.name

(* Byte-granular memory fault (Mem_cell model): XOR one bit of one data
   byte.  Out-of-range addresses are a harness defect (callers draw the
   cell from the initialized image), so they raise [Invalid_argument]
   rather than a machine trap. *)
let flip_mem_bit (t : t) ~addr ~bit =
  if addr < Mem.null_guard || addr >= Mem.mem_size then
    invalid_arg (Printf.sprintf "Exec.flip_mem_bit: address 0x%x outside data memory" addr);
  if bit < 0 || bit > 7 then
    invalid_arg (Printf.sprintf "Exec.flip_mem_bit: bit %d out of [0,7]" bit);
  let b = Char.code (Bytes.get t.mem addr) in
  Bytes.set t.mem addr (Char.chr (b lxor (1 lsl bit)))

(* Install the Instr_image corruption overlay: the engine-local view of one
   mutated code slot ([None] = the mutated encoding is illegal).  The
   shared [image.code] is never written; [reset] clears the overlay. *)
let set_overlay (t : t) ~pc instr =
  if pc < 0 || pc >= Array.length t.image.L.code then
    invalid_arg (Printf.sprintf "Exec.set_overlay: pc %d outside the code image" pc);
  t.overlay_pc <- pc;
  t.overlay_instr <- instr;
  (* decoded-cache bypass for the overlaid pc: drop to the fusion-free
     table (a superinstruction spanning [pc] would execute the pristine
     encoding) and pre-decode the corrupted slot itself *)
  match t.dprog with
  | None -> ()
  | Some dp ->
    t.d_active <- dp.d_single;
    t.d_overlay <- (match instr with Some i -> Some (decode_one t.image pc i) | None -> None)

let enable_profiling t =
  match t.prof with
  | Some p -> p
  | None ->
    let p = { class_steps = Array.make M.num_iclasses 0; ext_calls = 0; ext_cost = 0 } in
    t.prof <- Some p;
    p

(* --- livelock detection -------------------------------------------------

   A fault that lands in a loop counter or a branch decision can leave the
   machine cycling through the same architectural states forever, burning
   the whole modeled-cost budget before the timeout classifies it.  The
   detector fingerprints the register-visible state (pc, register file,
   heap cursor, output length) every [window] steps and keeps a bounded
   ring of recent snapshots: an exact repeat proves the machine is in a
   cycle whose period is invisible to the step/cost counters, and traps
   [Livelock] immediately.  Memory-only progress with an identical
   register file is not observable by the fingerprint — the cost budget
   remains the backstop for that (rare) shape. *)

type fingerprint = { fp_hash : int; fp_pc : int; fp_heap : int; fp_out : int; fp_regs : int64 array }

let fp_ring_size = 256

let fingerprint (t : t) =
  let h = ref 0x811c9dc5 in
  let mix v =
    h := (!h lxor v) * 0x01000193 land max_int
  in
  mix t.pc;
  mix t.heap;
  Array.iter (fun r -> mix (Int64.to_int r land max_int)) t.regs;
  {
    fp_hash = !h;
    fp_pc = t.pc;
    fp_heap = t.heap;
    fp_out = Buffer.length t.env.out;
    fp_regs = Array.copy t.regs;
  }

let fp_equal a b =
  a.fp_hash = b.fp_hash && a.fp_pc = b.fp_pc && a.fp_heap = b.fp_heap && a.fp_out = b.fp_out
  && a.fp_regs = b.fp_regs

(* Budgets arrive as int64 (the paper's cost model is 64-bit) but the hot
   loop compares native ints; anything at or above [max_int] means
   "unlimited". *)
let int_budget v = if Int64.compare v (Int64.of_int max_int) >= 0 then max_int else Int64.to_int v

(* [max_cost]: modeled-time budget (the 10x-profiling timeout of the
   paper's classification); [max_steps]: hard safety bound.

   Sandbox quotas (DESIGN.md §13) bound what an injected run can consume
   beyond its modeled budget:
   - [output_quota]: max output bytes; the returned output is truncated to
     the quota and flagged so classification can never match a truncated
     prefix against the golden run;
   - [heap_quota]: max heap bytes above the image's heap base;
   - [wall_clock]: real-time deadline in seconds, measured with [clock]
     (default [Sys.time]; campaign callers pass a gettimeofday-backed
     clock) from the start of this [run] call;
   - [livelock]: fingerprint the architectural state every that many steps
     (rounded up to a multiple of the 1024-step check interval) and trap
     on an exact repeat.
   All quota trips surface as [Trapped] with their own constructor, so
   outcome classification maps them to Crash deterministically.

   [detach] (DESIGN.md §20): a post-injection handoff plan.  When the FI
   control library raises [t.detach_req] (the single injection has
   retired), the next poll slot hands execution off to the plan's golden
   engine: the architectural state (registers, memory image, heap cursor,
   accumulated output and step/cost counters) transfers onto a fresh
   engine built from the uninstrumented snapshot, and the same absolute
   budgets keep driving it.  With a correspondence map the source first
   drains on the legacy stepper to the next original-instruction boundary
   and live [Mcalli] return addresses are validated against the shadow
   call stack and rewritten into golden coordinates; without a map
   (overlay-fallback targets) the coordinates are shared and the handoff
   is a plain state blit.  Any validation failure declines the handoff
   and the run simply continues attached — detach is an optimization,
   never a semantics change. *)
let run ?(max_steps = Int64.max_int) ?(max_cost = Int64.max_int) ?output_quota ?heap_quota
    ?wall_clock ?(clock = Sys.time) ?livelock ?poll ?detach (t : t) : result =
  (match heap_quota with Some q -> t.heap_quota <- q | None -> ());
  let max_steps = int_budget max_steps and max_cost = int_budget max_cost in
  let oq = match output_quota with Some q -> max 0 q | None -> max_int in
  let deadline, wall_s =
    match wall_clock with Some s -> (clock () +. s, s) | None -> (infinity, 0.0)
  in
  let ll_window =
    match livelock with Some n when n > 0 -> ((n + 1023) / 1024) * 1024 | _ -> 0
  in
  (* the 256-slot fingerprint ring exists only while the livelock detector
     is armed — a plain sample must not pay for it *)
  let ll_state = if ll_window > 0 then Some (Array.make fp_ring_size None, ref 0) else None in
  (* [cur] is the engine the run is currently driving: [t] until a
     successful handoff, the plan's golden engine after *)
  let cur = ref t in
  let plan = ref detach in
  let detached = ref false in
  let drained = ref 0 in
  let check_quotas () =
    let t = !cur in
    (match poll with Some p -> p () | None -> ());
    if oq <> max_int && Buffer.length t.env.out > oq then t.status <- Trapped (Output_quota oq);
    if deadline < infinity && t.status = Running && clock () > deadline then
      t.status <- Trapped (Wall_clock wall_s);
    (match ll_state with
    | Some (ring, ring_next) when t.status = Running && t.steps mod ll_window = 0 ->
      let fp = fingerprint t in
      let repeat = Array.exists (function Some p -> fp_equal p fp | None -> false) ring in
      if repeat then t.status <- Trapped Livelock
      else begin
        ring.(!ring_next) <- Some fp;
        ring_next := (!ring_next + 1) mod fp_ring_size
      end
    | _ -> ());
    match !plan with
    | Some _ when t.detach_req && t.status = Running -> raise Detach_signal
    | _ -> ()
  in
  (* One-shot handoff attempt.  Every failure path leaves [cur] on the
     source engine with [plan] already cleared, so the run continues
     attached with identical semantics. *)
  let attempt_handoff (p : detach_plan) =
    let src = !cur in
    (* the decoded loop's budget/check installs are not unwound when the
       signal propagates out of it — restore them here *)
    src.d_check <- no_check;
    src.d_max_steps <- max_int;
    src.d_max_cost <- max_int;
    src.detach_req <- false;
    let ok = ref true in
    (match p.plan_map with
    | None -> ()
    | Some m ->
      (* drain on the legacy stepper to the next original-instruction
         boundary (the splice the injection fired in has no golden
         coordinates); the cap bounds a parse-defeating image, and budget
         or quota edges during the drain decline the handoff *)
      let n = Array.length m.h_rank in
      let cap = ref 4096 in
      while
        !ok && src.status = Running && src.pc >= 0 && src.pc < n && m.h_rank.(src.pc) < 0
      do
        if !cap <= 0 || src.steps >= max_steps || src.cost >= max_cost then ok := false
        else begin
          step src;
          incr drained;
          decr cap;
          if src.steps land 1023 = 0 then check_quotas ()
        end
      done;
      if src.status <> Running || src.pc < 0 || src.pc >= n || m.h_rank.(src.pc) < 0 then
        ok := false;
      (* validate the live shadow call stack: each live frame's stack slot
         must still hold the recorded return address (a fault that smashed
         a return address makes the translation meaningless), and every
         return address must translate into golden coordinates *)
      if !ok then begin
        let rsp = Int64.to_int src.regs.(R.rsp) in
        if rsp < Mem.mem_size - Mem.stack_limit || rsp > Mem.mem_size - 8 then ok := false
        else
          for j = 0 to src.cs_len - 1 do
            if !ok then begin
              let slot = src.cs_slots.(j) in
              if slot >= rsp then begin
                if slot > Mem.mem_size - 8 then ok := false
                else begin
                  let v = src.cs_vals.(j) in
                  if Bytes.get_int64_le src.mem slot <> v then ok := false
                  else
                    let vi = Int64.to_int v in
                    if vi < 0 || vi >= Array.length m.h_next || m.h_next.(vi) < 0 then
                      ok := false
                end
              end
            end
          done
      end);
    if !ok then begin
      let g = p.plan_target () in
      if
        g.status <> Running
        || Bytes.length g.mem <> Bytes.length src.mem
        || Array.length g.regs <> Array.length src.regs
      then () (* unusable target: stay attached *)
      else begin
        Bytes.blit src.mem 0 g.mem 0 (Bytes.length src.mem);
        Array.blit src.regs 0 g.regs 0 (Array.length src.regs);
        g.heap <- src.heap;
        g.steps <- src.steps;
        g.cost <- src.cost;
        g.heap_quota <- src.heap_quota;
        g.fi_mask <- src.fi_mask;
        g.env.exited <- src.env.exited;
        Buffer.clear g.env.out;
        Buffer.add_buffer g.env.out src.env.out;
        (* shared profile record: the owner keeps flushing the counters it
           already holds, and post-handoff retirement lands in the same
           cells *)
        g.prof <- src.prof;
        (match p.plan_map with
        | Some m ->
          g.pc <- m.h_rank.(src.pc);
          (* rewrite live return addresses into golden coordinates *)
          let rsp = Int64.to_int src.regs.(R.rsp) in
          for j = 0 to src.cs_len - 1 do
            let slot = src.cs_slots.(j) in
            if slot >= rsp then
              Bytes.set_int64_le g.mem slot
                (Int64.of_int m.h_next.(Int64.to_int src.cs_vals.(j)))
          done
        | None ->
          (* shared coordinates: pc carries over; a live Instr_image
             overlay moves with it *)
          g.pc <- src.pc;
          if src.overlay_pc >= 0 then set_overlay g ~pc:src.overlay_pc src.overlay_instr);
        cur := g;
        detached := true
      end
    end
  in
  let rec drive () =
    let t = !cur in
    match
      match t.dprog with
      | Some _ -> Decoded_engine.loop t ~max_steps ~max_cost ~check:check_quotas
      | None -> Legacy_engine.loop t ~max_steps ~max_cost ~check:check_quotas
    with
    | () -> ()
    | exception Detach_signal ->
      (match !plan with
      | Some p ->
        plan := None;
        attempt_handoff p
      | None -> ());
      drive ()
  in
  drive ();
  let t = !cur in
  let status = if t.status = Running then Timed_out else t.status in
  let output = Buffer.contents t.env.out in
  let truncated = String.length output > oq in
  let output = if truncated then String.sub output 0 oq else output in
  (* overflow noticed only at the end (quota crossed between checks, or on
     the run's last instruction) is still a quota trap, not a clean exit *)
  let status =
    if truncated then match status with Trapped _ -> status | _ -> Trapped (Output_quota oq)
    else status
  in
  t.status <- status;
  (* A timed-out run stops with a cost overshooting the budget by at most
     the last slot's weight — per instruction attached, per modeled
     instrumentation bundle on a detach target.  Reporting the burned
     budget itself erases that granularity difference, keeping fixed-seed
     campaign cost sums bit-identical with detach on or off. *)
  let cost = if status = Timed_out && t.cost > max_cost then max_cost else t.cost in
  {
    status;
    output;
    steps = Int64.of_int t.steps;
    cost = Int64.of_int cost;
    truncated;
    detached = !detached;
    drain_steps = !drained;
  }
