(* Architectural simulator for SX64 images.

   This is the substitute for the paper's physical Xeon nodes: it executes
   the machine code produced by the backend against an architectural state
   (register file, FLAGS, byte-addressable memory, downward stack) and
   reports the observable outcome — output, exit code, or a trap.  Faults
   injected into this state propagate, mask, or crash the run exactly as
   the paper's fault model intends.

   Integer/float operation semantics are shared with the IR reference
   interpreter ([Refine_ir.Interp]) so the two cannot drift; the semantic
   property tests compare them on random programs.

   Cost model (DESIGN.md §6): 1 unit per instruction, [ext_call_cost] units
   per runtime-library call, plus [hook_cost] per instruction while a
   dynamic-instrumentation hook (PINFI) is attached.

   Fast path (DESIGN.md §14): the per-instruction execute path is
   allocation-free when profiling is off — step/cost counters are plain
   [int] fields (63 bits is ample for any modeled budget), FLAGS writes
   index a preallocated table of the 8 possible flag words, condition
   codes are evaluated with int bit tests, and extern calls dispatch
   through a per-engine handler array resolved once from the image's
   [ext_slot_of_pc] table instead of hashing the extern name per call.
   Engines can be created from a memory [snapshot] and [reset] between
   runs with a single [Bytes.blit], so a fault-injection campaign reuses
   one arena per worker domain instead of allocating [Mem.mem_size] per
   sample. *)

module M = Refine_mir.Minstr
module R = Refine_mir.Reg
module L = Refine_backend.Layout
module Mem = Refine_ir.Memlayout

let ext_call_cost = 25

type trap =
  | Mem_fault of int
  | Div_by_zero
  | Bad_pc of int
  | Stack_overflow
  | Out_of_memory
  | Extern_fault of string
  | Output_quota of int
  | Heap_quota of int
  | Wall_clock of float
  | Livelock
  | Illegal_instr of int

let string_of_trap = function
  | Mem_fault a -> Printf.sprintf "memory fault at 0x%x" a
  | Div_by_zero -> "integer division by zero"
  | Bad_pc a -> Printf.sprintf "illegal instruction address %d" a
  | Stack_overflow -> "stack overflow"
  | Out_of_memory -> "out of heap memory"
  | Extern_fault m -> "extern fault: " ^ m
  | Output_quota q -> Printf.sprintf "output quota exceeded (%d bytes)" q
  | Heap_quota q -> Printf.sprintf "heap quota exceeded (%d bytes)" q
  | Wall_clock s -> Printf.sprintf "wall-clock deadline exceeded (%.3fs)" s
  | Livelock -> "livelock: architectural state repeated"
  | Illegal_instr a -> Printf.sprintf "illegal instruction encoding at pc %d" a

type status = Running | Exited of int | Trapped of trap | Timed_out

exception Halt_trap of trap

(* Executor profile: per-opcode-class step counts plus extern-call tallies,
   accumulated into plain unboxed int cells so the per-instruction cost is
   one [None] match when profiling is off and two int array ops when on;
   the owner (Tool) flushes it into the metrics registry after the run. *)
type profile = {
  class_steps : int array; (* Minstr.num_iclasses slots, Minstr.iclass_index order *)
  mutable ext_calls : int;
  mutable ext_cost : int;
}

type t = {
  image : L.image;
  regs : int64 array; (* R.num_regs entries; raw bits for GPR/FPR/FLAGS *)
  mem : Bytes.t;
  mutable pc : int;
  mutable steps : int; (* unboxed hot counters: int, not int64 (§14) *)
  mutable cost : int;
  mutable status : status;
  mutable heap : int;
  env : Refine_ir.Externs.env;
  ext_extra : (string, int * (t -> unit)) Hashtbl.t;
      (* FI runtime library: name -> (modeled cost, handler) *)
  mutable post_hook : (t -> int -> M.t -> unit) option; (* PINFI-style DBI *)
  mutable hook_cost : int;
  mutable prof : profile option; (* executor profiling; None = zero-cost path *)
  mutable heap_quota : int; (* max heap bytes above heap_base; max_int = off *)
  mutable handlers : (t -> unit) array;
      (* pre-resolved extern dispatch, indexed by image.ext_slot_of_pc *)
  mutable builtins : (t -> unit) option array;
      (* memoized libc/libm handlers per ext slot, reused across resets *)
  mutable fi_mask : int64;
      (* pending multi-bit FI mask: when nonzero, the next Mxorbit /
         Mxorbitmem applies this XOR mask instead of its single-bit flip,
         then clears it (set by the REFINE control library, DESIGN.md §18) *)
  mutable overlay_pc : int;
      (* Instr_image corruption overlay: the engine-local view of one
         mutated code slot.  -1 = none.  The shared [image.code] array is
         never written, so snapshots, the prepared-tier cache fingerprint
         and sibling engines stay pristine; [reset] clears the overlay. *)
  mutable overlay_instr : M.t option;
      (* the mutated instruction at [overlay_pc]; None = the corrupted
         encoding no longer decodes (executing it traps [Illegal_instr]) *)
  snap : Bytes.t option; (* pristine memory to blit on [reset] *)
}

type result = {
  status : status;
  output : string;
  steps : int64;
  cost : int64;
  truncated : bool; (* output was cut at the quota; never a golden match *)
}

(* sentinel return address that terminates the program when popped *)
let sentinel = -1L

(* --- flags ----------------------------------------------------------- *)

(* The 8 possible FLAGS words (ZF|LT|UNORD), preallocated so a flag write
   is an array index instead of a chain of boxed Int64 ops. *)
let flag_words = Array.init 8 Int64.of_int

let set_flags t ~zf ~lt ~unord =
  let i =
    (if zf then 1 else 0) lor (if lt then 2 else 0) lor if unord then 4 else 0
  in
  t.regs.(R.flags) <- flag_words.(i)

let eval_cc t (cc : M.cc) =
  let fl = Int64.to_int t.regs.(R.flags) in
  let zf = fl land 1 <> 0 and lt = fl land 2 <> 0 and unord = fl land 4 <> 0 in
  match cc with
  | M.CEq -> zf
  | M.CNe -> not zf
  | M.CLt -> lt
  | M.CLe -> lt || zf
  | M.CGt -> not (lt || zf)
  | M.CGe -> not lt
  | M.CFeq -> zf && not unord
  | M.CFne -> (not zf) || unord
  | M.CFlt -> lt && not unord
  | M.CFle -> (lt || zf) && not unord
  | M.CFgt -> (not (lt || zf)) && not unord
  | M.CFge -> (not lt) && not unord

(* --- memory ----------------------------------------------------------- *)

let check_addr addr =
  if addr < Mem.null_guard || addr + 8 > Mem.mem_size then raise (Halt_trap (Mem_fault addr))

let load64 t addr =
  check_addr addr;
  Bytes.get_int64_le t.mem addr

let store64 t addr v =
  check_addr addr;
  Bytes.set_int64_le t.mem addr v

let push t v =
  let sp = Int64.to_int t.regs.(R.rsp) - 8 in
  if sp < Mem.mem_size - Mem.stack_limit then raise (Halt_trap Stack_overflow);
  t.regs.(R.rsp) <- Int64.of_int sp;
  store64 t sp v

let pop t =
  let sp = Int64.to_int t.regs.(R.rsp) in
  let v = load64 t sp in
  t.regs.(R.rsp) <- Int64.of_int (sp + 8);
  v

(* --- extern calls ------------------------------------------------------ *)

let f64 = Int64.float_of_bits
let b64 = Int64.bits_of_float

let count_ext t cost =
  match t.prof with
  | None -> ()
  | Some p ->
    p.ext_calls <- p.ext_calls + 1;
    p.ext_cost <- p.ext_cost + cost

(* Build the memoized handler for a libc/libm extern: the signature is
   parsed and the argument registers assigned ONCE, so a call only copies
   registers into a reused buffer and dispatches.  [None] for names the
   runtime library does not know (resolved to a trap-on-invoke handler, so
   an unknown extern on a dead path still costs nothing). *)
let builtin_handler name : (t -> unit) option =
  match Refine_ir.Externs.signature name with
  | None -> None
  | Some (tys, ret) ->
    let exception Exhausted in
    (try
       let gp = ref R.arg_gprs and fp = ref R.arg_fprs in
       let arg_regs =
         List.map
           (fun ty ->
             let cell = match ty with Refine_ir.Ir.I64 -> gp | Refine_ir.Ir.F64 -> fp in
             match !cell with
             | r :: rest ->
               cell := rest;
               r
             | [] -> raise Exhausted)
           tys
       in
       let arg_regs = Array.of_list arg_regs in
       let args = Array.make (Array.length arg_regs) 0L in
       Some
         (fun t ->
           t.cost <- t.cost + ext_call_cost;
           count_ext t ext_call_cost;
           for i = 0 to Array.length arg_regs - 1 do
             args.(i) <- t.regs.(arg_regs.(i))
           done;
           let r =
             try Refine_ir.Externs.call t.env name args
             with Refine_ir.Externs.Extern_trap m -> raise (Halt_trap (Extern_fault m))
           in
           match t.env.exited with
           | Some code -> t.status <- Exited code
           | None -> (
             match ret with
             | Some Refine_ir.Ir.I64 -> t.regs.(R.ret_gpr) <- r
             | Some Refine_ir.Ir.F64 -> t.regs.(R.ret_fpr) <- r
             | None -> ()))
     with Exhausted ->
       Some
         (fun t ->
           t.cost <- t.cost + ext_call_cost;
           count_ext t ext_call_cost;
           raise (Halt_trap (Extern_fault (name ^ ": too many arguments")))))

let unknown_extern name : t -> unit =
 fun t ->
  t.cost <- t.cost + ext_call_cost;
  count_ext t ext_call_cost;
  raise (Halt_trap (Extern_fault ("unknown extern " ^ name)))

(* Resolve every extern slot of the image to a concrete handler: the FI
   runtime library ([ext_extra]) takes priority, then the memoized builtin,
   then a trap-on-invoke handler.  Called at engine construction and on
   every [reset] (the FI control state is per-sample); builtins are reused
   across resets, so a rebind never re-parses a signature. *)
let bind_handlers t =
  let names = t.image.L.ext_names in
  Array.init (Array.length names) (fun k ->
      let name = names.(k) in
      match Hashtbl.find_opt t.ext_extra name with
      | Some (cost, fn) ->
        fun (t : t) ->
          t.cost <- t.cost + cost;
          count_ext t cost;
          fn t
      | None -> (
        match t.builtins.(k) with Some h -> h | None -> unknown_extern name))

(* Slow path for code arrays mutated after layout (ext_slot_of_pc = -1,
   e.g. Opcode_fi's corrupted copies): the pre-fast-path by-name lookup. *)
let do_callext (t : t) name =
  match Hashtbl.find_opt t.ext_extra name with
  | Some (cost, fn) ->
    t.cost <- t.cost + cost;
    count_ext t cost;
    fn t
  | None -> (
    match builtin_handler name with
    | Some h -> h t
    | None -> unknown_extern name t)

(* --- engine construction ------------------------------------------------ *)

(* Initialized memory image: globals blitted at their layout addresses and
   the sentinel return address at the top of the stack, as if the loader
   had called main. *)
let init_mem (image : L.image) : Bytes.t =
  let mem = Bytes.make Mem.mem_size '\000' in
  List.iter
    (fun (g : Refine_ir.Ir.global) ->
      match g.gbytes with
      | Some s -> Bytes.blit_string s 0 mem (image.L.global_addr g.gname) (String.length s)
      | None -> ())
    image.L.globals;
  Bytes.set_int64_le mem (Mem.mem_size - 8) sentinel;
  mem

type snapshot = { s_image : L.image; s_mem : Bytes.t }

let snapshot (image : L.image) : snapshot = { s_image = image; s_mem = init_mem image }

let make ~(ext_extra : (string * int * (t -> unit)) list) (image : L.image) mem snap : t =
  let self = ref None in
  let env =
    {
      Refine_ir.Externs.out = Buffer.create 1024;
      read_byte =
        (fun a ->
          if a < Mem.null_guard || a >= Mem.mem_size then
            raise (Refine_ir.Externs.Extern_trap (Printf.sprintf "print_str read at 0x%x" a))
          else Bytes.get mem a);
      alloc =
        (fun n ->
          match !self with
          | None -> assert false
          | Some t ->
            let addr = t.heap in
            t.heap <- t.heap + Mem.align8 n;
            if t.heap > Mem.mem_size - Mem.stack_limit then
              raise (Refine_ir.Externs.Extern_trap "out of heap memory")
            else if t.heap - t.image.L.heap_base > t.heap_quota then
              (* sandbox quota, tighter than physical memory: Halt_trap skips
                 the Extern_fault wrapper so the trap keeps its own kind *)
              raise (Halt_trap (Heap_quota t.heap_quota))
            else addr);
      exited = None;
    }
  in
  let t =
    {
      image;
      regs = Array.make R.num_regs 0L;
      mem;
      pc = image.L.entry;
      steps = 0;
      cost = 0;
      status = Running;
      heap = image.L.heap_base;
      env;
      ext_extra = Hashtbl.create 8;
      post_hook = None;
      hook_cost = 0;
      prof = None;
      heap_quota = max_int;
      handlers = [||];
      builtins = [||];
      fi_mask = 0L;
      overlay_pc = -1;
      overlay_instr = None;
      snap;
    }
  in
  self := Some t;
  List.iter (fun (name, cost, fn) -> Hashtbl.replace t.ext_extra name (cost, fn)) ext_extra;
  t.builtins <- Array.map builtin_handler image.L.ext_names;
  t.handlers <- bind_handlers t;
  t.regs.(R.rsp) <- Int64.of_int (Mem.mem_size - 8);
  t

let create ?(ext_extra = []) (image : L.image) : t = make ~ext_extra image (init_mem image) None

let create_from_snapshot ?(ext_extra = []) (s : snapshot) : t =
  make ~ext_extra s.s_image (Bytes.copy s.s_mem) (Some s.s_mem)

(* Restore the pristine post-loader state with one [Bytes.blit] — the
   whole point of the snapshot API: a campaign worker reuses one arena per
   cell instead of allocating (and GC-ing) [Mem.mem_size] per sample.
   Every mutable piece of the machine is re-initialized, so a reset engine
   is bit-identical to a fresh [create_from_snapshot] (the differential
   property tests assert exactly this). *)
let reset ?(ext_extra = []) (t : t) : unit =
  let snap =
    match t.snap with
    | Some s -> s
    | None -> invalid_arg "Exec.reset: engine was not created from a snapshot"
  in
  Bytes.blit snap 0 t.mem 0 (Bytes.length snap);
  Array.fill t.regs 0 (Array.length t.regs) 0L;
  t.regs.(R.rsp) <- Int64.of_int (Mem.mem_size - 8);
  t.pc <- t.image.L.entry;
  t.steps <- 0;
  t.cost <- 0;
  t.status <- Running;
  t.heap <- t.image.L.heap_base;
  Buffer.clear t.env.out;
  t.env.exited <- None;
  t.post_hook <- None;
  t.hook_cost <- 0;
  t.prof <- None;
  t.heap_quota <- max_int;
  t.fi_mask <- 0L;
  t.overlay_pc <- -1;
  t.overlay_instr <- None;
  Hashtbl.reset t.ext_extra;
  List.iter (fun (name, cost, fn) -> Hashtbl.replace t.ext_extra name (cost, fn)) ext_extra;
  t.handlers <- bind_handlers t

(* --- single step -------------------------------------------------------- *)

let opd (t : t) = function M.Reg r -> t.regs.(r) | M.Imm v -> v

(* Execute [i] as the instruction at [pc0] (bounds already established by
   [step]'s guard).  Factored out of [step] so the Instr_image overlay can
   substitute a mutated instruction for the fetched one without an
   allocation on the hot path. *)
let exec_instr (t : t) pc0 (i : M.t) =
  let code = t.image.L.code in
  begin
    t.steps <- t.steps + 1;
    t.cost <- t.cost + 1 + t.hook_cost;
    (match t.prof with
    | None -> ()
    | Some p ->
      let k = Array.unsafe_get t.image.L.class_of_pc pc0 in
      p.class_steps.(k) <- p.class_steps.(k) + 1);
    t.pc <- pc0 + 1;
    (try
       (match i with
       | M.Mmov (d, s) -> t.regs.(d) <- opd t s
       | M.Mload (d, b, off) -> t.regs.(d) <- load64 t (Int64.to_int t.regs.(b) + off)
       | M.Mstore (s, b, off) -> store64 t (Int64.to_int t.regs.(b) + off) t.regs.(s)
       | M.Mloadidx (d, b, ix, off) ->
         t.regs.(d) <-
           load64 t (Int64.to_int t.regs.(b) + (8 * Int64.to_int t.regs.(ix)) + off)
       | M.Mstoreidx (s, b, ix, off) ->
         store64 t (Int64.to_int t.regs.(b) + (8 * Int64.to_int t.regs.(ix)) + off) t.regs.(s)
       | M.Mlea (d, b, ix, off) ->
         let base = t.regs.(b) in
         let idx = match ix with Some r -> Int64.mul 8L t.regs.(r) | None -> 0L in
         t.regs.(d) <- Int64.add (Int64.add base idx) (Int64.of_int off)
       | M.Mbin (op, d, a, b) ->
         let va = t.regs.(a) and vb = opd t b in
         let r =
           try Refine_ir.Interp.eval_ibinop op va vb
           with Refine_ir.Interp.Trap _ -> raise (Halt_trap Div_by_zero)
         in
         t.regs.(d) <- r;
         set_flags t ~zf:(r = 0L) ~lt:(Int64.compare r 0L < 0) ~unord:false
       | M.Mfbin (op, d, a, b) ->
         t.regs.(d) <- b64 (Refine_ir.Interp.eval_fbinop op (f64 t.regs.(a)) (f64 t.regs.(b)))
       | M.Mfun (op, d, a) -> t.regs.(d) <- b64 (Refine_ir.Interp.eval_funop op (f64 t.regs.(a)))
       | M.Mcvt (Sitofp, d, a) -> t.regs.(d) <- b64 (Int64.to_float t.regs.(a))
       | M.Mcvt (Fptosi, d, a) -> t.regs.(d) <- Refine_ir.Interp.fptosi (f64 t.regs.(a))
       | M.Mcmp (a, b) ->
         let va = t.regs.(a) and vb = opd t b in
         let c = Int64.compare va vb in
         set_flags t ~zf:(c = 0) ~lt:(c < 0) ~unord:false
       | M.Mfcmp (a, b) ->
         let va = f64 t.regs.(a) and vb = f64 t.regs.(b) in
         if Float.is_nan va || Float.is_nan vb then set_flags t ~zf:false ~lt:false ~unord:true
         else set_flags t ~zf:(va = vb) ~lt:(va < vb) ~unord:false
       | M.Msetcc (cc, d) -> t.regs.(d) <- (if eval_cc t cc then 1L else 0L)
       | M.Mjcc (cc, target) -> if eval_cc t cc then t.pc <- target
       | M.Mjmp target -> t.pc <- target
       | M.Mpush r -> push t t.regs.(r)
       | M.Mpop r -> t.regs.(r) <- pop t
       | M.Mpushf -> push t t.regs.(R.flags)
       | M.Mpopf -> t.regs.(R.flags) <- pop t
       | M.Mcalli target ->
         push t (Int64.of_int t.pc);
         t.pc <- target
       | M.Mcall name -> raise (Halt_trap (Extern_fault ("unresolved call " ^ name)))
       | M.Mcallext name ->
         (* pre-resolved dispatch: no string hashing on the hot path *)
         let slot = t.image.L.ext_slot_of_pc.(pc0) in
         if slot >= 0 then t.handlers.(slot) t else do_callext t name
       | M.Mret ->
         let ra = pop t in
         if ra = sentinel then t.status <- Exited (Int64.to_int t.regs.(R.ret_gpr))
         else begin
           let target = Int64.to_int ra in
           if target < 0 || target >= Array.length code then raise (Halt_trap (Bad_pc target))
           else t.pc <- target
         end
       | M.Mxorbit (d, s) ->
         (* a pending multi-bit mask overrides the single-bit flip: the
            splice stays one instruction, the fault gets k bits (§18) *)
         if t.fi_mask <> 0L then begin
           t.regs.(d) <- Int64.logxor t.regs.(d) t.fi_mask;
           t.fi_mask <- 0L
         end
         else
           t.regs.(d) <-
             Int64.logxor t.regs.(d)
               (Int64.shift_left 1L (Int64.to_int (Int64.logand t.regs.(s) 63L)))
       | M.Mxorbitmem (b, off, s) ->
         let addr = Int64.to_int t.regs.(b) + off in
         let v = load64 t addr in
         let mask =
           if t.fi_mask <> 0L then begin
             let m = t.fi_mask in
             t.fi_mask <- 0L;
             m
           end
           else Int64.shift_left 1L (Int64.to_int (Int64.logand t.regs.(s) 63L))
         in
         store64 t addr (Int64.logxor v mask)
       | M.Mhalt -> t.status <- Exited (Int64.to_int t.regs.(R.ret_gpr)));
       match t.post_hook with Some h -> h t pc0 i | None -> ()
     with Halt_trap tr -> t.status <- Trapped tr)
  end

let step (t : t) =
  let code = t.image.L.code in
  if t.pc < 0 || t.pc >= Array.length code then t.status <- Trapped (Bad_pc t.pc)
  else begin
    let pc0 = t.pc in
    (* overlay check is one int compare on the hot path; only a hit pays
       for the option match *)
    if pc0 = t.overlay_pc then (
      match t.overlay_instr with
      | Some i -> exec_instr t pc0 i
      | None ->
        (* the corrupted slot no longer decodes: the fetch itself traps *)
        t.steps <- t.steps + 1;
        t.cost <- t.cost + 1;
        t.status <- Trapped (Illegal_instr pc0))
    else exec_instr t pc0 (Array.unsafe_get code pc0)
  end

(* Byte-granular memory fault (Mem_cell model): XOR one bit of one data
   byte.  Out-of-range addresses are a harness defect (callers draw the
   cell from the initialized image), so they raise [Invalid_argument]
   rather than a machine trap. *)
let flip_mem_bit (t : t) ~addr ~bit =
  if addr < Mem.null_guard || addr >= Mem.mem_size then
    invalid_arg (Printf.sprintf "Exec.flip_mem_bit: address 0x%x outside data memory" addr);
  if bit < 0 || bit > 7 then
    invalid_arg (Printf.sprintf "Exec.flip_mem_bit: bit %d out of [0,7]" bit);
  let b = Char.code (Bytes.get t.mem addr) in
  Bytes.set t.mem addr (Char.chr (b lxor (1 lsl bit)))

(* Install the Instr_image corruption overlay: the engine-local view of one
   mutated code slot ([None] = the mutated encoding is illegal).  The
   shared [image.code] is never written; [reset] clears the overlay. *)
let set_overlay (t : t) ~pc instr =
  if pc < 0 || pc >= Array.length t.image.L.code then
    invalid_arg (Printf.sprintf "Exec.set_overlay: pc %d outside the code image" pc);
  t.overlay_pc <- pc;
  t.overlay_instr <- instr

let enable_profiling t =
  match t.prof with
  | Some p -> p
  | None ->
    let p = { class_steps = Array.make M.num_iclasses 0; ext_calls = 0; ext_cost = 0 } in
    t.prof <- Some p;
    p

(* --- livelock detection -------------------------------------------------

   A fault that lands in a loop counter or a branch decision can leave the
   machine cycling through the same architectural states forever, burning
   the whole modeled-cost budget before the timeout classifies it.  The
   detector fingerprints the register-visible state (pc, register file,
   heap cursor, output length) every [window] steps and keeps a bounded
   ring of recent snapshots: an exact repeat proves the machine is in a
   cycle whose period is invisible to the step/cost counters, and traps
   [Livelock] immediately.  Memory-only progress with an identical
   register file is not observable by the fingerprint — the cost budget
   remains the backstop for that (rare) shape. *)

type fingerprint = { fp_hash : int; fp_pc : int; fp_heap : int; fp_out : int; fp_regs : int64 array }

let fp_ring_size = 256

let fingerprint (t : t) =
  let h = ref 0x811c9dc5 in
  let mix v =
    h := (!h lxor v) * 0x01000193 land max_int
  in
  mix t.pc;
  mix t.heap;
  Array.iter (fun r -> mix (Int64.to_int r land max_int)) t.regs;
  {
    fp_hash = !h;
    fp_pc = t.pc;
    fp_heap = t.heap;
    fp_out = Buffer.length t.env.out;
    fp_regs = Array.copy t.regs;
  }

let fp_equal a b =
  a.fp_hash = b.fp_hash && a.fp_pc = b.fp_pc && a.fp_heap = b.fp_heap && a.fp_out = b.fp_out
  && a.fp_regs = b.fp_regs

(* Budgets arrive as int64 (the paper's cost model is 64-bit) but the hot
   loop compares native ints; anything at or above [max_int] means
   "unlimited". *)
let int_budget v = if Int64.compare v (Int64.of_int max_int) >= 0 then max_int else Int64.to_int v

(* [max_cost]: modeled-time budget (the 10x-profiling timeout of the
   paper's classification); [max_steps]: hard safety bound.

   Sandbox quotas (DESIGN.md §13) bound what an injected run can consume
   beyond its modeled budget:
   - [output_quota]: max output bytes; the returned output is truncated to
     the quota and flagged so classification can never match a truncated
     prefix against the golden run;
   - [heap_quota]: max heap bytes above the image's heap base;
   - [wall_clock]: real-time deadline in seconds, measured with [clock]
     (default [Sys.time]; campaign callers pass a gettimeofday-backed
     clock) from the start of this [run] call;
   - [livelock]: fingerprint the architectural state every that many steps
     (rounded up to a multiple of the 1024-step check interval) and trap
     on an exact repeat.
   All quota trips surface as [Trapped] with their own constructor, so
   outcome classification maps them to Crash deterministically. *)
let run ?(max_steps = Int64.max_int) ?(max_cost = Int64.max_int) ?output_quota ?heap_quota
    ?wall_clock ?(clock = Sys.time) ?livelock ?poll (t : t) : result =
  (match heap_quota with Some q -> t.heap_quota <- q | None -> ());
  let max_steps = int_budget max_steps and max_cost = int_budget max_cost in
  let oq = match output_quota with Some q -> max 0 q | None -> max_int in
  let deadline, wall_s =
    match wall_clock with Some s -> (clock () +. s, s) | None -> (infinity, 0.0)
  in
  let ll_window =
    match livelock with Some n when n > 0 -> ((n + 1023) / 1024) * 1024 | _ -> 0
  in
  (* the 256-slot fingerprint ring exists only while the livelock detector
     is armed — a plain sample must not pay for it *)
  let ll_state = if ll_window > 0 then Some (Array.make fp_ring_size None, ref 0) else None in
  let check_quotas () =
    (match poll with Some p -> p () | None -> ());
    if oq <> max_int && Buffer.length t.env.out > oq then t.status <- Trapped (Output_quota oq);
    if deadline < infinity && t.status = Running && clock () > deadline then
      t.status <- Trapped (Wall_clock wall_s);
    match ll_state with
    | Some (ring, ring_next) when t.status = Running && t.steps mod ll_window = 0 ->
      let fp = fingerprint t in
      let repeat = Array.exists (function Some p -> fp_equal p fp | None -> false) ring in
      if repeat then t.status <- Trapped Livelock
      else begin
        ring.(!ring_next) <- Some fp;
        ring_next := (!ring_next + 1) mod fp_ring_size
      end
    | _ -> ()
  in
  while
    (match t.status with Running -> true | _ -> false)
    && t.steps < max_steps && t.cost < max_cost
  do
    step t;
    (* poll-slot cadence: plain int mask, no boxed arithmetic per step *)
    if t.steps land 1023 = 0 then check_quotas ()
  done;
  let status = if t.status = Running then Timed_out else t.status in
  let output = Buffer.contents t.env.out in
  let truncated = String.length output > oq in
  let output = if truncated then String.sub output 0 oq else output in
  (* overflow noticed only at the end (quota crossed between checks, or on
     the run's last instruction) is still a quota trap, not a clean exit *)
  let status =
    if truncated then match status with Trapped _ -> status | _ -> Trapped (Output_quota oq)
    else status
  in
  t.status <- status;
  { status; output; steps = Int64.of_int t.steps; cost = Int64.of_int t.cost; truncated }
