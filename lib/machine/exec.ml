(* Architectural simulator for SX64 images.

   This is the substitute for the paper's physical Xeon nodes: it executes
   the machine code produced by the backend against an architectural state
   (register file, FLAGS, byte-addressable memory, downward stack) and
   reports the observable outcome — output, exit code, or a trap.  Faults
   injected into this state propagate, mask, or crash the run exactly as
   the paper's fault model intends.

   Integer/float operation semantics are shared with the IR reference
   interpreter ([Refine_ir.Interp]) so the two cannot drift; the semantic
   property tests compare them on random programs.

   Cost model (DESIGN.md §6): 1 unit per instruction, [ext_call_cost] units
   per runtime-library call, plus [hook_cost] per instruction while a
   dynamic-instrumentation hook (PINFI) is attached. *)

module M = Refine_mir.Minstr
module R = Refine_mir.Reg
module L = Refine_backend.Layout
module Mem = Refine_ir.Memlayout

let ext_call_cost = 25L

type trap =
  | Mem_fault of int
  | Div_by_zero
  | Bad_pc of int
  | Stack_overflow
  | Out_of_memory
  | Extern_fault of string

let string_of_trap = function
  | Mem_fault a -> Printf.sprintf "memory fault at 0x%x" a
  | Div_by_zero -> "integer division by zero"
  | Bad_pc a -> Printf.sprintf "illegal instruction address %d" a
  | Stack_overflow -> "stack overflow"
  | Out_of_memory -> "out of heap memory"
  | Extern_fault m -> "extern fault: " ^ m

type status = Running | Exited of int | Trapped of trap | Timed_out

(* Executor profile: per-opcode-class step counts plus extern-call tallies,
   accumulated into plain machine-local cells so the per-instruction cost
   is one [None] match when profiling is off and two array writes when on;
   the owner (Tool) flushes it into the metrics registry after the run. *)
type profile = {
  class_steps : int64 array; (* Minstr.num_iclasses slots, Minstr.iclass_index order *)
  mutable ext_calls : int64;
  mutable ext_cost : int64;
}

type t = {
  image : L.image;
  regs : int64 array; (* R.num_regs entries; raw bits for GPR/FPR/FLAGS *)
  mem : Bytes.t;
  mutable pc : int;
  mutable steps : int64;
  mutable cost : int64;
  mutable status : status;
  mutable heap : int;
  env : Refine_ir.Externs.env;
  ext_extra : (string, int64 * (t -> unit)) Hashtbl.t;
      (* FI runtime library: name -> (modeled cost, handler) *)
  mutable post_hook : (t -> int -> M.t -> unit) option; (* PINFI-style DBI *)
  mutable hook_cost : int64;
  mutable prof : profile option; (* executor profiling; None = zero-cost path *)
}

type result = { status : status; output : string; steps : int64; cost : int64 }

(* sentinel return address that terminates the program when popped *)
let sentinel = -1L

let create ?(ext_extra = []) (image : L.image) : t =
  let mem = Bytes.make Mem.mem_size '\000' in
  List.iter
    (fun (g : Refine_ir.Ir.global) ->
      match g.gbytes with
      | Some s -> Bytes.blit_string s 0 mem (image.L.global_addr g.gname) (String.length s)
      | None -> ())
    image.L.globals;
  let self = ref None in
  let env =
    {
      Refine_ir.Externs.out = Buffer.create 1024;
      read_byte =
        (fun a ->
          if a < Mem.null_guard || a >= Mem.mem_size then
            raise (Refine_ir.Externs.Extern_trap (Printf.sprintf "print_str read at 0x%x" a))
          else Bytes.get mem a);
      alloc =
        (fun n ->
          match !self with
          | None -> assert false
          | Some t ->
            let addr = t.heap in
            t.heap <- t.heap + Mem.align8 n;
            if t.heap > Mem.mem_size - Mem.stack_limit then
              raise (Refine_ir.Externs.Extern_trap "out of heap memory")
            else addr);
      exited = None;
    }
  in
  let t =
    {
      image;
      regs = Array.make R.num_regs 0L;
      mem;
      pc = image.L.entry;
      steps = 0L;
      cost = 0L;
      status = Running;
      heap = image.L.heap_base;
      env;
      ext_extra = Hashtbl.create 8;
      post_hook = None;
      hook_cost = 0L;
      prof = None;
    }
  in
  self := Some t;
  List.iter (fun (name, cost, fn) -> Hashtbl.replace t.ext_extra name (cost, fn)) ext_extra;
  (* initial stack: rsp at top of memory holding the sentinel return
     address, as if the loader had called main *)
  t.regs.(R.rsp) <- Int64.of_int (Mem.mem_size - 8);
  Bytes.set_int64_le t.mem (Mem.mem_size - 8) sentinel;
  t

(* --- flags ----------------------------------------------------------- *)

let zf_bit = 0
let lt_bit = 1
let unord_bit = 2

let set_flags t ~zf ~lt ~unord =
  let v = ref 0L in
  if zf then v := Int64.logor !v 1L;
  if lt then v := Int64.logor !v 2L;
  if unord then v := Int64.logor !v 4L;
  t.regs.(R.flags) <- !v

let flag t bit = Int64.logand (Int64.shift_right_logical t.regs.(R.flags) bit) 1L = 1L

let eval_cc t (cc : M.cc) =
  let zf = flag t zf_bit and lt = flag t lt_bit and unord = flag t unord_bit in
  match cc with
  | M.CEq -> zf
  | M.CNe -> not zf
  | M.CLt -> lt
  | M.CLe -> lt || zf
  | M.CGt -> not (lt || zf)
  | M.CGe -> not lt
  | M.CFeq -> zf && not unord
  | M.CFne -> (not zf) || unord
  | M.CFlt -> lt && not unord
  | M.CFle -> (lt || zf) && not unord
  | M.CFgt -> (not (lt || zf)) && not unord
  | M.CFge -> (not lt) && not unord

(* --- memory ----------------------------------------------------------- *)

exception Halt_trap of trap

let check_addr addr =
  if addr < Mem.null_guard || addr + 8 > Mem.mem_size then raise (Halt_trap (Mem_fault addr))

let load64 t addr =
  check_addr addr;
  Bytes.get_int64_le t.mem addr

let store64 t addr v =
  check_addr addr;
  Bytes.set_int64_le t.mem addr v

let push t v =
  let sp = Int64.to_int t.regs.(R.rsp) - 8 in
  if sp < Mem.mem_size - Mem.stack_limit then raise (Halt_trap Stack_overflow);
  t.regs.(R.rsp) <- Int64.of_int sp;
  store64 t sp v

let pop t =
  let sp = Int64.to_int t.regs.(R.rsp) in
  let v = load64 t sp in
  t.regs.(R.rsp) <- Int64.of_int (sp + 8);
  v

(* --- extern calls ------------------------------------------------------ *)

let f64 = Int64.float_of_bits
let b64 = Int64.bits_of_float

let count_ext t cost =
  match t.prof with
  | None -> ()
  | Some p ->
    p.ext_calls <- Int64.add p.ext_calls 1L;
    p.ext_cost <- Int64.add p.ext_cost cost

let do_callext (t : t) name =
  match Hashtbl.find_opt t.ext_extra name with
  | Some (cost, fn) ->
    t.cost <- Int64.add t.cost cost;
    count_ext t cost;
    fn t
  | None -> (
    t.cost <- Int64.add t.cost ext_call_cost;
    count_ext t ext_call_cost;
    match Refine_ir.Externs.signature name with
    | None -> raise (Halt_trap (Extern_fault ("unknown extern " ^ name)))
    | Some (tys, ret) ->
      let gp = ref R.arg_gprs and fp = ref R.arg_fprs in
      let args =
        Array.of_list
          (List.map
             (fun ty ->
               let cell = match ty with Refine_ir.Ir.I64 -> gp | Refine_ir.Ir.F64 -> fp in
               match !cell with
               | r :: rest ->
                 cell := rest;
                 t.regs.(r)
               | [] -> raise (Halt_trap (Extern_fault (name ^ ": too many arguments"))))
             tys)
      in
      let r =
        try Refine_ir.Externs.call t.env name args
        with Refine_ir.Externs.Extern_trap m -> raise (Halt_trap (Extern_fault m))
      in
      (match t.env.exited with
      | Some code -> t.status <- Exited code
      | None -> (
        match ret with
        | Some Refine_ir.Ir.I64 -> t.regs.(R.ret_gpr) <- r
        | Some Refine_ir.Ir.F64 -> t.regs.(R.ret_fpr) <- r
        | None -> ())))

(* --- single step -------------------------------------------------------- *)

let opd (t : t) = function M.Reg r -> t.regs.(r) | M.Imm v -> v

let step (t : t) =
  let code = t.image.L.code in
  if t.pc < 0 || t.pc >= Array.length code then begin
    t.status <- Trapped (Bad_pc t.pc)
  end
  else begin
    let pc0 = t.pc in
    let i = code.(pc0) in
    t.steps <- Int64.add t.steps 1L;
    t.cost <- Int64.add (Int64.add t.cost 1L) t.hook_cost;
    (match t.prof with
    | None -> ()
    | Some p ->
      let k = M.iclass_index (M.classify i) in
      p.class_steps.(k) <- Int64.add p.class_steps.(k) 1L);
    t.pc <- pc0 + 1;
    (try
       (match i with
       | M.Mmov (d, s) -> t.regs.(d) <- opd t s
       | M.Mload (d, b, off) -> t.regs.(d) <- load64 t (Int64.to_int t.regs.(b) + off)
       | M.Mstore (s, b, off) -> store64 t (Int64.to_int t.regs.(b) + off) t.regs.(s)
       | M.Mloadidx (d, b, ix, off) ->
         t.regs.(d) <-
           load64 t (Int64.to_int t.regs.(b) + (8 * Int64.to_int t.regs.(ix)) + off)
       | M.Mstoreidx (s, b, ix, off) ->
         store64 t (Int64.to_int t.regs.(b) + (8 * Int64.to_int t.regs.(ix)) + off) t.regs.(s)
       | M.Mlea (d, b, ix, off) ->
         let base = t.regs.(b) in
         let idx = match ix with Some r -> Int64.mul 8L t.regs.(r) | None -> 0L in
         t.regs.(d) <- Int64.add (Int64.add base idx) (Int64.of_int off)
       | M.Mbin (op, d, a, b) ->
         let va = t.regs.(a) and vb = opd t b in
         let r =
           try Refine_ir.Interp.eval_ibinop op va vb
           with Refine_ir.Interp.Trap _ -> raise (Halt_trap Div_by_zero)
         in
         t.regs.(d) <- r;
         set_flags t ~zf:(r = 0L) ~lt:(Int64.compare r 0L < 0) ~unord:false
       | M.Mfbin (op, d, a, b) ->
         t.regs.(d) <- b64 (Refine_ir.Interp.eval_fbinop op (f64 t.regs.(a)) (f64 t.regs.(b)))
       | M.Mfun (op, d, a) -> t.regs.(d) <- b64 (Refine_ir.Interp.eval_funop op (f64 t.regs.(a)))
       | M.Mcvt (Sitofp, d, a) -> t.regs.(d) <- b64 (Int64.to_float t.regs.(a))
       | M.Mcvt (Fptosi, d, a) -> t.regs.(d) <- Refine_ir.Interp.fptosi (f64 t.regs.(a))
       | M.Mcmp (a, b) ->
         let va = t.regs.(a) and vb = opd t b in
         let c = Int64.compare va vb in
         set_flags t ~zf:(c = 0) ~lt:(c < 0) ~unord:false
       | M.Mfcmp (a, b) ->
         let va = f64 t.regs.(a) and vb = f64 t.regs.(b) in
         if Float.is_nan va || Float.is_nan vb then set_flags t ~zf:false ~lt:false ~unord:true
         else set_flags t ~zf:(va = vb) ~lt:(va < vb) ~unord:false
       | M.Msetcc (cc, d) -> t.regs.(d) <- (if eval_cc t cc then 1L else 0L)
       | M.Mjcc (cc, target) -> if eval_cc t cc then t.pc <- target
       | M.Mjmp target -> t.pc <- target
       | M.Mpush r -> push t t.regs.(r)
       | M.Mpop r -> t.regs.(r) <- pop t
       | M.Mpushf -> push t t.regs.(R.flags)
       | M.Mpopf -> t.regs.(R.flags) <- pop t
       | M.Mcalli target ->
         push t (Int64.of_int t.pc);
         t.pc <- target
       | M.Mcall name -> raise (Halt_trap (Extern_fault ("unresolved call " ^ name)))
       | M.Mcallext name -> do_callext t name
       | M.Mret ->
         let ra = pop t in
         if ra = sentinel then t.status <- Exited (Int64.to_int t.regs.(R.ret_gpr))
         else begin
           let target = Int64.to_int ra in
           if target < 0 || target >= Array.length code then raise (Halt_trap (Bad_pc target))
           else t.pc <- target
         end
       | M.Mxorbit (d, s) ->
         t.regs.(d) <-
           Int64.logxor t.regs.(d) (Int64.shift_left 1L (Int64.to_int (Int64.logand t.regs.(s) 63L)))
       | M.Mxorbitmem (b, off, s) ->
         let addr = Int64.to_int t.regs.(b) + off in
         let v = load64 t addr in
         store64 t addr
           (Int64.logxor v (Int64.shift_left 1L (Int64.to_int (Int64.logand t.regs.(s) 63L))))
       | M.Mhalt -> t.status <- Exited (Int64.to_int t.regs.(R.ret_gpr)));
       match t.post_hook with Some h -> h t pc0 i | None -> ()
     with Halt_trap tr -> t.status <- Trapped tr)
  end

let enable_profiling t =
  match t.prof with
  | Some p -> p
  | None ->
    let p =
      { class_steps = Array.make M.num_iclasses 0L; ext_calls = 0L; ext_cost = 0L }
    in
    t.prof <- Some p;
    p

(* [max_cost]: modeled-time budget (the 10x-profiling timeout of the
   paper's classification); [max_steps]: hard safety bound. *)
let run ?(max_steps = Int64.max_int) ?(max_cost = Int64.max_int) ?poll (t : t) : result =
  while
    t.status = Running
    && Int64.compare t.steps max_steps < 0
    && Int64.compare t.cost max_cost < 0
  do
    step t;
    match poll with
    | Some p when Int64.logand t.steps 2047L = 0L -> p ()
    | _ -> ()
  done;
  let status = if t.status = Running then Timed_out else t.status in
  t.status <- status;
  { status; output = Buffer.contents t.env.out; steps = t.steps; cost = t.cost }
