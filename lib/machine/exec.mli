(** Architectural simulator for SX64 images — the substitute for the
    paper's physical Xeon nodes.

    Executes machine code against an architectural state (register file,
    FLAGS, byte-addressable memory, downward stack) and reports the
    observable outcome: output, exit code, or a trap.  Injected faults land
    in this state and propagate, mask, or crash exactly as the paper's
    fault model intends.

    Cost model (DESIGN.md §6): 1 unit per instruction, per-extern call
    costs, plus {!field:hook_cost} per instruction while a DBI-style hook
    is attached.

    Fast path (DESIGN.md §14): step/cost counters are plain unboxed [int]
    fields, FLAGS writes index a preallocated table, extern calls dispatch
    through a per-engine handler array resolved once from the image's
    [ext_slot_of_pc] table, and engines created from a {!snapshot} are
    {!reset} between samples with a single [Bytes.blit].  The
    per-instruction execute path allocates nothing when profiling is off. *)

val ext_call_cost : int
(** Default modeled cost of a libc/libm extern call (25 units). *)

type trap =
  | Mem_fault of int
  | Div_by_zero
  | Bad_pc of int
  | Stack_overflow
  | Out_of_memory
  | Extern_fault of string
  | Output_quota of int  (** sandbox: output exceeded the byte quota *)
  | Heap_quota of int  (** sandbox: heap grew past the byte quota *)
  | Wall_clock of float  (** sandbox: real-time deadline (seconds) expired *)
  | Livelock  (** sandbox: architectural state fingerprint repeated *)
  | Illegal_instr of int
      (** the Instr_image fault model corrupted the code slot at this pc
          into an encoding that no longer decodes; fetching it traps *)

val string_of_trap : trap -> string

type status = Running | Exited of int | Trapped of trap | Timed_out

type profile = {
  class_steps : int array;
      (** executed instructions per opcode class, indexed by
          {!Refine_mir.Minstr.iclass_index} *)
  mutable ext_calls : int;  (** extern (runtime-library/libc) calls made *)
  mutable ext_cost : int;  (** modeled cost charged by those calls *)
}
(** Executor profile, attached by {!enable_profiling}.  Plain machine-local
    unboxed cells: the per-instruction overhead is one [option] match when
    off and two int array ops when on; the owner flushes the totals into
    the observability registry after the run (DESIGN.md §12). *)

type dprogram
(** A pre-decoded program (DESIGN.md §19): one closure per code slot with
    operands, flag-word ops, branch targets and extern slots resolved at
    decode time, plus a parallel table where the hot MinC idioms
    (compare-branch, load-op-store, loop-back-edge) are fused into
    superinstructions.  Immutable and engine-free: one [dprogram] is
    decoded per snapshot (content-addressed by the campaign layer) and
    shared read-only by every engine and domain executing that image.
    Superinstructions retire their constituents' step/cost/profile counts
    individually and re-test the run loop's budget condition between
    constituents, so decoded execution is bit-identical to the legacy
    interpreter — the invariant the differential qcheck suite asserts. *)

type t = {
  image : Refine_backend.Layout.image;
  regs : int64 array;  (** [Reg.num_regs] raw images: GPRs, FPRs, FLAGS *)
  mem : Bytes.t;
  mutable pc : int;
  mutable steps : int;  (** unboxed; 63 bits is ample for any modeled budget *)
  mutable cost : int;
  mutable status : status;
  mutable heap : int;
  env : Refine_ir.Externs.env;
  ext_extra : (string, int * (t -> unit)) Hashtbl.t;
      (** FI runtime library: name -> (modeled cost, handler) *)
  mutable post_hook : (t -> int -> Refine_mir.Minstr.t -> unit) option;
      (** PINFI-style DBI: called after every executed instruction with the
          pre-execution pc and the instruction *)
  mutable hook_cost : int;  (** extra cost per instruction while attached *)
  mutable prof : profile option;  (** executor profiling; [None] = zero-cost path *)
  mutable heap_quota : int;
      (** sandbox heap quota in bytes above the image's heap base;
          [max_int] = unlimited.  Set by {!run}'s [heap_quota] argument. *)
  mutable handlers : (t -> unit) array;
      (** pre-resolved extern dispatch, indexed by the image's
          [ext_slot_of_pc] slots; rebuilt by {!reset}.  Internal. *)
  mutable builtins : (t -> unit) option array;
      (** memoized libc/libm handlers per extern slot, reused across
          {!reset}s so signatures are parsed once per engine.  Internal. *)
  mutable fi_mask : int64;
      (** pending multi-bit FI mask: when nonzero, the next [Mxorbit] /
          [Mxorbitmem] applies this XOR mask instead of its single-bit
          flip, then clears it.  Set by the REFINE control library for the
          Multi_bit fault model (DESIGN.md §18); cleared by {!reset}. *)
  mutable overlay_pc : int;
      (** Instr_image corruption overlay: engine-local view of one mutated
          code slot ([-1] = none).  The shared [image.code] array is never
          written, so snapshots and sibling engines stay pristine. *)
  mutable overlay_instr : Refine_mir.Minstr.t option;
      (** the mutated instruction at [overlay_pc]; [None] = the corrupted
          encoding no longer decodes, so fetching it traps
          [Illegal_instr]. *)
  mutable dprog : dprogram option;
      (** installed decoded program; [None] = legacy dispatch.  Set via
          {!install_decoded}; survives {!reset} (the decode is a property
          of the image, not of a sample). *)
  mutable d_active : (t -> unit) array;
      (** live dispatch table: the fused table normally, the fusion-free
          single-instruction table while an Instr_image overlay is armed
          (a superinstruction spanning the overlaid pc would execute the
          pristine encoding).  Internal. *)
  mutable d_overlay : (t -> unit) option;
      (** decoded form of the overlay instruction at [overlay_pc], built
          by {!set_overlay} and cleared by {!reset}.  Internal. *)
  mutable d_check : unit -> unit;
      (** the active run's poll-slot check, installed for the duration of
          a decoded {!run} so superinstruction constituents can self-check
          at 1024-step boundaries.  Internal. *)
  mutable d_max_steps : int;  (** active decoded-run step budget.  Internal. *)
  mutable d_max_cost : int;  (** active decoded-run cost budget.  Internal. *)
  mutable detach_req : bool;
      (** raised by the FI control library once the single injection has
          retired; {!run} hands off to the detach plan's golden engine at
          the next poll slot (DESIGN.md §20).  Cleared by {!reset}. *)
  mutable handler_cost : int array;
      (** declared modeled cost per extern slot, parallel to [handlers]
          and rebuilt with them — the fi-splice fast path charges a
          skipped selector call exactly.  Internal. *)
  mutable fi_sel_skip : int;
      (** FI-selector fast-path window (DESIGN.md §20): number of
          upcoming [fi_sel_instr] calls that are provably non-firing.
          Published by the REFINE control library after each real
          selector call; consumed one per splice by the fused fi-splice
          superinstruction, which retires the whole splice without
          entering the library.  [0] (default) = every call dispatches
          to the handler.  Cleared by {!reset}. *)
  mutable fi_sel_pending : int;
      (** selector calls the fast path retired since the library last
          ran; folded back into the control counter on the next real
          call or by [Runtime.absorb] after the run.  Cleared by
          {!reset}. *)
  mutable cs_slots : int array;
      (** shadow call stack: per live [Mcalli] frame, the stack slot
          holding the pushed return address — handoff-time validation and
          translation data.  Internal. *)
  mutable cs_vals : int64 array;  (** the value pushed into each slot.  Internal. *)
  mutable cs_len : int;  (** live shadow-stack depth.  Internal. *)
  snap : Bytes.t option;
      (** pristine memory blitted back by {!reset}; [None] for engines made
          with {!create} *)
}

type result = {
  status : status;
  output : string;
  steps : int64;
  cost : int64;
  truncated : bool;
      (** the output was cut at the output quota — classification must
          never report it as a golden match *)
  detached : bool;
      (** the run handed off to its detach plan's golden engine after the
          injection retired (DESIGN.md §20) *)
  drain_steps : int;
      (** instructions single-stepped to reach an original-instruction
          boundary before the handoff (0 unless [detached] with a
          correspondence map) *)
}

type handoff_map = {
  h_rank : int array;
      (** instrumented pc -> golden pc; [-1] for spliced (inserted) pcs *)
  h_next : int array;
      (** length [n+1]: golden pc of the first original instruction at or
          after each instrumented pc — return-address translation *)
}
(** Correspondence between an instrumented image and its golden twin, in
    the executor's terms (built by [Fimap] in the backend). *)

type detach_plan = {
  plan_target : unit -> t;
      (** builds (or fetches from a cache) the golden engine to continue
          on: reset, decoded with the attached-equivalent cost weights,
          application externs bound *)
  plan_map : handoff_map option;
      (** [Some] = golden-snapshot coordinates (drain + translate);
          [None] = overlay-fallback target sharing the instrumented
          image's coordinates (plain state blit) *)
}
(** Post-injection handoff plan, built per sample by the campaign layer
    when the tool and fault model are eligible (DESIGN.md §20). *)

exception Detach_signal
(** Internal: raised by the poll-slot check to unwind the engine loop when
    [detach_req] is up and a plan is armed.  Never escapes {!run}. *)

val create : ?ext_extra:(string * int * (t -> unit)) list -> Refine_backend.Layout.image -> t
(** Fresh machine state: globals initialized, stack holding the sentinel
    return address, pc at the image entry. *)

type snapshot
(** Initialized memory image (globals + sentinel stack) computed once per
    prepared program, shared read-only by every engine cloned from it. *)

val snapshot : Refine_backend.Layout.image -> snapshot
(** Compute the initialized memory image once; the [Bytes.make] +
    global-blit cost is paid here instead of per sample. *)

val create_from_snapshot :
  ?ext_extra:(string * int * (t -> unit)) list -> snapshot -> t
(** Like {!create}, but clones the snapshot's pristine memory and keeps a
    reference to it so the engine supports {!reset}. *)

val reset : ?ext_extra:(string * int * (t -> unit)) list -> t -> unit
(** Restore a snapshot-backed engine to the pristine post-loader state with
    a single [Bytes.blit]: registers zeroed, sp/pc/heap re-seated, output
    buffer cleared, hooks/profiling/quotas dropped, and extern handlers
    rebound against [ext_extra].  A reset engine is bit-identical to a
    fresh {!create_from_snapshot} (asserted by the differential property
    tests).  Raises [Invalid_argument] on engines made with {!create}. *)

val step : t -> unit
(** Execute one instruction (or set a trap status). *)

val flip_mem_bit : t -> addr:int -> bit:int -> unit
(** XOR one bit of one data-memory byte — the Mem_cell fault model's
    mutation.  [Invalid_argument] if [addr] is outside
    [[Memlayout.null_guard, Memlayout.mem_size)] or [bit] outside [0, 7]:
    callers draw the cell from the initialized image, so an out-of-range
    address is a harness defect, not a machine trap. *)

val set_overlay : t -> pc:int -> Refine_mir.Minstr.t option -> unit
(** Install the Instr_image corruption overlay at [pc] ([None] = the
    mutated encoding is illegal; executing that slot traps
    [Illegal_instr]).  The shared image code is never written; {!reset}
    clears the overlay.  [Invalid_argument] if [pc] is outside the code
    image. *)

val enable_profiling : t -> profile
(** Attach (or return the already-attached) executor profile.  The record
    is updated in place as the machine runs. *)

(** {1 Pre-decoded engine (DESIGN.md §19)} *)

val decode : ?cost_of:int array -> Refine_backend.Layout.image -> dprogram
(** Decode every instruction of [image] into a dispatch closure and fuse
    superinstructions over the hot idioms.  Pure per image: the campaign
    layer caches the result per snapshot in the content-addressed artifact
    cache so engines handed out by [Tool.acquire] never re-decode.

    [cost_of] (DESIGN.md §20): per-pc modeled cost weights, one entry per
    code slot ([Invalid_argument] on a length mismatch; default weight 1
    everywhere).  Detach targets are decoded with the correspondence map's
    weights so a detached run charges the same modeled cost the attached
    run would have — batched superinstruction retirement and closed-form
    loop burn scale their budget-edge math by the constituent weights and
    stay constituent-exact. *)

val install_decoded : t -> dprogram option -> unit
(** Attach ([Some dp]) or detach ([None]) a decoded program.  [dp] must
    have been built from the engine's own image ([Invalid_argument]
    otherwise — decoded closures bake that image's class and extern-slot
    tables).  With a program installed, {!run} dispatches through
    {!Decoded_engine}; detaching falls back to the legacy interpreter. *)

val decoded : t -> bool
(** Whether a decoded program is installed. *)

val engine_name : t -> string
(** ["decoded"] or ["legacy"] — the engine {!run} would select now. *)

val idioms : string array
(** Superinstruction idiom names, in {!superinstr_counts} index order:
    [[|"cmp-branch"; "load-op-store"; "loop-back"; "fi-splice"|]].
    ["fi-splice"] is the REFINE instrumentation splice fused into one
    closure on plain (unweighted) images, so an attached instrumented run
    pays roughly one dispatch per candidate instead of seven
    (DESIGN.md §20). *)

val superinstr_counts : dprogram -> int array
(** Static fusion sites per idiom (indexed like {!idioms}) — the feed for
    the [refine_decoded_superinstr_total] metric. *)

val decoded_image : dprogram -> Refine_backend.Layout.image
(** The image this program was decoded from (physical identity is the
    {!install_decoded} compatibility check). *)

(** An execution substrate: drives the machine until the status leaves
    [Running] or a budget trips, calling [check] at every 1024-step poll
    slot.  {!run} selects the engine per call from [t.dprog]; the legacy
    interpreter stays alive behind this interface for differential
    testing and for hooked (PINFI/trace) execution. *)
module type ENGINE = sig
  val name : string
  val loop : t -> max_steps:int -> max_cost:int -> check:(unit -> unit) -> unit
end

module Legacy_engine : ENGINE
(** The per-opcode match interpreter ({!step} in a while loop). *)

module Decoded_engine : ENGINE
(** Threaded dispatch over the decoded closure table; falls back to
    {!step} per instruction while a [post_hook] is attached and routes the
    Instr_image overlay pc through the overlay decode. *)

val run :
  ?max_steps:int64 ->
  ?max_cost:int64 ->
  ?output_quota:int ->
  ?heap_quota:int ->
  ?wall_clock:float ->
  ?clock:(unit -> float) ->
  ?livelock:int ->
  ?poll:(unit -> unit) ->
  ?detach:detach_plan ->
  t ->
  result
(** Run to completion, trap, or budget exhaustion ([Timed_out]).
    [max_cost] is the paper's 10x-profiling timeout measure.  [poll] is
    called every 1024 executed instructions; an exception it raises (e.g.
    {!Refine_support.Supervisor.Cancelled} from a cancellation token)
    propagates to the caller, aborting the run — the cooperative kill
    mechanism used by campaign watchdogs.

    Sandbox quotas (DESIGN.md §13), all unlimited by default:
    [output_quota] caps output bytes (the returned output is truncated to
    the quota and [truncated] set, and the run ends [Trapped (Output_quota
    _)]); [heap_quota] caps heap growth above the image's heap base
    ([Trapped (Heap_quota _)]); [wall_clock] is a real-time deadline in
    seconds measured with [clock] (default [Sys.time]) from the start of
    the call ([Trapped (Wall_clock _)]); [livelock] fingerprints the
    architectural state every that many steps (rounded up to a multiple of
    1024) and traps [Livelock] on an exact repeat within the last 256
    fingerprints — the fingerprint ring is only allocated when the
    detector is armed.

    [detach] (DESIGN.md §20): when the FI control library raises
    [detach_req] (the injection has retired), the next poll slot hands
    execution off to [plan_target]'s golden engine — with a map the run
    first drains to an original-instruction boundary and validates /
    rewrites live return addresses through the shadow call stack; without
    one the coordinates are shared and the handoff is a state blit.  Any
    validation failure declines the handoff and the run continues
    attached; the handoff is attempted at most once per call.  [detached]
    and [drain_steps] in the result report what happened. *)
