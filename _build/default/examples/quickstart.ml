(* Quickstart: the complete REFINE workflow of the paper's Figure 3 on a
   small program — compile with backend instrumentation, profile to get the
   dynamic instruction count and the golden output, then run fault-injection
   experiments and classify each outcome.

     dune exec examples/quickstart.exe *)

module T = Refine_core.Tool
module F = Refine_core.Fault
module P = Refine_support.Prng

let source =
  {|
// a small stencil kernel with a checksum output
global int n = 64;
global float a[64];
global float b[64];

int main() {
  int i; int sweep;
  for (i = 0; i < n; i = i + 1) { a[i] = tofloat(i % 9) * 0.5; }
  for (sweep = 0; sweep < 8; sweep = sweep + 1) {
    for (i = 1; i < n - 1; i = i + 1) {
      b[i] = 0.25 * a[i - 1] + 0.5 * a[i] + 0.25 * a[i + 1];
    }
    for (i = 1; i < n - 1; i = i + 1) { a[i] = b[i]; }
  }
  float cksum = 0.0;
  for (i = 0; i < n; i = i + 1) { cksum = cksum + a[i] * tofloat(i + 1); }
  print_float(cksum);
  return 0;
}
|}

let () =
  print_endline "== REFINE quickstart ==";
  (* 1. compile + profile: the instrumented binary runs once with the
     control library in profiling mode *)
  let prepared = T.prepare T.Refine source in
  Printf.printf "profiling: %d static instrumentation sites, %Ld dynamic FI targets\n"
    prepared.T.static_instrumented prepared.T.profile.F.dyn_count;
  Printf.printf "golden output: %s" prepared.T.profile.F.golden_output;
  Printf.printf "profiled run cost: %Ld units (timeout at 10x)\n\n"
    prepared.T.profile.F.profile_cost;
  (* 2. fault injection: uniform single bit flips, one per run *)
  let rng = P.create 2017 in
  Printf.printf "%-4s %-8s %s\n" "run" "outcome" "fault (dynamic index / operand / bit)";
  let tally = Hashtbl.create 4 in
  for run = 1 to 20 do
    let e = T.run_injection prepared (P.split rng) in
    let f =
      match e.F.fault with Some r -> F.string_of_record r | None -> "(target not reached)"
    in
    Printf.printf "%-4d %-8s %s\n" run (F.string_of_outcome e.F.outcome) f;
    let k = F.string_of_outcome e.F.outcome in
    Hashtbl.replace tally k (1 + try Hashtbl.find tally k with Not_found -> 0)
  done;
  (* 3. aggregate, as a campaign would *)
  print_newline ();
  Hashtbl.iter (fun k v -> Printf.printf "%-8s %2d / 20\n" k v) tally
