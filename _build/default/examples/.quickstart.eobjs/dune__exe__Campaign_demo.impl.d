examples/campaign_demo.ml: List Printf Refine_bench_progs Refine_campaign Refine_core Refine_stats String
