examples/quickstart.mli:
