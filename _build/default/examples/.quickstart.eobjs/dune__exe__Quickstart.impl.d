examples/quickstart.ml: Hashtbl Printf Refine_core Refine_support
