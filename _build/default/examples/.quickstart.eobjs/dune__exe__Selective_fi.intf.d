examples/selective_fi.mli:
