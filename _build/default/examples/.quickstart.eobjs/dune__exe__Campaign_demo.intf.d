examples/campaign_demo.mli:
