examples/selective_fi.ml: Int64 Printf Refine_core Refine_support
