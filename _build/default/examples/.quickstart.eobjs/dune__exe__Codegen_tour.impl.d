examples/codegen_tour.ml: List Printf Refine_backend Refine_core Refine_ir Refine_minic Refine_mir String
