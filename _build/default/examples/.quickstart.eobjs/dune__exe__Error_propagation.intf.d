examples/error_propagation.mli:
