examples/error_propagation.ml: List Printf Refine_core Refine_ir Refine_support
