(* Campaign demo: a reduced version of the paper's evaluation on two of
   the 14 benchmark programs — outcome distributions per tool (Figure 4),
   the contingency table (Table 4) and the chi-squared verdicts (Table 5).

   The full evaluation over all programs is bench/main.exe.

     dune exec examples/campaign_demo.exe *)

module E = Refine_campaign.Experiment
module Rep = Refine_campaign.Report
module Reg = Refine_bench_progs.Registry
module T = Refine_core.Tool

let programs = [ "HPCCG-1.0"; "XSBench" ]
let samples = 150

let () =
  Printf.printf "== campaign demo: %s, %d samples per (program, tool) ==\n\n"
    (String.concat " + " programs) samples;
  let srcs = List.map (fun n -> (n, (Reg.find n).Reg.source)) programs in
  let cells = E.run_matrix ~samples ~seed:42 srcs Rep.tools in
  (* Figure 4 *)
  List.iter
    (fun p ->
      print_string (Rep.figure4_program cells p);
      print_newline ())
    programs;
  (* Table 4-style contingency table *)
  print_endline "Contingency table (HPCCG-1.0, LLFI vs PINFI):";
  let a = E.find_cell cells ~program:"HPCCG-1.0" ~tool:T.Llfi in
  let b = E.find_cell cells ~program:"HPCCG-1.0" ~tool:T.Pinfi in
  print_string (Rep.contingency_table a b);
  print_newline ();
  (* Table 5 *)
  print_string (Rep.table5 (Rep.chi2_rows cells programs));
  (* Figure 5 *)
  print_newline ();
  print_string (Rep.figure5 cells programs);
  Printf.printf
    "\nAt n=%d the margin of error is ±%.1f%%; the paper's n=1068 gives ±3%%\n\
     (run `REFINE_SAMPLES=1068 dune exec bench/main.exe` for the full setting).\n"
    samples
    (100.0 *. Refine_stats.Samplesize.margin_of ~samples ~confidence:0.95 ())
