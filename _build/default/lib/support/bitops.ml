let check_index i =
  if i < 0 || i > 63 then invalid_arg (Printf.sprintf "Bitops: bit index %d out of [0,63]" i)

let flip_bit v i =
  check_index i;
  Int64.logxor v (Int64.shift_left 1L i)

let test_bit v i =
  check_index i;
  Int64.logand (Int64.shift_right_logical v i) 1L = 1L

let set_bit v i =
  check_index i;
  Int64.logor v (Int64.shift_left 1L i)

let clear_bit v i =
  check_index i;
  Int64.logand v (Int64.lognot (Int64.shift_left 1L i))

let popcount v =
  let rec loop v acc = if v = 0L then acc else loop (Int64.logand v (Int64.sub v 1L)) (acc + 1) in
  loop v 0

let float_bits = Int64.bits_of_float
let bits_float = Int64.float_of_bits
