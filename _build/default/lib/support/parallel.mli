(** Multicore work distribution for fault-injection campaigns.

    The paper runs 44,856 single-threaded experiments on a cluster, fully
    subscribing each node (artifact §A.4).  Here the unit of work is one
    simulated execution; campaigns distribute experiments over OCaml 5
    domains with dynamic (atomic-counter) load balancing, since experiment
    durations vary wildly — a crash terminates a run early. *)

val default_domains : unit -> int
(** Number of worker domains to use by default: the recommended domain count
    of the runtime, at least 1. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array f arr] applies [f] to every element, distributing elements
    over [domains] workers (default {!default_domains}).  Result order is
    preserved.  [f] must be safe to run concurrently (campaign experiments
    carry their own split PRNG, see {!Prng.split}).  Exceptions raised by [f]
    are re-raised in the caller. *)

val init : ?domains:int -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init]. *)
