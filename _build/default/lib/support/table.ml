type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let trim_right s =
  let n = ref (String.length s) in
  while !n > 0 && s.[!n - 1] = ' ' do decr n done;
  String.sub s 0 !n

let render ?(align = []) ~header rows =
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) (List.length header) rows in
  let fill r = r @ List.init (ncols - List.length r) (fun _ -> "") in
  let all = List.map fill (header :: rows) in
  let widths = Array.make ncols 0 in
  List.iter (List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c))) all;
  let aligns =
    Array.init ncols (fun i -> match List.nth_opt align i with Some a -> a | None -> Left)
  in
  let line r =
    r
    |> List.mapi (fun i c -> pad aligns.(i) widths.(i) c)
    |> String.concat "  "
    |> trim_right
  in
  let rule = String.concat "--" (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  match all with
  | [] -> ""
  | h :: rest -> String.concat "\n" (line h :: rule :: List.map line rest)

let print ?align ~header rows = print_endline (render ?align ~header rows)
