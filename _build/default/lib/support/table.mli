(** Plain-text aligned tables for the benchmark harness output.

    The harness regenerates the paper's tables and figure series as text;
    this module handles column alignment so every reproduction prints through
    the same code path. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out [header] and [rows] as an aligned table
    with a separator rule under the header.  [align] gives per-column
    alignment (default all [Left]; shorter lists are padded with [Left]).
    Rows shorter than the header are padded with empty cells. *)

val print : ?align:align list -> header:string list -> string list list -> unit
