let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

exception Worker_failure of exn

(* Dynamic load balancing: workers repeatedly claim the next unprocessed
   index from a shared atomic counter.  Each claimed index is processed and
   written into the (pre-allocated) result slot, so order is preserved
   without any sorting. *)
let run_indexed ~domains n (f : int -> unit) =
  if n = 0 then ()
  else begin
    let domains = max 1 (min domains n) in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          (try f i
           with e -> ignore (Atomic.compare_and_set failure None (Some e)));
          loop ()
        end
      in
      loop ()
    in
    if domains = 1 then worker ()
    else begin
      let handles = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join handles
    end;
    match Atomic.get failure with None -> () | Some e -> raise (Worker_failure e)
  end

let init ?domains n f =
  let domains = match domains with Some d -> d | None -> default_domains () in
  if n = 0 then [||]
  else begin
    (* Pre-fill with the first element so the array is fully initialized
       before workers race on the remaining slots. *)
    let first = f 0 in
    let out = Array.make n first in
    run_indexed ~domains (n - 1) (fun i -> out.(i + 1) <- f (i + 1));
    out
  end

let map_array ?domains f arr = init ?domains (Array.length arr) (fun i -> f arr.(i))
