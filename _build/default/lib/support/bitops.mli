(** Bit-level manipulation of 64-bit values.

    The machine simulator stores every architectural register (integer,
    floating point and FLAGS) as raw [int64] bits, so that the single-bit-flip
    fault model of the paper is a uniform XOR regardless of register class. *)

val flip_bit : int64 -> int -> int64
(** [flip_bit v i] inverts bit [i] (0 = least significant).  Raises
    [Invalid_argument] unless [0 <= i < 64]. *)

val test_bit : int64 -> int -> bool

val set_bit : int64 -> int -> int64

val clear_bit : int64 -> int -> int64

val popcount : int64 -> int
(** Number of set bits. *)

val float_bits : float -> int64
(** IEEE-754 bit image (same as [Int64.bits_of_float]). *)

val bits_float : int64 -> float
