lib/support/bitops.ml: Int64 Printf
