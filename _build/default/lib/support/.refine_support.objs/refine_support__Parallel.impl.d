lib/support/parallel.ml: Array Atomic Domain
