lib/support/prng.mli:
