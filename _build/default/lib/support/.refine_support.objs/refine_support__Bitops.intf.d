lib/support/bitops.mli:
