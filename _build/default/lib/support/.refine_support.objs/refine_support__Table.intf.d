lib/support/table.mli:
