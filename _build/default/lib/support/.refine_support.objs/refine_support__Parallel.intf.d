lib/support/parallel.mli:
