(** Static error-propagation analysis over the IR — the integration the
    paper's introduction motivates for compiler-based FI ("close
    integration with error-propagation analysis").

    A conservative, flow-insensitive forward slice on the def-use graph
    classifies each SSA value by the sinks a fault in it can reach. *)

type influence = {
  reaches_address : bool;  (** flows into a load/store address: crash-prone *)
  reaches_output : bool;  (** flows into call arguments or the return value *)
  reaches_control : bool;  (** flows into a branch/select condition *)
  reaches_memory : bool;  (** flows into a stored value *)
  fanout : int;  (** transitively dependent values *)
}

val none : influence
val merge : influence -> influence -> influence

val analyze : Refine_ir.Ir.func -> Refine_ir.Ir.value -> influence
(** Forward slice of one value within its function. *)

type prediction = Predict_crash | Predict_sdc | Predict_benign

val predict : influence -> prediction
(** Dominant-outcome heuristic in the spirit of SDC-detector placement
    studies (IPAS et al.). *)

val string_of_prediction : prediction -> string

val summarize : Refine_ir.Ir.func -> int * int * int
(** (crash-prone, SDC-prone, benign-prone) counts over the function's
    value-producing instructions. *)
