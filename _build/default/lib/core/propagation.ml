(* Static error-propagation analysis over the IR.

   The paper's §1 argues that a key advantage of compiler-based FI is
   "close integration with error-propagation analysis as both classes of
   analysis operate in the same software layer".  This module provides that
   integration point: a forward data-flow slice from any SSA value to the
   program's observable sinks, usable to predict which fault-injection
   targets are crash-prone (reach memory addresses or control flow),
   SDC-prone (reach output), or likely benign (reach nothing).

   The analysis is intraprocedural and flow-insensitive on the def-use
   graph: conservative but cheap, in the spirit of the detector-placement
   studies built on LLFI that the paper cites ([18] IPAS, [35]). *)

module I = Refine_ir.Ir

type influence = {
  reaches_address : bool; (* flows into a load/store address: crash-prone *)
  reaches_output : bool; (* flows into print/extern arguments or return *)
  reaches_control : bool; (* flows into a branch/select condition *)
  reaches_memory : bool; (* flows into a stored value (may propagate further) *)
  fanout : int; (* number of transitively dependent values *)
}

let none =
  {
    reaches_address = false;
    reaches_output = false;
    reaches_control = false;
    reaches_memory = false;
    fanout = 0;
  }

(* sinks touched directly by one instruction, for each used value *)
let direct_sinks (i : I.instr) (v : I.value) =
  let uses o = o = I.Var v in
  match i with
  | I.Load (_, _, a) -> { none with reaches_address = uses a }
  | I.Store (_, value, a) ->
    { none with reaches_address = uses a; reaches_memory = uses value }
  | I.Select (_, _, c, _, _) -> { none with reaches_control = uses c }
  | I.Call (_, _, _, args) -> { none with reaches_output = List.exists uses args }
  | _ -> none

let merge a b =
  {
    reaches_address = a.reaches_address || b.reaches_address;
    reaches_output = a.reaches_output || b.reaches_output;
    reaches_control = a.reaches_control || b.reaches_control;
    reaches_memory = a.reaches_memory || b.reaches_memory;
    fanout = a.fanout + b.fanout;
  }

(* forward slice of [root] within [fn] *)
let analyze (fn : I.func) (root : I.value) : influence =
  (* value -> instructions using it, and value -> values defined from it *)
  let users : (I.value, I.instr list ref) Hashtbl.t = Hashtbl.create 64 in
  let term_users : (I.value, unit) Hashtbl.t = Hashtbl.create 16 in
  let ret_users : (I.value, unit) Hashtbl.t = Hashtbl.create 16 in
  let phi_succs : (I.value, I.value list ref) Hashtbl.t = Hashtbl.create 16 in
  let add tbl v x =
    let cell =
      match Hashtbl.find_opt tbl v with
      | Some c -> c
      | None ->
        let c = ref [] in
        Hashtbl.add tbl v c;
        c
    in
    cell := x :: !cell
  in
  List.iter
    (fun (b : I.block) ->
      List.iter
        (fun (p : I.phi) ->
          List.iter
            (fun (_, o) -> match o with I.Var v -> add phi_succs v p.I.pdst | _ -> ())
            p.I.incoming)
        b.I.phis;
      List.iter
        (fun i ->
          List.iter
            (fun o -> match o with I.Var v -> add users v i | _ -> ())
            (I.instr_uses i))
        b.I.body;
      List.iter
        (fun o ->
          match (o, b.I.term) with
          | I.Var v, I.Cbr _ -> Hashtbl.replace term_users v ()
          | I.Var v, I.Ret _ -> Hashtbl.replace ret_users v ()
          | _ -> ())
        (I.term_uses b.I.term))
    fn.I.blocks;
  let visited : (I.value, unit) Hashtbl.t = Hashtbl.create 32 in
  let acc = ref none in
  let work = Queue.create () in
  let push v =
    if not (Hashtbl.mem visited v) then begin
      Hashtbl.add visited v ();
      Queue.add v work
    end
  in
  push root;
  while not (Queue.is_empty work) do
    let v = Queue.pop work in
    if v <> root then acc := { !acc with fanout = !acc.fanout + 1 };
    if Hashtbl.mem term_users v then acc := { !acc with reaches_control = true };
    if Hashtbl.mem ret_users v then acc := { !acc with reaches_output = true };
    (match Hashtbl.find_opt phi_succs v with
    | Some cell -> List.iter push !cell
    | None -> ());
    match Hashtbl.find_opt users v with
    | None -> ()
    | Some is ->
      List.iter
        (fun i ->
          acc := merge !acc (direct_sinks i v);
          match I.instr_def i with Some d -> push d | None -> ())
        !is
  done;
  !acc

(* Predicted dominant outcome for a fault in this value, in the spirit of
   SDC-detector placement heuristics. *)
type prediction = Predict_crash | Predict_sdc | Predict_benign

let predict (inf : influence) =
  if inf.reaches_address then Predict_crash
  else if inf.reaches_output || inf.reaches_memory || inf.reaches_control then Predict_sdc
  else Predict_benign

let string_of_prediction = function
  | Predict_crash -> "crash-prone"
  | Predict_sdc -> "SDC-prone"
  | Predict_benign -> "benign-prone"

(* Per-function summary: how many value-producing instructions fall in each
   prediction class. *)
let summarize (fn : I.func) =
  let crash = ref 0 and sdc = ref 0 and benign = ref 0 in
  List.iter
    (fun (b : I.block) ->
      List.iter
        (fun i ->
          match I.instr_def i with
          | Some d -> (
            match predict (analyze fn d) with
            | Predict_crash -> incr crash
            | Predict_sdc -> incr sdc
            | Predict_benign -> incr benign)
          | None -> ())
        b.I.body)
    fn.I.blocks;
  (!crash, !sdc, !benign)
