lib/core/runtime.ml: Array Fault Fi_cost Int64 Refine_machine Refine_mir Refine_support
