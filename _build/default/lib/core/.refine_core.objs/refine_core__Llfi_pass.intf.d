lib/core/llfi_pass.mli: Refine_ir Selection
