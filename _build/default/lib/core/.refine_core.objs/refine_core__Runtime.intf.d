lib/core/runtime.mli: Fault Refine_machine Refine_support
