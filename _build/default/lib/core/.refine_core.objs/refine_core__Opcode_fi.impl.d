lib/core/opcode_fi.ml: Array Fault Fi_cost Int64 List Printf Refine_backend Refine_ir Refine_machine Refine_mir Refine_support Runtime
