lib/core/tool.ml: Fault Fi_cost Int64 List Llfi_pass Pinfi Printf Refine_backend Refine_ir Refine_machine Refine_minic Refine_pass Refine_support Runtime Selection
