lib/core/fi_cost.ml:
