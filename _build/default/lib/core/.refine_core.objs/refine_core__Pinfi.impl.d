lib/core/pinfi.ml: Array Fault Fi_cost Hashtbl Int64 List Refine_backend Refine_machine Refine_mir Refine_support Runtime Selection
