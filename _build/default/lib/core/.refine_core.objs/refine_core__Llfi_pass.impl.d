lib/core/llfi_pass.ml: Hashtbl Int64 List Refine_ir Selection
