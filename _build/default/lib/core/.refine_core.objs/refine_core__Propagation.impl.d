lib/core/propagation.ml: Hashtbl List Queue Refine_ir
