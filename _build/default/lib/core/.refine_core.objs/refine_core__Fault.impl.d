lib/core/fault.ml: Printf Refine_machine
