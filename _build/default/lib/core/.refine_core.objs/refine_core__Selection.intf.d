lib/core/selection.mli: Refine_ir Refine_mir
