lib/core/selection.ml: List Refine_ir Refine_mir
