lib/core/pinfi.mli: Fault Refine_machine Runtime Selection
