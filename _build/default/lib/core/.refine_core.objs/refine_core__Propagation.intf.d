lib/core/propagation.mli: Refine_ir
