lib/core/tool.mli: Fault Refine_backend Refine_ir Refine_machine Refine_support Selection
