lib/core/fault.mli: Refine_machine
