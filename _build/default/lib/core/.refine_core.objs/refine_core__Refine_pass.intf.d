lib/core/refine_pass.mli: Refine_mir Selection
