lib/core/refine_pass.ml: Int64 List Refine_ir Refine_mir Selection
