lib/core/opcode_fi.mli: Fault Refine_backend Refine_machine Refine_mir Refine_support Runtime
