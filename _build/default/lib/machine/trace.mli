(** Execution tracing: a ring buffer of the most recently executed
    instructions, for diagnosing why a run (or an injected fault)
    trapped.  Used by [refinec run --trace]. *)

type entry = { pc : int; instr : Refine_mir.Minstr.t; func : string }

type t = {
  ring : entry option array;
  mutable next : int;
  mutable total : int64;  (** total instructions observed *)
}

val create : ?capacity:int -> unit -> t
(** Default capacity 32 entries. *)

val attach : t -> Exec.t -> unit
(** Installs the tracer via the engine's post-instruction hook; composes
    with an already-installed hook (e.g. PINFI) by chaining to it. *)

val entries : t -> entry list
(** Most recent entries, oldest first. *)

val render : t -> string
