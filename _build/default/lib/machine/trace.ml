(* Execution tracing: a fixed-size ring buffer of the most recently
   executed instructions, attached through the engine's post-instruction
   hook.  Used by `refinec run --trace` to print the tail of a crashed
   run — invaluable when diagnosing why a particular bit flip trapped. *)

module M = Refine_mir.Minstr

type entry = { pc : int; instr : M.t; func : string }

type t = {
  ring : entry option array;
  mutable next : int;
  mutable total : int64;
}

let create ?(capacity = 32) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity <= 0";
  { ring = Array.make capacity None; next = 0; total = 0L }

(* Installs the tracer; composes with an existing hook (e.g. PINFI) by
   chaining to it. *)
let attach (t : t) (eng : Exec.t) =
  let prev = eng.Exec.post_hook in
  let hook (eng : Exec.t) pc instr =
    t.ring.(t.next) <-
      Some { pc; instr; func = eng.Exec.image.Refine_backend.Layout.func_of_pc.(pc) };
    t.next <- (t.next + 1) mod Array.length t.ring;
    t.total <- Int64.add t.total 1L;
    match prev with Some h -> h eng pc instr | None -> ()
  in
  eng.Exec.post_hook <- Some hook

(* Most recent entries, oldest first. *)
let entries (t : t) : entry list =
  let n = Array.length t.ring in
  let out = ref [] in
  for k = 0 to n - 1 do
    match t.ring.((t.next + k) mod n) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  List.rev !out

let render (t : t) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "last %d of %Ld executed instructions:\n" (List.length (entries t)) t.total);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  %6d  [%-12s]  %s\n" e.pc e.func (Refine_mir.Mprinter.to_string e.instr)))
    (entries t);
  Buffer.contents buf
