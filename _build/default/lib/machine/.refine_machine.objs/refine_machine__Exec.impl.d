lib/machine/exec.ml: Array Buffer Bytes Float Hashtbl Int64 List Printf Refine_backend Refine_ir Refine_mir String
