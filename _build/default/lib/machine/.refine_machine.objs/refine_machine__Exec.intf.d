lib/machine/exec.mli: Bytes Hashtbl Refine_backend Refine_ir Refine_mir
