lib/machine/trace.ml: Array Buffer Exec Int64 List Printf Refine_backend Refine_mir
