lib/machine/trace.mli: Exec Refine_mir
