(* Dead-code elimination.

   A value is live if it is (transitively) used by an instruction with side
   effects (store, call), by a terminator, or by a live phi.  Pure
   instructions defining dead values are deleted.  Calls are conservatively
   kept even when their result is unused (they may print or trap). *)

open Ir

let has_side_effects = function
  | Store _ | Call _ -> true
  | Ibinop (_, (Div | Rem), _, _) -> true (* may trap *)
  | Alloca _ -> false
  | _ -> false

let run (fn : func) =
  let live : (value, unit) Hashtbl.t = Hashtbl.create 64 in
  let work = Queue.create () in
  let mark o =
    match o with
    | Var v ->
      if not (Hashtbl.mem live v) then begin
        Hashtbl.add live v ();
        Queue.add v work
      end
    | ICst _ | FCst _ -> ()
  in
  (* map each value to the operands its defining instruction uses *)
  let def_uses : (value, operand list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun b ->
      List.iter (fun p -> Hashtbl.replace def_uses p.pdst (List.map snd p.incoming)) b.phis;
      List.iter
        (fun i ->
          (match instr_def i with
          | Some d -> Hashtbl.replace def_uses d (instr_uses i)
          | None -> ());
          if has_side_effects i then List.iter mark (instr_uses i))
        b.body;
      List.iter mark (term_uses b.term))
    fn.blocks;
  while not (Queue.is_empty work) do
    let v = Queue.pop work in
    match Hashtbl.find_opt def_uses v with
    | Some uses -> List.iter mark uses
    | None -> ()
  done;
  List.iter
    (fun b ->
      b.phis <- List.filter (fun p -> Hashtbl.mem live p.pdst) b.phis;
      b.body <-
        List.filter
          (fun i ->
            has_side_effects i
            || match instr_def i with Some d -> Hashtbl.mem live d | None -> true)
          b.body)
    fn.blocks
