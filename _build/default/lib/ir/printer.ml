(* Human-readable IR listings, in the spirit of the paper's Listing 1a/2a.
   The format is stable so tests can assert on it. *)

open Ir

let string_of_ty = function I64 -> "i64" | F64 -> "f64"

let string_of_operand = function
  | Var v -> Printf.sprintf "v%d" v
  | ICst i -> Int64.to_string i
  | FCst f -> Printf.sprintf "%h" f

let string_of_ibinop = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"

let string_of_fbinop = function Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let string_of_icmp = function
  | Ieq -> "eq" | Ine -> "ne" | Ilt -> "lt" | Ile -> "le" | Igt -> "gt" | Ige -> "ge"

let string_of_fcmp = function
  | Feq -> "oeq" | Fne -> "one" | Flt -> "olt" | Fle -> "ole" | Fgt -> "ogt" | Fge -> "oge"

let string_of_funop = function Fneg -> "fneg" | Fsqrt -> "fsqrt" | Fabs -> "fabs"
let string_of_cast = function Sitofp -> "sitofp" | Fptosi -> "fptosi"

let string_of_instr i =
  let op = string_of_operand in
  match i with
  | Ibinop (d, o, a, b) -> Printf.sprintf "v%d = %s %s, %s" d (string_of_ibinop o) (op a) (op b)
  | Fbinop (d, o, a, b) -> Printf.sprintf "v%d = %s %s, %s" d (string_of_fbinop o) (op a) (op b)
  | Icmp (d, o, a, b) -> Printf.sprintf "v%d = icmp %s %s, %s" d (string_of_icmp o) (op a) (op b)
  | Fcmp (d, o, a, b) -> Printf.sprintf "v%d = fcmp %s %s, %s" d (string_of_fcmp o) (op a) (op b)
  | Funop (d, o, a) -> Printf.sprintf "v%d = %s %s" d (string_of_funop o) (op a)
  | Cast (d, o, a) -> Printf.sprintf "v%d = %s %s" d (string_of_cast o) (op a)
  | Select (d, t, c, a, b) ->
    Printf.sprintf "v%d = select %s %s, %s, %s" d (string_of_ty t) (op c) (op a) (op b)
  | Load (d, t, a) -> Printf.sprintf "v%d = load %s, %s" d (string_of_ty t) (op a)
  | Store (t, v, a) -> Printf.sprintf "store %s %s, %s" (string_of_ty t) (op v) (op a)
  | Alloca (d, n) -> Printf.sprintf "v%d = alloca %d" d n
  | Gep (d, b, ix) -> Printf.sprintf "v%d = gep %s, %s" d (op b) (op ix)
  | Gaddr (d, g) -> Printf.sprintf "v%d = gaddr @%s" d g
  | Call (Some d, t, f, args) ->
    Printf.sprintf "v%d = call %s @%s(%s)" d (string_of_ty t) f
      (String.concat ", " (List.map op args))
  | Call (None, _, f, args) ->
    Printf.sprintf "call void @%s(%s)" f (String.concat ", " (List.map op args))

let string_of_term = function
  | Ret None -> "ret void"
  | Ret (Some o) -> Printf.sprintf "ret %s" (string_of_operand o)
  | Br l -> Printf.sprintf "br L%d" l
  | Cbr (c, a, b) -> Printf.sprintf "cbr %s, L%d, L%d" (string_of_operand c) a b
  | Unreachable -> "unreachable"

let string_of_phi p =
  Printf.sprintf "v%d = phi %s %s" p.pdst (string_of_ty p.pty)
    (String.concat ", "
       (List.map (fun (l, o) -> Printf.sprintf "[L%d: %s]" l (string_of_operand o)) p.incoming))

let string_of_block b =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "L%d:\n" b.lbl);
  List.iter (fun p -> Buffer.add_string buf ("  " ^ string_of_phi p ^ "\n")) b.phis;
  List.iter (fun i -> Buffer.add_string buf ("  " ^ string_of_instr i ^ "\n")) b.body;
  Buffer.add_string buf ("  " ^ string_of_term b.term ^ "\n");
  Buffer.contents buf

let string_of_func f =
  let buf = Buffer.create 1024 in
  let params =
    String.concat ", "
      (List.map (fun (v, t) -> Printf.sprintf "%s v%d" (string_of_ty t) v) f.params)
  in
  let ret = match f.fret with None -> "void" | Some t -> string_of_ty t in
  Buffer.add_string buf (Printf.sprintf "define %s @%s(%s) {\n" ret f.fname params);
  List.iter (fun b -> Buffer.add_string buf (string_of_block b)) f.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let string_of_module m =
  let buf = Buffer.create 4096 in
  List.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "global @%s : %d bytes%s\n" g.gname g.gsize
           (match g.gbytes with None -> "" | Some _ -> " (initialized)")))
    m.globals;
  if m.globals <> [] then Buffer.add_char buf '\n';
  List.iter
    (fun f ->
      Buffer.add_string buf (string_of_func f);
      Buffer.add_char buf '\n')
    m.funcs;
  Buffer.contents buf

(* Static instruction count, used in reports. *)
let count_instrs f =
  List.fold_left (fun acc b -> acc + List.length b.phis + List.length b.body + 1) 0 f.blocks
