(* Runtime library visible to simulated programs ("libc/libm" of the
   platform).  The IR interpreter and the machine simulator both dispatch
   external calls here so their observable behaviour is identical.

   Arguments and results are raw 64-bit register images; each entry knows its
   own typing (used by the MinC type checker and the IR verifier). *)

open Ir

type env = {
  out : Buffer.t; (* program standard output *)
  read_byte : int -> char; (* memory access for print_str *)
  alloc : int -> int; (* heap bump allocation; returns an 8-aligned address *)
  mutable exited : int option; (* set by the [exit] extern *)
}

exception Extern_trap of string

let signature = function
  | "print_int" -> Some ([ I64 ], None)
  | "print_float" | "print_float_full" -> Some ([ F64 ], None)
  | "print_str" -> Some ([ I64; I64 ], None) (* address, length *)
  | "alloc" -> Some ([ I64 ], Some I64)
  | "exit" -> Some ([ I64 ], None)
  | "sin" | "cos" | "tan" | "exp" | "log" | "floor" -> Some ([ F64 ], Some F64)
  | "pow" | "fmin" | "fmax" -> Some ([ F64; F64 ], Some F64)
  (* LLFI-style IR instrumentation callbacks (instruction id, value);
     implemented by the fault-injection runtime, not by this module *)
  | "llfi_inject_i64" -> Some ([ I64; I64 ], Some I64)
  | "llfi_inject_i1" -> Some ([ I64; I64 ], Some I64) (* boolean-valued results *)
  | "llfi_inject_f64" -> Some ([ I64; F64 ], Some F64)
  | _ -> None

let is_extern name = signature name <> None

let f = Int64.float_of_bits
let fb = Int64.bits_of_float

(* Fixed-format float printing.  [print_float] rounds to 6 significant
   digits (typical scientific output; masks low-mantissa corruption, as real
   applications printing "%.6g" do); [print_float_full] prints a full
   round-trip image so every mantissa bit is output-visible. *)
let format_float6 x = Printf.sprintf "%.6g" x
let format_float_full x = Printf.sprintf "%.17g" x

let call (env : env) name (args : int64 array) : int64 =
  let arg i = args.(i) in
  let unary_f g = fb (g (f (arg 0))) in
  let binary_f g = fb (g (f (arg 0)) (f (arg 1))) in
  match name with
  | "print_int" ->
    Buffer.add_string env.out (Int64.to_string (arg 0));
    Buffer.add_char env.out '\n';
    0L
  | "print_float" ->
    Buffer.add_string env.out (format_float6 (f (arg 0)));
    Buffer.add_char env.out '\n';
    0L
  | "print_float_full" ->
    Buffer.add_string env.out (format_float_full (f (arg 0)));
    Buffer.add_char env.out '\n';
    0L
  | "print_str" ->
    let addr = Int64.to_int (arg 0) and len = Int64.to_int (arg 1) in
    if len < 0 || len > 1_000_000 then raise (Extern_trap "print_str: bad length");
    for i = 0 to len - 1 do
      Buffer.add_char env.out (env.read_byte (addr + i))
    done;
    0L
  | "alloc" ->
    let n = Int64.to_int (arg 0) in
    if n < 0 then raise (Extern_trap "alloc: negative size");
    Int64.of_int (env.alloc n)
  | "exit" ->
    env.exited <- Some (Int64.to_int (arg 0));
    0L
  | "sin" -> unary_f sin
  | "cos" -> unary_f cos
  | "tan" -> unary_f tan
  | "exp" -> unary_f exp
  | "log" -> unary_f log
  | "floor" -> unary_f floor
  | "pow" -> binary_f ( ** )
  | "fmin" -> binary_f Float.min
  | "fmax" -> binary_f Float.max
  | _ -> raise (Extern_trap ("unknown extern: " ^ name))
