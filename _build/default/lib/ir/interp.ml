(* Reference interpreter for the IR.

   This is the semantic oracle: the backend + machine simulator must produce
   the same observable behaviour (output, exit code, traps) as this
   interpreter for any well-formed module.  The property tests in
   [test/test_semantics.ml] enforce exactly that, which is what lets us trust
   that fault-free REFINE/LLFI-instrumented binaries behave like the original
   program (the paper's "the FI binary is used unmodified during profiling").

   All values are stored as raw 64-bit images; floating-point operations
   reinterpret bits at use, mirroring the machine's register file. *)

open Ir

exception Trap of string

type outcome = { output : string; exit_code : int; steps : int }

let default_fuel = 200_000_000

(* Shared arithmetic semantics (also used by the machine simulator, so the
   two cannot drift). *)

let mask6 n = Int64.to_int (Int64.logand n 63L)

let eval_ibinop op a b =
  let open Int64 in
  match op with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div ->
    if b = 0L then raise (Trap "integer division by zero")
    else if a = min_int && b = -1L then min_int
    else div a b
  | Rem ->
    if b = 0L then raise (Trap "integer remainder by zero")
    else if a = min_int && b = -1L then 0L
    else rem a b
  | And -> logand a b
  | Or -> logor a b
  | Xor -> logxor a b
  | Shl -> shift_left a (mask6 b)
  | Lshr -> shift_right_logical a (mask6 b)
  | Ashr -> shift_right a (mask6 b)

let eval_fbinop op a b =
  match op with Fadd -> a +. b | Fsub -> a -. b | Fmul -> a *. b | Fdiv -> a /. b

let eval_icmp op (a : int64) (b : int64) =
  let c = Int64.compare a b in
  let r =
    match op with
    | Ieq -> c = 0 | Ine -> c <> 0 | Ilt -> c < 0 | Ile -> c <= 0 | Igt -> c > 0 | Ige -> c >= 0
  in
  if r then 1L else 0L

(* C-style float comparisons: [!=] is true on NaN, the ordered relations are
   false on NaN. *)
let eval_fcmp op (a : float) (b : float) =
  let r =
    match op with
    | Feq -> a = b | Fne -> a <> b | Flt -> a < b | Fle -> a <= b | Fgt -> a > b | Fge -> a >= b
  in
  if r then 1L else 0L

let eval_funop op a =
  match op with Fneg -> -.a | Fsqrt -> sqrt a | Fabs -> Float.abs a

(* Truncation toward zero with saturation; NaN maps to 0.  Defined (not UB)
   so the interpreter and machine agree on every input. *)
let fptosi f =
  if Float.is_nan f then 0L
  else if f >= 9.2233720368547758e18 then Int64.max_int
  else if f <= -9.2233720368547758e18 then Int64.min_int
  else Int64.of_float f

(* ------------------------------------------------------------------ *)

type state = {
  m : modul;
  mem : Bytes.t;
  global_addr : string -> int;
  mutable heap : int;
  mutable sp : int; (* stack pointer for allocas *)
  mutable steps : int;
  fuel : int;
  env : Externs.env;
}

let check_addr _st addr =
  if addr < Memlayout.null_guard || addr + 8 > Memlayout.mem_size then
    raise (Trap (Printf.sprintf "memory access out of bounds: 0x%x" addr))

let load64 st addr =
  check_addr st addr;
  Bytes.get_int64_le st.mem addr

let store64 st addr v =
  check_addr st addr;
  Bytes.set_int64_le st.mem addr v

let tick st =
  st.steps <- st.steps + 1;
  if st.steps > st.fuel then raise (Trap "fuel exhausted")

let f = Int64.float_of_bits
let fb = Int64.bits_of_float

exception Exited

let rec call_function st (fn : func) (args : int64 array) : int64 =
  let frame = Array.make (max 1 fn.vnext) 0L in
  List.iteri (fun i (v, _) -> frame.(v) <- args.(i)) fn.params;
  let saved_sp = st.sp in
  let eval = function Var v -> frame.(v) | ICst i -> i | FCst x -> fb x in
  let rec exec_block (blk : block) (from : label) : int64 =
    (* Parallel phi evaluation: read all incomings before writing any. *)
    let phi_vals =
      List.map
        (fun p ->
          match List.assoc_opt from p.incoming with
          | Some o -> (p.pdst, eval o)
          | None -> raise (Trap (Printf.sprintf "phi in L%d has no edge from L%d" blk.lbl from)))
        blk.phis
    in
    List.iter (fun (d, v) -> frame.(d) <- v) phi_vals;
    if blk.phis <> [] then tick st;
    List.iter (exec_instr) blk.body;
    tick st;
    match blk.term with
    | Ret (Some o) -> eval o
    | Ret None -> 0L
    | Br l -> exec_block (find_block fn l) blk.lbl
    | Cbr (c, a, b) ->
      let target = if eval c <> 0L then a else b in
      exec_block (find_block fn target) blk.lbl
    | Unreachable -> raise (Trap "reached unreachable")
  and exec_instr i =
    tick st;
    match i with
    | Ibinop (d, op, a, b) -> frame.(d) <- eval_ibinop op (eval a) (eval b)
    | Fbinop (d, op, a, b) -> frame.(d) <- fb (eval_fbinop op (f (eval a)) (f (eval b)))
    | Icmp (d, op, a, b) -> frame.(d) <- eval_icmp op (eval a) (eval b)
    | Fcmp (d, op, a, b) -> frame.(d) <- eval_fcmp op (f (eval a)) (f (eval b))
    | Funop (d, op, a) -> frame.(d) <- fb (eval_funop op (f (eval a)))
    | Cast (d, Sitofp, a) -> frame.(d) <- fb (Int64.to_float (eval a))
    | Cast (d, Fptosi, a) -> frame.(d) <- fptosi (f (eval a))
    | Select (d, _, c, a, b) -> frame.(d) <- (if eval c <> 0L then eval a else eval b)
    | Load (d, _, a) -> frame.(d) <- load64 st (Int64.to_int (eval a))
    | Store (_, v, a) -> store64 st (Int64.to_int (eval a)) (eval v)
    | Alloca (d, n) ->
      st.sp <- st.sp - Memlayout.align8 n;
      if st.sp < Memlayout.mem_size - Memlayout.stack_limit then raise (Trap "stack overflow");
      frame.(d) <- Int64.of_int st.sp
    | Gep (d, b, ix) ->
      frame.(d) <- Int64.add (eval b) (Int64.mul 8L (eval ix))
    | Gaddr (d, g) -> frame.(d) <- Int64.of_int (st.global_addr g)
    | Call (d, _, name, args) ->
      let argv = Array.of_list (List.map eval args) in
      let result =
        if Externs.is_extern name then begin
          let r = try Externs.call st.env name argv with Externs.Extern_trap m -> raise (Trap m) in
          if st.env.exited <> None then raise Exited;
          r
        end
        else
          match List.find_opt (fun g -> g.fname = name) st.m.funcs with
          | Some callee -> call_function st callee argv
          | None -> raise (Trap ("call to unknown function " ^ name))
      in
      (match d with Some dv -> frame.(dv) <- result | None -> ())
  in
  let result = exec_block (entry_block fn) (-1) in
  st.sp <- saved_sp;
  result

let run ?(fuel = default_fuel) (m : modul) : outcome =
  let mem = Bytes.make Memlayout.mem_size '\000' in
  let global_addr, heap_base = Memlayout.place_globals m.globals in
  List.iter
    (fun g ->
      match g.gbytes with
      | Some s -> Bytes.blit_string s 0 mem (global_addr g.gname) (String.length s)
      | None -> ())
    m.globals;
  let heap = ref heap_base in
  let env =
    {
      Externs.out = Buffer.create 1024;
      read_byte =
        (fun a ->
          if a < Memlayout.null_guard || a >= Memlayout.mem_size then
            raise (Trap (Printf.sprintf "read_byte out of bounds: 0x%x" a))
          else Bytes.get mem a);
      alloc =
        (fun n ->
          let addr = !heap in
          heap := !heap + Memlayout.align8 n;
          if !heap > Memlayout.mem_size - Memlayout.stack_limit then raise (Trap "out of memory");
          addr);
      exited = None;
    }
  in
  let st =
    { m; mem; global_addr; heap = heap_base; sp = Memlayout.mem_size; steps = 0; fuel; env }
  in
  st.heap <- heap_base;
  let main = try find_func m "main" with Not_found -> raise (Trap "no main function") in
  let code =
    try Int64.to_int (call_function st main [||])
    with Exited -> ( match env.exited with Some c -> c | None -> 0)
  in
  { output = Buffer.contents env.out; exit_code = code; steps = st.steps }
