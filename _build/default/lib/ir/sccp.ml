(* Sparse conditional constant propagation (Wegman–Zadeck).

   Tracks a three-level lattice per SSA value (unknown / constant /
   varying) together with edge executability, so constants propagate
   through phis whose non-constant incoming edges are unreachable — cases
   plain constant folding cannot see.  After the fixpoint, constant values
   replace their uses, conditional branches on constants become jumps, and
   Simplifycfg removes the dead regions. *)

open Ir

type lattice = Top | Const of operand | Bottom

let meet a b =
  match (a, b) with
  | Top, x | x, Top -> x
  | Const x, Const y when x = y -> Const x
  | _ -> Bottom

let run (fn : func) =
  let state : (value, lattice) Hashtbl.t = Hashtbl.create 64 in
  let get v = try Hashtbl.find state v with Not_found -> Top in
  let lat_of = function
    | Var v -> get v
    | (ICst _ | FCst _) as c -> Const c
  in
  (* params vary *)
  List.iter (fun (v, _) -> Hashtbl.replace state v Bottom) fn.params;
  (* users: value -> blocks that must be re-evaluated when it lowers *)
  let users : (value, label list ref) Hashtbl.t = Hashtbl.create 64 in
  let add_user v lbl =
    let cell =
      match Hashtbl.find_opt users v with
      | Some c -> c
      | None ->
        let c = ref [] in
        Hashtbl.add users v c;
        c
    in
    if not (List.mem lbl !cell) then cell := lbl :: !cell
  in
  List.iter
    (fun (b : block) ->
      List.iter
        (fun p -> List.iter (fun (_, o) -> match o with Var v -> add_user v b.lbl | _ -> ()) p.incoming)
        b.phis;
      List.iter
        (fun i ->
          List.iter (fun o -> match o with Var v -> add_user v b.lbl | _ -> ()) (instr_uses i))
        b.body;
      List.iter (fun o -> match o with Var v -> add_user v b.lbl | _ -> ()) (term_uses b.term))
    fn.blocks;
  (* executability *)
  let edge_exec : (label * label, unit) Hashtbl.t = Hashtbl.create 16 in
  let block_exec : (label, unit) Hashtbl.t = Hashtbl.create 16 in
  let block_work = Queue.create () in
  let pending_blocks : (label, unit) Hashtbl.t = Hashtbl.create 16 in
  let schedule lbl =
    if not (Hashtbl.mem pending_blocks lbl) then begin
      Hashtbl.replace pending_blocks lbl ();
      Queue.add lbl block_work
    end
  in
  let mark_edge from target =
    if not (Hashtbl.mem edge_exec (from, target)) then begin
      Hashtbl.replace edge_exec (from, target) ();
      schedule target
    end
  in
  (* lowering a value re-evaluates its user blocks *)
  let lower v l =
    let old = get v in
    let merged = meet old l in
    if merged <> old then begin
      Hashtbl.replace state v merged;
      match Hashtbl.find_opt users v with
      | Some cell -> List.iter schedule !cell
      | None -> ()
    end
  in
  (* evaluate one pure instruction under the current state *)
  let eval_instr (i : instr) =
    match instr_def i with
    | None -> ()
    | Some d -> (
      match i with
      | Load _ | Call _ | Alloca _ | Gaddr _ -> lower d Bottom
      | _ -> (
        (* substitute constant operands, then try folding *)
        let subst o = match lat_of o with Const c -> c | _ -> o in
        let all_known =
          List.for_all (fun o -> match lat_of o with Top -> false | _ -> true) (instr_uses i)
        in
        let any_varying =
          List.exists (fun o -> lat_of o = Bottom) (instr_uses i)
        in
        if not all_known then () (* stay Top: operands may still become constants *)
        else if any_varying then
          (* identities can still fold (x * 0, x & 0, ...) *)
          match Constfold.fold_instr (map_instr_uses subst i) with
          | Some ((ICst _ | FCst _) as c) -> lower d (Const c)
          | _ -> lower d Bottom
        else
          match Constfold.fold_instr (map_instr_uses subst i) with
          | Some ((ICst _ | FCst _) as c) -> lower d (Const c)
          | Some _ | None -> lower d Bottom))
  in
  let eval_phi (b : block) (p : phi) =
    let incoming_lat =
      List.filter_map
        (fun (l, o) -> if Hashtbl.mem edge_exec (l, b.lbl) then Some (lat_of o) else None)
        p.incoming
    in
    match incoming_lat with
    | [] -> () (* no executable edge yet *)
    | l :: rest -> lower p.pdst (List.fold_left meet l rest)
  in
  let eval_term (b : block) =
    match b.term with
    | Br l -> mark_edge b.lbl l
    | Cbr (c, t, e) -> (
      match lat_of c with
      | Const (ICst v) -> mark_edge b.lbl (if v <> 0L then t else e)
      | Const (FCst _ | Var _) | Bottom ->
        mark_edge b.lbl t;
        mark_edge b.lbl e
      | Top -> ())
    | Ret _ | Unreachable -> ()
  in
  let eval_block lbl =
    Hashtbl.replace block_exec lbl ();
    let b = find_block fn lbl in
    List.iter (eval_phi b) b.phis;
    List.iter eval_instr b.body;
    eval_term b
  in
  schedule (entry_block fn).lbl;
  while not (Queue.is_empty block_work) do
    let lbl = Queue.pop block_work in
    Hashtbl.remove pending_blocks lbl;
    eval_block lbl
  done;
  (* ---- apply: substitute constants, fold branches, drop const defs ---- *)
  let subst o = match lat_of o with Const c -> c | _ -> o in
  List.iter
    (fun (b : block) ->
      if Hashtbl.mem block_exec b.lbl then begin
        b.phis <-
          List.filter_map
            (fun p ->
              match get p.pdst with
              | Const _ -> None (* all uses substituted below *)
              | _ ->
                p.incoming <- List.map (fun (l, o) -> (l, subst o)) p.incoming;
                Some p)
            b.phis;
        b.body <-
          List.filter_map
            (fun i ->
              match instr_def i with
              | Some d when (match get d with Const _ -> true | _ -> false) -> (
                (* keep instructions with side effects even if their result
                   is constant *)
                match i with
                | Call _ | Load _ | Store _ -> Some (map_instr_uses subst i)
                | _ -> None)
              | _ -> Some (map_instr_uses subst i))
            b.body;
        b.term <- map_term_uses subst b.term;
        match b.term with
        | Cbr (ICst v, t, e) -> b.term <- Br (if v <> 0L then t else e)
        | _ -> ()
      end)
    fn.blocks
