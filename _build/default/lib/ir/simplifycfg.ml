(* CFG cleanup: removes unreachable blocks (pruning stale phi edges),
   threads trivial forwarding blocks, and merges straight-line block pairs.
   Run after constant folding turns conditional branches into jumps. *)

open Ir

let prune_phis fn =
  let cfg = Cfg.build fn in
  List.iter
    (fun b ->
      let preds = List.sort_uniq compare (Cfg.predecessors cfg b.lbl) in
      List.iter
        (fun p -> p.incoming <- List.filter (fun (l, _) -> List.mem l preds) p.incoming)
        b.phis)
    fn.blocks

let remove_unreachable fn =
  let cfg = Cfg.build fn in
  fn.blocks <- List.filter (fun b -> Cfg.reachable cfg b.lbl) fn.blocks;
  prune_phis fn

(* A block that contains only an unconditional branch (no phis, no body) can
   be bypassed: predecessors jump straight to its target.  Phi edges in the
   target are re-labelled, unless the target already has an edge from the
   predecessor with a different value (that join needs the forwarding
   block). *)
let thread_jumps fn =
  let changed = ref false in
  let entry = (entry_block fn).lbl in
  List.iter
    (fun b ->
      match b with
      | { lbl; phis = []; body = []; term = Br target } when lbl <> entry && target <> lbl ->
        let tblk = find_block fn target in
        let preds_of_target =
          List.concat_map
            (fun p -> List.filter (fun l -> l = lbl) (term_succs p.term) |> List.map (fun _ -> p.lbl))
            fn.blocks
        in
        ignore preds_of_target;
        let rewire_ok pred_lbl =
          (* target phis must not already have a conflicting edge from pred *)
          List.for_all
            (fun (ph : phi) ->
              match (List.assoc_opt pred_lbl ph.incoming, List.assoc_opt lbl ph.incoming) with
              | Some v1, Some v2 -> v1 = v2
              | None, _ -> true
              | Some _, None -> true)
            tblk.phis
        in
        let preds = List.filter (fun p -> List.mem lbl (term_succs p.term)) fn.blocks in
        if preds <> [] && List.for_all (fun p -> rewire_ok p.lbl) preds then begin
          List.iter
            (fun p ->
              let retarget l = if l = lbl then target else l in
              p.term <-
                (match p.term with
                | Br l -> Br (retarget l)
                | Cbr (c, a, bb) -> Cbr (c, retarget a, retarget bb)
                | t -> t);
              (* extend target phis with the new edge *)
              List.iter
                (fun (ph : phi) ->
                  match List.assoc_opt lbl ph.incoming with
                  | Some v ->
                    if not (List.mem_assoc p.lbl ph.incoming) then
                      ph.incoming <- (p.lbl, v) :: ph.incoming
                  | None -> ())
                tblk.phis;
              changed := true)
            preds;
          (* drop the forwarded edge *)
          List.iter
            (fun (ph : phi) -> ph.incoming <- List.remove_assoc lbl ph.incoming)
            tblk.phis
        end
      | _ -> ())
    fn.blocks;
  !changed

(* Merge [a -> b] when a's only successor is b and b's only predecessor is
   a: b's body is appended to a. *)
let merge_pairs fn =
  let changed = ref false in
  let cfg = Cfg.build fn in
  let merged : (label, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun a ->
      if (not (Hashtbl.mem merged a.lbl)) && Cfg.reachable cfg a.lbl then
        match a.term with
        | Br target when target <> a.lbl && not (Hashtbl.mem merged target) -> (
          match Cfg.predecessors cfg target with
          | [ single ] when single = a.lbl ->
            let b = find_block fn target in
            if b.phis = [] then begin
              a.body <- a.body @ b.body;
              a.term <- b.term;
              (* successors of b now flow from a: relabel their phi edges *)
              List.iter
                (fun s ->
                  let sblk = find_block fn s in
                  List.iter
                    (fun (ph : phi) ->
                      ph.incoming <-
                        List.map (fun (l, o) -> ((if l = target then a.lbl else l), o)) ph.incoming)
                    sblk.phis)
                (term_succs b.term);
              Hashtbl.add merged target ();
              changed := true
            end
          | _ -> ())
        | _ -> ())
    fn.blocks;
  if !changed then fn.blocks <- List.filter (fun b -> not (Hashtbl.mem merged b.lbl)) fn.blocks;
  !changed

let run (fn : func) =
  remove_unreachable fn;
  let continue_ = ref true in
  while !continue_ do
    let t = thread_jumps fn in
    if t then remove_unreachable fn;
    let m = merge_pairs fn in
    if m then remove_unreachable fn;
    continue_ := t || m
  done
