(* Loop-invariant code motion.

   Pure, non-trapping instructions in a natural loop whose operands are all
   defined outside the loop are hoisted to a preheader block inserted on the
   sole outside edge into the header.  Loads and trapping divisions are not
   hoisted (a load may depend on in-loop stores; a hoisted trap would fire on
   iterations that never execute). *)

open Ir

let hoistable = function
  | Ibinop (_, (Div | Rem), _, _) -> false
  | Ibinop _ | Fbinop _ | Icmp _ | Fcmp _ | Funop _ | Cast _ | Select _ | Gep _ | Gaddr _ -> true
  | Load _ | Store _ | Alloca _ | Call _ -> false

let run (fn : func) =
  let cfg = Cfg.build fn in
  let loops = Cfg.natural_loops cfg in
  (* Process outer loops first (larger bodies). *)
  let loops = List.sort (fun a b -> compare (List.length b.Cfg.body) (List.length a.Cfg.body)) loops in
  let next_label = ref (List.fold_left (fun acc b -> max acc b.lbl) 0 fn.blocks + 1) in
  List.iter
    (fun { Cfg.header; body } ->
      (* definitions inside the loop *)
      let defs_inside = Hashtbl.create 32 in
      List.iter
        (fun l ->
          let b = find_block fn l in
          List.iter (fun p -> Hashtbl.replace defs_inside p.pdst ()) b.phis;
          List.iter
            (fun i -> match instr_def i with Some d -> Hashtbl.replace defs_inside d () | None -> ())
            b.body)
        body;
      let invariant_op = function
        | Var v -> not (Hashtbl.mem defs_inside v)
        | ICst _ | FCst _ -> true
      in
      (* collect hoistable instructions whose operands are loop-invariant;
         iterate to a fixpoint so chains hoist together *)
      let hoisted = ref [] in
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun l ->
            let b = find_block fn l in
            let keep, lift =
              List.partition
                (fun i ->
                  not (hoistable i && List.for_all invariant_op (instr_uses i)))
                b.body
            in
            if lift <> [] then begin
              b.body <- keep;
              List.iter
                (fun i ->
                  (match instr_def i with
                  | Some d -> Hashtbl.remove defs_inside d
                  | None -> ());
                  hoisted := !hoisted @ [ i ])
                lift;
              changed := true
            end)
            body
      done;
      if !hoisted <> [] then begin
        (* build/locate the preheader: outside predecessors of the header *)
        let outside_preds =
          List.filter (fun p -> not (List.mem p body)) (Cfg.predecessors cfg header)
        in
        match outside_preds with
        | [] -> (* dead loop; put instructions back in the header *)
          let h = find_block fn header in
          h.body <- !hoisted @ h.body
        | preds ->
          let pre = { lbl = !next_label; phis = []; body = !hoisted; term = Br header } in
          incr next_label;
          fn.blocks <- fn.blocks @ [ pre ];
          let hblk = find_block fn header in
          (* redirect outside predecessors to the preheader *)
          List.iter
            (fun plbl ->
              let p = find_block fn plbl in
              let retarget l = if l = header then pre.lbl else l in
              p.term <-
                (match p.term with
                | Br l -> Br (retarget l)
                | Cbr (c, a, b) -> Cbr (c, retarget a, retarget b)
                | t -> t))
            preds;
          (* split header phis: outside edges move to new phis in the
             preheader, header keeps one edge from the preheader *)
          List.iter
            (fun (ph : phi) ->
              let outside, inside =
                List.partition (fun (l, _) -> List.mem l preds) ph.incoming
              in
              match outside with
              | [] -> ()
              | [ (_, single) ] -> ph.incoming <- (pre.lbl, single) :: inside
              | _ ->
                let d = fn.vnext in
                fn.vnext <- d + 1;
                Hashtbl.add fn.vtypes d ph.pty;
                let newphi =
                  { pdst = d; pty = ph.pty; incoming = outside }
                in
                pre.phis <- pre.phis @ [ newphi ];
                ph.incoming <- (pre.lbl, Var d) :: inside)
            hblk.phis
      end)
    loops
