(* Memory map shared by the IR reference interpreter and the machine
   simulator, so that a program computes identical addresses in both — a
   prerequisite for the semantic-preservation property tests.

     [0, null_guard)            unmapped: dereferences trap (null pointers)
     [globals_base, heap_base)  module globals, 8-aligned
     [heap_base, stack floor)   bump-allocated heap (the [alloc] extern)
     (stack floor, mem_size)    stack, grows downward from [mem_size]
*)

let mem_size = 8 * 1024 * 1024
let null_guard = 4096
let globals_base = null_guard
let stack_limit = 1024 * 1024 (* maximum stack depth before overflow trap *)

let align8 n = (n + 7) land lnot 7

(* Assign addresses to globals in declaration order.  Returns the lookup
   function and the first free (heap base) address. *)
let place_globals globals =
  let tbl = Hashtbl.create 16 in
  let next = ref globals_base in
  List.iter
    (fun (g : Ir.global) ->
      Hashtbl.replace tbl g.gname !next;
      next := !next + align8 (max 8 g.gsize))
    globals;
  let lookup name =
    match Hashtbl.find_opt tbl name with
    | Some a -> a
    | None -> invalid_arg ("Memlayout: unknown global " ^ name)
  in
  (lookup, !next)
