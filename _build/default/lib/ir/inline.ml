(* Function inlining.

   Small non-recursive callees are cloned into their call sites: parameters
   substitute to argument operands, cloned returns branch to the
   continuation block, and the call's result becomes a phi over the cloned
   return values.  Cloned allocas are hoisted to the caller's entry block
   (they are static slots, as after LLVM's inliner).

   Inlining matters to the fault-injection study beyond performance: it
   removes most dynamic call/ret instructions, giving the optimized
   binaries the low call density of the paper's -O3 builds — without it,
   the call/ret handling differences between backend-level and
   binary-level injection get amplified far beyond realistic proportions. *)

open Ir

let size_of (fn : func) =
  List.fold_left (fun acc b -> acc + List.length b.phis + List.length b.body + 1) 0 fn.blocks

let is_self_recursive (fn : func) =
  List.exists
    (fun b -> List.exists (function Call (_, _, n, _) -> n = fn.fname | _ -> false) b.body)
    fn.blocks

let default_threshold = 60

(* Clone [callee] into [caller], replacing the call instruction.
   [head_term_target] wiring:
     head block (original block up to the call)      -> Br entry-clone
     cloned Ret o                                    -> Br cont, phi edge o
     cont block (rest of the original block + term)  -> phi defines call dst *)
let inline_call (caller : func) (callee : func) ~(at_block : block)
    ~(before : instr list) ~(call_dst : value option) ~(args : operand list)
    ~(after : instr list) ~(orig_term : terminator) ~fresh_label =
  (* value renaming: callee value -> caller operand (params) or fresh value *)
  let vmap : (value, operand) Hashtbl.t = Hashtbl.create 32 in
  List.iter2 (fun (p, _) a -> Hashtbl.replace vmap p a) callee.params args;
  let fresh_value ty =
    let v = caller.vnext in
    caller.vnext <- v + 1;
    Hashtbl.add caller.vtypes v ty;
    v
  in
  let map_def v =
    match Hashtbl.find_opt vmap v with
    | Some (Var v') -> v'
    | Some _ | None ->
      let v' = fresh_value (Hashtbl.find callee.vtypes v) in
      Hashtbl.replace vmap v (Var v');
      v'
  in
  (* pre-register every definition so forward references (loops) resolve *)
  List.iter
    (fun (b : block) ->
      List.iter (fun p -> ignore (map_def p.pdst)) b.phis;
      List.iter
        (fun i -> match instr_def i with Some d -> ignore (map_def d) | None -> ())
        b.body)
    callee.blocks;
  let map_use o =
    match o with
    | Var v -> (
      match Hashtbl.find_opt vmap v with
      | Some o' -> o'
      | None -> o (* impossible for well-formed SSA *))
    | _ -> o
  in
  let def_of v = match Hashtbl.find vmap v with Var v' -> v' | _ -> assert false in
  (* label renaming *)
  let lmap : (label, label) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (b : block) -> Hashtbl.replace lmap b.lbl (fresh_label ())) callee.blocks;
  let map_lbl l = Hashtbl.find lmap l in
  let cont_lbl = fresh_label () in
  (* clone blocks *)
  let ret_edges = ref [] in
  let hoisted_allocas = ref [] in
  let cloned =
    List.map
      (fun (b : block) ->
        let phis =
          List.map
            (fun p ->
              {
                pdst = def_of p.pdst;
                pty = p.pty;
                incoming = List.map (fun (l, o) -> (map_lbl l, map_use o)) p.incoming;
              })
            b.phis
        in
        let body =
          List.filter_map
            (fun i ->
              match i with
              | Alloca (d, n) ->
                (* hoist to the caller's entry: static stack slot *)
                hoisted_allocas := Alloca (def_of d, n) :: !hoisted_allocas;
                None
              | _ ->
                let i = map_instr_uses map_use i in
                let i =
                  match instr_def i with
                  | Some d -> (
                    (* rewrite the defined value *)
                    match i with
                    | Ibinop (_, op, a, b2) -> Ibinop (def_of d, op, a, b2)
                    | Fbinop (_, op, a, b2) -> Fbinop (def_of d, op, a, b2)
                    | Icmp (_, op, a, b2) -> Icmp (def_of d, op, a, b2)
                    | Fcmp (_, op, a, b2) -> Fcmp (def_of d, op, a, b2)
                    | Funop (_, op, a) -> Funop (def_of d, op, a)
                    | Cast (_, op, a) -> Cast (def_of d, op, a)
                    | Select (_, t, c, a, b2) -> Select (def_of d, t, c, a, b2)
                    | Load (_, t, a) -> Load (def_of d, t, a)
                    | Gep (_, a, ix) -> Gep (def_of d, a, ix)
                    | Gaddr (_, g) -> Gaddr (def_of d, g)
                    | Call (_, t, n, a) -> Call (Some (def_of d), t, n, a)
                    | Alloca _ | Store _ -> i)
                  | None -> i
                in
                Some i)
            b.body
        in
        let term =
          match b.term with
          | Ret o ->
            ret_edges := (map_lbl b.lbl, Option.map map_use o) :: !ret_edges;
            Br cont_lbl
          | Br l -> Br (map_lbl l)
          | Cbr (c, t, e) -> Cbr (map_use c, map_lbl t, map_lbl e)
          | Unreachable -> Unreachable
        in
        { lbl = map_lbl b.lbl; phis; body; term })
      callee.blocks
  in
  (* continuation block: phi for the return value + the rest of the body *)
  let cont_phis =
    match call_dst with
    | Some d ->
      let ty = Hashtbl.find caller.vtypes d in
      let incoming =
        List.map
          (fun (l, o) ->
            match o with
            | Some o -> (l, o)
            | None -> (l, match ty with I64 -> ICst 0L | F64 -> FCst 0.0))
          !ret_edges
      in
      [ { pdst = d; pty = ty; incoming } ]
    | None -> []
  in
  let cont = { lbl = cont_lbl; phis = cont_phis; body = after; term = orig_term } in
  (* head: original block keeps its label, branches into the clone *)
  at_block.body <- before;
  at_block.term <- Br (map_lbl (entry_block callee).lbl);
  (* successors' phi edges that referenced at_block now come from cont *)
  List.iter
    (fun (b : block) ->
      List.iter
        (fun p ->
          p.incoming <-
            List.map
              (fun (l, o) -> ((if l = at_block.lbl then cont_lbl else l), o))
              p.incoming)
        b.phis)
    caller.blocks;
  (* entry gets the hoisted allocas *)
  let entry = entry_block caller in
  entry.body <- !hoisted_allocas @ entry.body;
  caller.blocks <- caller.blocks @ cloned @ [ cont ]

(* returns the number of call sites inlined *)
let run ?(threshold = default_threshold) (m : modul) : int =
  let inlined = ref 0 in
  let inlinable = Hashtbl.create 16 in
  List.iter
    (fun fn ->
      if fn.fname <> "main" && (not (is_self_recursive fn)) && size_of fn <= threshold then
        Hashtbl.replace inlinable fn.fname fn)
    m.funcs;
  (* avoid mutual recursion blow-up: an inlinable callee's own calls are
     only inlined if they were processed before it — process in dependency
     rounds with a hard cap *)
  List.iter
    (fun caller ->
      let next_label =
        ref (List.fold_left (fun acc b -> max acc b.lbl) 0 caller.blocks + 1)
      in
      let fresh_label () =
        let l = !next_label in
        incr next_label;
        l
      in
      (* one site per iteration; the cap bounds pathological nested
         expansion (e.g. mutually recursive small functions) *)
      let sites = ref 0 in
      let changed = ref true in
      while !changed && !sites < 200 do
        changed := false;
        incr sites;
        let rec find_site = function
          | [] -> None
          | (b : block) :: rest -> (
            let rec split before = function
              | [] -> None
              | Call (d, _, name, args) :: after
                when Hashtbl.mem inlinable name && name <> caller.fname ->
                Some (b, List.rev before, d, name, args, after)
              | i :: after -> split (i :: before) after
            in
            match split [] b.body with Some s -> Some s | None -> find_site rest)
        in
        match find_site caller.blocks with
        | Some (at_block, before, call_dst, name, args, after) ->
          let callee = Hashtbl.find inlinable name in
          let orig_term = at_block.term in
          inline_call caller callee ~at_block ~before ~call_dst ~args ~after ~orig_term
            ~fresh_label;
          incr inlined;
          changed := true
        | None -> ()
      done)
    m.funcs;
  !inlined
