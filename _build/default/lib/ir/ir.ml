(* The intermediate representation.

   This is the analogue of the LLVM IR in the paper (§3.2): a RISC-like,
   load/store, SSA-form representation with an unbounded supply of virtual
   registers ("values").  Every first-class value is 64 bits wide — either an
   integer/pointer ([I64]) or an IEEE-754 double ([F64]) — which matches the
   paper's fault model of whole-register bit flips and keeps the memory model
   uniform (every load/store moves 8 bytes).

   IR-level fault injection (the LLFI pass) operates on this representation
   and therefore cannot see anything the backend introduces later: function
   prologues/epilogues, register spills/reloads, flag writes.  That asymmetry
   is the core phenomenon the paper studies, so the IR deliberately contains
   no such instructions. *)

type ty = I64 | F64

type value = int
(* SSA value id, unique within a function. *)

type label = int
(* Basic block id, unique within a function. *)

type operand =
  | Var of value
  | ICst of int64
  | FCst of float

type ibinop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Lshr | Ashr
type fbinop = Fadd | Fsub | Fmul | Fdiv
type icmp = Ieq | Ine | Ilt | Ile | Igt | Ige
type fcmp = Feq | Fne | Flt | Fle | Fgt | Fge
type funop = Fneg | Fsqrt | Fabs
type cast = Sitofp | Fptosi

type instr =
  | Ibinop of value * ibinop * operand * operand
  | Fbinop of value * fbinop * operand * operand
  | Icmp of value * icmp * operand * operand (* result: i64, 0 or 1 *)
  | Fcmp of value * fcmp * operand * operand
  | Funop of value * funop * operand
  | Cast of value * cast * operand
  | Select of value * ty * operand * operand * operand (* cond, if-true, if-false *)
  | Load of value * ty * operand (* address *)
  | Store of ty * operand * operand (* value, address *)
  | Alloca of value * int (* size in bytes; result is the address *)
  | Gep of value * operand * operand (* base, index; address = base + 8*index *)
  | Gaddr of value * string (* address of a module global *)
  | Call of value option * ty * string * operand list
      (* [Call (Some d, ty, f, args)] binds the result; [ty] is the result
         type (ignored when the destination is [None]). *)

type terminator =
  | Ret of operand option
  | Br of label
  | Cbr of operand * label * label (* nonzero -> first target *)
  | Unreachable

type phi = { pdst : value; pty : ty; mutable incoming : (label * operand) list }

type block = {
  lbl : label;
  mutable phis : phi list;
  mutable body : instr list;
  mutable term : terminator;
}

type func = {
  fname : string;
  params : (value * ty) list;
  fret : ty option;
  mutable blocks : block list; (* entry block first *)
  mutable vnext : value;
  vtypes : (value, ty) Hashtbl.t;
}

type global = {
  gname : string;
  gsize : int; (* bytes *)
  gbytes : string option; (* optional initializer, length <= gsize *)
}

type modul = { globals : global list; funcs : func list }

(* ------------------------------------------------------------------ *)
(* Accessors *)

let value_ty f v =
  match Hashtbl.find_opt f.vtypes v with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Ir.value_ty: unknown value v%d in %s" v f.fname)

let operand_ty f = function
  | Var v -> value_ty f v
  | ICst _ -> I64
  | FCst _ -> F64

let instr_def = function
  | Ibinop (d, _, _, _)
  | Fbinop (d, _, _, _)
  | Icmp (d, _, _, _)
  | Fcmp (d, _, _, _)
  | Funop (d, _, _)
  | Cast (d, _, _)
  | Select (d, _, _, _, _)
  | Load (d, _, _)
  | Alloca (d, _)
  | Gep (d, _, _)
  | Gaddr (d, _) -> Some d
  | Call (d, _, _, _) -> d
  | Store _ -> None

let instr_uses = function
  | Ibinop (_, _, a, b) | Fbinop (_, _, a, b) | Icmp (_, _, a, b) | Fcmp (_, _, a, b) ->
    [ a; b ]
  | Funop (_, _, a) | Cast (_, _, a) | Load (_, _, a) -> [ a ]
  | Alloca _ | Gaddr _ -> []
  | Select (_, _, c, a, b) -> [ c; a; b ]
  | Store (_, v, a) -> [ v; a ]
  | Gep (_, b, i) -> [ b; i ]
  | Call (_, _, _, args) -> args

let term_uses = function
  | Ret (Some o) -> [ o ]
  | Ret None | Br _ | Unreachable -> []
  | Cbr (c, _, _) -> [ c ]

let term_succs = function
  | Ret _ | Unreachable -> []
  | Br l -> [ l ]
  | Cbr (_, a, b) -> if a = b then [ a ] else [ a; b ]

(* Rewrite every operand of an instruction with [f]. *)
let map_instr_uses f = function
  | Ibinop (d, op, a, b) -> Ibinop (d, op, f a, f b)
  | Fbinop (d, op, a, b) -> Fbinop (d, op, f a, f b)
  | Icmp (d, op, a, b) -> Icmp (d, op, f a, f b)
  | Fcmp (d, op, a, b) -> Fcmp (d, op, f a, f b)
  | Funop (d, op, a) -> Funop (d, op, f a)
  | Cast (d, op, a) -> Cast (d, op, f a)
  | Select (d, t, c, a, b) -> Select (d, t, f c, f a, f b)
  | Load (d, t, a) -> Load (d, t, f a)
  | Store (t, v, a) -> Store (t, f v, f a)
  | Alloca (d, n) -> Alloca (d, n)
  | Gaddr (d, g) -> Gaddr (d, g)
  | Gep (d, b, i) -> Gep (d, f b, f i)
  | Call (d, t, name, args) -> Call (d, t, name, List.map f args)

let map_term_uses f = function
  | Ret (Some o) -> Ret (Some (f o))
  | Ret None -> Ret None
  | Br l -> Br l
  | Cbr (c, a, b) -> Cbr (f c, a, b)
  | Unreachable -> Unreachable

let find_block f lbl =
  match List.find_opt (fun b -> b.lbl = lbl) f.blocks with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Ir.find_block: no block L%d in %s" lbl f.fname)

let entry_block f =
  match f.blocks with
  | b :: _ -> b
  | [] -> invalid_arg (Printf.sprintf "Ir.entry_block: %s has no blocks" f.fname)

let find_func m name =
  match List.find_opt (fun f -> f.fname = name) m.funcs with
  | Some f -> f
  | None -> raise Not_found
