(* Local memory optimization: store-to-load forwarding and dead-store
   elimination within basic blocks.

   Addresses are compared as SSA operands — two occurrences of the same
   value are provably the same address, different values may alias.  The
   pass is therefore conservative:

   - forwarding: a load from the operand of the latest store to that same
     operand yields the stored value; a store to a *different* operand
     kills all available entries (it may alias them), and calls kill
     everything (the callee may write);
   - dead stores: a store to A followed by another store to A with no
     intervening load or call is dead (stores never read; only loads and
     calls observe memory).

   Replacements are collected function-wide and applied in a final rewrite:
   a forwarded load's value may be used in other blocks. *)

open Ir

let run (fn : func) =
  (* function-level replacement map and per-(block,index) deadness *)
  let repl : (value, operand) Hashtbl.t = Hashtbl.create 16 in
  let rec chase o =
    match o with
    | Var v -> ( match Hashtbl.find_opt repl v with Some o' -> chase o' | None -> o)
    | _ -> o
  in
  let new_bodies =
    List.map
      (fun (b : block) ->
        let avail : (operand, operand) Hashtbl.t = Hashtbl.create 8 in
        let pending : (operand, int) Hashtbl.t = Hashtbl.create 8 in
        let body = Array.of_list b.body in
        let dead = Hashtbl.create 8 in
        Array.iteri
          (fun idx i ->
            (* resolve operands through earlier forwardings before keying *)
            let i = map_instr_uses chase i in
            match i with
            | Store (_, v, addr) ->
              (match Hashtbl.find_opt pending addr with
              | Some j -> Hashtbl.replace dead j ()
              | None -> ());
              Hashtbl.reset avail;
              Hashtbl.replace avail addr v;
              Hashtbl.replace pending addr idx
            | Load (d, _, addr) -> (
              Hashtbl.reset pending;
              match Hashtbl.find_opt avail addr with
              | Some v ->
                Hashtbl.replace repl d (chase v);
                Hashtbl.replace dead idx ()
              | None -> Hashtbl.replace avail addr (Var d))
            | Call _ ->
              Hashtbl.reset avail;
              Hashtbl.reset pending
            | _ -> ())
          body;
        (b, body, dead))
      fn.blocks
  in
  (* final rewrite: drop dead instructions, chase every use everywhere *)
  List.iter
    (fun ((b : block), body, dead) ->
      b.body <-
        Array.to_list body
        |> List.filteri (fun idx _ -> not (Hashtbl.mem dead idx))
        |> List.map (map_instr_uses chase);
      b.term <- map_term_uses chase b.term;
      List.iter
        (fun (p : phi) -> p.incoming <- List.map (fun (l, o) -> (l, chase o)) p.incoming)
        b.phis)
    new_bodies
