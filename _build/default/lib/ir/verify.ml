(* IR well-formedness checks, run between passes in tests and by the
   pipeline in debug mode.  Catches the classic SSA bugs: double definition,
   use before definition, phi/predecessor mismatches and type errors. *)

open Ir

exception Invalid of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let check_func (m : modul) (fn : func) =
  (* --- block structure first: CFG construction needs resolvable targets *)
  let labels = Hashtbl.create 16 in
  List.iter
    (fun b ->
      if Hashtbl.mem labels b.lbl then fail "%s: duplicate label L%d" fn.fname b.lbl;
      Hashtbl.add labels b.lbl ())
    fn.blocks;
  List.iter
    (fun b ->
      List.iter
        (fun s -> if not (Hashtbl.mem labels s) then fail "%s: branch to missing L%d" fn.fname s)
        (term_succs b.term))
    fn.blocks;
  let cfg = Cfg.build fn in
  (* --- single assignment and definition map: value -> defining label *)
  let def_block : (value, label) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (v, _) -> Hashtbl.replace def_block v (-1) (* params: pseudo-entry *)) fn.params;
  let define lbl v =
    if Hashtbl.mem def_block v then fail "%s: v%d defined twice" fn.fname v;
    if not (Hashtbl.mem fn.vtypes v) then fail "%s: v%d has no recorded type" fn.fname v;
    Hashtbl.replace def_block v lbl
  in
  List.iter
    (fun b ->
      List.iter (fun p -> define b.lbl p.pdst) b.phis;
      List.iter (fun i -> match instr_def i with Some v -> define b.lbl v | None -> ()) b.body)
    fn.blocks;
  if (entry_block fn).phis <> [] then fail "%s: entry block has phis" fn.fname;
  (* --- operand type checking *)
  let ty_of = operand_ty fn in
  let expect what want got =
    if want <> got then
      fail "%s: %s expects %s, got %s" fn.fname what (Printer.string_of_ty want)
        (Printer.string_of_ty got)
  in
  let check_instr i =
    match i with
    | Ibinop (d, _, a, b) ->
      expect "ibinop lhs" I64 (ty_of a); expect "ibinop rhs" I64 (ty_of b);
      expect "ibinop dst" I64 (value_ty fn d)
    | Fbinop (d, _, a, b) ->
      expect "fbinop lhs" F64 (ty_of a); expect "fbinop rhs" F64 (ty_of b);
      expect "fbinop dst" F64 (value_ty fn d)
    | Icmp (d, _, a, b) ->
      expect "icmp lhs" I64 (ty_of a); expect "icmp rhs" I64 (ty_of b);
      expect "icmp dst" I64 (value_ty fn d)
    | Fcmp (d, _, a, b) ->
      expect "fcmp lhs" F64 (ty_of a); expect "fcmp rhs" F64 (ty_of b);
      expect "fcmp dst" I64 (value_ty fn d)
    | Funop (d, _, a) -> expect "funop src" F64 (ty_of a); expect "funop dst" F64 (value_ty fn d)
    | Cast (d, Sitofp, a) -> expect "sitofp src" I64 (ty_of a); expect "sitofp dst" F64 (value_ty fn d)
    | Cast (d, Fptosi, a) -> expect "fptosi src" F64 (ty_of a); expect "fptosi dst" I64 (value_ty fn d)
    | Select (d, t, c, a, b) ->
      expect "select cond" I64 (ty_of c); expect "select lhs" t (ty_of a);
      expect "select rhs" t (ty_of b); expect "select dst" t (value_ty fn d)
    | Load (d, t, a) -> expect "load addr" I64 (ty_of a); expect "load dst" t (value_ty fn d)
    | Store (t, v, a) -> expect "store value" t (ty_of v); expect "store addr" I64 (ty_of a)
    | Alloca (d, n) ->
      if n <= 0 then fail "%s: alloca of %d bytes" fn.fname n;
      expect "alloca dst" I64 (value_ty fn d)
    | Gep (d, b, ix) ->
      expect "gep base" I64 (ty_of b); expect "gep index" I64 (ty_of ix);
      expect "gep dst" I64 (value_ty fn d)
    | Gaddr (d, g) ->
      if not (List.exists (fun gl -> gl.gname = g) m.globals) then
        fail "%s: gaddr of unknown global @%s" fn.fname g;
      expect "gaddr dst" I64 (value_ty fn d)
    | Call (d, rty, name, args) -> (
      let sigs =
        match Externs.signature name with
        | Some (ats, rt) -> Some (ats, rt)
        | None -> (
          match List.find_opt (fun g -> g.fname = name) m.funcs with
          | Some g -> Some (List.map snd g.params, g.fret)
          | None -> None)
      in
      match sigs with
      | None -> fail "%s: call to unknown function @%s" fn.fname name
      | Some (ats, rt) ->
        if List.length ats <> List.length args then
          fail "%s: call @%s arity %d, expected %d" fn.fname name (List.length args)
            (List.length ats);
        List.iteri (fun i (want, a) -> expect (Printf.sprintf "call @%s arg %d" name i) want (ty_of a))
          (List.combine ats args);
        (match (d, rt) with
        | Some dv, Some want ->
          expect ("call @" ^ name ^ " result") want (value_ty fn dv);
          if rty <> want then fail "%s: call @%s annotated %s" fn.fname name (Printer.string_of_ty rty)
        | Some _, None -> fail "%s: call @%s binds void result" fn.fname name
        | None, _ -> ()))
  in
  List.iter (fun b -> List.iter check_instr b.body) fn.blocks;
  (* --- phi incoming lists match predecessors, types agree *)
  List.iter
    (fun b ->
      if Cfg.reachable cfg b.lbl then begin
        let preds = List.sort_uniq compare (Cfg.predecessors cfg b.lbl) in
        List.iter
          (fun p ->
            let ins = List.sort_uniq compare (List.map fst p.incoming) in
            if ins <> preds then
              fail "%s: phi v%d in L%d has incoming %s but preds %s" fn.fname p.pdst b.lbl
                (String.concat "," (List.map string_of_int ins))
                (String.concat "," (List.map string_of_int preds));
            List.iter (fun (_, o) -> expect "phi incoming" p.pty (ty_of o)) p.incoming)
          b.phis
      end)
    fn.blocks;
  (* --- return types *)
  List.iter
    (fun b ->
      match (b.term, fn.fret) with
      | Ret (Some o), Some t -> expect "return value" t (ty_of o)
      | Ret (Some _), None -> fail "%s: returns a value from void function" fn.fname
      | Ret None, Some _ ->
        if Cfg.reachable cfg b.lbl then fail "%s: missing return value" fn.fname
      | _ -> ())
    fn.blocks;
  (* --- SSA dominance: every use is dominated by its definition *)
  let check_use ~user_lbl ?(at_end_of = None) o =
    match o with
    | Var v -> (
      match Hashtbl.find_opt def_block v with
      | None -> fail "%s: use of undefined v%d in L%d" fn.fname v user_lbl
      | Some (-1) -> () (* parameter *)
      | Some dl ->
        let use_lbl = match at_end_of with Some l -> l | None -> user_lbl in
        if Cfg.reachable cfg use_lbl && Cfg.reachable cfg dl then
          if not (Cfg.dominates cfg dl use_lbl) then
            fail "%s: v%d (def L%d) does not dominate use in L%d" fn.fname v dl use_lbl)
    | ICst _ | FCst _ -> ()
  in
  (* Block-local ordering: a value defined later in the same block must not
     be used earlier.  Track position of defs within each block. *)
  List.iter
    (fun b ->
      let seen = Hashtbl.create 16 in
      List.iter (fun p -> Hashtbl.replace seen p.pdst ()) b.phis;
      List.iter
        (fun i ->
          List.iter
            (fun o ->
              match o with
              | Var v when Hashtbl.find_opt def_block v = Some b.lbl && not (Hashtbl.mem seen v)
                -> fail "%s: v%d used before its definition in L%d" fn.fname v b.lbl
              | _ -> check_use ~user_lbl:b.lbl o)
            (instr_uses i);
          (match instr_def i with Some v -> Hashtbl.replace seen v () | None -> ()))
        b.body;
      List.iter (fun o -> check_use ~user_lbl:b.lbl o) (term_uses b.term);
      (* phi operands must dominate the end of the incoming predecessor *)
      List.iter
        (fun p ->
          List.iter (fun (l, o) -> check_use ~user_lbl:b.lbl ~at_end_of:(Some l) o) p.incoming)
        b.phis)
    fn.blocks

let check_module (m : modul) =
  let names = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem names f.fname then fail "duplicate function @%s" f.fname;
      if Externs.is_extern f.fname then fail "@%s shadows an extern" f.fname;
      Hashtbl.add names f.fname ())
    m.funcs;
  let gnames = Hashtbl.create 16 in
  List.iter
    (fun g ->
      if Hashtbl.mem gnames g.gname then fail "duplicate global @%s" g.gname;
      (match g.gbytes with
      | Some s when String.length s > g.gsize -> fail "global @%s initializer too large" g.gname
      | _ -> ());
      Hashtbl.add gnames g.gname ())
    m.globals;
  List.iter (check_func m) m.funcs
