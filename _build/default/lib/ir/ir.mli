(** The intermediate representation — the analogue of the LLVM IR in the
    paper (§3.2): a RISC-like, load/store, SSA-form representation with an
    unbounded supply of virtual registers ("values").

    Every first-class value is 64 bits wide: an integer/pointer ([I64]) or
    an IEEE-754 double ([F64]).  IR-level fault injection (the LLFI pass)
    operates here and therefore cannot see anything the backend introduces
    later — function prologues/epilogues, register spills/reloads, flag
    writes.  That asymmetry is the core phenomenon the paper studies, so
    the IR deliberately contains no such instructions. *)

type ty = I64 | F64

type value = int
(** SSA value id, unique within a function. *)

type label = int
(** Basic block id, unique within a function. *)

type operand =
  | Var of value
  | ICst of int64
  | FCst of float

type ibinop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Lshr | Ashr
type fbinop = Fadd | Fsub | Fmul | Fdiv

type icmp = Ieq | Ine | Ilt | Ile | Igt | Ige
(** Signed comparisons; results are [I64] 0/1. *)

type fcmp = Feq | Fne | Flt | Fle | Fgt | Fge
(** C-style: [Fne] is true on NaN, the rest are ordered. *)

type funop = Fneg | Fsqrt | Fabs
type cast = Sitofp | Fptosi

type instr =
  | Ibinop of value * ibinop * operand * operand
  | Fbinop of value * fbinop * operand * operand
  | Icmp of value * icmp * operand * operand
  | Fcmp of value * fcmp * operand * operand
  | Funop of value * funop * operand
  | Cast of value * cast * operand
  | Select of value * ty * operand * operand * operand
      (** condition (nonzero = first), then-value, else-value *)
  | Load of value * ty * operand  (** destination, type, address *)
  | Store of ty * operand * operand  (** type, value, address *)
  | Alloca of value * int  (** stack slot of n bytes; result is its address *)
  | Gep of value * operand * operand  (** address = base + 8 * index *)
  | Gaddr of value * string  (** address of a module global *)
  | Call of value option * ty * string * operand list
      (** optional result (with its type), callee name, arguments *)

type terminator =
  | Ret of operand option
  | Br of label
  | Cbr of operand * label * label  (** nonzero -> first target *)
  | Unreachable

type phi = { pdst : value; pty : ty; mutable incoming : (label * operand) list }

type block = {
  lbl : label;
  mutable phis : phi list;
  mutable body : instr list;
  mutable term : terminator;
}

type func = {
  fname : string;
  params : (value * ty) list;
  fret : ty option;
  mutable blocks : block list;  (** entry block first *)
  mutable vnext : value;  (** next fresh value id *)
  vtypes : (value, ty) Hashtbl.t;
}

type global = {
  gname : string;
  gsize : int;  (** bytes *)
  gbytes : string option;  (** optional initializer, length <= gsize *)
}

type modul = { globals : global list; funcs : func list }

(** {1 Accessors} *)

val value_ty : func -> value -> ty
val operand_ty : func -> operand -> ty

val instr_def : instr -> value option
(** The value an instruction defines, if any. *)

val instr_uses : instr -> operand list
val term_uses : terminator -> operand list

val term_succs : terminator -> label list
(** Successor labels, deduplicated. *)

val map_instr_uses : (operand -> operand) -> instr -> instr
val map_term_uses : (operand -> operand) -> terminator -> terminator

val find_block : func -> label -> block
(** Raises [Invalid_argument] for unknown labels. *)

val entry_block : func -> block

val find_func : modul -> string -> func
(** Raises [Not_found]. *)
