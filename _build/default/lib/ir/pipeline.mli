(** IR pass manager.

    - [O0] leaves the front-end output untouched (clang -O0 style: every
      local in a stack slot);
    - [O1] promotes to SSA (mem2reg) and runs the clean-up pipeline
      (constant folding, CFG simplification, CSE, local memory
      optimization, DCE);
    - [O2] additionally runs SCCP, LICM, inlining of small functions, and a
      second clean-up round — the analogue of the -O3 application builds of
      the paper's evaluation. *)

type level = O0 | O1 | O2

val level_of_string : string -> level
val string_of_level : level -> string

val clean : Ir.func -> unit
(** One round of the clean-up pipeline on a single function. *)

val optimize_func : level -> Ir.func -> unit

val optimize : ?verify:bool -> level -> Ir.modul -> unit
(** Optimizes every function in place.  [verify] re-checks module
    well-formedness afterwards (on in tests, off in campaigns). *)
