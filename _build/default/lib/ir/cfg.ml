(* Control-flow graph analyses over [Ir.func]: predecessors/successors,
   reverse postorder, immediate dominators (Cooper–Harvey–Kennedy), dominance
   frontiers and natural-loop detection.  These feed mem2reg (phi placement),
   LICM (loop bodies) and the verifier (SSA dominance checks). *)

open Ir

type t = {
  func : func;
  order : label array; (* reverse postorder, entry first, reachable only *)
  index : (label, int) Hashtbl.t; (* label -> position in [order] *)
  succs : (label, label list) Hashtbl.t;
  preds : (label, label list) Hashtbl.t;
  idom : (label, label) Hashtbl.t; (* absent for the entry block *)
}

let successors t l = try Hashtbl.find t.succs l with Not_found -> []
let predecessors t l = try Hashtbl.find t.preds l with Not_found -> []
let reachable t l = Hashtbl.mem t.index l
let rpo t = t.order

let compute_order f =
  let visited = Hashtbl.create 16 in
  let post = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.add visited l ();
      List.iter dfs (term_succs (find_block f l).term);
      post := l :: !post
    end
  in
  dfs (entry_block f).lbl;
  Array.of_list !post

let build f =
  let order = compute_order f in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i l -> Hashtbl.add index l i) order;
  let succs = Hashtbl.create 16 in
  let preds = Hashtbl.create 16 in
  Array.iter
    (fun l ->
      let ss = term_succs (find_block f l).term in
      Hashtbl.replace succs l ss;
      List.iter
        (fun s ->
          let cur = try Hashtbl.find preds s with Not_found -> [] in
          Hashtbl.replace preds s (cur @ [ l ]))
        ss)
    order;
  (* Cooper-Harvey-Kennedy iterative dominator algorithm on RPO numbers. *)
  let n = Array.length order in
  let idom_arr = Array.make n (-1) in
  idom_arr.(0) <- 0;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while !a > !b do a := idom_arr.(!a) done;
      while !b > !a do b := idom_arr.(!b) done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let l = order.(i) in
      let ps =
        (try Hashtbl.find preds l with Not_found -> [])
        |> List.filter_map (fun p -> Hashtbl.find_opt index p)
      in
      let processed = List.filter (fun p -> idom_arr.(p) >= 0) ps in
      match processed with
      | [] -> ()
      | first :: rest ->
        let new_idom = List.fold_left intersect first rest in
        if idom_arr.(i) <> new_idom then begin
          idom_arr.(i) <- new_idom;
          changed := true
        end
    done
  done;
  let idom = Hashtbl.create 16 in
  for i = 1 to n - 1 do
    if idom_arr.(i) >= 0 then Hashtbl.add idom order.(i) order.(idom_arr.(i))
  done;
  { func = f; order; index; succs; preds; idom }

let idom t l = Hashtbl.find_opt t.idom l

(* [dominates t a b]: every path from entry to [b] passes through [a]. *)
let dominates t a b =
  if a = b then true
  else
    let rec walk l = match idom t l with None -> false | Some d -> d = a || walk d in
    walk b

let dominance_frontiers t =
  let df = Hashtbl.create 16 in
  let add l x =
    let cur = try Hashtbl.find df l with Not_found -> [] in
    if not (List.mem x cur) then Hashtbl.replace df l (x :: cur)
  in
  Array.iter
    (fun b ->
      let ps = predecessors t b in
      if List.length ps >= 2 then
        List.iter
          (fun p ->
            if reachable t p then begin
              let runner = ref p in
              let stop = match idom t b with Some d -> d | None -> b in
              while !runner <> stop do
                add !runner b;
                match idom t !runner with
                | Some d -> runner := d
                | None -> runner := stop
              done
            end)
          ps)
    t.order;
  fun l -> (try Hashtbl.find df l with Not_found -> [])

type loop = { header : label; body : label list (* includes header *) }

(* Natural loops from back edges (t -> h where h dominates t); loops sharing
   a header are merged. *)
let natural_loops t =
  let loops = Hashtbl.create 8 in
  Array.iter
    (fun b ->
      List.iter
        (fun s -> if dominates t s b then begin
           let body = try Hashtbl.find loops s with Not_found -> [ s ] in
           (* walk predecessors backwards from the back-edge source *)
           let members = ref body in
           let work = ref [ b ] in
           while !work <> [] do
             match !work with
             | [] -> ()
             | x :: rest ->
               work := rest;
               if not (List.mem x !members) then begin
                 members := x :: !members;
                 work := predecessors t x @ !work
               end
           done;
           Hashtbl.replace loops s !members
         end)
        (successors t b))
    t.order;
  Hashtbl.fold (fun header body acc -> { header; body } :: acc) loops []
