(* IR pass manager.  [optimize] is what the compiler drivers use: O0 leaves
   the front-end output untouched (clang -O0 style: every local in a stack
   slot), O1 promotes to SSA and cleans up, O2 additionally runs LICM and a
   second clean-up round.  The evaluation compiles every benchmark at O2,
   matching the paper's use of -O3 application builds. *)

open Ir

type level = O0 | O1 | O2

let level_of_string = function
  | "O0" | "0" -> O0
  | "O1" | "1" -> O1
  | "O2" | "2" -> O2
  | s -> invalid_arg ("Pipeline.level_of_string: " ^ s)

let string_of_level = function O0 -> "O0" | O1 -> "O1" | O2 -> "O2"

let clean fn =
  Constfold.run fn;
  Simplifycfg.run fn;
  Cse.run fn;
  Memopt.run fn;
  Dce.run fn;
  Constfold.run fn;
  Simplifycfg.run fn

let optimize_func level fn =
  match level with
  | O0 -> ()
  | O1 ->
    Mem2reg.run fn;
    clean fn
  | O2 ->
    Mem2reg.run fn;
    clean fn;
    Sccp.run fn;
    Simplifycfg.run fn;
    Licm.run fn;
    clean fn;
    Cse.run fn;
    Dce.run fn;
    Simplifycfg.run fn

(* [verify] re-checks module well-formedness after the passes; it is on in
   tests and off in campaigns for speed. *)
let optimize ?(verify = false) level (m : modul) =
  List.iter (optimize_func level) m.funcs;
  (* O2 inlines small functions after per-function clean-up (call density
     then matches -O3 binaries), and re-optimizes the enlarged callers *)
  if level = O2 then begin
    let inlined = Inline.run m in
    if inlined > 0 then
      List.iter
        (fun fn ->
          clean fn;
          Licm.run fn;
          clean fn)
        m.funcs
  end;
  if verify then Verify.check_module m
