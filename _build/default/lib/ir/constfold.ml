(* Constant folding and algebraic simplification.

   Folded instructions are deleted and their uses rewritten through a
   replacement map; conditional branches on constants become unconditional
   (Simplifycfg later removes the dead blocks).  Folding of trapping integer
   division/remainder by a constant zero is left in place so the runtime
   trap is preserved. *)

open Ir

let fold_instr i =
  match i with
  | Ibinop (_, (Div | Rem), _, ICst 0L) -> None (* keep the trap *)
  | Ibinop (_, op, ICst a, ICst b) -> Some (ICst (Interp.eval_ibinop op a b))
  | Fbinop (_, op, FCst a, FCst b) -> Some (FCst (Interp.eval_fbinop op a b))
  | Icmp (_, op, ICst a, ICst b) -> Some (ICst (Interp.eval_icmp op a b))
  | Fcmp (_, op, FCst a, FCst b) -> Some (ICst (Interp.eval_fcmp op a b))
  | Funop (_, op, FCst a) -> Some (FCst (Interp.eval_funop op a))
  | Cast (_, Sitofp, ICst a) -> Some (FCst (Int64.to_float a))
  | Cast (_, Fptosi, FCst a) -> Some (ICst (Interp.fptosi a))
  | Select (_, _, ICst c, a, b) -> Some (if c <> 0L then a else b)
  (* algebraic identities; float identities are restricted to ones valid
     under IEEE-754 for all inputs *)
  | Ibinop (_, Add, x, ICst 0L) | Ibinop (_, Add, ICst 0L, x) -> Some x
  | Ibinop (_, Sub, x, ICst 0L) -> Some x
  | Ibinop (_, Mul, x, ICst 1L) | Ibinop (_, Mul, ICst 1L, x) -> Some x
  | Ibinop (_, Mul, _, ICst 0L) | Ibinop (_, Mul, ICst 0L, _) -> Some (ICst 0L)
  | Ibinop (_, Div, x, ICst 1L) -> Some x
  | Ibinop (_, (And | Or), x, y) when x = y -> Some x
  | Ibinop (_, And, _, ICst 0L) | Ibinop (_, And, ICst 0L, _) -> Some (ICst 0L)
  | Ibinop (_, Or, x, ICst 0L) | Ibinop (_, Or, ICst 0L, x) -> Some x
  | Ibinop (_, Xor, x, ICst 0L) | Ibinop (_, Xor, ICst 0L, x) -> Some x
  | Ibinop (_, Xor, Var x, Var y) when x = y -> Some (ICst 0L)
  | Ibinop (_, (Shl | Lshr | Ashr), x, ICst 0L) -> Some x
  | Gep (_, x, ICst 0L) -> Some x
  | _ -> None

let run (fn : func) =
  let repl : (value, operand) Hashtbl.t = Hashtbl.create 32 in
  let rec chase o =
    match o with
    | Var v -> ( match Hashtbl.find_opt repl v with Some o' -> chase o' | None -> o)
    | _ -> o
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        let new_body =
          List.filter_map
            (fun i ->
              let i = map_instr_uses chase i in
              match (instr_def i, fold_instr i) with
              | Some d, Some folded ->
                Hashtbl.replace repl d (chase folded);
                changed := true;
                None
              | _ -> Some i)
            b.body
        in
        b.body <- new_body;
        b.term <- map_term_uses chase b.term;
        (match b.term with
        | Cbr (ICst c, t, e) ->
          b.term <- Br (if c <> 0L then t else e);
          changed := true
        | Cbr (_c, t, e) when t = e ->
          b.term <- Br t;
          changed := true
        | _ -> ());
        List.iter
          (fun p -> p.incoming <- List.map (fun (l, o) -> (l, chase o)) p.incoming)
          b.phis;
        (* single-incoming or all-same phis become copies *)
        List.iter
          (fun p ->
            let non_self =
              List.filter (fun o -> o <> Var p.pdst) (List.map snd p.incoming)
            in
            match List.sort_uniq compare non_self with
            | [ only ] when only <> Var p.pdst ->
              Hashtbl.replace repl p.pdst only;
              changed := true
            | _ -> ())
          b.phis;
        b.phis <- List.filter (fun p -> not (Hashtbl.mem repl p.pdst)) b.phis)
      fn.blocks
  done
