(** Runtime library visible to simulated programs (the platform's
    libc/libm).  The IR interpreter and the machine simulator both dispatch
    external calls here, so their observable behaviour is identical. *)

type env = {
  out : Buffer.t;  (** program standard output *)
  read_byte : int -> char;  (** memory access for print_str *)
  alloc : int -> int;  (** heap bump allocation; 8-aligned address *)
  mutable exited : int option;  (** set by the [exit] extern *)
}

exception Extern_trap of string

val signature : string -> (Ir.ty list * Ir.ty option) option
(** Argument and result types per extern; [None] for unknown names.  Also
    declares the LLFI instrumentation callbacks ([llfi_inject_*]), whose
    implementations live in the fault-injection runtime. *)

val is_extern : string -> bool

val format_float6 : float -> string
(** ["%.6g"] — the [print_float] format (masks low-mantissa corruption). *)

val format_float_full : float -> string
(** ["%.17g"] — the [print_float_full] format (round-trip exact). *)

val call : env -> string -> int64 array -> int64
(** Executes one extern; arguments and result are raw 64-bit register
    images.  Raises {!Extern_trap} on misuse and for the [llfi_inject_*]
    names (those are handled by the FI runtime, not here). *)
