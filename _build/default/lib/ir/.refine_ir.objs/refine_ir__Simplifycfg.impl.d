lib/ir/simplifycfg.ml: Cfg Hashtbl Ir List
