lib/ir/memopt.ml: Array Hashtbl Ir List
