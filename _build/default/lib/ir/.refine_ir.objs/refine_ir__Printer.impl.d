lib/ir/printer.ml: Buffer Int64 Ir List Printf String
