lib/ir/pipeline.mli: Ir
