lib/ir/constfold.ml: Hashtbl Int64 Interp Ir List
