lib/ir/licm.ml: Cfg Hashtbl Ir List
