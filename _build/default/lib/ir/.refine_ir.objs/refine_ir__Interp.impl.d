lib/ir/interp.ml: Array Buffer Bytes Externs Float Int64 Ir List Memlayout Printf String
