lib/ir/memlayout.ml: Hashtbl Ir List
