lib/ir/mem2reg.ml: Array Cfg Hashtbl Ir List Queue
