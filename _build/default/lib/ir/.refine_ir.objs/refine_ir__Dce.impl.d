lib/ir/dce.ml: Hashtbl Ir List Queue
