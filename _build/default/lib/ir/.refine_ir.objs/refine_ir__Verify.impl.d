lib/ir/verify.ml: Cfg Externs Hashtbl Ir List Printer Printf String
