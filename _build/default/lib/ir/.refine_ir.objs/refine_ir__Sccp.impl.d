lib/ir/sccp.ml: Constfold Hashtbl Ir List Queue
