lib/ir/externs.mli: Buffer Ir
