lib/ir/externs.ml: Array Buffer Float Int64 Ir Printf
