lib/ir/inline.ml: Hashtbl Ir List Option
