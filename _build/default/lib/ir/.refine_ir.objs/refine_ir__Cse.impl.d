lib/ir/cse.ml: Array Cfg Hashtbl Ir List
