lib/ir/pipeline.ml: Constfold Cse Dce Inline Ir Licm List Mem2reg Memopt Sccp Simplifycfg Verify
