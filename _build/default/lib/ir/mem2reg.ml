(* Promotion of stack slots to SSA values (LLVM's mem2reg).

   The front end produces one 8-byte alloca per local variable and
   loads/stores it on every access, like clang -O0.  This pass rewrites
   promotable slots into SSA form with phi nodes placed on the iterated
   dominance frontier, then renames via a dominator-tree walk.  After this
   pass the IR looks like the paper's Listing 1a: values in virtual
   registers, no stack traffic for scalars — which is precisely the code
   LLFI-style IR instrumentation sees, and which misses the spills the
   backend later re-introduces. *)

open Ir

type slot_info = { ty : ty; mutable promotable : bool }

let run (fn : func) =
  let cfg = Cfg.build fn in
  (* --- find promotable allocas: 8-byte slots whose address is used only as
     the direct address operand of loads and stores. *)
  let slots : (value, slot_info) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match i with
          | Alloca (d, 8) -> Hashtbl.replace slots d { ty = I64; promotable = true }
          | _ -> ())
        b.body)
    fn.blocks;
  let demote v = match Hashtbl.find_opt slots v with Some s -> s.promotable <- false | None -> () in
  let demote_op = function Var v -> demote v | _ -> () in
  let note_access v ty =
    match Hashtbl.find_opt slots v with
    | Some s -> if s.promotable && Hashtbl.mem slots v then Hashtbl.replace slots v { s with ty }
    | None -> ()
  in
  (* A slot accessed with both i64 and f64 is demoted (cannot pick one phi
     type); track the last seen type and compare. *)
  let seen_ty : (value, ty) Hashtbl.t = Hashtbl.create 16 in
  let record_ty v ty =
    match Hashtbl.find_opt seen_ty v with
    | None -> Hashtbl.replace seen_ty v ty; note_access v ty
    | Some t -> if t <> ty then demote v
  in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match i with
          | Load (_, ty, Var a) -> record_ty a ty
          | Store (ty, v, Var a) ->
            demote_op v; (* storing a slot address anywhere demotes it *)
            record_ty a ty
          | Alloca _ -> ()
          | other -> List.iter demote_op (instr_uses other))
        b.body;
      List.iter demote_op (term_uses b.term);
      List.iter (fun p -> List.iter (fun (_, o) -> demote_op o) p.incoming) b.phis)
    fn.blocks;
  let promotable = Hashtbl.create 16 in
  Hashtbl.iter (fun v s -> if s.promotable then Hashtbl.replace promotable v s.ty) slots;
  if Hashtbl.length promotable = 0 then ()
  else begin
    (* --- phi placement on the iterated dominance frontier of store blocks *)
    let df = Cfg.dominance_frontiers cfg in
    let zero_of = function I64 -> ICst 0L | F64 -> FCst 0.0 in
    (* (block label, slot) -> phi record *)
    let placed : (label * value, phi) Hashtbl.t = Hashtbl.create 32 in
    Hashtbl.iter
      (fun slot ty ->
        let def_blocks =
          List.filter_map
            (fun b ->
              let defines =
                List.exists (function Store (_, _, Var a) -> a = slot | _ -> false) b.body
              in
              if defines then Some b.lbl else None)
            fn.blocks
        in
        let work = Queue.create () in
        List.iter (fun l -> Queue.add l work) def_blocks;
        let has_phi = Hashtbl.create 8 in
        while not (Queue.is_empty work) do
          let x = Queue.pop work in
          List.iter
            (fun y ->
              if not (Hashtbl.mem has_phi y) then begin
                Hashtbl.add has_phi y ();
                let dst = fn.vnext in
                fn.vnext <- dst + 1;
                Hashtbl.add fn.vtypes dst ty;
                let p = { pdst = dst; pty = ty; incoming = [] } in
                Hashtbl.replace placed (y, slot) p;
                let blk = find_block fn y in
                blk.phis <- blk.phis @ [ p ];
                Queue.add y work
              end)
            (df x)
        done)
      promotable;
    (* --- renaming along the dominator tree *)
    let children = Hashtbl.create 16 in
    Array.iter
      (fun l ->
        match Cfg.idom cfg l with
        | Some d ->
          let cur = try Hashtbl.find children d with Not_found -> [] in
          Hashtbl.replace children d (cur @ [ l ])
        | None -> ())
      (Cfg.rpo cfg);
    (* replacement of deleted load results *)
    let repl : (value, operand) Hashtbl.t = Hashtbl.create 32 in
    let rec chase o =
      match o with
      | Var v -> ( match Hashtbl.find_opt repl v with Some o' -> chase o' | None -> o)
      | _ -> o
    in
    (* current[slot] along the walk; save/restore per subtree *)
    let current : (value, operand) Hashtbl.t = Hashtbl.create 16 in
    let cur_val slot =
      match Hashtbl.find_opt current slot with
      | Some o -> o
      | None -> zero_of (Hashtbl.find promotable slot)
    in
    (* end-of-block slot environment, to fill phi incomings afterwards *)
    let at_end : (label, (value * operand) list) Hashtbl.t = Hashtbl.create 16 in
    let rec walk lbl =
      let blk = find_block fn lbl in
      let saved = Hashtbl.fold (fun k v acc -> (k, v) :: acc) current [] in
      (* phis placed in this block define their slot *)
      Hashtbl.iter
        (fun (l, slot) (p : phi) -> if l = lbl then Hashtbl.replace current slot (Var p.pdst))
        placed;
      let new_body =
        List.filter_map
          (fun i ->
            match i with
            | Alloca (d, _) when Hashtbl.mem promotable d -> None
            | Load (d, _, Var a) when Hashtbl.mem promotable a ->
              Hashtbl.replace repl d (cur_val a);
              None
            | Store (_, v, Var a) when Hashtbl.mem promotable a ->
              Hashtbl.replace current a (chase v);
              None
            | other -> Some (map_instr_uses chase other))
          blk.body
      in
      blk.body <- new_body;
      blk.term <- map_term_uses chase blk.term;
      (* rewrite non-slot phi operands too *)
      List.iter (fun p -> p.incoming <- List.map (fun (l, o) -> (l, chase o)) p.incoming) blk.phis;
      Hashtbl.replace at_end lbl (Hashtbl.fold (fun k v acc -> (k, v) :: acc) current []);
      List.iter walk (try Hashtbl.find children lbl with Not_found -> []);
      Hashtbl.reset current;
      List.iter (fun (k, v) -> Hashtbl.replace current k v) saved;
      (* re-apply this block's own defs are NOT kept: dominator-tree scoping *)
      ()
    in
    walk (entry_block fn).lbl;
    (* --- fill phi incomings from each predecessor's end environment *)
    Hashtbl.iter
      (fun (lbl, slot) (p : phi) ->
        let preds = Cfg.predecessors cfg lbl in
        p.incoming <-
          List.map
            (fun pred ->
              let env = try Hashtbl.find at_end pred with Not_found -> [] in
              let v =
                match List.assoc_opt slot env with
                | Some o -> chase o
                | None -> zero_of p.pty
              in
              (pred, v))
            (List.sort_uniq compare preds))
      placed;
    (* chase any replacement chains that went through phis placed later *)
    List.iter
      (fun b ->
        b.body <- List.map (map_instr_uses chase) b.body;
        b.term <- map_term_uses chase b.term;
        List.iter
          (fun p -> p.incoming <- List.map (fun (l, o) -> (l, chase o)) p.incoming)
          b.phis)
      fn.blocks
  end
