(* Incremental construction of IR functions.  Used by the MinC front end
   (Irgen), by tests and by random-program generators. *)

open Ir

type t = {
  func : func;
  mutable cur : block;
  mutable lnext : int;
}

let create ~name ~params ~ret =
  let vtypes = Hashtbl.create 64 in
  let pvals = List.mapi (fun i ty -> Hashtbl.add vtypes i ty; (i, ty)) params in
  let entry = { lbl = 0; phis = []; body = []; term = Unreachable } in
  let func =
    { fname = name; params = pvals; fret = ret; blocks = [ entry ];
      vnext = List.length params; vtypes }
  in
  ({ func; cur = entry; lnext = 1 }, List.map fst pvals)

let func b = b.func

let fresh b ty =
  let v = b.func.vnext in
  b.func.vnext <- v + 1;
  Hashtbl.add b.func.vtypes v ty;
  v

let block b =
  let lbl = b.lnext in
  b.lnext <- lbl + 1;
  let blk = { lbl; phis = []; body = []; term = Unreachable } in
  b.func.blocks <- b.func.blocks @ [ blk ];
  lbl

let switch_to b lbl = b.cur <- find_block b.func lbl
let cur_label b = b.cur.lbl
let terminated b = b.cur.term <> Unreachable

let emit b i =
  if terminated b then invalid_arg "Builder.emit: block already terminated";
  b.cur.body <- b.cur.body @ [ i ]

let terminate b t = if not (terminated b) then b.cur.term <- t

(* Convenience wrappers returning the result operand. *)

let ibinop b op x y =
  let d = fresh b I64 in
  emit b (Ibinop (d, op, x, y));
  Var d

let fbinop b op x y =
  let d = fresh b F64 in
  emit b (Fbinop (d, op, x, y));
  Var d

let icmp b op x y =
  let d = fresh b I64 in
  emit b (Icmp (d, op, x, y));
  Var d

let fcmp b op x y =
  let d = fresh b I64 in
  emit b (Fcmp (d, op, x, y));
  Var d

let funop b op x =
  let d = fresh b F64 in
  emit b (Funop (d, op, x));
  Var d

let cast b op x =
  let ty = match op with Sitofp -> F64 | Fptosi -> I64 in
  let d = fresh b ty in
  emit b (Cast (d, op, x));
  Var d

let select b ty c x y =
  let d = fresh b ty in
  emit b (Select (d, ty, c, x, y));
  Var d

let load b ty addr =
  let d = fresh b ty in
  emit b (Load (d, ty, addr));
  Var d

let store b ty v addr = emit b (Store (ty, v, addr))

let alloca b size =
  let d = fresh b I64 in
  emit b (Alloca (d, size));
  Var d

let gaddr b g =
  let d = fresh b I64 in
  emit b (Gaddr (d, g));
  Var d

let gep b base idx =
  let d = fresh b I64 in
  emit b (Gep (d, base, idx));
  Var d

let call b ret name args =
  match ret with
  | Some ty ->
    let d = fresh b ty in
    emit b (Call (Some d, ty, name, args));
    Some (Var d)
  | None ->
    emit b (Call (None, I64, name, args));
    None
