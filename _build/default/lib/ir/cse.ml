(* Dominator-scoped common-subexpression elimination (value numbering).

   Pure instructions (no memory access, no calls) with identical opcode and
   operands are available along the dominator tree; later occurrences are
   replaced with the earlier value.  Division/remainder are treated as pure:
   two identical divisions trap identically, so sharing the first result is
   behaviour-preserving. *)

open Ir

type key =
  | KI of ibinop * operand * operand
  | KF of fbinop * operand * operand
  | KIC of icmp * operand * operand
  | KFC of fcmp * operand * operand
  | KU of funop * operand
  | KC of cast * operand
  | KS of ty * operand * operand * operand
  | KG of operand * operand
  | KGA of string

(* Commutative operations get a canonical operand order. *)
let key_of = function
  | Ibinop (_, op, a, b) ->
    let a, b = match op with (Add | Mul | And | Or | Xor) when b < a -> (b, a) | _ -> (a, b) in
    Some (KI (op, a, b))
  | Fbinop (_, op, a, b) -> Some (KF (op, a, b))
  | Icmp (_, op, a, b) -> Some (KIC (op, a, b))
  | Fcmp (_, op, a, b) -> Some (KFC (op, a, b))
  | Funop (_, op, a) -> Some (KU (op, a))
  | Cast (_, op, a) -> Some (KC (op, a))
  | Select (_, t, c, a, b) -> Some (KS (t, c, a, b))
  | Gep (_, b, i) -> Some (KG (b, i))
  | Gaddr (_, g) -> Some (KGA g)
  | Load _ | Store _ | Alloca _ | Call _ -> None

let run (fn : func) =
  let cfg = Cfg.build fn in
  let children = Hashtbl.create 16 in
  Array.iter
    (fun l ->
      match Cfg.idom cfg l with
      | Some d ->
        let cur = try Hashtbl.find children d with Not_found -> [] in
        Hashtbl.replace children d (cur @ [ l ])
      | None -> ())
    (Cfg.rpo cfg);
  let repl : (value, operand) Hashtbl.t = Hashtbl.create 32 in
  let rec chase o =
    match o with
    | Var v -> ( match Hashtbl.find_opt repl v with Some o' -> chase o' | None -> o)
    | _ -> o
  in
  let available : (key, value) Hashtbl.t = Hashtbl.create 64 in
  let rec walk lbl =
    let blk = find_block fn lbl in
    let added = ref [] in
    List.iter (fun p -> p.incoming <- List.map (fun (l, o) -> (l, chase o)) p.incoming) blk.phis;
    let new_body =
      List.filter_map
        (fun i ->
          let i = map_instr_uses chase i in
          match (instr_def i, key_of i) with
          | Some d, Some k -> (
            match Hashtbl.find_opt available k with
            | Some earlier ->
              Hashtbl.replace repl d (Var earlier);
              None
            | None ->
              Hashtbl.add available k d;
              added := k :: !added;
              Some i)
          | _ -> Some i)
        blk.body
    in
    blk.body <- new_body;
    blk.term <- map_term_uses chase blk.term;
    List.iter walk (try Hashtbl.find children lbl with Not_found -> []);
    List.iter (Hashtbl.remove available) !added
  in
  walk (entry_block fn).lbl;
  (* rewrite any remaining stale uses (e.g. phis filled before the def was
     replaced deeper in the walk) *)
  List.iter
    (fun b ->
      b.body <- List.map (map_instr_uses chase) b.body;
      b.term <- map_term_uses chase b.term;
      List.iter (fun p -> p.incoming <- List.map (fun (l, o) -> (l, chase o)) p.incoming) b.phis)
    fn.blocks
