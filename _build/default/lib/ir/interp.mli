(** Reference interpreter for the IR — the semantic oracle the backend and
    machine simulator are tested against.

    The arithmetic helpers ([eval_ibinop] and friends) are shared with the
    machine simulator so integer/float semantics cannot drift between the
    two executions. *)

exception Trap of string
(** Raised on runtime faults: division by zero, out-of-bounds access,
    stack overflow, fuel exhaustion. *)

type outcome = { output : string; exit_code : int; steps : int }

val default_fuel : int

(* shared arithmetic semantics *)
val eval_ibinop : Ir.ibinop -> int64 -> int64 -> int64
(** Wrapping 64-bit arithmetic; shifts mask the count to 6 bits; division
    by zero raises {!Trap}; [min_int / -1] wraps. *)

val eval_fbinop : Ir.fbinop -> float -> float -> float
val eval_icmp : Ir.icmp -> int64 -> int64 -> int64
val eval_fcmp : Ir.fcmp -> float -> float -> int64
(** C-style: [!=] is true on NaN, ordered relations are false on NaN. *)

val eval_funop : Ir.funop -> float -> float

val fptosi : float -> int64
(** Truncation toward zero with saturation; NaN maps to 0 — fully defined
    so interpreter and machine agree on every input. *)

val run : ?fuel:int -> Ir.modul -> outcome
(** Executes [main].  Raises {!Trap} on runtime faults. *)
