(* Assembly-style listings of machine code, used by the codegen_tour
   example to reproduce the paper's Listing 1b/2b/2c comparisons. *)

open Minstr

let string_of_opd = function
  | Reg r -> Reg.name r
  | Imm i -> Int64.to_string i

let string_of_cc = function
  | CEq -> "eq" | CNe -> "ne" | CLt -> "lt" | CLe -> "le" | CGt -> "gt" | CGe -> "ge"
  | CFeq -> "feq" | CFne -> "fne" | CFlt -> "flt" | CFle -> "fle" | CFgt -> "fgt" | CFge -> "fge"

let ibinop_mnemonic (op : Refine_ir.Ir.ibinop) =
  match op with
  | Add -> "add" | Sub -> "sub" | Mul -> "imul" | Div -> "idiv" | Rem -> "irem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Lshr -> "shr" | Ashr -> "sar"

let fbinop_mnemonic (op : Refine_ir.Ir.fbinop) =
  match op with Fadd -> "addsd" | Fsub -> "subsd" | Fmul -> "mulsd" | Fdiv -> "divsd"

let funop_mnemonic (op : Refine_ir.Ir.funop) =
  match op with Fneg -> "negsd" | Fsqrt -> "sqrtsd" | Fabs -> "abssd"

let mem base off =
  if off = 0 then Printf.sprintf "[%s]" (Reg.name base)
  else if off > 0 then Printf.sprintf "[%s + %d]" (Reg.name base) off
  else Printf.sprintf "[%s - %d]" (Reg.name base) (-off)

let memidx base idx off =
  if off = 0 then Printf.sprintf "[%s + 8*%s]" (Reg.name base) (Reg.name idx)
  else Printf.sprintf "[%s + 8*%s + %d]" (Reg.name base) (Reg.name idx) off

let to_string (i : t) =
  match i with
  | Mmov (d, s) -> Printf.sprintf "mov %s, %s" (Reg.name d) (string_of_opd s)
  | Mload (d, b, o) -> Printf.sprintf "mov %s, qword ptr %s" (Reg.name d) (mem b o)
  | Mstore (s, b, o) -> Printf.sprintf "mov qword ptr %s, %s" (mem b o) (Reg.name s)
  | Mloadidx (d, b, ix, o) -> Printf.sprintf "mov %s, qword ptr %s" (Reg.name d) (memidx b ix o)
  | Mstoreidx (s, b, ix, o) -> Printf.sprintf "mov qword ptr %s, %s" (memidx b ix o) (Reg.name s)
  | Mlea (d, b, None, o) -> Printf.sprintf "lea %s, %s" (Reg.name d) (mem b o)
  | Mlea (d, b, Some ix, o) -> Printf.sprintf "lea %s, %s" (Reg.name d) (memidx b ix o)
  | Mbin (op, d, a, b) ->
    Printf.sprintf "%s %s, %s, %s" (ibinop_mnemonic op) (Reg.name d) (Reg.name a)
      (string_of_opd b)
  | Mfbin (op, d, a, b) ->
    Printf.sprintf "%s %s, %s, %s" (fbinop_mnemonic op) (Reg.name d) (Reg.name a) (Reg.name b)
  | Mfun (op, d, a) -> Printf.sprintf "%s %s, %s" (funop_mnemonic op) (Reg.name d) (Reg.name a)
  | Mcvt (Sitofp, d, a) -> Printf.sprintf "cvtsi2sd %s, %s" (Reg.name d) (Reg.name a)
  | Mcvt (Fptosi, d, a) -> Printf.sprintf "cvttsd2si %s, %s" (Reg.name d) (Reg.name a)
  | Mcmp (a, b) -> Printf.sprintf "cmp %s, %s" (Reg.name a) (string_of_opd b)
  | Mfcmp (a, b) -> Printf.sprintf "ucomisd %s, %s" (Reg.name a) (Reg.name b)
  | Msetcc (c, d) -> Printf.sprintf "set%s %s" (string_of_cc c) (Reg.name d)
  | Mjcc (c, l) -> Printf.sprintf "j%s L%d" (string_of_cc c) l
  | Mjmp l -> Printf.sprintf "jmp L%d" l
  | Mpush r -> Printf.sprintf "push %s" (Reg.name r)
  | Mpop r -> Printf.sprintf "pop %s" (Reg.name r)
  | Mpushf -> "pushf"
  | Mpopf -> "popf"
  | Mcall f -> Printf.sprintf "call _%s" f
  | Mcalli a -> Printf.sprintf "call %d" a
  | Mcallext f -> Printf.sprintf "call ext:%s" f
  | Mret -> "ret"
  | Mxorbit (d, s) -> Printf.sprintf "btc %s, %s" (Reg.name d) (Reg.name s)
  | Mxorbitmem (b, o, s) -> Printf.sprintf "btc qword ptr %s, %s" (mem b o) (Reg.name s)
  | Mhalt -> "hlt"

let string_of_block (b : Mfunc.mblock) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "L%d:\n" b.mlbl);
  List.iter (fun i -> Buffer.add_string buf ("  " ^ to_string i ^ "\n")) b.code;
  Buffer.contents buf

let string_of_func (f : Mfunc.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "_%s:  ; frame=%d bytes\n" f.mname f.frame_bytes);
  List.iter (fun b -> Buffer.add_string buf (string_of_block b)) f.blocks;
  Buffer.contents buf
