(* Machine-level function: ordered basic blocks of SX64 instructions plus
   frame bookkeeping filled in by the backend passes. *)

type mblock = { mlbl : Minstr.label; mutable code : Minstr.t list }

type t = {
  mname : string;
  mutable blocks : mblock list; (* entry first; layout order *)
  mutable next_label : int;
  mutable next_vreg : int;
  vreg_class : (int, Reg.rclass) Hashtbl.t;
  mutable frame_bytes : int; (* allocas + spill slots, below rbp *)
  mutable used_callee_saved : Reg.t list; (* filled by register allocation *)
}

let create name =
  {
    mname = name;
    blocks = [];
    next_label = 0;
    next_vreg = Reg.vreg_base;
    vreg_class = Hashtbl.create 64;
    frame_bytes = 0;
    used_callee_saved = [];
  }

let fresh_vreg t cls =
  let v = t.next_vreg in
  t.next_vreg <- v + 1;
  Hashtbl.replace t.vreg_class v cls;
  v

let reg_class t r =
  if Reg.is_virtual r then
    match Hashtbl.find_opt t.vreg_class r with
    | Some c -> c
    | None -> invalid_arg (Printf.sprintf "Mfunc.reg_class: unknown vreg %s" (Reg.name r))
  else Reg.class_of_phys r

let add_block t lbl =
  let b = { mlbl = lbl; code = [] } in
  t.blocks <- t.blocks @ [ b ];
  if lbl >= t.next_label then t.next_label <- lbl + 1;
  b

let fresh_label t =
  let l = t.next_label in
  t.next_label <- l + 1;
  l

let find_block t lbl =
  match List.find_opt (fun b -> b.mlbl = lbl) t.blocks with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Mfunc.find_block: no block L%d in %s" lbl t.mname)

(* Allocate a fresh 8-byte frame slot; returns its rbp-relative offset. *)
let alloc_slot t bytes =
  t.frame_bytes <- t.frame_bytes + Refine_ir.Memlayout.align8 bytes;
  -t.frame_bytes

let instr_count t = List.fold_left (fun acc b -> acc + List.length b.code) 0 t.blocks
