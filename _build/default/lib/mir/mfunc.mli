(** Machine-level function: ordered basic blocks of SX64 instructions plus
    frame bookkeeping filled in by the backend passes. *)

type mblock = { mlbl : Minstr.label; mutable code : Minstr.t list }

type t = {
  mname : string;
  mutable blocks : mblock list;  (** entry first; layout order *)
  mutable next_label : int;
  mutable next_vreg : int;
  vreg_class : (int, Reg.rclass) Hashtbl.t;
  mutable frame_bytes : int;  (** allocas + spill slots, below rbp *)
  mutable used_callee_saved : Reg.t list;  (** filled by register allocation *)
}

val create : string -> t
val fresh_vreg : t -> Reg.rclass -> int
val reg_class : t -> Reg.t -> Reg.rclass
val add_block : t -> Minstr.label -> mblock
val fresh_label : t -> Minstr.label
val find_block : t -> Minstr.label -> mblock

val alloc_slot : t -> int -> int
(** Allocate a frame slot of the given byte size; returns its rbp-relative
    (negative) offset. *)

val instr_count : t -> int
