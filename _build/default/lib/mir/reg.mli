(** Register model of the simulated SX64 target: 16 general-purpose and 16
    floating-point 64-bit registers plus a FLAGS register, with a
    SysV-like calling convention (documented in the implementation).  The
    caller/callee-saved split is what makes IR-level FI instrumentation
    degrade code quality exactly as in the paper's Listing 2. *)

type t = int
(** Physical registers are small ints (the engine indexes one flat int64
    array); virtual registers live at {!vreg_base} and above. *)

type rclass = GPR | FPR

val num_gpr : int
val num_fpr : int
val gpr : int -> t
val fpr : int -> t
val flags : t
val num_regs : int

val rsp : t
val rbp : t
val ret_gpr : t
val ret_fpr : t
val arg_gprs : t list
val arg_fprs : t list
val scratch_gpr0 : t
val scratch_gpr1 : t
val scratch_gpr2 : t
val scratch_fpr0 : t
val scratch_fpr1 : t
val caller_saved_gprs : t list
val callee_saved_gprs : t list
val caller_saved_fprs : t list
val callee_saved_fprs : t list
val is_callee_saved : t -> bool

val vreg_base : int
val is_virtual : t -> bool
val is_physical : t -> bool
val class_of_phys : t -> rclass

val flags_bits : int
(** Architecturally meaningful FLAGS width (4: ZF, LT, UNORD, CF) — the
    operand size the fault model uses for FLAGS flips. *)

val width_bits : t -> int
(** 64 for GPR/FPR, {!flags_bits} for FLAGS. *)

val name : t -> string
