(* Machine-code well-formedness checks, run after register allocation and
   frame lowering (and after FI instrumentation in tests).  Catches backend
   bugs the IR verifier cannot see: leftover virtual registers, unresolved
   labels, scratch-register conflicts and unterminated final blocks. *)

open Minstr

exception Invalid of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

(* [allow_virtual] checks pre-RA code (after instruction selection). *)
let check_func ?(allow_virtual = false) (mf : Mfunc.t) =
  let labels = Hashtbl.create 16 in
  List.iter
    (fun (b : Mfunc.mblock) ->
      if Hashtbl.mem labels b.Mfunc.mlbl then
        fail "%s: duplicate machine label L%d" mf.Mfunc.mname b.Mfunc.mlbl;
      Hashtbl.add labels b.Mfunc.mlbl ())
    mf.Mfunc.blocks;
  let check_reg what r =
    if Reg.is_physical r then ()
    else if Reg.is_virtual r then begin
      if not allow_virtual then fail "%s: virtual register %s survived allocation in %s"
          mf.Mfunc.mname (Reg.name r) what;
      match Hashtbl.find_opt mf.Mfunc.vreg_class r with
      | Some _ -> ()
      | None -> fail "%s: vreg %s has no class" mf.Mfunc.mname (Reg.name r)
    end
    else fail "%s: invalid register id %d in %s" mf.Mfunc.mname r what
  in
  let check_label what l =
    if not (Hashtbl.mem labels l) then
      fail "%s: %s targets missing label L%d" mf.Mfunc.mname what l
  in
  List.iter
    (fun (b : Mfunc.mblock) ->
      List.iter
        (fun i ->
          let what = Mprinter.to_string i in
          List.iter (check_reg what) (inputs i);
          List.iter (check_reg what) (outputs i);
          match i with
          | Mjmp l | Mjcc (_, l) -> check_label what l
          | Mcalli _ -> fail "%s: resolved call before layout" mf.Mfunc.mname
          | _ -> ())
        b.Mfunc.code)
    mf.Mfunc.blocks;
  (* the last block must not fall off the end of the function *)
  (match List.rev mf.Mfunc.blocks with
  | last :: _ -> (
    match List.rev last.Mfunc.code with
    | i :: _ ->
      if not (is_terminator i) then
        fail "%s: final block L%d falls off the function (%s)" mf.Mfunc.mname last.Mfunc.mlbl
          (Mprinter.to_string i)
    | [] -> fail "%s: final block L%d is empty" mf.Mfunc.mname last.Mfunc.mlbl)
  | [] -> fail "%s: no blocks" mf.Mfunc.mname);
  (* frame sanity *)
  if mf.Mfunc.frame_bytes < 0 then fail "%s: negative frame size" mf.Mfunc.mname;
  List.iter
    (fun r ->
      if not (Reg.is_callee_saved r) then
        fail "%s: %s recorded as used callee-saved" mf.Mfunc.mname (Reg.name r))
    mf.Mfunc.used_callee_saved

let check_funcs ?allow_virtual funcs = List.iter (check_func ?allow_virtual) funcs
