(* Register model of the simulated SX64 target.

   SX64 is an x64-flavoured load/store ISA: 16 general-purpose 64-bit
   registers, 16 floating-point 64-bit registers and a FLAGS register
   written by integer ALU and compare instructions.  Physical registers are
   small ints so the execution engine indexes one flat int64 array; virtual
   registers (used between instruction selection and register allocation)
   live at [vreg_base] and above.

   Calling convention (SysV-like):
     r0 / f0        integer / float return value
     r1..r5, f1..f6 arguments, in order, per class
     r0..r8, f0..f8, f14, f15   caller-saved
     r9..r13, f9..f13           callee-saved
     r14 = rbp (frame pointer), r15 = rsp (stack pointer)
     r6, r7, r8, f7, f8 reserved as spill/reload scratch (never allocated;
     a store with indexed addressing has three integer register inputs,
     hence three integer scratches)

   The caller/callee split is what lets IR-level FI instrumentation degrade
   code quality exactly as in the paper's Listing 2: live ranges crossing
   the inserted calls cannot use the 9+ caller-saved registers. *)

type t = int

type rclass = GPR | FPR

let num_gpr = 16
let num_fpr = 16
let gpr i = if i < 0 || i >= num_gpr then invalid_arg "Reg.gpr" else i
let fpr i = if i < 0 || i >= num_fpr then invalid_arg "Reg.fpr" else num_gpr + i
let flags = num_gpr + num_fpr (* 32 *)
let num_regs = flags + 1

let rsp = gpr 15
let rbp = gpr 14
let ret_gpr = gpr 0
let ret_fpr = fpr 0
let arg_gprs = [ gpr 1; gpr 2; gpr 3; gpr 4; gpr 5 ]
let arg_fprs = [ fpr 1; fpr 2; fpr 3; fpr 4; fpr 5; fpr 6 ]
let scratch_gpr0 = gpr 7
let scratch_gpr1 = gpr 8
let scratch_gpr2 = gpr 6
let scratch_fpr0 = fpr 7
let scratch_fpr1 = fpr 8

let caller_saved_gprs = [ gpr 0; gpr 1; gpr 2; gpr 3; gpr 4; gpr 5 ]
let callee_saved_gprs = [ gpr 9; gpr 10; gpr 11; gpr 12; gpr 13 ]
let caller_saved_fprs = [ fpr 0; fpr 1; fpr 2; fpr 3; fpr 4; fpr 5; fpr 6; fpr 14; fpr 15 ]
let callee_saved_fprs = [ fpr 9; fpr 10; fpr 11; fpr 12; fpr 13 ]

let is_callee_saved r = List.mem r callee_saved_gprs || List.mem r callee_saved_fprs

(* Virtual registers *)
let vreg_base = 64
let is_virtual r = r >= vreg_base
let is_physical r = r >= 0 && r < num_regs

let class_of_phys r =
  if r < num_gpr then GPR
  else if r < num_gpr + num_fpr then FPR
  else GPR (* FLAGS is bit-flipped like a GPR *)

(* Architectural width in bits, for the fault model: GPR/FPR are 64-bit;
   FLAGS has 4 architecturally meaningful bits (ZF, LT, UNORD, CF). *)
let flags_bits = 4
let width_bits r = if r = flags then flags_bits else 64

let name r =
  if r = flags then "flags"
  else if r = rsp then "rsp"
  else if r = rbp then "rbp"
  else if r < num_gpr then Printf.sprintf "r%d" r
  else if r < num_gpr + num_fpr then Printf.sprintf "f%d" (r - num_gpr)
  else if is_virtual r then Printf.sprintf "v%d" (r - vreg_base)
  else Printf.sprintf "?%d" r
