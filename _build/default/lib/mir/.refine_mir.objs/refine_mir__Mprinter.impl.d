lib/mir/mprinter.ml: Buffer Int64 List Mfunc Minstr Printf Refine_ir Reg
