lib/mir/minstr.ml: Option Refine_ir Reg
