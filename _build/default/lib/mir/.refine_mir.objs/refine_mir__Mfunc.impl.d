lib/mir/mfunc.ml: Hashtbl List Minstr Printf Refine_ir Reg
