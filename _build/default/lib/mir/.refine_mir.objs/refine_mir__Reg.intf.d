lib/mir/reg.mli:
