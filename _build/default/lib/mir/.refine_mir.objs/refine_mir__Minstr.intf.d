lib/mir/minstr.mli: Refine_ir Reg
