lib/mir/reg.ml: List Printf
