lib/mir/mverify.ml: Hashtbl List Mfunc Minstr Mprinter Printf Reg
