lib/mir/mfunc.mli: Hashtbl Minstr Reg
