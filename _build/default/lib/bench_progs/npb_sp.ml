(* NPB SP: scalar-pentadiagonal ADI solver.  Repeated independent
   pentadiagonal line solves (LU-style forward elimination and back
   substitution with two super/sub-diagonals) plus an inter-sweep coupling
   step.  SP in the paper (Fig. 4m) is extremely SOC-heavy — 0% benign for
   LLFI, ~58% SOC overall — because every computed value feeds the
   verification output; the full-precision residual dump models that. *)

let name = "SP"
let input = "20 lines of 20 cells, 4 ADI sweeps (paper: class A)"

let source =
  {|
global int m = 20;       // cells per line
global int nline = 20;
global float x[400];     // solutions
global float b[400];     // rhs
// pentadiagonal coefficients (same for every line)
global float c2[20]; global float c1[20]; global float c0[20];
global float d1[20]; global float d2[20];
// elimination workspace
global float w0[20]; global float w1[20]; global float w2[20];
global float g[20];

void solve_line(int lb) {
  int i;
  // forward elimination without pivoting (diagonally dominant system)
  for (i = 0; i < m; i = i + 1) {
    float piv0 = c0[i];
    float e1 = d1[i];
    float e2 = d2[i];
    float r = b[lb + i];
    if (i > 0) {
      float f = c1[i] / w0[i - 1];
      piv0 = piv0 - f * w1[i - 1];
      e1 = e1 - f * w2[i - 1];
      r = r - f * g[i - 1];
    }
    if (i > 1) {
      float f2 = c2[i] / w0[i - 2];
      piv0 = piv0 - f2 * w2[i - 2] * 0.5;
      r = r - f2 * g[i - 2];
    }
    w0[i] = piv0;
    w1[i] = e1;
    w2[i] = e2;
    g[i] = r;
  }
  // back substitution
  for (i = m - 1; i >= 0; i = i - 1) {
    float s = g[i];
    if (i < m - 1) { s = s - w1[i] * x[lb + i + 1]; }
    if (i < m - 2) { s = s - w2[i] * x[lb + i + 2]; }
    x[lb + i] = s / w0[i];
  }
}

int main() {
  int i; int line; int sweep;
  for (i = 0; i < m; i = i + 1) {
    c2[i] = -0.1; c1[i] = -0.8; c0[i] = 3.0 + 0.05 * tofloat(i % 4);
    d1[i] = -0.8; d2[i] = -0.1;
  }
  for (i = 0; i < m * nline; i = i + 1) {
    b[i] = cos(tofloat(i) * 0.07) + 0.2;
    x[i] = 0.0;
  }
  for (sweep = 0; sweep < 4; sweep = sweep + 1) {
    for (line = 0; line < nline; line = line + 1) { solve_line(line * m); }
    // ADI coupling: mix transposed solution back into the rhs
    for (line = 0; line < nline; line = line + 1) {
      for (i = 0; i < m; i = i + 1) {
        b[line * m + i] = 0.7 * b[line * m + i] + 0.3 * x[i * nline + line];
      }
    }
  }
  // full verification dump: per-line residual-style checksums
  for (line = 0; line < nline; line = line + 1) {
    float s = 0.0;
    for (i = 0; i < m; i = i + 1) { s = s + x[line * m + i] * tofloat(1 + i % 3); }
    print_float_full(s);
  }
  return 0;
}
|}
