(* AMG2013: algebraic multigrid.  A two-level V-cycle on the 1D Poisson
   problem: weighted-Jacobi smoothing, full-weighting restriction of the
   residual, coarse-grid solve by more smoothing, linear prolongation and
   correction — the solve phase structure of the benchmark. *)

let name = "AMG2013"
let input = "1D Poisson n=128, 4 two-grid V-cycles (paper: -r 24 24 24)"

let source =
  {|
global int n = 128;
global int nc = 64;
global float u[128];
global float f[128];
global float res[128];
global float rc[64];
global float ec[64];

// residual = f - A u for A = tridiag(-1, 2, -1) (Dirichlet boundaries)
void residual(float[] uu, float[] ff, float[] out, int m) {
  int i;
  out[0] = ff[0] - (2.0 * uu[0] - uu[1]);
  for (i = 1; i < m - 1; i = i + 1) {
    out[i] = ff[i] - (2.0 * uu[i] - uu[i - 1] - uu[i + 1]);
  }
  out[m - 1] = ff[m - 1] - (2.0 * uu[m - 1] - uu[m - 2]);
}

// weighted Jacobi sweeps: u <- u + w * D^-1 (f - A u)
void smooth(float[] uu, float[] ff, float[] scratch, int m, int sweeps) {
  int s; int i;
  for (s = 0; s < sweeps; s = s + 1) {
    residual(uu, ff, scratch, m);
    for (i = 0; i < m; i = i + 1) {
      uu[i] = uu[i] + 0.6666666 * 0.5 * scratch[i];
    }
  }
}

float norm2(float[] v, int m) {
  float s = 0.0;
  int i;
  for (i = 0; i < m; i = i + 1) { s = s + v[i] * v[i]; }
  return sqrt(s);
}

int main() {
  int i; int cycle;
  for (i = 0; i < n; i = i + 1) {
    u[i] = 0.0;
    f[i] = sin(tofloat(i) * 0.19634954) + 0.25 * sin(tofloat(i) * 1.0799224);
  }
  for (cycle = 0; cycle < 4; cycle = cycle + 1) {
    smooth(u, f, res, n, 2);
    residual(u, f, res, n);
    // full-weighting restriction to the coarse grid
    for (i = 0; i < nc; i = i + 1) {
      int k = 2 * i;
      if (k == 0) { rc[i] = 0.5 * res[0] + 0.25 * res[1]; }
      else {
        rc[i] = 0.25 * res[k - 1] + 0.5 * res[k] + 0.25 * res[k + 1];
      }
      ec[i] = 0.0;
    }
    // coarse "solve": heavy smoothing on the coarse operator (scaled A)
    smooth(ec, rc, res, nc, 12);
    // prolong and correct (linear interpolation)
    for (i = 0; i < nc; i = i + 1) {
      u[2 * i] = u[2 * i] + ec[i];
      if (i < nc - 1) {
        u[2 * i + 1] = u[2 * i + 1] + 0.5 * (ec[i] + ec[i + 1]);
      } else {
        u[2 * i + 1] = u[2 * i + 1] + 0.5 * ec[i];
      }
    }
    smooth(u, f, res, n, 2);
    residual(u, f, res, n);
    print_float(norm2(res, n));
  }
  float cksum = 0.0;
  for (i = 0; i < n; i = i + 1) { cksum = cksum + u[i]; }
  print_float(cksum);
  return 0;
}
|}
