(* Registry of the 14 benchmark programs of the paper's Table 3, written in
   MinC.  Each miniature kernel mirrors the computational pattern of the
   original C/C++ program (DESIGN.md §2); [input] documents the reduced
   problem size next to the paper's input. *)

type bench = {
  name : string;
  input : string;
  source : string;
}

let all : bench list =
  [
    { name = Amg2013.name; input = Amg2013.input; source = Amg2013.source };
    { name = Comd.name; input = Comd.input; source = Comd.source };
    { name = Hpccg.name; input = Hpccg.input; source = Hpccg.source };
    { name = Lulesh.name; input = Lulesh.input; source = Lulesh.source };
    { name = Xsbench.name; input = Xsbench.input; source = Xsbench.source };
    { name = Minife.name; input = Minife.input; source = Minife.source };
    { name = Npb_bt.name; input = Npb_bt.input; source = Npb_bt.source };
    { name = Npb_cg.name; input = Npb_cg.input; source = Npb_cg.source };
    { name = Npb_dc.name; input = Npb_dc.input; source = Npb_dc.source };
    { name = Npb_ep.name; input = Npb_ep.input; source = Npb_ep.source };
    { name = Npb_ft.name; input = Npb_ft.input; source = Npb_ft.source };
    { name = Npb_lu.name; input = Npb_lu.input; source = Npb_lu.source };
    { name = Npb_sp.name; input = Npb_sp.input; source = Npb_sp.source };
    { name = Npb_ua.name; input = Npb_ua.input; source = Npb_ua.source };
  ]

let find name =
  match List.find_opt (fun b -> b.name = name) all with
  | Some b -> b
  | None -> invalid_arg ("Registry.find: unknown benchmark " ^ name)

let names = List.map (fun b -> b.name) all
