(* LULESH: explicit shock hydrodynamics.  A 1D staggered-grid Sedov-like
   blast: nodal velocities/positions and zonal energy/pressure advance with
   an artificial-viscosity term and a courant-limited timestep — the
   structure of LULESH's LagrangeLeapFrog.  LULESH is the paper's most
   benign-heavy program (Fig. 4d): the output is a few aggregate energies
   printed with limited precision, so low-mantissa corruption masks. *)

let name = "lulesh"
let input = "1D Sedov blast, 64 zones, 24 steps (paper: default)"

let source =
  {|
global int nz = 64;
global float xn[65];  // node coordinates
global float un[65];  // node velocities
global float e[64];   // zonal internal energy
global float p[64];   // zonal pressure
global float q[64];   // artificial viscosity
global float m[64];   // zonal mass

int main() {
  int i; int step;
  // initial mesh and Sedov energy deposition in the first zone
  for (i = 0; i <= nz; i = i + 1) { xn[i] = tofloat(i) * 0.015625; un[i] = 0.0; }
  for (i = 0; i < nz; i = i + 1) {
    e[i] = 0.0; p[i] = 0.0; q[i] = 0.0;
    m[i] = 0.015625;
  }
  e[0] = 3.948746e1;
  float dt = 0.0001;
  float gamma = 1.6666666;
  for (step = 0; step < 24; step = step + 1) {
    // zone pressure from EOS, viscosity from velocity jump
    for (i = 0; i < nz; i = i + 1) {
      float dx = xn[i + 1] - xn[i];
      float rho = m[i] / dx;
      p[i] = (gamma - 1.0) * rho * e[i];
      float du = un[i + 1] - un[i];
      if (du < 0.0) { q[i] = 2.0 * rho * du * du; } else { q[i] = 0.0; }
    }
    // nodal acceleration from pressure gradient (free boundaries)
    for (i = 1; i < nz; i = i + 1) {
      float dm = 0.5 * (m[i - 1] + m[i]);
      float a = -((p[i] + q[i]) - (p[i - 1] + q[i - 1])) / dm;
      un[i] = un[i] + dt * a;
    }
    // position update and energy (pdV work)
    for (i = 0; i <= nz; i = i + 1) { xn[i] = xn[i] + dt * un[i]; }
    for (i = 0; i < nz; i = i + 1) {
      float du = un[i + 1] - un[i];
      float dx = xn[i + 1] - xn[i];
      e[i] = e[i] - dt * (p[i] + q[i]) * du / (m[i] / dx);
      if (e[i] < 0.0) { e[i] = 0.0; }
    }
  }
  // aggregate diagnostics only, limited precision (like lulesh's final
  // origin-energy report)
  float etot = 0.0;
  float emax = 0.0;
  for (i = 0; i < nz; i = i + 1) {
    etot = etot + e[i] * m[i];
    if (e[i] > emax) { emax = e[i]; }
  }
  print_float(etot);
  print_float(emax);
  print_int(toint(xn[nz] * 100.0));
  return 0;
}
|}
