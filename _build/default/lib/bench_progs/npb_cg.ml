(* NPB CG: eigenvalue estimate of a sparse symmetric matrix by inverse
   power iteration with an inner conjugate-gradient solve.  The paper's
   Figure 4h shows CG is the one program with *zero* SOC outcomes for every
   tool: the power iteration is self-correcting and the printed estimate is
   rounded, so a data fault either crashes, or is annealed away, or never
   affects the few printed digits. *)

let name = "CG"
let input = "n=80 sparse (7 nnz/row), 3 outer power iterations x 8 CG (paper: class B)"

let source =
  {|
global int n = 80;
global int nnz = 7;
global int colidx[560];    // n * nnz
global float aval[560];
global float x[80];
global float z[80];
global float r[80];
global float p[80];
global float q[80];

void matvec(float[] v, float[] out) {
  int i; int k;
  for (i = 0; i < n; i = i + 1) {
    float s = 0.0;
    for (k = 0; k < nnz; k = k + 1) {
      s = s + aval[i * nnz + k] * v[colidx[i * nnz + k]];
    }
    out[i] = s;
  }
}

float dot(float[] u, float[] v) {
  float s = 0.0;
  int i;
  for (i = 0; i < n; i = i + 1) { s = s + u[i] * v[i]; }
  return s;
}

int main() {
  int i; int k; int it; int outer;
  // build a diagonally dominant symmetric-ish sparse matrix
  int seed = 314159;
  for (i = 0; i < n; i = i + 1) {
    for (k = 0; k < nnz; k = k + 1) {
      seed = (seed * 1103515245 + 12345) & 2147483647;
      if (k == 0) {
        colidx[i * nnz] = i;
        aval[i * nnz] = 10.0 + tofloat(seed % 100) * 0.01;
      } else {
        colidx[i * nnz + k] = seed % n;
        aval[i * nnz + k] = -0.5 + tofloat(seed % 1000) * 0.001;
      }
    }
    x[i] = 1.0;
  }
  float zeta = 0.0;
  for (outer = 0; outer < 3; outer = outer + 1) {
    // CG solve A z = x
    for (i = 0; i < n; i = i + 1) { z[i] = 0.0; r[i] = x[i]; p[i] = r[i]; }
    float rho = dot(r, r);
    for (it = 0; it < 8; it = it + 1) {
      matvec(p, q);
      float alpha = rho / dot(p, q);
      for (i = 0; i < n; i = i + 1) { z[i] = z[i] + alpha * p[i]; }
      for (i = 0; i < n; i = i + 1) { r[i] = r[i] - alpha * q[i]; }
      float rho2 = dot(r, r);
      float beta = rho2 / rho;
      rho = rho2;
      for (i = 0; i < n; i = i + 1) { p[i] = r[i] + beta * p[i]; }
    }
    zeta = 10.0 + 1.0 / dot(x, z);
    // normalize: x = z / ||z||
    float nrm = 1.0 / sqrt(dot(z, z));
    for (i = 0; i < n; i = i + 1) { x[i] = z[i] * nrm; }
  }
  // rounded verification value only: the converged estimate
  print_int(toint(zeta * 100.0));
  return 0;
}
|}
