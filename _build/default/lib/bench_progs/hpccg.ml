(* HPCCG: conjugate-gradient solve of a 1D Laplacian system — the miniapp's
   27-point 3D stencil reduced to the 3-point 1D stencil, same CG kernel
   structure (sparse matvec, dot products, waxpby updates). *)

let name = "HPCCG-1.0"
let input = "n=160, 18 CG iterations (paper: 128 128 128)"

let source =
  {|
// HPCCG: CG on the 1D Poisson system A x = b, A = tridiag(-1, 2, -1).
global int n = 160;
global float x[160];
global float b[160];
global float r[160];
global float p[160];
global float ap[160];

// sparse matvec for the 3-point stencil: out = A * v
void matvec(float[] v, float[] out) {
  int i;
  out[0] = 2.0 * v[0] - v[1];
  for (i = 1; i < n - 1; i = i + 1) {
    out[i] = 2.0 * v[i] - v[i - 1] - v[i + 1];
  }
  out[n - 1] = 2.0 * v[n - 1] - v[n - 2];
}

float ddot(float[] u, float[] v) {
  float s = 0.0;
  int i;
  for (i = 0; i < n; i = i + 1) { s = s + u[i] * v[i]; }
  return s;
}

// w = alpha * u + beta * v
void waxpby(float a, float[] u, float bb, float[] v, float[] w) {
  int i;
  for (i = 0; i < n; i = i + 1) { w[i] = a * u[i] + bb * v[i]; }
}

int main() {
  int i;
  int it;
  // right-hand side: a smooth bump
  for (i = 0; i < n; i = i + 1) {
    x[i] = 0.0;
    b[i] = tofloat((i % 17) - 8) * 0.125;
  }
  // r = b - A x = b ; p = r
  for (i = 0; i < n; i = i + 1) { r[i] = b[i]; p[i] = r[i]; }
  float rtr = ddot(r, r);
  for (it = 0; it < 18; it = it + 1) {
    matvec(p, ap);
    float alpha = rtr / ddot(p, ap);
    waxpby(1.0, x, alpha, p, x);
    waxpby(1.0, r, -alpha, ap, r);
    float rtr_new = ddot(r, r);
    float beta = rtr_new / rtr;
    rtr = rtr_new;
    waxpby(1.0, r, beta, p, p);
    if (it % 8 == 0) { print_float(sqrt(rtr)); }
  }
  print_float(sqrt(rtr));
  float cksum = 0.0;
  for (i = 0; i < n; i = i + 1) { cksum = cksum + x[i] * tofloat(i + 1); }
  print_float(cksum);
  return 0;
}
|}
