(* NPB FT: discrete 3D FFT PDE solver, reduced to its core: an iterative
   radix-2 complex FFT with precomputed twiddles, a spectral "evolve"
   scaling step, the inverse transform, and running checksums — FT's
   fft/evolve/checksum loop. *)

let name = "FT"
let input = "complex FFT n=128, 2 evolve steps (paper: class B)"

let source =
  {|
global int n = 128;
global float re[128];
global float im[128];
global float wre[64];
global float wim[64];

// bit reversal for 7 bits
int bitrev(int v) {
  int r = 0;
  int b;
  for (b = 0; b < 7; b = b + 1) {
    r = (r << 1) | ((v >> b) & 1);
  }
  return r;
}

// in-place radix-2 DIT FFT; sign = -1 forward, +1 inverse
void fft(int sign) {
  int i; int len; int half; int j; int k;
  // bit-reversal permutation
  for (i = 0; i < n; i = i + 1) {
    int r = bitrev(i);
    if (r > i) {
      float tr = re[i]; re[i] = re[r]; re[r] = tr;
      float ti = im[i]; im[i] = im[r]; im[r] = ti;
    }
  }
  for (len = 2; len <= n; len = len * 2) {
    half = len / 2;
    int step = n / len;
    for (j = 0; j < n; j = j + len) {
      for (k = 0; k < half; k = k + 1) {
        float wr = wre[k * step];
        float wi = tofloat(sign) * wim[k * step];
        int a = j + k;
        int b = a + half;
        float xr = re[b] * wr - im[b] * wi;
        float xi = re[b] * wi + im[b] * wr;
        re[b] = re[a] - xr;
        im[b] = im[a] - xi;
        re[a] = re[a] + xr;
        im[a] = im[a] + xi;
      }
    }
  }
}

int main() {
  int i; int iter;
  float pi = 3.14159265358979;
  for (i = 0; i < n / 2; i = i + 1) {
    float ang = 2.0 * pi * tofloat(i) / tofloat(n);
    wre[i] = cos(ang);
    wim[i] = -sin(ang);
  }
  // deterministic pseudo-random initial field
  int seed = 987654321;
  for (i = 0; i < n; i = i + 1) {
    seed = (seed * 1103515245 + 12345) & 2147483647;
    re[i] = tofloat(seed % 10000) * 0.0001;
    seed = (seed * 1103515245 + 12345) & 2147483647;
    im[i] = tofloat(seed % 10000) * 0.0001;
  }
  for (iter = 0; iter < 2; iter = iter + 1) {
    fft(-1);
    // evolve: frequency-dependent exponential damping
    for (i = 0; i < n; i = i + 1) {
      int f = i;
      if (f > n / 2) { f = n - f; }
      float d = exp(-0.0001 * tofloat(f * f) * tofloat(iter + 1));
      re[i] = re[i] * d;
      im[i] = im[i] * d;
    }
    fft(1);
    // normalize by n and report the NPB-style checksum
    float cr = 0.0; float ci = 0.0;
    for (i = 0; i < n; i = i + 1) {
      re[i] = re[i] / tofloat(n);
      im[i] = im[i] / tofloat(n);
    }
    for (i = 1; i <= 32; i = i + 1) {
      int q = (i * 5) % n;
      cr = cr + re[q];
      ci = ci + im[q];
    }
    print_float(cr);
    print_float(ci);
  }
  return 0;
}
|}
