lib/bench_progs/amg2013.ml:
