lib/bench_progs/registry.ml: Amg2013 Comd Hpccg List Lulesh Minife Npb_bt Npb_cg Npb_dc Npb_ep Npb_ft Npb_lu Npb_sp Npb_ua Xsbench
