lib/bench_progs/xsbench.ml:
