lib/bench_progs/npb_dc.ml:
