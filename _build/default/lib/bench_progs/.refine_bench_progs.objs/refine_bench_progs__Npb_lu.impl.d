lib/bench_progs/npb_lu.ml:
