lib/bench_progs/comd.ml:
