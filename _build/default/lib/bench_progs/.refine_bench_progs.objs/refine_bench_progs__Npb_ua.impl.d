lib/bench_progs/npb_ua.ml:
