lib/bench_progs/npb_bt.ml:
