lib/bench_progs/hpccg.ml:
