lib/bench_progs/npb_cg.ml:
