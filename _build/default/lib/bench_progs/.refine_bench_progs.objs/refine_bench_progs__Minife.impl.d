lib/bench_progs/minife.ml:
