lib/bench_progs/npb_ep.ml:
