lib/bench_progs/npb_sp.ml:
