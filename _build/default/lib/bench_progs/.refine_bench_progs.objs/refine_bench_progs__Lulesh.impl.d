lib/bench_progs/lulesh.ml:
