lib/bench_progs/npb_ft.ml:
