(* NPB LU: SSOR-based solver for a regular-grid system.  Forward and
   backward Gauss–Seidel/SSOR sweeps with wavefront-style dependencies on a
   2D 5-point Poisson operator — the ssor() kernel of LU. *)

let name = "LU"
let input = "24x24 grid, 6 SSOR iterations, omega=1.2 (paper: class A)"

let source =
  {|
global int nx = 24;
global int ny = 24;
global float u[576];
global float rhs[576];

float resid_norm() {
  int i; int j;
  float s = 0.0;
  for (i = 1; i < nx - 1; i = i + 1) {
    for (j = 1; j < ny - 1; j = j + 1) {
      int k = i * ny + j;
      float r = rhs[k] - (4.0 * u[k] - u[k - 1] - u[k + 1] - u[k - ny] - u[k + ny]);
      s = s + r * r;
    }
  }
  return sqrt(s);
}

int main() {
  int i; int j; int it;
  float omega = 1.2;
  for (i = 0; i < nx * ny; i = i + 1) {
    u[i] = 0.0;
    rhs[i] = sin(tofloat(i) * 0.031) * 0.5 + 0.01 * tofloat(i % 9);
  }
  for (it = 0; it < 6; it = it + 1) {
    // forward sweep (lower triangular)
    for (i = 1; i < nx - 1; i = i + 1) {
      for (j = 1; j < ny - 1; j = j + 1) {
        int k = i * ny + j;
        float gs = (rhs[k] + u[k - 1] + u[k + 1] + u[k - ny] + u[k + ny]) * 0.25;
        u[k] = u[k] + omega * (gs - u[k]);
      }
    }
    // backward sweep (upper triangular)
    for (i = nx - 2; i >= 1; i = i - 1) {
      for (j = ny - 2; j >= 1; j = j - 1) {
        int k = i * ny + j;
        float gs = (rhs[k] + u[k - 1] + u[k + 1] + u[k - ny] + u[k + ny]) * 0.25;
        u[k] = u[k] + omega * (gs - u[k]);
      }
    }
  }
  print_float_full(resid_norm());
  float s0 = 0.0; float s1 = 0.0;
  for (i = 0; i < nx * ny; i = i + 1) {
    s0 = s0 + u[i];
    s1 = s1 + u[i] * u[i];
  }
  print_float_full(s0);
  print_float_full(s1);
  return 0;
}
|}
