(* NPB EP: embarrassingly parallel random-number kernel.  Generates
   uniform pairs with the NPB-style linear congruential generator, applies
   the Marsaglia polar method to get Gaussian deviates, and tallies them
   into concentric square annuli — EP's exact computational shape. *)

let name = "EP"
let input = "1500 pairs, 10 annuli (paper: class A)"

let source =
  {|
global int npairs = 1500;
global int counts[10];
global float sx;
global float sy;

int main() {
  int k; int i;
  int seed = 123456789;
  sx = 0.0; sy = 0.0;
  for (i = 0; i < 10; i = i + 1) { counts[i] = 0; }
  int accepted = 0;
  for (k = 0; k < npairs; k = k + 1) {
    seed = (seed * 1103515245 + 12345) & 2147483647;
    float u1 = tofloat(seed % 1000000) / 500000.0 - 1.0;
    seed = (seed * 1103515245 + 12345) & 2147483647;
    float u2 = tofloat(seed % 1000000) / 500000.0 - 1.0;
    float t = u1 * u1 + u2 * u2;
    if (t <= 1.0 && t > 0.0) {
      accepted = accepted + 1;
      float fac = sqrt(-2.0 * log(t) / t);
      float g1 = u1 * fac;
      float g2 = u2 * fac;
      sx = sx + g1;
      sy = sy + g2;
      float m = fabs(g1);
      if (fabs(g2) > m) { m = fabs(g2); }
      int bin = toint(m);
      if (bin > 9) { bin = 9; }
      counts[bin] = counts[bin] + 1;
    }
  }
  print_int(accepted);
  print_float_full(sx);
  print_float_full(sy);
  for (i = 0; i < 10; i = i + 1) { print_int(counts[i]); }
  return 0;
}
|}
