(* NPB DC: data-cube operator.  Generates a synthetic fact table and
   computes aggregate views over every subset of three dimensions
   (group-by via direct-indexed accumulation), then reports per-view
   checksums — DC's measure-aggregation structure. *)

let name = "DC"
let input = "600 tuples, dims 4x8x16, all 8 views (paper: class W)"

let source =
  {|
global int ntup = 600;
global int da[600]; global int db[600]; global int dc_[600];
global float meas[600];
// view accumulators
global float vabc[512];   // 4*8*16
global float vab[32];     // 4*8
global float vac[64];     // 4*16
global float vbc[128];    // 8*16
global float va[4]; global float vb[8]; global float vc[16];
global float vtot;

int main() {
  int t; int i;
  int seed = 271828;
  for (t = 0; t < ntup; t = t + 1) {
    seed = (seed * 1103515245 + 12345) & 2147483647;
    da[t] = seed % 4;
    seed = (seed * 1103515245 + 12345) & 2147483647;
    db[t] = seed % 8;
    seed = (seed * 1103515245 + 12345) & 2147483647;
    dc_[t] = seed % 16;
    seed = (seed * 1103515245 + 12345) & 2147483647;
    meas[t] = tofloat(seed % 10000) * 0.01 + 1.0;
  }
  for (i = 0; i < 512; i = i + 1) { vabc[i] = 0.0; }
  for (i = 0; i < 32; i = i + 1) { vab[i] = 0.0; }
  for (i = 0; i < 64; i = i + 1) { vac[i] = 0.0; }
  for (i = 0; i < 128; i = i + 1) { vbc[i] = 0.0; }
  for (i = 0; i < 4; i = i + 1) { va[i] = 0.0; }
  for (i = 0; i < 8; i = i + 1) { vb[i] = 0.0; }
  for (i = 0; i < 16; i = i + 1) { vc[i] = 0.0; }
  vtot = 0.0;
  for (t = 0; t < ntup; t = t + 1) {
    int a = da[t]; int b = db[t]; int c = dc_[t];
    float mm = meas[t];
    vabc[(a * 8 + b) * 16 + c] = vabc[(a * 8 + b) * 16 + c] + mm;
    vab[a * 8 + b] = vab[a * 8 + b] + mm;
    vac[a * 16 + c] = vac[a * 16 + c] + mm;
    vbc[b * 16 + c] = vbc[b * 16 + c] + mm;
    va[a] = va[a] + mm;
    vb[b] = vb[b] + mm;
    vc[c] = vc[c] + mm;
    vtot = vtot + mm;
  }
  // per-view weighted checksums, full precision (DC is SOC-prone)
  float s = 0.0;
  for (i = 0; i < 512; i = i + 1) { s = s + vabc[i] * tofloat(1 + i % 3); }
  print_float_full(s);
  s = 0.0;
  for (i = 0; i < 32; i = i + 1) { s = s + vab[i] * tofloat(1 + i % 5); }
  for (i = 0; i < 64; i = i + 1) { s = s + vac[i] * tofloat(1 + i % 7); }
  for (i = 0; i < 128; i = i + 1) { s = s + vbc[i] * tofloat(1 + i % 11); }
  print_float_full(s);
  s = 0.0;
  for (i = 0; i < 4; i = i + 1) { s = s + va[i]; }
  for (i = 0; i < 8; i = i + 1) { s = s + vb[i] * 2.0; }
  for (i = 0; i < 16; i = i + 1) { s = s + vc[i] * 3.0; }
  print_float_full(s);
  print_float_full(vtot);
  return 0;
}
|}
