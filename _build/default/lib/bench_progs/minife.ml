(* miniFE: implicit finite elements — element-by-element assembly of a 1D
   stiffness matrix (stored as diagonals), Dirichlet boundary conditions,
   and a CG solve, mirroring miniFE's generate_matrix + cg_solve phases. *)

let name = "miniFE"
let input = "1D FE mesh, 144 elements, 14 CG iterations (paper: -nx 18 -ny 16 -nz 16)"

let source =
  {|
global int nel = 144;
global int nn = 145;       // nodes
global float kd[145];      // stiffness diagonal
global float ko[145];      // off-diagonal (upper), ko[i] couples i and i+1
global float rhs[145];
global float x[145];
global float r[145];
global float p[145];
global float ap[145];

void matvec(float[] v, float[] out) {
  int i;
  for (i = 0; i < nn; i = i + 1) {
    float s = kd[i] * v[i];
    if (i > 0) { s = s + ko[i - 1] * v[i - 1]; }
    if (i < nn - 1) { s = s + ko[i] * v[i + 1]; }
    out[i] = s;
  }
}

float dot(float[] u, float[] v) {
  float s = 0.0;
  int i;
  for (i = 0; i < nn; i = i + 1) { s = s + u[i] * v[i]; }
  return s;
}

int main() {
  int i; int e; int it;
  // assembly: element stiffness [k -k; -k k] with varying coefficient
  for (i = 0; i < nn; i = i + 1) { kd[i] = 0.0; ko[i] = 0.0; rhs[i] = 0.0; x[i] = 0.0; }
  for (e = 0; e < nel; e = e + 1) {
    float coef = 1.0 + 0.5 * sin(tofloat(e) * 0.17);
    kd[e] = kd[e] + coef;
    kd[e + 1] = kd[e + 1] + coef;
    ko[e] = ko[e] - coef;
    // body load
    rhs[e] = rhs[e] + 0.01;
    rhs[e + 1] = rhs[e + 1] + 0.01;
  }
  // Dirichlet BC at both ends: pin x[0] = x[nn-1] = 0
  kd[0] = 1.0; ko[0] = 0.0; rhs[0] = 0.0;
  kd[nn - 1] = 1.0; ko[nn - 2] = 0.0; rhs[nn - 1] = 0.0;
  // CG
  for (i = 0; i < nn; i = i + 1) { r[i] = rhs[i]; p[i] = r[i]; }
  float rtr = dot(r, r);
  for (it = 0; it < 14; it = it + 1) {
    matvec(p, ap);
    float alpha = rtr / dot(p, ap);
    for (i = 0; i < nn; i = i + 1) { x[i] = x[i] + alpha * p[i]; }
    for (i = 0; i < nn; i = i + 1) { r[i] = r[i] - alpha * ap[i]; }
    float rtr2 = dot(r, r);
    float beta = rtr2 / rtr;
    rtr = rtr2;
    for (i = 0; i < nn; i = i + 1) { p[i] = r[i] + beta * p[i]; }
  }
  print_float_full(sqrt(rtr));
  float cksum = 0.0;
  for (i = 0; i < nn; i = i + 1) { cksum = cksum + x[i] * tofloat(1 + i % 7); }
  print_float_full(cksum);
  return 0;
}
|}
