(** The 14 benchmark programs of the paper's Table 3, written in MinC.

    Each miniature kernel mirrors the computational pattern of the original
    C/C++ program — CG solves, Lennard-Jones forces, cross-section lookups,
    FFTs, SSOR sweeps, data-cube aggregation, unstructured gather/scatter —
    at laptop-scale inputs (documented next to the paper's inputs). *)

type bench = {
  name : string;  (** the paper's program name, e.g. "HPCCG-1.0" *)
  input : string;  (** this repro's input | the paper's input *)
  source : string;  (** MinC source text *)
}

val all : bench list
(** All 14, in the paper's Table 3 order. *)

val find : string -> bench
(** Raises [Invalid_argument] for unknown names. *)

val names : string list
