(* XSBench: Monte Carlo neutron-transport macroscopic cross-section
   lookups — the dominant kernel of OpenMC.  Builds sorted nuclide energy
   grids, then performs many randomized lookups: binary search on the
   unionized grid, per-nuclide linear interpolation, accumulation into the
   macro XS vector. *)

let name = "XSBench"
let input = "4 nuclides x 256 gridpoints, 500 lookups (paper: -s small)"

let source =
  {|
global int ngrid = 256;
global int nnuc = 4;
global float egrid[256];     // unionized energy grid (sorted)
global float xs0[256]; global float xs1[256];
global float xs2[256]; global float xs3[256];
global float macro[4];

int search(float energy) {
  // binary search: largest index with egrid[idx] <= energy
  int lo = 0;
  int hi = ngrid - 1;
  while (lo < hi - 1) {
    int mid = (lo + hi) / 2;
    if (egrid[mid] <= energy) { lo = mid; } else { hi = mid; }
  }
  return lo;
}

float interp(float[] xs, int idx, float frac) {
  return xs[idx] + frac * (xs[idx + 1] - xs[idx]);
}

int main() {
  int i; int lk;
  // energy grid: geometric-ish spacing; XS tables: smooth + resonances
  for (i = 0; i < ngrid; i = i + 1) {
    float t = tofloat(i) / 256.0;
    egrid[i] = t * t * 19.0 + t + 0.000001;
    xs0[i] = 4.0 + sin(t * 37.0) * 1.5;
    xs1[i] = 1.0 / (0.04 + t);
    xs2[i] = 2.0 + cos(t * 11.0);
    xs3[i] = 0.3 + t * 2.0;
  }
  for (i = 0; i < nnuc; i = i + 1) { macro[i] = 0.0; }
  float vhigh = egrid[255];
  int seed = 42;
  float total = 0.0;
  for (lk = 0; lk < 500; lk = lk + 1) {
    seed = (seed * 1103515245 + 12345) & 2147483647;
    float energy = tofloat(seed % 100000) / 100000.0 * (vhigh - 0.000002) + 0.000001;
    int idx = search(energy);
    float frac = (energy - egrid[idx]) / (egrid[idx + 1] - egrid[idx]);
    float m0 = interp(xs0, idx, frac);
    float m1 = interp(xs1, idx, frac);
    float m2 = interp(xs2, idx, frac);
    float m3 = interp(xs3, idx, frac);
    macro[0] = macro[0] + m0;
    macro[1] = macro[1] + m1;
    macro[2] = macro[2] + m2;
    macro[3] = macro[3] + m3;
    total = total + m0 + m1 + m2 + m3;
  }
  for (i = 0; i < nnuc; i = i + 1) { print_float_full(macro[i]); }
  print_float(total);
  return 0;
}
|}
