(* NPB UA: unstructured adaptive mesh.  Irregular gather/scatter over an
   element-to-node indirection table, error-driven refinement that rebuilds
   the indirection (adaptivity), and nodal smoothing — UA's
   characteristically pointer-chasing memory behaviour. *)

let name = "UA"
let input = "96 elements / 64 nodes, 5 adapt cycles (paper: class B)"

let source =
  {|
global int nel = 96;
global int nnode = 64;
global int elnode[384];    // 4 nodes per element (indirection table)
global float nodeval[64];
global float elerr[96];
global int active[96];

int main() {
  int e; int k; int cycle; int i;
  int seed = 555555;
  // irregular connectivity
  for (e = 0; e < nel; e = e + 1) {
    active[e] = 1;
    for (k = 0; k < 4; k = k + 1) {
      seed = (seed * 1103515245 + 12345) & 2147483647;
      elnode[e * 4 + k] = seed % nnode;
    }
  }
  for (i = 0; i < nnode; i = i + 1) {
    nodeval[i] = sin(tofloat(i) * 0.37) + 1.5;
  }
  float total_err = 0.0;
  for (cycle = 0; cycle < 5; cycle = cycle + 1) {
    // gather: per-element error estimate from its nodes
    total_err = 0.0;
    for (e = 0; e < nel; e = e + 1) {
      if (active[e] == 1) {
        float v0 = nodeval[elnode[e * 4]];
        float v1 = nodeval[elnode[e * 4 + 1]];
        float v2 = nodeval[elnode[e * 4 + 2]];
        float v3 = nodeval[elnode[e * 4 + 3]];
        float avg = 0.25 * (v0 + v1 + v2 + v3);
        float err = fabs(v0 - avg) + fabs(v1 - avg) + fabs(v2 - avg) + fabs(v3 - avg);
        elerr[e] = err;
        total_err = total_err + err;
      }
    }
    float thresh = 1.2 * total_err / tofloat(nel);
    // adapt: deactivate low-error elements, rewire high-error ones to
    // fresh node sets (refinement proxy)
    for (e = 0; e < nel; e = e + 1) {
      if (active[e] == 1) {
        if (elerr[e] < 0.25 * thresh) { active[e] = 0; }
        else {
          if (elerr[e] > thresh) {
            for (k = 0; k < 4; k = k + 1) {
              seed = (seed * 1103515245 + 12345) & 2147483647;
              elnode[e * 4 + k] = (elnode[e * 4 + k] + seed % 7) % nnode;
            }
          }
        }
      }
    }
    // scatter: smooth node values through active elements
    for (e = 0; e < nel; e = e + 1) {
      if (active[e] == 1) {
        float avg = 0.25 * (nodeval[elnode[e * 4]] + nodeval[elnode[e * 4 + 1]]
                    + nodeval[elnode[e * 4 + 2]] + nodeval[elnode[e * 4 + 3]]);
        for (k = 0; k < 4; k = k + 1) {
          int nd = elnode[e * 4 + k];
          nodeval[nd] = 0.9 * nodeval[nd] + 0.1 * avg;
        }
      }
    }
  }
  int nactive = 0;
  for (e = 0; e < nel; e = e + 1) { nactive = nactive + active[e]; }
  print_int(nactive);
  print_float_full(total_err);
  float s = 0.0;
  for (i = 0; i < nnode; i = i + 1) { s = s + nodeval[i] * tofloat(1 + i % 4); }
  print_float_full(s);
  return 0;
}
|}
