(* NPB BT: block-tridiagonal ADI solver.  Solves many independent 3x3
   block-tridiagonal line systems with dense block factorization
   (matmul/matvec on 3x3 blocks), the core of BT's x/y/z_solve sweeps. *)

let name = "BT"
let input = "16 lines of 12 cells, 3x3 blocks, 3 ADI sweeps (paper: class A)"

let source =
  {|
// Per line: block tridiagonal system with 3x3 blocks; Thomas algorithm
// with explicit 3x3 inverses.
global int ncell = 12;
global int nline = 16;
global float u[576];        // solution: nline * ncell * 3
global float rhsv[576];
// workspace per line: factored diagonal inverses and temporaries
global float dwork[108];    // ncell * 9
global float cwork[36];     // ncell * 3

// 3x3 inverse of the SPD-ish block [d a 0.1; a d a; 0.1 a d]
void inv3(float d, float a, float[] out, int base) {
  float b = 0.1;
  float det = d * (d * d - a * a) - a * (a * d - a * b) + b * (a * a - d * b);
  float id = 1.0 / det;
  out[base + 0] = (d * d - a * a) * id;
  out[base + 1] = (b * a - a * d) * id;
  out[base + 2] = (a * a - d * b) * id;
  out[base + 3] = (a * b - a * d) * id;
  out[base + 4] = (d * d - b * b) * id;
  out[base + 5] = (b * a - d * a) * id;
  out[base + 6] = (a * a - b * d) * id;
  out[base + 7] = (a * b - d * a) * id;
  out[base + 8] = (d * d - a * a) * id;
}

// y(3) = M(3x3, at base) * x(3)
void mat3vec(float[] mm, int base, float x0, float x1, float x2, float[] y) {
  y[0] = mm[base + 0] * x0 + mm[base + 1] * x1 + mm[base + 2] * x2;
  y[1] = mm[base + 3] * x0 + mm[base + 4] * x1 + mm[base + 5] * x2;
  y[2] = mm[base + 6] * x0 + mm[base + 7] * x1 + mm[base + 8] * x2;
}

int main() {
  int line; int c; int k; int sweep;
  float tmp[3];
  // initialize rhs with a deterministic field
  for (k = 0; k < nline * ncell * 3; k = k + 1) {
    rhsv[k] = sin(tofloat(k) * 0.05) + 0.3;
    u[k] = 0.0;
  }
  float offc = -0.4;  // off-diagonal block coupling (scalar * I)
  for (sweep = 0; sweep < 3; sweep = sweep + 1) {
    for (line = 0; line < nline; line = line + 1) {
      int lb = line * ncell * 3;
      // forward elimination: d'_c = inv(D - offc^2 d'_{c-1}) folded into a
      // scalar recurrence on the block diagonal strength
      float dstr = 2.5;
      for (c = 0; c < ncell; c = c + 1) {
        inv3(dstr, 0.7, dwork, c * 9);
        // rhs'_c = rhs_c - offc * rhs'_{c-1}
        int b = lb + c * 3;
        if (c > 0) {
          rhsv[b] = rhsv[b] - offc * cwork[(c - 1) * 3];
          rhsv[b + 1] = rhsv[b + 1] - offc * cwork[(c - 1) * 3 + 1];
          rhsv[b + 2] = rhsv[b + 2] - offc * cwork[(c - 1) * 3 + 2];
        }
        mat3vec(dwork, c * 9, rhsv[b], rhsv[b + 1], rhsv[b + 2], tmp);
        cwork[c * 3] = tmp[0]; cwork[c * 3 + 1] = tmp[1]; cwork[c * 3 + 2] = tmp[2];
        dstr = 2.5 - offc * offc / dstr;
      }
      // back substitution
      for (c = ncell - 1; c >= 0; c = c - 1) {
        int b = lb + c * 3;
        u[b] = cwork[c * 3];
        u[b + 1] = cwork[c * 3 + 1];
        u[b + 2] = cwork[c * 3 + 2];
        if (c < ncell - 1) {
          u[b] = u[b] - offc * 0.3 * u[b + 3];
          u[b + 1] = u[b + 1] - offc * 0.3 * u[b + 4];
          u[b + 2] = u[b + 2] - offc * 0.3 * u[b + 5];
        }
      }
    }
    // couple lines for the next sweep (ADI-style transpose mixing)
    for (k = 0; k < nline * ncell * 3; k = k + 1) {
      rhsv[k] = 0.8 * rhsv[k] + 0.2 * u[(k * 7) % (nline * ncell * 3)];
    }
  }
  // verification values, full precision (BT reports SOC-heavy outcomes)
  float s0 = 0.0; float s1 = 0.0;
  for (k = 0; k < nline * ncell * 3; k = k + 1) {
    s0 = s0 + u[k];
    s1 = s1 + u[k] * tofloat(1 + k % 5);
  }
  print_float_full(s0);
  print_float_full(s1);
  return 0;
}
|}
