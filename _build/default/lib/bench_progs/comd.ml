(* CoMD: classical molecular dynamics — Lennard-Jones pair forces with a
   cutoff and velocity-Verlet time stepping, the computational core of the
   proxy app (eamForce / advanceVelocity / advancePosition). *)

let name = "CoMD"
let input = "28 atoms, 4 LJ velocity-Verlet steps (paper: 32x32x32 lattice)"

let source =
  {|
// CoMD: Lennard-Jones MD in a periodic 1D box with 3D coordinates.
global int nat = 28;
global float px[28]; global float py[28]; global float pz[28];
global float vx[28]; global float vy[28]; global float vz[28];
global float fx[28]; global float fy[28]; global float fz[28];
global float epot;

float pbc(float d, float box) {
  if (d > 0.5 * box) { return d - box; }
  if (d < -0.5 * box) { return d + box; }
  return d;
}

void compute_force() {
  int i; int j;
  float box = 12.0;
  float cutoff2 = 6.25;
  epot = 0.0;
  for (i = 0; i < nat; i = i + 1) { fx[i] = 0.0; fy[i] = 0.0; fz[i] = 0.0; }
  for (i = 0; i < nat; i = i + 1) {
    for (j = i + 1; j < nat; j = j + 1) {
      float dx = pbc(px[i] - px[j], box);
      float dy = pbc(py[i] - py[j], box);
      float dz = pbc(pz[i] - pz[j], box);
      float r2 = dx * dx + dy * dy + dz * dz;
      if (r2 < cutoff2) {
        float inv2 = 1.0 / r2;
        float inv6 = inv2 * inv2 * inv2;
        float lj = 4.0 * (inv6 * inv6 - inv6);
        float fmag = 24.0 * inv2 * (2.0 * inv6 * inv6 - inv6);
        epot = epot + lj;
        fx[i] = fx[i] + fmag * dx; fx[j] = fx[j] - fmag * dx;
        fy[i] = fy[i] + fmag * dy; fy[j] = fy[j] - fmag * dy;
        fz[i] = fz[i] + fmag * dz; fz[j] = fz[j] - fmag * dz;
      }
    }
  }
}

int main() {
  int i; int step;
  float dt = 0.002;
  // initial lattice positions with a deterministic jitter
  int seed = 20170711;
  for (i = 0; i < nat; i = i + 1) {
    seed = (seed * 1103515245 + 12345) & 2147483647;
    float jit = tofloat(seed % 1000) * 0.0001;
    px[i] = tofloat(i % 4) * 1.3 + jit;
    py[i] = tofloat((i / 4) % 4) * 1.3 + jit * 0.5;
    pz[i] = tofloat(i / 16) * 1.3 - jit;
    vx[i] = 0.0; vy[i] = 0.0; vz[i] = 0.0;
  }
  compute_force();
  for (step = 0; step < 4; step = step + 1) {
    for (i = 0; i < nat; i = i + 1) {
      vx[i] = vx[i] + 0.5 * dt * fx[i];
      vy[i] = vy[i] + 0.5 * dt * fy[i];
      vz[i] = vz[i] + 0.5 * dt * fz[i];
      px[i] = px[i] + dt * vx[i];
      py[i] = py[i] + dt * vy[i];
      pz[i] = pz[i] + dt * vz[i];
    }
    compute_force();
    for (i = 0; i < nat; i = i + 1) {
      vx[i] = vx[i] + 0.5 * dt * fx[i];
      vy[i] = vy[i] + 0.5 * dt * fy[i];
      vz[i] = vz[i] + 0.5 * dt * fz[i];
    }
  }
  float ekin = 0.0;
  for (i = 0; i < nat; i = i + 1) {
    ekin = ekin + 0.5 * (vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i]);
  }
  print_float(epot);
  print_float(ekin);
  print_float(epot + ekin);
  return 0;
}
|}
