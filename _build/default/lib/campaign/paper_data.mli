(** Reference values transcribed from the paper's evaluation section, for
    paper-vs-measured reporting: the complete Table 6 outcome counts, the
    Figure 5 normalized campaign times, and the Table 5 REFINE p-values. *)

type row = { crash : int; soc : int; benign : int }

val table6 : (string * (row * row * row)) list
(** program -> (LLFI, REFINE, PINFI) rows, 1068 samples each. *)

val figure5 : (string * (float * float)) list
(** program -> (LLFI, REFINE) campaign time normalized to PINFI. *)

val figure5_total : float * float
(** (3.9, 1.2): the paper's aggregate normalized times. *)

val table5_refine_pvalues : (string * float) list
(** The published REFINE-vs-PINFI p-values (all non-significant). *)

val find_table6 : string -> row * row * row
