(** Campaign orchestration: statistically-sized batches of fault-injection
    experiments per (program, tool) cell, as in the paper's §5.3. *)

type counts = { crash : int; soc : int; benign : int }

val total : counts -> int
val zero : counts
val add_outcome : counts -> Refine_core.Fault.outcome -> counts

type cell = {
  program : string;
  tool : Refine_core.Tool.kind;
  samples : int;
  counts : counts;
  injection_cost : int64;  (** summed modeled time of all injection runs —
                               the campaign-time measure of Figure 5 *)
  profile : Refine_core.Fault.profile;
  static_instrumented : int;
}

val run_cell :
  ?domains:int ->
  ?sel:Refine_core.Selection.t ->
  samples:int ->
  seed:int ->
  Refine_core.Tool.kind ->
  program:string ->
  source:string ->
  unit ->
  cell
(** Compile + profile once, then run [samples] injections.  Each experiment
    owns a split of the master PRNG: results are deterministic in [seed]
    and independent of the number of domains. *)

val run_matrix :
  ?domains:int ->
  ?sel:Refine_core.Selection.t ->
  samples:int ->
  seed:int ->
  (string * string) list ->
  Refine_core.Tool.kind list ->
  cell list
(** The full evaluation grid: every (program, source) under every tool. *)

val find_cell : cell list -> program:string -> tool:Refine_core.Tool.kind -> cell

val row : cell -> int array
(** [crash; soc; benign] contingency row for {!Refine_stats.Chi2.test}. *)
