(* Campaign orchestration: N statistically-sized fault-injection
   experiments per (program, tool) cell, as in the paper's §5.3 — one
   uniformly chosen single bit flip per run, outcomes tallied into a
   crash/SOC/benign contingency row.

   Each experiment owns a split of the master PRNG, so results are
   deterministic for a given seed regardless of how work is distributed
   over domains. *)

module T = Refine_core.Tool
module F = Refine_core.Fault
module P = Refine_support.Prng

type counts = { crash : int; soc : int; benign : int }

let total c = c.crash + c.soc + c.benign

let add_outcome c = function
  | F.Crash -> { c with crash = c.crash + 1 }
  | F.Soc -> { c with soc = c.soc + 1 }
  | F.Benign -> { c with benign = c.benign + 1 }

let zero = { crash = 0; soc = 0; benign = 0 }

type cell = {
  program : string;
  tool : T.kind;
  samples : int;
  counts : counts;
  injection_cost : int64; (* summed modeled time of all injection runs *)
  profile : F.profile;
  static_instrumented : int;
}

(* One (program, tool) cell: prepare (compile + profile) once, then run
   [samples] injections. *)
let run_cell ?domains ?(sel = Refine_core.Selection.default) ~samples ~seed
    (tool : T.kind) ~program ~source () : cell =
  let prepared = T.prepare ~sel tool source in
  let master = P.create (seed lxor Hashtbl.hash (program, T.kind_name tool)) in
  let rngs = Array.init samples (fun _ -> P.split master) in
  let outcomes =
    Refine_support.Parallel.map_array ?domains (fun rng -> T.run_injection prepared rng) rngs
  in
  let counts = Array.fold_left (fun acc e -> add_outcome acc e.F.outcome) zero outcomes in
  let injection_cost =
    Array.fold_left (fun acc e -> Int64.add acc e.F.run_cost) 0L outcomes
  in
  {
    program;
    tool;
    samples;
    counts;
    injection_cost;
    profile = prepared.T.profile;
    static_instrumented = prepared.T.static_instrumented;
  }

(* The full evaluation matrix: every program x every tool. *)
let run_matrix ?domains ?sel ~samples ~seed (programs : (string * string) list)
    (tools : T.kind list) : cell list =
  List.concat_map
    (fun (program, source) ->
      List.map
        (fun tool -> run_cell ?domains ?sel ~samples ~seed tool ~program ~source ())
        tools)
    programs

let find_cell cells ~program ~tool =
  List.find (fun c -> c.program = program && c.tool = tool) cells

(* contingency row for the chi-squared tests *)
let row c = [| c.counts.crash; c.counts.soc; c.counts.benign |]
