lib/campaign/report.ml: Buffer Experiment Int64 List Paper_data Printf Refine_core Refine_stats Refine_support String
