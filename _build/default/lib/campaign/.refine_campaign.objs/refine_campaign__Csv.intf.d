lib/campaign/csv.mli: Experiment
