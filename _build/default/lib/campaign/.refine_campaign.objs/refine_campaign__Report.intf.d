lib/campaign/report.mli: Experiment Refine_core Refine_stats
