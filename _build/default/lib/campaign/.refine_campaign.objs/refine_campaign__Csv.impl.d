lib/campaign/csv.ml: Experiment Int64 List Printf Refine_core String
