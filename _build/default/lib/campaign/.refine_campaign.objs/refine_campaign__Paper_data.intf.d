lib/campaign/paper_data.mli:
