lib/campaign/paper_data.ml: List
