lib/campaign/experiment.mli: Refine_core
