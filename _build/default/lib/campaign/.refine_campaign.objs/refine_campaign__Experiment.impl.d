lib/campaign/experiment.ml: Array Hashtbl Int64 List Refine_core Refine_support
