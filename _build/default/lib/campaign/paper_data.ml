(* Reference values transcribed from the paper's evaluation section, so the
   benchmark harness and EXPERIMENTS.md can print paper-vs-measured
   side-by-side.

   - [table6]: complete outcome frequencies (Crash, SOC, Benign) per
     program per tool, 1068 samples each (paper Table 6 / appendix A.5);
   - [figure5]: campaign execution time of LLFI and REFINE normalized to
     PINFI (paper Figure 5a-5o);
   - [table5_verdicts]: significance verdicts of the chi-squared tests
     (paper Table 5): LLFI vs PINFI differs for every program, REFINE vs
     PINFI for none. *)

type row = { crash : int; soc : int; benign : int }

(* program -> (llfi, refine, pinfi) *)
let table6 : (string * (row * row * row)) list =
  [
    ( "AMG2013",
      ( { crash = 395; soc = 168; benign = 505 },
        { crash = 254; soc = 87; benign = 727 },
        { crash = 269; soc = 70; benign = 729 } ) );
    ( "CoMD",
      ( { crash = 372; soc = 117; benign = 579 },
        { crash = 136; soc = 55; benign = 877 },
        { crash = 175; soc = 59; benign = 834 } ) );
    ( "HPCCG-1.0",
      ( { crash = 320; soc = 195; benign = 553 },
        { crash = 159; soc = 68; benign = 841 },
        { crash = 162; soc = 77; benign = 829 } ) );
    ( "XSBench",
      ( { crash = 55; soc = 355; benign = 658 },
        { crash = 179; soc = 194; benign = 695 },
        { crash = 188; soc = 203; benign = 677 } ) );
    ( "miniFE",
      ( { crash = 420; soc = 327; benign = 321 },
        { crash = 186; soc = 177; benign = 705 },
        { crash = 215; soc = 162; benign = 691 } ) );
    ( "lulesh",
      ( { crash = 21; soc = 4; benign = 1043 },
        { crash = 76; soc = 2; benign = 990 },
        { crash = 76; soc = 4; benign = 988 } ) );
    ( "BT",
      ( { crash = 224; soc = 543; benign = 301 },
        { crash = 20; soc = 347; benign = 701 },
        { crash = 15; soc = 363; benign = 690 } ) );
    ( "CG",
      ( { crash = 352; soc = 0; benign = 716 },
        { crash = 201; soc = 0; benign = 867 },
        { crash = 175; soc = 0; benign = 893 } ) );
    ( "DC",
      ( { crash = 495; soc = 298; benign = 275 },
        { crash = 310; soc = 154; benign = 604 },
        { crash = 347; soc = 155; benign = 566 } ) );
    ( "EP",
      ( { crash = 181; soc = 470; benign = 417 },
        { crash = 44; soc = 335; benign = 689 },
        { crash = 31; soc = 341; benign = 696 } ) );
    ( "FT",
      ( { crash = 386; soc = 70; benign = 612 },
        { crash = 104; soc = 51; benign = 913 },
        { crash = 96; soc = 51; benign = 921 } ) );
    ( "LU",
      ( { crash = 238; soc = 528; benign = 302 },
        { crash = 18; soc = 386; benign = 664 },
        { crash = 17; soc = 436; benign = 615 } ) );
    ( "SP",
      ( { crash = 268; soc = 800; benign = 0 },
        { crash = 45; soc = 612; benign = 411 },
        { crash = 42; soc = 626; benign = 400 } ) );
    ( "UA",
      ( { crash = 792; soc = 136; benign = 140 },
        { crash = 98; soc = 237; benign = 733 },
        { crash = 105; soc = 242; benign = 721 } ) );
  ]

(* program -> (llfi_norm, refine_norm) execution time normalized to PINFI *)
let figure5 : (string * (float * float)) list =
  [
    ("AMG2013", (5.5, 0.7));
    ("CoMD", (3.1, 1.1));
    ("HPCCG-1.0", (4.9, 1.1));
    ("lulesh", (3.9, 1.6));
    ("XSBench", (1.6, 0.8));
    ("miniFE", (9.4, 0.9));
    ("BT", (4.8, 1.8));
    ("CG", (4.0, 0.8));
    ("DC", (2.2, 0.7));
    ("EP", (0.8, 0.9));
    ("FT", (3.0, 1.0));
    ("LU", (3.8, 1.6));
    ("SP", (4.8, 1.2));
    ("UA", (4.4, 1.2));
  ]

let figure5_total = (3.9, 1.2)

(* paper Table 5: p-values of REFINE vs PINFI (LLFI vs PINFI is ~0
   everywhere and significant for all 14 programs) *)
let table5_refine_pvalues : (string * float) list =
  [
    ("AMG2013", 0.40); ("CoMD", 0.08); ("HPCCG-1.0", 0.81); ("XSBench", 0.69);
    ("miniFE", 0.14); ("lulesh", 0.60); ("BT", 0.26); ("CG", 0.06);
    ("DC", 0.13); ("EP", 0.55); ("FT", 0.92); ("LU", 0.21);
    ("SP", 0.92); ("UA", 0.83);
  ]

let find_table6 program =
  match List.assoc_opt program table6 with
  | Some v -> v
  | None -> invalid_arg ("Paper_data.find_table6: " ^ program)
