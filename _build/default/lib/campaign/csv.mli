(** CSV persistence for campaign results. *)

val header : string

val to_string : Experiment.cell list -> string
val save : string -> Experiment.cell list -> unit

exception Parse_error of string

val of_string : string -> Experiment.cell list
(** Inverse of {!to_string}.  Golden outputs are not persisted: reloaded
    cells are suitable for statistics and reporting, not for re-running
    injections. *)

val load : string -> Experiment.cell list
