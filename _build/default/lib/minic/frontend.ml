(* One-call front end: MinC source text -> verified IR module. *)

exception Compile_error of string

let compile ?(verify = true) (src : string) : Refine_ir.Ir.modul =
  let wrap phase f =
    try f () with
    | Lexer.Error (m, l) -> raise (Compile_error (Printf.sprintf "%s: line %d: %s" phase l m))
    | Parser.Error (m, l) -> raise (Compile_error (Printf.sprintf "%s: line %d: %s" phase l m))
    | Typecheck.Error (m, l) -> raise (Compile_error (Printf.sprintf "%s: line %d: %s" phase l m))
    | Irgen.Error (m, l) -> raise (Compile_error (Printf.sprintf "%s: line %d: %s" phase l m))
  in
  let prog = wrap "parse" (fun () -> Parser.parse_program src) in
  wrap "typecheck" (fun () -> Typecheck.check_program prog);
  let m = wrap "irgen" (fun () -> Irgen.gen_program prog) in
  if verify then begin
    try Refine_ir.Verify.check_module m
    with Refine_ir.Verify.Invalid msg ->
      raise (Compile_error ("internal error: irgen produced invalid IR: " ^ msg))
  end;
  m
