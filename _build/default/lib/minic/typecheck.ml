(* MinC type checker.  No implicit conversions: int/float mixing requires
   explicit tofloat/toint, which keeps both this checker and the IR
   generator small and makes benchmark sources unambiguous. *)

open Ast

exception Error of string * int

let fail loc fmt = Printf.ksprintf (fun s -> raise (Error (s, loc))) fmt

type fenv = (string, ty option * ty list) Hashtbl.t (* name -> ret, params *)

type scope = { mutable vars : (string * ty) list; parent : scope option }

let rec lookup scope name =
  match List.assoc_opt name scope.vars with
  | Some t -> Some t
  | None -> ( match scope.parent with Some p -> lookup p name | None -> None)

let declare loc scope name ty =
  if List.mem_assoc name scope.vars then fail loc "redeclaration of %s" name;
  scope.vars <- (name, ty) :: scope.vars

let rec check_expr fenv scope (e : expr) : ty =
  match e.edesc with
  | Eint _ -> Tint
  | Efloat _ -> Tfloat
  | Estr _ -> fail e.eloc "string literal outside print_str"
  | Evar name -> (
    match lookup scope name with
    | Some t -> t
    | None -> fail e.eloc "undeclared variable %s" name)
  | Eindex (name, ix) -> (
    (match check_expr fenv scope ix with
    | Tint -> ()
    | t -> fail ix.eloc "array index must be int, got %s" (string_of_ty t));
    match lookup scope name with
    | Some (Tarr elt) -> elt
    | Some t -> fail e.eloc "%s has type %s, cannot be indexed" name (string_of_ty t)
    | None -> fail e.eloc "undeclared array %s" name)
  | Eun (Uneg, a) -> (
    match check_expr fenv scope a with
    | (Tint | Tfloat) as t -> t
    | t -> fail e.eloc "cannot negate %s" (string_of_ty t))
  | Eun (Unot, a) -> (
    match check_expr fenv scope a with
    | Tint -> Tint
    | t -> fail e.eloc "'!' requires int, got %s" (string_of_ty t))
  | Ebin (op, a, b) -> (
    let ta = check_expr fenv scope a in
    let tb = check_expr fenv scope b in
    if ta <> tb then
      fail e.eloc "operand type mismatch: %s vs %s (use tofloat/toint)" (string_of_ty ta)
        (string_of_ty tb);
    match op with
    | Badd | Bsub | Bmul | Bdiv -> (
      match ta with
      | Tint | Tfloat -> ta
      | t -> fail e.eloc "arithmetic on %s" (string_of_ty t))
    | Bmod | Bbitand | Bbitor | Bbitxor | Bshl | Bshr | Band | Bor -> (
      match ta with
      | Tint -> Tint
      | t -> fail e.eloc "integer operator on %s" (string_of_ty t))
    | Beq | Bne | Blt | Ble | Bgt | Bge -> (
      match ta with
      | Tint | Tfloat -> Tint
      | t -> fail e.eloc "comparison on %s" (string_of_ty t)))
  | Ecall (name, args) -> (
    match check_call fenv scope e.eloc name args with
    | Some t -> t
    | None -> fail e.eloc "void function %s used as a value" name)

and check_call fenv scope loc name args : ty option =
  if Builtins.is_print_str name then begin
    (match args with
    | [ { edesc = Estr _; _ } ] -> ()
    | _ -> fail loc "print_str takes exactly one string literal");
    None
  end
  else
    let params, ret =
      match Builtins.signature name with
      | Some (p, r) -> (p, r)
      | None -> (
        match Hashtbl.find_opt fenv name with
        | Some (r, p) -> (p, r)
        | None -> fail loc "call to undefined function %s" name)
    in
    if List.length params <> List.length args then
      fail loc "%s expects %d arguments, got %d" name (List.length params) (List.length args);
    List.iteri
      (fun i (want, arg) ->
        let got = check_expr fenv scope arg in
        if got <> want then
          fail arg.eloc "argument %d of %s: expected %s, got %s" (i + 1) name
            (string_of_ty want) (string_of_ty got))
      (List.combine params args);
    ret

let rec check_stmts fenv scope ~fret ~in_loop stmts =
  let scope = { vars = []; parent = Some scope } in
  List.iter (check_stmt fenv scope ~fret ~in_loop) stmts

and check_stmt fenv scope ~fret ~in_loop (s : stmt) =
  match s.sdesc with
  | Sdecl (ty, name, init) ->
    (match init with
    | Some e ->
      let t = check_expr fenv scope e in
      if t <> ty then
        fail s.sloc "initializer of %s: expected %s, got %s" name (string_of_ty ty)
          (string_of_ty t)
    | None -> ());
    declare s.sloc scope name ty
  | Sarrdecl (base, name, size) ->
    if size <= 0 then fail s.sloc "array %s has non-positive size" name;
    declare s.sloc scope name (Tarr base)
  | Sassign (name, e) -> (
    match lookup scope name with
    | None -> fail s.sloc "assignment to undeclared variable %s" name
    | Some want ->
      let got = check_expr fenv scope e in
      if got <> want then
        fail s.sloc "assignment to %s: expected %s, got %s" name (string_of_ty want)
          (string_of_ty got))
  | Sstore (name, ix, e) -> (
    (match check_expr fenv scope ix with
    | Tint -> ()
    | t -> fail ix.eloc "array index must be int, got %s" (string_of_ty t));
    match lookup scope name with
    | Some (Tarr elt) ->
      let got = check_expr fenv scope e in
      if got <> elt then
        fail s.sloc "store to %s[]: expected %s, got %s" name (string_of_ty elt)
          (string_of_ty got)
    | Some t -> fail s.sloc "%s has type %s, cannot be indexed" name (string_of_ty t)
    | None -> fail s.sloc "undeclared array %s" name)
  | Sexpr e -> (
    match e.edesc with
    | Ecall (name, args) -> ignore (check_call fenv scope e.eloc name args)
    | _ -> fail s.sloc "expression statement must be a call")
  | Sif (c, t, f) ->
    (match check_expr fenv scope c with
    | Tint -> ()
    | ty -> fail c.eloc "condition must be int, got %s" (string_of_ty ty));
    check_stmts fenv scope ~fret ~in_loop t;
    check_stmts fenv scope ~fret ~in_loop f
  | Swhile (c, body) ->
    (match check_expr fenv scope c with
    | Tint -> ()
    | ty -> fail c.eloc "condition must be int, got %s" (string_of_ty ty));
    check_stmts fenv scope ~fret ~in_loop:true body
  | Sfor (init, cond, step, body) ->
    let scope = { vars = []; parent = Some scope } in
    (match init with Some s0 -> check_stmt fenv scope ~fret ~in_loop s0 | None -> ());
    (match check_expr fenv scope cond with
    | Tint -> ()
    | ty -> fail cond.eloc "condition must be int, got %s" (string_of_ty ty));
    (match step with Some s0 -> check_stmt fenv scope ~fret ~in_loop:true s0 | None -> ());
    check_stmts fenv scope ~fret ~in_loop:true body
  | Sreturn e -> (
    match (e, fret) with
    | None, None -> ()
    | Some _, None -> fail s.sloc "void function returns a value"
    | None, Some _ -> fail s.sloc "missing return value"
    | Some e, Some want ->
      let got = check_expr fenv scope e in
      if got <> want then
        fail s.sloc "return: expected %s, got %s" (string_of_ty want) (string_of_ty got))
  | Sbreak -> if not in_loop then fail s.sloc "break outside loop"
  | Scontinue -> if not in_loop then fail s.sloc "continue outside loop"

let check_program (p : program) =
  let fenv : fenv = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Builtins.is_builtin f.fname then fail f.floc "%s shadows a builtin" f.fname;
      if Hashtbl.mem fenv f.fname then fail f.floc "redefinition of %s" f.fname;
      Hashtbl.add fenv f.fname (f.fret, List.map fst f.fparams))
    p.pfuncs;
  let globals = { vars = []; parent = None } in
  List.iter
    (fun g ->
      match g with
      | Gscalar (ty, name, init) ->
        (match ty with
        | Tarr _ -> fail 0 "global %s: array globals use the [] form" name
        | _ -> ());
        (match init with
        | Some { edesc = Eint _; _ } when ty = Tint -> ()
        | Some { edesc = Efloat _; _ } when ty = Tfloat -> ()
        | Some { edesc = Eun (Uneg, { edesc = Eint _; _ }); _ } when ty = Tint -> ()
        | Some { edesc = Eun (Uneg, { edesc = Efloat _; _ }); _ } when ty = Tfloat -> ()
        | Some e -> fail e.eloc "global initializer of %s must be a literal of type %s" name (string_of_ty ty)
        | None -> ());
        declare 0 globals name ty
      | Garray (base, name, size) ->
        if size <= 0 then fail 0 "global array %s has non-positive size" name;
        declare 0 globals name (Tarr base))
    p.pglobals;
  (match Hashtbl.find_opt fenv "main" with
  | Some (Some Tint, []) -> ()
  | Some _ -> fail 0 "main must have signature: int main()"
  | None -> fail 0 "missing function main");
  List.iter
    (fun f ->
      let scope = { vars = []; parent = Some globals } in
      List.iter (fun (ty, name) -> declare f.floc scope name ty) f.fparams;
      check_stmts fenv scope ~fret:f.fret ~in_loop:false f.fbody)
    p.pfuncs
