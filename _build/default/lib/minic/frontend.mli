(** One-call MinC front end: source text to verified IR. *)

exception Compile_error of string
(** Carries the phase and source line of the first error. *)

val compile : ?verify:bool -> string -> Refine_ir.Ir.modul
(** Lexes, parses, type-checks and lowers a MinC program.  [verify]
    (default true) re-checks the generated IR with [Refine_ir.Verify]. *)
