(* MinC built-in functions: I/O, heap allocation, conversions and libm.
   These lower to IR [Cast] instructions (tofloat/toint), [Funop]s
   (sqrt/fabs) or extern calls handled by [Ir.Externs]. *)

open Ast

(* name -> (parameter types, result) *)
let signature = function
  | "print_int" -> Some ([ Tint ], None)
  | "print_float" | "print_float_full" -> Some ([ Tfloat ], None)
  | "exit" -> Some ([ Tint ], None)
  | "alloc_int" -> Some ([ Tint ], Some (Tarr Tint))
  | "alloc_float" -> Some ([ Tint ], Some (Tarr Tfloat))
  | "tofloat" -> Some ([ Tint ], Some Tfloat)
  | "toint" -> Some ([ Tfloat ], Some Tint)
  | "sqrt" | "fabs" | "sin" | "cos" | "tan" | "exp" | "log" | "floor" ->
    Some ([ Tfloat ], Some Tfloat)
  | "pow" | "fmin" | "fmax" -> Some ([ Tfloat; Tfloat ], Some Tfloat)
  | _ -> None

(* print_str takes a string literal and is handled specially everywhere. *)
let is_print_str name = name = "print_str"
let is_builtin name = is_print_str name || signature name <> None
