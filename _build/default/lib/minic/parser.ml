(* Recursive-descent parser for MinC with standard C operator precedence. *)

open Ast

exception Error of string * int

type st = { mutable toks : Lexer.lexed list }

let peek st = match st.toks with [] -> Lexer.EOF | l :: _ -> l.tok
let line st = match st.toks with [] -> 0 | l :: _ -> l.line
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let fail st msg = raise (Error (msg, line st))

let describe = function
  | Lexer.INT i -> Printf.sprintf "integer %Ld" i
  | Lexer.FLOAT f -> Printf.sprintf "float %g" f
  | Lexer.IDENT s -> Printf.sprintf "identifier %s" s
  | Lexer.STRING _ -> "string literal"
  | Lexer.KW k -> Printf.sprintf "keyword %s" k
  | Lexer.PUNCT p -> Printf.sprintf "'%s'" p
  | Lexer.EOF -> "end of input"

let expect_punct st p =
  match peek st with
  | Lexer.PUNCT q when q = p -> advance st
  | t -> fail st (Printf.sprintf "expected '%s', found %s" p (describe t))

let accept_punct st p =
  match peek st with
  | Lexer.PUNCT q when q = p -> advance st; true
  | _ -> false

let expect_ident st =
  match peek st with
  | Lexer.IDENT s -> advance st; s
  | t -> fail st ("expected identifier, found " ^ describe t)

(* type syntax: int | float | int[] | float[] *)
let parse_base_ty st =
  match peek st with
  | Lexer.KW "int" -> advance st; Tint
  | Lexer.KW "float" -> advance st; Tfloat
  | t -> fail st ("expected type, found " ^ describe t)

let parse_ty st =
  let base = parse_base_ty st in
  if accept_punct st "[" then begin
    expect_punct st "]";
    Tarr base
  end
  else base

(* ---- expressions ---- *)

let rec parse_expr st = parse_or st

and mk st d = { edesc = d; eloc = line st }

and parse_or st =
  let lhs = ref (parse_and st) in
  while peek st = Lexer.PUNCT "||" do
    advance st;
    let rhs = parse_and st in
    lhs := { edesc = Ebin (Bor, !lhs, rhs); eloc = !lhs.eloc }
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_bitor st) in
  while peek st = Lexer.PUNCT "&&" do
    advance st;
    let rhs = parse_bitor st in
    lhs := { edesc = Ebin (Band, !lhs, rhs); eloc = !lhs.eloc }
  done;
  !lhs

and parse_bitor st =
  let lhs = ref (parse_bitxor st) in
  while peek st = Lexer.PUNCT "|" do
    advance st;
    let rhs = parse_bitxor st in
    lhs := { edesc = Ebin (Bbitor, !lhs, rhs); eloc = !lhs.eloc }
  done;
  !lhs

and parse_bitxor st =
  let lhs = ref (parse_bitand st) in
  while peek st = Lexer.PUNCT "^" do
    advance st;
    let rhs = parse_bitand st in
    lhs := { edesc = Ebin (Bbitxor, !lhs, rhs); eloc = !lhs.eloc }
  done;
  !lhs

and parse_bitand st =
  let lhs = ref (parse_equality st) in
  while peek st = Lexer.PUNCT "&" do
    advance st;
    let rhs = parse_equality st in
    lhs := { edesc = Ebin (Bbitand, !lhs, rhs); eloc = !lhs.eloc }
  done;
  !lhs

and parse_equality st =
  let lhs = ref (parse_relational st) in
  let rec loop () =
    match peek st with
    | Lexer.PUNCT ("==" as p) | Lexer.PUNCT ("!=" as p) ->
      advance st;
      let rhs = parse_relational st in
      let op = if p = "==" then Beq else Bne in
      lhs := { edesc = Ebin (op, !lhs, rhs); eloc = !lhs.eloc };
      loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_relational st =
  let lhs = ref (parse_shift st) in
  let rec loop () =
    match peek st with
    | Lexer.PUNCT ("<" as p) | Lexer.PUNCT (">" as p) | Lexer.PUNCT ("<=" as p)
    | Lexer.PUNCT (">=" as p) ->
      advance st;
      let rhs = parse_shift st in
      let op = match p with "<" -> Blt | ">" -> Bgt | "<=" -> Ble | _ -> Bge in
      lhs := { edesc = Ebin (op, !lhs, rhs); eloc = !lhs.eloc };
      loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_shift st =
  let lhs = ref (parse_additive st) in
  let rec loop () =
    match peek st with
    | Lexer.PUNCT ("<<" as p) | Lexer.PUNCT (">>" as p) ->
      advance st;
      let rhs = parse_additive st in
      let op = if p = "<<" then Bshl else Bshr in
      lhs := { edesc = Ebin (op, !lhs, rhs); eloc = !lhs.eloc };
      loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let rec loop () =
    match peek st with
    | Lexer.PUNCT ("+" as p) | Lexer.PUNCT ("-" as p) ->
      advance st;
      let rhs = parse_multiplicative st in
      let op = if p = "+" then Badd else Bsub in
      lhs := { edesc = Ebin (op, !lhs, rhs); eloc = !lhs.eloc };
      loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let rec loop () =
    match peek st with
    | Lexer.PUNCT ("*" as p) | Lexer.PUNCT ("/" as p) | Lexer.PUNCT ("%" as p) ->
      advance st;
      let rhs = parse_unary st in
      let op = match p with "*" -> Bmul | "/" -> Bdiv | _ -> Bmod in
      lhs := { edesc = Ebin (op, !lhs, rhs); eloc = !lhs.eloc };
      loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_unary st =
  match peek st with
  | Lexer.PUNCT "-" ->
    let l = line st in
    advance st;
    let e = parse_unary st in
    { edesc = Eun (Uneg, e); eloc = l }
  | Lexer.PUNCT "!" ->
    let l = line st in
    advance st;
    let e = parse_unary st in
    { edesc = Eun (Unot, e); eloc = l }
  | _ -> parse_postfix st

and parse_postfix st =
  let l = line st in
  match peek st with
  | Lexer.INT i -> advance st; { edesc = Eint i; eloc = l }
  | Lexer.FLOAT f -> advance st; { edesc = Efloat f; eloc = l }
  | Lexer.STRING s -> advance st; { edesc = Estr s; eloc = l }
  | Lexer.PUNCT "(" ->
    advance st;
    let e = parse_expr st in
    expect_punct st ")";
    e
  | Lexer.IDENT name -> (
    advance st;
    match peek st with
    | Lexer.PUNCT "(" ->
      advance st;
      let args = ref [] in
      if not (accept_punct st ")") then begin
        args := [ parse_expr st ];
        while accept_punct st "," do
          args := parse_expr st :: !args
        done;
        expect_punct st ")"
      end;
      { edesc = Ecall (name, List.rev !args); eloc = l }
    | Lexer.PUNCT "[" ->
      advance st;
      let ix = parse_expr st in
      expect_punct st "]";
      { edesc = Eindex (name, ix); eloc = l }
    | _ -> { edesc = Evar name; eloc = l })
  | t -> fail st ("expected expression, found " ^ describe t)

(* ---- statements ---- *)

let rec parse_stmt st : stmt =
  let l = line st in
  match peek st with
  | Lexer.KW "int" | Lexer.KW "float" -> (
    let base = parse_base_ty st in
    let is_arr_param = accept_punct st "[" in
    if is_arr_param then begin
      expect_punct st "]";
      let name = expect_ident st in
      let init = if accept_punct st "=" then Some (parse_expr st) else None in
      expect_punct st ";";
      { sdesc = Sdecl (Tarr base, name, init); sloc = l }
    end
    else
      let name = expect_ident st in
      if accept_punct st "[" then begin
        let size =
          match peek st with
          | Lexer.INT i -> advance st; Int64.to_int i
          | t -> fail st ("expected array size, found " ^ describe t)
        in
        expect_punct st "]";
        expect_punct st ";";
        { sdesc = Sarrdecl (base, name, size); sloc = l }
      end
      else
        let init = if accept_punct st "=" then Some (parse_expr st) else None in
        let () = expect_punct st ";" in
        { sdesc = Sdecl (base, name, init); sloc = l })
  | Lexer.KW "if" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    let then_ = parse_block_or_stmt st in
    let else_ =
      if peek st = Lexer.KW "else" then begin
        advance st;
        parse_block_or_stmt st
      end
      else []
    in
    { sdesc = Sif (cond, then_, else_); sloc = l }
  | Lexer.KW "while" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    let body = parse_block_or_stmt st in
    { sdesc = Swhile (cond, body); sloc = l }
  | Lexer.KW "for" ->
    advance st;
    expect_punct st "(";
    let init = if peek st = Lexer.PUNCT ";" then None else Some (parse_simple_stmt st) in
    expect_punct st ";";
    let cond =
      if peek st = Lexer.PUNCT ";" then { edesc = Eint 1L; eloc = l } else parse_expr st
    in
    expect_punct st ";";
    let step = if peek st = Lexer.PUNCT ")" then None else Some (parse_simple_stmt st) in
    expect_punct st ")";
    let body = parse_block_or_stmt st in
    { sdesc = Sfor (init, cond, step, body); sloc = l }
  | Lexer.KW "return" ->
    advance st;
    let e = if peek st = Lexer.PUNCT ";" then None else Some (parse_expr st) in
    expect_punct st ";";
    { sdesc = Sreturn e; sloc = l }
  | Lexer.KW "break" ->
    advance st;
    expect_punct st ";";
    { sdesc = Sbreak; sloc = l }
  | Lexer.KW "continue" ->
    advance st;
    expect_punct st ";";
    { sdesc = Scontinue; sloc = l }
  | _ ->
    let s = parse_simple_stmt st in
    expect_punct st ";";
    s

(* assignment / array store / call — the statements allowed in for-headers *)
and parse_simple_stmt st : stmt =
  let l = line st in
  match peek st with
  | Lexer.IDENT name -> (
    advance st;
    match peek st with
    | Lexer.PUNCT "=" ->
      advance st;
      let e = parse_expr st in
      { sdesc = Sassign (name, e); sloc = l }
    | Lexer.PUNCT "[" ->
      advance st;
      let ix = parse_expr st in
      expect_punct st "]";
      if accept_punct st "=" then
        let e = parse_expr st in
        { sdesc = Sstore (name, ix, e); sloc = l }
      else fail st "expected '=' after array index"
    | Lexer.PUNCT "(" ->
      advance st;
      let args = ref [] in
      if not (accept_punct st ")") then begin
        args := [ parse_expr st ];
        while accept_punct st "," do
          args := parse_expr st :: !args
        done;
        expect_punct st ")"
      end;
      { sdesc = Sexpr { edesc = Ecall (name, List.rev !args); eloc = l }; sloc = l }
    | t -> fail st ("expected '=', '[' or '(', found " ^ describe t))
  | t -> fail st ("expected statement, found " ^ describe t)

and parse_block st : stmt list =
  expect_punct st "{";
  let stmts = ref [] in
  while peek st <> Lexer.PUNCT "}" do
    if peek st = Lexer.EOF then fail st "unterminated block";
    stmts := parse_stmt st :: !stmts
  done;
  expect_punct st "}";
  List.rev !stmts

and parse_block_or_stmt st =
  if peek st = Lexer.PUNCT "{" then parse_block st else [ parse_stmt st ]

(* ---- top level ---- *)

let parse_param st =
  let ty = parse_ty st in
  let name = expect_ident st in
  (ty, name)

let parse_program (src : string) : program =
  let st = { toks = Lexer.tokenize src } in
  let globals = ref [] in
  let funcs = ref [] in
  let rec loop () =
    match peek st with
    | Lexer.EOF -> ()
    | Lexer.KW "global" ->
      advance st;
      let base = parse_base_ty st in
      let name = expect_ident st in
      if accept_punct st "[" then begin
        let size =
          match peek st with
          | Lexer.INT i -> advance st; Int64.to_int i
          | t -> fail st ("expected array size, found " ^ describe t)
        in
        expect_punct st "]";
        expect_punct st ";";
        globals := Garray (base, name, size) :: !globals
      end
      else begin
        let init = if accept_punct st "=" then Some (parse_expr st) else None in
        expect_punct st ";";
        globals := Gscalar (base, name, init) :: !globals
      end;
      loop ()
    | Lexer.KW "void" ->
      advance st;
      let name = expect_ident st in
      parse_func None name;
      loop ()
    | Lexer.KW "int" | Lexer.KW "float" ->
      let ty = parse_ty st in
      let name = expect_ident st in
      parse_func (Some ty) name;
      loop ()
    | t -> fail st ("expected declaration, found " ^ describe t)
  and parse_func fret fname =
    let l = line st in
    expect_punct st "(";
    let params = ref [] in
    if not (accept_punct st ")") then begin
      params := [ parse_param st ];
      while accept_punct st "," do
        params := parse_param st :: !params
      done;
      expect_punct st ")"
    end;
    let body = parse_block st in
    funcs := { fret; fname; fparams = List.rev !params; fbody = body; floc = l } :: !funcs
  in
  loop ();
  { pglobals = List.rev !globals; pfuncs = List.rev !funcs }
