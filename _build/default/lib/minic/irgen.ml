(* Lowering of type-checked MinC to IR.

   The output is deliberately clang -O0 shaped: every local variable lives
   in an 8-byte alloca that is loaded/stored on each access, parameters are
   copied into allocas, and short-circuit operators become control flow
   through a stack slot.  [Ir.Pipeline] (mem2reg + clean-up) then produces
   optimized SSA — giving the two-stage structure the paper's analysis of
   IR-level FI depends on. *)

open Ast
module I = Refine_ir.Ir
module B = Refine_ir.Builder

exception Error of string * int

let fail loc fmt = Printf.ksprintf (fun s -> raise (Error (s, loc))) fmt

let ir_ty = function Tint | Tarr _ -> I.I64 | Tfloat -> I.F64

type var =
  | Vslot of I.value * ty (* address of the local's stack slot *)
  | Vglobal of string * ty

type scope = { mutable vars : (string * var) list; parent : scope option }

let rec lookup scope name =
  match List.assoc_opt name scope.vars with
  | Some v -> Some v
  | None -> ( match scope.parent with Some p -> lookup p name | None -> None)

type genv = {
  prog : program;
  strings : (string, string) Hashtbl.t; (* literal -> global name *)
  mutable str_count : int;
  mutable extra_globals : I.global list;
}

let string_global genv s =
  match Hashtbl.find_opt genv.strings s with
  | Some g -> g
  | None ->
    let g = Printf.sprintf "str.%d" genv.str_count in
    genv.str_count <- genv.str_count + 1;
    Hashtbl.add genv.strings s g;
    genv.extra_globals <-
      genv.extra_globals @ [ { I.gname = g; gsize = max 1 (String.length s); gbytes = Some s } ];
    g

(* All allocas are hoisted to the entry block (as clang does): a
   declaration inside a loop must not consume fresh stack space per
   iteration, and the slot must dominate every use. *)
let entry_alloca b size =
  let v = B.fresh b I.I64 in
  let entry = I.entry_block (B.func b) in
  entry.I.body <- I.Alloca (v, size) :: entry.I.body;
  v

(* If the current block is already terminated (code after return), emit the
   rest into a fresh unreachable block; Simplifycfg deletes it later. *)
let ensure_open b = if B.terminated b then B.switch_to b (B.block b)

let rec gen_expr genv b scope (e : expr) : I.operand =
  ensure_open b;
  match e.edesc with
  | Eint i -> I.ICst i
  | Efloat f -> I.FCst f
  | Estr _ -> fail e.eloc "string literal outside print_str"
  | Evar name -> (
    match lookup scope name with
    | Some (Vslot (slot, ty)) -> B.load b (ir_ty ty) (I.Var slot)
    | Some (Vglobal (g, Tarr _)) ->
      (* a global array's value is its address (C array decay) *)
      B.gaddr b g
    | Some (Vglobal (g, ty)) ->
      let addr = B.gaddr b g in
      B.load b (ir_ty ty) addr
    | None -> fail e.eloc "undeclared variable %s" name)
  | Eindex (name, ix) ->
    let elt_ty, addr = gen_index_addr genv b scope e.eloc name ix in
    B.load b (ir_ty elt_ty) addr
  | Eun (Uneg, a) -> (
    let va = gen_expr genv b scope a in
    match I.operand_ty (B.func b) va with
    | I.I64 -> B.ibinop b I.Sub (I.ICst 0L) va
    | I.F64 -> B.funop b I.Fneg va)
  | Eun (Unot, a) ->
    let va = gen_expr genv b scope a in
    B.icmp b I.Ieq va (I.ICst 0L)
  | Ebin ((Band | Bor) as op, a, c) -> gen_shortcircuit genv b scope op a c
  | Ebin (op, a, c) -> (
    let va = gen_expr genv b scope a in
    let vc = gen_expr genv b scope c in
    let fty = I.operand_ty (B.func b) va in
    match (op, fty) with
    | Badd, I.I64 -> B.ibinop b I.Add va vc
    | Bsub, I.I64 -> B.ibinop b I.Sub va vc
    | Bmul, I.I64 -> B.ibinop b I.Mul va vc
    | Bdiv, I.I64 -> B.ibinop b I.Div va vc
    | Bmod, I.I64 -> B.ibinop b I.Rem va vc
    | Bbitand, I.I64 -> B.ibinop b I.And va vc
    | Bbitor, I.I64 -> B.ibinop b I.Or va vc
    | Bbitxor, I.I64 -> B.ibinop b I.Xor va vc
    | Bshl, I.I64 -> B.ibinop b I.Shl va vc
    | Bshr, I.I64 -> B.ibinop b I.Ashr va vc
    | Badd, I.F64 -> B.fbinop b I.Fadd va vc
    | Bsub, I.F64 -> B.fbinop b I.Fsub va vc
    | Bmul, I.F64 -> B.fbinop b I.Fmul va vc
    | Bdiv, I.F64 -> B.fbinop b I.Fdiv va vc
    | Beq, I.I64 -> B.icmp b I.Ieq va vc
    | Bne, I.I64 -> B.icmp b I.Ine va vc
    | Blt, I.I64 -> B.icmp b I.Ilt va vc
    | Ble, I.I64 -> B.icmp b I.Ile va vc
    | Bgt, I.I64 -> B.icmp b I.Igt va vc
    | Bge, I.I64 -> B.icmp b I.Ige va vc
    | Beq, I.F64 -> B.fcmp b I.Feq va vc
    | Bne, I.F64 -> B.fcmp b I.Fne va vc
    | Blt, I.F64 -> B.fcmp b I.Flt va vc
    | Ble, I.F64 -> B.fcmp b I.Fle va vc
    | Bgt, I.F64 -> B.fcmp b I.Fgt va vc
    | Bge, I.F64 -> B.fcmp b I.Fge va vc
    | _ -> fail e.eloc "ill-typed binary operation survived typechecking")
  | Ecall (name, args) -> (
    match gen_call genv b scope e.eloc name args with
    | Some v -> v
    | None -> fail e.eloc "void call %s used as a value" name)

and gen_index_addr genv b scope loc name ix =
  let vix = gen_expr genv b scope ix in
  match lookup scope name with
  | Some (Vslot (slot, Tarr elt)) ->
    (* the slot holds either the array base itself (local Sarrdecl stores the
       alloca address) or an address-valued variable (param / alloc result) *)
    let base = B.load b I.I64 (I.Var slot) in
    (ir_ty elt |> fun _ -> ());
    (elt, B.gep b base vix)
  | Some (Vglobal (g, Tarr elt)) ->
    let base = B.gaddr b g in
    (elt, B.gep b base vix)
  | Some _ -> fail loc "%s is not an array" name
  | None -> fail loc "undeclared array %s" name

and gen_shortcircuit genv b scope op lhs rhs =
  let slot = entry_alloca b 8 in
  let vl = gen_expr genv b scope lhs in
  let cl = B.icmp b I.Ine vl (I.ICst 0L) in
  (* default value if the rhs is skipped: 0 for &&, 1 for || *)
  let default = match op with Band -> 0L | _ -> 1L in
  B.store b I.I64 (I.ICst default) (I.Var slot);
  let eval_rhs = B.block b in
  let merge = B.block b in
  (match op with
  | Band -> B.terminate b (I.Cbr (cl, eval_rhs, merge))
  | _ -> B.terminate b (I.Cbr (cl, merge, eval_rhs)));
  B.switch_to b eval_rhs;
  let vr = gen_expr genv b scope rhs in
  let cr = B.icmp b I.Ine vr (I.ICst 0L) in
  B.store b I.I64 cr (I.Var slot);
  B.terminate b (I.Br merge);
  B.switch_to b merge;
  B.load b I.I64 (I.Var slot)

and gen_call genv b scope loc name args : I.operand option =
  if Builtins.is_print_str name then begin
    match args with
    | [ { edesc = Estr s; _ } ] ->
      let g = string_global genv s in
      let addr = B.gaddr b g in
      ignore (B.call b None "print_str" [ addr; I.ICst (Int64.of_int (String.length s)) ]);
      None
    | _ -> fail loc "print_str takes one string literal"
  end
  else
    let vargs () = List.map (gen_expr genv b scope) args in
    match name with
    | "tofloat" -> Some (B.cast b I.Sitofp (List.hd (vargs ())))
    | "toint" -> Some (B.cast b I.Fptosi (List.hd (vargs ())))
    | "sqrt" -> Some (B.funop b I.Fsqrt (List.hd (vargs ())))
    | "fabs" -> Some (B.funop b I.Fabs (List.hd (vargs ())))
    | "alloc_int" | "alloc_float" ->
      let n = List.hd (vargs ()) in
      let bytes = B.ibinop b I.Mul n (I.ICst 8L) in
      B.call b (Some I.I64) "alloc" [ bytes ]
    | "sin" | "cos" | "tan" | "exp" | "log" | "floor" | "pow" | "fmin" | "fmax" ->
      B.call b (Some I.F64) name (vargs ())
    | "print_int" | "print_float" | "print_float_full" | "exit" ->
      ignore (B.call b None name (vargs ()));
      None
    | _ -> (
      (* user function *)
      match List.find_opt (fun f -> f.fname = name) genv.prog.pfuncs with
      | None -> fail loc "call to unknown function %s" name
      | Some f -> (
        let va = vargs () in
        match f.fret with
        | Some rty -> B.call b (Some (ir_ty rty)) name va
        | None ->
          ignore (B.call b None name va);
          None))

let rec gen_stmts genv b scope ~brk ~cont stmts =
  let scope = { vars = []; parent = Some scope } in
  List.iter (gen_stmt genv b scope ~brk ~cont) stmts

and gen_stmt genv b scope ~brk ~cont (s : stmt) =
  ensure_open b;
  match s.sdesc with
  | Sdecl (ty, name, init) ->
    let slot = entry_alloca b 8 in
    scope.vars <- (name, Vslot (slot, ty)) :: scope.vars;
    let v =
      match init with
      | Some e -> gen_expr genv b scope e
      | None -> ( match ty with Tfloat -> I.FCst 0.0 | _ -> I.ICst 0L)
    in
    ensure_open b;
    B.store b (ir_ty ty) v (I.Var slot)
  | Sarrdecl (base, name, size) ->
    let arr = entry_alloca b (8 * size) in
    let slot = entry_alloca b 8 in
    B.store b I.I64 (I.Var arr) (I.Var slot);
    scope.vars <- (name, Vslot (slot, Tarr base)) :: scope.vars
  | Sassign (name, e) -> (
    let v = gen_expr genv b scope e in
    ensure_open b;
    match lookup scope name with
    | Some (Vslot (slot, ty)) -> B.store b (ir_ty ty) v (I.Var slot)
    | Some (Vglobal (_, Tarr _)) -> fail s.sloc "cannot assign to global array %s" name
    | Some (Vglobal (g, ty)) ->
      let addr = B.gaddr b g in
      B.store b (ir_ty ty) v addr
    | None -> fail s.sloc "undeclared variable %s" name)
  | Sstore (name, ix, e) ->
    let v = gen_expr genv b scope e in
    ensure_open b;
    let elt, addr = gen_index_addr genv b scope s.sloc name ix in
    B.store b (ir_ty elt) v addr
  | Sexpr e -> (
    match e.edesc with
    | Ecall (name, args) -> ignore (gen_call genv b scope e.eloc name args)
    | _ -> fail s.sloc "expression statement must be a call")
  | Sif (c, then_, else_) ->
    let vc = gen_expr genv b scope c in
    let lt = B.block b in
    let lf = B.block b in
    let lm = B.block b in
    B.terminate b (I.Cbr (vc, lt, lf));
    B.switch_to b lt;
    gen_stmts genv b scope ~brk ~cont then_;
    B.terminate b (I.Br lm);
    B.switch_to b lf;
    gen_stmts genv b scope ~brk ~cont else_;
    B.terminate b (I.Br lm);
    B.switch_to b lm
  | Swhile (c, body) ->
    let lcond = B.block b in
    let lbody = B.block b in
    let lexit = B.block b in
    B.terminate b (I.Br lcond);
    B.switch_to b lcond;
    let vc = gen_expr genv b scope c in
    B.terminate b (I.Cbr (vc, lbody, lexit));
    B.switch_to b lbody;
    gen_stmts genv b scope ~brk:(Some lexit) ~cont:(Some lcond) body;
    B.terminate b (I.Br lcond);
    B.switch_to b lexit
  | Sfor (init, cond, step, body) ->
    let scope = { vars = []; parent = Some scope } in
    (match init with Some s0 -> gen_stmt genv b scope ~brk ~cont s0 | None -> ());
    let lcond = B.block b in
    let lbody = B.block b in
    let lstep = B.block b in
    let lexit = B.block b in
    B.terminate b (I.Br lcond);
    B.switch_to b lcond;
    let vc = gen_expr genv b scope cond in
    B.terminate b (I.Cbr (vc, lbody, lexit));
    B.switch_to b lbody;
    gen_stmts genv b scope ~brk:(Some lexit) ~cont:(Some lstep) body;
    B.terminate b (I.Br lstep);
    B.switch_to b lstep;
    (match step with Some s0 -> gen_stmt genv b scope ~brk ~cont s0 | None -> ());
    B.terminate b (I.Br lcond);
    B.switch_to b lexit
  | Sreturn e -> (
    match e with
    | None -> B.terminate b (I.Ret None)
    | Some e ->
      let v = gen_expr genv b scope e in
      ensure_open b;
      B.terminate b (I.Ret (Some v)))
  | Sbreak -> (
    match brk with
    | Some l -> B.terminate b (I.Br l)
    | None -> fail s.sloc "break outside loop")
  | Scontinue -> (
    match cont with
    | Some l -> B.terminate b (I.Br l)
    | None -> fail s.sloc "continue outside loop")

let encode_int64 (v : int64) : string =
  let bs = Bytes.create 8 in
  Bytes.set_int64_le bs 0 v;
  Bytes.to_string bs

let gen_func genv globals_scope (f : fdef) : I.func =
  let b, params = B.create ~name:f.fname ~params:(List.map (fun (t, _) -> ir_ty t) f.fparams)
      ~ret:(Option.map ir_ty f.fret)
  in
  let scope = { vars = []; parent = Some globals_scope } in
  (* copy parameters into stack slots (clang -O0 style) *)
  List.iter2
    (fun (ty, name) pval ->
      let slot = entry_alloca b 8 in
      B.store b (ir_ty ty) (I.Var pval) (I.Var slot);
      scope.vars <- (name, Vslot (slot, ty)) :: scope.vars)
    f.fparams params;
  gen_stmts genv b scope ~brk:None ~cont:None f.fbody;
  (* implicit return when control falls off the end *)
  (match f.fret with
  | None -> B.terminate b (I.Ret None)
  | Some Tfloat -> B.terminate b (I.Ret (Some (I.FCst 0.0)))
  | Some _ -> B.terminate b (I.Ret (Some (I.ICst 0L))));
  (* any open auxiliary block must be closed for well-formedness *)
  List.iter
    (fun blk -> if blk.I.term = I.Unreachable then blk.I.term <- (match f.fret with
       | None -> I.Ret None
       | Some Tfloat -> I.Ret (Some (I.FCst 0.0))
       | Some _ -> I.Ret (Some (I.ICst 0L))))
    (B.func b).I.blocks;
  B.func b

let gen_program (p : program) : I.modul =
  let genv = { prog = p; strings = Hashtbl.create 16; str_count = 0; extra_globals = [] } in
  let globals_scope = { vars = []; parent = None } in
  let globals =
    List.map
      (fun g ->
        match g with
        | Gscalar (ty, name, init) ->
          globals_scope.vars <- (name, Vglobal (name, ty)) :: globals_scope.vars;
          let bytes =
            match init with
            | Some { edesc = Eint i; _ } -> Some (encode_int64 i)
            | Some { edesc = Efloat f; _ } -> Some (encode_int64 (Int64.bits_of_float f))
            | Some { edesc = Eun (Uneg, { edesc = Eint i; _ }); _ } ->
              Some (encode_int64 (Int64.neg i))
            | Some { edesc = Eun (Uneg, { edesc = Efloat f; _ }); _ } ->
              Some (encode_int64 (Int64.bits_of_float (-.f)))
            | _ -> None
          in
          { I.gname = name; gsize = 8; gbytes = bytes }
        | Garray (base, name, size) ->
          globals_scope.vars <- (name, Vglobal (name, Tarr base)) :: globals_scope.vars;
          { I.gname = name; gsize = 8 * size; gbytes = None })
      p.pglobals
  in
  let funcs = List.map (gen_func genv globals_scope) p.pfuncs in
  { I.globals = globals @ genv.extra_globals; funcs }
