(* Hand-written lexer for MinC.  Tracks line numbers for error messages. *)

type token =
  | INT of int64
  | FLOAT of float
  | IDENT of string
  | STRING of string
  | KW of string (* int, float, void, if, else, while, for, return, break, continue, global *)
  | PUNCT of string (* operators and delimiters *)
  | EOF

type lexed = { tok : token; line : int }

exception Error of string * int (* message, line *)

let keywords =
  [ "int"; "float"; "void"; "if"; "else"; "while"; "for"; "return"; "break"; "continue"; "global" ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let tokenize (src : string) : lexed list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let pos = ref 0 in
  let peek off = if !pos + off < n then Some src.[!pos + off] else None in
  let emit tok = toks := { tok; line = !line } :: !toks in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin incr line; incr pos end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && peek 1 = Some '/' then begin
      while !pos < n && src.[!pos] <> '\n' do incr pos done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      pos := !pos + 2;
      let fin = ref false in
      while not !fin do
        if !pos + 1 >= n then raise (Error ("unterminated comment", !line));
        if src.[!pos] = '\n' then incr line;
        if src.[!pos] = '*' && src.[!pos + 1] = '/' then begin
          pos := !pos + 2;
          fin := true
        end
        else incr pos
      done
    end
    else if is_digit c || (c = '.' && (match peek 1 with Some d -> is_digit d | None -> false))
    then begin
      let start = !pos in
      let is_float = ref false in
      if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        pos := !pos + 2;
        while !pos < n && (is_digit src.[!pos] || (Char.lowercase_ascii src.[!pos] >= 'a' && Char.lowercase_ascii src.[!pos] <= 'f')) do incr pos done;
        let text = String.sub src start (!pos - start) in
        emit (INT (Int64.of_string text))
      end
      else begin
        while !pos < n && is_digit src.[!pos] do incr pos done;
        if !pos < n && src.[!pos] = '.' then begin
          is_float := true;
          incr pos;
          while !pos < n && is_digit src.[!pos] do incr pos done
        end;
        if !pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E') then begin
          is_float := true;
          incr pos;
          if !pos < n && (src.[!pos] = '+' || src.[!pos] = '-') then incr pos;
          while !pos < n && is_digit src.[!pos] do incr pos done
        end;
        let text = String.sub src start (!pos - start) in
        if !is_float then emit (FLOAT (float_of_string text))
        else
          match Int64.of_string_opt text with
          | Some v -> emit (INT v)
          | None -> raise (Error ("bad integer literal " ^ text, !line))
      end
    end
    else if is_alpha c then begin
      let start = !pos in
      while !pos < n && is_alnum src.[!pos] do incr pos done;
      let text = String.sub src start (!pos - start) in
      if List.mem text keywords then emit (KW text) else emit (IDENT text)
    end
    else if c = '"' then begin
      incr pos;
      let buf = Buffer.create 16 in
      let fin = ref false in
      while not !fin do
        if !pos >= n then raise (Error ("unterminated string", !line));
        match src.[!pos] with
        | '"' -> incr pos; fin := true
        | '\\' ->
          if !pos + 1 >= n then raise (Error ("bad escape", !line));
          (match src.[!pos + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | '\\' -> Buffer.add_char buf '\\'
          | '"' -> Buffer.add_char buf '"'
          | e -> raise (Error (Printf.sprintf "bad escape \\%c" e, !line)));
          pos := !pos + 2
        | '\n' -> raise (Error ("newline in string", !line))
        | ch -> Buffer.add_char buf ch; incr pos
      done;
      emit (STRING (Buffer.contents buf))
    end
    else begin
      let two = if !pos + 1 < n then String.sub src !pos 2 else "" in
      let multi = [ "&&"; "||"; "=="; "!="; "<="; ">="; "<<"; ">>" ] in
      if List.mem two multi then begin
        emit (PUNCT two);
        pos := !pos + 2
      end
      else
        match c with
        | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '=' | '!' | '&' | '|' | '^' | '(' | ')'
        | '{' | '}' | '[' | ']' | ';' | ',' ->
          emit (PUNCT (String.make 1 c));
          incr pos
        | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, !line))
    end
  done;
  List.rev ({ tok = EOF; line = !line } :: !toks)
