(* Abstract syntax of MinC, the small C-like language the benchmark
   programs are written in.  MinC stands in for the C/C++ sources of the
   paper's 14 HPC programs: scalars are 64-bit ints and doubles, arrays are
   flat, control flow is structured.  Everything lowers to the IR through
   [Irgen]. *)

type ty =
  | Tint
  | Tfloat
  | Tarr of ty (* array of int/float; represented as an address at run time *)

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bmod
  | Beq | Bne | Blt | Ble | Bgt | Bge
  | Band | Bor (* short-circuit logical *)
  | Bbitand | Bbitor | Bbitxor | Bshl | Bshr

type unop = Uneg | Unot

type expr = { edesc : edesc; eloc : int (* source line *) }

and edesc =
  | Eint of int64
  | Efloat of float
  | Evar of string
  | Eindex of string * expr (* a[i] *)
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Ecall of string * expr list
  | Estr of string (* string literal; only as a call argument *)

type stmt = { sdesc : sdesc; sloc : int }

and sdesc =
  | Sdecl of ty * string * expr option (* int x; / int x = e; *)
  | Sarrdecl of ty * string * int (* int a[16]; — local array *)
  | Sassign of string * expr
  | Sstore of string * expr * expr (* a[i] = e *)
  | Sexpr of expr (* call for effect *)
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of stmt option * expr * stmt option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue

type gdecl =
  | Gscalar of ty * string * expr option (* global int n = 3; *)
  | Garray of ty * string * int (* global float x[512]; *)

type fdef = {
  fret : ty option; (* None = void *)
  fname : string;
  fparams : (ty * string) list;
  fbody : stmt list;
  floc : int;
}

type program = { pglobals : gdecl list; pfuncs : fdef list }

let rec string_of_ty = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tarr t -> string_of_ty t ^ "[]"
