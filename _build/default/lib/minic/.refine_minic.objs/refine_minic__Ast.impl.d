lib/minic/ast.ml:
