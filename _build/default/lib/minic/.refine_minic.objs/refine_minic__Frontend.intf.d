lib/minic/frontend.mli: Refine_ir
