lib/minic/builtins.ml: Ast
