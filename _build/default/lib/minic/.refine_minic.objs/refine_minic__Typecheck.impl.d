lib/minic/typecheck.ml: Ast Builtins Hashtbl List Printf
