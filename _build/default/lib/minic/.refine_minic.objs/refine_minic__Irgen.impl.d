lib/minic/irgen.ml: Ast Builtins Bytes Hashtbl Int64 List Option Printf Refine_ir String
