lib/minic/frontend.ml: Irgen Lexer Parser Printf Refine_ir Typecheck
