(** Chi-squared distribution and Pearson's test of homogeneity — the
    statistical inference of the paper's §5.4.2 / Table 5. *)

val cdf : df:int -> float -> float
(** CDF of the chi-squared distribution with [df] degrees of freedom. *)

val survival : df:int -> float -> float
(** Upper-tail probability: the p-value of a test statistic. *)

type test_result = {
  statistic : float;
  df : int;
  p_value : float;
  significant : bool;  (** p < alpha: reject H0, the tools differ *)
}

val test : ?alpha:float -> int array array -> test_result
(** Pearson chi-squared test on an r x c contingency table of observed
    counts (rows = tools, columns = outcome categories).  H0: the row
    distributions are homogeneous.  Columns with zero total carry no
    information and are dropped with the degrees of freedom reduced (e.g. a
    program with zero SOC outcomes under every tool, like the paper's CG).
    Default [alpha] is 0.05, the paper's significance level. *)
