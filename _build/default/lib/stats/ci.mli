(** Confidence intervals for outcome proportions — the error bars of the
    paper's Figure 4 and the "rule of thumb" similarity check of §5.4.1. *)

type interval = { p : float; low : float; high : float }

val wald : count:int -> total:int -> ?confidence:float -> unit -> interval
(** Normal-approximation interval [p ± z sqrt(p(1-p)/n)], clamped to
    [0, 1].  Default confidence 0.95. *)

val wilson : count:int -> total:int -> ?confidence:float -> unit -> interval
(** Wilson score interval; better behaved at extreme proportions (the
    zero-SOC rows of CG). *)

val overlaps : interval -> interval -> bool
(** Do two sampled proportions overlap within their intervals? *)
