(** Statistical fault-injection sample sizing after Leveugle et al.
    (DATE'09) — the method the paper cites for its 1,068 experiments per
    (program, tool) cell. *)

val z_of_confidence : float -> float
(** Normal quantile for confidence level 0.90, 0.95 or 0.99. *)

val finite : population:int -> margin:float -> confidence:float -> ?p:float -> unit -> int
(** Sample count for a finite fault-space population:
    [n = N / (1 + e^2 (N-1) / (t^2 p (1-p)))]. *)

val infinite : margin:float -> confidence:float -> ?p:float -> unit -> int
(** Infinite-population limit [t^2 p (1-p) / e^2]; at e = 3%, 95% and
    p = 0.5 this is the paper's 1,068. *)

val paper_sample_count : int
(** [infinite ~margin:0.03 ~confidence:0.95 ()] = 1068. *)

val margin_of : samples:int -> confidence:float -> ?p:float -> unit -> float
(** Achieved margin of error for a given sample count. *)
