(* Confidence intervals for outcome proportions (the error bars of the
   paper's Figure 4). *)

type interval = { p : float; low : float; high : float }

let clamp01 v = Float.max 0.0 (Float.min 1.0 v)

(* Normal-approximation (Wald) interval *)
let wald ~count ~total ?(confidence = 0.95) () =
  if total <= 0 then invalid_arg "Ci.wald: total <= 0";
  let z = Samplesize.z_of_confidence confidence in
  let p = float_of_int count /. float_of_int total in
  let half = z *. sqrt (p *. (1.0 -. p) /. float_of_int total) in
  { p; low = clamp01 (p -. half); high = clamp01 (p +. half) }

(* Wilson score interval: better behaved at extreme proportions (e.g. the
   0-SOC rows of CG) *)
let wilson ~count ~total ?(confidence = 0.95) () =
  if total <= 0 then invalid_arg "Ci.wilson: total <= 0";
  let z = Samplesize.z_of_confidence confidence in
  let n = float_of_int total in
  let p = float_of_int count /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let center = (p +. (z2 /. (2.0 *. n))) /. denom in
  let half = z *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n))) /. denom in
  { p; low = clamp01 (center -. half); high = clamp01 (center +. half) }

(* Do two sampled proportions overlap within their intervals?  The "rule of
   thumb" visual check of §5.4.1. *)
let overlaps a b = not (a.high < b.low || b.high < a.low)
