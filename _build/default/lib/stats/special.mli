(** Special functions backing the statistics: log-gamma (Lanczos) and the
    regularized incomplete gamma functions (series + continued fraction),
    which give the chi-squared CDF. *)

val lgamma : float -> float
(** [log (Gamma x)] for [x > 0] (reflection formula below 0.5). *)

val gamma_p : float -> float -> float
(** Regularized lower incomplete gamma [P(a, x)], for [a > 0], [x >= 0]. *)

val gamma_q : float -> float -> float
(** Regularized upper incomplete gamma [Q(a, x) = 1 - P(a, x)]. *)

val erf : float -> float
(** Error function, via [P(1/2, x^2)]. *)
