(* Chi-squared distribution and Pearson's test of homogeneity on
   contingency tables — the inference method of the paper's §5.4.2 /
   Table 5: outcome frequencies of tool A vs tool B, H0 = the tool has no
   effect on the frequencies, significance level alpha = 0.05. *)

(* CDF of the chi-squared distribution with [df] degrees of freedom *)
let cdf ~df x =
  if df <= 0 then invalid_arg "Chi2.cdf: df <= 0";
  if x <= 0.0 then 0.0 else Special.gamma_p (float_of_int df /. 2.0) (x /. 2.0)

(* upper tail probability (the p-value of a test statistic) *)
let survival ~df x =
  if df <= 0 then invalid_arg "Chi2.survival: df <= 0";
  if x <= 0.0 then 1.0 else Special.gamma_q (float_of_int df /. 2.0) (x /. 2.0)

type test_result = {
  statistic : float;
  df : int;
  p_value : float;
  significant : bool; (* p < alpha: reject H0, the tools differ *)
}

(* Pearson chi-squared test on an r x c table of observed counts.
   Columns whose total is zero carry no information (e.g. a program with
   zero SOC outcomes under every tool) and are dropped, with the degrees of
   freedom reduced accordingly — the standard treatment. *)
let test ?(alpha = 0.05) (table : int array array) : test_result =
  let r = Array.length table in
  if r < 2 then invalid_arg "Chi2.test: need at least two rows";
  let c = Array.length table.(0) in
  Array.iter (fun row -> if Array.length row <> c then invalid_arg "Chi2.test: ragged table") table;
  let col_tot = Array.make c 0 in
  let row_tot = Array.make r 0 in
  let grand = ref 0 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          if v < 0 then invalid_arg "Chi2.test: negative count";
          col_tot.(j) <- col_tot.(j) + v;
          row_tot.(i) <- row_tot.(i) + v;
          grand := !grand + v)
        row)
    table;
  if !grand = 0 then invalid_arg "Chi2.test: empty table";
  let live_cols = Array.to_list (Array.init c (fun j -> j)) |> List.filter (fun j -> col_tot.(j) > 0) in
  let c_eff = List.length live_cols in
  if c_eff < 2 then
    (* all mass in one column: the distributions are trivially identical *)
    { statistic = 0.0; df = 1; p_value = 1.0; significant = false }
  else begin
    let stat = ref 0.0 in
    Array.iteri
      (fun i _ ->
        List.iter
          (fun j ->
            let expected = float_of_int row_tot.(i) *. float_of_int col_tot.(j) /. float_of_int !grand in
            if expected > 0.0 then begin
              let d = float_of_int table.(i).(j) -. expected in
              stat := !stat +. (d *. d /. expected)
            end)
          live_cols)
      table;
    let df = (r - 1) * (c_eff - 1) in
    let p = survival ~df !stat in
    { statistic = !stat; df; p_value = p; significant = p < alpha }
  end
