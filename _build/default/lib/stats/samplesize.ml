(* Statistical fault injection sample sizing, after Leveugle et al.
   (DATE'09), the method the paper cites for choosing 1,068 experiments per
   (program, tool): margin of error e <= 3% at 95% confidence with the
   conservative p = 0.5.

       n = N / (1 + e^2 (N - 1) / (t^2 p (1 - p)))

   where N is the fault-space population size and t the normal quantile of
   the confidence level.  As N -> infinity this tends to t^2 p(1-p) / e^2. *)

let z_of_confidence conf =
  (* the handful of levels used in FI practice; 95% matches the paper *)
  match conf with
  | 0.90 -> 1.6448536269514722
  | 0.95 -> 1.959963984540054
  | 0.99 -> 2.5758293035489004
  | _ -> invalid_arg "Samplesize.z_of_confidence: use 0.90, 0.95 or 0.99"

(* Finite fault-space population N *)
let finite ~population ~margin ~confidence ?(p = 0.5) () =
  if margin <= 0.0 || margin >= 1.0 then invalid_arg "Samplesize.finite: margin";
  let t = z_of_confidence confidence in
  let nf = float_of_int population in
  let n = nf /. (1.0 +. (margin *. margin *. (nf -. 1.0) /. (t *. t *. p *. (1.0 -. p)))) in
  int_of_float (Float.ceil n)

(* Infinite population limit: the paper's n = 1068 at e = 0.03, 95% *)
let infinite ~margin ~confidence ?(p = 0.5) () =
  if margin <= 0.0 || margin >= 1.0 then invalid_arg "Samplesize.infinite: margin";
  let t = z_of_confidence confidence in
  int_of_float (Float.ceil (t *. t *. p *. (1.0 -. p) /. (margin *. margin)))

let paper_sample_count = infinite ~margin:0.03 ~confidence:0.95 ()

(* Achieved margin of error for a given sample count *)
let margin_of ~samples ~confidence ?(p = 0.5) () =
  let t = z_of_confidence confidence in
  t *. sqrt (p *. (1.0 -. p) /. float_of_int samples)
