(* Special functions needed by the statistical analysis: log-gamma
   (Lanczos) and the regularized incomplete gamma functions P(a,x)/Q(a,x)
   (series + continued fraction, as in Numerical Recipes), which give the
   chi-squared CDF used for the paper's Table 5 significance tests. *)

let lanczos_g = 7.0

let lanczos_coef =
  [|
    0.99999999999980993; 676.5203681218851; -1259.1392167224028; 771.32342877765313;
    -176.61502916214059; 12.507343278686905; -0.13857109526572012; 9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

(* log Gamma(x) for x > 0 *)
let rec lgamma x =
  if x < 0.5 then
    (* reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x) *)
    log (Float.pi /. Float.abs (sin (Float.pi *. x))) -. lgamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let a = ref lanczos_coef.(0) in
    let t = x +. lanczos_g +. 0.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos_coef.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

let max_iter = 500
let epsilon = 3e-14

(* series representation of P(a,x), good for x < a+1 *)
let gamma_p_series a x =
  let gln = lgamma a in
  if x <= 0.0 then 0.0
  else begin
    let ap = ref a in
    let sum = ref (1.0 /. a) in
    let del = ref !sum in
    (try
       for _ = 1 to max_iter do
         ap := !ap +. 1.0;
         del := !del *. x /. !ap;
         sum := !sum +. !del;
         if Float.abs !del < Float.abs !sum *. epsilon then raise Exit
       done
     with Exit -> ());
    !sum *. exp ((-.x) +. (a *. log x) -. gln)
  end

(* continued-fraction representation of Q(a,x), good for x >= a+1 *)
let gamma_q_cf a x =
  let gln = lgamma a in
  let tiny = 1e-300 in
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. tiny) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  (try
     for i = 1 to max_iter do
       let an = -.float_of_int i *. (float_of_int i -. a) in
       b := !b +. 2.0;
       d := (an *. !d) +. !b;
       if Float.abs !d < tiny then d := tiny;
       c := !b +. (an /. !c);
       if Float.abs !c < tiny then c := tiny;
       d := 1.0 /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.0) < epsilon then raise Exit
     done
   with Exit -> ());
  exp ((-.x) +. (a *. log x) -. gln) *. !h

(* regularized lower incomplete gamma P(a, x) *)
let gamma_p a x =
  if x < 0.0 || a <= 0.0 then invalid_arg "Special.gamma_p";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then gamma_p_series a x
  else 1.0 -. gamma_q_cf a x

(* regularized upper incomplete gamma Q(a, x) = 1 - P(a, x) *)
let gamma_q a x =
  if x < 0.0 || a <= 0.0 then invalid_arg "Special.gamma_q";
  if x = 0.0 then 1.0
  else if x < a +. 1.0 then 1.0 -. gamma_p_series a x
  else gamma_q_cf a x

(* error function, via P(1/2, x^2) *)
let erf x =
  let v = gamma_p 0.5 (x *. x) in
  if x >= 0.0 then v else -.v
