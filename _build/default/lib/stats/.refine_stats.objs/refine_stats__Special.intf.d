lib/stats/special.mli:
