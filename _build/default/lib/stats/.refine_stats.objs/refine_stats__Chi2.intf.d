lib/stats/chi2.mli:
