lib/stats/chi2.ml: Array List Special
