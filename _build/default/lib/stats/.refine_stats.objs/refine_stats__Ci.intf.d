lib/stats/ci.mli:
