lib/stats/samplesize.mli:
