lib/stats/ci.ml: Float Samplesize
