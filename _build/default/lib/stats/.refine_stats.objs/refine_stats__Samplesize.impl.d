lib/stats/samplesize.ml: Float
