(* Machine-level peephole clean-up: self-moves and jumps to the next block
   in layout order disappear (the engine falls through to pc+1). *)

module M = Refine_mir.Minstr
module F = Refine_mir.Mfunc

let run (mf : F.t) =
  (* self-moves *)
  List.iter
    (fun (b : F.mblock) ->
      b.code <-
        List.filter (fun i -> match i with M.Mmov (d, M.Reg s) -> d <> s | _ -> true) b.code)
    mf.F.blocks;
  (* drop a trailing jump to the block that immediately follows *)
  let rec walk = function
    | (a : F.mblock) :: (b : F.mblock) :: rest ->
      (match List.rev a.code with
      | M.Mjmp l :: prefix when l = b.mlbl -> a.code <- List.rev prefix
      | _ -> ());
      walk (b :: rest)
    | _ -> ()
  in
  walk mf.F.blocks
