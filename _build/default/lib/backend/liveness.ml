(* Virtual-register liveness and live intervals over the linearized
   machine function, feeding linear-scan allocation.

   Positions number every instruction in block-layout order.  Intervals are
   conservative [first event, last event] ranges extended to block
   boundaries where the register is live-in/out; lifetime holes are not
   modelled, which costs some register pressure but keeps the allocator
   simple and predictable. *)

module M = Refine_mir.Minstr
module F = Refine_mir.Mfunc
module R = Refine_mir.Reg

type interval = {
  vreg : R.t;
  cls : R.rclass;
  start_pos : int;
  end_pos : int;
}

type t = {
  intervals : interval list; (* sorted by start *)
  block_bounds : (M.label * int * int) list; (* label, first pos, one-past-last *)
  positions : M.t array; (* linearized code *)
  (* positions of call instructions, extended over their ABI marshal/result
     movs: an interval overlapping any of these must survive a call *)
  call_positions : int list;
}

let vins i = List.filter R.is_virtual (M.inputs i)
let vouts i = List.filter R.is_virtual (M.outputs i)

let block_succs (b : F.mblock) =
  List.concat_map (fun i -> match i with M.Mjcc (_, l) | M.Mjmp l -> [ l ] | _ -> []) b.code

let build (mf : F.t) : t =
  (* positions *)
  let code = Array.of_list (List.concat_map (fun (b : F.mblock) -> b.code) mf.F.blocks) in
  let bounds = ref [] in
  let pos = ref 0 in
  List.iter
    (fun (b : F.mblock) ->
      let first = !pos in
      pos := !pos + List.length b.code;
      bounds := (b.mlbl, first, !pos) :: !bounds)
    mf.F.blocks;
  let bounds = List.rev !bounds in
  (* block-level USE/DEF *)
  let use_def =
    List.map
      (fun (b : F.mblock) ->
        let use = Hashtbl.create 16 and def = Hashtbl.create 16 in
        List.iter
          (fun i ->
            List.iter (fun r -> if not (Hashtbl.mem def r) then Hashtbl.replace use r ()) (vins i);
            List.iter (fun r -> Hashtbl.replace def r ()) (vouts i))
          b.code;
        (b.mlbl, use, def))
      mf.F.blocks
  in
  let live_in : (M.label, (R.t, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  let live_out : (M.label, (R.t, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (b : F.mblock) ->
      Hashtbl.replace live_in b.mlbl (Hashtbl.create 16);
      Hashtbl.replace live_out b.mlbl (Hashtbl.create 16))
    mf.F.blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    (* reverse order accelerates convergence *)
    List.iter
      (fun (b : F.mblock) ->
        let lin = Hashtbl.find live_in b.mlbl in
        let lout = Hashtbl.find live_out b.mlbl in
        List.iter
          (fun s ->
            match Hashtbl.find_opt live_in s with
            | Some sin ->
              Hashtbl.iter
                (fun r () ->
                  if not (Hashtbl.mem lout r) then begin
                    Hashtbl.replace lout r ();
                    changed := true
                  end)
                sin
            | None -> ())
          (block_succs b);
        let _, use, def = List.find (fun (l, _, _) -> l = b.mlbl) use_def in
        Hashtbl.iter
          (fun r () ->
            if not (Hashtbl.mem lin r) then begin
              Hashtbl.replace lin r ();
              changed := true
            end)
          use;
        Hashtbl.iter
          (fun r () ->
            if (not (Hashtbl.mem def r)) && not (Hashtbl.mem lin r) then begin
              Hashtbl.replace lin r ();
              changed := true
            end)
          lout)
      (List.rev mf.F.blocks)
  done;
  (* intervals *)
  let starts : (R.t, int) Hashtbl.t = Hashtbl.create 64 in
  let ends : (R.t, int) Hashtbl.t = Hashtbl.create 64 in
  let note r p =
    (match Hashtbl.find_opt starts r with
    | Some s -> if p < s then Hashtbl.replace starts r p
    | None -> Hashtbl.replace starts r p);
    match Hashtbl.find_opt ends r with
    | Some e -> if p > e then Hashtbl.replace ends r p
    | None -> Hashtbl.replace ends r p
  in
  List.iter2
    (fun (b : F.mblock) (lbl, first, last) ->
      assert (b.mlbl = lbl);
      Hashtbl.iter (fun r () -> note r first) (Hashtbl.find live_in b.mlbl);
      Hashtbl.iter (fun r () -> note r (last - 1)) (Hashtbl.find live_out b.mlbl);
      List.iteri
        (fun k i ->
          let p = first + k in
          List.iter (fun r -> note r p) (vins i);
          List.iter (fun r -> note r p) (vouts i))
        b.code)
    mf.F.blocks bounds;
  let intervals =
    Hashtbl.fold
      (fun r s acc ->
        let e = Hashtbl.find ends r in
        { vreg = r; cls = F.reg_class mf r; start_pos = s; end_pos = e } :: acc)
      starts []
    |> List.sort (fun a b -> compare (a.start_pos, a.vreg) (b.start_pos, b.vreg))
  in
  (* call positions extended over their marshal/result movs *)
  let n = Array.length code in
  let is_marshal_mov i =
    match code.(i) with
    | M.Mmov (d, _) when R.is_physical d && d <> R.rsp && d <> R.rbp -> true
    | _ -> false
  in
  let is_result_mov i =
    match code.(i) with
    | M.Mmov (_, M.Reg s) when R.is_physical s && s <> R.rsp && s <> R.rbp -> true
    | _ -> false
  in
  let call_positions = ref [] in
  Array.iteri
    (fun p i ->
      match i with
      | M.Mcall _ | M.Mcalli _ | M.Mcallext _ ->
        call_positions := p :: !call_positions;
        let k = ref (p - 1) in
        while !k >= 0 && is_marshal_mov !k do
          call_positions := !k :: !call_positions;
          decr k
        done;
        if p + 1 < n && is_result_mov (p + 1) then call_positions := (p + 1) :: !call_positions
      | _ -> ())
    code;
  {
    intervals;
    block_bounds = bounds;
    positions = code;
    call_positions = List.sort_uniq compare !call_positions;
  }
