(* Backend driver: optimized IR module -> machine functions -> image.

   [to_mir] stops before layout so that FI passes (REFINE) can instrument
   the machine code right before emission, exactly as in the paper's
   Figure 1; [emit] finishes the job.  [compile] is the plain no-FI
   pipeline. *)

module F = Refine_mir.Mfunc
module I = Refine_ir.Ir

let to_mir (m : I.modul) : F.t list * (string -> int) =
  let global_addr, _heap = Refine_ir.Memlayout.place_globals m.globals in
  let funcs =
    List.map
      (fun fn ->
        let mf = Isel.select_func ~global_addr m fn in
        Regalloc.run mf;
        Frame.run mf;
        Peephole.run mf;
        mf)
      m.funcs
  in
  (funcs, global_addr)

(* FI passes (REFINE) instrument between [to_mir] and [emit], i.e. on the
   final machine code right before emission (paper Figure 1). *)
let emit (m : I.modul) (funcs : F.t list) : Layout.image =
  Layout.build ~globals:m.globals funcs

let compile (m : I.modul) : Layout.image =
  let funcs, _ = to_mir m in
  emit m funcs
