(* Linear-scan register allocation.

   Intervals that overlap a call position can only be assigned callee-saved
   registers (the ABI gives the callee the right to clobber the rest); this
   restriction is what makes the LLFI pass's injected calls degrade code
   quality exactly like the paper's Listing 2c — live ranges that used to
   fit in caller-saved registers now spill around every instrumented
   instruction.

   Spilled virtual registers get an 8-byte frame slot; a rewrite pass loads
   operands into reserved scratch registers before each use and stores the
   result after each definition, producing the reload/spill traffic that
   backend-level FI can target but IR-level FI cannot see. *)

module M = Refine_mir.Minstr
module F = Refine_mir.Mfunc
module R = Refine_mir.Reg

type assignment = Phys of R.t | Slot of int (* rbp-relative offset *)

type active = { mutable iv : Liveness.interval; mutable reg : R.t }

let overlaps_call call_positions (iv : Liveness.interval) =
  List.exists (fun p -> p >= iv.start_pos && p <= iv.end_pos) call_positions

let run (mf : F.t) =
  let live = Liveness.build mf in
  let assignment : (R.t, assignment) Hashtbl.t = Hashtbl.create 64 in
  (* free register pools *)
  let free_caller_gpr = ref R.caller_saved_gprs in
  let free_callee_gpr = ref R.callee_saved_gprs in
  let free_caller_fpr = ref R.caller_saved_fprs in
  let free_callee_fpr = ref R.callee_saved_fprs in
  let pool_of cls callee =
    match (cls, callee) with
    | R.GPR, false -> free_caller_gpr
    | R.GPR, true -> free_callee_gpr
    | R.FPR, false -> free_caller_fpr
    | R.FPR, true -> free_callee_fpr
  in
  let release r =
    let cls = R.class_of_phys r in
    let callee = R.is_callee_saved r in
    let pool = pool_of cls callee in
    pool := r :: !pool
  in
  let used_callee = Hashtbl.create 8 in
  let take cls callee =
    let pool = pool_of cls callee in
    match !pool with
    | r :: rest ->
      pool := rest;
      if callee then Hashtbl.replace used_callee r ();
      Some r
    | [] -> None
  in
  let active : active list ref = ref [] in
  let expire pos =
    let expired, remaining = List.partition (fun a -> a.iv.Liveness.end_pos < pos) !active in
    List.iter (fun a -> release a.reg) expired;
    active := remaining
  in
  let spill_slot : (R.t, int) Hashtbl.t = Hashtbl.create 16 in
  let slot_for v =
    match Hashtbl.find_opt spill_slot v with
    | Some s -> s
    | None ->
      let s = F.alloc_slot mf 8 in
      Hashtbl.add spill_slot v s;
      s
  in
  List.iter
    (fun (iv : Liveness.interval) ->
      expire iv.start_pos;
      let needs_callee = overlaps_call live.call_positions iv in
      let reg =
        if needs_callee then take iv.cls true
        else
          match take iv.cls false with
          | Some r -> Some r
          | None -> take iv.cls true
      in
      match reg with
      | Some r ->
        Hashtbl.replace assignment iv.vreg (Phys r);
        active := { iv; reg = r } :: !active
      | None -> (
        (* steal from the active interval with the furthest end whose
           register is usable for this interval, if it outlives us *)
        let usable a =
          F.reg_class mf a.iv.Liveness.vreg = iv.cls
          && ((not needs_callee) || R.is_callee_saved a.reg)
        in
        let candidates = List.filter usable !active in
        let victim =
          List.fold_left
            (fun best a ->
              match best with
              | None -> Some a
              | Some b -> if a.iv.Liveness.end_pos > b.iv.Liveness.end_pos then Some a else Some b)
            None candidates
        in
        match victim with
        | Some v when v.iv.Liveness.end_pos > iv.end_pos ->
          (* victim spills; we take its register *)
          Hashtbl.replace assignment v.iv.Liveness.vreg (Slot (slot_for v.iv.Liveness.vreg));
          Hashtbl.replace assignment iv.vreg (Phys v.reg);
          v.iv <- iv
        | _ ->
          (* spill the current interval *)
          Hashtbl.replace assignment iv.vreg (Slot (slot_for iv.vreg))))
    live.intervals;
  mf.F.used_callee_saved <-
    Hashtbl.fold (fun r () acc -> r :: acc) used_callee [] |> List.sort compare;
  (* ---- rewrite: apply assignments, insert reloads/spills --------------- *)
  let assign r =
    if R.is_virtual r then
      match Hashtbl.find_opt assignment r with
      | Some a -> a
      | None -> Phys R.scratch_gpr0 (* defined but never alive: any scratch is fine *)
    else Phys r
  in
  List.iter
    (fun (b : F.mblock) ->
      let out = ref [] in
      List.iter
        (fun instr ->
          let ins = List.filter R.is_virtual (M.inputs instr) in
          let outs = List.filter R.is_virtual (M.outputs instr) in
          let spilled_ins =
            List.sort_uniq compare (List.filter (fun r -> match assign r with Slot _ -> true | _ -> false) ins)
          in
          let spilled_outs =
            List.sort_uniq compare (List.filter (fun r -> match assign r with Slot _ -> true | _ -> false) outs)
          in
          (* pick scratches per class, in order *)
          let gpr_scratches = ref [ R.scratch_gpr0; R.scratch_gpr1; R.scratch_gpr2 ] in
          let fpr_scratches = ref [ R.scratch_fpr0; R.scratch_fpr1 ] in
          let scratch_map : (R.t, R.t) Hashtbl.t = Hashtbl.create 4 in
          let scratch_for v =
            match Hashtbl.find_opt scratch_map v with
            | Some s -> s
            | None ->
              let pool = match F.reg_class mf v with R.GPR -> gpr_scratches | R.FPR -> fpr_scratches in
              (match !pool with
              | s :: rest ->
                pool := rest;
                Hashtbl.add scratch_map v s;
                s
              | [] -> failwith "Regalloc: out of scratch registers")
          in
          (* reload spilled inputs *)
          List.iter
            (fun v ->
              let s = scratch_for v in
              let off = match assign v with Slot o -> o | Phys _ -> assert false in
              out := M.Mload (s, R.rbp, off) :: !out)
            spilled_ins;
          (* ensure spilled outputs have a scratch too; when the pool of a
             class is exhausted, an output may reuse an input's scratch —
             the engine reads all inputs before writing the destination *)
          List.iter
            (fun v ->
              if not (Hashtbl.mem scratch_map v) then begin
                let cls = F.reg_class mf v in
                let pool = match cls with R.GPR -> gpr_scratches | R.FPR -> fpr_scratches in
                match !pool with
                | s :: rest ->
                  pool := rest;
                  Hashtbl.add scratch_map v s
                | [] -> (
                  let donor =
                    List.find_opt (fun u -> F.reg_class mf u = cls) spilled_ins
                  in
                  match donor with
                  | Some u -> Hashtbl.add scratch_map v (Hashtbl.find scratch_map u)
                  | None -> failwith "Regalloc: out of scratch registers")
              end)
            spilled_outs;
          let subst r =
            if R.is_virtual r then
              match assign r with
              | Phys p -> p
              | Slot _ -> Hashtbl.find scratch_map r
            else r
          in
          out := M.map_regs subst instr :: !out;
          (* store spilled outputs *)
          List.iter
            (fun v ->
              let s = Hashtbl.find scratch_map v in
              let off = match assign v with Slot o -> o | Phys _ -> assert false in
              out := M.Mstore (s, R.rbp, off) :: !out)
            spilled_outs)
        b.code;
      b.code <- List.rev !out)
    mf.F.blocks
