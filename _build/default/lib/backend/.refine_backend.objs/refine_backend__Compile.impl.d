lib/backend/compile.ml: Frame Isel Layout List Peephole Refine_ir Refine_mir Regalloc
