lib/backend/regalloc.ml: Hashtbl List Liveness Refine_mir
