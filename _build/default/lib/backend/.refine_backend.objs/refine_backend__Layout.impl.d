lib/backend/layout.ml: Array Hashtbl List Printf Refine_ir Refine_mir
