lib/backend/liveness.ml: Array Hashtbl List Refine_mir
