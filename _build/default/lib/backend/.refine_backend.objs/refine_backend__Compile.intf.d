lib/backend/compile.mli: Layout Refine_ir Refine_mir
