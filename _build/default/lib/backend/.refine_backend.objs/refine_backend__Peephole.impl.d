lib/backend/peephole.ml: List Refine_mir
