lib/backend/splitcrit.ml: List Refine_ir
