lib/backend/layout.mli: Refine_ir Refine_mir
