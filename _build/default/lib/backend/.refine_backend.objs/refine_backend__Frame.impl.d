lib/backend/frame.ml: Int64 List Refine_ir Refine_mir
