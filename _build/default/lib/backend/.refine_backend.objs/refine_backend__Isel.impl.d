lib/backend/isel.ml: Hashtbl Int64 List Option Printf Refine_ir Refine_mir Splitcrit
