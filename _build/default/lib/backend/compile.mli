(** Backend driver: optimized IR module -> machine functions -> executable
    image.

    [to_mir] stops after peephole so FI passes (REFINE) can instrument the
    final machine code right before emission, exactly as in the paper's
    Figure 1; [emit] performs layout.  [compile] is the plain, no-FI
    pipeline used for PINFI/native binaries. *)

val to_mir : Refine_ir.Ir.modul -> Refine_mir.Mfunc.t list * (string -> int)
(** Instruction selection, register allocation, frame lowering and
    peephole for every function; also returns the global-address map. *)

val emit : Refine_ir.Ir.modul -> Refine_mir.Mfunc.t list -> Layout.image

val compile : Refine_ir.Ir.modul -> Layout.image
(** [emit m (fst (to_mir m))]. *)
