(* Critical-edge splitting on the IR, run before instruction selection.

   An edge a->b is critical when a has several successors and b several
   predecessors.  Phi elimination places parallel copies either at the end
   of the predecessor (needs a single successor) or at the top of the block
   (needs a single predecessor); splitting guarantees one of the two always
   applies. *)

open Refine_ir.Ir
module Cfg = Refine_ir.Cfg

let run (fn : func) =
  let cfg = Cfg.build fn in
  let next_label = ref (List.fold_left (fun acc b -> max acc b.lbl) 0 fn.blocks + 1) in
  let new_blocks = ref [] in
  List.iter
    (fun a ->
      let succs = term_succs a.term in
      if List.length succs > 1 then
        List.iter
          (fun s ->
            if List.length (Cfg.predecessors cfg s) > 1 then begin
              let mid = !next_label in
              incr next_label;
              new_blocks := { lbl = mid; phis = []; body = []; term = Br s } :: !new_blocks;
              let retarget l = if l = s then mid else l in
              (match a.term with
              | Cbr (c, t, e) ->
                (* split only the edge to [s]; if both arms reach s they share
                   the same middle block, which keeps phi edges unambiguous *)
                a.term <- Cbr (c, retarget t, retarget e)
              | Br _ | Ret _ | Unreachable -> ());
              let sblk = find_block fn s in
              List.iter
                (fun p ->
                  p.incoming <-
                    List.map (fun (l, o) -> ((if l = a.lbl then mid else l), o)) p.incoming)
                sblk.phis
            end)
          succs)
    fn.blocks;
  fn.blocks <- fn.blocks @ List.rev !new_blocks
