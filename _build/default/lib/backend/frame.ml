(* Prologue/epilogue insertion, after register allocation (the frame size
   and the set of used callee-saved registers are known only then).

   Prologue:  push cs_1 .. cs_n; push rbp; mov rbp, rsp; sub rsp, frame
   Epilogue:  mov rsp, rbp; pop rbp; pop cs_n .. cs_1; ret

   These are precisely the machine-only instructions of the paper's
   Listing 1b that IR-level fault injectors cannot target. *)

module M = Refine_mir.Minstr
module F = Refine_mir.Mfunc
module R = Refine_mir.Reg

let run (mf : F.t) =
  let frame = Refine_ir.Memlayout.align8 mf.F.frame_bytes in
  let cs = mf.F.used_callee_saved in
  let prologue =
    List.map (fun r -> M.Mpush r) cs
    @ [ M.Mpush R.rbp; M.Mmov (R.rbp, M.Reg R.rsp) ]
    @ (if frame > 0 then [ M.Mbin (Refine_ir.Ir.Sub, R.rsp, R.rsp, M.Imm (Int64.of_int frame)) ]
       else [])
  in
  let epilogue =
    [ M.Mmov (R.rsp, M.Reg R.rbp); M.Mpop R.rbp ]
    @ List.rev_map (fun r -> M.Mpop r) cs
  in
  (match mf.F.blocks with
  | entry :: _ -> entry.code <- prologue @ entry.code
  | [] -> ());
  List.iter
    (fun (b : F.mblock) ->
      b.code <-
        List.concat_map (fun i -> match i with M.Mret -> epilogue @ [ M.Mret ] | _ -> [ i ]) b.code)
    mf.F.blocks
