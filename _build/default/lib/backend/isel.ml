(* Instruction selection: optimized IR -> SX64 machine code over virtual
   registers.

   Selection includes the classic lowering steps whose output the paper's
   IR-level FI tools never see (§3.3.1): phi elimination into parallel
   copies, address-mode folding (gep + load/store -> indexed accesses),
   compare/branch fusion, ABI argument marshaling and stack-slot addressing
   for allocas.  Register allocation, prologue/epilogue insertion and
   spilling come later and add still more machine-only instructions. *)

module I = Refine_ir.Ir
module M = Refine_mir.Minstr
module R = Refine_mir.Reg
module F = Refine_mir.Mfunc

exception Unsupported of string

type env = {
  irf : I.func;
  mf : F.t;
  (* IR value -> virtual register *)
  vregs : (I.value, R.t) Hashtbl.t;
  (* IR use counts, for fusion decisions *)
  uses : (I.value, int) Hashtbl.t;
  (* single-use geps folded into the load/store that consumes them *)
  folded_geps : (I.value, I.operand * I.operand) Hashtbl.t;
  (* compares fused into their block's conditional branch *)
  fused_cmps : (I.value, unit) Hashtbl.t;
  (* alloca -> rbp-relative offset *)
  alloca_slots : (I.value, int) Hashtbl.t;
  global_addr : string -> int;
  mutable cur : F.mblock;
}

let class_of_ty = function I.I64 -> R.GPR | I.F64 -> R.FPR

let vreg_of env v =
  match Hashtbl.find_opt env.vregs v with
  | Some r -> r
  | None ->
    let r = F.fresh_vreg env.mf (class_of_ty (I.value_ty env.irf v)) in
    Hashtbl.add env.vregs v r;
    r

let emit env i = env.cur.code <- env.cur.code @ [ i ]

(* Force an IR operand into a register. *)
let reg_of env (o : I.operand) : R.t =
  match o with
  | I.Var v -> vreg_of env v
  | I.ICst c ->
    let r = F.fresh_vreg env.mf R.GPR in
    emit env (M.Mmov (r, M.Imm c));
    r
  | I.FCst f ->
    let r = F.fresh_vreg env.mf R.FPR in
    emit env (M.Mmov (r, M.Imm (Int64.bits_of_float f)));
    r

(* Integer operand position that accepts an immediate. *)
let opd_of env (o : I.operand) : M.mopd =
  match o with
  | I.Var v -> M.Reg (vreg_of env v)
  | I.ICst c -> M.Imm c
  | I.FCst f -> M.Reg (reg_of env (I.FCst f))

let cc_of_icmp : I.icmp -> M.cc = function
  | I.Ieq -> M.CEq | I.Ine -> M.CNe | I.Ilt -> M.CLt | I.Ile -> M.CLe
  | I.Igt -> M.CGt | I.Ige -> M.CGe

let cc_of_fcmp : I.fcmp -> M.cc = function
  | I.Feq -> M.CFeq | I.Fne -> M.CFne | I.Flt -> M.CFlt | I.Fle -> M.CFle
  | I.Fgt -> M.CFgt | I.Fge -> M.CFge

(* --- analysis: use counts, fusable compares, foldable geps ------------ *)

let count_uses (fn : I.func) =
  let uses = Hashtbl.create 64 in
  let bump = function
    | I.Var v -> Hashtbl.replace uses v (1 + try Hashtbl.find uses v with Not_found -> 0)
    | _ -> ()
  in
  List.iter
    (fun (b : I.block) ->
      List.iter (fun (p : I.phi) -> List.iter (fun (_, o) -> bump o) p.incoming) b.phis;
      List.iter (fun i -> List.iter bump (I.instr_uses i)) b.body;
      List.iter bump (I.term_uses b.term))
    fn.blocks;
  uses

let analyse env =
  let use_count v = try Hashtbl.find env.uses v with Not_found -> 0 in
  List.iter
    (fun (b : I.block) ->
      (* fusable compare: defined here, single use, consumed by this block's Cbr *)
      (match b.term with
      | I.Cbr (I.Var c, _, _) when use_count c = 1 ->
        let defined_here_as_cmp =
          List.exists
            (fun i ->
              match i with
              | I.Icmp (d, _, _, _) | I.Fcmp (d, _, _, _) -> d = c
              | _ -> false)
            b.body
        in
        if defined_here_as_cmp then Hashtbl.replace env.fused_cmps c ()
      | _ -> ());
      (* foldable gep: single use, consumed as the address of a load/store *)
      List.iter
        (fun i ->
          match i with
          | I.Gep (d, base, idx) when use_count d = 1 ->
            let consumed_as_addr =
              List.exists
                (fun j ->
                  match j with
                  | I.Load (_, _, I.Var a) -> a = d
                  | I.Store (_, _, I.Var a) -> a = d
                  | _ -> false)
                (List.concat_map (fun (bb : I.block) -> bb.body) env.irf.blocks)
            in
            if consumed_as_addr then Hashtbl.replace env.folded_geps d (base, idx)
          | _ -> ())
        b.body)
    env.irf.blocks

(* --- address lowering -------------------------------------------------- *)

(* Lower a load/store address, folding single-use geps into addressing
   modes.  Returns the (base, index option, offset) triple. *)
let lower_addr env (addr : I.operand) : R.t * R.t option * int =
  match addr with
  | I.Var a when Hashtbl.mem env.folded_geps a -> (
    let base, idx = Hashtbl.find env.folded_geps a in
    let breg = reg_of env base in
    match idx with
    | I.ICst c -> (breg, None, 8 * Int64.to_int c)
    | other -> (breg, Some (reg_of env other), 0))
  | other -> (reg_of env other, None, 0)

(* --- phi copies -------------------------------------------------------- *)

(* Parallel copies for the edge into [target]: (dst vreg, source operand)
   pairs.  Sequentialized through temporaries when a destination is also
   read as a source (the swap problem). *)
let phi_copies env (target : I.block) (from : I.label) =
  let pairs =
    List.map
      (fun (p : I.phi) ->
        match List.assoc_opt from p.incoming with
        | Some o -> (vreg_of env p.pdst, o)
        | None ->
          raise
            (Unsupported
               (Printf.sprintf "phi v%d in L%d missing edge from L%d" p.pdst target.lbl from)))
      target.phis
  in
  if pairs = [] then ()
  else begin
    let dests = List.map fst pairs in
    let reads_dest =
      List.exists
        (fun (_, o) -> match o with I.Var v -> List.mem (vreg_of env v) dests | _ -> false)
        pairs
    in
    if not reads_dest then
      List.iter
        (fun (d, o) ->
          match o with
          | I.ICst c -> emit env (M.Mmov (d, M.Imm c))
          | I.FCst f -> emit env (M.Mmov (d, M.Imm (Int64.bits_of_float f)))
          | I.Var v -> emit env (M.Mmov (d, M.Reg (vreg_of env v))))
        pairs
    else begin
      (* copy all sources to temps first, then temps to destinations *)
      let temps =
        List.map
          (fun (d, o) ->
            let cls = F.reg_class env.mf d in
            let t = F.fresh_vreg env.mf cls in
            (match o with
            | I.ICst c -> emit env (M.Mmov (t, M.Imm c))
            | I.FCst f -> emit env (M.Mmov (t, M.Imm (Int64.bits_of_float f)))
            | I.Var v -> emit env (M.Mmov (t, M.Reg (vreg_of env v))));
            (d, t))
          pairs
      in
      List.iter (fun (d, t) -> emit env (M.Mmov (d, M.Reg t))) temps
    end
  end

(* --- calls ------------------------------------------------------------- *)

let marshal_args env (args : I.operand list) (tys : I.ty list) =
  (* force non-immediate arguments into vregs first so the physical-register
     marshal movs form one contiguous region (the allocator treats that
     region as part of the call) *)
  let prepared =
    List.map
      (fun (o : I.operand) ->
        match o with
        | I.ICst c -> `Imm c
        | I.FCst f -> `Imm (Int64.bits_of_float f)
        | I.Var v -> `Reg (vreg_of env v))
      args
  in
  let gp = ref R.arg_gprs and fp = ref R.arg_fprs in
  let take cell what =
    match !cell with
    | r :: rest ->
      cell := rest;
      r
    | [] -> raise (Unsupported ("too many " ^ what ^ " arguments"))
  in
  List.iter2
    (fun p ty ->
      let dst = match ty with I.I64 -> take gp "integer" | I.F64 -> take fp "float" in
      match p with
      | `Imm c -> emit env (M.Mmov (dst, M.Imm c))
      | `Reg r -> emit env (M.Mmov (dst, M.Reg r)))
    prepared tys

(* --- instruction lowering ---------------------------------------------- *)

let lower_instr env (modul : I.modul) (i : I.instr) =
  match i with
  | I.Ibinop (d, op, a, b) ->
    emit env (M.Mbin (op, vreg_of env d, reg_of env a, opd_of env b))
  | I.Fbinop (d, op, a, b) ->
    emit env (M.Mfbin (op, vreg_of env d, reg_of env a, reg_of env b))
  | I.Icmp (d, op, a, b) ->
    if not (Hashtbl.mem env.fused_cmps d) then begin
      emit env (M.Mcmp (reg_of env a, opd_of env b));
      emit env (M.Msetcc (cc_of_icmp op, vreg_of env d))
    end
  | I.Fcmp (d, op, a, b) ->
    if not (Hashtbl.mem env.fused_cmps d) then begin
      emit env (M.Mfcmp (reg_of env a, reg_of env b));
      emit env (M.Msetcc (cc_of_fcmp op, vreg_of env d))
    end
  | I.Funop (d, op, a) -> emit env (M.Mfun (op, vreg_of env d, reg_of env a))
  | I.Cast (d, op, a) -> emit env (M.Mcvt (op, vreg_of env d, reg_of env a))
  | I.Select (d, _, c, a, b) ->
    (* branch diamond; SX64 has no cmov *)
    let dst = vreg_of env d in
    let lfalse = F.fresh_label env.mf in
    let lend = F.fresh_label env.mf in
    emit env (M.Mcmp (reg_of env c, M.Imm 0L));
    emit env (M.Mjcc (M.CEq, lfalse));
    emit env (M.Mmov (dst, M.Reg (reg_of env a)));
    emit env (M.Mjmp lend);
    let bfalse = F.add_block env.mf lfalse in
    env.cur <- bfalse;
    emit env (M.Mmov (dst, M.Reg (reg_of env b)));
    emit env (M.Mjmp lend);
    let bend = F.add_block env.mf lend in
    env.cur <- bend
  | I.Load (d, _, addr) ->
    let base, idx, off = lower_addr env addr in
    (match idx with
    | None -> emit env (M.Mload (vreg_of env d, base, off))
    | Some ix -> emit env (M.Mloadidx (vreg_of env d, base, ix, off)))
  | I.Store (_, v, addr) ->
    let src = reg_of env v in
    let base, idx, off = lower_addr env addr in
    (match idx with
    | None -> emit env (M.Mstore (src, base, off))
    | Some ix -> emit env (M.Mstoreidx (src, base, ix, off)))
  | I.Alloca (d, _) ->
    let off = Hashtbl.find env.alloca_slots d in
    emit env (M.Mlea (vreg_of env d, R.rbp, None, off))
  | I.Gep (d, base, idx) ->
    if not (Hashtbl.mem env.folded_geps d) then begin
      match idx with
      | I.ICst c -> emit env (M.Mlea (vreg_of env d, reg_of env base, None, 8 * Int64.to_int c))
      | other -> emit env (M.Mlea (vreg_of env d, reg_of env base, Some (reg_of env other), 0))
    end
  | I.Gaddr (d, g) -> emit env (M.Mmov (vreg_of env d, M.Imm (Int64.of_int (env.global_addr g))))
  | I.Call (d, rty, name, args) -> (
    let is_ext = Refine_ir.Externs.is_extern name in
    let tys =
      if is_ext then fst (Option.get (Refine_ir.Externs.signature name))
      else
        match List.find_opt (fun (f : I.func) -> f.fname = name) modul.funcs with
        | Some callee -> List.map snd callee.params
        | None -> raise (Unsupported ("call to unknown function " ^ name))
    in
    marshal_args env args tys;
    emit env (if is_ext then M.Mcallext name else M.Mcall name);
    match d with
    | Some dv ->
      let ret_phys = match rty with I.I64 -> R.ret_gpr | I.F64 -> R.ret_fpr in
      emit env (M.Mmov (vreg_of env dv, M.Reg ret_phys))
    | None -> ())

let lower_term env (fn : I.func) (b : I.block) =
  let copies_then_jump target =
    let tblk = I.find_block fn target in
    (* multi-pred targets receive their copies here (the predecessor has a
       single successor after critical-edge splitting) *)
    phi_copies env tblk b.lbl;
    emit env (M.Mjmp target)
  in
  match b.term with
  | I.Br target -> copies_then_jump target
  | I.Cbr (_, t, e) when t = e -> copies_then_jump t
  | I.Cbr (c, t, e) -> (
    (* both successors are phi-free or single-pred after splitting; their
       copies are emitted at the top of the successor blocks *)
    let fused =
      match c with
      | I.Var v when Hashtbl.mem env.fused_cmps v ->
        List.find_map
          (fun i ->
            match i with
            | I.Icmp (d, op, a, bb) when d = v -> Some (`I (op, a, bb))
            | I.Fcmp (d, op, a, bb) when d = v -> Some (`F (op, a, bb))
            | _ -> None)
          b.body
      | _ -> None
    in
    match fused with
    | Some (`I (op, a, bb)) ->
      emit env (M.Mcmp (reg_of env a, opd_of env bb));
      emit env (M.Mjcc (cc_of_icmp op, t));
      emit env (M.Mjmp e)
    | Some (`F (op, a, bb)) ->
      emit env (M.Mfcmp (reg_of env a, reg_of env bb));
      emit env (M.Mjcc (cc_of_fcmp op, t));
      emit env (M.Mjmp e)
    | None ->
      emit env (M.Mcmp (reg_of env c, M.Imm 0L));
      emit env (M.Mjcc (M.CNe, t));
      emit env (M.Mjmp e))
  | I.Ret value ->
    (match value with
    | Some o ->
      let phys =
        match I.operand_ty env.irf o with I.I64 -> R.ret_gpr | I.F64 -> R.ret_fpr
      in
      (match o with
      | I.ICst c -> emit env (M.Mmov (phys, M.Imm c))
      | I.FCst f -> emit env (M.Mmov (phys, M.Imm (Int64.bits_of_float f)))
      | I.Var v -> emit env (M.Mmov (phys, M.Reg (vreg_of env v))))
    | None -> ());
    emit env M.Mret
  | I.Unreachable -> emit env M.Mhalt

(* A block with a single predecessor receives its phi copies at its own
   top (the predecessor may have several successors). *)
let entry_phi_copies env (cfg : Refine_ir.Cfg.t) (b : I.block) =
  if b.phis <> [] then
    match Refine_ir.Cfg.predecessors cfg b.lbl with
    | [ single ] -> phi_copies env b single
    | preds ->
      (* multi-pred blocks get copies from predecessors; verify the
         invariant that those predecessors have one successor each *)
      List.iter
        (fun p ->
          let pb = I.find_block env.irf p in
          if List.length (I.term_succs pb.term) > 1 then
            raise (Unsupported "critical edge survived splitting"))
        preds

(* When copies are emitted in predecessors, suppress them at block top. *)
let select_func ~global_addr (modul : I.modul) (fn : I.func) : F.t =
  Splitcrit.run fn;
  let cfg = Refine_ir.Cfg.build fn in
  let mf = F.create fn.fname in
  (* reserve MIR labels matching IR labels *)
  List.iter (fun (b : I.block) -> if b.lbl >= mf.F.next_label then mf.F.next_label <- b.lbl + 1)
    fn.blocks;
  let env =
    {
      irf = fn;
      mf;
      vregs = Hashtbl.create 64;
      uses = count_uses fn;
      folded_geps = Hashtbl.create 16;
      fused_cmps = Hashtbl.create 16;
      alloca_slots = Hashtbl.create 16;
      global_addr;
      cur = F.add_block mf (I.entry_block fn).lbl;
    }
  in
  analyse env;
  (* frame slots for allocas *)
  List.iter
    (fun (b : I.block) ->
      List.iter
        (fun i ->
          match i with
          | I.Alloca (d, n) -> Hashtbl.replace env.alloca_slots d (F.alloc_slot mf n)
          | _ -> ())
        b.body)
    fn.blocks;
  (* parameters: copy ABI registers into vregs at entry *)
  let gp = ref R.arg_gprs and fp = ref R.arg_fprs in
  List.iter
    (fun (v, ty) ->
      let cell = match ty with I.I64 -> gp | I.F64 -> fp in
      match !cell with
      | r :: rest ->
        cell := rest;
        emit env (M.Mmov (vreg_of env v, M.Reg r))
      | [] -> raise (Unsupported "too many parameters"))
    fn.params;
  (* lower blocks in IR order; entry block instructions continue in cur *)
  let first = ref true in
  List.iter
    (fun (b : I.block) ->
      if !first then first := false
      else env.cur <- F.add_block mf b.lbl;
      entry_phi_copies env cfg b;
      List.iter (lower_instr env modul) b.body;
      lower_term env fn b)
    fn.blocks;
  mf
