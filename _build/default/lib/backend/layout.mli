(** Final code emission: concatenates every function's blocks in layout
    order and resolves labels/calls to absolute code indices — the paper's
    "Assembly / Object Emitter" stage. *)

type image = {
  code : Refine_mir.Minstr.t array;  (** jump targets are absolute indices *)
  entry : int;  (** address of main's first instruction *)
  func_of_pc : string array;  (** owning function, per instruction *)
  func_starts : (string * int) list;
  globals : Refine_ir.Ir.global list;
  global_addr : string -> int;
  heap_base : int;
}

exception Layout_error of string

val build : globals:Refine_ir.Ir.global list -> Refine_mir.Mfunc.t list -> image
(** Raises {!Layout_error} on unresolved labels, unknown callees or a
    missing [main]. *)
