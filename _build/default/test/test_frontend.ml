(* MinC front-end tests: lexer, parser, type checker and IR generation. *)

module L = Refine_minic.Lexer
module Pr = Refine_minic.Parser
module Tc = Refine_minic.Typecheck
module F = Refine_minic.Frontend
module I = Refine_ir.Ir

(* ---- lexer ---- *)

let toks src = List.map (fun l -> l.L.tok) (L.tokenize src)

let test_lexer_numbers () =
  Alcotest.(check bool) "ints" true
    (toks "42 0 0x1F" = [ L.INT 42L; L.INT 0L; L.INT 31L; L.EOF ]);
  Alcotest.(check bool) "floats" true
    (toks "1.5 2e3 0.25e-2" = [ L.FLOAT 1.5; L.FLOAT 2000.0; L.FLOAT 0.0025; L.EOF ])

let test_lexer_idents_keywords () =
  Alcotest.(check bool) "mix" true
    (toks "int foo while_x" = [ L.KW "int"; L.IDENT "foo"; L.IDENT "while_x"; L.EOF ])

let test_lexer_operators () =
  Alcotest.(check bool) "multi-char" true
    (toks "<= == && >> |" =
       [ L.PUNCT "<="; L.PUNCT "=="; L.PUNCT "&&"; L.PUNCT ">>"; L.PUNCT "|"; L.EOF ])

let test_lexer_comments () =
  Alcotest.(check bool) "line+block" true
    (toks "a // comment\n /* multi\n line */ b" = [ L.IDENT "a"; L.IDENT "b"; L.EOF ])

let test_lexer_strings () =
  Alcotest.(check bool) "escapes" true
    (toks {|"a\nb\"c"|} = [ L.STRING "a\nb\"c"; L.EOF ])

let test_lexer_line_numbers () =
  let l = L.tokenize "a\nb\n\nc" in
  let lines = List.filter_map (fun t -> match t.L.tok with L.IDENT _ -> Some t.L.line | _ -> None) l in
  Alcotest.(check (list int)) "lines" [ 1; 2; 4 ] lines

let test_lexer_errors () =
  Alcotest.(check bool) "bad char" true
    (try ignore (L.tokenize "a $ b"); false with L.Error _ -> true);
  Alcotest.(check bool) "unterminated string" true
    (try ignore (L.tokenize "\"abc"); false with L.Error _ -> true);
  Alcotest.(check bool) "unterminated comment" true
    (try ignore (L.tokenize "/* abc"); false with L.Error _ -> true)

(* ---- parser ---- *)

let parse src = Pr.parse_program src

let test_parser_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  let p = parse "int main() { int x = 1 + 2 * 3; return x; }" in
  let open Refine_minic.Ast in
  match p.pfuncs with
  | [ { fbody = [ { sdesc = Sdecl (_, _, Some e); _ }; _ ]; _ } ] -> (
    match e.edesc with
    | Ebin (Badd, { edesc = Eint 1L; _ }, { edesc = Ebin (Bmul, _, _); _ }) -> ()
    | _ -> Alcotest.fail "wrong precedence tree")
  | _ -> Alcotest.fail "unexpected program shape"

let test_parser_logical_precedence () =
  (* a || b && c parses as a || (b && c) *)
  let p = parse "int main() { int x = 1 || 0 && 0; return x; }" in
  let open Refine_minic.Ast in
  match p.pfuncs with
  | [ { fbody = [ { sdesc = Sdecl (_, _, Some { edesc = Ebin (Bor, _, _); _ }); _ }; _ ]; _ } ]
    -> ()
  | _ -> Alcotest.fail "|| should be outermost"

let test_parser_statements () =
  let src =
    {|
global int g = 3;
global float arr[8];
void f(int a, float[] xs) {
  int i;
  for (i = 0; i < a; i = i + 1) {
    if (i % 2 == 0) { xs[i] = 1.0; } else { continue; }
  }
  while (i > 0) { i = i - 1; break; }
  return;
}
int main() { f(4, arr); return 0; }
|}
  in
  let p = parse src in
  Alcotest.(check int) "globals" 2 (List.length p.Refine_minic.Ast.pglobals);
  Alcotest.(check int) "funcs" 2 (List.length p.Refine_minic.Ast.pfuncs)

let test_parser_errors () =
  List.iter
    (fun src ->
      Alcotest.(check bool) ("rejects: " ^ src) true
        (try ignore (parse src); false with Pr.Error _ -> true))
    [
      "int main() { return 0 }";
      "int main( { return 0; }";
      "int main() { int x = ; }";
      "int main() { if 1 { } }";
      "garbage";
    ]

(* ---- typecheck ---- *)

let typecheck_ok src =
  try Tc.check_program (parse src); true with Tc.Error _ -> false

let test_typecheck_accepts () =
  Alcotest.(check bool) "valid program" true
    (typecheck_ok
       {|
global float t;
float addmul(float a, float b) { return a * b + t; }
int main() {
  float[] h = alloc_float(4);
  h[0] = addmul(2.0, 3.0);
  print_float(h[0]);
  return 0;
}
|})

let test_typecheck_rejects () =
  List.iter
    (fun (what, src) ->
      Alcotest.(check bool) ("rejects " ^ what) false (typecheck_ok src))
    [
      ("int+float mix", "int main() { int x = 1 + 1.0; return 0; }");
      ("float condition", "int main() { if (1.0) { } return 0; }");
      ("undeclared var", "int main() { return y; }");
      ("redeclaration", "int main() { int x; int x; return 0; }");
      ("wrong arity", "int f(int a) { return a; } int main() { return f(1, 2); }");
      ("wrong arg type", "int f(int a) { return a; } int main() { return f(1.0); }");
      ("void as value", "void f() { return; } int main() { int x = f(); return 0; }");
      ("break outside loop", "int main() { break; return 0; }");
      ("missing main", "int f() { return 0; }");
      ("wrong main sig", "int main(int x) { return x; }");
      ("index non-array", "int main() { int x; x[0] = 1; return 0; }");
      ("float index", "int main() { int a[4]; a[1.0] = 1; return 0; }");
      ("mod on float", "int main() { float x = 1.5; float y = x % 2.0; return 0; }");
      ("shift on float", "int main() { float x = 1.5 << 2.0; return 0; }");
      ("logical on float", "int main() { if (1.0 && 2.0) { } return 0; }");
      ("string outside print_str", "int main() { print_int(\"x\"); return 0; }");
      ("return type mismatch", "float f() { return 1; } int main() { return 0; }");
      ("builtin shadowing", "int sqrt(int x) { return x; } int main() { return 0; }");
    ]

(* ---- irgen / full frontend ---- *)

let test_frontend_verifies () =
  let m =
    F.compile
      {|
global int n = 4;
int fact(int k) { if (k <= 1) { return 1; } return k * fact(k - 1); }
int main() { print_int(fact(n)); return 0; }
|}
  in
  Alcotest.(check int) "two functions" 2 (List.length m.I.funcs);
  let r = Refine_ir.Interp.run m in
  Alcotest.(check string) "24" "24\n" r.Refine_ir.Interp.output

let test_frontend_string_globals () =
  let m = F.compile {|int main() { print_str("hi"); print_str("hi"); print_str("yo"); return 0; }|} in
  (* identical literals are deduplicated *)
  let strs = List.filter (fun g -> String.length g.I.gname > 4 && String.sub g.I.gname 0 4 = "str.") m.I.globals in
  Alcotest.(check int) "two string globals" 2 (List.length strs);
  let r = Refine_ir.Interp.run m in
  Alcotest.(check string) "output" "hihiyo" r.Refine_ir.Interp.output

let test_frontend_short_circuit () =
  (* the right operand must not evaluate when the left decides: division by
     zero would trap *)
  let m =
    F.compile
      {|
int main() {
  int zero = 0;
  if (0 && 1 / zero) { print_int(1); } else { print_int(2); }
  if (1 || 1 / zero) { print_int(3); }
  return 0;
}
|}
  in
  let r = Refine_ir.Interp.run m in
  Alcotest.(check string) "2 then 3" "2\n3\n" r.Refine_ir.Interp.output

let test_frontend_compile_error_message () =
  Alcotest.(check bool) "error carries line" true
    (try ignore (F.compile "int main() {\n  return y;\n}"); false
     with F.Compile_error msg ->
       (* mentions line 2 *)
       let contains hay needle =
         let nh = String.length hay and nn = String.length needle in
         let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
         go 0
       in
       contains msg "line 2")

let tests =
  [
    Alcotest.test_case "lexer numbers" `Quick test_lexer_numbers;
    Alcotest.test_case "lexer idents/keywords" `Quick test_lexer_idents_keywords;
    Alcotest.test_case "lexer operators" `Quick test_lexer_operators;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer strings" `Quick test_lexer_strings;
    Alcotest.test_case "lexer line numbers" `Quick test_lexer_line_numbers;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser logical precedence" `Quick test_parser_logical_precedence;
    Alcotest.test_case "parser statements" `Quick test_parser_statements;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "typecheck accepts" `Quick test_typecheck_accepts;
    Alcotest.test_case "typecheck rejects" `Quick test_typecheck_rejects;
    Alcotest.test_case "frontend verifies" `Quick test_frontend_verifies;
    Alcotest.test_case "string global dedup" `Quick test_frontend_string_globals;
    Alcotest.test_case "short circuit" `Quick test_frontend_short_circuit;
    Alcotest.test_case "compile error has line" `Quick test_frontend_compile_error_message;
  ]
