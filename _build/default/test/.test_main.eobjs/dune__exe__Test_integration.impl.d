test/test_integration.ml: Alcotest List Printf Refine_backend Refine_core Refine_ir Refine_machine Refine_minic Refine_support
