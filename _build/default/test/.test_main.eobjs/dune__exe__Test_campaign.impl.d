test/test_campaign.ml: Alcotest List Refine_campaign Refine_core String
