test/test_backend.ml: Alcotest Array List Printf Refine_backend Refine_core Refine_ir Refine_machine Refine_minic Refine_mir String
