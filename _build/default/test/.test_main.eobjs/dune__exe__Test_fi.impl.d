test/test_fi.ml: Alcotest Hashtbl Int64 List Printf Refine_backend Refine_core Refine_ir Refine_machine Refine_minic Refine_mir Refine_support
