test/test_ir.ml: Alcotest Float Int64 List Refine_ir String
