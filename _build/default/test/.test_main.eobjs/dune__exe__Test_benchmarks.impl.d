test/test_benchmarks.ml: Alcotest Int64 List Printf Refine_backend Refine_bench_progs Refine_ir Refine_machine Refine_minic String
