test/test_frontend.ml: Alcotest List Refine_ir Refine_minic String
