test/test_machine.ml: Alcotest Array Float Int64 List Refine_backend Refine_ir Refine_machine Refine_mir
