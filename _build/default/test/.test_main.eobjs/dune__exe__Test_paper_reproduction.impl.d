test/test_paper_reproduction.ml: Alcotest List Printf Refine_campaign Refine_stats
