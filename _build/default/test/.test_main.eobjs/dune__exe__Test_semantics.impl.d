test/test_semantics.ml: Alcotest Buffer Format List Printf Refine_backend Refine_core Refine_ir Refine_machine Refine_minic Refine_support String
