test/test_misc.ml: Alcotest List Printf Refine_ir Refine_minic Refine_mir String
