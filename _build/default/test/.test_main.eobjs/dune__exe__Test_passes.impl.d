test/test_passes.ml: Alcotest List Refine_bench_progs Refine_ir Refine_minic
