test/test_support.ml: Alcotest Array Int64 List Printf QCheck QCheck_alcotest Refine_support String
