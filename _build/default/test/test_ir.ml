(* IR core tests: builder, printer, verifier, CFG analyses and the
   reference interpreter. *)

module I = Refine_ir.Ir
module B = Refine_ir.Builder
module V = Refine_ir.Verify
module C = Refine_ir.Cfg
module P = Refine_ir.Printer
module In = Refine_ir.Interp

(* tiny module builder: one function [main], no globals *)
let mk_main build =
  let b, _ = B.create ~name:"main" ~params:[] ~ret:(Some I.I64) in
  build b;
  { I.globals = []; funcs = [ B.func b ] }

let test_builder_simple () =
  let m =
    mk_main (fun b ->
        let x = B.ibinop b I.Add (I.ICst 2L) (I.ICst 3L) in
        let y = B.ibinop b I.Mul x (I.ICst 10L) in
        B.terminate b (I.Ret (Some y)))
  in
  V.check_module m;
  let r = In.run m in
  Alcotest.(check int) "50" 50 r.In.exit_code

let test_builder_rejects_emit_after_term () =
  let b, _ = B.create ~name:"main" ~params:[] ~ret:(Some I.I64) in
  B.terminate b (I.Ret (Some (I.ICst 0L)));
  Alcotest.(check bool) "emit after terminator fails" true
    (try ignore (B.ibinop b I.Add (I.ICst 1L) (I.ICst 1L)); false
     with Invalid_argument _ -> true)

let test_printer_stable () =
  let m =
    mk_main (fun b ->
        let x = B.fbinop b I.Fadd (I.FCst 1.0) (I.FCst 2.5) in
        let i = B.cast b I.Fptosi x in
        B.terminate b (I.Ret (Some i)))
  in
  let s = P.string_of_func (List.hd m.I.funcs) in
  Alcotest.(check bool) "mentions fadd" true
    (let contains hay needle =
       let nh = String.length hay and nn = String.length needle in
       let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
       go 0
     in
     contains s "fadd" && contains s "fptosi" && contains s "ret")

(* --- verifier rejections --- *)

let expect_invalid what m =
  Alcotest.(check bool) what true (try V.check_module m; false with V.Invalid _ -> true)

let test_verify_double_def () =
  let b, _ = B.create ~name:"main" ~params:[] ~ret:(Some I.I64) in
  let x = match B.ibinop b I.Add (I.ICst 1L) (I.ICst 1L) with I.Var v -> v | _ -> assert false in
  B.emit b (I.Ibinop (x, I.Add, I.ICst 2L, I.ICst 2L));
  B.terminate b (I.Ret (Some (I.Var x)));
  expect_invalid "double definition" { I.globals = []; funcs = [ B.func b ] }

let test_verify_type_error () =
  let b, _ = B.create ~name:"main" ~params:[] ~ret:(Some I.I64) in
  let d = B.fresh b I.I64 in
  B.emit b (I.Fbinop (d, I.Fadd, I.FCst 1.0, I.FCst 2.0)); (* f64 result into i64 value *)
  B.terminate b (I.Ret (Some (I.Var d)));
  expect_invalid "fbinop into i64 dst" { I.globals = []; funcs = [ B.func b ] }

let test_verify_use_before_def () =
  let b, _ = B.create ~name:"main" ~params:[] ~ret:(Some I.I64) in
  let d = B.fresh b I.I64 in
  let e = B.fresh b I.I64 in
  B.emit b (I.Ibinop (d, I.Add, I.Var e, I.ICst 1L)); (* e used before defined *)
  B.emit b (I.Ibinop (e, I.Add, I.ICst 1L, I.ICst 1L));
  B.terminate b (I.Ret (Some (I.Var d)));
  expect_invalid "use before def" { I.globals = []; funcs = [ B.func b ] }

let test_verify_branch_target () =
  let b, _ = B.create ~name:"main" ~params:[] ~ret:(Some I.I64) in
  B.terminate b (I.Br 99);
  expect_invalid "missing label" { I.globals = []; funcs = [ B.func b ] }

let test_verify_unknown_callee () =
  let b, _ = B.create ~name:"main" ~params:[] ~ret:(Some I.I64) in
  ignore (B.call b (Some I.I64) "nonexistent" []);
  B.terminate b (I.Ret (Some (I.ICst 0L)));
  expect_invalid "unknown callee" { I.globals = []; funcs = [ B.func b ] }

let test_verify_gaddr_unknown () =
  let b, _ = B.create ~name:"main" ~params:[] ~ret:(Some I.I64) in
  ignore (B.gaddr b "nope");
  B.terminate b (I.Ret (Some (I.ICst 0L)));
  expect_invalid "unknown global" { I.globals = []; funcs = [ B.func b ] }

let test_verify_dominance () =
  (* def in one arm of a diamond, use after the join: not dominated *)
  let b, _ = B.create ~name:"main" ~params:[] ~ret:(Some I.I64) in
  let l1 = B.block b in
  let l2 = B.block b in
  let l3 = B.block b in
  B.terminate b (I.Cbr (I.ICst 1L, l1, l2));
  B.switch_to b l1;
  let x = B.ibinop b I.Add (I.ICst 1L) (I.ICst 2L) in
  B.terminate b (I.Br l3);
  B.switch_to b l2;
  B.terminate b (I.Br l3);
  B.switch_to b l3;
  B.terminate b (I.Ret (Some x));
  expect_invalid "non-dominating def" { I.globals = []; funcs = [ B.func b ] }

(* --- CFG analyses --- *)

(* diamond with a loop back edge:
   0 -> 1 -> 2 -> 4 ; 1 -> 3 -> 4 ; 4 -> 1 (back edge) and 4 -> 5 (exit) *)
let diamond_loop () =
  let b, _ = B.create ~name:"main" ~params:[] ~ret:(Some I.I64) in
  let l1 = B.block b and l2 = B.block b and l3 = B.block b in
  let l4 = B.block b and l5 = B.block b in
  B.terminate b (I.Br l1);
  B.switch_to b l1;
  B.terminate b (I.Cbr (I.ICst 1L, l2, l3));
  B.switch_to b l2;
  B.terminate b (I.Br l4);
  B.switch_to b l3;
  B.terminate b (I.Br l4);
  B.switch_to b l4;
  B.terminate b (I.Cbr (I.ICst 0L, l1, l5));
  B.switch_to b l5;
  B.terminate b (I.Ret (Some (I.ICst 0L)));
  (B.func b, l1, l2, l3, l4, l5)

let test_cfg_dominators () =
  let fn, l1, l2, l3, l4, l5 = diamond_loop () in
  let cfg = C.build fn in
  Alcotest.(check bool) "entry dominates all" true (C.dominates cfg 0 l5);
  Alcotest.(check bool) "l1 dominates l4" true (C.dominates cfg l1 l4);
  Alcotest.(check bool) "l2 does not dominate l4" false (C.dominates cfg l2 l4);
  Alcotest.(check (option int)) "idom of l4 is l1" (Some l1) (C.idom cfg l4);
  Alcotest.(check (option int)) "idom of l2 is l1" (Some l1) (C.idom cfg l2);
  ignore l3

let test_cfg_frontiers () =
  let fn, l1, l2, l3, l4, _ = diamond_loop () in
  let cfg = C.build fn in
  let df = C.dominance_frontiers cfg in
  Alcotest.(check bool) "l2's frontier contains l4" true (List.mem l4 (df l2));
  Alcotest.(check bool) "l3's frontier contains l4" true (List.mem l4 (df l3));
  (* l4 -> l1 back edge puts l1 in l4's (and l1's own) frontier *)
  Alcotest.(check bool) "l4's frontier contains l1" true (List.mem l1 (df l4))

let test_cfg_loops () =
  let fn, l1, _, _, l4, _ = diamond_loop () in
  let cfg = C.build fn in
  let loops = C.natural_loops cfg in
  Alcotest.(check int) "one loop" 1 (List.length loops);
  let lp = List.hd loops in
  Alcotest.(check int) "header is l1" l1 lp.C.header;
  Alcotest.(check bool) "body contains l4" true (List.mem l4 lp.C.body);
  Alcotest.(check bool) "body excludes entry" false (List.mem 0 lp.C.body)

let test_cfg_unreachable () =
  let b, _ = B.create ~name:"main" ~params:[] ~ret:(Some I.I64) in
  let dead = B.block b in
  B.terminate b (I.Ret (Some (I.ICst 0L)));
  B.switch_to b dead;
  B.terminate b (I.Ret (Some (I.ICst 1L)));
  let cfg = C.build (B.func b) in
  Alcotest.(check bool) "dead unreachable" false (C.reachable cfg dead)

(* --- interpreter semantics --- *)

let test_interp_arith_wrap () =
  Alcotest.(check int64) "wrap add" Int64.min_int
    (In.eval_ibinop I.Add Int64.max_int 1L);
  Alcotest.(check int64) "min/-1" Int64.min_int (In.eval_ibinop I.Div Int64.min_int (-1L));
  Alcotest.(check int64) "rem min/-1" 0L (In.eval_ibinop I.Rem Int64.min_int (-1L));
  Alcotest.(check int64) "shift masks to 6 bits" 2L (In.eval_ibinop I.Shl 1L 65L);
  Alcotest.(check int64) "ashr sign extends" (-1L) (In.eval_ibinop I.Ashr (-4L) 2L);
  Alcotest.(check int64) "lshr zero fills" 1L
    (In.eval_ibinop I.Lshr Int64.min_int 63L)

let test_interp_div_zero_traps () =
  Alcotest.(check bool) "div0" true
    (try ignore (In.eval_ibinop I.Div 1L 0L); false with In.Trap _ -> true)

let test_interp_fcmp_nan () =
  let nan = Float.nan in
  Alcotest.(check int64) "nan != nan" 1L (In.eval_fcmp I.Fne nan nan);
  Alcotest.(check int64) "nan == nan is false" 0L (In.eval_fcmp I.Feq nan nan);
  Alcotest.(check int64) "nan < x is false" 0L (In.eval_fcmp I.Flt nan 1.0)

let test_interp_fptosi () =
  Alcotest.(check int64) "truncates toward zero" 3L (In.fptosi 3.9);
  Alcotest.(check int64) "negative truncates" (-3L) (In.fptosi (-3.9));
  Alcotest.(check int64) "nan -> 0" 0L (In.fptosi Float.nan);
  Alcotest.(check int64) "+inf saturates" Int64.max_int (In.fptosi Float.infinity);
  Alcotest.(check int64) "-inf saturates" Int64.min_int (In.fptosi Float.neg_infinity)

let test_interp_memory_trap () =
  let m =
    mk_main (fun b ->
        let v = B.load b I.I64 (I.ICst 0L) in
        B.terminate b (I.Ret (Some v)))
  in
  Alcotest.(check bool) "null deref traps" true
    (try ignore (In.run m); false with In.Trap _ -> true)

let test_interp_fuel () =
  let b, _ = B.create ~name:"main" ~params:[] ~ret:(Some I.I64) in
  let l = B.block b in
  B.terminate b (I.Br l);
  B.switch_to b l;
  B.terminate b (I.Br l);
  let m = { I.globals = []; funcs = [ B.func b ] } in
  Alcotest.(check bool) "fuel exhausted" true
    (try ignore (In.run ~fuel:1000 m); false with In.Trap _ -> true)

let test_interp_phi_parallel () =
  (* swap phis: a,b = b,a each iteration; after 3 iterations of (1,2):
     (2,1) -> (1,2) -> (2,1); requires parallel phi evaluation *)
  let b, _ = B.create ~name:"main" ~params:[] ~ret:(Some I.I64) in
  let l = B.block b and e = B.block b in
  let fn = B.func b in
  let a_phi = B.fresh b I.I64 and b_phi = B.fresh b I.I64 and i_phi = B.fresh b I.I64 in
  B.terminate b (I.Br l);
  B.switch_to b l;
  let blk = I.find_block fn l in
  blk.I.phis <-
    [
      { I.pdst = a_phi; pty = I.I64; incoming = [ (0, I.ICst 1L); (l, I.Var b_phi) ] };
      { I.pdst = b_phi; pty = I.I64; incoming = [ (0, I.ICst 2L); (l, I.Var a_phi) ] };
      { I.pdst = i_phi; pty = I.I64; incoming = [ (0, I.ICst 0L); (l, I.ICst 0L) ] };
    ];
  let i' = B.ibinop b I.Add (I.Var i_phi) (I.ICst 1L) in
  (match List.nth blk.I.phis 2 with
  | p -> p.I.incoming <- [ (0, I.ICst 0L); (l, i') ]);
  let c = B.icmp b I.Ilt i' (I.ICst 3L) in
  B.terminate b (I.Cbr (c, l, e));
  B.switch_to b e;
  let r = B.ibinop b I.Mul (I.Var a_phi) (I.ICst 10L) in
  let r = B.ibinop b I.Add r (I.Var b_phi) in
  B.terminate b (I.Ret (Some r));
  let m = { I.globals = []; funcs = [ fn ] } in
  V.check_module m;
  let res = In.run m in
  (* three loop entries: (1,2) -> (2,1) -> (1,2); exits with a=1, b=2 *)
  Alcotest.(check int) "swap sequence" 12 res.In.exit_code

let tests =
  [
    Alcotest.test_case "builder simple" `Quick test_builder_simple;
    Alcotest.test_case "builder emit-after-term" `Quick test_builder_rejects_emit_after_term;
    Alcotest.test_case "printer stable" `Quick test_printer_stable;
    Alcotest.test_case "verify double def" `Quick test_verify_double_def;
    Alcotest.test_case "verify type error" `Quick test_verify_type_error;
    Alcotest.test_case "verify use before def" `Quick test_verify_use_before_def;
    Alcotest.test_case "verify branch target" `Quick test_verify_branch_target;
    Alcotest.test_case "verify unknown callee" `Quick test_verify_unknown_callee;
    Alcotest.test_case "verify unknown global" `Quick test_verify_gaddr_unknown;
    Alcotest.test_case "verify dominance" `Quick test_verify_dominance;
    Alcotest.test_case "cfg dominators" `Quick test_cfg_dominators;
    Alcotest.test_case "cfg dominance frontiers" `Quick test_cfg_frontiers;
    Alcotest.test_case "cfg natural loops" `Quick test_cfg_loops;
    Alcotest.test_case "cfg unreachable" `Quick test_cfg_unreachable;
    Alcotest.test_case "interp integer semantics" `Quick test_interp_arith_wrap;
    Alcotest.test_case "interp div-by-zero" `Quick test_interp_div_zero_traps;
    Alcotest.test_case "interp NaN compares" `Quick test_interp_fcmp_nan;
    Alcotest.test_case "interp fptosi" `Quick test_interp_fptosi;
    Alcotest.test_case "interp memory trap" `Quick test_interp_memory_trap;
    Alcotest.test_case "interp fuel" `Quick test_interp_fuel;
    Alcotest.test_case "interp parallel phis" `Quick test_interp_phi_parallel;
  ]
