(* Statistical machinery tests: special functions against known values,
   chi-squared critical values, the paper's own sample-size and Table 4/5
   numbers. *)

module S = Refine_stats.Special
module C = Refine_stats.Chi2
module N = Refine_stats.Samplesize
module Ci = Refine_stats.Ci

let close ?(eps = 1e-6) name expected actual =
  Alcotest.(check (float eps)) name expected actual

let test_lgamma () =
  (* Gamma(5) = 24, Gamma(0.5) = sqrt(pi) *)
  close "lgamma 5" (log 24.0) (S.lgamma 5.0);
  close "lgamma 0.5" (0.5 *. log Float.pi) (S.lgamma 0.5);
  close "lgamma 1" 0.0 (S.lgamma 1.0);
  close "lgamma 10" (log 362880.0) (S.lgamma 10.0)

let test_gamma_pq_complementary () =
  List.iter
    (fun (a, x) -> close ~eps:1e-9 "P + Q = 1" 1.0 (S.gamma_p a x +. S.gamma_q a x))
    [ (0.5, 0.3); (1.0, 1.0); (2.5, 7.0); (10.0, 3.0); (3.0, 30.0) ]

let test_gamma_p_exponential () =
  (* P(1, x) = 1 - e^-x *)
  List.iter
    (fun x -> close ~eps:1e-9 "P(1,x)" (1.0 -. exp (-.x)) (S.gamma_p 1.0 x))
    [ 0.1; 0.5; 1.0; 2.0; 5.0 ]

let test_erf () =
  close ~eps:1e-6 "erf 1" 0.8427007929497149 (S.erf 1.0);
  close ~eps:1e-6 "erf -1" (-0.8427007929497149) (S.erf (-1.0));
  close "erf 0" 0.0 (S.erf 0.0)

let test_chi2_critical_values () =
  (* standard table: chi2_{0.95, df} *)
  close ~eps:1e-3 "df=1" 0.95 (C.cdf ~df:1 3.841458820694124);
  close ~eps:1e-3 "df=2" 0.95 (C.cdf ~df:2 5.991464547107979);
  close ~eps:1e-3 "df=5" 0.95 (C.cdf ~df:5 11.070497693516351)

let test_chi2_survival () =
  close ~eps:1e-9 "sf(0)" 1.0 (C.survival ~df:2 0.0);
  close ~eps:1e-3 "sf at critical" 0.05 (C.survival ~df:2 5.991464547107979)

let test_chi2_paper_table4 () =
  (* the paper's Table 4: LLFI vs PINFI on AMG2013 must reject H0 *)
  let r = C.test [| [| 395; 168; 505 |]; [| 269; 70; 729 |] |] in
  Alcotest.(check bool) "significant" true r.C.significant;
  Alcotest.(check bool) "p ~ 0" true (r.C.p_value < 1e-10);
  Alcotest.(check int) "df = 2" 2 r.C.df

let test_chi2_paper_refine_rows () =
  (* REFINE vs PINFI from the paper's Table 6 counts must fail to reject *)
  List.iter
    (fun (name, refine, pinfi) ->
      let r = C.test [| refine; pinfi |] in
      Alcotest.(check bool) (name ^ " not significant") false r.C.significant)
    [
      ("AMG2013", [| 254; 87; 727 |], [| 269; 70; 729 |]);
      ("HPCCG", [| 159; 68; 841 |], [| 162; 77; 829 |]);
      ("lulesh", [| 76; 2; 990 |], [| 76; 4; 988 |]);
      ("SP", [| 45; 612; 411 |], [| 42; 626; 400 |]);
    ]

let test_chi2_zero_column_dropped () =
  (* CG in the paper: SOC = 0 for both tools; the test must still work *)
  let r = C.test [| [| 201; 0; 867 |]; [| 175; 0; 893 |] |] in
  Alcotest.(check int) "df reduced to 1" 1 r.C.df;
  Alcotest.(check bool) "runs" true (r.C.p_value >= 0.0 && r.C.p_value <= 1.0)

let test_chi2_identical_rows () =
  let r = C.test [| [| 10; 20; 30 |]; [| 10; 20; 30 |] |] in
  close ~eps:1e-9 "statistic 0" 0.0 r.C.statistic;
  Alcotest.(check bool) "not significant" false r.C.significant

let test_chi2_invalid () =
  Alcotest.(check bool) "single row rejected" true
    (try ignore (C.test [| [| 1; 2 |] |]); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative rejected" true
    (try ignore (C.test [| [| 1; -2 |]; [| 3; 4 |] |]); false
     with Invalid_argument _ -> true)

let test_samplesize_paper () =
  (* the paper's 1,068 samples at e=3%, 95% confidence *)
  Alcotest.(check int) "n = 1068" 1068 N.paper_sample_count

let test_samplesize_finite () =
  (* finite population: n <= infinite-population n, approaches it as N grows *)
  let inf = N.infinite ~margin:0.03 ~confidence:0.95 () in
  let small = N.finite ~population:2000 ~margin:0.03 ~confidence:0.95 () in
  let big = N.finite ~population:100_000_000 ~margin:0.03 ~confidence:0.95 () in
  Alcotest.(check bool) "finite smaller" true (small < inf);
  Alcotest.(check int) "large N converges" inf big

let test_samplesize_margin () =
  let m = N.margin_of ~samples:1068 ~confidence:0.95 () in
  Alcotest.(check bool) "margin <= 3%" true (m <= 0.03);
  Alcotest.(check bool) "margin > 2.9%" true (m > 0.029)

let test_ci_wald () =
  let iv = Ci.wald ~count:50 ~total:100 () in
  close ~eps:1e-9 "p" 0.5 iv.Ci.p;
  close ~eps:1e-3 "half width" 0.098 (iv.Ci.high -. iv.Ci.p)

let test_ci_wilson_extremes () =
  let iv = Ci.wilson ~count:0 ~total:100 () in
  close ~eps:1e-9 "p = 0" 0.0 iv.Ci.p;
  Alcotest.(check bool) "upper > 0" true (iv.Ci.high > 0.0);
  Alcotest.(check bool) "lower ~ 0" true (iv.Ci.low < 1e-9)

let test_ci_overlap () =
  let a = Ci.wald ~count:50 ~total:100 () in
  let b = Ci.wald ~count:55 ~total:100 () in
  let c = Ci.wald ~count:90 ~total:100 () in
  Alcotest.(check bool) "near proportions overlap" true (Ci.overlaps a b);
  Alcotest.(check bool) "far proportions do not" false (Ci.overlaps a c)

(* property: chi2 on two multinomial samples drawn from the SAME
   distribution should rarely reject; from very different ones, often *)
let prop_chi2_monotone_in_difference =
  QCheck.Test.make ~name:"chi2 statistic grows with row divergence" ~count:100
    QCheck.(int_range 1 140)
    (fun k ->
      let base = [| 300; 300; 300 |] in
      let shifted = [| 300 + k; 300 - k; 300 |] in
      let more_shifted = [| 300 + (2 * k); 300 - (2 * k); 300 |] in
      let r1 = C.test [| base; shifted |] in
      let r2 = C.test [| base; more_shifted |] in
      r2.C.statistic >= r1.C.statistic)

let tests =
  [
    Alcotest.test_case "lgamma known values" `Quick test_lgamma;
    Alcotest.test_case "gamma P+Q=1" `Quick test_gamma_pq_complementary;
    Alcotest.test_case "gamma P(1,x)" `Quick test_gamma_p_exponential;
    Alcotest.test_case "erf" `Quick test_erf;
    Alcotest.test_case "chi2 critical values" `Quick test_chi2_critical_values;
    Alcotest.test_case "chi2 survival" `Quick test_chi2_survival;
    Alcotest.test_case "chi2 rejects paper Table 4" `Quick test_chi2_paper_table4;
    Alcotest.test_case "chi2 accepts paper REFINE rows" `Quick test_chi2_paper_refine_rows;
    Alcotest.test_case "chi2 drops zero columns" `Quick test_chi2_zero_column_dropped;
    Alcotest.test_case "chi2 identical rows" `Quick test_chi2_identical_rows;
    Alcotest.test_case "chi2 invalid input" `Quick test_chi2_invalid;
    Alcotest.test_case "sample size 1068" `Quick test_samplesize_paper;
    Alcotest.test_case "sample size finite population" `Quick test_samplesize_finite;
    Alcotest.test_case "achieved margin" `Quick test_samplesize_margin;
    Alcotest.test_case "wald interval" `Quick test_ci_wald;
    Alcotest.test_case "wilson at extremes" `Quick test_ci_wilson_extremes;
    Alcotest.test_case "interval overlap" `Quick test_ci_overlap;
    QCheck_alcotest.to_alcotest prop_chi2_monotone_in_difference;
  ]
