(* Validation of the statistics pipeline against the paper itself: feeding
   the published Table 6 outcome counts through this repository's
   chi-squared machinery must reproduce the published Table 5 verdicts
   (LLFI significantly different from PINFI on all 14 programs, REFINE on
   none) and the published REFINE p-values. *)

module PD = Refine_campaign.Paper_data
module C = Refine_stats.Chi2

let row_arr (r : PD.row) = [| r.PD.crash; r.PD.soc; r.PD.benign |]

let test_table5_llfi_verdicts () =
  List.iter
    (fun (name, (llfi, _refine, pinfi)) ->
      let t = C.test [| row_arr llfi; row_arr pinfi |] in
      Alcotest.(check bool)
        (name ^ ": LLFI significantly different (paper: yes)")
        true t.C.significant)
    PD.table6

let test_table5_refine_verdicts () =
  (* Pearson's test on the published counts clears alpha = 0.05 for 13 of
     the 14 programs; CoMD lands at p ~ 0.047, a hair under.  The paper
     itself flags CoMD and CG as "close to the significance level" (it
     prints 0.08 and 0.06 — its exact test variant is unspecified), so the
     reproducible claim is: no REFINE test is clearly significant, and at
     most the two flagged borderline programs straddle alpha. *)
  let verdicts =
    List.map
      (fun (name, (_llfi, refine, pinfi)) ->
        (name, C.test [| row_arr refine; row_arr pinfi |]))
      PD.table6
  in
  let significant = List.filter (fun (_, t) -> t.C.significant) verdicts in
  Alcotest.(check bool) "at most the borderline programs cross alpha" true
    (List.length significant <= 2);
  List.iter
    (fun (name, t) ->
      Alcotest.(check bool)
        (name ^ " only marginally significant if at all")
        true
        ((not t.C.significant) || t.C.p_value > 0.04);
      Alcotest.(check bool)
        (name ^ " flagged borderline by the paper")
        true
        ((not t.C.significant) || name = "CoMD" || name = "CG"))
    verdicts

let test_table5_refine_pvalues () =
  (* the paper's printed p-values are not exactly derivable from its
     published counts (its precise test variant is unspecified: Pearson
     gives CoMD 0.047 vs printed 0.08, LU 0.084 vs 0.21, CG 0.138 vs
     0.06).  The reproducible numeric claim: every REFINE-vs-PINFI Pearson
     p-value on the published counts stays above 0.04 — i.e. nowhere
     clearly significant — while every LLFI one is below 0.005. *)
  List.iter
    (fun (name, _paper_p) ->
      let _, refine, pinfi = PD.find_table6 name in
      let t = C.test [| row_arr refine; row_arr pinfi |] in
      Alcotest.(check bool)
        (Printf.sprintf "%s: Pearson p=%.3f > 0.04" name t.C.p_value)
        true (t.C.p_value > 0.04))
    PD.table5_refine_pvalues

let test_table5_llfi_pvalues_tiny () =
  (* the paper reports ~0.00 for every LLFI test *)
  List.iter
    (fun (name, (llfi, _refine, pinfi)) ->
      let t = C.test [| row_arr llfi; row_arr pinfi |] in
      Alcotest.(check bool) (name ^ ": LLFI p ~ 0") true (t.C.p_value < 0.005))
    PD.table6

let test_table4_matches () =
  (* the paper's Table 4 is exactly the AMG2013 LLFI/PINFI rows of Table 6 *)
  let llfi, _, pinfi = PD.find_table6 "AMG2013" in
  Alcotest.(check (array int)) "LLFI row" [| 395; 168; 505 |] (row_arr llfi);
  Alcotest.(check (array int)) "PINFI row" [| 269; 70; 729 |] (row_arr pinfi)

let test_figure5_totals () =
  let l, r = PD.figure5_total in
  Alcotest.(check (float 1e-9)) "LLFI total 3.9x" 3.9 l;
  Alcotest.(check (float 1e-9)) "REFINE total 1.2x" 1.2 r;
  (* per-program values bracket the totals sensibly *)
  List.iter
    (fun (_, (llfi, refine)) ->
      Alcotest.(check bool) "LLFI in [0.8, 9.4]" true (llfi >= 0.8 && llfi <= 9.4);
      Alcotest.(check bool) "REFINE in [0.7, 1.8]" true (refine >= 0.7 && refine <= 1.8))
    PD.figure5

let tests =
  [
    Alcotest.test_case "paper Table 5: LLFI verdicts" `Quick test_table5_llfi_verdicts;
    Alcotest.test_case "paper Table 5: REFINE verdicts" `Quick test_table5_refine_verdicts;
    Alcotest.test_case "paper Table 5: REFINE p-values" `Quick test_table5_refine_pvalues;
    Alcotest.test_case "paper Table 5: LLFI p-values ~0" `Quick test_table5_llfi_pvalues_tiny;
    Alcotest.test_case "paper Table 4 consistency" `Quick test_table4_matches;
    Alcotest.test_case "paper Figure 5 ranges" `Quick test_figure5_totals;
  ]
